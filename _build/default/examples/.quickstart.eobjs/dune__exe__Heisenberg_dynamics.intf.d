examples/heisenberg_dynamics.mli:
