examples/vqe_energy.ml: Array Phoenix_circuit Phoenix_ham Phoenix_vqe Printf
