examples/quickstart.mli:
