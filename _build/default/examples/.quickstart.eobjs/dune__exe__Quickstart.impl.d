examples/quickstart.ml: List Phoenix Phoenix_circuit Phoenix_ham Phoenix_linalg Phoenix_pauli Printf
