examples/vqe_energy.mli:
