examples/heisenberg_dynamics.ml: List Phoenix Phoenix_ham Phoenix_linalg Phoenix_pauli Printf
