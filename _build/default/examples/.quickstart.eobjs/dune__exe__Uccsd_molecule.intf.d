examples/uccsd_molecule.mli:
