(* QAOA for MaxCut: generate a random 3-regular graph, build the cost
   layer, and compare PHOENIX's hardware-aware compilation against the
   2QAN-style baseline on the heavy-hex device.

     dune exec examples/qaoa_maxcut.exe *)

module Graphs = Phoenix_ham.Graphs
module Qaoa = Phoenix_ham.Qaoa
module Hamiltonian = Phoenix_ham.Hamiltonian
module Compiler = Phoenix.Compiler
module Circuit = Phoenix_circuit.Circuit

let () =
  let n = 16 in
  let graph = Graphs.random_regular ~seed:42 ~degree:3 n in
  Printf.printf "graph: %d vertices, %d edges, connected=%b\n" n
    (Graphs.num_edges graph) (Graphs.is_connected graph);

  let cost = Qaoa.maxcut_cost ~gamma:0.7 graph in
  let gadgets = Hamiltonian.trotter_gadgets cost in
  let topo = Phoenix_topology.Topology.ibm_manhattan () in

  (* 2QAN-style baseline *)
  let q = Phoenix_baselines.Qan2_like.compile topo n gadgets in
  Printf.printf "2QAN-like : #CNOT %-4d Depth-2Q %-4d #SWAP %d\n"
    (Circuit.count_2q q.Phoenix_baselines.Qan2_like.circuit)
    (Circuit.depth_2q q.Phoenix_baselines.Qan2_like.circuit)
    q.Phoenix_baselines.Qan2_like.num_swaps;

  (* PHOENIX: the cost layer is Z-diagonal, so the commuting-aware router
     reorders interactions freely *)
  let r =
    Compiler.compile
      ~options:{ Compiler.default_options with target = Compiler.Hardware topo }
      cost
  in
  Printf.printf "PHOENIX   : #CNOT %-4d Depth-2Q %-4d #SWAP %d\n"
    r.Compiler.two_q_count r.Compiler.depth_2q r.Compiler.num_swaps;

  (* The full alternating ansatz (cost + mixer layers) also compiles;
     at the logical level its 2Q count is fixed, the interest is depth. *)
  let ansatz = Qaoa.ansatz ~seed:7 ~layers:2 graph in
  let logical = Compiler.compile ansatz in
  Printf.printf
    "2-layer ansatz (logical): #CNOT %d, Depth-2Q %d (lower bound %d = 2·edges·layers/⌊n/2⌋)\n"
    logical.Compiler.two_q_count logical.Compiler.depth_2q
    (2 * 2 * Graphs.num_edges graph / (n / 2))
