(* Molecular simulation: build a UCCSD ansatz for LiH (frozen core) under
   both fermionic encodings, compile it with every compiler in the
   repository, and report the paper's metrics.

     dune exec examples/uccsd_molecule.exe *)

module Hamiltonian = Phoenix_ham.Hamiltonian
module Molecules = Phoenix_ham.Molecules
module Uccsd = Phoenix_ham.Uccsd
module Fermion = Phoenix_ham.Fermion
module Compiler = Phoenix.Compiler
module Circuit = Phoenix_circuit.Circuit
module B = Phoenix_baselines

let describe label (h : Hamiltonian.t) =
  Printf.printf "%s: %d qubits, %d Pauli strings, max weight %d\n" label
    (Hamiltonian.num_qubits h) (Hamiltonian.num_terms h)
    (Hamiltonian.max_weight h)

let compare_compilers h =
  let n = Hamiltonian.num_qubits h in
  let gadgets = Hamiltonian.trotter_gadgets h in
  let report name circuit =
    Printf.printf "  %-18s #CNOT %-6d Depth-2Q %-6d\n" name
      (Circuit.count_cnot circuit) (Circuit.depth_2q circuit)
  in
  report "original" (B.Naive.compile n gadgets);
  report "TKET-like" (B.Tket_like.compile n gadgets);
  (match Hamiltonian.term_blocks h with
  | Some blocks ->
    let to_g (t : Phoenix_pauli.Pauli_term.t) =
      t.Phoenix_pauli.Pauli_term.pauli, 2.0 *. t.Phoenix_pauli.Pauli_term.coeff
    in
    let gblocks = List.map (List.map to_g) blocks in
    report "Paulihedral-like" (B.Paulihedral_like.compile_blocks n gblocks);
    report "Tetris-like" (B.Tetris_like.compile_blocks n gblocks)
  | None -> ());
  let r = Compiler.compile h in
  Printf.printf "  %-18s #CNOT %-6d Depth-2Q %-6d (%d IR groups, %.2fs)\n"
    "PHOENIX" r.Compiler.two_q_count r.Compiler.depth_2q r.Compiler.num_groups
    r.Compiler.wall_time;
  (* SU(4) ISA: Clifford sandwiches and cores fuse into native 2Q blocks *)
  let su4 =
    Compiler.compile
      ~options:{ Compiler.default_options with isa = Compiler.Su4_isa }
      h
  in
  Printf.printf "  %-18s #SU4  %-6d Depth-2Q %-6d\n" "PHOENIX (SU4 ISA)"
    su4.Compiler.two_q_count su4.Compiler.depth_2q

let () =
  let spec = Molecules.frozen Molecules.lih in
  List.iter
    (fun enc ->
      let h = Uccsd.ansatz enc spec in
      describe
        (Printf.sprintf "LiH frozen-core / %s" (Fermion.encoding_to_string enc))
        h;
      compare_compilers h;
      print_newline ())
    [ Fermion.Jordan_wigner; Fermion.Bravyi_kitaev ];

  (* Hardware-aware compilation onto the 64-qubit heavy-hex device. *)
  let topo = Phoenix_topology.Topology.ibm_manhattan () in
  let h = Uccsd.ansatz Fermion.Jordan_wigner spec in
  let r =
    Compiler.compile
      ~options:{ Compiler.default_options with target = Compiler.Hardware topo }
      h
  in
  Printf.printf
    "LiH JW on heavy-hex-64: #CNOT %d (logical %d, %.1fx), Depth-2Q %d, %d SWAPs\n"
    r.Compiler.two_q_count r.Compiler.logical_two_q
    (float_of_int r.Compiler.two_q_count /. float_of_int r.Compiler.logical_two_q)
    r.Compiler.depth_2q r.Compiler.num_swaps
