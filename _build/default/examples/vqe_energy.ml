(* Variational quantum eigensolver end-to-end: a synthetic molecular
   Hamiltonian, a UCCSD ansatz compiled by PHOENIX at every objective
   evaluation, state-vector simulation, and a classical optimizer.

     dune exec examples/vqe_energy.exe *)

module Vqe = Phoenix_vqe.Vqe
module Ansatz = Phoenix_vqe.Ansatz
module Fermion = Phoenix_ham.Fermion

let () =
  (* H2-sized problem: 2 spatial orbitals, 2 electrons, 4 qubits. *)
  let spec =
    { Phoenix_ham.Uccsd.name = "H2_like"; n_spatial = 2; n_electrons = 2; frozen = 0 }
  in
  let problem = Vqe.uccsd_problem Fermion.Jordan_wigner spec in
  Printf.printf "problem: %d qubits, %d Hamiltonian terms, %d parameters\n"
    (Phoenix_ham.Hamiltonian.num_qubits problem.Vqe.hamiltonian)
    (Phoenix_ham.Hamiltonian.num_terms problem.Vqe.hamiltonian)
    (Ansatz.num_parameters problem.Vqe.ansatz);

  let reference_energy = Vqe.energy problem (Array.make (Ansatz.num_parameters problem.Vqe.ansatz) 0.0) in
  let exact = Vqe.exact_ground_energy problem in
  Printf.printf "Hartree–Fock-like reference energy: %+.6f\n" reference_energy;
  Printf.printf "exact ground energy:                %+.6f\n" exact;

  let outcome = Vqe.minimize ~optimizer:`Nelder_mead ~iterations:300 problem in
  Printf.printf "VQE optimized energy:               %+.6f\n" outcome.Vqe.energy;
  Printf.printf "correlation energy recovered: %.1f%%\n"
    (100.0
    *. (reference_energy -. outcome.Vqe.energy)
    /. (reference_energy -. exact));

  (* what the device would actually run, per objective evaluation *)
  let circuit = Ansatz.circuit problem.Vqe.ansatz outcome.Vqe.parameters in
  Printf.printf "final ansatz circuit: %d CNOT-equivalents, 2Q depth %d\n"
    (Phoenix_circuit.Circuit.count_cnot circuit)
    (Phoenix_circuit.Circuit.depth_2q circuit);

  (* the same loop with SPSA, the noisy-hardware optimizer *)
  let spsa = Vqe.minimize ~optimizer:`Spsa ~iterations:200 problem in
  Printf.printf "SPSA optimized energy:              %+.6f\n" spsa.Vqe.energy
