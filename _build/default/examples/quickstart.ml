(* Quickstart: compile a tiny Hamiltonian-simulation program with PHOENIX
   and inspect the result.

     dune exec examples/quickstart.exe *)

module Pauli_string = Phoenix_pauli.Pauli_string
module Pauli_term = Phoenix_pauli.Pauli_term
module Hamiltonian = Phoenix_ham.Hamiltonian
module Compiler = Phoenix.Compiler
module Circuit = Phoenix_circuit.Circuit

let () =
  (* A Hamiltonian is a weighted sum of Pauli strings.  This one is the
     3-qubit transverse-field Ising model written out by hand; the
     [Phoenix_ham.Spin_models] module generates such models for you. *)
  let term s c = Pauli_term.make (Pauli_string.of_string s) c in
  let h =
    Hamiltonian.make 3
      [
        term "ZZI" (-1.0);
        term "IZZ" (-1.0);
        term "XII" (-0.5);
        term "IXI" (-0.5);
        term "IIX" (-0.5);
      ]
  in
  Printf.printf "Hamiltonian: %d qubits, %d terms\n" (Hamiltonian.num_qubits h)
    (Hamiltonian.num_terms h);

  (* Compile one first-order Trotter step exp(-i·h_j·τ·P_j) per term. *)
  let options = { Compiler.default_options with tau = 0.1 } in
  let report = Compiler.compile ~options h in
  Printf.printf "PHOENIX output: %d CNOTs, 2Q depth %d, %d 1Q gates\n"
    report.Compiler.two_q_count report.Compiler.depth_2q
    report.Compiler.one_q_count;

  (* The result is an ordinary circuit value. *)
  print_endline "gate list:";
  List.iter
    (fun g -> print_endline ("  " ^ Phoenix_circuit.Gate.to_string g))
    (Circuit.gates report.Compiler.circuit);

  (* Verify the compilation against the exact gadget product (PHOENIX in
     exact mode performs only unitary-preserving rewrites). *)
  let exact_opts = { options with exact = true } in
  let exact = Compiler.compile ~options:exact_opts h in
  let reference =
    Phoenix_linalg.Unitary.program_unitary 3
      (Hamiltonian.trotter_gadgets ~tau:0.1 h)
  in
  let compiled =
    Phoenix_linalg.Unitary.circuit_unitary exact.Compiler.circuit
  in
  Printf.printf "exact-mode infidelity vs gadget product: %.2e\n"
    (Phoenix_linalg.Fidelity.infidelity reference compiled)
