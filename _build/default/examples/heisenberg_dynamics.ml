(* Heisenberg-chain dynamics: Trotterized time evolution, compiled with
   PHOENIX, with the algorithmic error measured against the exact
   propagator — a miniature of the paper's Fig. 8 methodology.

     dune exec examples/heisenberg_dynamics.exe *)

module Spin_models = Phoenix_ham.Spin_models
module Hamiltonian = Phoenix_ham.Hamiltonian
module Compiler = Phoenix.Compiler
module Unitary = Phoenix_linalg.Unitary
module Herm = Phoenix_linalg.Herm
module Fidelity = Phoenix_linalg.Fidelity

let () =
  let n = 6 in
  let h = Spin_models.heisenberg_chain ~jx:1.0 ~jy:1.0 ~jz:0.8 n in
  Printf.printf "Heisenberg chain: %d qubits, %d terms\n" n
    (Hamiltonian.num_terms h);

  let to_float_terms ham =
    List.map
      (fun (t : Phoenix_pauli.Pauli_term.t) ->
        t.Phoenix_pauli.Pauli_term.pauli, t.Phoenix_pauli.Pauli_term.coeff)
      (Hamiltonian.terms ham)
  in
  let decomposition = Herm.eig (Unitary.hamiltonian_matrix n (to_float_terms h)) in

  (* For a total time t split into r Trotter steps, compile one step and
     take its unitary to the r-th power. *)
  let total_time = 1.0 in
  Printf.printf "%-8s %-10s %-12s %-10s\n" "steps" "#CNOT" "infidelity" "depth2q";
  List.iter
    (fun steps ->
      let tau = total_time /. float_of_int steps in
      let options = { Compiler.default_options with tau } in
      let r = Compiler.compile ~options h in
      let step_u = Unitary.circuit_unitary r.Compiler.circuit in
      let rec pow acc k =
        if k = 0 then acc else pow (Phoenix_linalg.Cmat.mul step_u acc) (k - 1)
      in
      let evolved = pow (Phoenix_linalg.Cmat.identity (1 lsl n)) steps in
      let exact = Herm.evolution decomposition total_time in
      Printf.printf "%-8d %-10d %-12.3e %-10d\n" steps
        (steps * r.Compiler.two_q_count)
        (Fidelity.infidelity exact evolved)
        (steps * r.Compiler.depth_2q))
    [ 1; 2; 4; 8 ];

  (* product-formula comparison at fixed gate budget *)
  print_endline "\nproduct formulas at roughly equal gadget count:";
  let exact = Herm.evolution decomposition total_time in
  let err name gadgets =
    Printf.printf "  %-22s %4d gadgets   infidelity %.3e\n" name
      (List.length gadgets)
      (Fidelity.infidelity exact (Unitary.program_unitary n gadgets))
  in
  let module T = Phoenix_ham.Trotter in
  (* 4 first-order steps ≈ 2 second-order steps ≈ 60 qDRIFT samples *)
  let repeat k gs = List.concat (List.init k (fun _ -> gs)) in
  err "1st order × 4" (repeat 4 (T.first_order ~tau:(total_time /. 4.0) h));
  err "2nd order × 2" (repeat 2 (T.second_order ~tau:(total_time /. 2.0) h));
  err "qDRIFT (60 samples)" (T.qdrift ~seed:5 ~samples:60 ~time:total_time h)
