(** Lowering a simplified configuration to circuit IR.

    The emitted circuit stays ISA-abstract: Clifford2Q conjugations are
    [Cliff2] gates and two-qubit Pauli rotations are [Rpp] gates.  The
    CNOT ISA is reached with {!Phoenix_circuit.Rebase.to_cnot_basis}; the
    SU(4) ISA with {!Phoenix_circuit.Rebase.to_su4}, which fuses each
    group's Clifford sandwich and core into native 2Q blocks. *)

val rotation_gates :
  (Phoenix_pauli.Pauli_string.t * float) list -> Phoenix_circuit.Gate.t list
(** 1Q/2Q gates for a list of weight ≤ 2 gadgets (identity entries are
    global phases and are dropped).
    Raises [Invalid_argument] on weight > 2 strings. *)

val cfg_to_circuit :
  ?compress:bool -> int -> Simplify.t -> Phoenix_circuit.Circuit.t
(** Lower one simplified IR group over an [n]-qubit register.
    [compress] (default true) enables core compression: a core of ≥ 3
    commuting rotations is simultaneously diagonalized when that lowers
    its CNOT cost. *)

val group_circuit :
  ?exact:bool -> ?compress:bool -> Group.t -> Phoenix_circuit.Circuit.t
(** Simplify and lower one IR group. *)

val naive_gadget_circuit :
  ?chain:[ `Support_order | `Z_first ] ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_circuit.Circuit.t
(** Per-gadget synthesis by basis conjugation around a CNOT ladder
    (Fig. 1(a) style).  [`Support_order] (default) chains qubits in index
    order — the unoptimized "original circuit" of the paper's Table I.
    [`Z_first] chains Z-basis qubits first so that gadgets sharing a
    Z-chain expose their chain CNOTs at the gadget boundary for
    cancellation — the tree-shaping trick of Paulihedral-style
    compilers. *)
