module Circuit = Phoenix_circuit.Circuit
module Gate = Phoenix_circuit.Gate
module Peephole = Phoenix_circuit.Peephole
module Rebase = Phoenix_circuit.Rebase
module Topology = Phoenix_topology.Topology
module Sabre = Phoenix_router.Sabre
module Hamiltonian = Phoenix_ham.Hamiltonian

type isa = Cnot_isa | Su4_isa

type target = Logical | Hardware of Topology.t

type options = {
  isa : isa;
  target : target;
  tau : float;
  lookahead : int;
  exact : bool;
  peephole : bool;
  sabre_iterations : int;
  seed : int;
}

let default_options =
  {
    isa = Cnot_isa;
    target = Logical;
    tau = 1.0;
    lookahead = 10;
    exact = false;
    peephole = true;
    sabre_iterations = 1;
    seed = 2025;
  }

type report = {
  circuit : Circuit.t;
  two_q_count : int;
  depth_2q : int;
  one_q_count : int;
  num_swaps : int;
  logical_two_q : int;
  num_groups : int;
  wall_time : float;
}

let maybe_peephole options c = if options.peephole then Peephole.optimize c else c

let lower_cnot options c =
  let lowered = Rebase.to_cnot_basis (maybe_peephole options c) in
  if options.peephole then
    Peephole.optimize (Phoenix_circuit.Phase_folding.fold lowered)
  else lowered

let compile_groups ?(options = default_options) n groups =
  let t0 = Sys.time () in
  let routing_aware = match options.target with Hardware _ -> true | Logical -> false in
  let blocks =
    List.map
      (fun g ->
        {
          Order.group = g;
          circuit = Synthesis.group_circuit ~exact:options.exact g;
        })
      groups
  in
  let ordered =
    (* Reordering IR groups is a Trotter-level transformation; exact mode
       keeps program order so the output is strictly equivalent. *)
    if options.exact then blocks
    else Order.order ~lookahead:options.lookahead ~routing_aware blocks
  in
  let abstract =
    Circuit.concat_list n (List.map (fun b -> b.Order.circuit) ordered)
  in
  let abstract = maybe_peephole options abstract in
  let logical_cnot = lower_cnot options abstract in
  let logical_two_q =
    match options.isa with
    | Cnot_isa -> Circuit.count_2q logical_cnot
    | Su4_isa -> Rebase.count_su4 abstract
  in
  let final_circuit, num_swaps =
    match options.target with
    | Logical ->
      (match options.isa with
      | Cnot_isa -> logical_cnot, 0
      | Su4_isa -> Rebase.to_su4 abstract, 0)
    | Hardware topo ->
      (* A fully Z-diagonal program (e.g. a QAOA cost layer) commutes
         gate-wise, so the router may reorder freely — 2QAN's lever. *)
      let z_diagonal g =
        match g with
        | Gate.G1 ((Gate.Rz _ | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg), _)
          ->
          true
        | Gate.Rpp { p0 = Phoenix_pauli.Pauli.Z; p1 = Phoenix_pauli.Pauli.Z; _ }
          ->
          true
        | Gate.G1 _ | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Swap _
        | Gate.Su4 _ ->
          false
      in
      let routed =
        if List.for_all z_diagonal (Circuit.gates abstract) then begin
          (* multi-start over placement seed sites; keep the routing with
             the fewest SWAPs, then lowest 2Q depth *)
          let attempt seed_site =
            let initial =
              Phoenix_router.Placement.of_circuit ~seed_site topo abstract
            in
            Sabre.route_commuting ~initial topo abstract
          in
          let score (r : Sabre.result) =
            r.Sabre.num_swaps, Circuit.depth_2q r.Sabre.circuit
          in
          List.fold_left
            (fun best seed_site ->
              let r = attempt seed_site in
              if score r < score best then r else best)
            (attempt 0)
            [ 11; 23; 37; 53 ]
        end
        else
          Sabre.route_with_refinement ~iterations:options.sabre_iterations
            ~lookahead:20 ~seed:options.seed topo abstract
      in
      let physical =
        match options.isa with
        | Cnot_isa -> lower_cnot options routed.Sabre.circuit
        | Su4_isa -> Rebase.to_su4 (maybe_peephole options routed.Sabre.circuit)
      in
      physical, routed.Sabre.num_swaps
  in
  {
    circuit = final_circuit;
    two_q_count = Circuit.count_2q final_circuit;
    depth_2q = Circuit.depth_2q final_circuit;
    one_q_count = Circuit.count_1q final_circuit;
    num_swaps;
    logical_two_q;
    num_groups = List.length groups;
    wall_time = Sys.time () -. t0;
  }

let compile_gadgets ?options n gadgets =
  compile_groups ?options n (Group.group_gadgets n gadgets)

let compile_blocks ?options n blocks =
  compile_groups ?options n (Group.of_blocks n blocks)

let compile ?options h =
  let tau = (Option.value ~default:default_options options).tau in
  let n = Hamiltonian.num_qubits h in
  match Hamiltonian.term_blocks h with
  | Some blocks ->
    let to_gadget (t : Phoenix_pauli.Pauli_term.t) =
      t.Phoenix_pauli.Pauli_term.pauli,
      2.0 *. t.Phoenix_pauli.Pauli_term.coeff *. tau
    in
    compile_blocks ?options n (List.map (List.map to_gadget) blocks)
  | None -> compile_gadgets ?options n (Hamiltonian.trotter_gadgets ~tau h)
