lib/core/group.mli: Phoenix_pauli Phoenix_util
