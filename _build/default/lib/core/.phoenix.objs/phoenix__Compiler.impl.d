lib/core/compiler.ml: Group List Option Order Phoenix_circuit Phoenix_ham Phoenix_pauli Phoenix_router Phoenix_topology Synthesis Sys
