lib/core/order.mli: Group Phoenix_circuit Phoenix_pauli
