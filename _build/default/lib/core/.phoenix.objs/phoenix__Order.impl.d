lib/core/order.ml: Array Float Group Hashtbl List Option Phoenix_circuit Phoenix_pauli
