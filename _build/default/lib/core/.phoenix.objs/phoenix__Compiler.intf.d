lib/core/compiler.mli: Group Phoenix_circuit Phoenix_ham Phoenix_pauli Phoenix_topology
