lib/core/group.ml: Hashtbl List Phoenix_pauli Phoenix_util
