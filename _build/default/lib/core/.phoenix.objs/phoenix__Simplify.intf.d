lib/core/simplify.mli: Phoenix_pauli
