lib/core/synthesis.ml: Group List Phoenix_circuit Phoenix_pauli Simplify
