lib/core/synthesis.mli: Group Phoenix_circuit Phoenix_pauli Simplify
