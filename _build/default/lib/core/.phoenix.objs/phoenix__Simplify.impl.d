lib/core/simplify.ml: List Phoenix_pauli
