module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit

let rotation_gates gadgets =
  List.filter_map
    (fun (p, theta) ->
      match Pauli_string.support_list p with
      | [] -> None (* global phase *)
      | [ q ] -> Some (Gate.rotation_of_pauli (Pauli_string.get p q) q theta)
      | [ a; b ] ->
        Some
          (Gate.Rpp
             {
               p0 = Pauli_string.get p a;
               p1 = Pauli_string.get p b;
               a;
               b;
               theta;
             })
      | _ :: _ :: _ :: _ ->
        invalid_arg "Synthesis.rotation_gates: weight > 2 gadget")
    gadgets

(* Ladder lowering for residual rows of weight > 2 (exact-mode bailout
   cores).  Defined here, before its use in [compressed_core]. *)
let rec core_gates n ts =
  ignore n;
  List.concat_map
    (fun ((p, _) as t) ->
      if Pauli_string.weight p <= 2 then rotation_gates [ t ]
      else ladder_gadget t)
    ts

and ladder_gadget (p, theta) =
  let support = Pauli_string.support_list p in
  let basis_in =
    List.concat_map
      (fun q ->
        match Pauli_string.get p q with
        | Pauli.Z | Pauli.I -> []
        | Pauli.X -> [ Gate.G1 (Gate.H, q) ]
        | Pauli.Y -> [ Gate.G1 (Gate.Sdg, q); Gate.G1 (Gate.H, q) ])
      support
  in
  let basis_out =
    List.concat_map
      (fun q ->
        match Pauli_string.get p q with
        | Pauli.Z | Pauli.I -> []
        | Pauli.X -> [ Gate.G1 (Gate.H, q) ]
        | Pauli.Y -> [ Gate.G1 (Gate.H, q); Gate.G1 (Gate.S, q) ])
      support
  in
  let rec chain = function
    | a :: (b :: _ as rest) -> Gate.Cnot (a, b) :: chain rest
    | [ _ ] | [] -> []
  in
  let target = List.nth support (List.length support - 1) in
  let up = chain support in
  basis_in @ up @ [ Gate.G1 (Gate.Rz theta, target) ] @ List.rev up @ basis_out

(* A core of k ≥ 3 commuting rotations on one qubit pair costs 2k CNOTs
   when lowered row by row, but only a bounded Clifford sandwich around
   merged phase rotations when diagonalized first. *)
let compressed_core n ts =
  let plain = core_gates n ts in
  let commuting =
    List.for_all
      (fun (p, _) ->
        List.for_all (fun (q, _) -> Pauli_string.commutes p q) ts)
      ts
  in
  if List.length ts < 3 || not commuting then plain
  else begin
    let d = Phoenix_circuit.Diagonalize.run n ts in
    let sorted =
      List.sort
        (fun (p, _) (q, _) -> Pauli_string.compare p q)
        d.Phoenix_circuit.Diagonalize.diagonal
    in
    let undo =
      List.rev_map Gate.dagger d.Phoenix_circuit.Diagonalize.clifford
    in
    let diag =
      d.Phoenix_circuit.Diagonalize.clifford @ core_gates n sorted @ undo
    in
    let cost gates =
      Circuit.count_cnot
        (Phoenix_circuit.Peephole.optimize (Circuit.create n gates))
    in
    if cost diag < cost plain then diag else plain
  end

let cfg_to_circuit ?(compress = true) n cfg =
  let gates =
    List.concat_map
      (function
        | Simplify.Cliff c -> [ Gate.Cliff2 c ]
        | Simplify.Rotations rs -> rotation_gates rs
        | Simplify.Core ts ->
          if compress then compressed_core n ts else core_gates n ts)
      cfg
  in
  Circuit.create n gates

let group_circuit ?exact ?compress (g : Group.t) =
  cfg_to_circuit ?compress g.Group.n (Simplify.run ?exact g.Group.n g.Group.terms)

(* Fig. 1(a)-style reference synthesis: 1Q basis conjugation into Z,
   a CNOT ladder onto the last support qubit, Rz, and the mirror. *)
let naive_gadget_circuit ?(chain = `Support_order) n gadgets =
  let lower (p, theta) =
    match Pauli_string.support_list p with
    | [] -> []
    | support ->
      let support =
        match chain with
        | `Support_order -> support
        | `Z_first ->
          let is_z q = Pauli_string.get p q = Pauli.Z in
          List.filter is_z support
          @ List.filter (fun q -> not (is_z q)) support
      in
      (* u·σ·u† = Z per non-Z qubit: X via H, Y via S†·H (time order). *)
      let basis_in =
        List.concat_map
          (fun q ->
            match Pauli_string.get p q with
            | Pauli.Z | Pauli.I -> []
            | Pauli.X -> [ Gate.G1 (Gate.H, q) ]
            | Pauli.Y -> [ Gate.G1 (Gate.Sdg, q); Gate.G1 (Gate.H, q) ])
          support
      in
      let basis_out =
        List.concat_map
          (fun q ->
            match Pauli_string.get p q with
            | Pauli.Z | Pauli.I -> []
            | Pauli.X -> [ Gate.G1 (Gate.H, q) ]
            | Pauli.Y -> [ Gate.G1 (Gate.H, q); Gate.G1 (Gate.S, q) ])
          support
      in
      let rec ladder = function
        | a :: (b :: _ as rest) -> Gate.Cnot (a, b) :: ladder rest
        | [ _ ] | [] -> []
      in
      let target = List.nth support (List.length support - 1) in
      let up = ladder support in
      basis_in
      @ up
      @ [ Gate.G1 (Gate.Rz theta, target) ]
      @ List.rev up
      @ basis_out
  in
  Circuit.create n (List.concat_map lower gadgets)
