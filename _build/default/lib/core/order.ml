module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Endian = Phoenix_circuit.Endian
module Interaction = Phoenix_circuit.Interaction
module Clifford2q = Phoenix_pauli.Clifford2q

type block = { group : Group.t; circuit : Circuit.t }

let exposed_boundary_cliffords side circuit =
  let gates =
    match side with
    | `Leading -> Circuit.gates circuit
    | `Trailing -> List.rev (Circuit.gates circuit)
  in
  let n = Circuit.num_qubits circuit in
  let blocked = Array.make n false in
  let rec scan acc = function
    | [] -> acc
    | g :: rest ->
      let qs = Gate.qubits g in
      if List.exists (fun q -> blocked.(q)) qs then begin
        List.iter (fun q -> blocked.(q) <- true) qs;
        scan acc rest
      end
      else begin
        List.iter (fun q -> blocked.(q) <- true) qs;
        match g with
        | Gate.Cliff2 c -> scan (c :: acc) rest
        | Gate.G1 _ | Gate.Cnot _ | Gate.Rpp _ | Gate.Swap _ | Gate.Su4 _ ->
          scan acc rest
      end
  in
  List.rev (scan [] gates)

(* Canonical key so that gates cancelling under [Clifford2q.equal_gate]
   collide. *)
let cliff_key (c : Clifford2q.t) =
  if Clifford2q.is_symmetric c.Clifford2q.kind then
    c.Clifford2q.kind, min c.a c.b, max c.a c.b
  else c.Clifford2q.kind, c.a, c.b

let key_counts cliffs =
  let table = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let k = cliff_key c in
      Hashtbl.replace table k (1 + Option.value ~default:0 (Hashtbl.find_opt table k)))
    cliffs;
  table

(* Number of Hermitian Clifford2Q pairs cancelling across the interface,
   plus whether cancellation empties the boundary 2Q layer on each side. *)
let cancellation prev next =
  let trailing = exposed_boundary_cliffords `Trailing prev.circuit in
  let leading = exposed_boundary_cliffords `Leading next.circuit in
  let ct = key_counts trailing and cl = key_counts leading in
  let matched_keys = ref [] in
  let m =
    Hashtbl.fold
      (fun k count acc ->
        match Hashtbl.find_opt cl k with
        | Some count' ->
          matched_keys := k :: !matched_keys;
          acc + min count count'
        | None -> acc)
      ct 0
  in
  let layer_all_matched layers pick =
    match pick layers with
    | Some layer ->
      layer <> []
      && List.for_all
           (fun g ->
             match g with
             | Gate.Cliff2 c -> List.mem (cliff_key c) !matched_keys
             | Gate.G1 _ | Gate.Cnot _ | Gate.Rpp _ | Gate.Swap _
             | Gate.Su4 _ ->
               false)
           layer
    | None -> false
  in
  let last l = match List.rev l with x :: _ -> Some x | [] -> None in
  let first l = match l with x :: _ -> Some x | [] -> None in
  let prev_side = m > 0 && layer_all_matched (Circuit.layers_2q prev.circuit) last in
  let next_side = m > 0 && layer_all_matched (Circuit.layers_2q next.circuit) first in
  m, prev_side, next_side

let support_size c = List.length (Circuit.used_qubits c)

let assembly_cost ?(routing_aware = false) prev next =
  let e_r = Endian.right prev.circuit and e_l' = Endian.left next.circuit in
  let base = float_of_int (Endian.depth_cost ~e_r ~e_l') in
  let m, prev_side, next_side = cancellation prev next in
  let layer_saving side circ = if side then float_of_int (support_size circ) else 0.0 in
  let cost =
    base
    -. (2.0 *. float_of_int m)
    -. layer_saving prev_side prev.circuit
    -. layer_saving next_side next.circuit
  in
  if routing_aware then
    cost /. Interaction.similarity ~pre:prev.circuit ~suc:next.circuit
  else cost

let order ?(lookahead = 10) ?(routing_aware = false) blocks =
  match blocks with
  | [] | [ _ ] -> blocks
  | _ ->
    (* Pre-arrange in descending width; stable for equal widths. *)
    let pool =
      List.stable_sort
        (fun a b -> compare (Group.weight b.group) (Group.weight a.group))
        blocks
    in
    let rec assemble acc last pool =
      match pool with
      | [] -> List.rev acc
      | _ ->
        let window = List.filteri (fun i _ -> i < lookahead) pool in
        let best, _ =
          List.fold_left
            (fun (best, best_cost) cand ->
              let cost = assembly_cost ~routing_aware last cand in
              match best with
              | Some _ when best_cost <= cost -> best, best_cost
              | Some _ | None -> Some cand, cost)
            (None, Float.infinity) window
        in
        let chosen = match best with Some b -> b | None -> assert false in
        let pool' = List.filter (fun b -> b != chosen) pool in
        assemble (chosen :: acc) chosen pool'
    in
    (match pool with
    | first :: rest -> assemble [ first ] first rest
    | [] -> assert false)
