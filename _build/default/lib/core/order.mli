(** Tetris-like IR group ordering (§IV-C).

    Simplified IR groups are pre-arranged by descending width, then
    assembled greedily: a look-ahead window is scanned for the block whose
    assembly cost against the last placed block is minimal.  The cost
    combines the endian-vector depth overhead (Fig. 3), a discount for
    Hermitian Clifford2Q pairs that cancel across the interface (Fig. 4a),
    and — in routing-aware mode — the interaction-graph similarity factor
    of Eq. 7 (Fig. 4b). *)

type block = { group : Group.t; circuit : Phoenix_circuit.Circuit.t }

val assembly_cost : ?routing_aware:bool -> block -> block -> float
(** [assembly_cost prev next]: the uniform cost of placing [next] right
    after [prev]. *)

val order :
  ?lookahead:int -> ?routing_aware:bool -> block list -> block list
(** Order blocks ([lookahead] defaults to 10).  The relative order of
    blocks only changes within the reordering freedom of Trotterization. *)

val exposed_boundary_cliffords :
  [ `Leading | `Trailing ] ->
  Phoenix_circuit.Circuit.t ->
  Phoenix_pauli.Clifford2q.t list
(** Clifford2Q gates visible at a circuit boundary: not shadowed by any
    other gate on their qubits (exposed for cross-interface
    cancellation).  Exposed for testing. *)
