(** Heuristic BSF simplification — Algorithm 1 of the paper.

    Each search epoch peels local (weight ≤ 1) Pauli rotations, then
    greedily applies the 2Q Clifford generator (Eq. 5) and qubit pair
    minimizing the BSF cost (Eq. 6), until the tableau's total weight
    (Eq. 4) is at most 2.  The output configuration is a time-ordered
    list of circuit components preserving the semantics
    [G = C†·G'·C] per epoch (the generators are Hermitian, so each
    appears verbatim on both sides).

    When the greedy search stalls (no candidate changes the cost), the
    constructive fallback the paper sketches takes over: a maximum-weight
    row is reduced one qubit at a time by pair-kill conjugations, which
    guarantees termination (each stall cycle makes one row local, and the
    default mode peels it).  In exact mode an unpeelable local could undo
    that progress, so a stall ends the search instead and the residual
    rows are synthesized directly. *)

type item =
  | Cliff of Phoenix_pauli.Clifford2q.t
      (** one conjugation layer (applied verbatim — Hermitian) *)
  | Rotations of (Phoenix_pauli.Pauli_string.t * float) list
      (** peeled local rotations (weight ≤ 1 strings, sign already folded
          into the angle; weight-0 entries are global phases) *)
  | Core of (Phoenix_pauli.Pauli_string.t * float) list
      (** the residual tableau — total weight ≤ 2 except when an
          exact-mode run bails out of a greedy stall, in which case
          arbitrary-weight rows remain (in program order) and the
          synthesis lowers them through ladders *)

type t = item list
(** Time-ordered component list: leading [Cliff]s, one [Core], then
    alternating [Cliff]/[Rotations] unwinding the conjugations. *)

val run :
  ?exact:bool ->
  ?max_epochs:int ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  t
(** [run n terms] simplifies a gadget list over [n] qubits.  With
    [~exact:true] local rows are only peeled when they commute with the
    rest of the tableau, making the output exactly unitarily equivalent
    (instead of equivalent up to Trotter-reordering freedom). *)

val num_cliffords : t -> int
val core_terms : t -> (Phoenix_pauli.Pauli_string.t * float) list
