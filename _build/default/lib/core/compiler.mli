(** The PHOENIX compilation pipeline (§IV-A):

    IR grouping → group-wise BSF simplification → Tetris-like IR group
    ordering → ISA lowering (CNOT or SU(4)) → optional hardware-aware
    routing → peephole cleanup. *)

type isa = Cnot_isa | Su4_isa

type target =
  | Logical  (** all-to-all connectivity *)
  | Hardware of Phoenix_topology.Topology.t

type options = {
  isa : isa;
  target : target;
  tau : float;  (** Trotter step duration *)
  lookahead : int;  (** ordering look-ahead window *)
  exact : bool;
      (** strict unitary preservation: restrict local peeling to
          commuting rows and keep IR groups in program order *)
  peephole : bool;  (** run the O3-style cleanup passes *)
  sabre_iterations : int;  (** SABRE layout-refinement round trips *)
  seed : int;
}

val default_options : options
(** CNOT ISA, logical target, [tau = 1], lookahead 10, peephole on. *)

type report = {
  circuit : Phoenix_circuit.Circuit.t;  (** final lowered circuit *)
  two_q_count : int;
      (** #CNOT under [Cnot_isa]; #SU(4) blocks under [Su4_isa] *)
  depth_2q : int;
  one_q_count : int;
  num_swaps : int;  (** 0 for logical compilation *)
  logical_two_q : int;
      (** 2Q count of the logical-level result, for routing-overhead
          ratios *)
  num_groups : int;
  wall_time : float;  (** seconds of CPU time spent compiling *)
}

val compile : ?options:options -> Phoenix_ham.Hamiltonian.t -> report

val compile_gadgets :
  ?options:options ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  report
(** Compile an explicit gadget program over [n] qubits, grouping by
    support. *)

val compile_blocks :
  ?options:options ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list list ->
  report
(** Compile with caller-supplied algorithm-level blocks as IR groups.
    [compile] uses this automatically when the Hamiltonian records block
    structure (UCCSD ansatzes do). *)

val compile_groups : ?options:options -> int -> Group.t list -> report
(** Lowest-level entry point. *)
