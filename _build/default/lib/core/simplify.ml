module Bsf = Phoenix_pauli.Bsf
module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Clifford2q = Phoenix_pauli.Clifford2q

type item =
  | Cliff of Clifford2q.t
  | Rotations of (Pauli_string.t * float) list
  | Core of (Pauli_string.t * float) list

type t = item list

let row_to_rotation (r : Bsf.row) =
  r.Bsf.pauli, (if r.Bsf.neg then -.r.Bsf.angle else r.Bsf.angle)

(* Synthesizable residue: union support on ≤ 2 qubits, or nothing but 1Q
   rotations left (the latter only arises in exact mode, where
   anticommuting locals may be unpeelable). *)
let finished bsf =
  Bsf.total_weight bsf <= 2 || Bsf.nonlocal_count bsf = 0

(* All (generator, ordered qubit pair) candidates over the support.
   Symmetric kinds are invariant under operand swap, so they only need
   i < j; asymmetric kinds need both orders, which also covers the three
   "missing" σ0/σ1 combinations (C(σ0,σ1)_{a,b} = C(σ1,σ0)_{b,a}). *)
let candidates support =
  List.concat_map
    (fun kind ->
      List.concat_map
        (fun i ->
          List.filter_map
            (fun j ->
              if j > i then Some (Clifford2q.make kind i j)
              else if j < i && not (Clifford2q.is_symmetric kind) then
                Some (Clifford2q.make kind i j)
              else None)
            support)
        support)
    Clifford2q.all_kinds

let best_greedy bsf =
  let support = Bsf.support_indices bsf in
  List.fold_left
    (fun best cliff ->
      let trial = Bsf.copy bsf in
      Bsf.apply_clifford2q trial cliff;
      let cost = Bsf.cost trial in
      match best with
      | Some (_, best_cost) when best_cost <= cost -> best
      | Some _ | None -> Some (cliff, cost))
    None (candidates support)

(* Pair-kill Clifford for one row: with σa on qubit a and σb on qubit b,
   conjugating by C(σa, σ1) with {σ1, σb} anticommuting maps
   σa⊗σb ↦ ±I⊗σb, reducing the row's weight by exactly one. *)
let pair_kill bsf row_idx =
  let p = Bsf.row_pauli bsf row_idx in
  match Pauli_string.support_list p with
  | a :: b :: _ ->
    let sa = Pauli_string.get p a and sb = Pauli_string.get p b in
    let s1 =
      match List.find_opt (fun s -> not (Pauli.commutes s sb)) [ Pauli.X; Pauli.Y; Pauli.Z ] with
      | Some s -> s
      | None -> assert false (* sb ≠ I: two of X,Y,Z anticommute with it *)
    in
    (match Clifford2q.kind_of_sigmas sa s1 with
    | Some (kind, false) -> Clifford2q.make kind a b
    | Some (kind, true) -> Clifford2q.make kind b a
    | None -> assert false (* sa ≠ I on a support qubit *))
  | [ _ ] | [] -> invalid_arg "Simplify.pair_kill: row already local"

let max_weight_row bsf =
  let n_rows = Bsf.num_rows bsf in
  let best = ref (-1) and best_w = ref 1 in
  for i = 0 to n_rows - 1 do
    let w = Bsf.row_weight bsf i in
    if w > !best_w then begin
      best := i;
      best_w := w
    end
  done;
  !best

(* Reduce one maximum-weight row to weight 1 by repeated pair kills; each
   kill strictly reduces that row's weight, so the cycle terminates. *)
let forced_cycle bsf epochs =
  let target = max_weight_row bsf in
  if target >= 0 then
    while Bsf.row_weight bsf target > 1 do
      let cliff = pair_kill bsf target in
      Bsf.apply_clifford2q bsf cliff;
      epochs := (cliff, []) :: !epochs
    done

let run ?(exact = false) ?(max_epochs = 100_000) n terms =
  let bsf = Bsf.of_terms n terms in
  let epochs = ref [] in
  (* epochs: (cliff, locals peeled just before it), most recent first *)
  let trailing = ref [] in
  let epoch_count = ref 0 in
  let finished_loop = ref false in
  while not !finished_loop do
    incr epoch_count;
    (* Past the epoch budget, abandon exact peeling: termination over
       exactness in (never observed) pathological cases. *)
    let commuting_only = exact && !epoch_count < max_epochs in
    let locals =
      List.map row_to_rotation (Bsf.pop_local_rows ~commuting_only bsf)
    in
    if finished bsf then begin
      trailing := locals;
      finished_loop := true
    end
    else begin
      let current_cost = Bsf.cost bsf in
      match best_greedy bsf with
      | Some (cliff, cost) when cost < current_cost -. 1e-9 ->
        Bsf.apply_clifford2q bsf cliff;
        epochs := (cliff, locals) :: !epochs
      | Some _ | None ->
        if exact then begin
          (* In exact mode the constructive fallback can ping-pong: the
             pair-kill's collateral weight growth lands on locals that
             anticommute with the rest and cannot be peeled.  Bail out —
             the synthesis ladders any residual rows in program order,
             which is exact. *)
          trailing := locals;
          finished_loop := true
        end
        else begin
          (* Greedy stalled: constructive fallback.  The locals peeled
             this epoch belong just before the first forced
             conjugation. *)
          let before = !epochs in
          forced_cycle bsf epochs;
          if locals <> [] then begin
            let rec attach = function
              | (c, _) :: rest when rest == before -> (c, locals) :: rest
              | e :: rest -> e :: attach rest
              | [] -> assert false
            in
            epochs := attach !epochs
          end
        end
    end
  done;
  let core = Core (Bsf.to_terms bsf) in
  let ordered_epochs = List.rev !epochs in
  let leading = List.map (fun (c, _) -> Cliff c) ordered_epochs in
  let unwind =
    List.concat_map
      (fun (c, locals) ->
        if locals = [] then [ Cliff c ] else [ Cliff c; Rotations locals ])
      !epochs (* most recent first: c_k, l_k, c_{k-1}, … *)
  in
  let trailing_item = if !trailing = [] then [] else [ Rotations !trailing ] in
  leading @ [ core ] @ trailing_item @ unwind

let num_cliffords cfg =
  List.fold_left
    (fun acc item -> match item with Cliff _ -> acc + 1 | Rotations _ | Core _ -> acc)
    0 cfg

let core_terms cfg =
  List.concat_map
    (function Core ts -> ts | Cliff _ | Rotations _ -> [])
    cfg
