type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (mantissa /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L
let uniform t lo hi = lo +. float t (hi -. lo)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))
