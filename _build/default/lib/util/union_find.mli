(** Disjoint-set forest with path compression and union by rank.

    Used for connectivity checks on coupling graphs and interaction graphs. *)

type t

val create : int -> t
(** [create n] is [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit
(** Merge the sets of the two elements. *)

val same : t -> int -> int -> bool
(** [true] iff both elements are in one set. *)

val count : t -> int
(** Number of disjoint sets. *)
