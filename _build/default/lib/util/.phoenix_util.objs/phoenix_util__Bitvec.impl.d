lib/util/bitvec.ml: Array Format Hashtbl List Stdlib String
