lib/util/prng.mli:
