(** Deterministic splitmix64 pseudo-random number generator.

    All stochastic pieces of the repository (synthetic UCCSD amplitudes,
    random graphs, property-test inputs that need repository-level
    reproducibility) draw from this generator so that every experiment is
    reproducible from a seed, independently of the OCaml [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  Raises [Invalid_argument] on []. *)
