(* Bits are packed 62 per word so that all word values stay positive
   OCaml ints regardless of platform word size games. *)

let bits_per_word = 62

type t = { len : int; words : int array }

let word_count len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (max 1 (word_count len)) 0 }

let length v = v.len
let copy v = { len = v.len; words = Array.copy v.words }

let check_index v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let get v i =
  check_index v i;
  v.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set v i b =
  check_index v i;
  let w = i / bits_per_word and m = 1 lsl (i mod bits_per_word) in
  if b then v.words.(w) <- v.words.(w) lor m
  else v.words.(w) <- v.words.(w) land lnot m

let flip v i =
  check_index v i;
  let w = i / bits_per_word and m = 1 lsl (i mod bits_per_word) in
  v.words.(w) <- v.words.(w) lxor m

(* Kernighan's loop: one iteration per set bit, which suits the sparse
   vectors that dominate BSF workloads. *)
let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let popcount v = Array.fold_left (fun acc w -> acc + popcount_word w) 0 v.words
let is_zero v = Array.for_all (fun w -> w = 0) v.words
let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash v = Hashtbl.hash (v.len, v.words)

let check_same_length a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let xor_into dst src =
  check_same_length dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lxor w) src.words

let or_into dst src =
  check_same_length dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let and_into dst src =
  check_same_length dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let logxor a b = let r = copy a in xor_into r b; r
let logor a b = let r = copy a in or_into r b; r
let logand a b = let r = copy a in and_into r b; r

let and_popcount a b =
  check_same_length a b;
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount_word (w land b.words.(i))) a.words;
  !acc

let or_popcount a b =
  check_same_length a b;
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount_word (w lor b.words.(i))) a.words;
  !acc

let iter_set f v =
  for wi = 0 to Array.length v.words - 1 do
    let w = ref v.words.(wi) in
    while !w <> 0 do
      let low = !w land - !w in
      let rec log2 m acc = if m = 1 then acc else log2 (m lsr 1) (acc + 1) in
      f ((wi * bits_per_word) + log2 low 0);
      w := !w land (!w - 1)
    done
  done

let fold_set f init v =
  let acc = ref init in
  iter_set (fun i -> acc := f !acc i) v;
  !acc

let indices v = List.rev (fold_set (fun acc i -> i :: acc) [] v)

let first_set v =
  let exception Found of int in
  try
    iter_set (fun i -> raise (Found i)) v;
    None
  with Found i -> Some i

let of_indices n is =
  let v = create n in
  List.iter (fun i -> set v i true) is;
  v

let of_string s =
  let v = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set v i true
      | _ -> invalid_arg "Bitvec.of_string: expected '0' or '1'")
    s;
  v

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')
let pp fmt v = Format.pp_print_string fmt (to_string v)
