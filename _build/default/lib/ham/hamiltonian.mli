(** Hamiltonians as weighted Pauli-string sums, and their Trotterization
    into gadget programs.

    Convention: a first-order Trotter step of duration [tau] turns each
    term [h_j·P_j] into the gadget [exp(-i·h_j·τ·P_j)], i.e. a gadget
    angle [θ_j = 2·h_j·τ]. *)

type t

val make : int -> Phoenix_pauli.Pauli_term.t list -> t
(** [make n terms]: every term must act on [n] qubits and be non-identity.
    Raises [Invalid_argument] otherwise. *)

val make_blocks : int -> Phoenix_pauli.Pauli_term.t list list -> t
(** Like [make], but records algorithm-level block structure (e.g. one
    block per UCCSD excitation operator).  Block-based compilers group by
    these blocks instead of re-deriving groups from supports. *)

val term_blocks : t -> Phoenix_pauli.Pauli_term.t list list option
(** The recorded block structure, if the Hamiltonian was built with
    [make_blocks]. *)

val num_qubits : t -> int
val terms : t -> Phoenix_pauli.Pauli_term.t list
val num_terms : t -> int

val max_weight : t -> int
(** Largest Pauli weight among terms ([w_max] of Table I). *)

val scale : float -> t -> t
(** Multiply every coefficient. *)

val trotter_gadgets :
  ?tau:float -> t -> (Phoenix_pauli.Pauli_string.t * float) list
(** First-order Trotter step: gadget list [(P_j, 2·h_j·τ)] in term order
    ([tau] defaults to 1). *)

val trotter_gadgets_order2 :
  ?tau:float -> t -> (Phoenix_pauli.Pauli_string.t * float) list
(** Second-order (symmetric) Trotter step
    [S₂ = Π_j e^{-i h_j τ/2 P_j} · Π_{j reversed} e^{-i h_j τ/2 P_j}]:
    forward half-angle sweep followed by the reversed sweep. *)

val to_lines : t -> string list
(** One ["<coeff> <pauli-string>"] line per term. *)

val of_lines : string list -> t
(** Inverse of [to_lines]; blank lines and [#] comments are skipped.
    Raises [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> t -> unit
