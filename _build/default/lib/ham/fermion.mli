(** Fermionic ladder operators under qubit encodings.

    Both the Jordan–Wigner and the Bravyi–Kitaev transformations are
    implemented from scratch; the Bravyi–Kitaev index sets are derived
    from the Fenwick-tree construction of Seeley, Richard and Love (2012).
    Correctness is established by the canonical anticommutation relations
    in the test suite. *)

type encoding = Jordan_wigner | Bravyi_kitaev

val encoding_of_string : string -> encoding
(** Accepts ["jw"] / ["bk"] (case-insensitive).
    Raises [Invalid_argument] otherwise. *)

val encoding_to_string : encoding -> string

val creation : encoding -> int -> int -> Pauli_sum.t
(** [creation enc n j] is [a†_j] over [n] modes.
    Raises [Invalid_argument] when [j] is out of range. *)

val annihilation : encoding -> int -> int -> Pauli_sum.t
(** [a_j]. *)

val number_operator : encoding -> int -> int -> Pauli_sum.t
(** [a†_j · a_j]. *)

val excitation_single : encoding -> int -> p:int -> q:int -> Pauli_sum.t
(** The Hermitian generator [i(a†_p a_q − a†_q a_p)] of a single
    excitation ([p ≠ q]). *)

val excitation_double :
  encoding -> int -> p:int -> q:int -> r:int -> s:int -> Pauli_sum.t
(** The Hermitian generator [i(a†_p a†_q a_r a_s − h.c.)] of a double
    excitation; the four modes must be distinct. *)

(** {1 Bravyi–Kitaev index sets} (exposed for testing) *)

val bk_update_set : int -> int -> int list
val bk_parity_set : int -> int -> int list
val bk_flip_set : int -> int -> int list
val bk_remainder_set : int -> int -> int list
(** [bk_*_set n j]: the U/P/F/R sets of mode [j] over [n] modes. *)
