module Prng = Phoenix_util.Prng
module Pauli_term = Phoenix_pauli.Pauli_term

let check_symmetric name m =
  let n = Array.length m in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg (Printf.sprintf "Electronic_structure: %s not square" name);
      Array.iteri
        (fun j v ->
          if Float.abs (v -. m.(j).(i)) > 1e-12 then
            invalid_arg
              (Printf.sprintf "Electronic_structure: %s not symmetric" name))
        row)
    m

(* spin-orbital index, interleaved layout *)
let so p spin = (2 * p) + spin

let of_integrals enc ~one_body ~two_body_density =
  check_symmetric "one_body" one_body;
  check_symmetric "two_body_density" two_body_density;
  let m = Array.length one_body in
  if m = 0 then invalid_arg "Electronic_structure: empty integrals";
  let n = 2 * m in
  if Array.length two_body_density <> n then
    invalid_arg "Electronic_structure: two-body matrix must be 2m × 2m";
  let cre = Fermion.creation enc n and ann = Fermion.annihilation enc n in
  let num = Fermion.number_operator enc n in
  let acc = ref (Pauli_sum.zero n) in
  let add c op =
    acc := Pauli_sum.add !acc (Pauli_sum.scale { Complex.re = c; im = 0.0 } op)
  in
  for p = 0 to m - 1 do
    for q = 0 to m - 1 do
      if one_body.(p).(q) <> 0.0 then
        List.iter
          (fun spin ->
            add one_body.(p).(q)
              (Pauli_sum.mul (cre (so p spin)) (ann (so q spin))))
          [ 0; 1 ]
    done
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if two_body_density.(i).(j) <> 0.0 then
        add two_body_density.(i).(j) (Pauli_sum.mul (num i) (num j))
    done
  done;
  Hamiltonian.make n
    (List.map
       (fun (p, c) -> Pauli_term.make p c)
       (Pauli_sum.to_hermitian_terms !acc))

let synthetic ?(seed = 11) enc ~n_spatial =
  if n_spatial <= 0 then invalid_arg "Electronic_structure.synthetic: size";
  let rng = Prng.create seed in
  let one_body = Array.make_matrix n_spatial n_spatial 0.0 in
  for p = 0 to n_spatial - 1 do
    one_body.(p).(p) <- Prng.uniform rng (-2.0) (-0.5) +. float_of_int p;
    for q = p + 1 to n_spatial - 1 do
      let hop = Prng.uniform rng 0.05 0.4 /. float_of_int (q - p) in
      one_body.(p).(q) <- hop;
      one_body.(q).(p) <- hop
    done
  done;
  let n = 2 * n_spatial in
  let two = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Prng.uniform rng 0.1 0.5 in
      two.(i).(j) <- v;
      two.(j).(i) <- v
    done
  done;
  of_integrals enc ~one_body ~two_body_density:two

let hubbard_chain ?(t = 1.0) ?(u = 2.0) enc m =
  if m <= 1 then invalid_arg "Electronic_structure.hubbard_chain: need ≥ 2 sites";
  let one_body = Array.make_matrix m m 0.0 in
  for i = 0 to m - 2 do
    one_body.(i).(i + 1) <- -.t;
    one_body.(i + 1).(i) <- -.t
  done;
  let n = 2 * m in
  let two = Array.make_matrix n n 0.0 in
  for i = 0 to m - 1 do
    two.(so i 0).(so i 1) <- u;
    two.(so i 1).(so i 0) <- u
  done;
  of_integrals enc ~one_body ~two_body_density:two
