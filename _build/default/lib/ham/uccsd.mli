(** UCCSD ansatz generation.

    A molecule is abstracted as [(n_spatial, n_electrons, frozen)] — the
    data that determines the full structure of the spin-conserving UCCSD
    singles/doubles excitation list and hence of the compiled program.
    Spin-orbitals are interleaved ([2·orbital + spin]); closed-shell
    occupations are assumed (every molecule of the paper's Table I
    qualifies).

    Substitution note (see DESIGN.md): real CCSD/MP2 amplitudes require
    electronic-structure integrals; amplitudes here are synthetic, seeded
    and reproducible.  Gate counts, depths and program structure — the
    quantities the paper evaluates — depend only on the excitation
    structure, which is exact. *)

type spec = {
  name : string;
  n_spatial : int;  (** spatial orbitals before freezing *)
  n_electrons : int;
  frozen : int;  (** frozen core spatial orbitals *)
}

type excitation =
  | Single of { p : int; q : int }  (** [i(a†_p a_q − h.c.)], spin-orbital indices *)
  | Double of { p : int; q : int; r : int; s : int }
      (** [i(a†_p a†_q a_r a_s − h.c.)] *)

val num_qubits : spec -> int
(** [2·(n_spatial − frozen)]. *)

val num_active_electrons : spec -> int
(** [n_electrons − 2·frozen].  Raises [Invalid_argument] if negative or
    odd (open shells are out of scope). *)

val excitations : spec -> excitation list
(** Spin-conserving singles then doubles, in a deterministic order. *)

val num_pauli_terms : Fermion.encoding -> spec -> int
(** Predicted term count: 2 per single + 8 per double (validated against
    the paper's Table I in the test suite). *)

val ansatz :
  ?seed:int -> ?amplitude_scale:float -> Fermion.encoding -> spec ->
  Hamiltonian.t
(** The cluster operator as a weighted Pauli-term list, excitation by
    excitation (preserving the block adjacency that Paulihedral-style
    grouping exploits).  [amplitude_scale] (default 1) multiplies all
    synthetic amplitudes — the rescaling knob of the paper's Fig. 8. *)
