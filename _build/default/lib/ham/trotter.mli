(** Product-formula and randomized compilers from a Hamiltonian to a
    gadget program.

    [first_order]/[second_order] re-export the deterministic formulas on
    {!Hamiltonian}; [qdrift] implements Campbell's randomized protocol,
    where terms are sampled with probability [|h_j|/λ] and every gadget
    carries the same angle [2·λ·t/N] — the sampling, not the weights,
    encodes the coefficients. *)

val first_order :
  ?tau:float -> Hamiltonian.t -> (Phoenix_pauli.Pauli_string.t * float) list

val second_order :
  ?tau:float -> Hamiltonian.t -> (Phoenix_pauli.Pauli_string.t * float) list

val lambda : Hamiltonian.t -> float
(** [Σ_j |h_j|], the 1-norm governing qDRIFT's cost. *)

val qdrift :
  seed:int -> samples:int -> ?time:float -> Hamiltonian.t ->
  (Phoenix_pauli.Pauli_string.t * float) list
(** [qdrift ~seed ~samples h]: [samples] gadgets drawn i.i.d. with
    probability [|h_j|/λ], each [exp(−i·sign(h_j)·(λ·t/N)·P_j)].
    Raises [Invalid_argument] for non-positive [samples]. *)
