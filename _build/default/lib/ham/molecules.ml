let ch2 = { Uccsd.name = "CH2"; n_spatial = 7; n_electrons = 8; frozen = 0 }
let h2o = { Uccsd.name = "H2O"; n_spatial = 7; n_electrons = 10; frozen = 0 }
let lih = { Uccsd.name = "LiH"; n_spatial = 6; n_electrons = 4; frozen = 0 }
let nh = { Uccsd.name = "NH"; n_spatial = 6; n_electrons = 8; frozen = 0 }

let frozen spec =
  { spec with Uccsd.name = spec.Uccsd.name ^ "_frz"; frozen = spec.Uccsd.frozen + 1 }

type benchmark = {
  label : string;
  spec : Uccsd.spec;
  encoding : Fermion.encoding;
}

let variants base =
  let cmplt = base and frz = frozen base in
  [
    ( Printf.sprintf "%s_cmplt_BK" base.Uccsd.name, cmplt, Fermion.Bravyi_kitaev );
    ( Printf.sprintf "%s_cmplt_JW" base.Uccsd.name, cmplt, Fermion.Jordan_wigner );
    ( Printf.sprintf "%s_frz_BK" base.Uccsd.name, frz, Fermion.Bravyi_kitaev );
    ( Printf.sprintf "%s_frz_JW" base.Uccsd.name, frz, Fermion.Jordan_wigner );
  ]

let table1_suite =
  List.concat_map
    (fun base ->
      List.map
        (fun (label, spec, encoding) -> { label; spec; encoding })
        (variants base))
    [ ch2; h2o; lih; nh ]

let find label =
  match List.find_opt (fun b -> b.label = label) table1_suite with
  | Some b -> b
  | None -> raise Not_found

let lih_reduced =
  { Uccsd.name = "LiH_reduced"; n_spatial = 3; n_electrons = 2; frozen = 0 }

let nh_reduced =
  { Uccsd.name = "NH_reduced"; n_spatial = 4; n_electrons = 4; frozen = 0 }
