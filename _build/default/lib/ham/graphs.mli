(** Simple undirected graphs and seeded generators for QAOA workloads. *)

type t

val make : int -> (int * int) list -> t
(** [make n edges]: edges are normalized (smaller endpoint first) and
    deduplicated; self-loops raise [Invalid_argument]. *)

val num_vertices : t -> int
val edges : t -> (int * int) list
(** Normalized, sorted, unique. *)

val num_edges : t -> int
val degree : t -> int -> int
val neighbors : t -> int -> int list
val is_regular : int -> t -> bool
val is_connected : t -> bool

val path : int -> t
val cycle : int -> t
val complete : int -> t

val random_regular : seed:int -> degree:int -> int -> t
(** Seeded [d]-regular random graph by the pairing model with rejection
    of loops/multi-edges.  Requires [n·d] even and [d < n].
    Raises [Invalid_argument] otherwise; raises [Failure] if no simple
    matching is found after many attempts (practically unreachable for
    the sizes used here). *)

val erdos_renyi : seed:int -> p:float -> int -> t
(** Seeded G(n, p). *)
