(** Second-quantized electronic-structure Hamiltonians.

    Substitution note (DESIGN.md): real molecular integrals require a
    quantum-chemistry package; this module builds Hamiltonians from
    caller-supplied or synthetic integrals with the correct operator
    structure — spin-conserving one-body hopping plus density–density
    two-body interactions — which exercises the same encoding and
    compilation paths and yields non-trivial correlated ground states
    for the VQE example. *)

val of_integrals :
  Fermion.encoding ->
  one_body:float array array ->
  two_body_density:float array array ->
  Hamiltonian.t
(** [of_integrals enc ~one_body ~two_body_density] over [m] spatial
    orbitals ([2m] qubits, interleaved spins):
    [Σ_{p,q,σ} h_pq a†_{pσ} a_{qσ} + Σ_{i<j} v_ij n_i n_j], where
    [one_body] is a symmetric [m×m] matrix and [two_body_density] a
    symmetric [2m×2m] matrix over spin-orbitals.  The constant (identity)
    component is dropped.  Raises [Invalid_argument] on asymmetric or
    mis-sized inputs. *)

val synthetic :
  ?seed:int -> Fermion.encoding -> n_spatial:int -> Hamiltonian.t
(** Seeded random integrals: hopping decaying with orbital distance and
    repulsive density–density interactions, loosely molecular in
    shape. *)

val hubbard_chain :
  ?t:float -> ?u:float -> Fermion.encoding -> int -> Hamiltonian.t
(** The Fermi–Hubbard chain on [m] sites ([2m] qubits):
    [−t Σ_{⟨i,j⟩,σ} (a†_{iσ} a_{jσ} + h.c.) + U Σ_i n_{i↑} n_{i↓}]. *)
