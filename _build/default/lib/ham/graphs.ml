module Prng = Phoenix_util.Prng
module Union_find = Phoenix_util.Union_find

type t = { n : int; edges : (int * int) list }

let make n raw_edges =
  if n <= 0 then invalid_arg "Graphs.make: need at least one vertex";
  let normalize (a, b) =
    if a = b then invalid_arg "Graphs.make: self-loop";
    if a < 0 || b < 0 || a >= n || b >= n then
      invalid_arg "Graphs.make: vertex out of range";
    min a b, max a b
  in
  { n; edges = List.sort_uniq compare (List.map normalize raw_edges) }

let num_vertices g = g.n
let edges g = g.edges
let num_edges g = List.length g.edges

let degree g v =
  List.fold_left
    (fun acc (a, b) -> if a = v || b = v then acc + 1 else acc)
    0 g.edges

let neighbors g v =
  List.filter_map
    (fun (a, b) ->
      if a = v then Some b else if b = v then Some a else None)
    g.edges

let is_regular d g = List.for_all (fun v -> degree g v = d) (List.init g.n (fun i -> i))

let is_connected g =
  let uf = Union_find.create g.n in
  List.iter (fun (a, b) -> Union_find.union uf a b) g.edges;
  Union_find.count uf = 1

let path n = make n (List.init (n - 1) (fun i -> i, i + 1))
let cycle n = make n ((n - 1, 0) :: List.init (n - 1) (fun i -> i, i + 1))

let complete n =
  make n
    (List.concat_map
       (fun i -> List.init (n - 1 - i) (fun d -> i, i + 1 + d))
       (List.init n (fun i -> i)))

let random_regular ~seed ~degree n =
  if degree >= n then invalid_arg "Graphs.random_regular: degree >= n";
  if n * degree mod 2 <> 0 then
    invalid_arg "Graphs.random_regular: n·d must be even";
  let rng = Prng.create seed in
  let stubs = Array.init (n * degree) (fun i -> i / degree) in
  let attempt () =
    Prng.shuffle rng stubs;
    let seen = Hashtbl.create (n * degree) in
    let rec pair i acc =
      if i >= Array.length stubs then Some acc
      else begin
        let a = stubs.(i) and b = stubs.(i + 1) in
        let key = min a b, max a b in
        if a = b || Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          pair (i + 2) (key :: acc)
        end
      end
    in
    pair 0 []
  in
  let rec retry k =
    if k = 0 then failwith "Graphs.random_regular: no simple pairing found"
    else begin
      match attempt () with
      | Some edge_list -> make n edge_list
      | None -> retry (k - 1)
    end
  in
  retry 10_000

let erdos_renyi ~seed ~p n =
  let rng = Prng.create seed in
  let edge_list = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.float rng 1.0 < p then edge_list := (i, j) :: !edge_list
    done
  done;
  make n !edge_list
