(** Spin-lattice Hamiltonians for the example applications. *)

val heisenberg_chain :
  ?jx:float -> ?jy:float -> ?jz:float -> ?periodic:bool -> int ->
  Hamiltonian.t
(** Nearest-neighbour [Σ (jx·XX + jy·YY + jz·ZZ)] on a chain (couplings
    default to 1). *)

val tfim_chain : ?j:float -> ?h:float -> ?periodic:bool -> int -> Hamiltonian.t
(** Transverse-field Ising: [−j·Σ Z_i Z_{i+1} − h·Σ X_i]. *)

val xy_chain : ?j:float -> ?periodic:bool -> int -> Hamiltonian.t
(** [j·Σ (XX + YY)]. *)

val heisenberg_lattice :
  ?jx:float -> ?jy:float -> ?jz:float -> rows:int -> cols:int -> unit ->
  Hamiltonian.t
(** Nearest-neighbour Heisenberg model on an open [rows × cols] grid. *)

val tfim_lattice : ?j:float -> ?h:float -> rows:int -> cols:int -> unit -> Hamiltonian.t
(** Transverse-field Ising on an open grid. *)

val xxz_chain : ?j:float -> ?delta:float -> ?periodic:bool -> int -> Hamiltonian.t
(** [j·Σ (XX + YY + Δ·ZZ)]. *)

val random_field_heisenberg :
  seed:int -> ?j:float -> ?w:float -> int -> Hamiltonian.t
(** Heisenberg chain plus random longitudinal fields drawn uniformly from
    [[−w, w]] — the standard many-body-localization workload. *)
