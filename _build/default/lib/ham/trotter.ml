module Prng = Phoenix_util.Prng
module Pauli_term = Phoenix_pauli.Pauli_term

let first_order ?tau h = Hamiltonian.trotter_gadgets ?tau h
let second_order ?tau h = Hamiltonian.trotter_gadgets_order2 ?tau h

let lambda h =
  List.fold_left
    (fun acc (t : Pauli_term.t) -> acc +. Float.abs t.Pauli_term.coeff)
    0.0 (Hamiltonian.terms h)

let qdrift ~seed ~samples ?(time = 1.0) h =
  if samples <= 0 then invalid_arg "Trotter.qdrift: samples must be positive";
  let rng = Prng.create seed in
  let terms = Array.of_list (Hamiltonian.terms h) in
  let lam = lambda h in
  if lam <= 0.0 then invalid_arg "Trotter.qdrift: zero Hamiltonian";
  (* cumulative distribution over |h_j| *)
  let cumulative = Array.make (Array.length terms) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i (t : Pauli_term.t) ->
      acc := !acc +. Float.abs t.Pauli_term.coeff;
      cumulative.(i) <- !acc)
    terms;
  let draw () =
    let target = Prng.float rng lam in
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) < target then search (mid + 1) hi else search lo mid
      end
    in
    terms.(search 0 (Array.length terms - 1))
  in
  let angle = 2.0 *. lam *. time /. float_of_int samples in
  List.init samples (fun _ ->
      let t = draw () in
      let sign = if t.Pauli_term.coeff < 0.0 then -1.0 else 1.0 in
      t.Pauli_term.pauli, sign *. angle)
