(** Complex-weighted sums of Pauli strings — the operator algebra in which
    fermionic ladder operators are expanded.

    Values are normalized: like strings are collected and terms with
    negligible coefficients dropped. *)

type t

val zero : int -> t
(** The zero operator over [n] qubits. *)

val of_term : Complex.t -> Phoenix_pauli.Pauli_string.t -> t
val identity : int -> t
(** The identity operator (coefficient 1 on the all-[I] string). *)

val num_qubits : t -> int
val terms : t -> (Complex.t * Phoenix_pauli.Pauli_string.t) list
(** Normalized term list in a canonical (string-sorted) order. *)

val num_terms : t -> int
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val scale : Complex.t -> t -> t
val mul : t -> t -> t
(** Operator product, expanding Pauli-string products with phases. *)

val dagger : t -> t
(** Hermitian adjoint: conjugates coefficients (Pauli strings are
    self-adjoint). *)

val anticommutator : t -> t -> t
(** [{a, b} = a·b + b·a]. *)

val commutator : t -> t -> t

val is_hermitian : t -> bool
val is_anti_hermitian : t -> bool

val to_hermitian_terms : t -> (Phoenix_pauli.Pauli_string.t * float) list
(** Real coefficients of a Hermitian sum, identity term dropped.
    Raises [Invalid_argument] when some coefficient has a significant
    imaginary part. *)

val pp : Format.formatter -> t -> unit
