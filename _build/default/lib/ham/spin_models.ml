module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Pauli_term = Phoenix_pauli.Pauli_term

let bond_term n p coeff (a, b) =
  Pauli_term.make
    (Pauli_string.set (Pauli_string.single n a p) b p)
    coeff

let chain_bonds ~periodic n =
  let open_bonds = List.init (n - 1) (fun i -> i, i + 1) in
  if periodic && n > 2 then open_bonds @ [ n - 1, 0 ] else open_bonds

let heisenberg_chain ?(jx = 1.0) ?(jy = 1.0) ?(jz = 1.0) ?(periodic = false) n =
  let bonds = chain_bonds ~periodic n in
  let per_bond bond =
    List.filter_map
      (fun (p, j) -> if j = 0.0 then None else Some (bond_term n p j bond))
      [ Pauli.X, jx; Pauli.Y, jy; Pauli.Z, jz ]
  in
  Hamiltonian.make n (List.concat_map per_bond bonds)

let tfim_chain ?(j = 1.0) ?(h = 1.0) ?(periodic = false) n =
  let bonds = chain_bonds ~periodic n in
  let zz = List.map (bond_term n Pauli.Z (-.j)) bonds in
  let field =
    List.init n (fun q ->
        Pauli_term.make (Pauli_string.single n q Pauli.X) (-.h))
  in
  Hamiltonian.make n (zz @ field)

let xy_chain ?(j = 1.0) ?(periodic = false) n =
  heisenberg_chain ~jx:j ~jy:j ~jz:0.0 ~periodic n

let grid_bonds ~rows ~cols =
  let id r c = (r * cols) + c in
  List.concat_map
    (fun r ->
      List.filter_map
        (fun c -> if c < cols - 1 then Some (id r c, id r (c + 1)) else None)
        (List.init cols (fun c -> c)))
    (List.init rows (fun r -> r))
  @ List.concat_map
      (fun r ->
        List.map (fun c -> (id r c, id (r + 1) c)) (List.init cols (fun c -> c)))
      (List.init (rows - 1) (fun r -> r))

let heisenberg_lattice ?(jx = 1.0) ?(jy = 1.0) ?(jz = 1.0) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Spin_models.heisenberg_lattice: size";
  let n = rows * cols in
  let per_bond bond =
    List.filter_map
      (fun (p, j) -> if j = 0.0 then None else Some (bond_term n p j bond))
      [ Pauli.X, jx; Pauli.Y, jy; Pauli.Z, jz ]
  in
  Hamiltonian.make n (List.concat_map per_bond (grid_bonds ~rows ~cols))

let tfim_lattice ?(j = 1.0) ?(h = 1.0) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Spin_models.tfim_lattice: size";
  let n = rows * cols in
  let zz = List.map (bond_term n Pauli.Z (-.j)) (grid_bonds ~rows ~cols) in
  let field =
    List.init n (fun q -> Pauli_term.make (Pauli_string.single n q Pauli.X) (-.h))
  in
  Hamiltonian.make n (zz @ field)

let xxz_chain ?(j = 1.0) ?(delta = 0.5) ?periodic n =
  heisenberg_chain ~jx:j ~jy:j ~jz:(j *. delta) ?periodic n

let random_field_heisenberg ~seed ?(j = 1.0) ?(w = 2.0) n =
  let rng = Phoenix_util.Prng.create seed in
  let base = heisenberg_chain ~jx:j ~jy:j ~jz:j n in
  let fields =
    List.init n (fun q ->
        Pauli_term.make
          (Pauli_string.single n q Pauli.Z)
          (Phoenix_util.Prng.uniform rng (-.w) w))
  in
  Hamiltonian.make n (Hamiltonian.terms base @ fields)
