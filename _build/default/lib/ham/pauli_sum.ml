module Pauli_string = Phoenix_pauli.Pauli_string

type t = { n : int; terms : (Complex.t * Pauli_string.t) list }

let tolerance = 1e-12

let normalize n terms =
  let table = Hashtbl.create (List.length terms) in
  List.iter
    (fun ((c : Complex.t), p) ->
      let key = Pauli_string.to_string p in
      match Hashtbl.find_opt table key with
      | Some (acc, _) -> Hashtbl.replace table key (Complex.add acc c, p)
      | None -> Hashtbl.add table key (c, p))
    terms;
  let collected =
    Hashtbl.fold
      (fun _ (c, p) acc ->
        if Complex.norm c < tolerance then acc else (c, p) :: acc)
      table []
  in
  let sorted =
    List.sort (fun (_, p) (_, q) -> Pauli_string.compare p q) collected
  in
  { n; terms = sorted }

let zero n = { n; terms = [] }

let of_term c p =
  normalize (Pauli_string.num_qubits p) [ c, p ]

let identity n = of_term Complex.one (Pauli_string.identity n)

let num_qubits t = t.n
let terms t = t.terms
let num_terms t = List.length t.terms
let is_zero t = t.terms = []

let check_compatible a b =
  if a.n <> b.n then invalid_arg "Pauli_sum: qubit-count mismatch"

let add a b =
  check_compatible a b;
  normalize a.n (a.terms @ b.terms)

let scale c t =
  normalize t.n (List.map (fun (c', p) -> Complex.mul c c', p) t.terms)

let neg t = scale { Complex.re = -1.0; im = 0.0 } t
let sub a b = add a (neg b)

let i_pow k =
  match ((k mod 4) + 4) mod 4 with
  | 0 -> Complex.one
  | 1 -> Complex.i
  | 2 -> { Complex.re = -1.0; im = 0.0 }
  | _ -> { Complex.re = 0.0; im = -1.0 }

let mul a b =
  check_compatible a b;
  let products =
    List.concat_map
      (fun (ca, pa) ->
        List.map
          (fun (cb, pb) ->
            let k, p = Pauli_string.mul pa pb in
            Complex.mul (Complex.mul ca cb) (i_pow k), p)
          b.terms)
      a.terms
  in
  normalize a.n products

let dagger t =
  normalize t.n (List.map (fun (c, p) -> Complex.conj c, p) t.terms)

let anticommutator a b = add (mul a b) (mul b a)
let commutator a b = sub (mul a b) (mul b a)

let is_hermitian t =
  List.for_all (fun ((c : Complex.t), _) -> Float.abs c.Complex.im < tolerance)
    t.terms

let is_anti_hermitian t =
  List.for_all (fun ((c : Complex.t), _) -> Float.abs c.Complex.re < tolerance)
    t.terms

let to_hermitian_terms t =
  List.filter_map
    (fun ((c : Complex.t), p) ->
      if Float.abs c.Complex.im > 1e-9 then
        invalid_arg "Pauli_sum.to_hermitian_terms: non-Hermitian sum";
      if Pauli_string.is_identity p then None else Some (p, c.Complex.re))
    t.terms

let pp fmt t =
  if t.terms = [] then Format.pp_print_string fmt "0"
  else
    List.iter
      (fun ((c : Complex.t), p) ->
        Format.fprintf fmt "(%+.4g%+.4gi)·%a " c.Complex.re c.Complex.im
          Pauli_string.pp p)
      t.terms
