(** Molecule presets mirroring the paper's UCCSD benchmark suite (Table I).

    Orbital/electron counts follow the STO-3G minimal basis: CH2 and H2O
    have 7 spatial orbitals, LiH and NH have 6; frozen-core variants
    freeze the heavy atom's 1s orbital.  These presets reproduce Table I's
    qubit and Pauli-string counts exactly. *)

val ch2 : Uccsd.spec
val h2o : Uccsd.spec
val lih : Uccsd.spec
val nh : Uccsd.spec
(** Complete-orbital specs (frozen = 0). *)

val frozen : Uccsd.spec -> Uccsd.spec
(** Frozen-core variant (freezes one spatial orbital). *)

type benchmark = {
  label : string;  (** e.g. ["LiH_frz_JW"], matching Table I *)
  spec : Uccsd.spec;
  encoding : Fermion.encoding;
}

val table1_suite : benchmark list
(** The 16 UCCSD benchmarks in Table I order. *)

val find : string -> benchmark
(** Lookup by label.  Raises [Not_found]. *)

val lih_reduced : Uccsd.spec
val nh_reduced : Uccsd.spec
(** Down-scaled molecules (6 and 8 qubits) used by the algorithmic-error
    experiment, where exact dense simulation bounds the size. *)
