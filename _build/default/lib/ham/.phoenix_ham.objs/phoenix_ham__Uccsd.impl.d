lib/ham/uccsd.ml: Fermion Hamiltonian Hashtbl List Pauli_sum Phoenix_pauli Phoenix_util
