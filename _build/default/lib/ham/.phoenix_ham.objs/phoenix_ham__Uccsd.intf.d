lib/ham/uccsd.mli: Fermion Hamiltonian
