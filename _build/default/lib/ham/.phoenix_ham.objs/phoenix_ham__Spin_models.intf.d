lib/ham/spin_models.mli: Hamiltonian
