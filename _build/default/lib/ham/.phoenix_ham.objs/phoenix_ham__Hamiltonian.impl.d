lib/ham/hamiltonian.ml: Format List Phoenix_pauli Printf String
