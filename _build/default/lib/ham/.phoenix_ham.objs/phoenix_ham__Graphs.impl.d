lib/ham/graphs.ml: Array Hashtbl List Phoenix_util
