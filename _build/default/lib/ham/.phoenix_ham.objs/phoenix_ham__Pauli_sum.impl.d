lib/ham/pauli_sum.ml: Complex Float Format Hashtbl List Phoenix_pauli
