lib/ham/trotter.ml: Array Float Hamiltonian List Phoenix_pauli Phoenix_util
