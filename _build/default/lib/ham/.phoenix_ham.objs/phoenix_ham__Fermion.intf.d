lib/ham/fermion.mli: Pauli_sum
