lib/ham/molecules.ml: Fermion List Printf Uccsd
