lib/ham/electronic_structure.mli: Fermion Hamiltonian
