lib/ham/hamiltonian.mli: Format Phoenix_pauli
