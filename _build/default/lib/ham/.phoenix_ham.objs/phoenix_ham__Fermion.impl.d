lib/ham/fermion.ml: Array Complex Hashtbl List Pauli_sum Phoenix_pauli Printf String
