lib/ham/spin_models.ml: Hamiltonian List Phoenix_pauli Phoenix_util
