lib/ham/qaoa.mli: Graphs Hamiltonian
