lib/ham/graphs.mli:
