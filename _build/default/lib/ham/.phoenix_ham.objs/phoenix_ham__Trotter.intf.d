lib/ham/trotter.mli: Hamiltonian Phoenix_pauli
