lib/ham/qaoa.ml: Graphs Hamiltonian List Phoenix_pauli Phoenix_util
