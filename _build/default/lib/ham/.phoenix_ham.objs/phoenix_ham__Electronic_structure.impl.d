lib/ham/electronic_structure.ml: Array Complex Fermion Float Hamiltonian List Pauli_sum Phoenix_pauli Phoenix_util Printf
