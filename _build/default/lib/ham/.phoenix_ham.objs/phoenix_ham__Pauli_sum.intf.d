lib/ham/pauli_sum.mli: Complex Format Phoenix_pauli
