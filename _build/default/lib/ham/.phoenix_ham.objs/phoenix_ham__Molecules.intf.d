lib/ham/molecules.mli: Fermion Uccsd
