module Prng = Phoenix_util.Prng
module Pauli_term = Phoenix_pauli.Pauli_term

type spec = {
  name : string;
  n_spatial : int;
  n_electrons : int;
  frozen : int;
}

type excitation =
  | Single of { p : int; q : int }
  | Double of { p : int; q : int; r : int; s : int }

let active_spatial spec =
  let m = spec.n_spatial - spec.frozen in
  if m <= 0 then invalid_arg "Uccsd: no active orbitals";
  m

let num_qubits spec = 2 * active_spatial spec

let num_active_electrons spec =
  let e = spec.n_electrons - (2 * spec.frozen) in
  if e < 0 then invalid_arg "Uccsd: negative active electron count";
  if e mod 2 <> 0 then invalid_arg "Uccsd: open-shell molecules unsupported";
  e

(* Spin-orbital index of (spatial orbital, spin), interleaved layout. *)
let so orbital spin = (2 * orbital) + spin

let excitations spec =
  let m = active_spatial spec in
  let n_occ = num_active_electrons spec / 2 in
  if n_occ > m then invalid_arg "Uccsd: more electrons than orbitals";
  let occ = List.init n_occ (fun i -> i) in
  let virt = List.init (m - n_occ) (fun a -> n_occ + a) in
  let singles =
    List.concat_map
      (fun i ->
        List.concat_map
          (fun a ->
            List.map (fun sp -> Single { p = so a sp; q = so i sp }) [ 0; 1 ])
          virt)
      occ
  in
  let ordered_pairs xs =
    List.concat_map
      (fun x -> List.filter_map (fun y -> if y > x then Some (x, y) else None) xs)
      xs
  in
  let same_spin sp =
    List.concat_map
      (fun (i, j) ->
        List.map
          (fun (a, b) ->
            Double { p = so a sp; q = so b sp; r = so j sp; s = so i sp })
          (ordered_pairs virt))
      (ordered_pairs occ)
  in
  let mixed =
    List.concat_map
      (fun i ->
        List.concat_map
          (fun j ->
            List.concat_map
              (fun a ->
                List.map
                  (fun b ->
                    Double { p = so a 0; q = so b 1; r = so j 1; s = so i 0 })
                  virt)
              virt)
          occ)
      occ
  in
  singles @ same_spin 0 @ same_spin 1 @ mixed

let num_pauli_terms _enc spec =
  List.fold_left
    (fun acc ex -> acc + (match ex with Single _ -> 2 | Double _ -> 8))
    0 (excitations spec)

let excitation_operator enc n = function
  | Single { p; q } -> Fermion.excitation_single enc n ~p ~q
  | Double { p; q; r; s } -> Fermion.excitation_double enc n ~p ~q ~r ~s

let ansatz ?(seed = 1) ?(amplitude_scale = 1.0) enc spec =
  let n = num_qubits spec in
  let rng = Prng.create (seed + Hashtbl.hash spec.name) in
  let blocks =
    List.map
      (fun ex ->
        let magnitude =
          match ex with
          | Single _ -> Prng.uniform rng 0.01 0.05
          | Double _ -> Prng.uniform rng 0.01 0.1
        in
        let sign = if Prng.bool rng then 1.0 else -1.0 in
        let amplitude = amplitude_scale *. sign *. magnitude in
        let op = excitation_operator enc n ex in
        List.map
          (fun (p, c) -> Pauli_term.make p (amplitude *. c))
          (Pauli_sum.to_hermitian_terms op))
      (excitations spec)
  in
  (* one block per excitation operator: the algorithm-level IR blocking
     Paulihedral-family compilers consume *)
  Hamiltonian.make_blocks n blocks
