module Pauli_string = Phoenix_pauli.Pauli_string
module Pauli_term = Phoenix_pauli.Pauli_term

type t = {
  n : int;
  terms : Pauli_term.t list;
  block_sizes : int list option;
}

let make n terms =
  if n <= 0 then invalid_arg "Hamiltonian.make: need at least one qubit";
  List.iter
    (fun (term : Pauli_term.t) ->
      if Pauli_string.num_qubits term.Pauli_term.pauli <> n then
        invalid_arg "Hamiltonian.make: qubit-count mismatch";
      if Pauli_string.is_identity term.Pauli_term.pauli then
        invalid_arg "Hamiltonian.make: identity term")
    terms;
  { n; terms; block_sizes = None }

let make_blocks n blocks =
  let flat = make n (List.concat blocks) in
  { flat with block_sizes = Some (List.map List.length blocks) }

let term_blocks t =
  match t.block_sizes with
  | None -> None
  | Some sizes ->
    let rec split terms = function
      | [] -> []
      | size :: rest ->
        let rec take k acc terms =
          if k = 0 then List.rev acc, terms
          else begin
            match terms with
            | x :: tl -> take (k - 1) (x :: acc) tl
            | [] -> assert false
          end
        in
        let block, remaining = take size [] terms in
        block :: split remaining rest
    in
    Some (split t.terms sizes)

let num_qubits t = t.n
let terms t = t.terms
let num_terms t = List.length t.terms

let max_weight t =
  List.fold_left (fun acc term -> max acc (Pauli_term.weight term)) 0 t.terms

let scale s t = { t with terms = List.map (Pauli_term.scale s) t.terms }

let trotter_gadgets ?(tau = 1.0) t =
  List.map
    (fun (term : Pauli_term.t) ->
      term.Pauli_term.pauli, 2.0 *. term.Pauli_term.coeff *. tau)
    t.terms

let trotter_gadgets_order2 ?(tau = 1.0) t =
  let half = trotter_gadgets ~tau:(tau /. 2.0) t in
  half @ List.rev half

let to_lines t =
  List.map
    (fun (term : Pauli_term.t) ->
      Printf.sprintf "%.17g %s" term.Pauli_term.coeff
        (Pauli_string.to_string term.Pauli_term.pauli))
    t.terms

let of_lines lines =
  let parse line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else begin
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ coeff_s; pauli_s ] ->
        let coeff =
          try float_of_string coeff_s
          with Failure _ ->
            invalid_arg
              (Printf.sprintf "Hamiltonian.of_lines: bad coefficient %S" coeff_s)
        in
        Some (Pauli_term.make (Pauli_string.of_string pauli_s) coeff)
      | _ -> invalid_arg (Printf.sprintf "Hamiltonian.of_lines: bad line %S" line)
    end
  in
  let terms = List.filter_map parse lines in
  match terms with
  | [] -> invalid_arg "Hamiltonian.of_lines: no terms"
  | first :: _ -> make (Pauli_term.num_qubits first) terms

let pp fmt t =
  Format.fprintf fmt "@[<v>Hamiltonian on %d qubits, %d terms:@," t.n
    (num_terms t);
  List.iter (fun term -> Format.fprintf fmt "  %a@," Pauli_term.pp term) t.terms;
  Format.fprintf fmt "@]"
