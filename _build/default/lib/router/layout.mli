(** Logical-to-physical qubit assignments.

    A layout maps [n_logical] program qubits injectively into
    [n_physical ≥ n_logical] device qubits.  Values are immutable. *)

type t

val trivial : n_logical:int -> n_physical:int -> t
(** Logical [i] on physical [i].
    Raises [Invalid_argument] if [n_logical > n_physical]. *)

val of_l2p : n_physical:int -> int array -> t
(** Explicit assignment; must be injective and in range. *)

val n_logical : t -> int
val n_physical : t -> int

val physical_of : t -> int -> int
(** Physical qubit hosting a logical qubit. *)

val logical_of : t -> int -> int option
(** Logical qubit on a physical qubit, if any. *)

val swap_physical : t -> int -> int -> t
(** Exchange whatever (if anything) sits on two physical qubits. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
