lib/router/sabre.mli: Layout Phoenix_circuit Phoenix_topology
