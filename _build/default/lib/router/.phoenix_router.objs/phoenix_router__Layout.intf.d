lib/router/layout.mli: Format
