lib/router/placement.ml: Array Float Hashtbl Layout List Phoenix_circuit Phoenix_topology
