lib/router/placement.mli: Layout Phoenix_circuit Phoenix_topology
