lib/router/layout.ml: Array Format
