lib/router/sabre.ml: Array Float Layout List Phoenix_circuit Phoenix_pauli Phoenix_topology Phoenix_util Placement Seq
