(** Interaction-aware initial qubit placement.

    Logical qubits are embedded greedily in descending interaction
    degree: the first lands on a well-connected physical site, each
    subsequent one on the free site minimizing the interaction-weighted
    distance to its already-placed partners.  Used both as the 2QAN-style
    placement and as the seed layout for SABRE refinement. *)

val interaction_aware :
  ?seed_site:int ->
  Phoenix_topology.Topology.t ->
  n_logical:int ->
  weights:(int * int * int) list ->
  Layout.t
(** [weights] lists [(a, b, count)] interaction multiplicities between
    logical qubits.  [seed_site] perturbs the seed-site choice for
    multi-start searches.  Raises [Invalid_argument] if the device is too
    small. *)

val of_circuit :
  ?seed_site:int ->
  Phoenix_topology.Topology.t ->
  Phoenix_circuit.Circuit.t ->
  Layout.t
(** Placement derived from a circuit's 2Q interaction counts. *)
