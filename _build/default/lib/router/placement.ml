module Topology = Phoenix_topology.Topology
module Circuit = Phoenix_circuit.Circuit

let interaction_aware ?(seed_site = 0) topo ~n_logical ~weights =
  let n_phys = Topology.num_qubits topo in
  if n_logical > n_phys then
    invalid_arg "Placement.interaction_aware: device too small";
  let weight = Array.make_matrix n_logical n_logical 0 in
  List.iter
    (fun (a, b, count) ->
      weight.(a).(b) <- weight.(a).(b) + count;
      weight.(b).(a) <- weight.(b).(a) + count)
    weights;
  let degree l = Array.fold_left ( + ) 0 weight.(l) in
  let logical_order =
    List.sort
      (fun a b -> compare (degree b) (degree a))
      (List.init n_logical (fun i -> i))
  in
  let used = Array.make n_phys false in
  let l2p = Array.make n_logical (-1) in
  let physical_degree p = List.length (Topology.neighbors topo p) in
  let best_site l =
    let placed_partners =
      List.filter
        (fun m -> weight.(l).(m) > 0 && l2p.(m) >= 0)
        (List.init n_logical (fun i -> i))
    in
    let score p =
      if used.(p) then Float.infinity
      else if placed_partners = [] then
        (* seed on well-connected sites; [seed_site] rotates the choice
           among them for multi-start searches *)
        -.float_of_int (physical_degree p)
        +. (0.01 *. float_of_int ((p + seed_site) mod n_phys))
      else
        float_of_int
          (List.fold_left
             (fun acc m ->
               acc + (weight.(l).(m) * Topology.distance topo p l2p.(m)))
             0 placed_partners)
    in
    let best = ref (-1) and best_score = ref Float.infinity in
    for p = 0 to n_phys - 1 do
      let s = score p in
      if s < !best_score then begin
        best := p;
        best_score := s
      end
    done;
    !best
  in
  List.iter
    (fun l ->
      let p = best_site l in
      l2p.(l) <- p;
      used.(p) <- true)
    logical_order;
  Layout.of_l2p ~n_physical:n_phys l2p

let of_circuit ?seed_site topo circuit =
  let counts = Circuit.interaction_counts circuit in
  let weights =
    Hashtbl.fold (fun (a, b) count acc -> (a, b, count) :: acc) counts []
  in
  interaction_aware ?seed_site topo ~n_logical:(Circuit.num_qubits circuit)
    ~weights
