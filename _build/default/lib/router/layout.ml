type t = { l2p : int array; p2l : int array (* -1 = unoccupied *) }

let trivial ~n_logical ~n_physical =
  if n_logical > n_physical then
    invalid_arg "Layout.trivial: more logical than physical qubits";
  let p2l = Array.make n_physical (-1) in
  for i = 0 to n_logical - 1 do
    p2l.(i) <- i
  done;
  { l2p = Array.init n_logical (fun i -> i); p2l }

let of_l2p ~n_physical l2p =
  let n_logical = Array.length l2p in
  if n_logical > n_physical then
    invalid_arg "Layout.of_l2p: more logical than physical qubits";
  let p2l = Array.make n_physical (-1) in
  Array.iteri
    (fun l p ->
      if p < 0 || p >= n_physical then invalid_arg "Layout.of_l2p: out of range";
      if p2l.(p) <> -1 then invalid_arg "Layout.of_l2p: not injective";
      p2l.(p) <- l)
    l2p;
  { l2p = Array.copy l2p; p2l }

let n_logical t = Array.length t.l2p
let n_physical t = Array.length t.p2l
let physical_of t l = t.l2p.(l)
let logical_of t p = if t.p2l.(p) = -1 then None else Some t.p2l.(p)

let swap_physical t p q =
  let l2p = Array.copy t.l2p and p2l = Array.copy t.p2l in
  let lp = p2l.(p) and lq = p2l.(q) in
  p2l.(p) <- lq;
  p2l.(q) <- lp;
  if lp <> -1 then l2p.(lp) <- q;
  if lq <> -1 then l2p.(lq) <- p;
  { l2p; p2l }

let equal a b = a.l2p = b.l2p && a.p2l = b.p2l

let pp fmt t =
  Format.fprintf fmt "layout[";
  Array.iteri (fun l p -> Format.fprintf fmt "%d→%d " l p) t.l2p;
  Format.fprintf fmt "]"
