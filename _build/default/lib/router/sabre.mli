(** SABRE-style SWAP routing (Li, Ding, Xie — ASPLOS 2019).

    Maps a logical circuit onto a coupling graph by greedily inserting
    SWAP gates chosen by a front-layer + lookahead distance heuristic with
    a decay factor that spreads consecutive swaps across qubits.  Any 2Q
    gate type in the circuit IR is routed (Cliff2/Rpp/Su4 included); the
    result contains explicit [Swap] gates, which a later
    {!Phoenix_circuit.Rebase.to_cnot_basis} pass expands into 3 CNOTs. *)

type result = {
  circuit : Phoenix_circuit.Circuit.t;
      (** routed circuit over the device's physical qubits *)
  initial_layout : Layout.t;
  final_layout : Layout.t;
  num_swaps : int;
}

val route :
  ?initial:Layout.t ->
  ?lookahead:int ->
  ?decay:float ->
  ?seed:int ->
  ?use_bridge:bool ->
  Phoenix_topology.Topology.t ->
  Phoenix_circuit.Circuit.t ->
  result
(** Route with a fixed initial layout (default: trivial).  [lookahead]
    (default 20) is the extended-set size; [decay] (default 0.001) the
    per-use penalty increment.  With [use_bridge] (default false), a
    front CNOT at distance 2 whose qubits no upcoming gate touches is
    realized by the 4-CNOT bridge template (Itoko et al.) instead of
    SWAPs, leaving the layout unchanged.  Raises [Invalid_argument] when
    the device is too small or disconnected. *)

val route_with_refinement :
  ?initial:Layout.t ->
  ?iterations:int ->
  ?lookahead:int ->
  ?seed:int ->
  ?use_bridge:bool ->
  Phoenix_topology.Topology.t ->
  Phoenix_circuit.Circuit.t ->
  result
(** SABRE's bidirectional initial-layout refinement: starting from
    [initial] (default: interaction-aware placement), alternate
    forward/backward routing passes ([iterations] round trips, default
    1), then route forward with the better of the refined and the seed
    layout. *)

val route_commuting :
  ?initial:Layout.t ->
  Phoenix_topology.Topology.t ->
  Phoenix_circuit.Circuit.t ->
  result
(** Routing for circuits whose gates all mutually commute (e.g. a QAOA
    cost layer, which is Z-diagonal): gate order is treated as free, so
    at every step all currently-adjacent interactions execute and SWAPs
    are chosen against the whole pending set — the strategy 2QAN
    pioneered for 2-local programs.  The caller must guarantee
    commutativity. *)
