(** A Pauli string with a real coefficient.

    A Hamiltonian is a list of terms [h_j · P_j]; a Trotterized program is a
    list of Pauli exponentiations [exp(-i θ_j/2 · P_j)] where [θ_j] is
    derived from the coefficient and the time step. *)

type t = { pauli : Pauli_string.t; coeff : float }

val make : Pauli_string.t -> float -> t
val num_qubits : t -> int
val weight : t -> int
val scale : float -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val support_key : t -> string
(** Canonical key identifying the set of qubits the term acts on
    non-trivially; terms with equal keys belong to the same IR group. *)
