lib/pauli/pauli_string.ml: Format Hashtbl List Pauli Phoenix_util String
