lib/pauli/bsf.mli: Clifford2q Format Pauli_string Phoenix_util
