lib/pauli/pauli_string.mli: Format Pauli Phoenix_util
