lib/pauli/pauli.ml: Char Format Stdlib
