lib/pauli/clifford2q.mli: Format Pauli
