lib/pauli/pauli_term.ml: Format Pauli_string Phoenix_util
