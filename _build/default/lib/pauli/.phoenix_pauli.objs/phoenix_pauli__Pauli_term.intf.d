lib/pauli/pauli_term.mli: Format Pauli_string
