lib/pauli/clifford2q.ml: Format Pauli
