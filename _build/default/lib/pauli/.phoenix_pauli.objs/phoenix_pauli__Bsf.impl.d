lib/pauli/bsf.ml: Array Clifford2q Format List Pauli_string Phoenix_util
