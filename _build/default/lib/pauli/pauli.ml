type t = I | X | Y | Z

let equal a b = a = b

let index = function I -> 0 | X -> 1 | Y -> 2 | Z -> 3
let compare a b = Stdlib.compare (index a) (index b)

let of_char c =
  match Char.uppercase_ascii c with
  | 'I' -> I
  | 'X' -> X
  | 'Y' -> Y
  | 'Z' -> Z
  | _ -> invalid_arg "Pauli.of_char: expected one of I, X, Y, Z"

let to_char = function I -> 'I' | X -> 'X' | Y -> 'Y' | Z -> 'Z'

let of_bits ~x ~z =
  match x, z with
  | false, false -> I
  | true, false -> X
  | true, true -> Y
  | false, true -> Z

let to_bits = function
  | I -> false, false
  | X -> true, false
  | Y -> true, true
  | Z -> false, true

let commutes a b = a = I || b = I || a = b

(* p·q = i^k r.  E.g. X·Y = iZ, Y·X = -iZ = i^3 Z. *)
let mul a b =
  match a, b with
  | I, p -> 0, p
  | p, I -> 0, p
  | X, X | Y, Y | Z, Z -> 0, I
  | X, Y -> 1, Z
  | Y, X -> 3, Z
  | Y, Z -> 1, X
  | Z, Y -> 3, X
  | Z, X -> 1, Y
  | X, Z -> 3, Y

let is_identity p = p = I
let pp fmt p = Format.pp_print_char fmt (to_char p)
