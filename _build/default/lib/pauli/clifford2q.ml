type kind = CXX | CYY | CZZ | CXY | CYZ | CZX

type t = { kind : kind; a : int; b : int }

let all_kinds = [ CXX; CYY; CZZ; CXY; CYZ; CZX ]

let kind_sigmas = function
  | CXX -> Pauli.X, Pauli.X
  | CYY -> Pauli.Y, Pauli.Y
  | CZZ -> Pauli.Z, Pauli.Z
  | CXY -> Pauli.X, Pauli.Y
  | CYZ -> Pauli.Y, Pauli.Z
  | CZX -> Pauli.Z, Pauli.X

(* C(σ0,σ1)_{a,b} = C(σ1,σ0)_{b,a}: the missing three combinations are the
   six generators with operands swapped. *)
let kind_of_sigmas s0 s1 =
  match s0, s1 with
  | Pauli.I, _ | _, Pauli.I -> None
  | Pauli.X, Pauli.X -> Some (CXX, false)
  | Pauli.Y, Pauli.Y -> Some (CYY, false)
  | Pauli.Z, Pauli.Z -> Some (CZZ, false)
  | Pauli.X, Pauli.Y -> Some (CXY, false)
  | Pauli.Y, Pauli.X -> Some (CXY, true)
  | Pauli.Y, Pauli.Z -> Some (CYZ, false)
  | Pauli.Z, Pauli.Y -> Some (CYZ, true)
  | Pauli.Z, Pauli.X -> Some (CZX, false)
  | Pauli.X, Pauli.Z -> Some (CZX, true)

let make kind a b =
  if a = b then invalid_arg "Clifford2q.make: qubits must differ";
  if a < 0 || b < 0 then invalid_arg "Clifford2q.make: negative qubit";
  { kind; a; b }

let is_symmetric = function
  | CXX | CYY | CZZ -> true
  | CXY | CYZ | CZX -> false

let equal_gate g h =
  g.kind = h.kind
  && ((g.a = h.a && g.b = h.b)
     || (is_symmetric g.kind && g.a = h.b && g.b = h.a))

let kind_to_string = function
  | CXX -> "C(X,X)"
  | CYY -> "C(Y,Y)"
  | CZZ -> "C(Z,Z)"
  | CXY -> "C(X,Y)"
  | CYZ -> "C(Y,Z)"
  | CZX -> "C(Z,X)"

let pp fmt g = Format.fprintf fmt "%s[%d,%d]" (kind_to_string g.kind) g.a g.b

type basis_gate = H of int | S of int | Sdg of int | Cnot of int * int

(* Conjugating-basis circuits: [pre] maps the computational frame so that
   CNOT realizes C(σ0,σ1); [post] is its inverse.  V0 satisfies
   V0·Z·V0† = σ0 on the control, V1 satisfies V1·X·V1† = σ1 on the target,
   and C(σ0,σ1) = (V0⊗V1)·CNOT·(V0⊗V1)†. *)
let decompose { kind; a; b } =
  let v0_pre, v0_post =
    match kind_sigmas kind with
    | Pauli.Z, _ -> [], []
    | Pauli.X, _ -> [ H a ], [ H a ]
    | Pauli.Y, _ -> [ Sdg a; H a ], [ H a; S a ]
    | Pauli.I, _ -> assert false
  in
  let v1_pre, v1_post =
    match kind_sigmas kind with
    | _, Pauli.X -> [], []
    | _, Pauli.Y -> [ Sdg b ], [ S b ]
    | _, Pauli.Z -> [ H b ], [ H b ]
    | _, Pauli.I -> assert false
  in
  v1_pre @ v0_pre @ [ Cnot (a, b) ] @ v0_post @ v1_post
