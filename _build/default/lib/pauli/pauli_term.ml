type t = { pauli : Pauli_string.t; coeff : float }

let make pauli coeff = { pauli; coeff }
let num_qubits t = Pauli_string.num_qubits t.pauli
let weight t = Pauli_string.weight t.pauli
let scale s t = { t with coeff = s *. t.coeff }

let equal a b = Pauli_string.equal a.pauli b.pauli && a.coeff = b.coeff

let pp fmt t =
  Format.fprintf fmt "%+.6g * %a" t.coeff Pauli_string.pp t.pauli

let support_key t = Phoenix_util.Bitvec.to_string (Pauli_string.support t.pauli)
