(** Single-qubit Pauli operators.

    The binary encoding follows the paper's convention: [I = (0,0)],
    [X = (1,0)], [Z = (0,1)], [Y = (1,1)]. *)

type t = I | X | Y | Z

val equal : t -> t -> bool
val compare : t -> t -> int

val of_char : char -> t
(** Parses ['I' | 'X' | 'Y' | 'Z'] (case-insensitive).
    Raises [Invalid_argument] otherwise. *)

val to_char : t -> char

val of_bits : x:bool -> z:bool -> t
val to_bits : t -> bool * bool
(** [(x, z)] pair of the symplectic encoding. *)

val commutes : t -> t -> bool
(** Two single-qubit Paulis commute iff one is [I] or they are equal. *)

val mul : t -> t -> int * t
(** [mul p q] is [(k, r)] with [p·q = i^k · r], [k ∈ {0,1,2,3}]. *)

val is_identity : t -> bool
val pp : Format.formatter -> t -> unit
