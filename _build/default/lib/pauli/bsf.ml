module Bitvec = Phoenix_util.Bitvec

type mrow = {
  x : Bitvec.t;
  z : Bitvec.t;
  mutable neg : bool;
  angle : float;
}

type t = { n : int; mutable mrows : mrow array }

type row = { pauli : Pauli_string.t; neg : bool; angle : float }

let create n =
  if n <= 0 then invalid_arg "Bsf.create: need at least one qubit";
  { n; mrows = [||] }

let of_terms n terms =
  let to_row (p, angle) =
    if Pauli_string.num_qubits p <> n then
      invalid_arg "Bsf.of_terms: qubit-count mismatch";
    { x = Pauli_string.x_bits p; z = Pauli_string.z_bits p; neg = false; angle }
  in
  { n; mrows = Array.of_list (List.map to_row terms) }

let copy t =
  let copy_row r = { r with x = Bitvec.copy r.x; z = Bitvec.copy r.z } in
  { t with mrows = Array.map copy_row t.mrows }

let num_qubits t = t.n
let num_rows t = Array.length t.mrows

let snapshot r =
  { pauli = Pauli_string.of_bits ~x:r.x ~z:r.z; neg = r.neg; angle = r.angle }

let rows t = Array.to_list (Array.map snapshot t.mrows)
let row_weight t i = Bitvec.or_popcount t.mrows.(i).x t.mrows.(i).z

let row_pauli t i =
  Pauli_string.of_bits ~x:t.mrows.(i).x ~z:t.mrows.(i).z

let support t =
  let acc = Bitvec.create t.n in
  Array.iter
    (fun r ->
      Bitvec.or_into acc r.x;
      Bitvec.or_into acc r.z)
    t.mrows;
  acc

let total_weight t = Bitvec.popcount (support t)
let support_indices t = Bitvec.indices (support t)

let nonlocal_count t =
  Array.fold_left
    (fun acc r -> if Bitvec.or_popcount r.x r.z > 1 then acc + 1 else acc)
    0 t.mrows

(* Sign conventions (standard stabilizer-tableau update rules, verified
   against dense conjugation in the test suite):
   - H:  X ↔ Z, Y ↦ -Y.
   - S:  X ↦ Y, Y ↦ -X, Z ↦ Z.
   - S†: X ↦ -Y ... i.e. the sign flips on x ∧ ¬z before z ^= x.
   - CNOT a→b: x_b ^= x_a, z_a ^= z_b, sign flips on x_a ∧ z_b ∧ (x_b = z_a)
     evaluated on the pre-update bits. *)

let apply_h t q =
  Array.iter
    (fun r ->
      let xq = Bitvec.get r.x q and zq = Bitvec.get r.z q in
      if xq && zq then r.neg <- not r.neg;
      Bitvec.set r.x q zq;
      Bitvec.set r.z q xq)
    t.mrows

let apply_s t q =
  Array.iter
    (fun r ->
      let xq = Bitvec.get r.x q and zq = Bitvec.get r.z q in
      if xq && zq then r.neg <- not r.neg;
      if xq then Bitvec.flip r.z q)
    t.mrows

let apply_sdg t q =
  Array.iter
    (fun r ->
      let xq = Bitvec.get r.x q and zq = Bitvec.get r.z q in
      if xq && not zq then r.neg <- not r.neg;
      if xq then Bitvec.flip r.z q)
    t.mrows

let apply_cnot t a b =
  Array.iter
    (fun r ->
      let xa = Bitvec.get r.x a
      and za = Bitvec.get r.z a
      and xb = Bitvec.get r.x b
      and zb = Bitvec.get r.z b in
      if xa && zb && xb = za then r.neg <- not r.neg;
      Bitvec.set r.x b (xb <> xa);
      Bitvec.set r.z a (za <> zb))
    t.mrows

let apply_basis_gate t = function
  | Clifford2q.H q -> apply_h t q
  | Clifford2q.S q -> apply_s t q
  | Clifford2q.Sdg q -> apply_sdg t q
  | Clifford2q.Cnot (a, b) -> apply_cnot t a b

(* Conjugation by a product C = g_k ⋯ g_1 (time order g_1 first) nests as
   conj(C, P) = conj(g_k, … conj(g_1, P) …), so primitives are applied in
   the decomposition's time order. *)
let apply_clifford2q t gate =
  List.iter (apply_basis_gate t) (Clifford2q.decompose gate)

let mrow_commutes a b =
  (Bitvec.and_popcount a.x b.z + Bitvec.and_popcount a.z b.x) mod 2 = 0

let pop_local_rows ?(commuting_only = false) t =
  let n_rows = Array.length t.mrows in
  let local = Array.map (fun r -> Bitvec.or_popcount r.x r.z <= 1) t.mrows in
  if commuting_only then begin
    (* A local row may only leave its program position when it commutes
       with every row that stays behind — including locals that
       themselves fail the test, hence the fixpoint iteration.  Peeled
       locals keep their relative order, so they need not commute with
       each other. *)
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n_rows - 1 do
        if local.(i) then
          for j = 0 to n_rows - 1 do
            if (not local.(j)) && not (mrow_commutes t.mrows.(i) t.mrows.(j))
            then begin
              local.(i) <- false;
              changed := true
            end
          done
      done
    done
  end;
  let peeled = ref [] and kept = ref [] in
  for i = n_rows - 1 downto 0 do
    if local.(i) then peeled := snapshot t.mrows.(i) :: !peeled
    else kept := t.mrows.(i) :: !kept
  done;
  t.mrows <- Array.of_list !kept;
  !peeled

let cost t =
  let n_rows = Array.length t.mrows in
  let w_tot = float_of_int (total_weight t) in
  let n_nl = float_of_int (nonlocal_count t) in
  let pair_sup = ref 0 and pair_x = ref 0 and pair_z = ref 0 in
  for i = 0 to n_rows - 1 do
    let ri = t.mrows.(i) in
    let sup_i = Bitvec.logor ri.x ri.z in
    for j = i + 1 to n_rows - 1 do
      let rj = t.mrows.(j) in
      let sup_j = Bitvec.logor rj.x rj.z in
      pair_sup := !pair_sup + Bitvec.or_popcount sup_i sup_j;
      pair_x := !pair_x + Bitvec.or_popcount ri.x rj.x;
      pair_z := !pair_z + Bitvec.or_popcount ri.z rj.z
    done
  done;
  (w_tot *. n_nl *. n_nl)
  +. float_of_int !pair_sup
  +. (0.5 *. float_of_int (!pair_x + !pair_z))

let to_terms t =
  List.map
    (fun r ->
      let angle = if r.neg then -.r.angle else r.angle in
      r.pauli, angle)
    (rows t)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun r ->
      let s = snapshot r in
      Format.fprintf fmt "%c%a (θ=%g)@,"
        (if s.neg then '-' else '+')
        Pauli_string.pp s.pauli s.angle)
    t.mrows;
  Format.fprintf fmt "@]"
