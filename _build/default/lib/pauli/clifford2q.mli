(** The six two-qubit Clifford generators used by PHOENIX (Eq. 5).

    Each generator is a universal controlled gate
    [C(σ0, σ1) = ((I+σ0)⊗I + (I−σ0)⊗σ1) / 2] — Hermitian, involutive and
    CNOT-equivalent.  [C(Z,X)] is CNOT itself.  A gate value records the
    kind together with the control qubit [a] (carrying σ0) and target
    qubit [b] (carrying σ1). *)

type kind = CXX | CYY | CZZ | CXY | CYZ | CZX

type t = { kind : kind; a : int; b : int }

val all_kinds : kind list
(** The six generators, in the paper's order (Eq. 5). *)

val kind_sigmas : kind -> Pauli.t * Pauli.t
(** [(σ0, σ1)] of the kind. *)

val kind_of_sigmas : Pauli.t -> Pauli.t -> (kind * bool) option
(** [kind_of_sigmas σ0 σ1] is [Some (k, swapped)] when [C(σ0,σ1)] equals
    generator [k] with operands possibly [swapped] (using
    [C(σ0,σ1)_{a,b} = C(σ1,σ0)_{b,a}]); [None] when either input is [I]. *)

val make : kind -> int -> int -> t
(** Raises [Invalid_argument] if the qubits coincide or are negative. *)

val is_symmetric : kind -> bool
(** [true] for [CXX], [CYY], [CZZ]: the gate is invariant under swapping
    its operands. *)

val equal_gate : t -> t -> bool
(** Structural equality modulo operand swap for symmetric kinds — exactly
    the relation under which two adjacent gates cancel ([C² = I]). *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

type basis_gate = H of int | S of int | Sdg of int | Cnot of int * int
(** 1Q/2Q gate alphabet used for decomposition (control first in [Cnot]). *)

val decompose : t -> basis_gate list
(** Time-ordered gate list realizing the generator over
    {H, S, S†, CNOT}, e.g. [C(X,Y) = (H⊗S)·CNOT·(H⊗S†)] decomposes as
    [[Sdg b; H a; Cnot (a,b); S b; H a]]. *)
