(** Exact unitaries of gates, circuits, Pauli strings and gadget programs.

    Basis-index convention: qubit 0 is the most significant bit of the
    computational-basis index, so [pauli_matrix (of_string "ZY")] equals
    [kron Z Y]. *)

val pauli_1q : Phoenix_pauli.Pauli.t -> Cmat.t
(** 2×2 matrix of a single-qubit Pauli. *)

val one_q : Phoenix_circuit.Gate.one_q -> Cmat.t
(** 2×2 matrix of a 1Q gate. *)

val pauli_matrix : Phoenix_pauli.Pauli_string.t -> Cmat.t
(** [2^n × 2^n] matrix of a Pauli string. *)

val gadget_matrix : Phoenix_pauli.Pauli_string.t -> float -> Cmat.t
(** [gadget_matrix p θ = exp(-i θ/2 P) = cos(θ/2)·I − i·sin(θ/2)·P]. *)

val clifford2q_4x4 : Phoenix_pauli.Clifford2q.kind -> Cmat.t
(** 4×4 matrix of [C(σ0, σ1)] with the control as the first factor. *)

val gate_4x4 : Phoenix_circuit.Gate.t -> Cmat.t
(** Local 4×4 matrix of a 2Q gate, first factor = first qubit in
    [Gate.qubits] order for [Cnot]/[Cliff2]/[Rpp], smaller index first for
    [Swap]/[Su4].  Raises [Invalid_argument] on 1Q gates. *)

val apply_gate : Cmat.t -> int -> Phoenix_circuit.Gate.t -> unit
(** [apply_gate u n g] replaces [u] with [U(g)·u] in place, where [u] is
    a [2^n × 2^n] matrix. *)

val circuit_unitary : Phoenix_circuit.Circuit.t -> Cmat.t
(** Full unitary of a circuit. *)

val program_unitary :
  int -> (Phoenix_pauli.Pauli_string.t * float) list -> Cmat.t
(** Unitary of a gadget list applied in order (first gadget first). *)

val hamiltonian_matrix :
  int -> (Phoenix_pauli.Pauli_string.t * float) list -> Cmat.t
(** [Σ_j h_j · P_j] as a dense Hermitian matrix. *)
