(** Hermitian eigendecomposition via the cyclic complex Jacobi method,
    and the matrix exponentials built on it.

    Intended for the exact-evolution reference of the algorithmic-error
    experiment (Fig. 8): a Hamiltonian is diagonalized once and
    [exp(-i·H·t)] is then obtained for any [t] from the spectrum. *)

type decomposition = { eigenvalues : float array; eigenvectors : Cmat.t }
(** [H = V · diag(λ) · V†] with [V = eigenvectors] unitary. *)

val eig : ?tol:float -> ?max_sweeps:int -> Cmat.t -> decomposition
(** Diagonalize a Hermitian matrix.  [tol] (default [1e-12]) bounds the
    residual off-diagonal Frobenius mass relative to the matrix norm.
    Raises [Invalid_argument] on non-square input. *)

val evolution : decomposition -> float -> Cmat.t
(** [evolution d t = exp(-i·H·t) = V·diag(e^{-iλt})·V†]. *)

val expm_hermitian_times : Cmat.t -> float -> Cmat.t
(** One-shot [exp(-i·H·t)]. *)
