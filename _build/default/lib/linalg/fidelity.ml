let infidelity u v =
  let ru, cu = Cmat.dims u and rv, cv = Cmat.dims v in
  if ru <> rv || cu <> cv || ru <> cu then
    invalid_arg "Fidelity.infidelity: dimension mismatch";
  let tr = Cmat.trace (Cmat.mul (Cmat.dagger u) v) in
  1.0 -. (Complex.norm tr /. float_of_int ru)

let equivalent ?(tol = 1e-9) u v = infidelity u v < tol
