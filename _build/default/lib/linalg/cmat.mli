(** Dense complex matrices (row-major, split real/imaginary storage).

    Sized for exact simulation of circuits up to ~10 qubits; operations
    are straightforward O(n³)/O(n²) loops with no external dependencies. *)

type t

val create : int -> int -> t
(** Zero matrix with given [rows cols]. *)

val identity : int -> t
val dims : t -> int * int
val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit
val copy : t -> t

val scale : Complex.t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on dimension mismatch. *)

val dagger : t -> t
(** Conjugate transpose. *)

val kron : t -> t -> t
(** Kronecker product. *)

val trace : t -> Complex.t

val frobenius_distance : t -> t -> float
(** [‖a - b‖_F]. *)

val max_abs_diff : t -> t -> float

val is_close : ?tol:float -> t -> t -> bool
(** Entry-wise closeness with default tolerance [1e-9]. *)

val equal_up_to_phase : ?tol:float -> t -> t -> bool
(** [true] when [a = e^{iφ}·b] for some global phase [φ]. *)

val of_complex_array : Complex.t array array -> t
val pp : Format.formatter -> t -> unit

(** {1 Raw access}

    Direct views of the underlying row-major storage, for performance-
    critical in-place kernels (gate application).  Mutating these arrays
    mutates the matrix. *)

val raw_re : t -> float array
val raw_im : t -> float array
