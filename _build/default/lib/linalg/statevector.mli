(** State-vector simulation.

    Where {!Unitary} builds full [2^n × 2^n] matrices (needed for
    infidelity metrics), this module evolves a single [2^n] state —
    linear rather than quadratic in the Hilbert-space dimension per gate
    — and supports the expectation values a VQE loop needs.

    Basis convention matches {!Unitary}: qubit 0 is the most significant
    bit of the amplitude index. *)

type t

val zero_state : int -> t
(** [|0…0⟩] over [n] qubits. *)

val basis_state : int -> int -> t
(** [basis_state n k] is the computational-basis state [|k⟩]. *)

val num_qubits : t -> int
val copy : t -> t
val amplitude : t -> int -> Complex.t
val norm : t -> float

val apply_gate : t -> Phoenix_circuit.Gate.t -> unit
(** In-place gate application. *)

val run_circuit : t -> Phoenix_circuit.Circuit.t -> unit
(** Apply every gate in order.
    Raises [Invalid_argument] on qubit-count mismatch. *)

val of_circuit : Phoenix_circuit.Circuit.t -> t
(** [run_circuit] on a fresh [|0…0⟩]. *)

val inner_product : t -> t -> Complex.t
(** [⟨a|b⟩]. *)

val expectation_pauli : t -> Phoenix_pauli.Pauli_string.t -> float
(** [⟨ψ|P|ψ⟩] (real for Hermitian [P]; the imaginary part is
    discarded). *)

val expectation : t -> Phoenix_ham.Hamiltonian.t -> float
(** [⟨ψ|H|ψ⟩ = Σ_j h_j·⟨ψ|P_j|ψ⟩]. *)

val probabilities : t -> float array
(** Measurement distribution over the computational basis. *)

val sample : Phoenix_util.Prng.t -> t -> int
(** Draw one computational-basis outcome. *)
