type decomposition = { eigenvalues : float array; eigenvectors : Cmat.t }

let off_diag_norm a n =
  let re = Cmat.raw_re a and im = Cmat.raw_im a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let r = re.((i * n) + j) and m = im.((i * n) + j) in
        acc := !acc +. (r *. r) +. (m *. m)
      end
    done
  done;
  sqrt !acc

(* One complex Jacobi rotation annihilating a_pq:
   write a_pq = |a_pq| e^{iφ}; with t = tan θ solving the real 2×2 problem
   for (a_pp, |a_pq|, a_qq), the unitary
     J = [[c, -s e^{iφ}], [s e^{-iφ}, c]]   (acting on rows/cols p,q)
   makes (J† A J)_pq = 0. *)
let rotate a v n p q =
  let re = Cmat.raw_re a and im = Cmat.raw_im a in
  let apq_re = re.((p * n) + q) and apq_im = im.((p * n) + q) in
  let mag = sqrt ((apq_re *. apq_re) +. (apq_im *. apq_im)) in
  if mag > 0.0 then begin
    let phi_re = apq_re /. mag and phi_im = apq_im /. mag in
    let app = re.((p * n) + p) and aqq = re.((q * n) + q) in
    let tau = (app -. aqq) /. (2.0 *. mag) in
    let t =
      let s = if tau >= 0.0 then 1.0 else -1.0 in
      s /. (Float.abs tau +. sqrt (1.0 +. (tau *. tau)))
    in
    let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
    let s = t *. c in
    (* Column update: columns p and q of A and V multiply by J. *)
    let update_cols mat_re mat_im rows =
      for i = 0 to rows - 1 do
        let ip = (i * n) + p and iq = (i * n) + q in
        let xp_re = mat_re.(ip) and xp_im = mat_im.(ip) in
        let xq_re = mat_re.(iq) and xq_im = mat_im.(iq) in
        (* new_p = c·x_p + s·e^{-iφ}·x_q ; new_q = -s·e^{iφ}·x_p + c·x_q *)
        let eq_re = (phi_re *. xq_re) +. (phi_im *. xq_im) in
        let eq_im = (phi_re *. xq_im) -. (phi_im *. xq_re) in
        mat_re.(ip) <- (c *. xp_re) +. (s *. eq_re);
        mat_im.(ip) <- (c *. xp_im) +. (s *. eq_im);
        let ep_re = (phi_re *. xp_re) -. (phi_im *. xp_im) in
        let ep_im = (phi_re *. xp_im) +. (phi_im *. xp_re) in
        mat_re.(iq) <- (c *. xq_re) -. (s *. ep_re);
        mat_im.(iq) <- (c *. xq_im) -. (s *. ep_im)
      done
    in
    (* Row update of A: rows p and q multiply by J†. *)
    let update_rows () =
      for j = 0 to n - 1 do
        let pj = (p * n) + j and qj = (q * n) + j in
        let xp_re = re.(pj) and xp_im = im.(pj) in
        let xq_re = re.(qj) and xq_im = im.(qj) in
        (* new_p = c·x_p + s·e^{iφ}·x_q ; new_q = -s·e^{-iφ}·x_p + c·x_q *)
        let eq_re = (phi_re *. xq_re) -. (phi_im *. xq_im) in
        let eq_im = (phi_re *. xq_im) +. (phi_im *. xq_re) in
        re.(pj) <- (c *. xp_re) +. (s *. eq_re);
        im.(pj) <- (c *. xp_im) +. (s *. eq_im);
        let ep_re = (phi_re *. xp_re) +. (phi_im *. xp_im) in
        let ep_im = (phi_re *. xp_im) -. (phi_im *. xp_re) in
        re.(qj) <- (c *. xq_re) -. (s *. ep_re);
        im.(qj) <- (c *. xq_im) -. (s *. ep_im)
      done
    in
    update_rows ();
    update_cols re im n;
    update_cols (Cmat.raw_re v) (Cmat.raw_im v) n
  end

let eig ?(tol = 1e-12) ?(max_sweeps = 50) m =
  let rows, cols = Cmat.dims m in
  if rows <> cols then invalid_arg "Herm.eig: not square";
  let n = rows in
  let a = Cmat.copy m in
  let v = Cmat.identity n in
  let scale = Float.max 1.0 (Cmat.frobenius_distance m (Cmat.create n n)) in
  let sweeps = ref 0 in
  while off_diag_norm a n > tol *. scale && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate a v n p q
      done
    done
  done;
  let re = Cmat.raw_re a in
  { eigenvalues = Array.init n (fun i -> re.((i * n) + i)); eigenvectors = v }

let evolution d t =
  let v = d.eigenvectors in
  let n = Array.length d.eigenvalues in
  let diag = Cmat.create n n in
  for i = 0 to n - 1 do
    let phase = -.d.eigenvalues.(i) *. t in
    Cmat.set diag i i { Complex.re = cos phase; im = sin phase }
  done;
  Cmat.mul (Cmat.mul v diag) (Cmat.dagger v)

let expm_hermitian_times m t = evolution (eig m) t
