lib/linalg/fidelity.ml: Cmat Complex
