lib/linalg/fidelity.mli: Cmat
