lib/linalg/unitary.mli: Cmat Phoenix_circuit Phoenix_pauli
