lib/linalg/herm.mli: Cmat
