lib/linalg/herm.ml: Array Cmat Complex Float
