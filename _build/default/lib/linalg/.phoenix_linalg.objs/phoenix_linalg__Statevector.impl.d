lib/linalg/statevector.ml: Array Cmat Complex List Phoenix_circuit Phoenix_ham Phoenix_pauli Phoenix_util Unitary
