lib/linalg/unitary.ml: Array Cmat Complex List Phoenix_circuit Phoenix_pauli
