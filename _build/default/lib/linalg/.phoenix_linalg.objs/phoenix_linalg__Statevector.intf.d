lib/linalg/statevector.mli: Complex Phoenix_circuit Phoenix_ham Phoenix_pauli Phoenix_util
