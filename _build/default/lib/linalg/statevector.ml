module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string

type t = { n : int; re : float array; im : float array }

let zero_state n =
  if n <= 0 then invalid_arg "Statevector.zero_state: need at least one qubit";
  let dim = 1 lsl n in
  let v = { n; re = Array.make dim 0.0; im = Array.make dim 0.0 } in
  v.re.(0) <- 1.0;
  v

let basis_state n k =
  let v = zero_state n in
  if k < 0 || k >= 1 lsl n then invalid_arg "Statevector.basis_state: out of range";
  v.re.(0) <- 0.0;
  v.re.(k) <- 1.0;
  v

let num_qubits v = v.n
let copy v = { v with re = Array.copy v.re; im = Array.copy v.im }
let amplitude v k = { Complex.re = v.re.(k); im = v.im.(k) }

let norm v =
  let acc = ref 0.0 in
  Array.iteri (fun k re -> acc := !acc +. (re *. re) +. (v.im.(k) *. v.im.(k))) v.re;
  sqrt !acc

let apply_1q v q m =
  let g i j = Cmat.get m i j in
  let m00 = g 0 0 and m01 = g 0 1 and m10 = g 1 0 and m11 = g 1 1 in
  let dim = 1 lsl v.n in
  let mask = 1 lsl (v.n - 1 - q) in
  for i0 = 0 to dim - 1 do
    if i0 land mask = 0 then begin
      let i1 = i0 lor mask in
      let a_re = v.re.(i0) and a_im = v.im.(i0) in
      let b_re = v.re.(i1) and b_im = v.im.(i1) in
      v.re.(i0) <-
        (m00.Complex.re *. a_re) -. (m00.Complex.im *. a_im)
        +. (m01.Complex.re *. b_re) -. (m01.Complex.im *. b_im);
      v.im.(i0) <-
        (m00.Complex.re *. a_im) +. (m00.Complex.im *. a_re)
        +. (m01.Complex.re *. b_im) +. (m01.Complex.im *. b_re);
      v.re.(i1) <-
        (m10.Complex.re *. a_re) -. (m10.Complex.im *. a_im)
        +. (m11.Complex.re *. b_re) -. (m11.Complex.im *. b_im);
      v.im.(i1) <-
        (m10.Complex.re *. a_im) +. (m10.Complex.im *. a_re)
        +. (m11.Complex.re *. b_im) +. (m11.Complex.im *. b_re)
    end
  done

let apply_2q v a b m =
  let mre = Array.init 16 (fun k -> (Cmat.get m (k / 4) (k mod 4)).Complex.re) in
  let mim = Array.init 16 (fun k -> (Cmat.get m (k / 4) (k mod 4)).Complex.im) in
  let dim = 1 lsl v.n in
  let mask_a = 1 lsl (v.n - 1 - a) and mask_b = 1 lsl (v.n - 1 - b) in
  let idx = Array.make 4 0 in
  let tre = Array.make 4 0.0 and tim = Array.make 4 0.0 in
  for base = 0 to dim - 1 do
    if base land mask_a = 0 && base land mask_b = 0 then begin
      idx.(0) <- base;
      idx.(1) <- base lor mask_b;
      idx.(2) <- base lor mask_a;
      idx.(3) <- base lor mask_a lor mask_b;
      for k = 0 to 3 do
        tre.(k) <- v.re.(idx.(k));
        tim.(k) <- v.im.(idx.(k))
      done;
      for k = 0 to 3 do
        let acc_re = ref 0.0 and acc_im = ref 0.0 in
        for l = 0 to 3 do
          let mr = mre.((k * 4) + l) and mi = mim.((k * 4) + l) in
          acc_re := !acc_re +. (mr *. tre.(l)) -. (mi *. tim.(l));
          acc_im := !acc_im +. (mr *. tim.(l)) +. (mi *. tre.(l))
        done;
        v.re.(idx.(k)) <- !acc_re;
        v.im.(idx.(k)) <- !acc_im
      done
    end
  done

let apply_gate v g =
  match g, Gate.qubits g with
  | Gate.G1 (k, q), _ -> apply_1q v q (Unitary.one_q k)
  | _, [ a; b ] -> apply_2q v a b (Unitary.gate_4x4 g)
  | _, _ -> assert false

let run_circuit v circuit =
  if Circuit.num_qubits circuit <> v.n then
    invalid_arg "Statevector.run_circuit: qubit-count mismatch";
  List.iter (apply_gate v) (Circuit.gates circuit)

let of_circuit circuit =
  let v = zero_state (Circuit.num_qubits circuit) in
  run_circuit v circuit;
  v

let inner_product a b =
  if a.n <> b.n then invalid_arg "Statevector.inner_product: size mismatch";
  let re = ref 0.0 and im = ref 0.0 in
  Array.iteri
    (fun k a_re ->
      let a_im = a.im.(k) and b_re = b.re.(k) and b_im = b.im.(k) in
      (* conj(a) * b *)
      re := !re +. (a_re *. b_re) +. (a_im *. b_im);
      im := !im +. (a_re *. b_im) -. (a_im *. b_re))
    a.re;
  { Complex.re = !re; im = !im }

(* P|ψ⟩ computed amplitude-wise: for basis |k⟩, P|k⟩ = phase · |k'⟩ with
   k' = k ⊕ x-mask and phase i^{(#Y)} · (−1)^{(z·k')}… implemented via the
   per-qubit action to stay simple and obviously correct. *)
let expectation_pauli v p =
  if Pauli_string.num_qubits p <> v.n then
    invalid_arg "Statevector.expectation_pauli: size mismatch";
  let w = copy v in
  List.iter
    (fun q ->
      match Pauli_string.get p q with
      | Pauli.I -> ()
      | op -> apply_1q w q (Unitary.pauli_1q op))
    (List.init v.n (fun i -> i));
  (inner_product v w).Complex.re

let expectation v h =
  if Phoenix_ham.Hamiltonian.num_qubits h <> v.n then
    invalid_arg "Statevector.expectation: size mismatch";
  List.fold_left
    (fun acc (t : Phoenix_pauli.Pauli_term.t) ->
      acc
      +. (t.Phoenix_pauli.Pauli_term.coeff
         *. expectation_pauli v t.Phoenix_pauli.Pauli_term.pauli))
    0.0
    (Phoenix_ham.Hamiltonian.terms h)

let probabilities v =
  Array.init (1 lsl v.n) (fun k ->
      (v.re.(k) *. v.re.(k)) +. (v.im.(k) *. v.im.(k)))

let sample rng v =
  let probs = probabilities v in
  let total = Array.fold_left ( +. ) 0.0 probs in
  let target = Phoenix_util.Prng.float rng total in
  let rec walk k acc =
    if k >= Array.length probs - 1 then k
    else begin
      let acc = acc +. probs.(k) in
      if acc >= target then k else walk (k + 1) acc
    end
  in
  walk 0 0.0
