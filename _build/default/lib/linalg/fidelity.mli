(** Unitary-fidelity metrics.

    The paper's algorithmic error is
    [infid = 1 − |Tr(U† V)| / N]  (§V-A), insensitive to global phase. *)

val infidelity : Cmat.t -> Cmat.t -> float
(** [infidelity u v = 1 − |Tr(u† v)| / N].  Raises [Invalid_argument] on
    dimension mismatch. *)

val equivalent : ?tol:float -> Cmat.t -> Cmat.t -> bool
(** [true] when the infidelity is below [tol] (default [1e-9]) — unitary
    equality up to global phase. *)
