module Circuit = Phoenix_circuit.Circuit
module Rebase = Phoenix_circuit.Rebase

type counts = { gates : int; two_q : int; depth : int; depth_2q : int }

let of_circuit c =
  {
    gates = Circuit.length c;
    two_q = Circuit.count_2q c;
    depth = Circuit.depth c;
    depth_2q = Circuit.depth_2q c;
  }

let of_su4_circuit c = of_circuit (Rebase.to_su4 c)

let geomean xs =
  match xs with
  | [] -> invalid_arg "Metrics.geomean: empty"
  | _ ->
    let acc =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Metrics.geomean: non-positive entry";
          acc +. log x)
        0.0 xs
    in
    exp (acc /. float_of_int (List.length xs))

let ratio a b = float_of_int a /. float_of_int b
let pct r = Printf.sprintf "%.1f%%" (100.0 *. r)
