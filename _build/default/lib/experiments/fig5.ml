type row = {
  label : string;
  original : Metrics.counts;
  per_compiler : (Drivers.compiler * Metrics.counts) list;
  no_o3 : (Drivers.compiler * Metrics.counts) list;
}

let compilers =
  [ Drivers.Tket; Drivers.Paulihedral; Drivers.Tetris; Drivers.Phoenix_c ]

let o3_compilers = [ Drivers.Paulihedral; Drivers.Tetris; Drivers.Phoenix_c ]

let run ?labels () =
  List.map
    (fun (case : Workloads.uccsd_case) ->
      let n = case.Workloads.n and blocks = case.Workloads.gadget_blocks in
      let outcome ?o3 c = (Drivers.run_logical ?o3 ~isa:Drivers.Cnot c n blocks).Drivers.counts in
      {
        label = case.Workloads.label;
        original = outcome Drivers.Naive;
        per_compiler = List.map (fun c -> c, outcome c) compilers;
        no_o3 = List.map (fun c -> c, outcome ~o3:false c) o3_compilers;
      })
    (Workloads.uccsd_suite ?labels ())

type summary_line = { name : string; cnot_rate : float; depth_rate : float }

let rate_of rows pick =
  let cnots, depths =
    List.fold_left
      (fun (cs, ds) row ->
        let counts = pick row in
        ( Metrics.ratio counts.Metrics.two_q row.original.Metrics.two_q :: cs,
          Metrics.ratio counts.Metrics.depth_2q row.original.Metrics.depth_2q
          :: ds ))
      ([], []) rows
  in
  Metrics.geomean cnots, Metrics.geomean depths

let summarize rows =
  let line name pick =
    let cnot_rate, depth_rate = rate_of rows pick in
    { name; cnot_rate; depth_rate }
  in
  List.map
    (fun c ->
      line (Drivers.compiler_name c) (fun row -> List.assoc c row.per_compiler))
    compilers
  @ List.map
      (fun c ->
        line
          (Drivers.compiler_name c ^ " (no O3)")
          (fun row -> List.assoc c row.no_o3))
      o3_compilers

let paper_table2 =
  [
    "TKET-like", (0.3307, 0.3014);
    "Paulihedral-like", (0.2841, 0.2907);
    "Tetris-like", (0.5366, 0.5326);
    "PHOENIX", (0.2112, 0.1929);
  ]

let print fmt rows =
  Format.fprintf fmt
    "@[<v>== Fig. 5: logical-level compilation (all-to-all), CNOT ISA ==@,";
  Format.fprintf fmt "%-14s %10s" "Benchmark" "original";
  List.iter
    (fun c -> Format.fprintf fmt " %16s" (Drivers.compiler_name c))
    compilers;
  Format.fprintf fmt "   (#CNOT / Depth-2Q)@,";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-14s %5d/%-5d" row.label row.original.Metrics.two_q
        row.original.Metrics.depth_2q;
      List.iter
        (fun c ->
          let m = List.assoc c row.per_compiler in
          Format.fprintf fmt " %8d/%-7d" m.Metrics.two_q m.Metrics.depth_2q)
        compilers;
      Format.fprintf fmt "@,")
    rows;
  Format.fprintf fmt
    "@,== Table II: geomean optimization rates vs original (measured | paper) ==@,";
  List.iter
    (fun line ->
      let paper_c, paper_d =
        match
          List.assoc_opt
            (match line.name with
            | s when s = Drivers.compiler_name Drivers.Tket -> "TKET-like"
            | s -> s)
            paper_table2
        with
        | Some (c, d) -> Metrics.pct c, Metrics.pct d
        | None -> "-", "-"
      in
      Format.fprintf fmt "%-24s #CNOT %s | %s    Depth-2Q %s | %s@," line.name
        (Metrics.pct line.cnot_rate)
        paper_c
        (Metrics.pct line.depth_rate)
        paper_d)
    (summarize rows);
  Format.fprintf fmt "@]@."
