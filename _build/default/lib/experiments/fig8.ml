module Hamiltonian = Phoenix_ham.Hamiltonian
module Fermion = Phoenix_ham.Fermion
module Uccsd = Phoenix_ham.Uccsd
module Unitary = Phoenix_linalg.Unitary
module Herm = Phoenix_linalg.Herm
module Fidelity = Phoenix_linalg.Fidelity
module Compiler = Phoenix.Compiler

type point = { scale : float; tket : float; phoenix : float }

type series = {
  molecule : string;
  encoding : Fermion.encoding;
  points : point list;
}

let default_scales = [ 1.0; 1.6; 3.0; 5.0; 8.0 ]

let spec_of_name = function
  | "LiH_reduced" -> Phoenix_ham.Molecules.lih_reduced
  | "NH_reduced" -> Phoenix_ham.Molecules.nh_reduced
  | name -> invalid_arg (Printf.sprintf "Fig8: unknown molecule %S" name)

let series_for ~scales spec enc =
  let base = Uccsd.ansatz enc spec in
  let n = Hamiltonian.num_qubits base in
  let decomposition =
    Herm.eig (Unitary.hamiltonian_matrix n
                (List.map
                   (fun (t : Phoenix_pauli.Pauli_term.t) ->
                     t.Phoenix_pauli.Pauli_term.pauli,
                     t.Phoenix_pauli.Pauli_term.coeff)
                   (Hamiltonian.terms base)))
  in
  let point scale =
    let h = Hamiltonian.scale scale base in
    let exact = Herm.evolution decomposition scale in
    let gadgets = Hamiltonian.trotter_gadgets h in
    let tket_circuit = Phoenix_baselines.Tket_like.compile n gadgets in
    let tket = Fidelity.infidelity exact (Unitary.circuit_unitary tket_circuit) in
    let r = Compiler.compile h in
    let phoenix =
      Fidelity.infidelity exact (Unitary.circuit_unitary r.Compiler.circuit)
    in
    { scale; tket; phoenix }
  in
  {
    molecule = spec.Uccsd.name;
    encoding = enc;
    points = List.map point scales;
  }

let run ?(scales = default_scales) ?(molecules = [ "LiH_reduced"; "NH_reduced" ]) () =
  List.concat_map
    (fun name ->
      let spec = spec_of_name name in
      List.map
        (fun enc -> series_for ~scales spec enc)
        [ Fermion.Jordan_wigner; Fermion.Bravyi_kitaev ])
    molecules

let print fmt series =
  Format.fprintf fmt
    "@[<v>== Fig. 8: algorithmic error (infidelity vs ideal evolution) ==@,";
  Format.fprintf fmt
    "(reduced molecules; see DESIGN.md for the dense-simulation substitution)@,";
  List.iter
    (fun s ->
      Format.fprintf fmt "-- %s / %s --@," s.molecule
        (Fermion.encoding_to_string s.encoding);
      Format.fprintf fmt "  %-8s %-14s %-14s %s@," "scale" "TKET-like"
        "PHOENIX" "PHOENIX better?";
      List.iter
        (fun p ->
          Format.fprintf fmt "  %-8.3g %-14.3e %-14.3e %s@," p.scale p.tket
            p.phoenix
            (if p.phoenix <= p.tket then "yes" else "no"))
        s.points;
      let avg f =
        List.fold_left (fun acc p -> acc +. f p) 0.0 s.points
        /. float_of_int (List.length s.points)
      in
      let reduction = 1.0 -. (avg (fun p -> p.phoenix) /. avg (fun p -> p.tket)) in
      Format.fprintf fmt "  mean error reduction vs TKET-like: %s@,"
        (Metrics.pct reduction))
    series;
  Format.fprintf fmt
    "(paper: 57%%/49.5%% reduction for NH, 42.7%%/34.1%% for LiH, BK/JW)@,";
  Format.fprintf fmt "@]@."
