(** Fig. 5 + Table II — logical-level compilation on all-to-all
    connectivity.

    For every UCCSD benchmark and compiler: #CNOT and 2Q depth; then the
    Table-II aggregation — geometric-mean optimization rates relative to
    the original circuits, with and without the O3-style peephole for the
    block-based compilers and PHOENIX. *)

type row = {
  label : string;
  original : Metrics.counts;
  per_compiler : (Drivers.compiler * Metrics.counts) list;
  no_o3 : (Drivers.compiler * Metrics.counts) list;
      (** Paulihedral/Tetris/PHOENIX without the peephole stage *)
}

val run : ?labels:string list -> unit -> row list

type summary_line = {
  name : string;
  cnot_rate : float;  (** geomean(#CNOT / original #CNOT) *)
  depth_rate : float;
}

val summarize : row list -> summary_line list
(** Table II: one line per compiler (+ the no-O3 variants). *)

val paper_table2 : (string * (float * float)) list
(** Paper values: compiler ↦ (#CNOT opt rate, Depth-2Q opt rate). *)

val print : Format.formatter -> row list -> unit
