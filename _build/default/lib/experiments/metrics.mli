(** Shared measurement helpers for the experiment harness. *)

type counts = {
  gates : int;  (** total gates (1Q + 2Q) *)
  two_q : int;  (** CNOT or SU(4) count, per ISA *)
  depth : int;
  depth_2q : int;
}

val of_circuit : Phoenix_circuit.Circuit.t -> counts
(** CNOT-ISA accounting (the circuit must already be in CNOT basis;
    [two_q = count_2q]). *)

val of_su4_circuit : Phoenix_circuit.Circuit.t -> counts
(** SU(4)-ISA accounting: the circuit is fused with
    {!Phoenix_circuit.Rebase.to_su4} first. *)

val geomean : float list -> float
(** Geometric mean; raises [Invalid_argument] on empty input or
    non-positive entries. *)

val ratio : int -> int -> float
(** [ratio a b = a / b] as floats. *)

val pct : float -> string
(** Render a ratio as a percentage with one decimal. *)
