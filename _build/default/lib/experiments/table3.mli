(** Table III — comparison across ISAs (CNOT vs SU(4)) and topologies
    (all-to-all vs heavy-hex).

    Reports PHOENIX's geomean relative rates (PHOENIX metric / baseline
    metric) for 2Q gate count and 2Q depth in the four setting
    combinations, next to the paper's numbers. *)

type setting = { isa : Drivers.isa; hardware : bool }

type cell = { two_q_rate : float; depth_rate : float }

type result = (setting * (Drivers.compiler * cell) list) list

val settings : setting list
val setting_name : setting -> string

val run : ?labels:string list -> unit -> result

val paper : (string * (string * (float * float)) list) list
(** setting name ↦ baseline ↦ (2Q rate, depth rate). *)

val print : Format.formatter -> result -> unit
