module Circuit = Phoenix_circuit.Circuit
module Compiler = Phoenix.Compiler

type side = { cnots : int; depth_2q : int; swaps : int; overhead : float }

type row = { label : string; pauli : int; qan2 : side; phoenix : side }

let run () =
  let topo = Workloads.heavy_hex () in
  List.map
    (fun (case : Workloads.qaoa_case) ->
      let logical_cnots = 2 * List.length case.Workloads.qgadgets in
      let q =
        Phoenix_baselines.Qan2_like.compile topo case.Workloads.qn
          case.Workloads.qgadgets
      in
      let qan2 =
        {
          cnots = Circuit.count_2q q.Phoenix_baselines.Qan2_like.circuit;
          depth_2q = Circuit.depth_2q q.Phoenix_baselines.Qan2_like.circuit;
          swaps = q.Phoenix_baselines.Qan2_like.num_swaps;
          overhead =
            Metrics.ratio
              (Circuit.count_2q q.Phoenix_baselines.Qan2_like.circuit)
              logical_cnots;
        }
      in
      let options =
        { Compiler.default_options with target = Compiler.Hardware topo }
      in
      let r = Compiler.compile_gadgets ~options case.Workloads.qn case.Workloads.qgadgets in
      let phoenix =
        {
          cnots = r.Compiler.two_q_count;
          depth_2q = r.Compiler.depth_2q;
          swaps = r.Compiler.num_swaps;
          overhead = Metrics.ratio r.Compiler.two_q_count logical_cnots;
        }
      in
      {
        label = case.Workloads.qlabel;
        pauli = List.length case.Workloads.qgadgets;
        qan2;
        phoenix;
      })
    (Workloads.qaoa_suite ())

let paper =
  [
    "Rand-16", (32, 168, 85, 37, 2.62), (150, 52, 29, 2.34);
    "Rand-20", (40, 217, 85, 47, 2.71), (187, 49, 39, 2.34);
    "Rand-24", (48, 274, 100, 63, 2.85), (257, 67, 56, 2.68);
    "Reg3-16", (24, 149, 61, 44, 3.10), (99, 28, 17, 2.06);
    "Reg3-20", (30, 172, 46, 46, 2.87), (128, 30, 23, 2.13);
    "Reg3-24", (36, 218, 62, 62, 3.03), (158, 34, 30, 2.19);
  ]

let print fmt rows =
  Format.fprintf fmt
    "@[<v>== Table IV: QAOA vs 2QAN-like on heavy-hex (measured | paper) ==@,";
  Format.fprintf fmt "%-10s %-7s %-23s %-23s %-19s %-19s@," "Bench." "#Pauli"
    "#CNOT (2QAN|PHX)" "Depth-2Q (2QAN|PHX)" "#SWAP (2QAN|PHX)"
    "Overhead (2QAN|PHX)";
  List.iter
    (fun r ->
      let (pp, qc, qd, qs, qo), (pc, pd, ps, po) =
        match List.assoc_opt r.label (List.map (fun (l, a, b) -> l, (a, b)) paper) with
        | Some (a, b) -> a, b
        | None -> (0, 0, 0, 0, 0.0), (0, 0, 0, 0.0)
      in
      ignore pp;
      Format.fprintf fmt
        "%-10s %-7d %4d|%-4d (%3d|%-3d) %4d|%-4d (%3d|%-3d) %3d|%-3d (%2d|%-2d) %.2fx|%.2fx (%.2f|%.2f)@,"
        r.label r.pauli r.qan2.cnots r.phoenix.cnots qc pc r.qan2.depth_2q
        r.phoenix.depth_2q qd pd r.qan2.swaps r.phoenix.swaps qs ps
        r.qan2.overhead r.phoenix.overhead qo po)
    rows;
  (* average improvements, as in the paper's last row *)
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  let impr pick =
    avg (fun r -> 1.0 -. (float_of_int (pick r.phoenix) /. float_of_int (pick r.qan2)))
  in
  Format.fprintf fmt
    "Avg. improv. (measured | paper): #CNOT -%s|-16.7%%  Depth-2Q -%s|-40.8%%  #SWAP -%s|-29.4%%@,"
    (Metrics.pct (impr (fun s -> s.cnots)))
    (Metrics.pct (impr (fun s -> s.depth_2q)))
    (Metrics.pct (impr (fun s -> s.swaps)));
  Format.fprintf fmt "@]@."
