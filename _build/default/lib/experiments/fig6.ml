type row = {
  label : string;
  per_compiler : (Drivers.compiler * Drivers.outcome) list;
}

let compilers = [ Drivers.Paulihedral; Drivers.Tetris; Drivers.Phoenix_c ]

let run ?labels () =
  let topo = Workloads.heavy_hex () in
  List.map
    (fun (case : Workloads.uccsd_case) ->
      {
        label = case.Workloads.label;
        per_compiler =
          List.map
            (fun c ->
              ( c,
                Drivers.run_hardware ~isa:Drivers.Cnot topo c case.Workloads.n
                  case.Workloads.gadget_blocks ))
            compilers;
      })
    (Workloads.uccsd_suite ?labels ())

let average_multiple rows compiler =
  let ratios =
    List.map
      (fun row ->
        let o = List.assoc compiler row.per_compiler in
        Metrics.ratio o.Drivers.counts.Metrics.two_q o.Drivers.logical_two_q)
      rows
  in
  List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)

let summarize_reduction rows ~vs =
  let ratios pick =
    Metrics.geomean
      (List.map
         (fun row ->
           let phx = List.assoc Drivers.Phoenix_c row.per_compiler in
           let base = List.assoc vs row.per_compiler in
           Metrics.ratio (pick phx) (pick base))
         rows)
  in
  ( ratios (fun o -> o.Drivers.counts.Metrics.two_q),
    ratios (fun o -> o.Drivers.counts.Metrics.depth_2q) )

let print fmt rows =
  Format.fprintf fmt
    "@[<v>== Fig. 6: hardware-aware compilation (heavy-hex 64q), CNOT ISA ==@,";
  Format.fprintf fmt "%-14s" "Benchmark";
  List.iter
    (fun c -> Format.fprintf fmt " %24s" (Drivers.compiler_name c))
    compilers;
  Format.fprintf fmt "   (#CNOT / Depth-2Q / #SWAP)@,";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-14s" row.label;
      List.iter
        (fun c ->
          let o = List.assoc c row.per_compiler in
          Format.fprintf fmt " %10d/%-7d/%-5d" o.Drivers.counts.Metrics.two_q
            o.Drivers.counts.Metrics.depth_2q o.Drivers.swaps)
        compilers;
      Format.fprintf fmt "@,")
    rows;
  Format.fprintf fmt "@,-- post-mapping #CNOT multiples (measured | paper) --@,";
  let paper_mult = [ Drivers.Paulihedral, "> 2.8x"; Drivers.Tetris, "< 2.8x"; Drivers.Phoenix_c, "2.8x" ] in
  List.iter
    (fun c ->
      Format.fprintf fmt "%-20s %.2fx | %s@," (Drivers.compiler_name c)
        (average_multiple rows c)
        (List.assoc c paper_mult))
    compilers;
  Format.fprintf fmt
    "@,-- PHOENIX reduction vs baselines (measured | paper) --@,";
  let paper_red = [ Drivers.Paulihedral, (0.3617, 0.4385); Drivers.Tetris, (0.2262, 0.2812) ] in
  List.iter
    (fun vs ->
      let c, d = summarize_reduction rows ~vs in
      let pc, pd = List.assoc vs paper_red in
      Format.fprintf fmt
        "vs %-18s #CNOT -%s | -%s    Depth-2Q -%s | -%s@,"
        (Drivers.compiler_name vs)
        (Metrics.pct (1.0 -. c))
        (Metrics.pct pc)
        (Metrics.pct (1.0 -. d))
        (Metrics.pct pd))
    [ Drivers.Paulihedral; Drivers.Tetris ];
  Format.fprintf fmt "@]@."
