(** Estimated end-to-end circuit fidelity per compiler (beyond the
    paper's tables, but the premise behind them): under a first-order
    device noise model, fewer 2Q gates and shallower circuits translate
    directly into higher success probability.  This runner projects each
    compiler's logical circuit onto {!Phoenix_circuit.Noise.ibm_like}
    and reports the success probabilities side by side. *)

type row = {
  label : string;
  per_compiler : (Drivers.compiler * float) list;
      (** estimated success probability *)
}

val run : ?labels:string list -> unit -> row list
val print : Format.formatter -> row list -> unit
