(** Fig. 6 — hardware-aware compilation on the 64-qubit heavy-hex
    device.

    For Paulihedral-like, Tetris-like and PHOENIX: routed #CNOT, routed
    2Q depth, and the post-mapping CNOT multiple (routed / logical) whose
    averages the paper draws as dashed lines. *)

type row = {
  label : string;
  per_compiler : (Drivers.compiler * Drivers.outcome) list;
}

val run : ?labels:string list -> unit -> row list

val average_multiple : row list -> Drivers.compiler -> float
(** Mean of routed-CNOT / logical-CNOT over the suite. *)

val summarize_reduction :
  row list -> vs:Drivers.compiler -> float * float
(** PHOENIX's geomean (CNOT ratio, depth ratio) against a baseline. *)

val print : Format.formatter -> row list -> unit
