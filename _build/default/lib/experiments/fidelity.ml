module Noise = Phoenix_circuit.Noise
module B = Phoenix_baselines

type row = {
  label : string;
  per_compiler : (Drivers.compiler * float) list;
}

let compilers =
  [
    Drivers.Naive;
    Drivers.Tket;
    Drivers.Paulihedral;
    Drivers.Tetris;
    Drivers.Phoenix_c;
  ]

let circuit_for compiler n blocks =
  match compiler with
  | Drivers.Phoenix_c ->
    let r = Phoenix.Compiler.compile_blocks n blocks in
    r.Phoenix.Compiler.circuit
  | Drivers.Naive -> B.Naive.compile n (List.concat blocks)
  | Drivers.Tket -> B.Tket_like.compile n (List.concat blocks)
  | Drivers.Paulihedral -> B.Paulihedral_like.compile_blocks n blocks
  | Drivers.Tetris -> B.Tetris_like.compile_blocks n blocks

let run ?labels () =
  List.map
    (fun (case : Workloads.uccsd_case) ->
      {
        label = case.Workloads.label;
        per_compiler =
          List.map
            (fun c ->
              ( c,
                Noise.success_probability
                  (circuit_for c case.Workloads.n case.Workloads.gadget_blocks)
              ))
            compilers;
      })
    (Workloads.uccsd_suite ?labels ())

let print fmt rows =
  Format.fprintf fmt
    "@[<v>== Projected circuit success probability (IBM-like noise model) ==@,";
  Format.fprintf fmt "%-14s" "Benchmark";
  List.iter
    (fun c -> Format.fprintf fmt " %17s" (Drivers.compiler_name c))
    compilers;
  Format.fprintf fmt "@,";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-14s" row.label;
      List.iter
        (fun c -> Format.fprintf fmt " %17.4g" (List.assoc c row.per_compiler))
        compilers;
      Format.fprintf fmt "@,")
    rows;
  Format.fprintf fmt
    "(the compiler with the fewest 2Q gates dominates — the premise of the paper's metrics)@,";
  Format.fprintf fmt "@]@."
