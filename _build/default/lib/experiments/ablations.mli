(** Ablation study of PHOENIX's design choices (beyond the paper's own
    tables): each variant disables one ingredient of the pipeline and is
    measured on the UCCSD suite (logical, CNOT ISA) and on QAOA
    (heavy-hex).

    Variants:
    - [Full]           the complete pipeline
    - [No_ordering]    IR groups kept in program order
    - [No_lookahead]   Tetris ordering with a window of 1
    - [No_compression] no core diagonalization
    - [No_peephole]    no O3-style cleanup
    - [Exact]          strictly unitary-preserving mode *)

type variant =
  | Full
  | No_ordering
  | No_lookahead
  | No_compression
  | No_peephole
  | Exact

val variant_name : variant -> string
val all_variants : variant list

val run_uccsd :
  ?labels:string list -> unit -> (variant * (float * float)) list
(** Geomean (#CNOT rate, Depth-2Q rate) vs the original circuits. *)

val run_qaoa_router : unit -> (string * (int * int) * (int * int)) list
(** Per QAOA benchmark: (label, (swaps, depth) with the commuting-aware
    router, (swaps, depth) with plain SABRE). *)

val print :
  Format.formatter ->
  (variant * (float * float)) list ->
  (string * (int * int) * (int * int)) list ->
  unit
