(** Fig. 8 — algorithmic error analysis.

    Substitution (DESIGN.md): the paper simulates 10-qubit LiH/NH; exact
    dense evolution in pure OCaml is kept tractable by using reduced
    molecules (6-qubit LiH, 8-qubit NH) with the same UCCSD machinery.
    Coefficients are rescaled to sweep the algorithmic-error regime; for
    each scale the infidelity
    [1 − |Tr(U†V)|/N] between the ideal evolution [exp(-i·H)] and the
    compiled circuit is reported for the TKET-like baseline and PHOENIX.
    The compilers produce different Trotter orderings, which is exactly
    the effect the paper attributes the error differences to. *)

type point = { scale : float; tket : float; phoenix : float }

type series = {
  molecule : string;
  encoding : Phoenix_ham.Fermion.encoding;
  points : point list;
}

val default_scales : float list
(** Chosen so infidelities land in the paper's 5·10⁻⁵ … 10⁻² window. *)

val run : ?scales:float list -> ?molecules:string list -> unit -> series list
(** [molecules] defaults to [["LiH_reduced"; "NH_reduced"]]. *)

val print : Format.formatter -> series list -> unit
