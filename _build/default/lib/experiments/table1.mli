(** Table I — UCCSD benchmark suite characteristics.

    For every benchmark: qubit count, #Pauli, maximum weight, and the
    naive ("original") circuit's gate count, CNOT count, depth and 2Q
    depth, printed next to the values the paper reports. *)

type row = {
  label : string;
  qubits : int;
  pauli : int;
  w_max : int;
  gates : int;
  cnots : int;
  depth : int;
  depth_2q : int;
}

val paper : (string * (int * int * int * int * int * int * int)) list
(** Paper values: label ↦ (qubits, #Pauli, w_max, #Gate, #CNOT, Depth,
    Depth-2Q). *)

val run : ?labels:string list -> unit -> row list
val print : Format.formatter -> row list -> unit
