(** Benchmark workloads shared by the experiment runners. *)

type uccsd_case = {
  label : string;
  n : int;
  gadget_blocks : (Phoenix_pauli.Pauli_string.t * float) list list;
      (** one block per excitation, Trotter angles folded in *)
}

val gadgets : uccsd_case -> (Phoenix_pauli.Pauli_string.t * float) list
(** Flattened program. *)

val uccsd_suite : ?labels:string list -> unit -> uccsd_case list
(** The paper's 16 UCCSD benchmarks (Table I), or a subset by label. *)

val uccsd_quick_labels : string list
(** The four smallest benchmarks, for smoke runs. *)

type qaoa_case = {
  qlabel : string;
  qn : int;
  graph : Phoenix_ham.Graphs.t;
  qgadgets : (Phoenix_pauli.Pauli_string.t * float) list;
}

val qaoa_suite : unit -> qaoa_case list
(** The six Table-IV QAOA benchmarks. *)

val heavy_hex : unit -> Phoenix_topology.Topology.t
(** The 64-qubit Manhattan-class device used for hardware-aware runs. *)
