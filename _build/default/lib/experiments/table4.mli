(** Table IV + Fig. 7 — QAOA benchmarking against 2QAN on heavy-hex.

    For the six QAOA programs: #CNOT, 2Q depth, #SWAP and routing
    overhead (routed CNOTs / logical CNOTs) for the 2QAN-like baseline
    and PHOENIX. *)

type side = {
  cnots : int;
  depth_2q : int;
  swaps : int;
  overhead : float;
}

type row = {
  label : string;
  pauli : int;
  qan2 : side;
  phoenix : side;
}

val run : unit -> row list

val paper : (string * (int * int * int * int * float) * (int * int * int * float)) list
(** label ↦ #Pauli, (2QAN: #CNOT, Depth-2Q, #SWAP, overhead) is folded
    into the first tuple as (pauli, cnot, depth, swap, overhead); second
    tuple is PHOENIX (cnot, depth, swap, overhead). *)

val print : Format.formatter -> row list -> unit
