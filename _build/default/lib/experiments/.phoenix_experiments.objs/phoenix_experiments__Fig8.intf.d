lib/experiments/fig8.mli: Format Phoenix_ham
