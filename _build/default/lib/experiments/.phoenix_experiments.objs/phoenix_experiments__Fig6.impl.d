lib/experiments/fig6.ml: Drivers Format List Metrics Workloads
