lib/experiments/table1.ml: Format List Phoenix_baselines Phoenix_circuit Phoenix_ham Phoenix_pauli Workloads
