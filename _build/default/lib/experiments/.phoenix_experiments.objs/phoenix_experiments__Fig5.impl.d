lib/experiments/fig5.ml: Drivers Format List Metrics Workloads
