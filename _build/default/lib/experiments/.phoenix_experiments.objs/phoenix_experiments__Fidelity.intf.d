lib/experiments/fidelity.mli: Drivers Format
