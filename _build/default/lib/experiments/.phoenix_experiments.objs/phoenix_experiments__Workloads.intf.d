lib/experiments/workloads.mli: Phoenix_ham Phoenix_pauli Phoenix_topology
