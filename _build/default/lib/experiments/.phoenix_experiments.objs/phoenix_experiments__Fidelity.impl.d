lib/experiments/fidelity.ml: Drivers Format List Phoenix Phoenix_baselines Phoenix_circuit Workloads
