lib/experiments/workloads.ml: List Phoenix_ham Phoenix_pauli Phoenix_topology
