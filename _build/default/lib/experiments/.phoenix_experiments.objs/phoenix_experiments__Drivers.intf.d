lib/experiments/drivers.mli: Metrics Phoenix_pauli Phoenix_topology
