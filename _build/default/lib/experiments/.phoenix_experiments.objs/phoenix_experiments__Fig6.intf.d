lib/experiments/fig6.mli: Drivers Format
