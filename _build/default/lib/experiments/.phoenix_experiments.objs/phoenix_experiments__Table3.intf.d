lib/experiments/table3.mli: Drivers Format
