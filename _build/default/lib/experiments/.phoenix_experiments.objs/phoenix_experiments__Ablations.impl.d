lib/experiments/ablations.ml: Format List Metrics Phoenix Phoenix_baselines Phoenix_circuit Phoenix_router Workloads
