lib/experiments/metrics.mli: Phoenix_circuit
