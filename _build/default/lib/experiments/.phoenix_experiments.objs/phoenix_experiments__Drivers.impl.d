lib/experiments/drivers.ml: List Metrics Phoenix Phoenix_baselines Phoenix_circuit Phoenix_router Phoenix_topology Sys
