lib/experiments/fig5.mli: Drivers Format Metrics
