lib/experiments/metrics.ml: List Phoenix_circuit Printf
