lib/experiments/table3.ml: Drivers Format List Metrics Option Printf Workloads
