lib/experiments/table4.ml: Format List Metrics Phoenix Phoenix_baselines Phoenix_circuit Workloads
