lib/experiments/fig8.ml: Format List Metrics Phoenix Phoenix_baselines Phoenix_ham Phoenix_linalg Phoenix_pauli Printf
