module Hamiltonian = Phoenix_ham.Hamiltonian
module Pauli_term = Phoenix_pauli.Pauli_term

type uccsd_case = {
  label : string;
  n : int;
  gadget_blocks : (Phoenix_pauli.Pauli_string.t * float) list list;
}

let gadgets c = List.concat c.gadget_blocks

let to_gadget (t : Pauli_term.t) =
  t.Pauli_term.pauli, 2.0 *. t.Pauli_term.coeff

let uccsd_suite ?labels () =
  let wanted b =
    match labels with
    | None -> true
    | Some ls -> List.mem b.Phoenix_ham.Molecules.label ls
  in
  List.filter_map
    (fun b ->
      if not (wanted b) then None
      else begin
        let h =
          Phoenix_ham.Uccsd.ansatz b.Phoenix_ham.Molecules.encoding
            b.Phoenix_ham.Molecules.spec
        in
        let blocks =
          match Hamiltonian.term_blocks h with
          | Some blocks -> List.map (List.map to_gadget) blocks
          | None -> [ List.map to_gadget (Hamiltonian.terms h) ]
        in
        Some
          {
            label = b.Phoenix_ham.Molecules.label;
            n = Hamiltonian.num_qubits h;
            gadget_blocks = blocks;
          }
      end)
    Phoenix_ham.Molecules.table1_suite

let uccsd_quick_labels =
  [ "LiH_frz_BK"; "LiH_frz_JW"; "NH_frz_BK"; "NH_frz_JW" ]

type qaoa_case = {
  qlabel : string;
  qn : int;
  graph : Phoenix_ham.Graphs.t;
  qgadgets : (Phoenix_pauli.Pauli_string.t * float) list;
}

let qaoa_suite () =
  List.map
    (fun (qlabel, graph) ->
      let h = Phoenix_ham.Qaoa.maxcut_cost ~gamma:0.8 graph in
      {
        qlabel;
        qn = Phoenix_ham.Graphs.num_vertices graph;
        graph;
        qgadgets = Hamiltonian.trotter_gadgets h;
      })
    (Phoenix_ham.Qaoa.benchmark_suite ())

let heavy_hex () = Phoenix_topology.Topology.ibm_manhattan ()
