type setting = { isa : Drivers.isa; hardware : bool }

type cell = { two_q_rate : float; depth_rate : float }

type result = (setting * (Drivers.compiler * cell) list) list

let settings =
  [
    { isa = Drivers.Cnot; hardware = false };
    { isa = Drivers.Su4; hardware = false };
    { isa = Drivers.Cnot; hardware = true };
    { isa = Drivers.Su4; hardware = true };
  ]

let setting_name s =
  Printf.sprintf "%s ISA (%s)"
    (match s.isa with Drivers.Cnot -> "CNOT" | Drivers.Su4 -> "SU(4)")
    (if s.hardware then "heavy-hex" else "all-to-all")

let baselines = [ Drivers.Tket; Drivers.Paulihedral; Drivers.Tetris ]

let run ?labels () =
  let cases = Workloads.uccsd_suite ?labels () in
  let topo = Workloads.heavy_hex () in
  let outcome setting compiler (case : Workloads.uccsd_case) =
    if setting.hardware then
      Drivers.run_hardware ~isa:setting.isa topo compiler case.Workloads.n
        case.Workloads.gadget_blocks
    else
      Drivers.run_logical ~isa:setting.isa compiler case.Workloads.n
        case.Workloads.gadget_blocks
  in
  List.map
    (fun setting ->
      let phoenix = List.map (outcome setting Drivers.Phoenix_c) cases in
      let cells =
        List.map
          (fun baseline ->
            let base = List.map (outcome setting baseline) cases in
            let rate pick =
              Metrics.geomean
                (List.map2
                   (fun p b -> Metrics.ratio (pick p) (pick b))
                   phoenix base)
            in
            ( baseline,
              {
                two_q_rate = rate (fun o -> o.Drivers.counts.Metrics.two_q);
                depth_rate = rate (fun o -> o.Drivers.counts.Metrics.depth_2q);
              } ))
          baselines
      in
      setting, cells)
    settings

let paper =
  [
    ( "CNOT ISA (all-to-all)",
      [
        "TKET-like", (0.6387, 0.64);
        "Paulihedral-like", (0.8212, 0.7333);
        "Tetris-like", (0.5752, 0.5304);
      ] );
    ( "SU(4) ISA (all-to-all)",
      [
        "TKET-like", (0.5604, 0.5422);
        "Paulihedral-like", (0.7557, 0.652);
        "Tetris-like", (0.5654, 0.5055);
      ] );
    ( "CNOT ISA (heavy-hex)",
      [
        "TKET-like", (0.4063, 0.4832);
        "Paulihedral-like", (0.6238, 0.547);
        "Tetris-like", (0.7597, 0.7118);
      ] );
    ( "SU(4) ISA (heavy-hex)",
      [
        "TKET-like", (0.4429, 0.5071);
        "Paulihedral-like", (0.3984, 0.3507);
        "Tetris-like", (0.6223, 0.5874);
      ] );
  ]

let print fmt result =
  Format.fprintf fmt
    "@[<v>== Table III: PHOENIX relative rates across ISAs/topologies (measured | paper) ==@,";
  List.iter
    (fun (setting, cells) ->
      Format.fprintf fmt "-- %s --@," (setting_name setting);
      let paper_cells =
        Option.value ~default:[] (List.assoc_opt (setting_name setting) paper)
      in
      List.iter
        (fun (baseline, cell) ->
          let name = Drivers.compiler_name baseline in
          let p2, pd =
            match List.assoc_opt name paper_cells with
            | Some (a, b) -> Metrics.pct a, Metrics.pct b
            | None -> "-", "-"
          in
          Format.fprintf fmt
            "  PHOENIX vs %-18s 2Q %s | %s    Depth-2Q %s | %s@," name
            (Metrics.pct cell.two_q_rate)
            p2
            (Metrics.pct cell.depth_rate)
            pd)
        cells)
    result;
  Format.fprintf fmt "@]@."
