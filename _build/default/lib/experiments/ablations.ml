module Circuit = Phoenix_circuit.Circuit
module Peephole = Phoenix_circuit.Peephole
module Rebase = Phoenix_circuit.Rebase
module Group = Phoenix.Group
module Synthesis = Phoenix.Synthesis
module Order = Phoenix.Order
module Compiler = Phoenix.Compiler
module Sabre = Phoenix_router.Sabre

type variant =
  | Full
  | No_ordering
  | No_lookahead
  | No_compression
  | No_peephole
  | Exact

let variant_name = function
  | Full -> "full pipeline"
  | No_ordering -> "no IR-group ordering"
  | No_lookahead -> "ordering lookahead = 1"
  | No_compression -> "no core compression"
  | No_peephole -> "no peephole (O3)"
  | Exact -> "exact mode"

let all_variants =
  [ Full; No_ordering; No_lookahead; No_compression; No_peephole; Exact ]

(* Hand-assembled logical pipeline with per-variant knobs. *)
let compile_variant variant n blocks =
  let exact = variant = Exact in
  let compress = variant <> No_compression in
  let groups = Group.of_blocks n blocks in
  let blocks' =
    List.map
      (fun g -> { Order.group = g; circuit = Synthesis.group_circuit ~exact ~compress g })
      groups
  in
  let ordered =
    match variant with
    | No_ordering | Exact -> blocks'
    | No_lookahead -> Order.order ~lookahead:1 blocks'
    | Full | No_compression | No_peephole -> Order.order blocks'
  in
  let abstract =
    Circuit.concat_list n (List.map (fun b -> b.Order.circuit) ordered)
  in
  let maybe_peephole c = if variant = No_peephole then c else Peephole.optimize c in
  maybe_peephole (Rebase.to_cnot_basis (maybe_peephole abstract))

let run_uccsd ?labels () =
  let cases = Workloads.uccsd_suite ?labels () in
  List.map
    (fun variant ->
      let cnots, depths =
        List.fold_left
          (fun (cs, ds) (case : Workloads.uccsd_case) ->
            let original =
              Phoenix_baselines.Naive.compile case.Workloads.n
                (Workloads.gadgets case)
            in
            let c =
              compile_variant variant case.Workloads.n case.Workloads.gadget_blocks
            in
            ( Metrics.ratio (Circuit.count_2q c) (Circuit.count_2q original) :: cs,
              Metrics.ratio (Circuit.depth_2q c) (Circuit.depth_2q original) :: ds
            ))
          ([], []) cases
      in
      variant, (Metrics.geomean cnots, Metrics.geomean depths))
    all_variants

let run_qaoa_router () =
  let topo = Workloads.heavy_hex () in
  List.map
    (fun (case : Workloads.qaoa_case) ->
      let options =
        { Compiler.default_options with target = Compiler.Hardware topo }
      in
      let with_commuting =
        Compiler.compile_gadgets ~options case.Workloads.qn case.Workloads.qgadgets
      in
      (* plain SABRE: bypass the commuting-aware path by compiling the
         logical circuit first, then routing it order-respectingly *)
      let logical =
        Compiler.compile_gadgets case.Workloads.qn case.Workloads.qgadgets
      in
      let routed = Sabre.route_with_refinement topo logical.Compiler.circuit in
      let lowered =
        Peephole.optimize (Rebase.to_cnot_basis routed.Sabre.circuit)
      in
      ( case.Workloads.qlabel,
        (with_commuting.Compiler.num_swaps, with_commuting.Compiler.depth_2q),
        (routed.Sabre.num_swaps, Circuit.depth_2q lowered) ))
    (Workloads.qaoa_suite ())

let print fmt uccsd qaoa =
  Format.fprintf fmt "@[<v>== Ablations: UCCSD suite, logical CNOT ISA ==@,";
  Format.fprintf fmt "%-26s %-12s %-12s@," "variant" "#CNOT rate" "Depth rate";
  List.iter
    (fun (v, (c, d)) ->
      Format.fprintf fmt "%-26s %-12s %-12s@," (variant_name v)
        (Metrics.pct c) (Metrics.pct d))
    uccsd;
  Format.fprintf fmt
    "@,== Ablation: commuting-aware router vs plain SABRE (QAOA, heavy-hex) ==@,";
  Format.fprintf fmt "%-10s %-22s %-22s@," "Bench."
    "commuting (SWAP/depth)" "plain SABRE (SWAP/depth)";
  List.iter
    (fun (label, (s1, d1), (s2, d2)) ->
      Format.fprintf fmt "%-10s %6d/%-12d %6d/%-12d@," label s1 d1 s2 d2)
    qaoa;
  Format.fprintf fmt "@]@."
