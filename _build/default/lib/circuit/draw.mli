(** ASCII circuit diagrams.

    One row per qubit, one column per ASAP layer; two-qubit gates draw a
    vertical connector across the rows between their endpoints.  Meant
    for terminals and documentation, e.g.:

    {v
    q0: ─H──●────────
            │
    q1: ────X──●─────
               │
    q2: ───────X──Rz─
    v} *)

val to_string : Circuit.t -> string

val pp : Format.formatter -> Circuit.t -> unit
