let endian_of_layers n layers =
  let total = List.length layers in
  let e = Array.make n total in
  List.iteri
    (fun li layer ->
      let mark q = if e.(q) = total then e.(q) <- li in
      List.iter (fun g -> List.iter mark (Gate.qubits g)) layer)
    layers;
  e

let left c = endian_of_layers (Circuit.num_qubits c) (Circuit.layers_2q c)

let right c =
  endian_of_layers (Circuit.num_qubits c) (List.rev (Circuit.layers_2q c))

let num_layers c = List.length (Circuit.layers_2q c)

(* Scenario I of Fig. 3(b): every qubit immediately available on the
   succeeding side (e_l' = 0) is blocked on the preceding side (e_r > 0)
   and vice versa, so the interface layers cannot interleave.  Otherwise
   at least one layer is shared (Scenario II) and the elementwise sum is
   discounted by one per qubit, NumPy-style: SUM(e_r + e_l' - 1). *)
let depth_cost ~e_r ~e_l' =
  if Array.length e_r <> Array.length e_l' then
    invalid_arg "Endian.depth_cost: size mismatch";
  let n = Array.length e_r in
  let blocked = ref true in
  let sum = ref 0 in
  for i = 0 to n - 1 do
    if e_l'.(i) = 0 && e_r.(i) = 0 then blocked := false;
    sum := !sum + e_r.(i) + e_l'.(i)
  done;
  if !blocked then !sum else !sum - n
