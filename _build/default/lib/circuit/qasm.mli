(** OpenQASM 2.0 export and (a pragmatic subset of) import.

    Export lowers the circuit to the CNOT basis first, so any abstract
    gate round-trips through {H, S, S†, T, T†, X, Y, Z, Rx, Ry, Rz, CX}.
    Import accepts that same gate alphabet plus [swap], [barrier]
    (ignored) and comments — enough to exchange circuits with Qiskit and
    friends. *)

val to_string : Circuit.t -> string
(** OpenQASM 2.0 program text, one gate per line. *)

val of_string : string -> Circuit.t
(** Parse an OpenQASM 2.0 program using a single quantum register.
    Raises [Invalid_argument] with a line-numbered message on anything
    outside the supported subset. *)
