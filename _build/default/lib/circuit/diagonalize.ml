module Bsf = Phoenix_pauli.Bsf
module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
(* Gate is a sibling module in this library *)

type result = {
  clifford : Gate.t list;
  diagonal : (Pauli_string.t * float) list;
}

(* Invariants making the reduction sound (proofs by the commutation of
   the set, which Clifford conjugation preserves):
   - once a row is a single-qubit Z, no later operation touches it;
   - when H lands on the pivot, the current row is a single-qubit X, so
     every other row has I or X there (z-bit clear) and survives. *)
let run n gadgets =
  List.iteri
    (fun i (p, _) ->
      List.iteri
        (fun j (q, _) ->
          if j > i && not (Pauli_string.commutes p q) then
            invalid_arg "Diagonalize.run: inputs do not commute")
        gadgets)
    gadgets;
  let bsf = Bsf.of_terms n gadgets in
  let ops = ref [] in
  let apply g =
    ops := g :: !ops;
    match g with
    | Gate.G1 (Gate.Sdg, q) -> Bsf.apply_sdg bsf q
    | Gate.G1 (Gate.H, q) -> Bsf.apply_h bsf q
    | Gate.Cnot (a, b) -> Bsf.apply_cnot bsf a b
    | _ -> assert false
  in
  let x_support i =
    let p = Bsf.row_pauli bsf i in
    List.filter
      (fun q ->
        match Pauli_string.get p q with
        | Pauli.X | Pauli.Y -> true
        | Pauli.I | Pauli.Z -> false)
      (Pauli_string.support_list p)
  in
  let z_support i =
    let p = Bsf.row_pauli bsf i in
    List.filter
      (fun q ->
        match Pauli_string.get p q with
        | Pauli.Z | Pauli.Y -> true
        | Pauli.I | Pauli.X -> false)
      (Pauli_string.support_list p)
  in
  let n_rows = Bsf.num_rows bsf in
  for i = 0 to n_rows - 1 do
    match x_support i with
    | [] -> () (* already diagonal; stays diagonal *)
    | pivot :: _ as xs ->
      (* Make every X-carrying qubit a pure X. *)
      List.iter
        (fun r -> if List.mem r (z_support i) then apply (Gate.G1 (Gate.Sdg, r)))
        xs;
      (* Fold all X's onto the pivot. *)
      List.iter (fun r -> if r <> pivot then apply (Gate.Cnot (pivot, r))) xs;
      (* Clear residual Z's: give the pivot a Z (making it Y), then use
         CNOTs into the pivot. *)
      let zs = List.filter (fun r -> r <> pivot) (z_support i) in
      if zs <> [] then begin
        if not (List.mem pivot (z_support i)) then
          apply (Gate.G1 (Gate.Sdg, pivot));
        List.iter (fun r -> apply (Gate.Cnot (r, pivot))) zs
      end;
      (* Pivot back to pure X, then rotate into Z. *)
      if List.mem pivot (z_support i) then apply (Gate.G1 (Gate.Sdg, pivot));
      apply (Gate.G1 (Gate.H, pivot))
  done;
  { clifford = List.rev !ops; diagonal = Bsf.to_terms bsf }

let partition_commuting gadgets =
  let sets : (Pauli_string.t * float) list ref list ref = ref [] in
  List.iter
    (fun ((p, _) as gadget) ->
      let fits cell =
        List.for_all (fun (q, _) -> Pauli_string.commutes p q) !cell
      in
      match List.find_opt fits !sets with
      | Some cell -> cell := gadget :: !cell
      | None -> sets := !sets @ [ ref [ gadget ] ])
    gadgets;
  List.map (fun cell -> List.rev !cell) !sets
