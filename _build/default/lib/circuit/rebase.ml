module Pauli = Phoenix_pauli.Pauli
module Clifford2q = Phoenix_pauli.Clifford2q

(* Per-qubit basis change u with u·σ·u† = Z, as (pre, post) time-ordered
   circuits: gadget(σ, θ) = [pre; gadget(Z, θ); post]. *)
let to_z_basis sigma q =
  match sigma with
  | Pauli.Z -> [], []
  | Pauli.X -> [ Gate.G1 (Gate.H, q) ], [ Gate.G1 (Gate.H, q) ]
  | Pauli.Y ->
    ( [ Gate.G1 (Gate.Sdg, q); Gate.G1 (Gate.H, q) ],
      [ Gate.G1 (Gate.H, q); Gate.G1 (Gate.S, q) ] )
  | Pauli.I -> invalid_arg "Rebase.to_z_basis: identity"

let rec lower_gate g =
  match g with
  | Gate.G1 _ | Gate.Cnot _ -> [ g ]
  | Gate.Cliff2 c -> List.map Gate.of_clifford_basis (Clifford2q.decompose c)
  | Gate.Rpp { p0; p1; a; b; theta } ->
    let pre_a, post_a = to_z_basis p0 a in
    let pre_b, post_b = to_z_basis p1 b in
    pre_a @ pre_b
    @ [ Gate.Cnot (a, b); Gate.G1 (Gate.Rz theta, b); Gate.Cnot (a, b) ]
    @ post_b @ post_a
  | Gate.Swap (a, b) -> [ Gate.Cnot (a, b); Gate.Cnot (b, a); Gate.Cnot (a, b) ]
  | Gate.Su4 { parts; _ } -> List.concat_map lower_gate parts

let to_cnot_basis c =
  Circuit.create (Circuit.num_qubits c)
    (List.concat_map lower_gate (Circuit.gates c))

type block = { ba : int; bb : int; mutable parts_rev : Gate.t list }

(* Greedy fusion: a block stays open on its two qubits until another 2Q
   gate claims one of them; 1Q gates are buffered per qubit and absorbed
   by the next block on that qubit.  Deferred 1Q gates and absorbed gates
   only ever commute past gates on disjoint qubits, so order is
   preserved semantically. *)
let to_su4 c =
  let n = Circuit.num_qubits c in
  let items = ref [] in
  let open_block : block option array = Array.make n None in
  let pending : (int * Gate.t) list ref array = Array.init n (fun _ -> ref []) in
  let seq = ref 0 in
  let take_pending a b =
    let ps = List.rev_append !(pending.(a)) (List.rev !(pending.(b))) in
    pending.(a) := [];
    pending.(b) := [];
    List.map snd (List.sort (fun (i, _) (j, _) -> compare i j) ps)
  in
  let push_2q g a b =
    let same_block =
      match open_block.(a), open_block.(b) with
      | Some x, Some y when x == y -> Some x
      | _, _ -> None
    in
    let absorbed = take_pending a b in
    let as_parts g =
      match g with Gate.Su4 { parts; _ } -> parts | _ -> [ g ]
    in
    match same_block with
    | Some blk ->
      blk.parts_rev <- List.rev_append (absorbed @ as_parts g) blk.parts_rev
    | None ->
      let blk = { ba = min a b; bb = max a b; parts_rev = List.rev (absorbed @ as_parts g) } in
      items := blk :: !items;
      open_block.(a) <- Some blk;
      open_block.(b) <- Some blk
  in
  let handle g =
    incr seq;
    match Gate.qubits g with
    | [ q ] -> pending.(q) := (!seq, g) :: !(pending.(q))
    | [ a; b ] -> push_2q g a b
    | _ -> assert false
  in
  List.iter handle (Circuit.gates c);
  let tail =
    Array.to_list pending
    |> List.concat_map (fun cell -> List.rev !cell)
    |> List.sort (fun (i, _) (j, _) -> compare i j)
    |> List.map snd
  in
  let finalize blk =
    Gate.Su4 { a = blk.ba; b = blk.bb; parts = List.rev blk.parts_rev }
  in
  Circuit.create n (List.rev_map finalize !items |> fun gs -> gs @ tail)

let count_su4 c = Circuit.count_2q (to_su4 c)
