type model = { e1 : float; e2 : float; t_gate_over_t2 : float }

let ibm_like = { e1 = 3e-4; e2 = 8e-3; t_gate_over_t2 = 1.0 /. 3000.0 }
let ion_trap_like = { e1 = 1e-5; e2 = 2e-3; t_gate_over_t2 = 1.0 /. 20000.0 }

let success_probability ?(model = ibm_like) circuit =
  let n1 = Circuit.count_1q circuit in
  let n2 = Circuit.count_cnot circuit in
  let depth2 = Circuit.depth_2q circuit in
  let active = List.length (Circuit.used_qubits circuit) in
  ((1.0 -. model.e1) ** float_of_int n1)
  *. ((1.0 -. model.e2) ** float_of_int n2)
  *. exp
       (-.model.t_gate_over_t2
       *. float_of_int depth2
       *. float_of_int active)

let log_infidelity ?model circuit = -.log (success_probability ?model circuit)
