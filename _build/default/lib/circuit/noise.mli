(** First-order noise accounting.

    The NISQ premise behind the paper's metrics: every gate succeeds
    independently with probability [1 − ε], so a circuit's success
    probability is the product over its gates — which is exactly why
    2Q-gate count is the headline metric (2Q errors dominate by an order
    of magnitude) and why decoherence makes 2Q depth the second one.
    This model turns compiled-circuit metrics into estimated fidelities
    for compiler comparisons. *)

type model = {
  e1 : float;  (** 1Q gate error rate *)
  e2 : float;  (** 2Q (CNOT-equivalent) gate error rate *)
  t_gate_over_t2 : float;
      (** 2Q gate duration as a fraction of the coherence time; idle
          decoherence is charged per 2Q layer per active qubit *)
}

val ibm_like : model
(** [e1 = 3e-4], [e2 = 8e-3], gate/T2 ≈ 1/3000 — a contemporary
    superconducting-device ballpark. *)

val ion_trap_like : model
(** [e1 = 1e-5], [e2 = 2e-3], slower gates relative to coherence. *)

val success_probability : ?model:model -> Circuit.t -> float
(** [Π (1−e1)^{#1Q} · (1−e2)^{#CNOT-equivalent} · exp(−depth2Q·active·t/T2)].
    [Su4] blocks are charged by their CNOT-equivalent content. *)

val log_infidelity : ?model:model -> Circuit.t -> float
(** [−log(success_probability)] — additive, so compiler deltas read off
    directly. *)
