let one_q_label = function
  | Gate.H -> "H"
  | Gate.S -> "S"
  | Gate.Sdg -> "S†"
  | Gate.X -> "X"
  | Gate.Y -> "Y"
  | Gate.Z -> "Z"
  | Gate.T -> "T"
  | Gate.Tdg -> "T†"
  | Gate.Rx t -> Printf.sprintf "Rx(%.2g)" t
  | Gate.Ry t -> Printf.sprintf "Ry(%.2g)" t
  | Gate.Rz t -> Printf.sprintf "Rz(%.2g)" t

(* labels for the two endpoints of a 2Q gate *)
let two_q_labels = function
  | Gate.Cnot _ -> "●", "⊕"
  | Gate.Swap _ -> "✕", "✕"
  | Gate.Cliff2 { Phoenix_pauli.Clifford2q.kind; _ } ->
    let s0, s1 = Phoenix_pauli.Clifford2q.kind_sigmas kind in
    ( Printf.sprintf "C%c" (Phoenix_pauli.Pauli.to_char s0),
      Printf.sprintf "%c" (Phoenix_pauli.Pauli.to_char s1) )
  | Gate.Rpp { p0; p1; theta; _ } ->
    ( Printf.sprintf "%c(%.2g)" (Phoenix_pauli.Pauli.to_char p0) theta,
      Printf.sprintf "%c" (Phoenix_pauli.Pauli.to_char p1) )
  | Gate.Su4 _ -> "SU4", "SU4"
  | Gate.G1 _ -> assert false

(* display width in characters: count unicode scalar values, treating the
   multi-byte glyphs used above as width 1 *)
let display_width s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else begin
      let c = Char.code s.[i] in
      let step =
        if c < 0x80 then 1
        else if c < 0xE0 then 2
        else if c < 0xF0 then 3
        else 4
      in
      go (i + step) (acc + 1)
    end
  in
  go 0 0

(* ASAP layering over all gates *)
let layers circuit =
  let n = Circuit.num_qubits circuit in
  let busy = Array.make n 0 in
  let table : (int, Gate.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let max_layer = ref 0 in
  List.iter
    (fun g ->
      let qs = Gate.qubits g in
      let layer = 1 + List.fold_left (fun acc q -> max acc busy.(q)) 0 qs in
      List.iter (fun q -> busy.(q) <- layer) qs;
      if layer > !max_layer then max_layer := layer;
      match Hashtbl.find_opt table layer with
      | Some cell -> cell := g :: !cell
      | None -> Hashtbl.add table layer (ref [ g ]))
    (Circuit.gates circuit);
  List.init !max_layer (fun i ->
      match Hashtbl.find_opt table (i + 1) with
      | Some cell -> List.rev !cell
      | None -> [])

let to_string circuit =
  let n = Circuit.num_qubits circuit in
  let cols = layers circuit in
  (* per column: cell text per qubit row, plus connector flags per gap *)
  let render_column gates =
    let cells = Array.make n "" in
    let connect = Array.make (max 0 (n - 1)) false in
    List.iter
      (fun g ->
        match g, Gate.qubits g with
        | Gate.G1 (k, q), _ -> cells.(q) <- one_q_label k
        | _, [ a; b ] ->
          let la, lb = two_q_labels g in
          cells.(a) <- la;
          cells.(b) <- lb;
          for gap = min a b to max a b - 1 do
            connect.(gap) <- true
          done
        | _, _ -> assert false)
      gates;
    cells, connect
  in
  let rendered = List.map render_column cols in
  let widths =
    List.map
      (fun (cells, _) ->
        Array.fold_left (fun acc s -> max acc (display_width s)) 1 cells + 2)
      rendered
  in
  let buf = Buffer.create 1024 in
  let prefix q = Printf.sprintf "q%-2d: " q in
  for q = 0 to n - 1 do
    Buffer.add_string buf (prefix q);
    List.iter2
      (fun (cells, _) width ->
        let s = cells.(q) in
        let w = display_width s in
        let left = (width - w) / 2 in
        let right = width - w - left in
        Buffer.add_string buf (String.concat "" (List.init left (fun _ -> "─")));
        Buffer.add_string buf (if s = "" then String.concat "" (List.init w (fun _ -> "─")) else s);
        Buffer.add_string buf (String.concat "" (List.init right (fun _ -> "─"))))
      rendered widths;
    Buffer.add_char buf '\n';
    if q < n - 1 then begin
      Buffer.add_string buf (String.make (String.length (prefix q)) ' ');
      List.iter2
        (fun (_, connect) width ->
          let left = (width - 1) / 2 in
          let right = width - 1 - left in
          Buffer.add_string buf (String.make left ' ');
          Buffer.add_string buf (if connect.(q) then "│" else " ");
          Buffer.add_string buf (String.make right ' '))
        rendered widths;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf

let pp fmt circuit = Format.pp_print_string fmt (to_string circuit)
