(** Endian vectors of subcircuits (§IV-C.1 of the paper, Fig. 3).

    For a subcircuit layered into 2Q layers, the left endian vector entry
    [e_l.(i)] is the number of layers one must traverse from the left
    before qubit [i] is acted upon; [e_r] is the mirror from the right.  A
    qubit the subcircuit never touches traverses every layer. *)

val left : Circuit.t -> int array
val right : Circuit.t -> int array

val num_layers : Circuit.t -> int
(** Number of 2Q layers. *)

val depth_cost : e_r:int array -> e_l':int array -> int
(** The assembling depth overhead [cost_depth] between a preceding
    subcircuit with right endian [e_r] and a succeeding one with left
    endian [e_l']: [SUM (e_r + e_l')] when the interface is fully blocked
    (every qubit free on one side is busy on the other), otherwise the
    elementwise-discounted [SUM (e_r + e_l' - 1)]. *)
