(** Phase folding (Amy-style parity analysis).

    In a {CNOT, X, SWAP, diagonal-1Q} region, every wire carries a parity
    (an XOR of input wires), and every diagonal rotation contributes a
    phase depending only on that parity — so rotations applied to equal
    parities merge even when far apart and on different qubits:

    {v  Rz(a) q1;  CNOT q0 q1;  Rz(b) q1;  CNOT q0 q1;  Rz(c) q1  v}

    folds [a] and [c] into one rotation.  Non-linear gates (H, Y-type
    rotations, non-CNOT 2Q gates) act as barriers: their qubits get fresh
    parity variables.  Diagonal Cliffords (Z, S, S†, T, T†) participate
    as Rz angles — exact up to global phase, which no metric here
    observes.

    The pass preserves the circuit unitary (up to global phase) and never
    increases any gate count. *)

val fold : Circuit.t -> Circuit.t
