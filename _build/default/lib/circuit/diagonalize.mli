(** Simultaneous diagonalization of pairwise-commuting Pauli sets.

    A commuting set is conjugated by a Clifford circuit into Z-only
    strings, which synthesize as plain phase ladders.  The procedure
    reduces one row at a time to a single-qubit [Z]; commutation
    guarantees every other row is transparent at the pivot when the
    [H] lands, so finished rows are never disturbed (see the inline
    invariants).  This is the algorithmic core of TKET-style Pauli
    gadget ("PauliSimp") synthesis. *)

module Pauli_string := Phoenix_pauli.Pauli_string

type result = {
  clifford : Gate.t list;
      (** time-ordered conjugation circuit [C] *)
  diagonal : (Pauli_string.t * float) list;
      (** Z-only rotations [D] with signs folded into angles *)
}
(** Semantics: the input gadget product equals [C† · D · C] — as a
    circuit, [C] then [D]'s gadgets then [C] reversed-daggered. *)

val run :
  int -> (Pauli_string.t * float) list -> result
(** Diagonalize a commuting gadget list over [n] qubits.
    Raises [Invalid_argument] if two inputs anticommute. *)

val partition_commuting :
  (Pauli_string.t * float) list ->
  (Pauli_string.t * float) list list
(** Greedy first-fit partition of a gadget program into
    pairwise-commuting sets, preserving first-occurrence order of sets. *)
