(** ISA rebasing passes.

    [to_cnot_basis] lowers every abstract gate to the conventional
    {H, S, S†, 1Q rotations, CNOT} alphabet.  [to_su4] fuses maximal runs
    of two-qubit operations on the same qubit pair — together with the 1Q
    gates trapped between them — into single [Su4] blocks, modelling the
    continuous SU(4) ISA of Chen et al. (each block is one native 2Q
    instruction). *)

val to_cnot_basis : Circuit.t -> Circuit.t
(** Expand [Cliff2] (1 CNOT + local Cliffords), [Rpp] (2 CNOTs + basis
    conjugation + Rz), [Swap] (3 CNOTs) and [Su4] (its parts, recursively).
    The result contains only [G1] and [Cnot] gates. *)

val to_su4 : Circuit.t -> Circuit.t
(** Fuse into [Su4] blocks.  Every 2Q gate of the result is an [Su4];
    1Q gates that could not be absorbed remain standalone (they are free
    under the paper's metrics). *)

val count_su4 : Circuit.t -> int
(** [#SU(4)] = 2Q gate count after fusion. *)
