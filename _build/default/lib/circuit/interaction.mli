(** Qubit interaction graphs and the routing-similarity factor of Eq. 7.

    The interaction graph of a gate list has an edge between two qubits
    whenever some 2Q gate acts on both.  The similarity [s] between the
    tail of a preceding subcircuit and the head of a succeeding one is the
    sum of row-wise cosine similarities of their graph distance matrices;
    similar interaction behaviour means less mapping-transition overhead. *)

val adjacency : int -> Gate.t list -> bool array array
(** [adjacency n gates] is the symmetric interaction adjacency matrix. *)

val distance_matrix : bool array array -> int array array
(** All-pairs shortest-path lengths by BFS.  Unreachable pairs are assigned
    the matrix dimension (a finite sentinel larger than any real
    distance). *)

val head_part : Circuit.t -> Gate.t list
(** Minimal prefix of 2Q gates (from the left) that touches every qubit
    used by the circuit's 2Q gates. *)

val tail_part : Circuit.t -> Gate.t list
(** Mirror of [head_part] from the right. *)

val similarity : pre:Circuit.t -> suc:Circuit.t -> float
(** Eq. 7: [s = Σ_i ⟨D_i, D'_i⟩ / (‖D_i‖·‖D'_i‖)] where [D] ([D']) is the
    distance matrix of the tail (head) interaction graph of [pre] ([suc]).
    Rows with zero norm are skipped; the result is clamped below by a small
    positive value so that [cost/s] stays finite. *)
