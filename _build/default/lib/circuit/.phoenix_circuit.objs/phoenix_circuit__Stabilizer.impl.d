lib/circuit/stabilizer.ml: Array Circuit Float Gate List Phoenix_pauli Phoenix_util Printf
