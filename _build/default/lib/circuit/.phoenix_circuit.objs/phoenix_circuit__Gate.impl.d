lib/circuit/gate.ml: Float Format List Phoenix_pauli Printf
