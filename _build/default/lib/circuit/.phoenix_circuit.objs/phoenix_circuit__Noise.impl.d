lib/circuit/noise.ml: Circuit List
