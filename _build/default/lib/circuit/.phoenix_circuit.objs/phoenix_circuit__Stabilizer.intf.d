lib/circuit/stabilizer.mli: Circuit Gate Phoenix_pauli
