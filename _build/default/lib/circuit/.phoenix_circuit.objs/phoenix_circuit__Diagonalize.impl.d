lib/circuit/diagonalize.ml: Gate List Phoenix_pauli
