lib/circuit/noise.mli: Circuit
