lib/circuit/gate.mli: Format Phoenix_pauli
