lib/circuit/rebase.ml: Array Circuit Gate List Phoenix_pauli
