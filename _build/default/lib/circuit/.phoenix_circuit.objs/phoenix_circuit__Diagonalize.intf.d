lib/circuit/diagonalize.mli: Gate Phoenix_pauli
