lib/circuit/circuit.ml: Array Format Gate Hashtbl List Option Phoenix_pauli Printf
