lib/circuit/phase_folding.ml: Array Circuit Float Gate Hashtbl List Peephole Printf String
