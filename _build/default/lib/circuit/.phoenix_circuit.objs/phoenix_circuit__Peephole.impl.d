lib/circuit/peephole.ml: Array Circuit Float Gate List Phoenix_pauli
