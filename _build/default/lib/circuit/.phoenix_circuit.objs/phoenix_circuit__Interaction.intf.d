lib/circuit/interaction.mli: Circuit Gate
