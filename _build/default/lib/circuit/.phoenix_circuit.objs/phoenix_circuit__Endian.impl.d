lib/circuit/endian.ml: Array Circuit Gate List
