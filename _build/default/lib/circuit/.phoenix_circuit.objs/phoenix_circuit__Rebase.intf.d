lib/circuit/rebase.mli: Circuit
