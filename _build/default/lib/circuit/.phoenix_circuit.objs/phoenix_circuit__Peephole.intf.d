lib/circuit/peephole.mli: Circuit
