lib/circuit/interaction.ml: Array Circuit Float Gate List Queue
