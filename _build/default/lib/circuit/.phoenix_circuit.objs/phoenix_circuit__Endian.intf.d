lib/circuit/endian.mli: Circuit
