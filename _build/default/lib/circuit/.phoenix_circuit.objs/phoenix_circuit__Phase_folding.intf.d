lib/circuit/phase_folding.mli: Circuit
