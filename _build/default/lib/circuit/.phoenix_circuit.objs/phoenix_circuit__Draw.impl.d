lib/circuit/draw.ml: Array Buffer Char Circuit Format Gate Hashtbl List Phoenix_pauli Printf String
