(** Peephole circuit optimizer (the repository's stand-in for Qiskit O3).

    Rewrites applied until fixpoint:
    - inverse-pair cancellation of adjacent self-inverse gates
      (H·H, X·X, CNOT·CNOT, SWAP·SWAP, identical Clifford2Q pairs, S·S†);
    - merging of same-axis 1Q rotations, with diagonal Cliffords
      (S, S†, Z, T, T†) absorbed into Rz and X into Rx — exact up to global
      phase, which none of the reported metrics observe;
    - merging of identical-axis 2Q Pauli rotations ([Rpp]);
    - commutation-aware CNOT cancellation: a CNOT commutes backwards past
      Z-diagonal gates on its control and X-type gates on its target
      (including CNOTs sharing that control/target) to meet and annihilate
      an identical CNOT;
    - removal of rotations with angle ≡ 0 (mod 4π).

    The optimizer never changes the observable semantics of the circuit
    (up to global phase). *)

val optimize : ?max_passes:int -> Circuit.t -> Circuit.t
(** Run rewrite passes until fixpoint or [max_passes] (default 20). *)

val pass : Circuit.t -> Circuit.t
(** A single forward pass. *)

val normalize_angle : float -> float
(** Reduce into [(-2π, 2π]] modulo the 4π period of [exp(-iθ/2 P)]. *)

val is_zero_angle : float -> bool
