(** CHP-style stabilizer simulation (Aaronson–Gottesman).

    Tracks an [n]-qubit stabilizer state as [2n] generators (destabilizers
    and stabilizers) with sign bits.  Clifford circuits simulate in
    [O(n²)] per measurement and [O(n)] per gate — this is how the
    repository checks Clifford-only transformations at device scale
    (64+ qubits), far beyond the dense simulator's reach.

    Supported gates: H, S, S†, X, Y, Z, CNOT, SWAP and the six
    Clifford2Q generators (via their decompositions). *)

type t

val make : ?seed:int -> int -> t
(** The [|0…0⟩] stabilizer state; [seed] drives random measurement
    outcomes. *)

val num_qubits : t -> int
val copy : t -> t

val apply_h : t -> int -> unit
val apply_s : t -> int -> unit
val apply_sdg : t -> int -> unit
val apply_x : t -> int -> unit
val apply_z : t -> int -> unit
val apply_cnot : t -> int -> int -> unit

val apply_gate : t -> Gate.t -> unit
(** Raises [Invalid_argument] on non-Clifford gates (rotations with
    angles that are not multiples of π/2 are rejected; [Rz(±π/2)] etc.
    are accepted as S/S†-class gates). *)

val run_circuit : t -> Circuit.t -> unit

val measure : t -> int -> int
(** Measure qubit [q] in the computational basis, collapsing the state.
    Deterministic outcomes return the forced bit; random ones use the
    state's seeded coin. *)

val expectation_z : t -> int -> int
(** [⟨Z_q⟩ ∈ {−1, 0, +1}] without collapsing: ±1 when the outcome is
    determined, 0 when it is uniformly random. *)

val stabilizers : t -> (bool * Phoenix_pauli.Pauli_string.t) list
(** The [n] stabilizer generators as [(negated, pauli)] pairs. *)

val expectation_pauli : t -> Phoenix_pauli.Pauli_string.t -> int
(** [⟨P⟩ ∈ {−1, 0, +1}] for a Pauli observable on a stabilizer state. *)
