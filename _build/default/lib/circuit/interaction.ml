let adjacency n gates =
  let adj = Array.make_matrix n n false in
  let add g =
    match Gate.pair g with
    | Some (a, b) ->
      adj.(a).(b) <- true;
      adj.(b).(a) <- true
    | None -> ()
  in
  List.iter add gates;
  adj

let distance_matrix adj =
  let n = Array.length adj in
  let dist = Array.make_matrix n n n in
  let queue = Queue.create () in
  for src = 0 to n - 1 do
    dist.(src).(src) <- 0;
    Queue.clear queue;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      for v = 0 to n - 1 do
        if adj.(u).(v) && dist.(src).(v) = n && v <> src then begin
          dist.(src).(v) <- dist.(src).(u) + 1;
          Queue.add v queue
        end
      done
    done
  done;
  dist

let two_qubit_gates c = List.filter Gate.is_two_qubit (Circuit.gates c)

let used_by_2q c =
  let n = Circuit.num_qubits c in
  let used = Array.make n false in
  List.iter
    (fun g -> List.iter (fun q -> used.(q) <- true) (Gate.qubits g))
    (two_qubit_gates c);
  used

(* Accumulate gates until every 2Q-used qubit has appeared. *)
let covering_prefix c gates =
  let needed = used_by_2q c in
  let remaining = ref (Array.fold_left (fun a u -> if u then a + 1 else a) 0 needed) in
  let rec take acc = function
    | [] -> List.rev acc
    | g :: rest ->
      if !remaining = 0 then List.rev acc
      else begin
        List.iter
          (fun q ->
            if needed.(q) then begin
              needed.(q) <- false;
              decr remaining
            end)
          (Gate.qubits g);
        take (g :: acc) rest
      end
  in
  take [] gates

let head_part c = covering_prefix c (two_qubit_gates c)
let tail_part c = covering_prefix c (List.rev (two_qubit_gates c))

let row_dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (float_of_int x *. float_of_int b.(i))) a;
  !acc

let row_norm a = sqrt (row_dot a a)

let min_similarity = 0.05

let similarity ~pre ~suc =
  let n = Circuit.num_qubits pre in
  if Circuit.num_qubits suc <> n then
    invalid_arg "Interaction.similarity: qubit-count mismatch";
  let d = distance_matrix (adjacency n (tail_part pre)) in
  let d' = distance_matrix (adjacency n (head_part suc)) in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    let ni = row_norm d.(i) and ni' = row_norm d'.(i) in
    if ni > 0.0 && ni' > 0.0 then s := !s +. (row_dot d.(i) d'.(i) /. (ni *. ni'))
  done;
  Float.max !s min_similarity
