let gate_line register g =
  let q i = Printf.sprintf "%s[%d]" register i in
  match g with
  | Gate.G1 (k, i) ->
    let name =
      match k with
      | Gate.H -> "h"
      | Gate.S -> "s"
      | Gate.Sdg -> "sdg"
      | Gate.T -> "t"
      | Gate.Tdg -> "tdg"
      | Gate.X -> "x"
      | Gate.Y -> "y"
      | Gate.Z -> "z"
      | Gate.Rx t -> Printf.sprintf "rx(%.17g)" t
      | Gate.Ry t -> Printf.sprintf "ry(%.17g)" t
      | Gate.Rz t -> Printf.sprintf "rz(%.17g)" t
    in
    Printf.sprintf "%s %s;" name (q i)
  | Gate.Cnot (a, b) -> Printf.sprintf "cx %s,%s;" (q a) (q b)
  | Gate.Swap (a, b) -> Printf.sprintf "swap %s,%s;" (q a) (q b)
  | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Su4 _ ->
    (* unreachable after lowering *)
    assert false

let to_string circuit =
  let lowered = Rebase.to_cnot_basis circuit in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\n";
  Buffer.add_string buf "include \"qelib1.inc\";\n";
  Buffer.add_string buf
    (Printf.sprintf "qreg q[%d];\n" (Circuit.num_qubits lowered));
  List.iter
    (fun g ->
      Buffer.add_string buf (gate_line "q" g);
      Buffer.add_char buf '\n')
    (Circuit.gates lowered);
  Buffer.contents buf

(* --- import --- *)

let fail line_no msg =
  invalid_arg (Printf.sprintf "Qasm.of_string: line %d: %s" line_no msg)

(* "q[3]" -> 3 *)
let parse_operand line_no s =
  let s = String.trim s in
  match String.index_opt s '[' with
  | Some i when String.length s > i + 1 && s.[String.length s - 1] = ']' ->
    (try int_of_string (String.sub s (i + 1) (String.length s - i - 2))
     with Failure _ -> fail line_no ("bad operand " ^ s))
  | _ -> fail line_no ("bad operand " ^ s)

let parse_angle line_no s =
  (* supports plain floats and the common "pi", "pi/2", "-pi/4", "2*pi"
     spellings *)
  let s = String.trim s in
  let pi = 4.0 *. Float.atan 1.0 in
  let parse_atom a =
    let a = String.trim a in
    if a = "pi" then pi
    else if a = "-pi" then -.pi
    else begin
      try float_of_string a with Failure _ -> fail line_no ("bad angle " ^ s)
    end
  in
  match String.index_opt s '/' with
  | Some i ->
    let num = String.sub s 0 i
    and den = String.sub s (i + 1) (String.length s - i - 1) in
    parse_atom num /. parse_atom den
  | None ->
    (match String.index_opt s '*' with
    | Some i ->
      let a = String.sub s 0 i
      and b = String.sub s (i + 1) (String.length s - i - 1) in
      parse_atom a *. parse_atom b
    | None -> parse_atom s)

let strip_comment line =
  let n = String.length line in
  let rec find i =
    if i + 1 >= n then None
    else if line.[i] = '/' && line.[i + 1] = '/' then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub line 0 i | None -> line

let of_string text =
  let lines = String.split_on_char '\n' text in
  let n_qubits = ref 0 in
  let gates = ref [] in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let line = strip_comment raw |> String.trim in
      let line =
        if String.length line > 0 && line.[String.length line - 1] = ';' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if line = "" then ()
      else if String.length line >= 8 && String.sub line 0 8 = "OPENQASM" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "include" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "barrier" then ()
      else if String.length line >= 4 && String.sub line 0 4 = "qreg" then begin
        match String.index_opt line '[' with
        | Some i ->
          let j =
            match String.index_from_opt line i ']' with
            | Some j -> j
            | None -> fail line_no "bad qreg"
          in
          n_qubits := int_of_string (String.sub line (i + 1) (j - i - 1))
        | None -> fail line_no "bad qreg"
      end
      else if String.length line >= 4 && String.sub line 0 4 = "creg" then ()
      else begin
        (* "name(args) ops" or "name ops" *)
        let name, rest =
          match String.index_opt line ' ' with
          | Some i ->
            ( String.sub line 0 i,
              String.sub line (i + 1) (String.length line - i - 1) )
          | None -> fail line_no ("bad statement " ^ line)
        in
        let base, angle =
          match String.index_opt name '(' with
          | Some i ->
            let j =
              match String.index_from_opt name i ')' with
              | Some j -> j
              | None -> fail line_no "unclosed parenthesis"
            in
            ( String.sub name 0 i,
              Some (parse_angle line_no (String.sub name (i + 1) (j - i - 1))) )
          | None -> name, None
        in
        let operands =
          String.split_on_char ',' rest |> List.map (parse_operand line_no)
        in
        let g1 k =
          match operands with
          | [ q ] -> Gate.G1 (k, q)
          | _ -> fail line_no (base ^ " expects one operand")
        in
        let g2 make =
          match operands with
          | [ a; b ] -> make a b
          | _ -> fail line_no (base ^ " expects two operands")
        in
        let gate =
          match base, angle with
          | "h", None -> g1 Gate.H
          | "s", None -> g1 Gate.S
          | "sdg", None -> g1 Gate.Sdg
          | "t", None -> g1 Gate.T
          | "tdg", None -> g1 Gate.Tdg
          | "x", None -> g1 Gate.X
          | "y", None -> g1 Gate.Y
          | "z", None -> g1 Gate.Z
          | "rx", Some t -> g1 (Gate.Rx t)
          | "ry", Some t -> g1 (Gate.Ry t)
          | "rz", Some t -> g1 (Gate.Rz t)
          | "u1", Some t -> g1 (Gate.Rz t)
          | "cx", None -> g2 (fun a b -> Gate.Cnot (a, b))
          | "swap", None -> g2 (fun a b -> Gate.Swap (a, b))
          | _ -> fail line_no ("unsupported gate " ^ base)
        in
        gates := gate :: !gates
      end)
    lines;
  if !n_qubits = 0 then invalid_arg "Qasm.of_string: no qreg declaration";
  Circuit.create !n_qubits (List.rev !gates)
