lib/topology/topology.ml: Array Format Lazy List Phoenix_util Queue
