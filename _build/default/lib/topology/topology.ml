module Union_find = Phoenix_util.Union_find

type t = {
  n : int;
  edges : (int * int) list;
  adj : int list array;
  dist : int array array Lazy.t;
}

let bfs_distances n adj =
  let dist = Array.make_matrix n n n in
  let queue = Queue.create () in
  for src = 0 to n - 1 do
    dist.(src).(src) <- 0;
    Queue.clear queue;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if v <> src && dist.(src).(v) = n then begin
            dist.(src).(v) <- dist.(src).(u) + 1;
            Queue.add v queue
          end)
        adj.(u)
    done
  done;
  dist

let make n raw_edges =
  if n <= 0 then invalid_arg "Topology.make: need at least one qubit";
  let normalize (a, b) =
    if a = b then invalid_arg "Topology.make: self-loop";
    if a < 0 || b < 0 || a >= n || b >= n then
      invalid_arg "Topology.make: qubit out of range";
    min a b, max a b
  in
  let edges = List.sort_uniq compare (List.map normalize raw_edges) in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { n; edges; adj; dist = lazy (bfs_distances n adj) }

let num_qubits t = t.n
let edges t = t.edges
let neighbors t q = t.adj.(q)
let are_adjacent t a b = List.mem b t.adj.(a)
let distance_matrix t = Lazy.force t.dist
let distance t a b = (distance_matrix t).(a).(b)

let is_connected t =
  let uf = Union_find.create t.n in
  List.iter (fun (a, b) -> Union_find.union uf a b) t.edges;
  Union_find.count uf = 1

let all_to_all n =
  make n
    (List.concat_map
       (fun i -> List.init (n - 1 - i) (fun d -> i, i + 1 + d))
       (List.init n (fun i -> i)))

let line n = make n (List.init (n - 1) (fun i -> i, i + 1))

let ring n =
  if n < 3 then line n
  else make n ((n - 1, 0) :: List.init (n - 1) (fun i -> i, i + 1))

let grid ~rows ~cols =
  let id r c = (r * cols) + c in
  let horizontal =
    List.concat_map
      (fun r -> List.init (cols - 1) (fun c -> id r c, id r (c + 1)))
      (List.init rows (fun r -> r))
  in
  let vertical =
    List.concat_map
      (fun r -> List.init cols (fun c -> id r c, id (r + 1) c))
      (List.init (rows - 1) (fun r -> r))
  in
  make (rows * cols) (horizontal @ vertical)

let heavy_hex ~widths =
  if widths = [] then invalid_arg "Topology.heavy_hex: no rows";
  let widths = Array.of_list widths in
  let n_rows = Array.length widths in
  (* Assign ids: row qubits first (row by row), then bridge qubits. *)
  let row_start = Array.make n_rows 0 in
  for r = 1 to n_rows - 1 do
    row_start.(r) <- row_start.(r - 1) + widths.(r - 1)
  done;
  let total_row_qubits = row_start.(n_rows - 1) + widths.(n_rows - 1) in
  let id r c = row_start.(r) + c in
  let horizontal =
    List.concat_map
      (fun r -> List.init (widths.(r) - 1) (fun c -> id r c, id r (c + 1)))
      (List.init n_rows (fun r -> r))
  in
  let next_bridge = ref total_row_qubits in
  let bridge_edges = ref [] in
  for g = 0 to n_rows - 2 do
    let offset = if g mod 2 = 0 then 0 else 2 in
    let max_col = min widths.(g) widths.(g + 1) - 1 in
    let c = ref offset in
    while !c <= max_col do
      let b = !next_bridge in
      incr next_bridge;
      bridge_edges := (id g !c, b) :: (b, id (g + 1) !c) :: !bridge_edges;
      c := !c + 4
    done
  done;
  make !next_bridge (horizontal @ !bridge_edges)

let ibm_manhattan () = heavy_hex ~widths:[ 10; 11; 11; 11; 10 ]

let pp fmt t =
  Format.fprintf fmt "topology(%d qubits, %d edges)" t.n (List.length t.edges)
