(** Hardware coupling graphs.

    A topology is an undirected connectivity graph over physical qubits,
    with all-pairs shortest-path distances computed once and cached. *)

type t

val make : int -> (int * int) list -> t
(** [make n edges].  Self-loops and out-of-range endpoints raise
    [Invalid_argument]. *)

val num_qubits : t -> int
val edges : t -> (int * int) list
(** Normalized (small endpoint first), sorted, unique. *)

val neighbors : t -> int -> int list
val are_adjacent : t -> int -> int -> bool

val distance : t -> int -> int -> int
(** Shortest-path length.  Unreachable pairs return the qubit count, a
    finite sentinel larger than any true distance. *)

val distance_matrix : t -> int array array
(** Shared cached matrix — do not mutate. *)

val is_connected : t -> bool

val all_to_all : int -> t
val line : int -> t
val ring : int -> t
val grid : rows:int -> cols:int -> t

val heavy_hex : widths:int list -> t
(** Heavy-hex lattice: horizontal rows of qubits with the given widths,
    consecutive rows joined by bridge qubits placed every fourth column
    (columns 0, 4, 8, … below even-indexed rows and 2, 6, 10, … below odd
    ones, clipped to both rows).  This is the IBM heavy-hex pattern. *)

val ibm_manhattan : unit -> t
(** The 64-qubit Manhattan-class heavy-hex used in the paper's
    hardware-aware evaluation: rows of 10/11/11/11/10 qubits plus 11
    bridges. *)

val pp : Format.formatter -> t -> unit
