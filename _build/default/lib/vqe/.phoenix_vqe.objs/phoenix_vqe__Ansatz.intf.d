lib/vqe/ansatz.mli: Phoenix Phoenix_circuit Phoenix_ham Phoenix_linalg Phoenix_pauli
