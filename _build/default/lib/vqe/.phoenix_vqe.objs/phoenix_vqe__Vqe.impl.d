lib/vqe/vqe.ml: Ansatz Array Float List Optimize Phoenix_ham Phoenix_linalg Phoenix_pauli
