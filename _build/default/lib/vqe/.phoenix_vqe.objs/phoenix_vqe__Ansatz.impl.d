lib/vqe/ansatz.ml: Array List Phoenix Phoenix_circuit Phoenix_ham Phoenix_linalg Phoenix_pauli
