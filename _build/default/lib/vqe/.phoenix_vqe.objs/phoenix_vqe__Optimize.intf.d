lib/vqe/optimize.mli:
