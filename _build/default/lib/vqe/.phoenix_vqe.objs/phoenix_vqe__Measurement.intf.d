lib/vqe/measurement.mli: Phoenix_circuit Phoenix_ham Phoenix_linalg Phoenix_pauli
