lib/vqe/optimize.ml: Array Float List Phoenix_util
