lib/vqe/measurement.ml: List Phoenix_circuit Phoenix_ham Phoenix_linalg Phoenix_pauli Phoenix_util
