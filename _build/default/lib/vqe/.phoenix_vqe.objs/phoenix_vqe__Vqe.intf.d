lib/vqe/vqe.mli: Ansatz Optimize Phoenix_ham
