module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Pauli_term = Phoenix_pauli.Pauli_term
module Hamiltonian = Phoenix_ham.Hamiltonian
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Statevector = Phoenix_linalg.Statevector
module Prng = Phoenix_util.Prng

type group = { basis : Pauli_string.t; terms : Pauli_term.t list }

let qubit_wise_commuting a b =
  let n = Pauli_string.num_qubits a in
  let rec ok q =
    q >= n
    ||
    let pa = Pauli_string.get a q and pb = Pauli_string.get b q in
    (Pauli.is_identity pa || Pauli.is_identity pb || Pauli.equal pa pb)
    && ok (q + 1)
  in
  ok 0

(* merge a string into a partial basis (precondition: QWC) *)
let merge_basis basis p =
  List.fold_left
    (fun acc q ->
      let letter = Pauli_string.get p q in
      if Pauli.is_identity letter then acc else Pauli_string.set acc q letter)
    basis
    (Pauli_string.support_list p)

let group_terms h =
  let n = Hamiltonian.num_qubits h in
  let groups : (Pauli_string.t * Pauli_term.t list) list ref = ref [] in
  List.iter
    (fun (t : Pauli_term.t) ->
      let p = t.Pauli_term.pauli in
      let rec place = function
        | [] -> [ merge_basis (Pauli_string.identity n) p, [ t ] ]
        | (basis, members) :: rest ->
          if qubit_wise_commuting basis p then
            (merge_basis basis p, t :: members) :: rest
          else (basis, members) :: place rest
      in
      groups := place !groups)
    (Hamiltonian.terms h);
  List.map (fun (basis, members) -> { basis; terms = List.rev members }) !groups

let basis_rotation n group =
  let gates =
    List.concat_map
      (fun q ->
        match Pauli_string.get group.basis q with
        | Pauli.I | Pauli.Z -> []
        | Pauli.X -> [ Gate.G1 (Gate.H, q) ]
        | Pauli.Y -> [ Gate.G1 (Gate.Sdg, q); Gate.G1 (Gate.H, q) ])
      (List.init n (fun i -> i))
  in
  Circuit.create n gates

let parity outcome p n =
  let bits = ref 0 in
  List.iter
    (fun q -> bits := !bits lxor ((outcome lsr (n - 1 - q)) land 1))
    (Pauli_string.support_list p);
  if !bits = 0 then 1.0 else -1.0

let estimate ?(shots_per_group = 1024) ~seed state h =
  let n = Hamiltonian.num_qubits h in
  let rng = Prng.create seed in
  List.fold_left
    (fun acc group ->
      let rotated = Statevector.copy state in
      Statevector.run_circuit rotated (basis_rotation n group);
      let sums = List.map (fun _ -> ref 0.0) group.terms in
      for _ = 1 to shots_per_group do
        let outcome = Statevector.sample rng rotated in
        List.iter2
          (fun (t : Pauli_term.t) sum ->
            sum := !sum +. parity outcome t.Pauli_term.pauli n)
          group.terms sums
      done;
      acc
      +. List.fold_left2
           (fun a (t : Pauli_term.t) sum ->
             a +. (t.Pauli_term.coeff *. !sum /. float_of_int shots_per_group))
           0.0 group.terms sums)
    0.0 (group_terms h)

let num_measurement_settings h = List.length (group_terms h)
