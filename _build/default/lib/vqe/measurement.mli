(** Measurement grouping for sampled expectation values.

    Hamiltonian terms are partitioned into qubit-wise commuting (QWC)
    groups: two strings are QWC when at every qubit their letters agree
    or one is identity, so one basis-rotation layer measures the whole
    group simultaneously.  This is the standard measurement-count
    reduction used when a VQE runs on sampled hardware rather than a
    state vector. *)

type group = {
  basis : Phoenix_pauli.Pauli_string.t;
      (** the group's joint measurement basis: at each qubit, the unique
          non-identity letter used by the group (or I) *)
  terms : Phoenix_pauli.Pauli_term.t list;
}

val qubit_wise_commuting :
  Phoenix_pauli.Pauli_string.t -> Phoenix_pauli.Pauli_string.t -> bool

val group_terms : Phoenix_ham.Hamiltonian.t -> group list
(** Greedy first-fit QWC partition. *)

val basis_rotation : int -> group -> Phoenix_circuit.Circuit.t
(** The 1Q layer rotating the group's basis into Z (X ↦ H, Y ↦ H·S†). *)

val estimate :
  ?shots_per_group:int ->
  seed:int ->
  Phoenix_linalg.Statevector.t ->
  Phoenix_ham.Hamiltonian.t ->
  float
(** Sampled estimate of [⟨ψ|H|ψ⟩]: for each QWC group, apply its basis
    rotation to a copy of the state, draw [shots_per_group] samples
    (default 1024) and average the ±1 parities.  Converges to
    {!Phoenix_linalg.Statevector.expectation} as shots grow. *)

val num_measurement_settings : Phoenix_ham.Hamiltonian.t -> int
(** Number of distinct measurement bases after grouping (vs. one per
    term without it). *)
