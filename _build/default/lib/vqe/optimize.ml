module Prng = Phoenix_util.Prng

type trace = { iterations : int; best_value : float; history : float list }

let spsa ?(seed = 2027) ?(iterations = 100) ?(a = 0.2) ?(c = 0.1) f x0 =
  let rng = Prng.create seed in
  let n = Array.length x0 in
  let x = Array.copy x0 in
  let best = ref (Array.copy x0) and best_val = ref (f x0) in
  let history = ref [ !best_val ] in
  let stability = float_of_int iterations /. 10.0 in
  for k = 0 to iterations - 1 do
    let ak = a /. ((float_of_int k +. 1.0 +. stability) ** 0.602) in
    let ck = c /. ((float_of_int k +. 1.0) ** 0.101) in
    let delta = Array.init n (fun _ -> if Prng.bool rng then 1.0 else -1.0) in
    let shift sign = Array.mapi (fun i xi -> xi +. (sign *. ck *. delta.(i))) x in
    let fp = f (shift 1.0) and fm = f (shift (-1.0)) in
    let gradient_scale = (fp -. fm) /. (2.0 *. ck) in
    Array.iteri
      (fun i xi -> x.(i) <- xi -. (ak *. gradient_scale /. delta.(i)))
      (Array.copy x);
    let v = f x in
    history := v :: !history;
    if v < !best_val then begin
      best_val := v;
      best := Array.copy x
    end
  done;
  ( !best,
    { iterations; best_value = !best_val; history = List.rev !history } )

let nelder_mead ?(iterations = 200) ?(simplex_scale = 0.1) ?(tolerance = 1e-10)
    f x0 =
  let n = Array.length x0 in
  let point i =
    if i = 0 then Array.copy x0
    else begin
      let p = Array.copy x0 in
      p.(i - 1) <- p.(i - 1) +. simplex_scale;
      p
    end
  in
  let simplex = Array.init (n + 1) (fun i -> point i) in
  let values = Array.map f simplex in
  let history = ref [] in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun i j -> compare values.(i) values.(j)) idx;
    idx
  in
  let centroid exclude =
    let c = Array.make n 0.0 in
    Array.iteri
      (fun i p ->
        if i <> exclude then Array.iteri (fun j x -> c.(j) <- c.(j) +. x) p)
      simplex;
    Array.map (fun x -> x /. float_of_int n) c
  in
  let combine alpha c p =
    Array.init n (fun j -> c.(j) +. (alpha *. (c.(j) -. p.(j))))
  in
  let iter_count = ref 0 in
  (try
     for _ = 1 to iterations do
       incr iter_count;
       let idx = order () in
       let best = idx.(0) and worst = idx.(n) and second = idx.(n - 1) in
       history := values.(best) :: !history;
       if Float.abs (values.(worst) -. values.(best)) < tolerance then
         raise Exit;
       let c = centroid worst in
       let reflected = combine 1.0 c simplex.(worst) in
       let fr = f reflected in
       if fr < values.(best) then begin
         let expanded = combine 2.0 c simplex.(worst) in
         let fe = f expanded in
         if fe < fr then begin
           simplex.(worst) <- expanded;
           values.(worst) <- fe
         end
         else begin
           simplex.(worst) <- reflected;
           values.(worst) <- fr
         end
       end
       else if fr < values.(second) then begin
         simplex.(worst) <- reflected;
         values.(worst) <- fr
       end
       else begin
         let contracted = combine (-0.5) c simplex.(worst) in
         let fc = f contracted in
         if fc < values.(worst) then begin
           simplex.(worst) <- contracted;
           values.(worst) <- fc
         end
         else begin
           (* shrink toward the best vertex *)
           let b = simplex.(best) in
           Array.iteri
             (fun i p ->
               if i <> best then begin
                 let shrunk =
                   Array.init n (fun j -> b.(j) +. (0.5 *. (p.(j) -. b.(j))))
                 in
                 simplex.(i) <- shrunk;
                 values.(i) <- f shrunk
               end)
             (Array.copy simplex)
         end
       end
     done
   with Exit -> ());
  let idx = order () in
  let best = idx.(0) in
  ( Array.copy simplex.(best),
    {
      iterations = !iter_count;
      best_value = values.(best);
      history = List.rev !history;
    } )
