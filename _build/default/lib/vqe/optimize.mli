(** Gradient-free optimizers for variational loops.

    SPSA (simultaneous perturbation stochastic approximation) is the
    standard noisy-hardware choice; Nelder–Mead is provided for small
    smooth problems. *)

type trace = { iterations : int; best_value : float; history : float list }
(** [history] holds the objective value per iteration, oldest first. *)

val spsa :
  ?seed:int ->
  ?iterations:int ->
  ?a:float ->
  ?c:float ->
  (float array -> float) ->
  float array ->
  float array * trace
(** [spsa f x0] minimizes [f] from [x0] with standard gain schedules
    [a_k = a/(k+1+A)^0.602], [c_k = c/(k+1)^0.101]; defaults:
    100 iterations, [a = 0.2], [c = 0.1]. *)

val nelder_mead :
  ?iterations:int ->
  ?simplex_scale:float ->
  ?tolerance:float ->
  (float array -> float) ->
  float array ->
  float array * trace
(** Standard reflection/expansion/contraction/shrink Nelder–Mead with a
    regular initial simplex of edge [simplex_scale] (default 0.1);
    terminates when the simplex's objective spread falls below
    [tolerance] (default 1e-10). *)
