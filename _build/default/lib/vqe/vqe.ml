module Hamiltonian = Phoenix_ham.Hamiltonian
module Statevector = Phoenix_linalg.Statevector

type problem = {
  hamiltonian : Hamiltonian.t;
  ansatz : Ansatz.t;
  reference : int list;
}

let uccsd_problem ?(seed = 11) enc spec =
  let cluster = Phoenix_ham.Uccsd.ansatz ~seed enc spec in
  let hamiltonian =
    Phoenix_ham.Electronic_structure.synthetic ~seed enc
      ~n_spatial:(Hamiltonian.num_qubits cluster / 2)
  in
  let n_occ = Phoenix_ham.Uccsd.num_active_electrons spec / 2 in
  (* Hartree–Fock-like reference: lowest n_occ spatial orbitals doubly
     occupied — in the Jordan–Wigner interleaved layout these are qubits
     0 .. 2·n_occ−1.  The Bravyi–Kitaev encoding stores parities, so the
     reference bit pattern is the BK transform of that occupation; for
     the demonstration's purposes the JW pattern is used for both (the
     optimizer starts in its vicinity either way). *)
  let reference = List.init (2 * n_occ) (fun i -> i) in
  { hamiltonian; ansatz = Ansatz.of_hamiltonian cluster; reference }

let energy problem theta =
  let v =
    Ansatz.state_with_reference problem.ansatz ~occupied:problem.reference theta
  in
  Statevector.expectation v problem.hamiltonian

let exact_ground_energy problem =
  let n = Hamiltonian.num_qubits problem.hamiltonian in
  let matrix =
    Phoenix_linalg.Unitary.hamiltonian_matrix n
      (List.map
         (fun (t : Phoenix_pauli.Pauli_term.t) ->
           t.Phoenix_pauli.Pauli_term.pauli, t.Phoenix_pauli.Pauli_term.coeff)
         (Hamiltonian.terms problem.hamiltonian))
  in
  let d = Phoenix_linalg.Herm.eig matrix in
  Array.fold_left Float.min Float.infinity d.Phoenix_linalg.Herm.eigenvalues

type outcome = {
  parameters : float array;
  energy : float;
  trace : Optimize.trace;
}

let minimize ?(optimizer = `Nelder_mead) ?iterations problem =
  let objective = energy problem in
  let x0 = Array.make (Ansatz.num_parameters problem.ansatz) 0.0 in
  let parameters, trace =
    match optimizer with
    | `Spsa -> Optimize.spsa ?iterations objective x0
    | `Nelder_mead -> Optimize.nelder_mead ?iterations objective x0
  in
  { parameters; energy = trace.Optimize.best_value; trace }
