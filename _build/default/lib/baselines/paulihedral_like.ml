module Bitvec = Phoenix_util.Bitvec
module Pauli_string = Phoenix_pauli.Pauli_string
module Circuit = Phoenix_circuit.Circuit
module Peephole = Phoenix_circuit.Peephole
module Group = Phoenix.Group
module Synthesis = Phoenix.Synthesis

let overlap a b =
  Bitvec.and_popcount a.Group.support b.Group.support

let order_blocks blocks =
  match blocks with
  | [] | [ _ ] -> blocks
  | first :: rest ->
    let rec chain acc last pool =
      match pool with
      | [] -> List.rev acc
      | _ ->
        let best =
          List.fold_left
            (fun best cand ->
              match best with
              | Some b when overlap last b >= overlap last cand -> best
              | Some _ | None -> Some cand)
            None pool
        in
        let chosen = match best with Some b -> b | None -> assert false in
        chain (chosen :: acc) chosen (List.filter (fun b -> b != chosen) pool)
    in
    chain [ first ] first rest

let sorted_terms (g : Group.t) =
  List.sort (fun (p, _) (q, _) -> Pauli_string.compare p q) g.Group.terms

(* Block-local synthesis: Paulihedral's CNOT-tree co-optimization shares
   tree segments between the gadgets of one block; the equivalent saving
   is obtained here by diagonalizing the block when its terms commute
   (always true for UCCSD excitation blocks) and falling back to shared
   Z-first ladders otherwise. *)
let block_circuit n (g : Group.t) =
  let ladder_version =
    Synthesis.naive_gadget_circuit ~chain:`Z_first n (sorted_terms g)
  in
  if not (Group.all_commuting g) then ladder_version
  else begin
    let d = Phoenix_circuit.Diagonalize.run n g.Group.terms in
    let sorted =
      List.sort
        (fun (p, _) (q, _) -> Pauli_string.compare p q)
        d.Phoenix_circuit.Diagonalize.diagonal
    in
    let ladders = Circuit.gates (Synthesis.naive_gadget_circuit n sorted) in
    let undo =
      List.rev_map Phoenix_circuit.Gate.dagger
        d.Phoenix_circuit.Diagonalize.clifford
    in
    let diag_version =
      Circuit.create n (d.Phoenix_circuit.Diagonalize.clifford @ ladders @ undo)
    in
    let cost c = Circuit.count_cnot (Peephole.optimize c) in
    if cost diag_version <= cost ladder_version then diag_version
    else ladder_version
  end

let compile_groups ?(peephole = true) n groups =
  let ordered = order_blocks groups in
  let circuit = Circuit.concat_list n (List.map (block_circuit n) ordered) in
  if peephole then Peephole.optimize circuit else circuit

let compile ?peephole n gadgets =
  compile_groups ?peephole n (Group.group_gadgets n gadgets)

let compile_blocks ?peephole n blocks =
  compile_groups ?peephole n (Group.of_blocks n blocks)
