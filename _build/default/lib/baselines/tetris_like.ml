module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Circuit = Phoenix_circuit.Circuit
module Peephole = Phoenix_circuit.Peephole
module Group = Phoenix.Group
module Synthesis = Phoenix.Synthesis

(* A shared qubit with the same Pauli basis lets an entire ladder leg
   cancel; a shared qubit with a different basis still shares the CNOT
   but pays basis-change 1Q gates. *)
let boundary_score p q =
  let n = Pauli_string.num_qubits p in
  let score = ref 0.0 in
  for i = 0 to n - 1 do
    match Pauli_string.get p i, Pauli_string.get q i with
    | Pauli.I, _ | _, Pauli.I -> ()
    | a, b when Pauli.equal a b -> score := !score +. 1.0
    | _, _ -> score := !score +. 0.3
  done;
  !score

let sorted_terms (g : Group.t) =
  List.sort (fun (p, _) (q, _) -> Pauli_string.compare p q) g.Group.terms

let last_term g =
  match List.rev (sorted_terms g) with
  | (p, _) :: _ -> p
  | [] -> assert false

let first_term g =
  match sorted_terms g with
  | (p, _) :: _ -> p
  | [] -> assert false

let order_blocks blocks =
  match blocks with
  | [] | [ _ ] -> blocks
  | first :: rest ->
    let rec chain acc last pool =
      match pool with
      | [] -> List.rev acc
      | _ ->
        let score cand = boundary_score (last_term last) (first_term cand) in
        let best =
          List.fold_left
            (fun best cand ->
              match best with
              | Some b when score b >= score cand -> best
              | Some _ | None -> Some cand)
            None pool
        in
        let chosen = match best with Some b -> b | None -> assert false in
        chain (chosen :: acc) chosen (List.filter (fun b -> b != chosen) pool)
    in
    chain [ first ] first rest

let compile_groups ?(peephole = true) n groups =
  let ordered = order_blocks groups in
  let circuit =
    Circuit.concat_list n
      (List.map
         (fun g -> Synthesis.naive_gadget_circuit ~chain:`Z_first n (sorted_terms g))
         ordered)
  in
  if peephole then Peephole.optimize circuit else circuit

let compile ?peephole n gadgets =
  compile_groups ?peephole n (Group.group_gadgets n gadgets)

let compile_blocks ?peephole n blocks =
  compile_groups ?peephole n (Group.of_blocks n blocks)
