lib/baselines/qan2_like.ml: Array Float List Phoenix_circuit Phoenix_pauli Phoenix_router Phoenix_topology
