lib/baselines/tket_like.mli: Phoenix_circuit Phoenix_pauli
