lib/baselines/tetris_like.ml: List Phoenix Phoenix_circuit Phoenix_pauli
