lib/baselines/naive.ml: Phoenix
