lib/baselines/tetris_like.mli: Phoenix_circuit Phoenix_pauli
