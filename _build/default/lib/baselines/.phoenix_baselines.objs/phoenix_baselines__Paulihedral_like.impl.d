lib/baselines/paulihedral_like.ml: List Phoenix Phoenix_circuit Phoenix_pauli Phoenix_util
