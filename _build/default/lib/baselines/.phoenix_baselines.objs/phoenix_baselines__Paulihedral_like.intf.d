lib/baselines/paulihedral_like.mli: Phoenix Phoenix_circuit Phoenix_pauli
