lib/baselines/naive.mli: Phoenix_circuit Phoenix_pauli
