lib/baselines/tket_like.ml: List Phoenix_circuit Phoenix_pauli
