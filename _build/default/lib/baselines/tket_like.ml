module Pauli_string = Phoenix_pauli.Pauli_string
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Peephole = Phoenix_circuit.Peephole

(* Phase ladder for one Z-only string. *)
let ladder_gates (p, theta) =
  match Pauli_string.support_list p with
  | [] -> []
  | support ->
    let rec chain = function
      | a :: (b :: _ as rest) -> Gate.Cnot (a, b) :: chain rest
      | [ _ ] | [] -> []
    in
    let target = List.nth support (List.length support - 1) in
    let up = chain support in
    up @ [ Gate.G1 (Gate.Rz theta, target) ] @ List.rev up

let synth_commuting_set n set =
  let d = Phoenix_circuit.Diagonalize.run n set in
  (* Sorting the diagonal rotations lexicographically maximizes shared
     ladder prefixes, which the peephole collapses. *)
  let sorted =
    List.sort
      (fun (p, _) (q, _) -> Pauli_string.compare p q)
      d.Phoenix_circuit.Diagonalize.diagonal
  in
  let undo = List.rev_map Gate.dagger d.Phoenix_circuit.Diagonalize.clifford in
  d.Phoenix_circuit.Diagonalize.clifford @ List.concat_map ladder_gates sorted @ undo

let compile ?(peephole = true) n gadgets =
  let sets = Phoenix_circuit.Diagonalize.partition_commuting gadgets in
  let circuit = Circuit.create n (List.concat_map (synth_commuting_set n) sets) in
  if peephole then Peephole.optimize circuit else circuit
