let compile n gadgets = Phoenix.Synthesis.naive_gadget_circuit n gadgets
