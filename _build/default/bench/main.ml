(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (§V) and runs Bechamel micro-benchmarks of the compiler
   passes.

     dune exec bench/main.exe                 - everything
     dune exec bench/main.exe -- table1       - one artifact
     dune exec bench/main.exe -- fig5 --quick - reduced benchmark subset

   Artifacts: table1, fig5 (incl. Table II), fig6, table3, table4
   (incl. Fig. 7), fig8, perf. *)

module E = Phoenix_experiments

let fmt = Format.std_formatter

let labels ~quick =
  if quick then Some E.Workloads.uccsd_quick_labels else None

let run_table1 ~quick =
  E.Table1.print fmt (E.Table1.run ?labels:(labels ~quick) ())

let run_fig5 ~quick = E.Fig5.print fmt (E.Fig5.run ?labels:(labels ~quick) ())
let run_fig6 ~quick = E.Fig6.print fmt (E.Fig6.run ?labels:(labels ~quick) ())

let run_table3 ~quick =
  E.Table3.print fmt (E.Table3.run ?labels:(labels ~quick) ())

let run_table4 ~quick:_ = E.Table4.print fmt (E.Table4.run ())

let run_fidelity ~quick =
  E.Fidelity.print fmt (E.Fidelity.run ?labels:(labels ~quick) ())

let run_ablations ~quick =
  E.Ablations.print fmt
    (E.Ablations.run_uccsd ?labels:(labels ~quick) ())
    (E.Ablations.run_qaoa_router ())

let run_fig8 ~quick =
  let scales = if quick then [ 0.1; 0.8 ] else E.Fig8.default_scales in
  let molecules =
    if quick then [ "LiH_reduced" ] else [ "LiH_reduced"; "NH_reduced" ]
  in
  E.Fig8.print fmt (E.Fig8.run ~scales ~molecules ())

(* --- Bechamel micro-benchmarks of the compiler passes --- *)

let perf_tests () =
  let case = List.hd (E.Workloads.uccsd_suite ~labels:[ "LiH_frz_JW" ] ()) in
  let n = case.E.Workloads.n in
  let blocks = case.E.Workloads.gadget_blocks in
  let gadgets = E.Workloads.gadgets case in
  let groups = Phoenix.Group.of_blocks n blocks in
  let first_group = List.hd groups in
  let topo = E.Workloads.heavy_hex () in
  let open Bechamel in
  Test.make_grouped ~name:"phoenix" ~fmt:"%s %s"
    [
      Test.make ~name:"grouping"
        (Staged.stage (fun () -> ignore (Phoenix.Group.of_blocks n blocks)));
      Test.make ~name:"bsf-simplify-one-group"
        (Staged.stage (fun () ->
             ignore (Phoenix.Simplify.run n first_group.Phoenix.Group.terms)));
      Test.make ~name:"compile-logical-cnot"
        (Staged.stage (fun () ->
             ignore (Phoenix.Compiler.compile_blocks n blocks)));
      Test.make ~name:"compile-logical-su4"
        (Staged.stage (fun () ->
             let options =
               {
                 Phoenix.Compiler.default_options with
                 isa = Phoenix.Compiler.Su4_isa;
               }
             in
             ignore (Phoenix.Compiler.compile_blocks ~options n blocks)));
      Test.make ~name:"compile-heavy-hex"
        (Staged.stage (fun () ->
             let options =
               {
                 Phoenix.Compiler.default_options with
                 target = Phoenix.Compiler.Hardware topo;
               }
             in
             ignore (Phoenix.Compiler.compile_blocks ~options n blocks)));
      Test.make ~name:"baseline-tket"
        (Staged.stage (fun () ->
             ignore (Phoenix_baselines.Tket_like.compile n gadgets)));
    ]

let run_perf ~quick =
  let open Bechamel in
  let quota = if quick then 0.5 else 2.0 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (perf_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      instance raw
  in
  Format.fprintf fmt
    "@[<v>== Compile-time micro-benchmarks (LiH_frz_JW, 144 Pauli strings) ==@,";
  let lines = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let value =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Printf.sprintf "%12.3f ms/run" (est /. 1e6)
        | Some _ | None -> "(no estimate)"
      in
      lines := (name, value) :: !lines)
    results;
  List.iter
    (fun (name, value) -> Format.fprintf fmt "%-34s %s@," name value)
    (List.sort compare !lines);
  Format.fprintf fmt
    "(paper: compiles thousands of Pauli strings in dozens of seconds on a laptop)@,";
  Format.fprintf fmt "@]@."

let artifacts =
  [
    "table1", run_table1;
    "fig5", run_fig5;
    "fig6", run_fig6;
    "table3", run_table3;
    "table4", run_table4;
    "fig8", run_fig8;
    "ablations", run_ablations;
    "fidelity", run_fidelity;
    "perf", run_perf;
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let to_run =
    match wanted with
    | [] -> artifacts
    | names ->
      List.map
        (fun name ->
          match List.assoc_opt name artifacts with
          | Some f -> name, f
          | None ->
            Printf.eprintf "unknown artifact %S (available: %s)\n" name
              (String.concat ", " (List.map fst artifacts));
            exit 2)
        names
  in
  List.iter
    (fun (name, f) ->
      Format.fprintf fmt "@.>>> %s@." name;
      let t0 = Sys.time () in
      f ~quick;
      Format.fprintf fmt "<<< %s done in %.1fs (cpu)@." name (Sys.time () -. t0))
    to_run
