module Prng = Phoenix_util.Prng

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different streams" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_int_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_float_bounds () =
  let g = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_uniform_hits_both_halves () =
  let g = Prng.create 11 in
  let lo = ref 0 and hi = ref 0 in
  for _ = 1 to 1000 do
    if Prng.uniform g (-1.0) 1.0 < 0.0 then incr lo else incr hi
  done;
  Alcotest.(check bool) "roughly balanced" true (!lo > 300 && !hi > 300)

let test_shuffle_permutes () =
  let g = Prng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_split_independent () =
  let g = Prng.create 3 in
  let h = Prng.split g in
  Alcotest.(check bool) "independent streams" true
    (Prng.next_int64 g <> Prng.next_int64 h)

let test_pick () =
  let g = Prng.create 13 in
  for _ = 1 to 100 do
    let v = Prng.pick g [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick g ([] : int list)))

let () =
  Alcotest.run "prng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_different_seeds;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "uniform balance" `Quick test_uniform_hits_both_halves;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "pick" `Quick test_pick;
        ] );
    ]
