(* Smoke tests for the experiment harness, plus regressions for the
   compiler behaviours the experiments rely on. *)

module E = Phoenix_experiments
module Circuit = Helpers.Circuit
module Hamiltonian = Phoenix_ham.Hamiltonian

let test_metrics_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (E.Metrics.geomean [ 1.0; 4.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.geomean: empty")
    (fun () -> ignore (E.Metrics.geomean []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Metrics.geomean: non-positive entry") (fun () ->
      ignore (E.Metrics.geomean [ 1.0; 0.0 ]))

let test_workloads_suite_complete () =
  let suite = E.Workloads.uccsd_suite () in
  Alcotest.(check int) "16 benchmarks" 16 (List.length suite);
  let quick = E.Workloads.uccsd_suite ~labels:E.Workloads.uccsd_quick_labels () in
  Alcotest.(check int) "4 quick" 4 (List.length quick)

let test_workloads_qaoa () =
  let suite = E.Workloads.qaoa_suite () in
  Alcotest.(check int) "6 benchmarks" 6 (List.length suite);
  List.iter
    (fun (c : E.Workloads.qaoa_case) ->
      Alcotest.(check bool) "nonempty" true (c.E.Workloads.qgadgets <> []))
    suite

let lih = [ "LiH_frz_JW" ]

let test_table1_matches_paper_structure () =
  let rows = E.Table1.run ~labels:lih () in
  match rows with
  | [ r ] ->
    Alcotest.(check int) "qubits" 10 r.E.Table1.qubits;
    Alcotest.(check int) "pauli" 144 r.E.Table1.pauli;
    Alcotest.(check int) "w_max" 10 r.E.Table1.w_max;
    (* within 25% of the paper's values *)
    let _, _, _, _, paper_cnot, _, _ = List.assoc r.E.Table1.label E.Table1.paper in
    let ratio = float_of_int r.E.Table1.cnots /. float_of_int paper_cnot in
    Alcotest.(check bool) "cnot within 25% of paper" true
      (ratio > 0.75 && ratio < 1.25)
  | _ -> Alcotest.fail "expected one row"

let test_fig5_phoenix_wins () =
  let rows = E.Fig5.run ~labels:lih () in
  List.iter
    (fun row ->
      let phx = List.assoc E.Drivers.Phoenix_c row.E.Fig5.per_compiler in
      List.iter
        (fun (c, m) ->
          if c <> E.Drivers.Phoenix_c then
            Alcotest.(check bool)
              (E.Drivers.compiler_name c ^ " beaten")
              true
              (phx.E.Metrics.two_q <= m.E.Metrics.two_q))
        row.E.Fig5.per_compiler)
    rows

let test_fig6_respects_paper_shape () =
  let rows = E.Fig6.run ~labels:lih () in
  List.iter
    (fun row ->
      let phx = List.assoc E.Drivers.Phoenix_c row.E.Fig6.per_compiler in
      let plh = List.assoc E.Drivers.Paulihedral row.E.Fig6.per_compiler in
      Alcotest.(check bool) "phoenix ≤ paulihedral on heavy-hex" true
        (phx.E.Drivers.counts.E.Metrics.two_q
        <= plh.E.Drivers.counts.E.Metrics.two_q))
    rows

let test_table4_phoenix_wins () =
  let rows = E.Table4.run () in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.E.Table4.label ^ ": phoenix cnot ≤ 2qan")
        true
        (r.E.Table4.phoenix.E.Table4.cnots <= r.E.Table4.qan2.E.Table4.cnots))
    rows

let test_fig8_errors_increase_with_scale () =
  let series = E.Fig8.run ~scales:[ 0.2; 1.6 ] ~molecules:[ "LiH_reduced" ] () in
  List.iter
    (fun s ->
      match s.E.Fig8.points with
      | [ small; large ] ->
        Alcotest.(check bool) "monotone tket" true
          (small.E.Fig8.tket < large.E.Fig8.tket);
        Alcotest.(check bool) "monotone phoenix" true
          (small.E.Fig8.phoenix < large.E.Fig8.phoenix);
        Alcotest.(check bool) "positive" true (small.E.Fig8.phoenix > 0.0)
      | _ -> Alcotest.fail "two points expected")
    series

let test_ablations_full_is_best_cnot () =
  let results = E.Ablations.run_uccsd ~labels:lih () in
  let rate v = fst (List.assoc v results) in
  Alcotest.(check bool) "full ≤ no-ordering" true
    (rate E.Ablations.Full <= rate E.Ablations.No_ordering +. 1e-9);
  Alcotest.(check bool) "full ≤ no-peephole" true
    (rate E.Ablations.Full <= rate E.Ablations.No_peephole +. 1e-9);
  Alcotest.(check bool) "full ≤ no-compression" true
    (rate E.Ablations.Full <= rate E.Ablations.No_compression +. 1e-9)

(* --- features the harness depends on --- *)

let test_second_order_trotter () =
  let h = Phoenix_ham.Spin_models.tfim_chain 3 in
  let s1 = Hamiltonian.trotter_gadgets ~tau:0.3 h in
  let s2 = Hamiltonian.trotter_gadgets_order2 ~tau:0.3 h in
  Alcotest.(check int) "doubled length" (2 * List.length s1) (List.length s2);
  (* symmetric: the reversed list equals itself *)
  let p2 = List.map fst s2 in
  Alcotest.(check bool) "palindrome" true (p2 = List.rev p2);
  (* second order is more accurate at equal tau *)
  let to_terms ham =
    List.map
      (fun (t : Phoenix_pauli.Pauli_term.t) ->
        t.Phoenix_pauli.Pauli_term.pauli, t.Phoenix_pauli.Pauli_term.coeff)
      (Hamiltonian.terms ham)
  in
  let exact =
    Phoenix_linalg.Herm.expm_hermitian_times
      (Phoenix_linalg.Unitary.hamiltonian_matrix 3 (to_terms h))
      0.3
  in
  let err gadgets =
    Phoenix_linalg.Fidelity.infidelity exact
      (Phoenix_linalg.Unitary.program_unitary 3 gadgets)
  in
  Alcotest.(check bool) "2nd order better" true (err s2 < err s1)

let test_placement_respects_interactions () =
  let topo = Phoenix_topology.Topology.line 8 in
  let layout =
    Phoenix_router.Placement.interaction_aware topo ~n_logical:3
      ~weights:[ 0, 1, 5; 1, 2, 5 ]
  in
  let p q = Phoenix_router.Layout.physical_of layout q in
  Alcotest.(check int) "0-1 adjacent" 1
    (Phoenix_topology.Topology.distance topo (p 0) (p 1));
  Alcotest.(check int) "1-2 adjacent" 1
    (Phoenix_topology.Topology.distance topo (p 1) (p 2))

let test_route_commuting_correct_structure () =
  let topo = Phoenix_topology.Topology.line 5 in
  let zz a b t =
    Helpers.Gate.Rpp
      { p0 = Helpers.Pauli.Z; p1 = Helpers.Pauli.Z; a; b; theta = t }
  in
  let circ = Circuit.create 5 [ zz 0 4 0.1; zz 1 3 0.2; zz 0 2 0.3 ] in
  let r = Phoenix_router.Sabre.route_commuting topo circ in
  (* every 2Q gate respects adjacency *)
  List.iter
    (fun g ->
      match Helpers.Gate.pair g with
      | Some (a, b) ->
        Alcotest.(check bool) "adjacent" true
          (Phoenix_topology.Topology.are_adjacent topo a b)
      | None -> ())
    (Circuit.gates r.Phoenix_router.Sabre.circuit);
  (* all three interactions are present *)
  let rpp_count =
    Circuit.count
      (fun g -> match g with Helpers.Gate.Rpp _ -> true | _ -> false)
      r.Phoenix_router.Sabre.circuit
  in
  Alcotest.(check int) "interactions preserved" 3 rpp_count

(* Regression: this input once sent exact-mode simplification into a
   forced-fallback ping-pong (unpeelable locals re-growing). *)
let test_simplify_exact_stall_regression () =
  let ps = Helpers.Pauli_string.of_string in
  let terms =
    [ ps "ZYZ", 0.5; ps "IZI", 0.3; ps "YXY", 0.7; ps "IIZ", 0.2; ps "YXZ", 0.9 ]
  in
  let cfg = Phoenix.Simplify.run ~exact:true 3 terms in
  let circ = Phoenix.Synthesis.cfg_to_circuit 3 cfg in
  Helpers.check_equiv ~tol:1e-7 "still exact"
    (Helpers.Unitary.program_unitary 3 terms)
    (Helpers.Unitary.circuit_unitary circ);
  Alcotest.(check bool) "bounded clifford count" true
    (Phoenix.Simplify.num_cliffords cfg < 20)

let () =
  Alcotest.run "experiments"
    [
      ( "harness",
        [
          Alcotest.test_case "geomean" `Quick test_metrics_geomean;
          Alcotest.test_case "uccsd suite" `Quick test_workloads_suite_complete;
          Alcotest.test_case "qaoa suite" `Quick test_workloads_qaoa;
          Alcotest.test_case "table1 structure" `Quick
            test_table1_matches_paper_structure;
          Alcotest.test_case "fig5 phoenix wins" `Slow test_fig5_phoenix_wins;
          Alcotest.test_case "fig6 shape" `Slow test_fig6_respects_paper_shape;
          Alcotest.test_case "table4 phoenix wins" `Slow test_table4_phoenix_wins;
          Alcotest.test_case "fig8 monotone" `Slow
            test_fig8_errors_increase_with_scale;
          Alcotest.test_case "ablations" `Slow test_ablations_full_is_best_cnot;
        ] );
      ( "features",
        [
          Alcotest.test_case "second-order trotter" `Quick
            test_second_order_trotter;
          Alcotest.test_case "placement" `Quick test_placement_respects_interactions;
          Alcotest.test_case "commuting router" `Quick
            test_route_commuting_correct_structure;
          Alcotest.test_case "exact stall regression" `Quick
            test_simplify_exact_stall_regression;
        ] );
    ]
