module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Rebase = Phoenix_circuit.Rebase
module Clifford2q = Helpers.Clifford2q
module Pauli = Helpers.Pauli
module Unitary = Helpers.Unitary

let cnot a b = Gate.Cnot (a, b)
let h q = Gate.G1 (Gate.H, q)
let rz t q = Gate.G1 (Gate.Rz t, q)

let is_basis = function
  | Gate.G1 _ | Gate.Cnot _ -> true
  | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Swap _ | Gate.Su4 _ -> false

let test_lower_cliff2 () =
  let c =
    Circuit.create 2 [ Gate.Cliff2 (Clifford2q.make Clifford2q.CXY 0 1) ]
  in
  let c' = Rebase.to_cnot_basis c in
  Alcotest.(check bool) "all basis gates" true
    (List.for_all is_basis (Circuit.gates c'));
  Alcotest.(check int) "one cnot" 1 (Circuit.count_2q c')

let test_lower_rpp_zz () =
  let c =
    Circuit.create 2
      [ Gate.Rpp { p0 = Pauli.Z; p1 = Pauli.Z; a = 0; b = 1; theta = 0.4 } ]
  in
  let c' = Rebase.to_cnot_basis c in
  Alcotest.(check int) "two cnots" 2 (Circuit.count_2q c');
  Alcotest.(check int) "three gates (no basis conj for ZZ)" 3 (Circuit.length c')

let test_lower_swap () =
  let c = Circuit.create 2 [ Gate.Swap (0, 1) ] in
  Alcotest.(check int) "three cnots" 3 (Circuit.count_2q (Rebase.to_cnot_basis c))

let random_gate_gen n =
  let open QCheck2.Gen in
  let pairs =
    map
      (fun (a, d) ->
        let b = (a + 1 + d) mod n in
        a, b)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 2)))
  in
  let nontrivial = oneofl [ Pauli.X; Pauli.Y; Pauli.Z ] in
  oneof
    [
      map (fun q -> h q) (int_range 0 (n - 1));
      map (fun (q, t) -> rz t q) (pair (int_range 0 (n - 1)) Helpers.angle_gen);
      map (fun (a, b) -> cnot a b) pairs;
      map (fun (a, b) -> Gate.Swap (a, b)) pairs;
      map
        (fun ((a, b), k) -> Gate.Cliff2 (Clifford2q.make k a b))
        (pair pairs (oneofl Clifford2q.all_kinds));
      map
        (fun ((a, b), (p0, p1), t) ->
          Gate.Rpp { p0; p1; a; b; theta = t })
        (triple pairs (pair nontrivial nontrivial) Helpers.angle_gen);
    ]

let prop_cnot_basis_preserves_unitary =
  Helpers.qtest ~count:150 "to_cnot_basis preserves the unitary"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 15) (random_gate_gen 3))
    (fun gates ->
      let c = Circuit.create 3 gates in
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.circuit_unitary c)
        (Unitary.circuit_unitary (Rebase.to_cnot_basis c)))

let prop_cnot_basis_only_basis_gates =
  Helpers.qtest ~count:100 "to_cnot_basis emits only G1/CNOT"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 15) (random_gate_gen 4))
    (fun gates ->
      let c = Rebase.to_cnot_basis (Circuit.create 4 gates) in
      List.for_all is_basis (Circuit.gates c))

let prop_su4_preserves_unitary =
  Helpers.qtest ~count:150 "to_su4 preserves the unitary"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 15) (random_gate_gen 3))
    (fun gates ->
      let c = Circuit.create 3 gates in
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.circuit_unitary c)
        (Unitary.circuit_unitary (Rebase.to_su4 c)))

let prop_su4_all_two_qubit_fused =
  Helpers.qtest ~count:100 "every 2Q gate after to_su4 is an Su4 block"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 15) (random_gate_gen 4))
    (fun gates ->
      let c = Rebase.to_su4 (Circuit.create 4 gates) in
      List.for_all
        (fun g ->
          match g with
          | Gate.Su4 _ -> true
          | Gate.G1 _ -> true
          | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Swap _ -> false)
        (Circuit.gates c))

let prop_su4_count_le_2q_count =
  Helpers.qtest ~count:100 "#SU4 ≤ #2Q"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 20) (random_gate_gen 4))
    (fun gates ->
      let c = Circuit.create 4 gates in
      Rebase.count_su4 c <= Circuit.count_2q c)

let test_su4_fuses_runs () =
  (* Three CNOTs on the same pair with interleaved 1Q gates fuse to one. *)
  let c =
    Circuit.create 3 [ cnot 0 1; rz 0.1 0; h 1; cnot 0 1; cnot 1 0; cnot 1 2 ]
  in
  let c' = Rebase.to_su4 c in
  Alcotest.(check int) "two blocks" 2 (Circuit.count_2q c');
  Alcotest.(check int) "su4 count" 2 (Rebase.count_su4 c)

let test_su4_interrupted_run () =
  (* A gate on another pair that touches a shared qubit breaks the run. *)
  let c = Circuit.create 3 [ cnot 0 1; cnot 1 2; cnot 0 1 ] in
  Alcotest.(check int) "three blocks" 3 (Rebase.count_su4 c)

let () =
  Alcotest.run "rebase"
    [
      ( "unit",
        [
          Alcotest.test_case "lower Cliff2" `Quick test_lower_cliff2;
          Alcotest.test_case "lower Rpp(ZZ)" `Quick test_lower_rpp_zz;
          Alcotest.test_case "lower Swap" `Quick test_lower_swap;
          Alcotest.test_case "SU4 fuses runs" `Quick test_su4_fuses_runs;
          Alcotest.test_case "SU4 interrupted run" `Quick test_su4_interrupted_run;
        ] );
      ( "props",
        [
          prop_cnot_basis_preserves_unitary;
          prop_cnot_basis_only_basis_gates;
          prop_su4_preserves_unitary;
          prop_su4_all_two_qubit_fused;
          prop_su4_count_le_2q_count;
        ] );
    ]
