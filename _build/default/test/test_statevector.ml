module Sv = Phoenix_linalg.Statevector
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Pauli_string = Helpers.Pauli_string
module Unitary = Helpers.Unitary
module Cmat = Helpers.Cmat
module Prng = Phoenix_util.Prng

let h q = Gate.G1 (Gate.H, q)
let x q = Gate.G1 (Gate.X, q)
let cnot a b = Gate.Cnot (a, b)

let test_zero_state () =
  let v = Sv.zero_state 3 in
  Alcotest.(check int) "qubits" 3 (Sv.num_qubits v);
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Sv.norm v);
  Alcotest.(check (float 1e-12)) "amp0" 1.0 (Complex.norm (Sv.amplitude v 0))

let test_basis_state () =
  let v = Sv.basis_state 3 5 in
  Alcotest.(check (float 1e-12)) "amp5" 1.0 (Complex.norm (Sv.amplitude v 5));
  Alcotest.(check (float 1e-12)) "amp0" 0.0 (Complex.norm (Sv.amplitude v 0));
  Alcotest.check_raises "range" (Invalid_argument "Statevector.basis_state: out of range")
    (fun () -> ignore (Sv.basis_state 2 4))

let test_bell_state () =
  let v = Sv.of_circuit (Circuit.create 2 [ h 0; cnot 0 1 ]) in
  let p = Sv.probabilities v in
  Alcotest.(check (float 1e-12)) "p00" 0.5 p.(0);
  Alcotest.(check (float 1e-12)) "p11" 0.5 p.(3);
  Alcotest.(check (float 1e-12)) "p01" 0.0 p.(1)

let test_x_flips () =
  let v = Sv.of_circuit (Circuit.create 2 [ x 1 ]) in
  (* qubit 1 is the least significant of two: |01⟩ = index 1 *)
  Alcotest.(check (float 1e-12)) "amp" 1.0 (Complex.norm (Sv.amplitude v 1))

let random_circuit_gen n =
  let open QCheck2.Gen in
  let pairs =
    map
      (fun (a, d) ->
        let b = (a + 1 + d) mod n in
        a, b)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 2)))
  in
  list_size (int_range 0 15)
    (oneof
       [
         map (fun q -> h q) (int_range 0 (n - 1));
         map (fun (q, t) -> Gate.G1 (Gate.Rz t, q))
           (pair (int_range 0 (n - 1)) Helpers.angle_gen);
         map (fun (q, t) -> Gate.G1 (Gate.Ry t, q))
           (pair (int_range 0 (n - 1)) Helpers.angle_gen);
         map (fun (a, b) -> cnot a b) pairs;
         map (fun (a, b) -> Gate.Swap (a, b)) pairs;
         map
           (fun ((a, b), t) ->
             Gate.Rpp
               { p0 = Helpers.Pauli.X; p1 = Helpers.Pauli.Y; a; b; theta = t })
           (pair pairs Helpers.angle_gen);
       ])

(* The decisive property: state-vector simulation agrees with the full
   unitary simulator column 0. *)
let prop_matches_unitary =
  Helpers.qtest ~count:100 "statevector = U·|0…0⟩ column"
    (random_circuit_gen 3)
    (fun gates ->
      let c = Circuit.create 3 gates in
      let v = Sv.of_circuit c in
      let u = Unitary.circuit_unitary c in
      let ok = ref true in
      for k = 0 to 7 do
        let expected = Cmat.get u k 0 and got = Sv.amplitude v k in
        if Complex.norm (Complex.sub expected got) > 1e-9 then ok := false
      done;
      !ok)

let prop_norm_preserved =
  Helpers.qtest ~count:100 "gates preserve the norm" (random_circuit_gen 4)
    (fun gates ->
      let v = Sv.of_circuit (Circuit.create 4 gates) in
      Float.abs (Sv.norm v -. 1.0) < 1e-9)

let test_expectation_pauli () =
  (* ⟨0|Z|0⟩ = 1, ⟨1|Z|1⟩ = −1, ⟨+|X|+⟩ = 1 *)
  let z = Pauli_string.of_string "Z" in
  Alcotest.(check (float 1e-12)) "⟨0|Z|0⟩" 1.0
    (Sv.expectation_pauli (Sv.zero_state 1) z);
  Alcotest.(check (float 1e-12)) "⟨1|Z|1⟩" (-1.0)
    (Sv.expectation_pauli (Sv.basis_state 1 1) z);
  let plus = Sv.of_circuit (Circuit.create 1 [ h 0 ]) in
  Alcotest.(check (float 1e-9)) "⟨+|X|+⟩" 1.0
    (Sv.expectation_pauli plus (Pauli_string.of_string "X"))

let test_expectation_hamiltonian () =
  (* TFIM on |00⟩: ⟨H⟩ = −j·1 − h·0 − h·0 = −j *)
  let ham = Phoenix_ham.Spin_models.tfim_chain ~j:0.7 ~h:0.3 2 in
  Alcotest.(check (float 1e-9)) "tfim" (-0.7)
    (Sv.expectation (Sv.zero_state 2) ham)

let prop_expectation_matches_matrix =
  Helpers.qtest ~count:60 "⟨ψ|P|ψ⟩ matches dense computation"
    (QCheck2.Gen.pair (random_circuit_gen 3) (Helpers.pauli_string_gen 3))
    (fun (gates, p) ->
      let c = Circuit.create 3 gates in
      let v = Sv.of_circuit c in
      let got = Sv.expectation_pauli v p in
      (* dense: column 0 of U, then ⟨ψ|P|ψ⟩ *)
      let u = Unitary.circuit_unitary c in
      let pm = Unitary.pauli_matrix p in
      let psi = Array.init 8 (fun k -> Cmat.get u k 0) in
      let expected = ref 0.0 in
      for i = 0 to 7 do
        for j = 0 to 7 do
          let pij = Cmat.get pm i j in
          let term = Complex.mul (Complex.conj psi.(i)) (Complex.mul pij psi.(j)) in
          expected := !expected +. term.Complex.re
        done
      done;
      Float.abs (got -. !expected) < 1e-8)

let test_sampling_distribution () =
  let rng = Prng.create 77 in
  let v = Sv.of_circuit (Circuit.create 2 [ h 0; cnot 0 1 ]) in
  let counts = Array.make 4 0 in
  for _ = 1 to 2000 do
    let k = Sv.sample rng v in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check int) "no 01" 0 counts.(1);
  Alcotest.(check int) "no 10" 0 counts.(2);
  Alcotest.(check bool) "roughly balanced" true
    (counts.(0) > 800 && counts.(3) > 800)

let () =
  Alcotest.run "statevector"
    [
      ( "unit",
        [
          Alcotest.test_case "zero state" `Quick test_zero_state;
          Alcotest.test_case "basis state" `Quick test_basis_state;
          Alcotest.test_case "bell state" `Quick test_bell_state;
          Alcotest.test_case "x flips" `Quick test_x_flips;
          Alcotest.test_case "expectation pauli" `Quick test_expectation_pauli;
          Alcotest.test_case "expectation hamiltonian" `Quick
            test_expectation_hamiltonian;
          Alcotest.test_case "sampling" `Quick test_sampling_distribution;
        ] );
      ( "props",
        [
          prop_matches_unitary;
          prop_norm_preserved;
          prop_expectation_matches_matrix;
        ] );
    ]
