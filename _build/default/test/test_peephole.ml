module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Peephole = Phoenix_circuit.Peephole
module Clifford2q = Helpers.Clifford2q
module Pauli = Helpers.Pauli
module Unitary = Helpers.Unitary

let cnot a b = Gate.Cnot (a, b)
let h q = Gate.G1 (Gate.H, q)
let s q = Gate.G1 (Gate.S, q)
let sdg q = Gate.G1 (Gate.Sdg, q)
let rz t q = Gate.G1 (Gate.Rz t, q)
let rx t q = Gate.G1 (Gate.Rx t, q)

let opt c = Peephole.optimize c

let test_hh_cancels () =
  let c = opt (Circuit.create 1 [ h 0; h 0 ]) in
  Alcotest.(check int) "empty" 0 (Circuit.length c)

let test_cnot_cnot_cancels () =
  let c = opt (Circuit.create 2 [ cnot 0 1; cnot 0 1 ]) in
  Alcotest.(check int) "empty" 0 (Circuit.length c)

let test_cnot_reversed_not_cancelled () =
  let c = opt (Circuit.create 2 [ cnot 0 1; cnot 1 0 ]) in
  Alcotest.(check int) "kept" 2 (Circuit.length c)

let test_rz_merge () =
  let c = opt (Circuit.create 1 [ rz 0.25 0; rz 0.5 0 ]) in
  match Circuit.gates c with
  | [ Gate.G1 (Gate.Rz t, 0) ] -> Alcotest.(check (float 1e-12)) "sum" 0.75 t
  | _ -> Alcotest.fail "expected single merged Rz"

let test_rz_inverse_vanishes () =
  let c = opt (Circuit.create 1 [ rz 0.4 0; rz (-0.4) 0 ]) in
  Alcotest.(check int) "empty" 0 (Circuit.length c)

let test_s_sdg_merge_to_nothing () =
  let c = opt (Circuit.create 1 [ s 0; sdg 0 ]) in
  Alcotest.(check int) "cancelled" 0 (Circuit.length c)

let test_rz_commutes_through_cnot_control () =
  (* Rz on the control commutes through CNOT. *)
  let c = opt (Circuit.create 2 [ rz 0.3 0; cnot 0 1; rz (-0.3) 0 ]) in
  Alcotest.(check int) "only cnot left" 1 (Circuit.length c)

let test_rx_commutes_through_cnot_target () =
  let c = opt (Circuit.create 2 [ rx 0.3 1; cnot 0 1; rx (-0.3) 1 ]) in
  Alcotest.(check int) "only cnot left" 1 (Circuit.length c)

let test_cnot_cancel_through_diagonal () =
  (* CNOT ; Rz(control) ; CNOT  →  Rz *)
  let c = opt (Circuit.create 2 [ cnot 0 1; rz 0.9 0; cnot 0 1 ]) in
  Alcotest.(check int) "one gate" 1 (Circuit.count_1q c);
  Alcotest.(check int) "no cnots" 0 (Circuit.count_2q c)

let test_cnot_blocked_by_h () =
  let c = opt (Circuit.create 2 [ cnot 0 1; h 0; cnot 0 1 ]) in
  Alcotest.(check int) "nothing cancelled" 3 (Circuit.length c)

let test_cnot_shared_control_commute () =
  (* CNOT(0,1); CNOT(0,2); CNOT(0,1) → CNOT(0,2): same-control CNOTs commute *)
  let c = opt (Circuit.create 3 [ cnot 0 1; cnot 0 2; cnot 0 1 ]) in
  Alcotest.(check int) "one left" 1 (Circuit.count_2q c)

let test_cliff2_cancel () =
  let g = Gate.Cliff2 (Clifford2q.make Clifford2q.CYY 0 1) in
  let g_swapped = Gate.Cliff2 (Clifford2q.make Clifford2q.CYY 1 0) in
  let c = opt (Circuit.create 2 [ g; g_swapped ]) in
  Alcotest.(check int) "symmetric kind cancels swapped" 0 (Circuit.length c)

let test_swap_cancel () =
  let c = opt (Circuit.create 2 [ Gate.Swap (0, 1); Gate.Swap (1, 0) ]) in
  Alcotest.(check int) "cancelled" 0 (Circuit.length c)

let test_rpp_merge () =
  let r t = Gate.Rpp { p0 = Pauli.X; p1 = Pauli.Y; a = 0; b = 1; theta = t } in
  let c = opt (Circuit.create 2 [ r 0.2; r 0.3 ]) in
  match Circuit.gates c with
  | [ Gate.Rpp { theta; _ } ] -> Alcotest.(check (float 1e-12)) "merged" 0.5 theta
  | _ -> Alcotest.fail "expected merged Rpp"

let test_zero_rotation_dropped () =
  let c = opt (Circuit.create 1 [ rz 0.0 0 ]) in
  Alcotest.(check int) "dropped" 0 (Circuit.length c)

let random_gate_gen n =
  let open QCheck2.Gen in
  let pairs =
    map
      (fun (a, d) ->
        let b = (a + 1 + d) mod n in
        a, b)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 2)))
  in
  oneof
    [
      map (fun q -> h q) (int_range 0 (n - 1));
      map (fun q -> s q) (int_range 0 (n - 1));
      map (fun q -> sdg q) (int_range 0 (n - 1));
      map (fun (q, t) -> rz t q) (pair (int_range 0 (n - 1)) Helpers.angle_gen);
      map (fun (q, t) -> rx t q) (pair (int_range 0 (n - 1)) Helpers.angle_gen);
      map (fun (a, b) -> cnot a b) pairs;
      map (fun (a, b) -> Gate.Swap (a, b)) pairs;
      map
        (fun ((a, b), k) -> Gate.Cliff2 (Clifford2q.make k a b))
        (pair pairs (oneofl Clifford2q.all_kinds));
    ]

let prop_preserves_unitary =
  Helpers.qtest ~count:150 "peephole preserves the unitary (up to phase)"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 25) (random_gate_gen 3))
    (fun gates ->
      let c = Circuit.create 3 gates in
      let c' = Peephole.optimize c in
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.circuit_unitary c)
        (Unitary.circuit_unitary c'))

let prop_never_grows =
  Helpers.qtest ~count:150 "peephole never increases gate count"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 25) (random_gate_gen 4))
    (fun gates ->
      let c = Circuit.create 4 gates in
      Circuit.length (Peephole.optimize c) <= Circuit.length c)

let prop_idempotent =
  Helpers.qtest ~count:100 "optimize is idempotent"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 20) (random_gate_gen 3))
    (fun gates ->
      let c = Peephole.optimize (Circuit.create 3 gates) in
      Circuit.length (Peephole.optimize c) = Circuit.length c)

let test_normalize_angle () =
  let pi = 4.0 *. Float.atan 1.0 in
  Alcotest.(check (float 1e-9)) "0 stays" 0.0 (Peephole.normalize_angle 0.0);
  Alcotest.(check (float 1e-9)) "4π → 0" 0.0 (Peephole.normalize_angle (4.0 *. pi));
  Alcotest.(check (float 1e-9)) "within range" 1.5 (Peephole.normalize_angle 1.5);
  Alcotest.(check bool) "zero detection" true
    (Peephole.is_zero_angle (8.0 *. pi));
  Alcotest.(check bool) "2π is not zero (it is -I)" false
    (Peephole.is_zero_angle (2.0 *. pi))

(* --- phase folding --- *)

module Phase_folding = Phoenix_circuit.Phase_folding

let test_fold_through_cnot_sandwich () =
  (* Rz(a) q1; CNOT; Rz(b) q1; CNOT; Rz(c) q1 : a and c share a parity *)
  let c =
    Circuit.create 2
      [ rz 0.3 1; cnot 0 1; rz 0.5 1; cnot 0 1; rz 0.4 1 ]
  in
  let folded = Phase_folding.fold c in
  let rz_count =
    Circuit.count
      (fun g -> match g with Gate.G1 (Gate.Rz _, _) -> true | _ -> false)
      folded
  in
  Alcotest.(check int) "two rotations remain" 2 rz_count;
  Alcotest.(check bool) "unitary preserved" true
    (Helpers.unitary_equiv ~tol:1e-9
       (Unitary.circuit_unitary c)
       (Unitary.circuit_unitary folded))

let test_fold_cancels_inverse_pair () =
  let c = Circuit.create 2 [ rz 0.7 1; cnot 0 1; cnot 0 1; rz (-0.7) 1 ] in
  let folded = Phase_folding.fold c in
  Alcotest.(check int) "rotations vanish" 0 (Circuit.count_1q folded)

let test_fold_respects_barriers () =
  let c = Circuit.create 1 [ rz 0.3 0; Gate.G1 (Gate.H, 0); rz (-0.3) 0 ] in
  let folded = Phase_folding.fold c in
  (* H is a barrier: nothing may fold *)
  Alcotest.(check int) "kept" 3 (Circuit.length folded)

let test_fold_diagonal_cliffords () =
  (* S · S on the same wire = Z: folds to one Rz(π) *)
  let c = Circuit.create 1 [ Gate.G1 (Gate.S, 0); Gate.G1 (Gate.S, 0) ] in
  match Circuit.gates (Phase_folding.fold c) with
  | [ Gate.G1 (Gate.Rz t, 0) ] ->
    Alcotest.(check (float 1e-9)) "π" (4.0 *. Float.atan 1.0) t
  | _ -> Alcotest.fail "expected a single merged rotation"

let prop_fold_preserves_unitary =
  Helpers.qtest ~count:120 "phase folding preserves the unitary"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 25) (random_gate_gen 3))
    (fun gates ->
      let c = Circuit.create 3 gates in
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.circuit_unitary c)
        (Unitary.circuit_unitary (Phase_folding.fold c)))

let prop_fold_never_grows =
  Helpers.qtest ~count:100 "phase folding never increases gate count"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 25) (random_gate_gen 4))
    (fun gates ->
      let c = Circuit.create 4 gates in
      Circuit.length (Phase_folding.fold c) <= Circuit.length c
      && Circuit.count_2q (Phase_folding.fold c) = Circuit.count_2q c)

let prop_fold_with_x_negation =
  Helpers.qtest ~count:120 "folding tracks X negation correctly"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 20)
       (QCheck2.Gen.oneof
          [
            QCheck2.Gen.map (fun q -> Gate.G1 (Gate.X, q)) (QCheck2.Gen.int_range 0 2);
            QCheck2.Gen.map (fun q -> Gate.G1 (Gate.Y, q)) (QCheck2.Gen.int_range 0 2);
            QCheck2.Gen.map (fun (q, t) -> rz t q)
              (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 2) Helpers.angle_gen);
            QCheck2.Gen.map (fun q -> Gate.G1 (Gate.T, q)) (QCheck2.Gen.int_range 0 2);
            QCheck2.Gen.map
              (fun (a, d) ->
                let b = (a + 1 + d) mod 3 in
                cnot a b)
              (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 2) (QCheck2.Gen.int_range 0 1));
          ]))
    (fun gates ->
      let c = Circuit.create 3 gates in
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.circuit_unitary c)
        (Unitary.circuit_unitary (Phase_folding.fold c)))

let () =
  Alcotest.run "peephole"
    [
      ( "unit",
        [
          Alcotest.test_case "H·H" `Quick test_hh_cancels;
          Alcotest.test_case "CNOT·CNOT" `Quick test_cnot_cnot_cancels;
          Alcotest.test_case "reversed CNOT kept" `Quick
            test_cnot_reversed_not_cancelled;
          Alcotest.test_case "Rz merge" `Quick test_rz_merge;
          Alcotest.test_case "Rz inverse" `Quick test_rz_inverse_vanishes;
          Alcotest.test_case "S·S†" `Quick test_s_sdg_merge_to_nothing;
          Alcotest.test_case "Rz through control" `Quick
            test_rz_commutes_through_cnot_control;
          Alcotest.test_case "Rx through target" `Quick
            test_rx_commutes_through_cnot_target;
          Alcotest.test_case "CNOT through diagonal" `Quick
            test_cnot_cancel_through_diagonal;
          Alcotest.test_case "CNOT blocked by H" `Quick test_cnot_blocked_by_h;
          Alcotest.test_case "shared-control commute" `Quick
            test_cnot_shared_control_commute;
          Alcotest.test_case "Cliff2 cancel" `Quick test_cliff2_cancel;
          Alcotest.test_case "Swap cancel" `Quick test_swap_cancel;
          Alcotest.test_case "Rpp merge" `Quick test_rpp_merge;
          Alcotest.test_case "zero rotation" `Quick test_zero_rotation_dropped;
          Alcotest.test_case "angle normalization" `Quick test_normalize_angle;
        ] );
      ("props", [ prop_preserves_unitary; prop_never_grows; prop_idempotent ]);
      ( "phase-folding",
        [
          Alcotest.test_case "cnot sandwich" `Quick test_fold_through_cnot_sandwich;
          Alcotest.test_case "inverse pair" `Quick test_fold_cancels_inverse_pair;
          Alcotest.test_case "barriers" `Quick test_fold_respects_barriers;
          Alcotest.test_case "diagonal cliffords" `Quick test_fold_diagonal_cliffords;
          prop_fold_preserves_unitary;
          prop_fold_never_grows;
          prop_fold_with_x_negation;
        ] );
    ]
