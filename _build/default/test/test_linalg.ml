module Cmat = Helpers.Cmat
module Unitary = Helpers.Unitary
module Herm = Phoenix_linalg.Herm
module Fidelity = Helpers.Fidelity
module Pauli = Helpers.Pauli
module Pauli_string = Helpers.Pauli_string
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Prng = Phoenix_util.Prng

let ci = { Complex.re = 0.0; im = 1.0 }

let test_identity_mul () =
  let id = Cmat.identity 4 in
  let m = Cmat.scale ci (Cmat.identity 4) in
  Alcotest.(check bool) "I·M = M" true (Cmat.is_close (Cmat.mul id m) m)

let test_mul_known () =
  (* X · Z = -iY *)
  let x = Unitary.pauli_1q Pauli.X and z = Unitary.pauli_1q Pauli.Z in
  let y = Unitary.pauli_1q Pauli.Y in
  let minus_i = { Complex.re = 0.0; im = -1.0 } in
  Alcotest.(check bool) "XZ = -iY" true
    (Cmat.is_close (Cmat.mul x z) (Cmat.scale minus_i y))

let test_kron_dims () =
  let a = Cmat.identity 2 and b = Cmat.identity 3 in
  let k = Cmat.kron a b in
  Alcotest.(check (pair int int)) "dims" (6, 6) (Cmat.dims k)

let test_dagger () =
  let s = Unitary.one_q Gate.S in
  let prod = Cmat.mul s (Cmat.dagger s) in
  Alcotest.(check bool) "S·S† = I" true (Cmat.is_close prod (Cmat.identity 2))

let test_trace () =
  let z = Unitary.pauli_1q Pauli.Z in
  let t = Cmat.trace z in
  Alcotest.(check (float 1e-12)) "tr Z = 0" 0.0 (Complex.norm t);
  Alcotest.(check (float 1e-12)) "tr I = 2" 2.0
    (Complex.norm (Cmat.trace (Cmat.identity 2)))

let test_equal_up_to_phase () =
  let h = Unitary.one_q Gate.H in
  let h' = Cmat.scale ci h in
  Alcotest.(check bool) "phase-equal" true (Cmat.equal_up_to_phase h h');
  Alcotest.(check bool) "not equal to X" false
    (Cmat.equal_up_to_phase h (Unitary.pauli_1q Pauli.X))

let test_gadget_zz () =
  (* exp(-iθ/2 Z⊗Z) is diagonal with phases e^{∓iθ/2}. *)
  let theta = 0.8 in
  let g = Unitary.gadget_matrix (Pauli_string.of_string "ZZ") theta in
  let d0 = Cmat.get g 0 0 in
  Alcotest.(check (float 1e-12)) "cos" (cos (theta /. 2.0)) d0.Complex.re;
  Alcotest.(check (float 1e-12)) "sin" (-.sin (theta /. 2.0)) d0.Complex.im;
  let d1 = Cmat.get g 1 1 in
  Alcotest.(check (float 1e-12)) "conj phase" (sin (theta /. 2.0)) d1.Complex.im

let test_cnot_matrix () =
  let c = Circuit.create 2 [ Gate.Cnot (0, 1) ] in
  let u = Unitary.circuit_unitary c in
  (* |10> -> |11> *)
  Alcotest.(check (float 1e-12)) "flip" 1.0 (Complex.norm (Cmat.get u 3 2));
  Alcotest.(check (float 1e-12)) "no flip" 1.0 (Complex.norm (Cmat.get u 0 0))

let test_cnot_ladder_equals_zz_gadget () =
  (* CNOT · Rz(θ)_target · CNOT = exp(-iθ/2 Z⊗Z) *)
  let theta = 1.1 in
  let c =
    Circuit.create 2
      [ Gate.Cnot (0, 1); Gate.G1 (Gate.Rz theta, 1); Gate.Cnot (0, 1) ]
  in
  Helpers.check_equiv "ladder = gadget"
    (Unitary.circuit_unitary c)
    (Unitary.gadget_matrix (Pauli_string.of_string "ZZ") theta)

let test_apply_gate_matches_kron () =
  (* H on qubit 1 of 3 = I ⊗ H ⊗ I *)
  let u = Cmat.identity 8 in
  Unitary.apply_gate u 3 (Gate.G1 (Gate.H, 1));
  let expected =
    Cmat.kron (Cmat.kron (Cmat.identity 2) (Unitary.one_q Gate.H)) (Cmat.identity 2)
  in
  Alcotest.(check bool) "embedding" true (Cmat.is_close u expected)

let test_apply_2q_nonadjacent () =
  (* CNOT with control 2, target 0 on 3 qubits, vs permuted construction *)
  let u = Cmat.identity 8 in
  Unitary.apply_gate u 3 (Gate.Cnot (2, 0));
  (* check action on basis states: bit2 (lsb) controls bit0 (msb) *)
  (* |001> (idx 1) -> |101> (idx 5) *)
  Alcotest.(check (float 1e-12)) "flip msb" 1.0 (Complex.norm (Cmat.get u 5 1));
  Alcotest.(check (float 1e-12)) "identity on 0" 1.0 (Complex.norm (Cmat.get u 0 0))

let random_hermitian rng n =
  let m = Cmat.create n n in
  for i = 0 to n - 1 do
    Cmat.set m i i { Complex.re = Prng.uniform rng (-1.0) 1.0; im = 0.0 };
    for j = i + 1 to n - 1 do
      let re = Prng.uniform rng (-1.0) 1.0 and im = Prng.uniform rng (-1.0) 1.0 in
      Cmat.set m i j { Complex.re = re; im };
      Cmat.set m j i { Complex.re = re; im = -.im }
    done
  done;
  m

let test_jacobi_reconstruction () =
  let rng = Prng.create 2024 in
  List.iter
    (fun n ->
      let h = random_hermitian rng n in
      let d = Herm.eig h in
      let v = d.Herm.eigenvectors in
      let diag = Cmat.create n n in
      Array.iteri (fun i l -> Cmat.set diag i i { Complex.re = l; im = 0.0 })
        d.Herm.eigenvalues;
      let rebuilt = Cmat.mul (Cmat.mul v diag) (Cmat.dagger v) in
      Alcotest.(check bool)
        (Printf.sprintf "V·D·V† = H (n=%d)" n)
        true
        (Cmat.is_close ~tol:1e-8 rebuilt h);
      let vtv = Cmat.mul (Cmat.dagger v) v in
      Alcotest.(check bool)
        (Printf.sprintf "V unitary (n=%d)" n)
        true
        (Cmat.is_close ~tol:1e-8 vtv (Cmat.identity n)))
    [ 2; 4; 8; 16 ]

let test_evolution_unitary () =
  let rng = Prng.create 7 in
  let h = random_hermitian rng 8 in
  let u = Herm.expm_hermitian_times h 0.7 in
  Alcotest.(check bool) "U†U = I" true
    (Cmat.is_close ~tol:1e-8 (Cmat.mul (Cmat.dagger u) u) (Cmat.identity 8))

let test_evolution_of_pauli () =
  (* exp(-i·(θ/2)·P) computed spectrally must equal the closed form. *)
  let p = Pauli_string.of_string "XY" in
  let theta = 0.9 in
  let h = Unitary.hamiltonian_matrix 2 [ p, 1.0 ] in
  let u = Herm.expm_hermitian_times h (theta /. 2.0) in
  Alcotest.(check bool) "matches gadget" true
    (Cmat.is_close ~tol:1e-9 u (Unitary.gadget_matrix p theta))

let test_infidelity_zero_for_same () =
  let u = Unitary.gadget_matrix (Pauli_string.of_string "ZZ") 0.4 in
  Alcotest.(check (float 1e-12)) "self" 0.0 (Fidelity.infidelity u u)

let test_infidelity_phase_insensitive () =
  let u = Unitary.gadget_matrix (Pauli_string.of_string "XX") 0.4 in
  let v = Cmat.scale ci u in
  Alcotest.(check (float 1e-12)) "phase" 0.0 (Fidelity.infidelity u v)

let test_infidelity_positive_for_different () =
  let u = Unitary.gadget_matrix (Pauli_string.of_string "XX") 0.4 in
  let v = Unitary.gadget_matrix (Pauli_string.of_string "XX") 0.9 in
  Alcotest.(check bool) "positive" true (Fidelity.infidelity u v > 1e-4)

let test_trotter_error_scales () =
  (* Two non-commuting terms: first-order Trotter error shrinks as the
     coefficients shrink — the mechanism behind Fig. 8. *)
  let terms scale =
    [
      Pauli_string.of_string "XI", 0.3 *. scale;
      Pauli_string.of_string "ZZ", 0.4 *. scale;
    ]
  in
  let infid scale =
    let ts = terms scale in
    let h = Unitary.hamiltonian_matrix 2 ts in
    let exact = Herm.expm_hermitian_times h 1.0 in
    let trotter =
      Unitary.program_unitary 2 (List.map (fun (p, c) -> p, 2.0 *. c) ts)
    in
    Fidelity.infidelity exact trotter
  in
  let e1 = infid 1.0 and e01 = infid 0.1 in
  Alcotest.(check bool) "error shrinks" true (e01 < e1 /. 10.0)

let () =
  Alcotest.run "linalg"
    [
      ( "cmat",
        [
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "XZ = -iY" `Quick test_mul_known;
          Alcotest.test_case "kron dims" `Quick test_kron_dims;
          Alcotest.test_case "dagger" `Quick test_dagger;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "phase equality" `Quick test_equal_up_to_phase;
        ] );
      ( "unitary",
        [
          Alcotest.test_case "gadget ZZ" `Quick test_gadget_zz;
          Alcotest.test_case "CNOT matrix" `Quick test_cnot_matrix;
          Alcotest.test_case "ladder = gadget" `Quick
            test_cnot_ladder_equals_zz_gadget;
          Alcotest.test_case "1q embedding" `Quick test_apply_gate_matches_kron;
          Alcotest.test_case "2q non-adjacent" `Quick test_apply_2q_nonadjacent;
        ] );
      ( "herm",
        [
          Alcotest.test_case "jacobi reconstruction" `Quick
            test_jacobi_reconstruction;
          Alcotest.test_case "evolution unitary" `Quick test_evolution_unitary;
          Alcotest.test_case "evolution of pauli" `Quick test_evolution_of_pauli;
        ] );
      ( "fidelity",
        [
          Alcotest.test_case "zero for same" `Quick test_infidelity_zero_for_same;
          Alcotest.test_case "phase insensitive" `Quick
            test_infidelity_phase_insensitive;
          Alcotest.test_case "positive for different" `Quick
            test_infidelity_positive_for_different;
          Alcotest.test_case "trotter error scaling" `Quick
            test_trotter_error_scales;
        ] );
    ]
