module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Clifford2q = Helpers.Clifford2q
module Pauli = Helpers.Pauli
module Pauli_term = Phoenix_pauli.Pauli_term
module Pauli_string = Helpers.Pauli_string
module Cmat = Helpers.Cmat
module Unitary = Helpers.Unitary

let all_one_q =
  [
    Gate.H; Gate.S; Gate.Sdg; Gate.X; Gate.Y; Gate.Z; Gate.T; Gate.Tdg;
    Gate.Rx 0.7; Gate.Ry (-0.3); Gate.Rz 1.1;
  ]

let test_dagger_one_q_inverse () =
  List.iter
    (fun k ->
      let u = Unitary.one_q k in
      let ud =
        match Gate.dagger (Gate.G1 (k, 0)) with
        | Gate.G1 (k', _) -> Unitary.one_q k'
        | _ -> Alcotest.fail "dagger changed arity"
      in
      Alcotest.(check bool)
        (Gate.to_string (Gate.G1 (k, 0)) ^ " inverse")
        true
        (Cmat.is_close (Cmat.mul u ud) (Cmat.identity 2)))
    all_one_q

let test_dagger_two_q_inverse () =
  let gates =
    [
      Gate.Cnot (0, 1);
      Gate.Swap (0, 1);
      Gate.Cliff2 (Clifford2q.make Clifford2q.CYZ 0 1);
      Gate.Rpp { p0 = Pauli.X; p1 = Pauli.Z; a = 0; b = 1; theta = 0.9 };
      Gate.Su4
        {
          a = 0;
          b = 1;
          parts = [ Gate.Cnot (0, 1); Gate.G1 (Gate.Rz 0.4, 1); Gate.Cnot (1, 0) ];
        };
    ]
  in
  List.iter
    (fun g ->
      let u = Unitary.gate_4x4 g and ud = Unitary.gate_4x4 (Gate.dagger g) in
      Alcotest.(check bool)
        (Gate.to_string g ^ " inverse")
        true
        (Cmat.is_close ~tol:1e-9 (Cmat.mul u ud) (Cmat.identity 4)))
    gates

let test_qubits_and_pair () =
  Alcotest.(check (list int)) "1q" [ 3 ] (Gate.qubits (Gate.G1 (Gate.H, 3)));
  Alcotest.(check (list int)) "2q" [ 2; 0 ] (Gate.qubits (Gate.Cnot (2, 0)));
  Alcotest.(check (option (pair int int))) "pair normalized" (Some (0, 2))
    (Gate.pair (Gate.Cnot (2, 0)));
  Alcotest.(check (option (pair int int))) "1q no pair" None
    (Gate.pair (Gate.G1 (Gate.X, 1)))

let test_clifford2q_decompose_matches_matrix () =
  List.iter
    (fun kind ->
      let c = Clifford2q.make kind 0 1 in
      let via_gates =
        Unitary.circuit_unitary
          (Circuit.create 2 (List.map Gate.of_clifford_basis (Clifford2q.decompose c)))
      in
      let direct = Unitary.clifford2q_4x4 kind in
      Alcotest.(check bool)
        (Clifford2q.kind_to_string kind)
        true
        (Cmat.equal_up_to_phase ~tol:1e-9 via_gates direct))
    Clifford2q.all_kinds

let test_clifford2q_hermitian () =
  List.iter
    (fun kind ->
      let u = Unitary.clifford2q_4x4 kind in
      Alcotest.(check bool)
        (Clifford2q.kind_to_string kind ^ " hermitian")
        true
        (Cmat.is_close u (Cmat.dagger u));
      Alcotest.(check bool)
        (Clifford2q.kind_to_string kind ^ " involutive")
        true
        (Cmat.is_close (Cmat.mul u u) (Cmat.identity 4)))
    Clifford2q.all_kinds

let test_kind_of_sigmas_total () =
  let nontrivial = [ Pauli.X; Pauli.Y; Pauli.Z ] in
  List.iter
    (fun s0 ->
      List.iter
        (fun s1 ->
          match Clifford2q.kind_of_sigmas s0 s1 with
          | Some (kind, swapped) ->
            let expected_s0, expected_s1 = Clifford2q.kind_sigmas kind in
            let got = if swapped then expected_s1, expected_s0 else expected_s0, expected_s1 in
            Alcotest.(check bool) "roundtrip" true (got = (s0, s1))
          | None -> Alcotest.fail "nontrivial pair must resolve")
        nontrivial)
    nontrivial;
  Alcotest.(check bool) "identity is None" true
    (Clifford2q.kind_of_sigmas Pauli.I Pauli.X = None)

let test_equal_gate_asymmetric () =
  let a = Clifford2q.make Clifford2q.CXY 0 1 in
  let b = Clifford2q.make Clifford2q.CXY 1 0 in
  Alcotest.(check bool) "asymmetric not swap-equal" false
    (Clifford2q.equal_gate a b);
  Alcotest.(check bool) "self equal" true (Clifford2q.equal_gate a a)

let test_rotation_of_pauli () =
  (match Gate.rotation_of_pauli Pauli.Y 2 0.4 with
  | Gate.G1 (Gate.Ry t, 2) -> Alcotest.(check (float 1e-12)) "angle" 0.4 t
  | _ -> Alcotest.fail "expected Ry");
  Alcotest.check_raises "identity" (Invalid_argument "Gate.rotation_of_pauli: identity")
    (fun () -> ignore (Gate.rotation_of_pauli Pauli.I 0 0.1))

let test_pauli_term () =
  let t = Pauli_term.make (Pauli_string.of_string "XIZ") 0.25 in
  Alcotest.(check int) "qubits" 3 (Pauli_term.num_qubits t);
  Alcotest.(check int) "weight" 2 (Pauli_term.weight t);
  let s = Pauli_term.scale 2.0 t in
  Alcotest.(check (float 1e-12)) "scaled" 0.5 s.Pauli_term.coeff;
  Alcotest.(check string) "support key" "101" (Pauli_term.support_key t)

let test_with_num_qubits () =
  let c = Circuit.create 2 [ Gate.Cnot (0, 1) ] in
  let c' = Circuit.with_num_qubits 5 c in
  Alcotest.(check int) "widened" 5 (Circuit.num_qubits c');
  Alcotest.check_raises "cannot shrink"
    (Invalid_argument "Circuit.with_num_qubits: cannot shrink") (fun () ->
      ignore (Circuit.with_num_qubits 1 c))

let test_molecules_find () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Phoenix_ham.Molecules.find "H3O_plus"))

let test_uccsd_invalid_specs () =
  let bad = { Phoenix_ham.Uccsd.name = "bad"; n_spatial = 2; n_electrons = 3; frozen = 0 } in
  Alcotest.check_raises "open shell"
    (Invalid_argument "Uccsd: open-shell molecules unsupported") (fun () ->
      ignore (Phoenix_ham.Uccsd.num_active_electrons bad))

let () =
  Alcotest.run "gate"
    [
      ( "gates",
        [
          Alcotest.test_case "1q dagger inverse" `Quick test_dagger_one_q_inverse;
          Alcotest.test_case "2q dagger inverse" `Quick test_dagger_two_q_inverse;
          Alcotest.test_case "qubits/pair" `Quick test_qubits_and_pair;
          Alcotest.test_case "rotation_of_pauli" `Quick test_rotation_of_pauli;
        ] );
      ( "clifford2q",
        [
          Alcotest.test_case "decompose = matrix" `Quick
            test_clifford2q_decompose_matches_matrix;
          Alcotest.test_case "hermitian involutive" `Quick test_clifford2q_hermitian;
          Alcotest.test_case "kind_of_sigmas total" `Quick test_kind_of_sigmas_total;
          Alcotest.test_case "equal_gate" `Quick test_equal_gate_asymmetric;
        ] );
      ( "misc",
        [
          Alcotest.test_case "pauli term" `Quick test_pauli_term;
          Alcotest.test_case "with_num_qubits" `Quick test_with_num_qubits;
          Alcotest.test_case "molecules find" `Quick test_molecules_find;
          Alcotest.test_case "uccsd invalid" `Quick test_uccsd_invalid_specs;
        ] );
    ]
