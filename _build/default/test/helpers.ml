(* Shared test utilities: qcheck generators for Pauli data and unitary
   comparison shortcuts. *)

module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Clifford2q = Phoenix_pauli.Clifford2q
module Bsf = Phoenix_pauli.Bsf
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Cmat = Phoenix_linalg.Cmat
module Unitary = Phoenix_linalg.Unitary
module Fidelity = Phoenix_linalg.Fidelity

let pauli_gen = QCheck2.Gen.oneofl [ Pauli.I; Pauli.X; Pauli.Y; Pauli.Z ]

let pauli_string_gen n =
  QCheck2.Gen.map Pauli_string.of_list (QCheck2.Gen.list_size (QCheck2.Gen.return n) pauli_gen)

(* Non-identity Pauli strings only. *)
let nontrivial_pauli_string_gen n =
  QCheck2.Gen.map
    (fun (p, q, rest) ->
      let s = Pauli_string.of_list rest in
      if Pauli_string.is_identity s then Pauli_string.set s q p else s)
    (QCheck2.Gen.triple
       (QCheck2.Gen.oneofl [ Pauli.X; Pauli.Y; Pauli.Z ])
       (QCheck2.Gen.int_range 0 (n - 1))
       (QCheck2.Gen.list_size (QCheck2.Gen.return n) pauli_gen))

let clifford2q_gen n =
  let open QCheck2.Gen in
  let* kind = oneofl Clifford2q.all_kinds in
  let* a = int_range 0 (n - 1) in
  let* b = int_range 0 (n - 2) in
  let b = if b >= a then b + 1 else b in
  return (Clifford2q.make kind a b)

let angle_gen = QCheck2.Gen.float_range (-3.0) 3.0

let terms_gen n max_terms =
  let open QCheck2.Gen in
  let* len = int_range 1 max_terms in
  list_size (return len) (pair (nontrivial_pauli_string_gen n) angle_gen)

(* Dense unitary of a Clifford2q gate embedded in n qubits. *)
let clifford2q_unitary n (c : Clifford2q.t) =
  let u = Cmat.identity (1 lsl n) in
  Unitary.apply_gate u n (Gate.Cliff2 c);
  u

let unitary_equiv ?(tol = 1e-8) u v = Fidelity.infidelity u v < tol

let check_equiv ?tol msg u v =
  Alcotest.(check bool) msg true (unitary_equiv ?tol u v)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
