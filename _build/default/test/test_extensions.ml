(* Extensions beyond the paper's core: noise projection, qDRIFT,
   circuit drawing, lattice spin models, and the fidelity experiment. *)

module Noise = Phoenix_circuit.Noise
module Draw = Phoenix_circuit.Draw
module Trotter = Phoenix_ham.Trotter
module Spin_models = Phoenix_ham.Spin_models
module Hamiltonian = Phoenix_ham.Hamiltonian
module Circuit = Helpers.Circuit
module Gate = Helpers.Gate

(* --- noise --- *)

let test_noise_monotone_in_gates () =
  let small = Circuit.create 2 [ Gate.Cnot (0, 1) ] in
  let large = Circuit.create 2 [ Gate.Cnot (0, 1); Gate.Cnot (0, 1); Gate.Cnot (0, 1) ] in
  Alcotest.(check bool) "more gates, lower fidelity" true
    (Noise.success_probability large < Noise.success_probability small);
  Alcotest.(check bool) "within (0,1]" true
    (Noise.success_probability small > 0.0
    && Noise.success_probability small <= 1.0)

let test_noise_counts_cnot_equivalents () =
  let swap = Circuit.create 2 [ Gate.Swap (0, 1) ] in
  let one = Circuit.create 2 [ Gate.Cnot (0, 1) ] in
  Alcotest.(check bool) "swap (3 CNOTs) worse than 1 CNOT" true
    (Noise.success_probability swap < Noise.success_probability one)

let test_log_infidelity_additive () =
  let c1 = Circuit.create 2 [ Gate.Cnot (0, 1) ] in
  let c2 = Circuit.create 2 [ Gate.Cnot (0, 1); Gate.Cnot (0, 1) ] in
  (* two sequential CNOTs on the same pair double the gate charge; depth
     also doubles, so log-infidelity at least doubles *)
  Alcotest.(check bool) "superadditive" true
    (Noise.log_infidelity c2 >= 2.0 *. Noise.log_infidelity c1 -. 1e-12)

let test_noise_models_ordering () =
  let c = Circuit.create 2 [ Gate.Cnot (0, 1) ] in
  Alcotest.(check bool) "ion trap cleaner per gate" true
    (Noise.success_probability ~model:Noise.ion_trap_like c
    > Noise.success_probability ~model:Noise.ibm_like c)

(* --- qDRIFT --- *)

let tfim = Spin_models.tfim_chain ~j:1.0 ~h:0.7 3

let test_qdrift_structure () =
  let gadgets = Trotter.qdrift ~seed:5 ~samples:50 tfim in
  Alcotest.(check int) "sample count" 50 (List.length gadgets);
  let lam = Trotter.lambda tfim in
  let expected = 2.0 *. lam /. 50.0 in
  List.iter
    (fun (_, theta) ->
      Alcotest.(check (float 1e-12)) "uniform |angle|" expected (Float.abs theta))
    gadgets

let test_qdrift_deterministic () =
  let a = Trotter.qdrift ~seed:9 ~samples:30 tfim in
  let b = Trotter.qdrift ~seed:9 ~samples:30 tfim in
  Alcotest.(check bool) "same stream" true (a = b)

let test_qdrift_frequencies () =
  (* term with the largest |h| must be sampled most often *)
  let h =
    Hamiltonian.make 2
      [
        Phoenix_pauli.Pauli_term.make (Helpers.Pauli_string.of_string "ZZ") 10.0;
        Phoenix_pauli.Pauli_term.make (Helpers.Pauli_string.of_string "XI") 0.1;
      ]
  in
  let gadgets = Trotter.qdrift ~seed:3 ~samples:500 h in
  let zz_count =
    List.length
      (List.filter
         (fun (p, _) -> Helpers.Pauli_string.to_string p = "ZZ")
         gadgets)
  in
  Alcotest.(check bool) "dominant term dominates" true (zz_count > 450)

let test_qdrift_converges () =
  (* more samples → closer to the exact evolution *)
  let n = 3 in
  let to_terms ham =
    List.map
      (fun (t : Phoenix_pauli.Pauli_term.t) ->
        t.Phoenix_pauli.Pauli_term.pauli, t.Phoenix_pauli.Pauli_term.coeff)
      (Hamiltonian.terms ham)
  in
  let exact =
    Phoenix_linalg.Herm.expm_hermitian_times
      (Phoenix_linalg.Unitary.hamiltonian_matrix n (to_terms tfim))
      1.0
  in
  let err samples =
    let gadgets = Trotter.qdrift ~seed:17 ~samples tfim in
    Phoenix_linalg.Fidelity.infidelity exact
      (Phoenix_linalg.Unitary.program_unitary n gadgets)
  in
  Alcotest.(check bool) "400 samples better than 20" true (err 400 < err 20)

(* --- drawing --- *)

let test_draw_structure () =
  let c =
    Circuit.create 3
      [ Gate.G1 (Gate.H, 0); Gate.Cnot (0, 2); Gate.G1 (Gate.Rz 0.5, 1) ]
  in
  let text = Draw.to_string c in
  let lines = String.split_on_char '\n' text in
  (* 3 qubit rows + 2 connector rows + trailing newline *)
  Alcotest.(check int) "line count" 6 (List.length lines);
  Alcotest.(check bool) "has control dot" true
    (List.exists (fun l -> String.length l > 0 &&
       (let rec has i = i < String.length l - 2 &&
          (String.sub l i 3 = "\xe2\x97\x8f" || has (i + 1)) in has 0)) lines)

let test_draw_handles_all_gate_kinds () =
  let c =
    Circuit.create 3
      [
        Gate.G1 (Gate.Sdg, 0);
        Gate.Swap (0, 1);
        Gate.Cliff2 (Phoenix_pauli.Clifford2q.make Phoenix_pauli.Clifford2q.CXY 1 2);
        Gate.Rpp { p0 = Helpers.Pauli.X; p1 = Helpers.Pauli.Y; a = 0; b = 2; theta = 0.3 };
        Gate.Su4 { a = 0; b = 1; parts = [ Gate.Cnot (0, 1) ] };
      ]
  in
  let text = Draw.to_string c in
  Alcotest.(check bool) "nonempty" true (String.length text > 0)

(* --- lattice models --- *)

let test_lattice_term_counts () =
  (* 2×3 grid: 2·2 + 3·1 = 7 bonds *)
  let h = Spin_models.heisenberg_lattice ~rows:2 ~cols:3 () in
  Alcotest.(check int) "qubits" 6 (Hamiltonian.num_qubits h);
  Alcotest.(check int) "terms" (7 * 3) (Hamiltonian.num_terms h);
  let t = Spin_models.tfim_lattice ~rows:2 ~cols:2 () in
  Alcotest.(check int) "tfim terms" (4 + 4) (Hamiltonian.num_terms t)

let test_xxz_delta () =
  let h = Spin_models.xxz_chain ~j:1.0 ~delta:0.0 3 in
  (* Δ = 0 drops the ZZ terms *)
  Alcotest.(check int) "terms" 4 (Hamiltonian.num_terms h)

let test_random_field_heisenberg () =
  let h = Spin_models.random_field_heisenberg ~seed:3 ~w:1.0 4 in
  (* 3 bonds × 3 + 4 fields *)
  Alcotest.(check int) "terms" 13 (Hamiltonian.num_terms h);
  let h2 = Spin_models.random_field_heisenberg ~seed:3 ~w:1.0 4 in
  Alcotest.(check bool) "deterministic" true
    (Hamiltonian.to_lines h = Hamiltonian.to_lines h2)

(* --- fidelity experiment --- *)

let test_fidelity_experiment_phoenix_wins () =
  let rows = Phoenix_experiments.Fidelity.run ~labels:[ "LiH_frz_JW" ] () in
  match rows with
  | [ row ] ->
    let phx =
      List.assoc Phoenix_experiments.Drivers.Phoenix_c
        row.Phoenix_experiments.Fidelity.per_compiler
    in
    List.iter
      (fun (c, p) ->
        if c <> Phoenix_experiments.Drivers.Phoenix_c then
          Alcotest.(check bool)
            (Phoenix_experiments.Drivers.compiler_name c)
            true (phx >= p))
      row.Phoenix_experiments.Fidelity.per_compiler
  | _ -> Alcotest.fail "one row expected"

let () =
  Alcotest.run "extensions"
    [
      ( "noise",
        [
          Alcotest.test_case "monotone" `Quick test_noise_monotone_in_gates;
          Alcotest.test_case "cnot equivalents" `Quick
            test_noise_counts_cnot_equivalents;
          Alcotest.test_case "log additive" `Quick test_log_infidelity_additive;
          Alcotest.test_case "model ordering" `Quick test_noise_models_ordering;
        ] );
      ( "qdrift",
        [
          Alcotest.test_case "structure" `Quick test_qdrift_structure;
          Alcotest.test_case "deterministic" `Quick test_qdrift_deterministic;
          Alcotest.test_case "frequencies" `Quick test_qdrift_frequencies;
          Alcotest.test_case "converges" `Quick test_qdrift_converges;
        ] );
      ( "draw",
        [
          Alcotest.test_case "structure" `Quick test_draw_structure;
          Alcotest.test_case "all gate kinds" `Quick
            test_draw_handles_all_gate_kinds;
        ] );
      ( "models",
        [
          Alcotest.test_case "lattice counts" `Quick test_lattice_term_counts;
          Alcotest.test_case "xxz delta" `Quick test_xxz_delta;
          Alcotest.test_case "random field" `Quick test_random_field_heisenberg;
        ] );
      ( "fidelity",
        [
          Alcotest.test_case "phoenix wins" `Quick
            test_fidelity_experiment_phoenix_wins;
        ] );
    ]
