module Topology = Phoenix_topology.Topology

let test_line () =
  let t = Topology.line 5 in
  Alcotest.(check int) "qubits" 5 (Topology.num_qubits t);
  Alcotest.(check int) "edges" 4 (List.length (Topology.edges t));
  Alcotest.(check bool) "adjacent" true (Topology.are_adjacent t 1 2);
  Alcotest.(check bool) "not adjacent" false (Topology.are_adjacent t 0 4);
  Alcotest.(check int) "distance" 4 (Topology.distance t 0 4);
  Alcotest.(check bool) "connected" true (Topology.is_connected t)

let test_ring () =
  let t = Topology.ring 6 in
  Alcotest.(check int) "edges" 6 (List.length (Topology.edges t));
  Alcotest.(check int) "wraparound distance" 1 (Topology.distance t 0 5);
  Alcotest.(check int) "opposite" 3 (Topology.distance t 0 3)

let test_all_to_all () =
  let t = Topology.all_to_all 5 in
  Alcotest.(check int) "edges" 10 (List.length (Topology.edges t));
  Alcotest.(check int) "distance" 1 (Topology.distance t 0 4)

let test_grid () =
  let t = Topology.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "qubits" 12 (Topology.num_qubits t);
  (* edges: 3·3 horizontal + 2·4 vertical = 17 *)
  Alcotest.(check int) "edges" 17 (List.length (Topology.edges t));
  Alcotest.(check int) "manhattan distance" 5 (Topology.distance t 0 11)

let test_degree_bound_heavy_hex () =
  (* heavy-hex: row qubits have degree ≤ 3, bridges exactly 2 *)
  let t = Topology.ibm_manhattan () in
  Alcotest.(check int) "qubits" 64 (Topology.num_qubits t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  let max_degree =
    List.fold_left
      (fun acc q -> max acc (List.length (Topology.neighbors t q)))
      0
      (List.init (Topology.num_qubits t) (fun i -> i))
  in
  Alcotest.(check bool) "max degree ≤ 3" true (max_degree <= 3)

let test_heavy_hex_small () =
  let t = Topology.heavy_hex ~widths:[ 5; 5 ] in
  (* 10 row qubits + bridges at columns 0 and 4 → 12 qubits *)
  Alcotest.(check int) "qubits" 12 (Topology.num_qubits t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t)

let test_invalid () =
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.make: self-loop")
    (fun () -> ignore (Topology.make 3 [ 1, 1 ]));
  Alcotest.check_raises "range" (Invalid_argument "Topology.make: qubit out of range")
    (fun () -> ignore (Topology.make 3 [ 0, 3 ]))

let test_distance_symmetric () =
  let t = Topology.ibm_manhattan () in
  let n = Topology.num_qubits t in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Topology.distance t i j <> Topology.distance t j i then ok := false
    done
  done;
  Alcotest.(check bool) "symmetric" true !ok

let test_distance_triangle () =
  let t = Topology.grid ~rows:3 ~cols:3 in
  let n = Topology.num_qubits t in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        if
          Topology.distance t i j
          > Topology.distance t i k + Topology.distance t k j
        then ok := false
      done
    done
  done;
  Alcotest.(check bool) "triangle inequality" true !ok

let () =
  Alcotest.run "topology"
    [
      ( "unit",
        [
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "all-to-all" `Quick test_all_to_all;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "manhattan heavy-hex" `Quick
            test_degree_bound_heavy_hex;
          Alcotest.test_case "small heavy-hex" `Quick test_heavy_hex_small;
          Alcotest.test_case "invalid inputs" `Quick test_invalid;
          Alcotest.test_case "distance symmetric" `Quick test_distance_symmetric;
          Alcotest.test_case "triangle inequality" `Quick test_distance_triangle;
        ] );
    ]
