module Stab = Phoenix_circuit.Stabilizer
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Pauli_string = Helpers.Pauli_string
module Sv = Phoenix_linalg.Statevector
module Prng = Phoenix_util.Prng

let h q = Gate.G1 (Gate.H, q)
let s q = Gate.G1 (Gate.S, q)
let x q = Gate.G1 (Gate.X, q)
let cnot a b = Gate.Cnot (a, b)

let ghz n =
  Circuit.create n (h 0 :: List.init (n - 1) (fun i -> cnot i (i + 1)))

let test_initial_state () =
  let t = Stab.make 3 in
  Alcotest.(check int) "⟨Z0⟩" 1 (Stab.expectation_z t 0);
  Alcotest.(check int) "measure 0" 0 (Stab.measure t 1);
  Alcotest.(check int) "⟨ZZZ⟩" 1
    (Stab.expectation_pauli t (Pauli_string.of_string "ZZZ"))

let test_x_flips () =
  let t = Stab.make 2 in
  Stab.apply_x t 0;
  Alcotest.(check int) "⟨Z0⟩ = -1" (-1) (Stab.expectation_z t 0);
  Alcotest.(check int) "measure 1" 1 (Stab.measure t 0)

let test_ghz_stabilizers () =
  let t = Stab.make 3 in
  Stab.run_circuit t (ghz 3);
  let check name p expected =
    Alcotest.(check int) name expected
      (Stab.expectation_pauli t (Pauli_string.of_string p))
  in
  check "XXX" "XXX" 1;
  check "ZZI" "ZZI" 1;
  check "IZZ" "IZZ" 1;
  check "ZIZ" "ZIZ" 1;
  check "ZII (random)" "ZII" 0;
  check "YYX" "YYX" (-1)

let test_ghz_measurement_correlated () =
  let outcomes = ref [] in
  for seed = 1 to 30 do
    let t = Stab.make ~seed 3 in
    Stab.run_circuit t (ghz 3);
    let a = Stab.measure t 0 and b = Stab.measure t 1 and c = Stab.measure t 2 in
    Alcotest.(check int) "b = a" a b;
    Alcotest.(check int) "c = a" a c;
    outcomes := a :: !outcomes
  done;
  Alcotest.(check bool) "both outcomes occur" true
    (List.mem 0 !outcomes && List.mem 1 !outcomes)

let test_measure_is_projective () =
  let t = Stab.make ~seed:5 2 in
  Stab.run_circuit t (Circuit.create 2 [ h 0 ]);
  let first = Stab.measure t 0 in
  let second = Stab.measure t 0 in
  Alcotest.(check int) "repeatable" first second;
  Alcotest.(check int) "now deterministic" (if first = 1 then -1 else 1)
    (Stab.expectation_z t 0)

let clifford_gate_gen n =
  let open QCheck2.Gen in
  let pairs =
    map
      (fun (a, d) ->
        let b = (a + 1 + d) mod n in
        a, b)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 2)))
  in
  oneof
    [
      map (fun q -> h q) (int_range 0 (n - 1));
      map (fun q -> s q) (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.Sdg, q)) (int_range 0 (n - 1));
      map (fun q -> x q) (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.Y, q)) (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.Z, q)) (int_range 0 (n - 1));
      map (fun (a, b) -> cnot a b) pairs;
      map (fun (a, b) -> Gate.Swap (a, b)) pairs;
      map
        (fun ((a, b), k) -> Gate.Cliff2 (Phoenix_pauli.Clifford2q.make k a b))
        (pair pairs (oneofl Phoenix_pauli.Clifford2q.all_kinds));
      map (fun q -> Gate.G1 (Gate.Rz (2.0 *. Float.atan 1.0), q))
        (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.Rx (-2.0 *. Float.atan 1.0), q))
        (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.Ry (4.0 *. Float.atan 1.0), q))
        (int_range 0 (n - 1));
    ]

(* Decisive property: stabilizer expectations equal dense ones on random
   Clifford circuits, for every 3-qubit Pauli observable. *)
let prop_matches_dense =
  Helpers.qtest ~count:60 "stabilizer ⟨P⟩ = dense ⟨P⟩ on Clifford circuits"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 20) (clifford_gate_gen 3))
    (fun gates ->
      let c = Circuit.create 3 gates in
      let t = Stab.make 3 in
      Stab.run_circuit t c;
      let v = Sv.of_circuit c in
      let ok = ref true in
      (* iterate all 63 non-identity Pauli strings *)
      let letters = [ 'I'; 'X'; 'Y'; 'Z' ] in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              List.iter
                (fun cc ->
                  let str = Printf.sprintf "%c%c%c" a b cc in
                  if str <> "III" then begin
                    let p = Pauli_string.of_string str in
                    let dense = Sv.expectation_pauli v p in
                    let stab = float_of_int (Stab.expectation_pauli t p) in
                    if Float.abs (dense -. stab) > 1e-7 then ok := false
                  end)
                letters)
            letters)
        letters;
      !ok)

let prop_rejects_non_clifford =
  Helpers.qtest ~count:20 "rejects non-Clifford rotations"
    (QCheck2.Gen.float_range 0.3 1.2)
    (fun theta ->
      let t = Stab.make 1 in
      try
        Stab.apply_gate t (Gate.G1 (Gate.Rz theta, 0));
        false
      with Invalid_argument _ -> true)

let test_large_scale () =
  (* 64 qubits, a few thousand Clifford gates: far beyond dense reach *)
  let n = 64 in
  let rng = Prng.create 3 in
  let t = Stab.make n in
  for _ = 1 to 3000 do
    match Prng.int rng 3 with
    | 0 -> Stab.apply_h t (Prng.int rng n)
    | 1 -> Stab.apply_s t (Prng.int rng n)
    | _ ->
      let a = Prng.int rng n in
      let b = (a + 1 + Prng.int rng (n - 1)) mod n in
      Stab.apply_cnot t a b
  done;
  Alcotest.(check int) "still n stabilizers" n (List.length (Stab.stabilizers t));
  (* measuring every qubit must terminate and give bits *)
  for q = 0 to n - 1 do
    let m = Stab.measure t q in
    Alcotest.(check bool) "bit" true (m = 0 || m = 1)
  done

let test_stabilizers_of_bell () =
  let t = Stab.make 2 in
  Stab.run_circuit t (Circuit.create 2 [ h 0; cnot 0 1 ]);
  let gens =
    List.map
      (fun (neg, p) -> (if neg then "-" else "+") ^ Pauli_string.to_string p)
      (Stab.stabilizers t)
  in
  List.iter
    (fun g ->
      Alcotest.(check bool) ("generator " ^ g) true
        (List.mem g [ "+XX"; "+ZZ" ]))
    gens

let () =
  Alcotest.run "stabilizer"
    [
      ( "unit",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "x flips" `Quick test_x_flips;
          Alcotest.test_case "ghz stabilizers" `Quick test_ghz_stabilizers;
          Alcotest.test_case "ghz correlations" `Quick
            test_ghz_measurement_correlated;
          Alcotest.test_case "projective" `Quick test_measure_is_projective;
          Alcotest.test_case "bell generators" `Quick test_stabilizers_of_bell;
          Alcotest.test_case "64-qubit scale" `Quick test_large_scale;
        ] );
      ("props", [ prop_matches_dense; prop_rejects_non_clifford ]);
    ]
