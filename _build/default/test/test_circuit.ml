module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Clifford2q = Helpers.Clifford2q
module Pauli = Helpers.Pauli
module Endian = Phoenix_circuit.Endian
module Interaction = Phoenix_circuit.Interaction

let cnot a b = Gate.Cnot (a, b)
let h q = Gate.G1 (Gate.H, q)
let rz t q = Gate.G1 (Gate.Rz t, q)

let test_create_checks_range () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Circuit: gate CNOT q0,q3 outside register of 3 qubits")
    (fun () -> ignore (Circuit.create 3 [ cnot 0 3 ]))

let test_counts () =
  let c = Circuit.create 3 [ h 0; cnot 0 1; rz 0.5 1; cnot 0 1; h 0 ] in
  Alcotest.(check int) "total" 5 (Circuit.length c);
  Alcotest.(check int) "1q" 3 (Circuit.count_1q c);
  Alcotest.(check int) "2q" 2 (Circuit.count_2q c);
  Alcotest.(check int) "cnot cost" 2 (Circuit.count_cnot c)

let test_cnot_cost_expansion () =
  let c =
    Circuit.create 4
      [
        Gate.Cliff2 (Clifford2q.make Clifford2q.CXY 0 1);
        Gate.Rpp { p0 = Pauli.Z; p1 = Pauli.Z; a = 1; b = 2; theta = 0.3 };
        Gate.Swap (2, 3);
      ]
  in
  (* 1 + 2 + 3 *)
  Alcotest.(check int) "expanded cnot cost" 6 (Circuit.count_cnot c)

let test_depth () =
  (* parallel CNOTs on disjoint qubits share a layer *)
  let c = Circuit.create 4 [ cnot 0 1; cnot 2 3; cnot 1 2 ] in
  Alcotest.(check int) "2q depth" 2 (Circuit.depth_2q c);
  Alcotest.(check int) "full depth" 2 (Circuit.depth c)

let test_depth_ignores_1q () =
  let c = Circuit.create 2 [ h 0; h 0; h 0; cnot 0 1 ] in
  Alcotest.(check int) "2q depth ignores 1q" 1 (Circuit.depth_2q c);
  Alcotest.(check int) "full depth counts 1q" 4 (Circuit.depth c)

let test_layers () =
  let c = Circuit.create 4 [ cnot 0 1; h 2; cnot 2 3; cnot 1 2 ] in
  let layers = Circuit.layers_2q c in
  Alcotest.(check int) "two layers" 2 (List.length layers);
  Alcotest.(check int) "first layer size" 2 (List.length (List.nth layers 0));
  Alcotest.(check int) "second layer size" 1 (List.length (List.nth layers 1))

let test_dagger_involution () =
  let c =
    Circuit.create 3
      [ h 0; Gate.G1 (Gate.S, 1); cnot 0 2; rz 0.7 2; Gate.Swap (1, 2) ]
  in
  Alcotest.(check bool) "double dagger" true
    (Circuit.equal c (Circuit.dagger (Circuit.dagger c)))

let test_map_qubits () =
  let c = Circuit.create 3 [ cnot 0 1; h 2 ] in
  let c' = Circuit.map_qubits (fun q -> 2 - q) c in
  match Circuit.gates c' with
  | [ Gate.Cnot (2, 1); Gate.G1 (Gate.H, 0) ] -> ()
  | _ -> Alcotest.fail "unexpected mapping"

let test_concat_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Circuit.concat: qubit-count mismatch") (fun () ->
      ignore (Circuit.concat (Circuit.empty 2) (Circuit.empty 3)))

let test_interaction_counts () =
  let c = Circuit.create 3 [ cnot 0 1; cnot 1 0; cnot 1 2 ] in
  let counts = Circuit.interaction_counts c in
  Alcotest.(check (option int)) "pair 0-1 normalized" (Some 2)
    (Hashtbl.find_opt counts (0, 1));
  Alcotest.(check (option int)) "pair 1-2" (Some 1)
    (Hashtbl.find_opt counts (1, 2))

let test_used_qubits () =
  let c = Circuit.create 5 [ cnot 1 3 ] in
  Alcotest.(check (list int)) "used" [ 1; 3 ] (Circuit.used_qubits c)

(* Endian vectors: Fig. 3-style checks. *)
let test_endian_vectors () =
  (* layers: [cnot 0 1] ; [cnot 1 2]  on 4 qubits; qubit 3 untouched *)
  let c = Circuit.create 4 [ cnot 0 1; cnot 1 2 ] in
  Alcotest.(check (array int)) "e_l" [| 0; 0; 1; 2 |] (Endian.left c);
  Alcotest.(check (array int)) "e_r" [| 1; 0; 0; 2 |] (Endian.right c);
  Alcotest.(check int) "layers" 2 (Endian.num_layers c)

let test_endian_depth_cost () =
  let pre = Circuit.create 3 [ cnot 0 1 ] in
  let suc = Circuit.create 3 [ cnot 1 2 ] in
  (* e_r(pre) = [0;0;1], e_l(suc) = [1;0;0]: qubit 1 free on both sides →
     scenario II: sum = 2, minus n = 3 → -1 *)
  let cost = Endian.depth_cost ~e_r:(Endian.right pre) ~e_l':(Endian.left suc) in
  Alcotest.(check int) "overlapping" (-1) cost;
  (* blocked case: same subcircuit twice shares no free qubit on both ends *)
  let suc2 = Circuit.create 3 [ cnot 1 2; cnot 0 1 ] in
  let cost2 =
    Endian.depth_cost ~e_r:(Endian.right pre) ~e_l':(Endian.left suc2)
  in
  (* e_r = [0;0;1], e_l' = [1;0;... wait qubit1 is 0 on both → scenario II *)
  Alcotest.(check bool) "computed" true (cost2 <= 3)

let test_interaction_similarity_prefers_same_pairs () =
  let a = Circuit.create 4 [ cnot 0 1; cnot 2 3 ] in
  let same = Circuit.create 4 [ cnot 0 1; cnot 2 3 ] in
  let diff = Circuit.create 4 [ cnot 0 3; cnot 1 2 ] in
  let s_same = Interaction.similarity ~pre:a ~suc:same in
  let s_diff = Interaction.similarity ~pre:a ~suc:diff in
  Alcotest.(check bool) "similar > dissimilar" true (s_same >= s_diff)

let test_distance_matrix () =
  let adj = Interaction.adjacency 4 [ cnot 0 1; cnot 1 2 ] in
  let d = Interaction.distance_matrix adj in
  Alcotest.(check int) "d01" 1 d.(0).(1);
  Alcotest.(check int) "d02" 2 d.(0).(2);
  Alcotest.(check int) "d03 unreachable" 4 d.(0).(3);
  Alcotest.(check int) "d00" 0 d.(0).(0)

let prop_depth_le_length =
  Helpers.qtest "depth ≤ gate count"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 30)
       (QCheck2.Gen.map
          (fun (a, d) ->
            let b = (a + 1 + d) mod 5 in
            Gate.Cnot (a, b))
          (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 4) (QCheck2.Gen.int_range 0 3))))
    (fun gates ->
      let c = Circuit.create 5 gates in
      Circuit.depth c <= Circuit.length c
      && Circuit.depth_2q c <= Circuit.count_2q c)

let prop_layers_partition =
  Helpers.qtest "2q layers partition the 2q gates"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 30)
       (QCheck2.Gen.map
          (fun (a, d) ->
            let b = (a + 1 + d) mod 6 in
            Gate.Cnot (a, b))
          (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 5) (QCheck2.Gen.int_range 0 4))))
    (fun gates ->
      let c = Circuit.create 6 gates in
      let layers = Circuit.layers_2q c in
      List.fold_left (fun acc l -> acc + List.length l) 0 layers
      = Circuit.count_2q c
      && List.length layers = Circuit.depth_2q c)

let () =
  Alcotest.run "circuit"
    [
      ( "unit",
        [
          Alcotest.test_case "range check" `Quick test_create_checks_range;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "cnot cost expansion" `Quick test_cnot_cost_expansion;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "depth ignores 1q" `Quick test_depth_ignores_1q;
          Alcotest.test_case "layers" `Quick test_layers;
          Alcotest.test_case "dagger involution" `Quick test_dagger_involution;
          Alcotest.test_case "map qubits" `Quick test_map_qubits;
          Alcotest.test_case "concat mismatch" `Quick test_concat_mismatch;
          Alcotest.test_case "interaction counts" `Quick test_interaction_counts;
          Alcotest.test_case "used qubits" `Quick test_used_qubits;
        ] );
      ( "endian",
        [
          Alcotest.test_case "vectors" `Quick test_endian_vectors;
          Alcotest.test_case "depth cost" `Quick test_endian_depth_cost;
        ] );
      ( "interaction",
        [
          Alcotest.test_case "similarity" `Quick
            test_interaction_similarity_prefers_same_pairs;
          Alcotest.test_case "distance matrix" `Quick test_distance_matrix;
        ] );
      ("props", [ prop_depth_le_length; prop_layers_partition ]);
    ]
