test/test_vqe.mli:
