test/test_bsf.mli:
