test/test_peephole.ml: Alcotest Float Helpers Phoenix_circuit QCheck2
