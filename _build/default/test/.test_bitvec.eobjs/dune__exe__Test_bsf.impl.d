test/test_bsf.ml: Alcotest Complex Helpers List Printf QCheck2
