test/test_rebase.ml: Alcotest Helpers List Phoenix_circuit QCheck2
