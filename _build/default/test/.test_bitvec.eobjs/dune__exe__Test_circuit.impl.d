test/test_circuit.ml: Alcotest Array Hashtbl Helpers List Phoenix_circuit QCheck2
