test/test_extensions.ml: Alcotest Float Helpers List Phoenix_circuit Phoenix_experiments Phoenix_ham Phoenix_linalg Phoenix_pauli String
