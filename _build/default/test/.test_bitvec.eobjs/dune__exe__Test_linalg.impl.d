test/test_linalg.ml: Alcotest Array Complex Helpers List Phoenix_linalg Phoenix_util Printf
