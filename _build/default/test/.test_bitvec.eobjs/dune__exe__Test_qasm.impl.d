test/test_qasm.ml: Alcotest Float Helpers List Phoenix_circuit Phoenix_pauli QCheck2 String
