test/test_topology.ml: Alcotest List Phoenix_topology
