test/test_stabilizer.ml: Alcotest Float Helpers List Phoenix_circuit Phoenix_linalg Phoenix_pauli Phoenix_util Printf QCheck2
