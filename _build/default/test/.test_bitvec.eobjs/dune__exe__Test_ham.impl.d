test/test_ham.ml: Alcotest Complex Float Helpers List Phoenix_ham Phoenix_pauli Printf QCheck2
