test/test_gate.ml: Alcotest Helpers List Phoenix_ham Phoenix_pauli
