test/test_core.ml: Alcotest Complex Float Helpers List Phoenix Phoenix_circuit Phoenix_ham Phoenix_pauli Phoenix_topology QCheck2
