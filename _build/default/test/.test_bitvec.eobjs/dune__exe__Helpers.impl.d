test/helpers.ml: Alcotest Phoenix_circuit Phoenix_linalg Phoenix_pauli QCheck2 QCheck_alcotest
