test/test_router.ml: Alcotest Complex Helpers List Phoenix_circuit Phoenix_router Phoenix_topology QCheck2
