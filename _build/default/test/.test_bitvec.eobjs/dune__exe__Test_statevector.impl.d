test/test_statevector.ml: Alcotest Array Complex Float Helpers Phoenix_ham Phoenix_linalg Phoenix_util QCheck2
