test/test_rebase.mli:
