test/test_pauli.ml: Alcotest Complex Helpers List Printf QCheck2
