test/test_prng.ml: Alcotest Array List Phoenix_util
