test/test_bitvec.ml: Alcotest Helpers List Phoenix_util Printf QCheck2
