test/test_ham.mli:
