test/test_vqe.ml: Alcotest Array Complex Float Helpers List Phoenix_circuit Phoenix_ham Phoenix_linalg Phoenix_pauli Phoenix_vqe Printf
