module Pauli_string = Helpers.Pauli_string
module Circuit = Helpers.Circuit
module Gate = Helpers.Gate
module Unitary = Helpers.Unitary
module Diagonalize = Phoenix_circuit.Diagonalize
module Naive = Phoenix_baselines.Naive
module Tket_like = Phoenix_baselines.Tket_like
module Paulihedral_like = Phoenix_baselines.Paulihedral_like
module Tetris_like = Phoenix_baselines.Tetris_like
module Qan2_like = Phoenix_baselines.Qan2_like
module Topology = Phoenix_topology.Topology
module Layout = Phoenix_router.Layout

let ps = Pauli_string.of_string

(* --- diagonalization --- *)

let test_diag_rejects_anticommuting () =
  Alcotest.check_raises "anticommuting"
    (Invalid_argument "Diagonalize.run: inputs do not commute") (fun () ->
      ignore (Diagonalize.run 2 [ ps "XI", 0.1; ps "ZI", 0.2 ]))

let is_z_only p =
  List.for_all
    (fun q -> Pauli_string.get p q = Phoenix_pauli.Pauli.Z)
    (Pauli_string.support_list p)

let test_diag_output_z_only () =
  let d = Diagonalize.run 3 [ ps "XXI", 0.1; ps "YYI", 0.2; ps "ZZI", 0.3 ] in
  List.iter
    (fun (p, _) -> Alcotest.(check bool) "z only" true (is_z_only p))
    d.Diagonalize.diagonal

(* Generate a random commuting set by conjugating Z-only strings. *)
let commuting_set_gen n =
  let open QCheck2.Gen in
  let z_string =
    map
      (fun bits ->
        List.mapi (fun _ b -> if b then Phoenix_pauli.Pauli.Z else Phoenix_pauli.Pauli.I) bits
        |> Pauli_string.of_list)
      (list_size (return n) bool)
  in
  let* raw = list_size (int_range 1 5) (pair z_string Helpers.angle_gen) in
  let raw = List.filter (fun (p, _) -> not (Pauli_string.is_identity p)) raw in
  let* cliffs = list_size (int_range 0 4) (Helpers.clifford2q_gen n) in
  let conj (p, a) =
    let bsf = Phoenix_pauli.Bsf.of_terms n [ p, a ] in
    List.iter (Phoenix_pauli.Bsf.apply_clifford2q bsf) cliffs;
    match Phoenix_pauli.Bsf.to_terms bsf with
    | [ t ] -> t
    | _ -> assert false
  in
  return (List.map conj raw)

let prop_diag_unitary_equiv =
  Helpers.qtest ~count:80 "diagonalization preserves the set's unitary"
    (commuting_set_gen 3)
    (fun set ->
      set = []
      ||
      let d = Diagonalize.run 3 set in
      let c = Circuit.create 3 d.Diagonalize.clifford in
      let gadget_gates =
        List.concat_map
          (fun (p, a) ->
            Circuit.gates (Phoenix.Synthesis.naive_gadget_circuit 3 [ p, a ]))
          d.Diagonalize.diagonal
      in
      let full =
        Circuit.create 3
          (Circuit.gates c @ gadget_gates
          @ List.rev_map Gate.dagger d.Diagonalize.clifford)
      in
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.program_unitary 3 set)
        (Unitary.circuit_unitary full))

let prop_diag_all_z =
  Helpers.qtest ~count:80 "diagonal part is Z-only" (commuting_set_gen 4)
    (fun set ->
      set = []
      ||
      let d = Diagonalize.run 4 set in
      List.for_all (fun (p, _) -> is_z_only p) d.Diagonalize.diagonal)

let test_partition_commuting () =
  let sets =
    Diagonalize.partition_commuting
      [ ps "XX", 0.1; ps "YY", 0.2; ps "ZI", 0.3; ps "IZ", 0.4 ]
  in
  (* XX,YY commute; ZI anticommutes with XX/YY; IZ joins ZI's set *)
  Alcotest.(check int) "two sets" 2 (List.length sets);
  Alcotest.(check int) "first set size" 2 (List.length (List.nth sets 0))

(* --- logical baselines: correctness on commuting programs --- *)

let qaoa_program n seed =
  let g = Phoenix_ham.Graphs.erdos_renyi ~seed ~p:0.5 n in
  Phoenix_ham.Hamiltonian.trotter_gadgets (Phoenix_ham.Qaoa.maxcut_cost g)

let check_compiler_correct name compile =
  let gadgets = qaoa_program 4 11 in
  let reference = Unitary.program_unitary 4 gadgets in
  let circ = compile 4 gadgets in
  Helpers.check_equiv ~tol:1e-7 (name ^ " unitary") reference
    (Unitary.circuit_unitary circ)

let test_naive_correct () = check_compiler_correct "naive" Naive.compile
let test_tket_correct () =
  check_compiler_correct "tket" (fun n g -> Tket_like.compile n g)

let test_paulihedral_correct () =
  check_compiler_correct "paulihedral" (fun n g -> Paulihedral_like.compile n g)

let test_tetris_correct () =
  check_compiler_correct "tetris" (fun n g -> Tetris_like.compile n g)

let test_tket_beats_naive_on_uccsd () =
  let b = Phoenix_ham.Molecules.find "LiH_frz_JW" in
  let ham = Phoenix_ham.Uccsd.ansatz b.Phoenix_ham.Molecules.encoding b.Phoenix_ham.Molecules.spec in
  let g = Phoenix_ham.Hamiltonian.trotter_gadgets ham in
  let naive = Circuit.count_cnot (Naive.compile 10 g) in
  let tket = Circuit.count_cnot (Tket_like.compile 10 g) in
  Alcotest.(check bool) "tket < naive/2" true (tket * 2 < naive)

(* --- 2QAN-like --- *)

let test_qan2_rejects_weight3 () =
  Alcotest.check_raises "weight 3"
    (Invalid_argument "Qan2_like: gadget of weight > 2") (fun () ->
      ignore
        (Qan2_like.compile (Topology.line 4) 4 [ ps "ZZZI", 0.1 ]))

let test_qan2_respects_topology () =
  let topo = Topology.heavy_hex ~widths:[ 5; 5 ] in
  let g = Phoenix_ham.Graphs.random_regular ~seed:5 ~degree:3 8 in
  let gadgets =
    Phoenix_ham.Hamiltonian.trotter_gadgets (Phoenix_ham.Qaoa.maxcut_cost g)
  in
  let r = Qan2_like.compile topo 8 gadgets in
  List.iter
    (fun gate ->
      match Gate.pair gate with
      | Some (a, b) ->
        Alcotest.(check bool) "adjacent" true (Topology.are_adjacent topo a b)
      | None -> ())
    (Circuit.gates r.Qan2_like.circuit)

let test_qan2_place_injective () =
  let topo = Topology.ibm_manhattan () in
  let g = Phoenix_ham.Graphs.random_regular ~seed:5 ~degree:4 16 in
  let gadgets =
    Phoenix_ham.Hamiltonian.trotter_gadgets (Phoenix_ham.Qaoa.maxcut_cost g)
  in
  let layout = Qan2_like.place topo 16 gadgets in
  let sites = List.init 16 (fun l -> Layout.physical_of layout l) in
  Alcotest.(check int) "injective" 16 (List.length (List.sort_uniq compare sites))

let test_qan2_emits_all_interactions () =
  let topo = Topology.line 6 in
  let g = Phoenix_ham.Graphs.cycle 6 in
  let gadgets =
    Phoenix_ham.Hamiltonian.trotter_gadgets (Phoenix_ham.Qaoa.maxcut_cost g)
  in
  let r = Qan2_like.compile ~peephole:false topo 6 gadgets in
  (* 6 edges → 6 Rz rotations in the lowered circuit *)
  let rz_count =
    Circuit.count
      (fun gate -> match gate with Gate.G1 (Gate.Rz _, _) -> true | _ -> false)
      r.Qan2_like.circuit
  in
  Alcotest.(check int) "all interactions present" 6 rz_count

let () =
  Alcotest.run "baselines"
    [
      ( "diagonalize",
        [
          Alcotest.test_case "rejects anticommuting" `Quick
            test_diag_rejects_anticommuting;
          Alcotest.test_case "z-only output" `Quick test_diag_output_z_only;
          prop_diag_unitary_equiv;
          prop_diag_all_z;
          Alcotest.test_case "partition" `Quick test_partition_commuting;
        ] );
      ( "logical",
        [
          Alcotest.test_case "naive correct" `Quick test_naive_correct;
          Alcotest.test_case "tket correct" `Quick test_tket_correct;
          Alcotest.test_case "paulihedral correct" `Quick test_paulihedral_correct;
          Alcotest.test_case "tetris correct" `Quick test_tetris_correct;
          Alcotest.test_case "tket beats naive" `Slow test_tket_beats_naive_on_uccsd;
        ] );
      ( "qan2",
        [
          Alcotest.test_case "rejects weight-3" `Quick test_qan2_rejects_weight3;
          Alcotest.test_case "respects topology" `Quick test_qan2_respects_topology;
          Alcotest.test_case "placement injective" `Quick test_qan2_place_injective;
          Alcotest.test_case "all interactions" `Quick test_qan2_emits_all_interactions;
        ] );
    ]
