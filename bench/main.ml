(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (§V) and runs Bechamel micro-benchmarks of the compiler
   passes.

     dune exec bench/main.exe                 - everything
     dune exec bench/main.exe -- table1       - one artifact
     dune exec bench/main.exe -- fig5 --quick - reduced benchmark subset
     dune exec bench/main.exe -- perf --json  - also write BENCH_phoenix.json

   Artifacts: table1, fig5 (incl. Table II), fig6, table3, table4
   (incl. Fig. 7), fig8, perf. *)

module E = Phoenix_experiments
module Clock = Phoenix_util.Clock
module Cache = Phoenix_cache.Cache

let fmt = Format.std_formatter

(* Set from the command line; [perf] writes BENCH_phoenix.json when on. *)
let json_mode = ref false

let labels ~quick =
  if quick then Some E.Workloads.uccsd_quick_labels else None

let run_table1 ~quick =
  E.Table1.print fmt (E.Table1.run ?labels:(labels ~quick) ())

let run_fig5 ~quick = E.Fig5.print fmt (E.Fig5.run ?labels:(labels ~quick) ())
let run_fig6 ~quick = E.Fig6.print fmt (E.Fig6.run ?labels:(labels ~quick) ())

let run_table3 ~quick =
  E.Table3.print fmt (E.Table3.run ?labels:(labels ~quick) ())

let run_table4 ~quick:_ = E.Table4.print fmt (E.Table4.run ())

let run_fidelity ~quick =
  E.Fidelity.print fmt (E.Fidelity.run ?labels:(labels ~quick) ())

let run_ablations ~quick =
  E.Ablations.print fmt
    (E.Ablations.run_uccsd ?labels:(labels ~quick) ())
    (E.Ablations.run_qaoa_router ())

let run_fig8 ~quick =
  let scales = if quick then [ 0.1; 0.8 ] else E.Fig8.default_scales in
  let molecules =
    if quick then [ "LiH_reduced" ] else [ "LiH_reduced"; "NH_reduced" ]
  in
  E.Fig8.print fmt (E.Fig8.run ~scales ~molecules ())

(* --- Bechamel micro-benchmarks of the compiler passes --- *)

let perf_tests () =
  let case = List.hd (E.Workloads.uccsd_suite ~labels:[ "LiH_frz_JW" ] ()) in
  let n = case.E.Workloads.n in
  let blocks = case.E.Workloads.gadget_blocks in
  let gadgets = E.Workloads.gadgets case in
  let groups = Phoenix.Group.of_blocks n blocks in
  let first_group = List.hd groups in
  let topo = E.Workloads.heavy_hex () in
  (* Micro-benchmarks measure the compiler passes, not the synthesis
     cache: a warm cache would answer every iteration after the first
     from memory, so pin the tier off for every timed compile. *)
  let cold = { Phoenix.Compiler.default_options with cache = Cache.Off } in
  let open Bechamel in
  Test.make_grouped ~name:"phoenix" ~fmt:"%s %s"
    [
      Test.make ~name:"grouping"
        (Staged.stage (fun () -> ignore (Phoenix.Group.of_blocks n blocks)));
      Test.make ~name:"bsf-simplify-one-group"
        (Staged.stage (fun () ->
             ignore (Phoenix.Simplify.run n first_group.Phoenix.Group.terms)));
      Test.make ~name:"compile-logical-cnot"
        (Staged.stage (fun () ->
             ignore (Phoenix.Compiler.compile_blocks ~options:cold n blocks)));
      Test.make ~name:"compile-logical-su4"
        (Staged.stage (fun () ->
             let options = { cold with isa = Phoenix.Compiler.Su4_isa } in
             ignore (Phoenix.Compiler.compile_blocks ~options n blocks)));
      Test.make ~name:"compile-heavy-hex"
        (Staged.stage (fun () ->
             let options =
               { cold with target = Phoenix.Compiler.Hardware topo }
             in
             ignore (Phoenix.Compiler.compile_blocks ~options n blocks)));
      Test.make ~name:"baseline-tket"
        (Staged.stage (fun () ->
             ignore (Phoenix_baselines.Tket_like.compile n gadgets)));
    ]

(* End-to-end compile wall times: one timed run each, so the JSON records
   the user-visible latency next to the per-pass OLS estimates.  Pinned
   cold so the numbers track the compiler, not the synthesis cache. *)
let end_to_end_compiles () =
  let case = List.hd (E.Workloads.uccsd_suite ~labels:[ "LiH_frz_JW" ] ()) in
  let n = case.E.Workloads.n in
  let blocks = case.E.Workloads.gadget_blocks in
  let topo = E.Workloads.heavy_hex () in
  let cold = { Phoenix.Compiler.default_options with cache = Cache.Off } in
  let timed name f =
    let t0 = Clock.monotonic_s () in
    let r : Phoenix.Compiler.report = f () in
    ( name,
      Clock.monotonic_s () -. t0,
      r.Phoenix.Compiler.two_q_count,
      r.Phoenix.Compiler.pass_times )
  in
  [
    timed "compile-logical-cnot" (fun () ->
        Phoenix.Compiler.compile_blocks ~options:cold n blocks);
    timed "compile-heavy-hex" (fun () ->
        let options = { cold with target = Phoenix.Compiler.Hardware topo } in
        Phoenix.Compiler.compile_blocks ~options n blocks);
  ]

(* Cold vs. warm synthesis-cache wall times: compile once against a fresh
   memory tier to populate it, then again against the resident entries.
   The reports' own per-run hit/miss deltas certify what each leg
   measured (cold: all misses; warm: all hits). *)
let cache_cold_warm () =
  let case = List.hd (E.Workloads.uccsd_suite ~labels:[ "LiH_frz_JW" ] ()) in
  let n = case.E.Workloads.n in
  let blocks = case.E.Workloads.gadget_blocks in
  let topo = E.Workloads.heavy_hex () in
  let base = Phoenix.Compiler.default_options in
  [
    "compile-logical-cnot", base;
    "compile-heavy-hex", { base with target = Phoenix.Compiler.Hardware topo };
  ]
  |> List.map (fun (name, options) ->
         let options = { options with Phoenix.Compiler.cache = Cache.Mem } in
         Cache.clear_memory ();
         let timed () =
           let t0 = Clock.monotonic_s () in
           let r = Phoenix.Compiler.compile_blocks ~options n blocks in
           Clock.monotonic_s () -. t0, r.Phoenix.Compiler.cache_stats
         in
         let cold_s, cold_stats = timed () in
         let warm_s, warm_stats = timed () in
         name, cold_s, warm_s, cold_stats, warm_stats)

(* Parametric-compilation serving benchmark: the VQE-loop pattern the
   template layer exists for.  The direct leg pays the full pipeline at
   every parameter point (cache pinned off so the numbers measure
   compilation, not memoization); the template leg compiles once with
   symbolic slots and binds per iteration.  Every iteration's bound
   circuit is certified bit-identical to the direct compile at the same
   angles, and the bind trace is recorded so CI can assert no pipeline
   pass runs per bind. *)
type vqe_loop_result = {
  vl_iterations : int;
  vl_direct_wall_s : float;
  vl_compile_template_s : float;
  vl_bind_total_s : float;
  vl_bind_us : float;  (* mean per-bind latency, microseconds *)
  vl_speedup : float;  (* end-to-end: direct / (template compile + binds) *)
  vl_per_iteration_speedup : float;  (* compile-per-theta / bind-per-theta *)
  vl_bind_trace_passes : string list;
  vl_bind_equals_compile : bool;
}

let vqe_loop ~quick () =
  let case = List.hd (E.Workloads.uccsd_suite ~labels:[ "LiH_frz_JW" ] ()) in
  let n = case.E.Workloads.n in
  let blocks = case.E.Workloads.gadget_blocks in
  let iterations = if quick then 8 else 128 in
  let num_params = List.length blocks in
  (* Deterministic generic angles (away from the zero-rotation
     degeneracy) so the bit-identity certificate applies — see Angle. *)
  let theta_at i =
    Array.init num_params (fun k ->
        0.11 +. Float.rem (0.327 +. (0.691 *. float_of_int (k + (7 * i)))) 2.9)
  in
  let cold = { Phoenix.Compiler.default_options with cache = Cache.Off } in
  let concrete theta =
    List.mapi
      (fun k block -> List.map (fun (p, base) -> p, theta.(k) *. base) block)
      blocks
  in
  let gate_bits g =
    Phoenix_circuit.Gate.fold_angles
      (fun acc t -> Printf.sprintf "%s %Lx" acc (Int64.bits_of_float t))
      (Phoenix_circuit.Gate.to_string g)
      g
  in
  let circuit_bits c =
    String.concat "\n" (List.map gate_bits (Phoenix_circuit.Circuit.gates c))
  in
  let t0 = Clock.monotonic_s () in
  let direct =
    Array.init iterations (fun i ->
        Phoenix.Compiler.compile_blocks ~options:cold n (concrete (theta_at i)))
  in
  let direct_wall_s = Clock.monotonic_s () -. t0 in
  (* Keep only the bit renderings (unscanned strings): retaining 128
     full reports across the bind loop would charge the binds with the
     GC's marking of the direct leg's live heap. *)
  let direct_bits =
    Array.map
      (fun (r : Phoenix.Compiler.report) -> circuit_bits r.Phoenix.Compiler.circuit)
      direct
  in
  let symbolic =
    List.mapi
      (fun k block ->
        List.map
          (fun (p, base) ->
            p, Phoenix_pauli.Angle.param ~index:k ~scale:base)
          block)
      blocks
  in
  let params = Array.init num_params (Printf.sprintf "theta%d") in
  let t0 = Clock.monotonic_s () in
  let tmpl =
    Phoenix.Compiler.compile_template ~options:cold ~params n symbolic
  in
  let compile_template_s = Clock.monotonic_s () -. t0 in
  let _, trace0 = Phoenix.Template.bind_with_trace tmpl (theta_at 0) in
  let bind_trace_passes =
    List.map (fun (e : Phoenix.Pass.trace_entry) -> e.Phoenix.Pass.pass) trace0
  in
  Gc.full_major ();
  let t0 = Clock.monotonic_s () in
  let bound =
    Array.init iterations (fun i -> Phoenix.Template.bind tmpl (theta_at i))
  in
  let bind_total_s = Clock.monotonic_s () -. t0 in
  let bind_equals_compile =
    Array.for_all2
      (fun bits c -> String.equal bits (circuit_bits c))
      direct_bits bound
  in
  let iters = float_of_int iterations in
  {
    vl_iterations = iterations;
    vl_direct_wall_s = direct_wall_s;
    vl_compile_template_s = compile_template_s;
    vl_bind_total_s = bind_total_s;
    vl_bind_us = bind_total_s /. iters *. 1e6;
    vl_speedup = direct_wall_s /. (compile_template_s +. bind_total_s);
    vl_per_iteration_speedup =
      (if bind_total_s > 0.0 then direct_wall_s /. bind_total_s else 0.0);
    vl_bind_trace_passes = bind_trace_passes;
    vl_bind_equals_compile = bind_equals_compile;
  }

(* Symbolic-certification overhead: the same two compile presets, each
   timed plain, under the certify hook, and under dense verification
   ([options.verify]).  The logical preset runs in exact mode so its
   verify leg actually performs the end-to-end dense unitary comparison
   the certifier replaces (LiH sits exactly at the n = 10 dense cap);
   heavy-hex measures against the scalable propagation certificates.
   The headline ratio is checker-seconds over the dense-verify wall —
   the CI gate holds it below 20% on the logical preset.  Overall
   verdicts ride along so a regression to plausible/refuted fails
   loudly rather than hiding behind timing. *)
type certify_result = {
  cf_name : string;
  cf_plain_wall_s : float;
  cf_certify_wall_s : float;
  cf_check_s : float;  (* independent checker seconds, from the boundaries *)
  cf_verify_wall_s : float;  (* dense --verify compile wall *)
  cf_overhead_vs_verify : float;  (* check_s / verify_wall_s *)
  cf_boundaries : int;
  cf_overall : string;
}

let bench_certify () =
  let case = List.hd (E.Workloads.uccsd_suite ~labels:[ "LiH_frz_JW" ] ()) in
  let n = case.E.Workloads.n in
  let blocks = case.E.Workloads.gadget_blocks in
  let topo = E.Workloads.heavy_hex () in
  let cold = { Phoenix.Compiler.default_options with cache = Cache.Off } in
  [
    "compile-logical-cnot", { cold with Phoenix.Compiler.exact = true };
    "compile-heavy-hex", { cold with target = Phoenix.Compiler.Hardware topo };
  ]
  |> List.map (fun (name, options) ->
         let wall f =
           let t0 = Clock.monotonic_s () in
           ignore (f () : Phoenix.Compiler.report);
           Clock.monotonic_s () -. t0
         in
         let plain_s =
           wall (fun () -> Phoenix.Compiler.compile_blocks ~options n blocks)
         in
         let acc = ref [] in
         let certify_s =
           wall (fun () ->
               Phoenix.Compiler.compile_blocks ~options
                 ~hooks:[ Phoenix_tv.Certify.hook acc ]
                 n blocks)
         in
         let bs = Phoenix_tv.Certify.boundaries acc in
         let check_s = Phoenix_tv.Certify.total_check_seconds bs in
         let verify_s =
           wall (fun () ->
               Phoenix.Compiler.compile_blocks
                 ~options:{ options with Phoenix.Compiler.verify = true }
                 n blocks)
         in
         {
           cf_name = name;
           cf_plain_wall_s = plain_s;
           cf_certify_wall_s = certify_s;
           cf_check_s = check_s;
           cf_verify_wall_s = verify_s;
           cf_overhead_vs_verify =
             (if verify_s > 0.0 then check_s /. verify_s else 0.0);
           cf_boundaries = List.length bs;
           cf_overall = Phoenix_tv.Certify.overall bs;
         })

(* --- scaling curves and the streaming memory contract ----------------- *)

(* One whole-program compile per (family, size): wall seconds, 2Q count
   and the live heap with the finished report still held — the memory a
   caller actually pays to keep the compiled circuit around.  [Gc.compact]
   before each case resets [heap_words] to the live set so cases don't
   inherit each other's garbage. *)
type scaling_case = {
  sc_family : string;
  sc_label : string;
  sc_qubits : int;
  sc_gadgets : int;
  sc_wall_s : float;
  sc_two_q : int;
  sc_heap_words : int;
}

type sweep_row = {
  sw_steps : int;
  sw_gadgets : int;
  sw_wall_s : float;
  sw_stream_peak_words : int;  (* keep_circuit:false *)
  sw_kept_peak_words : int;  (* keep_circuit:true *)
}

type scaling_result = {
  sr_cases : scaling_case list;
  sr_sweep_workload : string;
  sr_sweep : sweep_row list;
  sr_sublinear : bool;
}

let phoenix_entry () =
  match Phoenix_pipeline.Registry.find "phoenix" with
  | Some e -> e
  | None -> failwith "phoenix pipeline not registered"

let run_scaling ~quick () =
  let entry = phoenix_entry () in
  let options = { Phoenix.Compiler.default_options with cache = Cache.Off } in
  let gadget_count h =
    List.length
      (Phoenix_ham.Hamiltonian.trotter_gadgets
         ~tau:options.Phoenix.Compiler.tau h)
  in
  let case sc_family sc_label h =
    Gc.compact ();
    let t0 = Clock.monotonic_s () in
    let r = Phoenix_pipeline.Registry.compile ~options entry h in
    let sc_wall_s = Clock.monotonic_s () -. t0 in
    let sc_heap_words = (Gc.quick_stat ()).Gc.heap_words in
    ignore (Sys.opaque_identity r.Phoenix.Compiler.circuit);
    {
      sc_family;
      sc_label;
      sc_qubits = Phoenix_ham.Hamiltonian.num_qubits h;
      sc_gadgets = gadget_count h;
      sc_wall_s;
      sc_two_q = r.Phoenix.Compiler.two_q_count;
      sc_heap_words;
    }
  in
  let hubbard_sizes =
    [ (2, 2); (2, 3); (3, 3) ] @ if quick then [] else [ (3, 4) ]
  in
  let qaoa_labels =
    [ "Reg3-100"; "Reg3-250"; "Reg3-500" ]
    @ if quick then [] else [ "Reg3-1000" ]
  in
  let sr_cases =
    List.map
      (fun (rows, cols) ->
        case "fermi-hubbard"
          (Printf.sprintf "%dx%d" rows cols)
          (Phoenix_ham.Fermi_hubbard.lattice ~rows ~cols ()))
      hubbard_sizes
    @ List.map
        (fun label ->
          case "qaoa" label
            (Phoenix_ham.Qaoa.maxcut_cost
               (List.assoc label (Phoenix_ham.Qaoa.scaling_suite ()))))
        qaoa_labels
  in
  (* The streaming contract: sweep Trotter steps over one sizeable
     workload and sample the per-chunk heap high-water mark.  With
     [keep_circuit:false] the peak must stay essentially flat while the
     gadget count (and the kept-circuit peak) grows linearly — allow 2x
     over the whole sweep for GC noise. *)
  let sr_sweep_workload = "Reg3-1000" in
  let sweep_h =
    Phoenix_ham.Qaoa.maxcut_cost
      (List.assoc sr_sweep_workload (Phoenix_ham.Qaoa.scaling_suite ()))
  in
  let per_step = gadget_count sweep_h in
  let steps_list = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let sr_sweep =
    List.map
      (fun steps ->
        Gc.compact ();
        let t0 = Clock.monotonic_s () in
        let s =
          Phoenix_pipeline.Registry.compile_stream ~options ~steps
            ~keep_circuit:false entry sweep_h
        in
        let sw_wall_s = Clock.monotonic_s () -. t0 in
        Gc.compact ();
        let k =
          Phoenix_pipeline.Registry.compile_stream ~options ~steps
            ~keep_circuit:true entry sweep_h
        in
        {
          sw_steps = steps;
          sw_gadgets = steps * per_step;
          sw_wall_s;
          sw_stream_peak_words = s.Phoenix.Compiler.s_peak_heap_words;
          sw_kept_peak_words = k.Phoenix.Compiler.s_peak_heap_words;
        })
      steps_list
  in
  let sr_sublinear =
    match (sr_sweep, List.rev sr_sweep) with
    | first :: _, last :: _ ->
      last.sw_stream_peak_words < 2 * first.sw_stream_peak_words
    | _ -> false
  in
  { sr_cases; sr_sweep_workload; sr_sweep; sr_sublinear }

let print_scaling sc =
  Format.fprintf fmt "@[<v>== Scaling (phoenix, cache off) ==@,";
  List.iter
    (fun c ->
      Format.fprintf fmt
        "%-14s %-10s n=%-5d gadgets=%-6d wall %8.3f s  2Q %-6d live heap %d w@,"
        c.sc_family c.sc_label c.sc_qubits c.sc_gadgets c.sc_wall_s c.sc_two_q
        c.sc_heap_words)
    sc.sr_cases;
  List.iter
    (fun r ->
      Format.fprintf fmt
        "stream %-10s steps=%d gadgets=%-6d wall %8.3f s  peak %d w \
         (kept-circuit peak %d w)@,"
        sc.sr_sweep_workload r.sw_steps r.sw_gadgets r.sw_wall_s
        r.sw_stream_peak_words r.sw_kept_peak_words)
    sc.sr_sweep;
  Format.fprintf fmt "streaming peak sublinear in gadget count: %b@,"
    sc.sr_sublinear;
  Format.fprintf fmt "@]@."

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let bench_json_path = "BENCH_phoenix.json"

(* The single source of truth for the emitted schema.  [write_bench_json]
   re-reads the file after writing and asserts this string is what landed
   on disk, so the checked-in artifact can never drift from the writer
   again (it had: v2 was checked in while the writer said v3). *)
let schema_version = "phoenix-bench-v6"

(* Machine-readable perf trajectory: per-pass ms/run from Bechamel plus
   end-to-end compile wall seconds (with the pipeline's own per-pass
   split), the synthesis-cache cold/warm comparison, and the parametric
   VQE-loop serving numbers, appended-to by CI as a workflow artifact. *)
let write_bench_json ~quick micro e2e cache vqe certify scaling =
  let oc = open_out bench_json_path in
  let p fmt_str = Printf.fprintf oc fmt_str in
  p "{\n";
  p "  \"schema\": \"%s\",\n" schema_version;
  p "  \"workload\": \"LiH_frz_JW\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"micro_ms_per_run\": {";
  List.iteri
    (fun i (name, ms) ->
      p "%s\n    \"%s\": %s"
        (if i = 0 then "" else ",")
        (json_escape name)
        (match ms with Some v -> Printf.sprintf "%.6f" v | None -> "null"))
    micro;
  p "\n  },\n";
  p "  \"end_to_end\": {";
  List.iteri
    (fun i (name, wall_s, two_q, pass_times) ->
      p "%s\n    \"%s\": { \"wall_s\": %.6f, \"two_q_count\": %d,"
        (if i = 0 then "" else ",")
        (json_escape name) wall_s two_q;
      p "\n      \"pass_s\": {";
      List.iteri
        (fun j (pass, s) ->
          p "%s \"%s\": %.6f" (if j = 0 then "" else ",") (json_escape pass) s)
        pass_times;
      p " } }")
    e2e;
  p "\n  },\n";
  p "  \"cache\": {";
  List.iteri
    (fun i (name, cold_s, warm_s, cold_stats, warm_stats) ->
      let speedup = if warm_s > 0.0 then cold_s /. warm_s else 0.0 in
      p "%s\n    \"%s\": { \"cold_wall_s\": %.6f, \"warm_wall_s\": %.6f,"
        (if i = 0 then "" else ",")
        (json_escape name) cold_s warm_s;
      p "\n      \"speedup\": %.3f," speedup;
      p "\n      \"cold\": %s," (Cache.stats_to_json cold_stats);
      p "\n      \"warm\": %s }" (Cache.stats_to_json warm_stats))
    cache;
  p "\n  },\n";
  p "  \"certify\": {";
  List.iteri
    (fun i c ->
      p "%s\n    \"%s\": { \"plain_wall_s\": %.6f, \"certify_wall_s\": %.6f,"
        (if i = 0 then "" else ",")
        (json_escape c.cf_name) c.cf_plain_wall_s c.cf_certify_wall_s;
      p "\n      \"check_s\": %.6f, \"verify_wall_s\": %.6f," c.cf_check_s
        c.cf_verify_wall_s;
      p "\n      \"overhead_vs_verify\": %.4f, \"boundaries\": %d, \
         \"overall\": \"%s\" }"
        c.cf_overhead_vs_verify c.cf_boundaries (json_escape c.cf_overall))
    certify;
  p "\n  },\n";
  p "  \"scaling\": {\n";
  p "    \"cases\": [";
  List.iteri
    (fun i c ->
      p
        "%s\n      { \"family\": \"%s\", \"label\": \"%s\", \"qubits\": %d, \
         \"gadgets\": %d,\n\
        \        \"wall_s\": %.6f, \"two_q_count\": %d, \"live_heap_words\": \
         %d }"
        (if i = 0 then "" else ",")
        (json_escape c.sc_family) (json_escape c.sc_label) c.sc_qubits
        c.sc_gadgets c.sc_wall_s c.sc_two_q c.sc_heap_words)
    scaling.sr_cases;
  p "\n    ],\n";
  p "    \"steps_sweep\": {\n";
  p "      \"workload\": \"%s\",\n" (json_escape scaling.sr_sweep_workload);
  p "      \"rows\": [";
  List.iteri
    (fun i r ->
      p
        "%s\n        { \"steps\": %d, \"gadgets\": %d, \"wall_s\": %.6f,\n\
        \          \"stream_peak_words\": %d, \"kept_peak_words\": %d }"
        (if i = 0 then "" else ",")
        r.sw_steps r.sw_gadgets r.sw_wall_s r.sw_stream_peak_words
        r.sw_kept_peak_words)
    scaling.sr_sweep;
  p "\n      ],\n";
  p "      \"streaming_sublinear\": %b\n" scaling.sr_sublinear;
  p "    }\n";
  p "  },\n";
  p "  \"vqe_loop\": {\n";
  p "    \"workload\": \"LiH_frz_JW\",\n";
  p "    \"iterations\": %d,\n" vqe.vl_iterations;
  p "    \"direct_wall_s\": %.6f,\n" vqe.vl_direct_wall_s;
  p "    \"compile_template_s\": %.6f,\n" vqe.vl_compile_template_s;
  p "    \"bind_total_s\": %.6f,\n" vqe.vl_bind_total_s;
  p "    \"bind_us\": %.3f,\n" vqe.vl_bind_us;
  p "    \"speedup\": %.1f,\n" vqe.vl_speedup;
  p "    \"per_iteration_speedup\": %.1f,\n" vqe.vl_per_iteration_speedup;
  p "    \"bind_trace_passes\": [%s],\n"
    (String.concat ","
       (List.map
          (fun s -> Printf.sprintf " \"%s\"" (json_escape s))
          vqe.vl_bind_trace_passes)
    ^ " ");
  p "    \"bind_equals_compile\": %b\n" vqe.vl_bind_equals_compile;
  p "  }\n}\n";
  close_out oc;
  (* Self-check: the artifact on disk carries the writer's schema. *)
  let ic = open_in bench_json_path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let expected = Printf.sprintf "\"schema\": \"%s\"" schema_version in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  if not (contains contents expected) then begin
    Printf.eprintf "%s does not carry schema %s — writer drift\n"
      bench_json_path schema_version;
    exit 1
  end;
  Format.fprintf fmt "wrote %s (schema %s)@." bench_json_path schema_version

let run_perf ~quick =
  let open Bechamel in
  let quota = if quick then 0.5 else 2.0 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (perf_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      instance raw
  in
  Format.fprintf fmt
    "@[<v>== Compile-time micro-benchmarks (LiH_frz_JW, 144 Pauli strings) ==@,";
  let micro = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Some (est /. 1e6)
        | Some _ | None -> None
      in
      micro := (name, est) :: !micro)
    results;
  let micro = List.sort compare !micro in
  List.iter
    (fun (name, est) ->
      let value =
        match est with
        | Some ms -> Printf.sprintf "%12.3f ms/run" ms
        | None -> "(no estimate)"
      in
      Format.fprintf fmt "%-34s %s@," name value)
    micro;
  Format.fprintf fmt
    "(paper: compiles thousands of Pauli strings in dozens of seconds on a laptop)@,";
  Format.fprintf fmt "@]@.";
  let cache = cache_cold_warm () in
  List.iter
    (fun (name, cold_s, warm_s, cold_stats, warm_stats) ->
      Format.fprintf fmt
        "%-34s cache cold %8.3f s -> warm %8.3f s (%.1fx, warm %d hits / %d \
         misses)@."
        name cold_s warm_s
        (if warm_s > 0.0 then cold_s /. warm_s else 0.0)
        warm_stats.Cache.hits warm_stats.Cache.misses;
      ignore cold_stats)
    cache;
  let certify = bench_certify () in
  List.iter
    (fun c ->
      Format.fprintf fmt
        "%-34s certify %8.3f s (checker %.3f s over %d boundaries, %s) vs \
         dense verify %8.3f s -> overhead %.1f%% of verify@."
        c.cf_name c.cf_certify_wall_s c.cf_check_s c.cf_boundaries c.cf_overall
        c.cf_verify_wall_s
        (100.0 *. c.cf_overhead_vs_verify))
    certify;
  let vqe = vqe_loop ~quick () in
  Format.fprintf fmt
    "vqe-loop (%d iters)                direct %8.3f s -> template %8.3f s + \
     %d binds at %.1f us (%.0fx end-to-end, %.0fx per iteration, \
     bit-identical: %b)@."
    vqe.vl_iterations vqe.vl_direct_wall_s vqe.vl_compile_template_s
    vqe.vl_iterations vqe.vl_bind_us vqe.vl_speedup
    vqe.vl_per_iteration_speedup vqe.vl_bind_equals_compile;
  let scaling = run_scaling ~quick () in
  print_scaling scaling;
  if !json_mode then begin
    let e2e = end_to_end_compiles () in
    List.iter
      (fun (name, wall_s, two_q, pass_times) ->
        Format.fprintf fmt "%-34s %12.3f s end-to-end (%d 2Q)@." name wall_s
          two_q;
        List.iter
          (fun (pass, s) ->
            Format.fprintf fmt "  %-32s %12.3f s@." pass s)
          pass_times)
      e2e;
    write_bench_json ~quick micro e2e cache vqe certify scaling
  end

let artifacts =
  [
    "table1", run_table1;
    "fig5", run_fig5;
    "fig6", run_fig6;
    "table3", run_table3;
    "table4", run_table4;
    "fig8", run_fig8;
    "ablations", run_ablations;
    "fidelity", run_fidelity;
    "perf", run_perf;
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  json_mode := List.mem "--json" args;
  let wanted = List.filter (fun a -> a <> "--quick" && a <> "--json") args in
  let to_run =
    match wanted with
    | [] -> artifacts
    | names ->
      List.map
        (fun name ->
          match List.assoc_opt name artifacts with
          | Some f -> name, f
          | None ->
            Printf.eprintf "unknown artifact %S (available: %s)\n" name
              (String.concat ", " (List.map fst artifacts));
            exit 2)
        names
  in
  List.iter
    (fun (name, f) ->
      Format.fprintf fmt "@.>>> %s@." name;
      (* Wall clock, not [Sys.time]: CPU seconds sum over domains and
         overstate elapsed time once compilation is parallel. *)
      let t0 = Clock.monotonic_s () in
      f ~quick;
      Format.fprintf fmt "<<< %s done in %.1fs (wall)@." name
        (Clock.monotonic_s () -. t0))
    to_run
