module Circuit = Phoenix_circuit.Circuit
module Peephole = Phoenix_circuit.Peephole
module Rebase = Phoenix_circuit.Rebase
module Sabre = Phoenix_router.Sabre
module Compiler = Phoenix.Compiler
module B = Phoenix_baselines

type compiler = Naive | Tket | Paulihedral | Tetris | Phoenix_c

let compiler_name = function
  | Naive -> "original"
  | Tket -> "TKET-like"
  | Paulihedral -> "Paulihedral-like"
  | Tetris -> "Tetris-like"
  | Phoenix_c -> "PHOENIX"

type isa = Cnot | Su4

type outcome = {
  counts : Metrics.counts;
  swaps : int;
  logical_two_q : int;
  seconds : float;
}

let baseline_logical ?(o3 = true) compiler n blocks =
  let gadgets = List.concat blocks in
  match compiler with
  | Naive -> B.Naive.compile n gadgets
  | Tket -> B.Tket_like.compile ~peephole:o3 n gadgets
  | Paulihedral -> B.Paulihedral_like.compile_blocks ~peephole:o3 n blocks
  | Tetris -> B.Tetris_like.compile_blocks ~peephole:o3 n blocks
  | Phoenix_c -> assert false

let isa_counts isa c =
  match isa with
  | Cnot -> Metrics.of_circuit c
  | Su4 -> Metrics.of_su4_circuit c

let phoenix_options ?(o3 = true) ~isa ~target () =
  {
    Compiler.default_options with
    isa = (match isa with Cnot -> Compiler.Cnot_isa | Su4 -> Compiler.Su4_isa);
    target;
    peephole = o3;
  }

let run_logical ?(o3 = true) ~isa compiler n blocks =
  let t0 = Sys.time () in
  match compiler with
  | Phoenix_c ->
    let options = phoenix_options ~o3 ~isa ~target:Compiler.Logical () in
    let r = Compiler.compile_blocks ~options n blocks in
    {
      counts =
        {
          gates = Circuit.length r.Compiler.circuit;
          two_q = r.Compiler.two_q_count;
          depth = Circuit.depth r.Compiler.circuit;
          depth_2q = r.Compiler.depth_2q;
        };
      swaps = 0;
      logical_two_q = r.Compiler.two_q_count;
      seconds = Sys.time () -. t0;
    }
  | Naive | Tket | Paulihedral | Tetris ->
    let c = baseline_logical ~o3 compiler n blocks in
    let counts = isa_counts isa c in
    {
      counts;
      swaps = 0;
      logical_two_q = counts.Metrics.two_q;
      seconds = Sys.time () -. t0;
    }

let run_hardware ?(o3 = true) ~isa topo compiler n blocks =
  let t0 = Sys.time () in
  match compiler with
  | Phoenix_c ->
    let options =
      phoenix_options ~o3 ~isa ~target:(Compiler.Hardware topo) ()
    in
    let r = Compiler.compile_blocks ~options n blocks in
    {
      counts =
        {
          gates = Circuit.length r.Compiler.circuit;
          two_q = r.Compiler.two_q_count;
          depth = Circuit.depth r.Compiler.circuit;
          depth_2q = r.Compiler.depth_2q;
        };
      swaps = r.Compiler.num_swaps;
      logical_two_q = r.Compiler.logical_two_q;
      seconds = Sys.time () -. t0;
    }
  | Naive | Tket | Paulihedral | Tetris ->
    let logical = baseline_logical ~o3 compiler n blocks in
    let logical_two_q = (isa_counts isa logical).Metrics.two_q in
    let routed = Sabre.route_with_refinement ~iterations:1 topo logical in
    let final =
      match isa with
      | Cnot ->
        let c = Rebase.to_cnot_basis routed.Sabre.circuit in
        if o3 then Peephole.optimize c else c
      | Su4 ->
        Rebase.to_su4
          (if o3 then Peephole.optimize routed.Sabre.circuit
           else routed.Sabre.circuit)
    in
    {
      counts = Metrics.of_circuit final;
      swaps = routed.Sabre.num_swaps;
      logical_two_q;
      seconds = Sys.time () -. t0;
    }
