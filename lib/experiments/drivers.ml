module Circuit = Phoenix_circuit.Circuit
module Compiler = Phoenix.Compiler
module Pipelines = Phoenix_pipeline.Registry

type compiler = Naive | Tket | Paulihedral | Tetris | Phoenix_c

let compiler_name = function
  | Naive -> "original"
  | Tket -> "TKET-like"
  | Paulihedral -> "Paulihedral-like"
  | Tetris -> "Tetris-like"
  | Phoenix_c -> "PHOENIX"

let registry_name = function
  | Naive -> "naive"
  | Tket -> "tket"
  | Paulihedral -> "paulihedral"
  | Tetris -> "tetris"
  | Phoenix_c -> "phoenix"

let entry compiler =
  match Pipelines.find (registry_name compiler) with
  | Some e -> e
  | None -> assert false

type isa = Cnot | Su4

type outcome = {
  counts : Metrics.counts;
  swaps : int;
  logical_two_q : int;
  seconds : float;
  pass_times : (string * float) list;
}

let options ?(o3 = true) ~isa ~target () =
  {
    Compiler.default_options with
    isa = (match isa with Cnot -> Compiler.Cnot_isa | Su4 -> Compiler.Su4_isa);
    target;
    peephole = o3;
  }

(* Every compiler — PHOENIX and baselines alike — runs through the
   pipeline registry; the baseline entries end with the shared SABRE
   routing + ISA lowering tail on hardware targets, which is exactly the
   treatment the paper's baseline columns get. *)
let run ~options ~logical compiler n blocks =
  let t0 = Sys.time () in
  let r = Pipelines.compile_blocks ~options (entry compiler) n blocks in
  {
    counts =
      {
        Metrics.gates = Circuit.length r.Compiler.circuit;
        two_q = r.Compiler.two_q_count;
        depth = Circuit.depth r.Compiler.circuit;
        depth_2q = r.Compiler.depth_2q;
      };
    swaps = r.Compiler.num_swaps;
    logical_two_q =
      (if logical then r.Compiler.two_q_count else r.Compiler.logical_two_q);
    seconds = Sys.time () -. t0;
    pass_times = r.Compiler.pass_times;
  }

let run_logical ?o3 ~isa compiler n blocks =
  run ~options:(options ?o3 ~isa ~target:Compiler.Logical ()) ~logical:true
    compiler n blocks

let run_hardware ?o3 ~isa topo compiler n blocks =
  run
    ~options:(options ?o3 ~isa ~target:(Compiler.Hardware topo) ())
    ~logical:false compiler n blocks
