(** Uniform drivers running each compiler on a workload at a given
    target/ISA, mirroring the paper's experimental settings: baselines
    compile logically (optionally with the O3-style peephole), get routed
    by SABRE, and are rebased to SU(4) when that ISA is selected; PHOENIX
    runs its integrated pipeline.  All of them dispatch through the
    pipeline registry ({!Phoenix_pipeline.Registry}), so every outcome
    carries the registry report's per-pass timings. *)

type compiler = Naive | Tket | Paulihedral | Tetris | Phoenix_c

val compiler_name : compiler -> string

type isa = Cnot | Su4

type outcome = {
  counts : Metrics.counts;
  swaps : int;  (** 0 for logical compilation *)
  logical_two_q : int;  (** pre-routing 2Q count under the same ISA *)
  seconds : float;
  pass_times : (string * float) list;
      (** per-pass wall-clock seconds, in pipeline order *)
}

val run_logical :
  ?o3:bool -> isa:isa -> compiler ->
  int -> (Phoenix_pauli.Pauli_string.t * float) list list ->
  outcome
(** [run_logical ~isa compiler n blocks] — all-to-all compilation.
    [o3] (default true) toggles the peephole stage where the paper
    evaluates ±O3 variants. *)

val run_hardware :
  ?o3:bool -> isa:isa -> Phoenix_topology.Topology.t -> compiler ->
  int -> (Phoenix_pauli.Pauli_string.t * float) list list ->
  outcome
(** Hardware-aware compilation: baselines are followed by SABRE routing
    and a post-routing peephole; PHOENIX uses its routing-aware
    ordering. *)
