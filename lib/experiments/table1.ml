module Circuit = Phoenix_circuit.Circuit

type row = {
  label : string;
  qubits : int;
  pauli : int;
  w_max : int;
  gates : int;
  cnots : int;
  depth : int;
  depth_2q : int;
}

let paper =
  [
    "CH2_cmplt_BK", (14, 1488, 10, 37780, 19574, 23568, 19399);
    "CH2_cmplt_JW", (14, 1488, 14, 34280, 21072, 23700, 19749);
    "CH2_frz_BK", (12, 828, 10, 19880, 10228, 12559, 10174);
    "CH2_frz_JW", (12, 828, 12, 17658, 10344, 11914, 9706);
    "H2O_cmplt_BK", (14, 1000, 10, 25238, 13108, 15797, 12976);
    "H2O_cmplt_JW", (14, 1000, 14, 23210, 14360, 16264, 13576);
    "H2O_frz_BK", (12, 640, 10, 15624, 8004, 9691, 7934);
    "H2O_frz_JW", (12, 640, 12, 13704, 8064, 9332, 7613);
    "LiH_cmplt_BK", (12, 640, 10, 16762, 8680, 10509, 8637);
    "LiH_cmplt_JW", (12, 640, 12, 13700, 8064, 9342, 7616);
    "LiH_frz_BK", (10, 144, 9, 2890, 1442, 1868, 1438);
    "LiH_frz_JW", (10, 144, 10, 2850, 1616, 1985, 1576);
    "NH_cmplt_BK", (12, 640, 10, 15624, 8004, 9691, 7934);
    "NH_cmplt_JW", (12, 640, 12, 13704, 8064, 9332, 7613);
    "NH_frz_BK", (10, 360, 9, 8303, 4178, 5214, 4160);
    "NH_frz_JW", (10, 360, 10, 7046, 3896, 4640, 3674);
  ]

let run ?labels () =
  List.map
    (fun (case : Workloads.uccsd_case) ->
      let gadgets = Workloads.gadgets case in
      let circuit = Phoenix_baselines.Naive.compile case.Workloads.n gadgets in
      let w_max =
        List.fold_left
          (fun acc (p, _) -> max acc (Phoenix_pauli.Pauli_string.weight p))
          0 gadgets
      in
      {
        label = case.Workloads.label;
        qubits = case.Workloads.n;
        pauli = List.length gadgets;
        w_max;
        gates = Circuit.length circuit;
        cnots = Circuit.count_cnot circuit;
        depth = Circuit.depth circuit;
        depth_2q = Circuit.depth_2q circuit;
      })
    (Workloads.uccsd_suite ?labels ())

let print fmt rows =
  Format.fprintf fmt
    "@[<v>== Table I: UCCSD benchmark suite (measured | paper) ==@,";
  Format.fprintf fmt
    "%-14s %-9s %-11s %-8s %-15s %-15s %-15s %-15s@," "Benchmark" "#Qubit"
    "#Pauli" "w_max" "#Gate" "#CNOT" "Depth" "Depth-2Q";
  List.iter
    (fun r ->
      let pq, pp, pw, pg, pc, pd, pd2 =
        match List.assoc_opt r.label paper with
        | Some v -> v
        | None -> 0, 0, 0, 0, 0, 0, 0
      in
      Format.fprintf fmt
        "%-14s %2d|%-6d %4d|%-6d %2d|%-5d %6d|%-8d %6d|%-8d %6d|%-8d %6d|%-8d@,"
        r.label r.qubits pq r.pauli pp r.w_max pw r.gates pg r.cnots pc
        r.depth pd r.depth_2q pd2)
    rows;
  Format.fprintf fmt "@]@."
