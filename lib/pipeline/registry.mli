(** The pipeline registry: every compiler in this repo — PHOENIX and the
    five baselines — as a named {!Phoenix.Pass} pipeline over the shared
    compilation context, all returning the common
    {!Phoenix.Compiler.report}.

    The CLI dispatches [--compiler]/[--pipeline] through {!find}, the
    experiment drivers compile through {!compile_blocks}, and
    [phoenix passes] prints {!catalog} — so adding a pipeline here
    surfaces it everywhere at once. *)

type entry = {
  name : string;  (** stable CLI identifier ("phoenix", "tket", ...) *)
  description : string;  (** one line, shown by [phoenix passes] *)
  passes : Phoenix.Compiler.options -> Phoenix.Pass.t list;
      (** the pipeline for the given options; option-dependent stages
          (routing, verification, exact-mode ordering) appear or
          disappear accordingly *)
  requires_topology : bool;  (** 2QAN: refuses logical targets *)
  two_local_only : bool;  (** 2QAN: refuses weight > 2 gadgets *)
  uses_blocks : bool;
      (** adopt algorithm-level term blocks as IR groups when the
          Hamiltonian records them (PHOENIX does; the baselines consume
          the flat Trotter gadget program, as their references do) *)
}

val all : entry list
(** Registry order is the CLI listing order. *)

val find : string -> entry option

val names : unit -> string list

val compile :
  ?options:Phoenix.Compiler.options ->
  ?protect:bool ->
  ?hooks:Phoenix.Pass.hook list ->
  entry ->
  Phoenix_ham.Hamiltonian.t ->
  Phoenix.Compiler.report
(** Compile a Hamiltonian through a registered pipeline.  Respects
    [options.tau] for Trotterization and [entry.uses_blocks] for block
    adoption; [hooks] fire at every pass boundary.  [protect] (here and
    below) is {!Phoenix.Pass.run}'s fail-closed mode: unexpected
    exceptions re-raise as {!Phoenix.Pass.Failed} with the pass named. *)

val compile_gadgets :
  ?options:Phoenix.Compiler.options ->
  ?protect:bool ->
  ?hooks:Phoenix.Pass.hook list ->
  entry ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix.Compiler.report
(** Compile an explicit gadget program over [n] qubits. *)

val compile_blocks :
  ?options:Phoenix.Compiler.options ->
  ?protect:bool ->
  ?hooks:Phoenix.Pass.hook list ->
  entry ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list list ->
  Phoenix.Compiler.report
(** Compile with caller-supplied algorithm-level blocks.  Pipelines that
    don't consume block structure (tket, 2qan, naive) see the flattened
    program. *)

val compile_stream :
  ?options:Phoenix.Compiler.options ->
  ?protect:bool ->
  ?hooks:Phoenix.Pass.hook list ->
  ?keep_circuit:bool ->
  ?emit:(Phoenix_circuit.Circuit.t -> unit) ->
  steps:int ->
  entry ->
  Phoenix_ham.Hamiltonian.t ->
  Phoenix.Compiler.stream_report
(** Streaming compile: [steps] first-order Trotter steps of the
    Hamiltonian fed to {!Phoenix.Compiler.compile_stream} one chunk per
    step, through this entry's pass list — so baselines stream too.
    Respects [entry.uses_blocks] exactly like {!compile}; a one-step
    stream is bit-identical to {!compile} at the same options (logical
    targets only — streaming raises [Invalid_argument] on hardware
    targets, see {!Phoenix.Compiler.compile_stream}). *)

val compile_template :
  ?options:Phoenix.Compiler.options ->
  ?protect:bool ->
  ?hooks:Phoenix.Pass.hook list ->
  ?certified:bool ->
  entry ->
  Phoenix_ham.Hamiltonian.t ->
  (Phoenix.Compiler.template, string) result
(** Parametric compile: one template parameter ["theta<k>"] per
    algorithm-level block (or per Trotter gadget when the Hamiltonian
    records none), scaling that block's tau-scaled base angles.  Binding
    every parameter to [1.0] reproduces {!compile} at the same options
    bit-identically.  [Error] for pipelines without block-structured IR
    (every baseline — only the canonical phoenix pipeline compiles
    symbolic angles).  Don't attach boundary-lint hooks here: the
    intermediate circuits carry slot angles, which the angle-sanity lint
    correctly reports as errors on {e bound} circuits.  [certified]
    (default [false]) declares that a symbolic certify hook
    ({!Hooks.certify}) rides along, replacing the dense-verification
    deferral diagnostic — see {!Phoenix.Compiler.compile_template}. *)

(** {1 Pass catalog} *)

type catalog_entry = {
  pass_name : string;
  pass_description : string;
  pipelines : string list;  (** registry names of the pipelines using it *)
}

val catalog : unit -> catalog_entry list
(** Every distinct pass across all registered pipelines (keyed by name
    and description), in first-appearance order, with the pipelines that
    use it.  Computed under representative options — hardware target,
    verification on — so option-gated stages are included. *)
