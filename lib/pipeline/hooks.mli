(** Ready-made pass-boundary instrumentation for {!Phoenix.Pass.run}.

    Both hooks accumulate into caller-owned refs (newest first) so they
    compose with any pipeline without threading state through the
    context. *)

val lint :
  (string * Phoenix_analysis.Finding.t) list ref -> Phoenix.Pass.hook
(** After every pass with a non-empty circuit, run the basis-agnostic
    analyses (angle sanity, 2Q-layer consistency) and record each
    finding tagged with the pass that produced the circuit — pinpointing
    the pass that introduced a NaN angle or a layering bug, which
    final-circuit linting cannot do. *)

val translation_validate :
  Phoenix_verify.Diag.t list ref -> Phoenix.Pass.hook
(** Whole-program Pauli-propagation validation at the one boundary where
    it is sound for every registered pipeline: the pass that materializes
    the full circuit from an empty one (assemble / naive's synth), before
    peephole rewriting or routing.  Records an [Info] diagnostic on
    success, an [Error] on mismatch.  This gives baseline pipelines —
    which had no verification story at all — a translation-validation
    check for free. *)

val certify :
  Phoenix_tv.Certify.boundary list ref -> Phoenix.Pass.hook
(** {!Phoenix_tv.Certify.hook}: symbolic translation validation of every
    executed pass boundary against the pass's claimed certificate.
    Unlike {!translation_validate} this audits {e all} boundaries —
    including peephole and routing — and works on slotted (template)
    circuits, because the check happens in the frame × phase-polynomial
    abstract domain rather than by dense simulation. *)
