module Compiler = Phoenix.Compiler
module Pass = Phoenix.Pass
module Passes = Phoenix.Passes
module Hamiltonian = Phoenix_ham.Hamiltonian
module Clock = Phoenix_util.Clock

type entry = {
  name : string;
  description : string;
  passes : Compiler.options -> Pass.t list;
  requires_topology : bool;
  two_local_only : bool;
  uses_blocks : bool;
}

(* The tail every logical-level baseline shares: rebase to the target
   ISA (the identity for already-CNOT circuits under [Cnot_isa]), or —
   on hardware targets — SABRE routing plus physical lowering; then the
   structural validator when verification was requested. *)
let baseline_tail (options : Compiler.options) =
  (match options.Compiler.target with
  | Compiler.Hardware _ -> [ Passes.route_sabre; Passes.lower_routed ]
  | Compiler.Logical -> [ Passes.rebase ])
  @ (if options.Compiler.verify then [ Passes.verify_structural ] else [])

let phoenix =
  {
    name = "phoenix";
    description =
      "the PHOENIX pipeline: IR grouping, BSF simplification, Tetris-like \
       ordering, ISA lowering, hardware-aware routing";
    passes = (fun options -> Compiler.passes options);
    requires_topology = false;
    two_local_only = false;
    uses_blocks = true;
  }

let tket =
  {
    name = "tket";
    description =
      "TKET-like: commuting-set partition, simultaneous diagonalization, \
       sorted phase ladders, peephole";
    passes = (fun options -> Phoenix_baselines.Tket_like.passes @ baseline_tail options);
    requires_topology = false;
    two_local_only = false;
    uses_blocks = false;
  }

let paulihedral =
  {
    name = "paulihedral";
    description =
      "Paulihedral-like: support-keyed blocks chained by overlap, \
       block-local ladder synthesis, peephole";
    passes =
      (fun options ->
        Phoenix_baselines.Paulihedral_like.passes ~with_grouping:true
        @ baseline_tail options);
    requires_topology = false;
    two_local_only = false;
    uses_blocks = false;
  }

let tetris =
  {
    name = "tetris";
    description =
      "Tetris-like: blocks ordered by boundary cancellation \
       compatibility, Z-first ladders, peephole";
    passes =
      (fun options ->
        Phoenix_baselines.Tetris_like.passes ~with_grouping:true
        @ baseline_tail options);
    requires_topology = false;
    two_local_only = false;
    uses_blocks = false;
  }

let qan2 =
  {
    name = "2qan";
    description =
      "2QAN-like: interaction-weighted placement and greedy \
       commuting-interaction routing for 2-local programs";
    passes =
      (fun options ->
        Phoenix_baselines.Qan2_like.passes
        @ (if options.Compiler.verify then [ Passes.verify_structural ] else []));
    requires_topology = true;
    two_local_only = true;
    uses_blocks = false;
  }

let naive =
  {
    name = "naive";
    description =
      "textbook per-gadget CNOT-ladder synthesis in program order (the \
       \"original circuit\" of the paper's tables)";
    passes = (fun options -> Phoenix_baselines.Naive.passes @ baseline_tail options);
    requires_topology = false;
    two_local_only = false;
    uses_blocks = false;
  }

let all = [ phoenix; tket; paulihedral; tetris; qan2; naive ]

let find name = List.find_opt (fun e -> e.name = name) all

let names () = List.map (fun e -> e.name) all

(* --- running a registered pipeline ------------------------------------ *)

let run ?protect ?hooks entry (options : Compiler.options) ctx =
  let t0 = Clock.monotonic_s () in
  let before = Phoenix_cache.Cache.stats () in
  let ctx, trace = Pass.run ?protect ?hooks (entry.passes options) ctx in
  Compiler.report_of_ctx
    ~cache_stats:(Phoenix_cache.Cache.diff (Phoenix_cache.Cache.stats ()) before)
    ~wall_time:(Clock.monotonic_s () -. t0) ctx trace

let compile_gadgets ?(options = Compiler.default_options) ?protect ?hooks entry
    n gadgets =
  run ?protect ?hooks entry options (Pass.init ~gadgets options n)

let compile_blocks ?(options = Compiler.default_options) ?protect ?hooks entry n
    blocks =
  run ?protect ?hooks entry options
    (Pass.init ~gadgets:(List.concat blocks) ~term_blocks:blocks options n)

let compile ?(options = Compiler.default_options) ?protect ?hooks entry h =
  let n = Hamiltonian.num_qubits h in
  match (if entry.uses_blocks then Hamiltonian.term_blocks h else None) with
  | Some blocks ->
    let to_gadget (t : Phoenix_pauli.Pauli_term.t) =
      ( t.Phoenix_pauli.Pauli_term.pauli,
        2.0 *. t.Phoenix_pauli.Pauli_term.coeff *. options.Compiler.tau )
    in
    compile_blocks ~options ?protect ?hooks entry n
      (List.map (List.map to_gadget) blocks)
  | None ->
    compile_gadgets ~options ?protect ?hooks entry n
      (Hamiltonian.trotter_gadgets ~tau:options.Compiler.tau h)

(* --- streaming compilation -------------------------------------------- *)

let compile_stream ?(options = Compiler.default_options) ?protect ?hooks
    ?keep_circuit ?emit ~steps entry h =
  let n = Hamiltonian.num_qubits h in
  let chunk =
    match (if entry.uses_blocks then Hamiltonian.term_blocks h else None) with
    | Some blocks ->
      let to_gadget (t : Phoenix_pauli.Pauli_term.t) =
        ( t.Phoenix_pauli.Pauli_term.pauli,
          2.0 *. t.Phoenix_pauli.Pauli_term.coeff *. options.Compiler.tau )
      in
      Compiler.chunk_of_blocks (List.map (List.map to_gadget) blocks)
    | None ->
      Compiler.chunk_of_gadgets
        (Hamiltonian.trotter_gadgets ~tau:options.Compiler.tau h)
  in
  if steps < 1 then
    invalid_arg "Registry.compile_stream: steps must be positive";
  Compiler.compile_stream ~options ?protect ?hooks ?keep_circuit ?emit
    ~pipeline:entry.passes n
    (Seq.init steps (fun _ -> chunk))

(* --- parametric compilation ------------------------------------------- *)

(* Only PHOENIX owns the slot-aware pipeline ([Compiler.passes] +
   [parametrize]); the baselines replay their references' concrete-angle
   algorithms, so templating them would silently change what is being
   benchmarked.  [uses_blocks] is the discriminator: it marks the one
   entry whose pipeline is the canonical compiler. *)
let compile_template ?(options = Compiler.default_options) ?protect ?hooks
    ?certified entry h =
  if not entry.uses_blocks then
    Error
      (Printf.sprintf
         "pipeline '%s' has no parametric-template support (only the \
          canonical phoenix pipeline compiles symbolic angles)"
         entry.name)
  else begin
    let n = Hamiltonian.num_qubits h in
    (* One parameter per algorithm-level block (or per Trotter gadget
       when the Hamiltonian records no blocks), scaling the block's
       tau-scaled base angles: binding every parameter to 1.0 replays
       [compile] at the same options bit-identically. *)
    let blocks =
      match Hamiltonian.term_blocks h with
      | Some blocks ->
        List.map
          (List.map (fun (t : Phoenix_pauli.Pauli_term.t) ->
               ( t.Phoenix_pauli.Pauli_term.pauli,
                 2.0 *. t.Phoenix_pauli.Pauli_term.coeff
                 *. options.Compiler.tau )))
          blocks
      | None ->
        List.map
          (fun g -> [ g ])
          (Hamiltonian.trotter_gadgets ~tau:options.Compiler.tau h)
    in
    let symbolic =
      List.mapi
        (fun k block ->
          List.map
            (fun (p, base) ->
              (p, Phoenix_pauli.Angle.param ~index:k ~scale:base))
            block)
        blocks
    in
    let params =
      Array.init (List.length blocks) (Printf.sprintf "theta%d")
    in
    Ok
      (Compiler.compile_template ~options ?protect ?hooks ?certified ~params n
         symbolic)
  end

(* --- the pass catalog -------------------------------------------------- *)

type catalog_entry = {
  pass_name : string;
  pass_description : string;
  pipelines : string list;  (** registry names of the pipelines using it *)
}

(* Representative options that exercise the longest variant of every
   pipeline: hardware target (routing present), verification on,
   non-exact (ordering present). *)
let catalog () =
  let repr =
    {
      Compiler.default_options with
      Compiler.target = Compiler.Hardware (Phoenix_topology.Topology.line 4);
      Compiler.verify = true;
    }
  in
  let table : (string * string, string list ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      List.iter
        (fun (p : Pass.t) ->
          let key = (p.Pass.name, p.Pass.description) in
          match Hashtbl.find_opt table key with
          | Some users -> if not (List.mem e.name !users) then users := e.name :: !users
          | None ->
            Hashtbl.add table key (ref [ e.name ]);
            order := key :: !order)
        (e.passes repr))
    all;
  List.rev_map
    (fun ((name, description) as key) ->
      {
        pass_name = name;
        pass_description = description;
        pipelines = List.rev !(Hashtbl.find table key);
      })
    !order
