module Pass = Phoenix.Pass
module Circuit = Phoenix_circuit.Circuit
module Circuit_lint = Phoenix_analysis.Circuit_lint
module Analyses = Phoenix_analysis.Registry
module Diag = Phoenix_verify.Diag
module Equiv = Phoenix_verify.Equiv

(* Mid-pipeline circuits are not yet in the target ISA (abstract Pauli
   rotations, un-expanded SWAPs), so per-boundary linting runs only the
   basis-agnostic analyses; ISA/coupling conformance and metrics
   certification belong to the final circuit and stay with [--lint]. *)
let boundary_analyses = [ "angle-sanity"; "layer-consistency" ]

let lint acc : Pass.hook =
 fun ~pass ~before:_ ~after ~seconds:_ ->
  if Circuit.length after.Pass.circuit > 0 then begin
    let target = Circuit_lint.target after.Pass.circuit in
    let findings = Analyses.run ~only:boundary_analyses target in
    List.iter (fun f -> acc := (pass.Pass.name, f) :: !acc) findings
  end

(* The one boundary where whole-program translation validation is sound
   for every pipeline: the pass that materializes the full circuit from
   an empty one (assemble, or naive's synth).  Later passes rewrite
   rotations (peephole folding) or permute qubits (routing), where
   gadget-multiset propagation checking no longer applies. *)
let applicable ~(before : Pass.ctx) ~(after : Pass.ctx) =
  Circuit.length before.Pass.circuit = 0
  && Circuit.length after.Pass.circuit > 0
  && after.Pass.num_swaps = 0
  && after.Pass.gadgets <> []

let translation_validate acc : Pass.hook =
 fun ~pass ~before ~after ~seconds:_ ->
  if applicable ~before ~after then begin
    let result =
      Equiv.propagation_check ~exact:after.Pass.options.Pass.exact after.Pass.n
        after.Pass.gadgets after.Pass.circuit
    in
    let d =
      match result with
      | Ok () ->
        Diag.make ~pass:pass.Pass.name Diag.Info
          (Printf.sprintf
             "hook: %d-gadget program propagation-validated at the %s \
              boundary"
             (List.length after.Pass.gadgets) pass.Pass.name)
      | Error msg ->
        Diag.make ~pass:pass.Pass.name Diag.Error
          (Printf.sprintf "hook: propagation check failed: %s" msg)
    in
    acc := d :: !acc
  end

(* Symbolic translation validation lives in [Phoenix_tv]; re-exported
   here so pipeline consumers find all three boundary hooks (lint,
   propagation validation, certification) in one place. *)
let certify = Phoenix_tv.Certify.hook
