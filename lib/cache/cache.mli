(** Content-addressed synthesis cache.

    Group-wise BSF simplification is the compiler's hot path, and the same
    simplified tableaux recur constantly — across Trotter steps, across
    symmetric excitation blocks, and across experiment-harness runs over
    the same presets.  This cache memoizes the synthesized circuit of a
    group keyed by a canonical digest of its tableau
    ({!Phoenix_pauli.Bsf.canonical_digest}): the row-sorted binary
    symplectic matrix with sign bits and phase angles, projected onto the
    group's support so the address is invariant under the qubit
    relabelling used at synthesis time.

    {b Bit-identity.}  The digest is reorder- and relabel-invariant, but
    synthesis is order-sensitive, so a digest match alone is not enough to
    replay a stored circuit.  Every entry therefore also records the
    {e ordered} fingerprint (program-order rows + exact-mode flag) and a
    hit requires it to match exactly.  Relabelled replay (same fingerprint,
    different absolute support) is additionally gated on both supports
    fitting in a single {!Phoenix_util.Bitvec} word, because
    [Pauli_string.compare] — used by synthesis when ranking compressed
    cores — orders strings by word-wise comparison and is only stable
    under column projection within one word.  Under these two conditions
    synthesis is equivariant, so a cached replay is bit-identical to a
    cold synthesis.

    {b Tiers.}  [Mem] is an in-process LRU with a byte budget
    ([PHOENIX_CACHE_BUDGET], default 64 MiB).  [Disk] adds a persistent
    tier under {!dir} ([PHOENIX_CACHE_DIR]) with versioned, checksummed
    entries; corrupt or mismatched entries are skipped with a [Warning]
    diagnostic and recompilation proceeds — never a crash.

    {b Concurrency.}  All mutable state sits behind one mutex, so lookups
    and stores are safe from the [Parallel] domain pool; persisted writes
    go through a temp file and an atomic rename (single-writer commit). *)

type tier = Off | Mem | Disk

val tier_of_string : string -> tier option
val tier_to_string : tier -> string

type health = Full | Mem_only | No_cache
(** The cache's own degradation ladder (disk → mem → off), global to the
    process.  After {!Testing.disk_error_threshold} {e consecutive} disk
    faults the persistent tier is parked and [Disk] requests behave as
    [Mem] ([Mem_only]); [No_cache] turns every request into [Off].  One
    successful disk operation resets the fault streak. *)

val health_to_string : health -> string

val health : unit -> health
(** Current rung.  Pipelines compare before/after a pass to surface any
    step the cache took as a degradation event. *)

val reset_health : unit -> unit
(** Re-arm the ladder at [Full] (e.g. at the start of a new job, whose
    cache directory may be healthy again). *)

type key
(** Content address of one group's tableau: canonical digest, ordered
    fingerprint, absolute support, and exact-mode flag.  Symbolic
    {!Phoenix_pauli.Angle} slot angles address by their first-use rank
    within the group (not their IEEE bits), so parametric compiles of the
    same structure hit across parameter values and across processes;
    stored entries carry rank-relative slots that are rewritten to the
    requester's slots on replay. *)

val key_of_tableau : exact:bool -> Phoenix_pauli.Bsf.t -> key

val key_of_terms :
  exact:bool -> int -> (Phoenix_pauli.Pauli_string.t * float) list -> key
(** [key_of_terms ~exact n terms] builds the tableau with
    [Bsf.of_terms n terms] and addresses it. *)

val digest : key -> string
(** Hex content digest (the LRU bucket and the disk file prefix). *)

val relabel_safe : key -> bool
(** Whether entries for this key may be replayed onto a different absolute
    support (all support indices fit in one bit vector word). *)

val lookup :
  ?record:(Phoenix_verify.Diag.t -> unit) ->
  tier:tier ->
  n:int ->
  key ->
  Phoenix_circuit.Circuit.t option
(** Consult the cache before synthesis.  A hit returns the stored circuit
    relabelled onto the key's absolute support, over [n] qubits.  Disk
    faults (truncated, bit-flipped, or version-mismatched entries) are
    reported through [record] as [Warning] diagnostics and counted in
    {!stats}, and the lookup degrades to a miss. *)

val store :
  ?record:(Phoenix_verify.Diag.t -> unit) ->
  tier:tier ->
  key ->
  Phoenix_circuit.Circuit.t ->
  unit
(** Commit a freshly synthesized circuit.  Idempotent: a key already
    resident is left untouched.  With [tier = Disk] the entry is also
    persisted: staged in a temp file and published with an atomic
    rename, falling back to copy+fsync+rename-within-directory when the
    staging file lands on a different filesystem (EXDEV).  Write
    failures are reported through [record] and otherwise ignored. *)

(** {1 Counters} *)

type stats = {
  hits : int;  (** lookups answered from memory or disk *)
  misses : int;
  disk_hits : int;  (** subset of [hits] that were faulted in from disk *)
  disk_errors : int;  (** corrupt/mismatched/unwritable persistent entries *)
  evictions : int;  (** LRU evictions forced by the byte budget *)
  insertions : int;
  entries : int;  (** resident in-memory entries (gauge, not a counter) *)
  bytes : int;  (** resident in-memory payload bytes (gauge) *)
}

val stats : unit -> stats
val stats_zero : stats

val diff : stats -> stats -> stats
(** [diff later earlier] subtracts the counters and keeps the gauges
    ([entries], [bytes]) of [later] — the per-run delta used by reports. *)

val stats_to_json : stats -> string
(** One-line JSON object, keys matching the record fields. *)

val reset_stats : unit -> unit

(** {1 Memory tier control} *)

val budget : unit -> int
val set_budget : int -> unit
(** Byte budget of the memory tier; shrinking evicts immediately. *)

val clear_memory : unit -> unit

(** {1 Persistent tier} *)

val dir : unit -> string
(** [PHOENIX_CACHE_DIR] if set, else [$XDG_CACHE_HOME/phoenix], else
    [$HOME/.cache/phoenix].  Re-read on every use so tests can repoint it. *)

module Persist : sig
  val format_version : string
  (** First line of every cache file; bumped on layout changes. *)

  type entry_info = {
    fingerprint : string;
    support : int array;  (** absolute support at store time *)
    relabel_safe : bool;
    gates : Phoenix_circuit.Gate.t list;  (** canonical (rank) coordinates *)
    bytes : int;  (** marshalled payload size *)
  }

  val list_files : ?dir:string -> unit -> string list
  (** Absolute paths of every cache entry file, sorted. *)

  val read_file : string -> (entry_info, string) result
  (** Parse and validate one entry file: version line, checksum line
      (verified {e before} unmarshalling), payload.  [Error] carries a
      human-readable fault description. *)

  val digest_of_file : string -> string option
  (** The content digest encoded in an entry file's basename. *)

  val disk_bytes : ?dir:string -> unit -> int
  val clear : ?dir:string -> unit -> int
  (** Remove every entry file; returns how many were removed. *)
end

(** {1 Testing hooks}

    For the resilience tests and the chaos harness only. *)
module Testing : sig
  val force_health : health -> unit
  (** Pin the ladder at a rung (resets the fault streak). *)

  val trip_disk_errors : int -> unit
  (** Register [k] consecutive disk faults, as a burst of real I/O
      errors would. *)

  val set_force_exdev : bool -> unit
  (** Make every persist commit take the cross-filesystem
      copy+fsync+rename fallback, as if the staging rename failed with
      [EXDEV]. *)

  val disk_error_threshold : int
  (** Consecutive disk faults that park the persistent tier. *)
end
