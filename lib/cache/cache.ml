module Bsf = Phoenix_pauli.Bsf
module Angle = Phoenix_pauli.Angle
module Bitvec = Phoenix_util.Bitvec
module Chaos = Phoenix_util.Chaos
module Circuit = Phoenix_circuit.Circuit
module Gate = Phoenix_circuit.Gate
module Diag = Phoenix_verify.Diag

type tier = Off | Mem | Disk

type health = Full | Mem_only | No_cache

let health_to_string = function
  | Full -> "full"
  | Mem_only -> "mem-only"
  | No_cache -> "off"

let tier_of_string = function
  | "off" -> Some Off
  | "mem" | "memory" -> Some Mem
  | "disk" -> Some Disk
  | _ -> None

let tier_to_string = function Off -> "off" | Mem -> "mem" | Disk -> "disk"

(* ------------------------------------------------------------------ *)
(* Keys                                                               *)
(* ------------------------------------------------------------------ *)

type key = {
  k_digest : string;
  k_fingerprint : string;
  k_support : int array;
  k_relabel_safe : bool;
  k_slots : float array;
      (* The requester's slot angles in first-use row order — the same
         order the fingerprint's local slot ranks refer to.  Entries are
         stored with slot angles rewritten to those local ranks, and
         [expand] rewrites them back through this array, so parametric
         compiles hit across parameter values, sessions, and processes. *)
}

let key_of_tableau ~exact bsf =
  let support = Array.of_list (Bsf.support_indices bsf) in
  let relabel_safe =
    (* [Pauli_string.compare] orders by word-wise bit-vector comparison,
       which is stable under column projection only when every support
       index lives in the first word — outside that, relabelled replay
       could pick a different compressed core. *)
    Array.length support = 0
    || support.(Array.length support - 1) < Bitvec.bits_per_word
  in
  {
    k_digest = Bsf.canonical_digest bsf;
    k_fingerprint =
      (if exact then "exact;" else "trot;") ^ Bsf.canonical_form bsf;
    k_support = support;
    k_relabel_safe = relabel_safe;
    k_slots = Bsf.slots bsf;
  }

let key_of_terms ~exact n terms = key_of_tableau ~exact (Bsf.of_terms n terms)
let digest k = k.k_digest
let relabel_safe k = k.k_relabel_safe

(* An entry is hit-compatible when the ordered fingerprint (which folds in
   the exact-mode flag) matches and the replay is provably bit-identical:
   either the absolute support is the very same, or both sides are
   single-word relabel-safe. *)
let compatible ~fingerprint ~support ~safe key =
  String.equal fingerprint key.k_fingerprint
  && (support = key.k_support || (safe && key.k_relabel_safe))

(* ------------------------------------------------------------------ *)
(* Relabelling between absolute and canonical (rank) coordinates      *)
(* ------------------------------------------------------------------ *)

exception Unmappable

(* Stored entries are doubly canonical: qubits become support ranks, and
   slot angles become their first-use rank in [k_slots] (each occurrence
   keeping its own sign bit).  Synthesis only ever negates or passes row
   angles through, and a fingerprint hit implies the requester's rows
   carry the same occurrence signs as the storer's, so replaying the
   stored sign bit onto the requester's slot id is exact. *)
let canonical_angle key =
  let ranks = Hashtbl.create 8 in
  Array.iteri
    (fun j a -> Hashtbl.replace ranks (Angle.slot_id a) j)
    key.k_slots;
  fun theta ->
    match Angle.view theta with
    | Angle.Const _ -> theta
    | Angle.Slot { id; negated } -> (
        match Hashtbl.find_opt ranks id with
        | Some j -> Angle.with_id ~negated j
        | None -> raise Unmappable)

let expand_angle key theta =
  match Angle.view theta with
  | Angle.Const _ -> theta
  | Angle.Slot { id = j; negated } ->
      if j >= Array.length key.k_slots then raise Unmappable;
      Angle.with_id ~negated (Angle.slot_id key.k_slots.(j))

let canonical_gates key circuit =
  let ranks = Hashtbl.create 16 in
  Array.iteri (fun i q -> Hashtbl.replace ranks q i) key.k_support;
  let rank q =
    match Hashtbl.find_opt ranks q with Some i -> i | None -> raise Unmappable
  in
  match
    Circuit.gates
      (Circuit.map_angles (canonical_angle key)
         (Circuit.map_qubits rank circuit))
  with
  | gates -> Some gates
  | exception _ -> None

let expand ~n key gates =
  let support = key.k_support in
  Circuit.map_angles (expand_angle key)
    (Circuit.map_qubits (fun i -> support.(i)) (Circuit.create n gates))

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  disk_hits : int;
  disk_errors : int;
  evictions : int;
  insertions : int;
  entries : int;
  bytes : int;
}

let stats_zero =
  {
    hits = 0;
    misses = 0;
    disk_hits = 0;
    disk_errors = 0;
    evictions = 0;
    insertions = 0;
    entries = 0;
    bytes = 0;
  }

let diff later earlier =
  {
    hits = later.hits - earlier.hits;
    misses = later.misses - earlier.misses;
    disk_hits = later.disk_hits - earlier.disk_hits;
    disk_errors = later.disk_errors - earlier.disk_errors;
    evictions = later.evictions - earlier.evictions;
    insertions = later.insertions - earlier.insertions;
    entries = later.entries;
    bytes = later.bytes;
  }

let stats_to_json s =
  Printf.sprintf
    "{ \"hits\": %d, \"misses\": %d, \"disk_hits\": %d, \"disk_errors\": %d, \
     \"evictions\": %d, \"insertions\": %d, \"entries\": %d, \"bytes\": %d }"
    s.hits s.misses s.disk_hits s.disk_errors s.evictions s.insertions
    s.entries s.bytes

(* ------------------------------------------------------------------ *)
(* In-memory LRU tier                                                 *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_digest : string;
  e_fingerprint : string;
  e_support : int array;
  e_relabel_safe : bool;
  e_gates : Gate.t list;
  e_bytes : int;
  mutable prev : entry option;
  mutable next : entry option;
}

let lock = Mutex.create ()
let table : (string, entry list ref) Hashtbl.t = Hashtbl.create 256
let lru_head : entry option ref = ref None
let lru_tail : entry option ref = ref None
let total_bytes = ref 0
let total_entries = ref 0
let c_hits = ref 0
let c_misses = ref 0
let c_disk_hits = ref 0
let c_disk_errors = ref 0
let c_evictions = ref 0
let c_insertions = ref 0

(* The cache's own degradation ladder (disk -> mem -> off): a burst of
   consecutive disk faults parks the persistent tier rather than paying
   a failing I/O round-trip per group.  One success resets the streak;
   [reset_health] re-arms the tier (a new job may have a new cache dir).
   All transitions happen under the lock. *)
let health_ref = ref Full
let consec_disk_errors = ref 0
let disk_error_threshold = 3

(* Caller holds the lock. *)
let note_disk_error_locked () =
  incr c_disk_errors;
  incr consec_disk_errors;
  if !health_ref = Full && !consec_disk_errors >= disk_error_threshold then
    health_ref := Mem_only

(* Caller holds the lock. *)
let note_disk_ok_locked () = consec_disk_errors := 0

let effective_tier tier h =
  match (tier, h) with
  | Off, _ -> Off
  | _, No_cache -> Off
  | Disk, Mem_only -> Mem
  | t, (Full | Mem_only) -> t

let default_budget = 64 * 1024 * 1024

let budget_ref =
  ref
    (match Sys.getenv_opt "PHOENIX_CACHE_BUDGET" with
    | Some s -> ( match int_of_string_opt s with Some b when b > 0 -> b | _ -> default_budget)
    | None -> default_budget)

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let unlink e =
  (match e.prev with Some p -> p.next <- e.next | None -> lru_head := e.next);
  (match e.next with Some s -> s.prev <- e.prev | None -> lru_tail := e.prev);
  e.prev <- None;
  e.next <- None

let push_front e =
  e.prev <- None;
  e.next <- !lru_head;
  (match !lru_head with Some h -> h.prev <- Some e | None -> lru_tail := Some e);
  lru_head := Some e

let touch e =
  unlink e;
  push_front e

let drop_from_table e =
  match Hashtbl.find_opt table e.e_digest with
  | None -> ()
  | Some cell ->
      cell := List.filter (fun x -> x != e) !cell;
      if !cell = [] then Hashtbl.remove table e.e_digest

let evict_to_budget () =
  let continue = ref true in
  while !continue do
    match !lru_tail with
    | Some e when !total_bytes > !budget_ref ->
        unlink e;
        drop_from_table e;
        total_bytes := !total_bytes - e.e_bytes;
        decr total_entries;
        incr c_evictions
    | _ -> continue := false
  done

let find_entry key =
  match Hashtbl.find_opt table key.k_digest with
  | None -> None
  | Some cell ->
      List.find_opt
        (fun e ->
          compatible ~fingerprint:e.e_fingerprint ~support:e.e_support
            ~safe:e.e_relabel_safe key)
        !cell

(* Caller holds the lock. *)
let insert_entry key gates bytes =
  match find_entry key with
  | Some _ -> false
  | None ->
      let e =
        {
          e_digest = key.k_digest;
          e_fingerprint = key.k_fingerprint;
          e_support = key.k_support;
          e_relabel_safe = key.k_relabel_safe;
          e_gates = gates;
          e_bytes = bytes;
          prev = None;
          next = None;
        }
      in
      let cell =
        match Hashtbl.find_opt table key.k_digest with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.add table key.k_digest c;
            c
      in
      cell := e :: !cell;
      push_front e;
      total_bytes := !total_bytes + bytes;
      incr total_entries;
      incr c_insertions;
      evict_to_budget ();
      true

let stats () =
  with_lock (fun () ->
      {
        hits = !c_hits;
        misses = !c_misses;
        disk_hits = !c_disk_hits;
        disk_errors = !c_disk_errors;
        evictions = !c_evictions;
        insertions = !c_insertions;
        entries = !total_entries;
        bytes = !total_bytes;
      })

let reset_stats () =
  with_lock (fun () ->
      c_hits := 0;
      c_misses := 0;
      c_disk_hits := 0;
      c_disk_errors := 0;
      c_evictions := 0;
      c_insertions := 0)

let health () = with_lock (fun () -> !health_ref)

let reset_health () =
  with_lock (fun () ->
      health_ref := Full;
      consec_disk_errors := 0)

let budget () = with_lock (fun () -> !budget_ref)

let set_budget b =
  with_lock (fun () ->
      budget_ref := max 1 b;
      evict_to_budget ())

let clear_memory () =
  with_lock (fun () ->
      Hashtbl.reset table;
      lru_head := None;
      lru_tail := None;
      total_bytes := 0;
      total_entries := 0)

(* ------------------------------------------------------------------ *)
(* Persistent tier                                                    *)
(* ------------------------------------------------------------------ *)

let dir () =
  match Sys.getenv_opt "PHOENIX_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "phoenix"
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some h when h <> "" ->
              Filename.concat (Filename.concat h ".cache") "phoenix"
          | _ -> "_phoenix_cache"))

module Persist = struct
  let format_version = "phoenix-cache-v1"
  let suffix = ".pxc"

  type entry_info = {
    fingerprint : string;
    support : int array;
    relabel_safe : bool;
    gates : Gate.t list;
    bytes : int;
  }

  (* The marshalled payload.  Separate from [entry_info] so the on-disk
     layout is pinned independently of the reporting record. *)
  type payload = {
    p_fingerprint : string;
    p_support : int array;
    p_relabel_safe : bool;
    p_gates : Gate.t list;
  }

  let rec ensure_dir d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then (
      ensure_dir (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

  (* One file per (digest, variant): relabel-safe entries share a single
     variant; support-pinned entries get one per absolute support, so a
     requester's key always determines its file name. *)
  let file_basename key =
    let variant =
      Digest.to_hex
        (Digest.string
           (key.k_fingerprint
           ^
           if key.k_relabel_safe then "|safe"
           else
             "|"
             ^ String.concat ","
                 (List.map string_of_int (Array.to_list key.k_support))))
    in
    key.k_digest ^ "-" ^ String.sub variant 0 16 ^ suffix

  let path_of_key key = Filename.concat (dir ()) (file_basename key)

  let digest_of_file path =
    let base = Filename.basename path in
    match String.index_opt base '-' with
    | Some i when i = 32 -> Some (String.sub base 0 i)
    | _ -> None

  let list_files ?dir:(d = dir ()) () =
    match Sys.readdir d with
    | exception Sys_error _ -> []
    | names ->
        let files =
          Array.to_list names
          |> List.filter (fun f -> Filename.check_suffix f suffix)
          |> List.map (Filename.concat d)
        in
        List.sort String.compare files

  let read_file path =
    match open_in_bin path with
    | exception Sys_error msg -> Error ("unreadable: " ^ msg)
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match input_line ic with
            | exception End_of_file -> Error "truncated: missing version line"
            | version when version <> format_version ->
                Error
                  (Printf.sprintf "version mismatch: %S (want %S)" version
                     format_version)
            | _ -> (
                match input_line ic with
                | exception End_of_file ->
                    Error "truncated: missing checksum line"
                | checksum -> (
                    let len = in_channel_length ic - pos_in ic in
                    match really_input_string ic len with
                    | exception End_of_file -> Error "truncated: short payload"
                    | payload ->
                        if Digest.to_hex (Digest.string payload) <> checksum
                        then Error "checksum mismatch"
                        else (
                          match (Marshal.from_string payload 0 : payload) with
                          | exception _ -> Error "unreadable payload"
                          | p ->
                              Ok
                                {
                                  fingerprint = p.p_fingerprint;
                                  support = p.p_support;
                                  relabel_safe = p.p_relabel_safe;
                                  gates = p.p_gates;
                                  bytes = String.length payload;
                                }))))

  (* Testing hook: take the cross-filesystem fallback path even when the
     rename would have succeeded. *)
  let force_exdev = ref false

  (* Chaos corruption of the staged bytes, pre-publish: a truncation or a
     flipped payload byte, both of which the checksum/version validation
     in [read_file] must catch on the next read. *)
  let chaos_corrupt tmp =
    if Chaos.fire Chaos.Cache_truncate then
      Unix.truncate tmp ((Unix.stat tmp).Unix.st_size / 2)
    else if Chaos.fire Chaos.Cache_flip then begin
      let fd = Unix.openfile tmp [ Unix.O_RDWR ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let len = (Unix.fstat fd).Unix.st_size in
          if len > 0 then begin
            ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
            let b = Bytes.create 1 in
            ignore (Unix.read fd b 0 1);
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
            ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
            ignore (Unix.write fd b 0 1)
          end)
    end

  (* Fallback commit for when the staging file and the cache directory
     sit on different filesystems (rename fails with EXDEV, e.g. tmpfs
     TMPDIR vs a persistent PHOENIX_CACHE_DIR): copy into the
     destination directory, fsync, and rename within that directory —
     readers still only ever observe complete entries. *)
  let copy_then_rename tmp path =
    let local = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let ic = open_in_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let oc = open_out_bin local in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            let buf = Bytes.create 65536 in
            let rec loop () =
              let k = input ic buf 0 (Bytes.length buf) in
              if k > 0 then begin
                output oc buf 0 k;
                loop ()
              end
            in
            loop ();
            flush oc;
            Unix.fsync (Unix.descr_of_out_channel oc)));
    Unix.rename local path

  (* Single-writer commit: the payload is staged in a process-private temp
     file and published with an atomic rename, so concurrent readers only
     ever observe complete entries.  Racing writers of the same key stage
     byte-identical payloads, so either rename wins harmlessly. *)
  let write path payload =
    ensure_dir (Filename.dirname path);
    let tmp = Filename.temp_file "phoenix-cache" ".staging" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc format_version;
            output_char oc '\n';
            output_string oc (Digest.to_hex (Digest.string payload));
            output_char oc '\n';
            output_string oc payload);
        chaos_corrupt tmp;
        if !force_exdev then copy_then_rename tmp path
        else
          try Unix.rename tmp path
          with Unix.Unix_error (Unix.EXDEV, _, _) -> copy_then_rename tmp path)

  let disk_bytes ?dir () =
    List.fold_left
      (fun acc f ->
        match (Unix.stat f).Unix.st_size with
        | size -> acc + size
        | exception Unix.Unix_error _ -> acc)
      0
      (list_files ?dir ())

  let clear ?dir () =
    List.fold_left
      (fun acc f ->
        match Sys.remove f with
        | () -> acc + 1
        | exception Sys_error _ -> acc)
      0
      (list_files ?dir ())
end

(* ------------------------------------------------------------------ *)
(* Lookup / store                                                     *)
(* ------------------------------------------------------------------ *)

let warn record fmt =
  Printf.ksprintf
    (fun msg ->
      match record with
      | Some f -> f (Diag.make ~pass:"cache" Diag.Warning msg)
      | None -> ())
    fmt

let lookup ?record ~tier ~n key =
  match effective_tier tier (health ()) with
  | Off -> None
  | (Mem | Disk) as tier -> (
      let mem_hit =
        with_lock (fun () ->
            match find_entry key with
            | Some e ->
                touch e;
                incr c_hits;
                Some e.e_gates
            | None -> None)
      in
      match mem_hit with
      | Some gates -> Some (expand ~n key gates)
      | None when tier = Mem ->
          with_lock (fun () -> incr c_misses);
          None
      | None -> (
          let path = Persist.path_of_key key in
          if not (Sys.file_exists path) then (
            with_lock (fun () -> incr c_misses);
            None)
          else
            match Persist.read_file path with
            | Error msg ->
                with_lock (fun () ->
                    incr c_misses;
                    note_disk_error_locked ());
                warn record "skipping corrupt cache entry %s: %s"
                  (Filename.basename path) msg;
                None
            | Ok info
              when not
                     (compatible ~fingerprint:info.Persist.fingerprint
                        ~support:info.Persist.support
                        ~safe:info.Persist.relabel_safe key) ->
                (* Address collision or an entry persisted for an
                   incompatible support: valid file, but not replayable
                   here.  Silent miss. *)
                with_lock (fun () ->
                    incr c_misses;
                    note_disk_ok_locked ());
                None
            | Ok info -> (
                match expand ~n key info.Persist.gates with
                | circuit ->
                    with_lock (fun () ->
                        ignore
                          (insert_entry key info.Persist.gates
                             info.Persist.bytes);
                        incr c_hits;
                        incr c_disk_hits;
                        note_disk_ok_locked ());
                    Some circuit
                | exception _ ->
                    with_lock (fun () ->
                        incr c_misses;
                        note_disk_error_locked ());
                    warn record
                      "skipping cache entry %s: gates do not fit the \
                       requesting group"
                      (Filename.basename path);
                    None)))

let store ?record ~tier key circuit =
  match effective_tier tier (health ()) with
  | Off -> ()
  | (Mem | Disk) as tier -> (
      match canonical_gates key circuit with
      | None -> ()
      | Some gates ->
          let payload =
            Marshal.to_string
              {
                Persist.p_fingerprint = key.k_fingerprint;
                p_support = key.k_support;
                p_relabel_safe = key.k_relabel_safe;
                p_gates = gates;
              }
              []
          in
          let fresh =
            with_lock (fun () -> insert_entry key gates (String.length payload))
          in
          if fresh && tier = Disk then (
            match Persist.write (Persist.path_of_key key) payload with
            | () -> with_lock note_disk_ok_locked
            | exception (Sys_error msg | Unix.Unix_error (_, msg, _)) ->
              with_lock (fun () -> note_disk_error_locked ());
              warn record "could not persist cache entry: %s" msg))

module Testing = struct
  let force_health h =
    with_lock (fun () ->
        health_ref := h;
        consec_disk_errors := 0)

  let trip_disk_errors k =
    with_lock (fun () ->
        for _ = 1 to k do
          note_disk_error_locked ()
        done)

  let set_force_exdev b = Persist.force_exdev := b
  let disk_error_threshold = disk_error_threshold
end
