(** Execution of one compile job, socket-free.

    The daemon's worker domains call {!execute}; tests call it directly
    to get the serial reference behaviour the soak battery compares
    against — same code path, no transport. *)

type outcome = {
  status : Protocol.status;
  fields : (string * Json.t) list;  (** response payload fields *)
  error : string option;
  trace : Phoenix.Pass.trace;  (** for the daemon's per-pass stats *)
}

val execute : ?default_timeout_s:float -> Protocol.compile_spec -> outcome
(** Run the job to completion.  Never raises: pass failures, deadline
    expiries, bad workloads/pipelines/topologies, and injected chaos
    faults all come back as structured outcomes ([Sfailed],
    [Sdeadline], [Sbad_request], …).  [default_timeout_s] applies only
    when the spec carries neither [budget_checks] nor [timeout]. *)

val response : id:Json.t -> outcome -> Json.t
(** The response frame for an outcome ({!Protocol.ok_response}). *)
