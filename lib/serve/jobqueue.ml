type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  m : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobqueue.create: capacity must be >= 1";
  {
    q = Queue.create ();
    capacity;
    closed = false;
    m = Mutex.create ();
    nonempty = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.q >= t.capacity then `Full
      else begin
        Queue.add x t.q;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Queue.length t.q)
let capacity t = t.capacity
