(** Builtin workload specifiers, shared by the CLI and the daemon.

    One grammar everywhere: [uccsd:<Table-I label>],
    [qaoa:<Table-IV label or Reg3-100/250/500/1000>], [heisenberg:<n>],
    [tfim:<n>], [fermi-hubbard:<l> or <rows>x<cols>].  The CLI layers
    file loading on top; the daemon accepts inline Hamiltonian text
    instead (a socket server never dereferences client-supplied
    paths). *)

val of_spec : string -> (Phoenix_ham.Hamiltonian.t, string) result
(** Resolve a builtin specifier.  [Error] carries a one-line description
    including the accepted grammar. *)

val of_inline : string -> (Phoenix_ham.Hamiltonian.t, string) result
(** Parse inline Hamiltonian text (the same [coeff pauli-string] line
    format the CLI reads from files). *)

val grammar : string
(** Human-readable summary of the accepted builtin specifiers. *)
