(** The [phoenix-serve-v1] wire protocol.

    Newline-delimited JSON both ways: each request line is one JSON
    object with an ["op"] (["compile"], ["stats"], ["ping"]) and an
    ["id"] the response echoes verbatim; each response line is one JSON
    object with the schema tag, the echoed id, and a numeric ["status"]
    mirroring the CLI exit-code contract:

    {v
    0  ok
    1  failed closed (a pass failed, or the job was cancelled)
    2  bad request (malformed JSON, unknown pipeline/workload/field)
    3  verification errors ("verify": true)
    4  lint errors ("lint": true)
    5  deadline exceeded with no fallback rung
    6  overloaded (job queue full) or draining (SIGTERM received)
    v}

    Responses are written as jobs complete, so they arrive in
    {e completion} order, not request order — clients match on ["id"].
    The test battery's ordering-independence property quantifies over
    exactly this freedom. *)

module Json = Json

val schema : string
(** ["phoenix-serve-v1"]. *)

val stats_schema : string
(** ["phoenix-serve-stats-v1"]. *)

(** {1 Status codes} *)

type status =
  | Sok
  | Sfailed
  | Sbad_request
  | Sverify_errors
  | Slint_errors
  | Sdeadline
  | Soverloaded

val status_code : status -> int
val status_name : status -> string

(** {1 Requests} *)

type source =
  | Builtin of string  (** builtin workload specifier, see {!Workload} *)
  | Inline of string  (** inline [coeff pauli-string] Hamiltonian lines *)
  | Qasm of string  (** OpenQASM 2.0 text: parse + peephole + report *)

type compile_spec = {
  source : source;
  pipeline : string;
  isa : Phoenix.Compiler.isa;
  topology : string;
  exact : bool;
  verify : bool;
  lint : bool;
  timeout_s : float option;  (** wall-clock budget for this job *)
  budget_checks : int option;
      (** deterministic testing budget ({!Phoenix_util.Budget.after_checks});
          takes precedence over [timeout_s] so differential tests see
          time-independent deadline behaviour *)
  cache : Phoenix_cache.Cache.tier;  (** default [Mem]: shared across jobs *)
  domains : int;
      (** synthesis domains {e within} the job (default 1: concurrency
          comes from the worker pool, not nested pools) *)
  template : bool;
  binds : float array list;  (** parameter vectors to bind, in order *)
  dump : bool;  (** include the gate text in the response (default) *)
}

type request =
  | Compile of { id : Json.t; spec : compile_spec }
  | Stats of { id : Json.t }
  | Ping of { id : Json.t }

val parse_request : string -> (request, Json.t * string) result
(** Parse one request line.  [Error (id, msg)] carries the request id
    when one could be recovered ([Json.Null] otherwise) so the error
    response still correlates. *)

(** {1 Responses} *)

val error_response : id:Json.t -> status:status -> string -> Json.t
(** A failure frame: echoed id, status, and a structured
    [Diag]-taxonomy error object ([pass:"serve"], severity, message). *)

val circuit_digest : Phoenix_circuit.Circuit.t -> string
(** Hex digest of the gate list marshalled without sharing — equal
    exactly when the circuits are bit-identical (same gates, same float
    bits).  The soak battery compares daemon responses to serial
    compiles through this. *)

val circuit_json : dump:bool -> Phoenix_circuit.Circuit.t -> Json.t
val diag_json : Phoenix_verify.Diag.t -> Json.t
val finding_json : Phoenix_analysis.Finding.t -> Json.t
val cache_json : Phoenix_cache.Cache.stats -> Json.t

val report_json : Phoenix.Compiler.report -> Json.t
(** The common compiler report: metrics, per-pass trace (seconds +
    metric deltas), diagnostics, cache-counter deltas, degradations.
    Wall-clock fields are informational; the differential tests compare
    only the semantic subset (status, circuit digest, diagnostics,
    degradations, metrics). *)

val ok_response :
  id:Json.t ->
  status:status ->
  ?error:string ->
  (string * Json.t) list ->
  Json.t
(** Assemble a response frame: schema, id, status fields, then the
    payload fields, then (when [error] is given) the structured error
    object. *)
