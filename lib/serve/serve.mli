(** [phoenix serve] — the concurrent compilation daemon.

    Topology: one accept thread; one reader thread per connection; a
    bounded {!Jobqueue} as the backpressure point; a pool of worker
    {e domains} (OCaml 5 [Domain.spawn], so jobs compile in parallel)
    popping jobs and writing responses in completion order.  All jobs
    share the process-wide synthesis cache and template store, which is
    exactly what the soak battery stresses.

    Protocol: newline-delimited JSON, {!Protocol} (phoenix-serve-v1).

    Drain: {!drain} (and SIGTERM/SIGINT under {!run}) stops accepting
    connections, closes the queue — readers answer further compile
    requests with status 6 — and joins the workers once every accepted
    job has been served. *)

type addr =
  | Unix_socket of string  (** filesystem path (beware the ~100-byte cap) *)
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral port *)

type config = {
  addr : addr;
  workers : int;  (** worker domains (>= 1) *)
  max_queue : int;  (** job-queue capacity; pushes beyond it get status 6 *)
  default_timeout_s : float option;
      (** budget for jobs that carry neither ["timeout"] nor
          ["budget_checks"] *)
  max_request_bytes : int;
      (** longest accepted request line; longer ones get a structured
          status-2 response and the connection is closed *)
}

val default_config : addr -> config
(** 4 workers, queue capacity 64, no default timeout, 8 MiB lines. *)

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"] or ["tcp:HOST:PORT"] — the CLI's [--connect] syntax. *)

val addr_to_string : addr -> string

type t

val start : config -> t
(** Bind, listen, spawn the worker pool and accept thread; returns
    immediately.  Raises [Invalid_argument] on a nonsensical config and
    [Unix.Unix_error] when the address cannot be bound. *)

val port : t -> int option
(** The actual TCP port (useful after binding port 0); [None] for Unix
    sockets. *)

val drain : t -> unit
(** Graceful shutdown: stop accepting, close the queue, serve every
    already-accepted job, join the workers.  Idempotent. *)

val run : config -> unit
(** {!start}, print one [listening on ...] line to stdout, then block
    until SIGTERM/SIGINT and {!drain}.  The daemon entry point. *)

val self_test : ?workers:int -> unit -> bool
(** One-shot smoke mode for CI: boot on an ephemeral Unix socket,
    exercise ping / compile / template-bind / stats / malformed-input
    round trips through a real client connection, drain, and report
    overall success (diagnostics on stderr on failure). *)

(** Minimal NDJSON client — used by the CLI's [--connect] mode, the
    self-test, and the test battery. *)
module Client : sig
  type conn

  val connect : addr -> conn
  (** Raises [Unix.Unix_error] when the daemon is unreachable. *)

  val send : conn -> Json.t -> unit
  (** Write one request line. *)

  val send_line : conn -> string -> unit
  (** Write a raw line (for protocol fault-injection tests). *)

  val send_raw : conn -> string -> unit
  (** Write raw bytes with no newline (truncated-frame tests). *)

  val shutdown_send : conn -> unit
  (** Half-close: signal end-of-requests while still reading responses
      (the daemon serves every queued job, then closes its side). *)

  val recv : conn -> Json.t option
  (** Read and parse one response line; [None] on EOF.  Raises
      [Failure] if the daemon emits unparseable JSON (a protocol bug —
      the fault-injection battery asserts this never fires). *)

  val close : conn -> unit
end
