module Compiler = Phoenix.Compiler
module Pass = Phoenix.Pass
module Template = Phoenix.Template
module Budget = Phoenix_util.Budget
module Hamiltonian = Phoenix_ham.Hamiltonian
module Circuit = Phoenix_circuit.Circuit
module Qasm = Phoenix_circuit.Qasm
module Peephole = Phoenix_circuit.Peephole
module Topology = Phoenix_topology.Topology
module Diag = Phoenix_verify.Diag
module Structural = Phoenix_verify.Structural
module Finding = Phoenix_analysis.Finding
module Circuit_lint = Phoenix_analysis.Circuit_lint
module Analyses = Phoenix_analysis.Registry
module Resilience_lint = Phoenix_analysis.Resilience_lint
module Pipelines = Phoenix_pipeline.Registry
module Hooks = Phoenix_pipeline.Hooks
open Protocol

type outcome = {
  status : Protocol.status;
  fields : (string * Json.t) list;
  error : string option;
  trace : Pass.trace;
}

let ok ?(trace = []) fields = { status = Sok; fields; error = None; trace }

let fail ?(trace = []) status msg =
  { status; fields = []; error = Some msg; trace }

let bad_request msg = fail Sbad_request msg

(* Unlike the CLI front end (which prints and exits 2), the daemon turns
   every input problem into a structured bad-request response. *)
let topology_of_spec n = function
  | "all-to-all" -> Ok None
  | "heavy-hex" -> Ok (Some (Topology.ibm_manhattan ()))
  | "line" -> Ok (Some (Topology.line (max n 2)))
  | "ring" -> Ok (Some (Topology.ring (max n 3)))
  | "grid" ->
    let side = int_of_float (ceil (sqrt (float_of_int n))) in
    Ok (Some (Topology.grid ~rows:side ~cols:side))
  | s ->
    Error
      (Printf.sprintf
         "unknown topology %S (all-to-all, heavy-hex, line, ring, grid)" s)

let budget_of_spec ~default_timeout_s spec =
  match (spec.budget_checks, spec.timeout_s, default_timeout_s) with
  | Some k, _, _ -> Budget.after_checks k
  | None, Some s, _ | None, None, Some s -> Budget.of_timeout_s s
  | None, None, None -> Budget.none

(* Mirrors the block / Trotter dispatch in [Pipelines.compile] so lint's
   translation validation checks the circuit against exactly the gadget
   program that was compiled. *)
let program_of_entry (entry : Pipelines.entry) (options : Compiler.options) h =
  let tau = options.Compiler.tau in
  let gadgets =
    match
      if entry.Pipelines.uses_blocks then Hamiltonian.term_blocks h else None
    with
    | Some blocks ->
      List.concat_map
        (List.map (fun (t : Phoenix_pauli.Pauli_term.t) ->
             ( t.Phoenix_pauli.Pauli_term.pauli,
               2.0 *. t.Phoenix_pauli.Pauli_term.coeff *. tau )))
        blocks
    | None -> Hamiltonian.trotter_gadgets ~tau h
  in
  (Hamiltonian.num_qubits h, gadgets)

let metrics_json c =
  Json.Obj
    [
      ("two_q", Json.Num (Float.of_int (Circuit.count_2q c)));
      ("one_q", Json.Num (Float.of_int (Circuit.count_1q c)));
      ("depth_2q", Json.Num (Float.of_int (Circuit.depth_2q c)));
      ("depth", Json.Num (Float.of_int (Circuit.depth c)));
    ]

(* --- qasm jobs: parse, peephole, re-validate ---------------------------- *)

let execute_qasm spec text =
  match Qasm.of_string text with
  | exception Invalid_argument msg -> bad_request msg
  | parsed ->
    let circuit = Peephole.optimize parsed in
    let diagnostics =
      if spec.verify then
        (* imports are restricted to the CNOT alphabet by construction *)
        Structural.validate ~isa:Structural.Cnot_basis circuit
      else []
    in
    let findings =
      if spec.lint then
        Analyses.run (Circuit_lint.target ~isa:Circuit_lint.Cnot_basis circuit)
      else []
    in
    let status =
      if spec.verify && Diag.has_errors diagnostics then Sverify_errors
      else if spec.lint && Finding.has_errors findings then Slint_errors
      else Sok
    in
    {
      status;
      fields =
        [
          ("kind", Json.Str "qasm");
          ("circuit", circuit_json ~dump:spec.dump circuit);
          ("metrics", metrics_json circuit);
          ("diagnostics", Json.Arr (List.map diag_json diagnostics));
          ("findings", Json.Arr (List.map finding_json findings));
        ];
      error = None;
      trace = [];
    }

(* --- hamiltonian jobs --------------------------------------------------- *)

let lint_isa = function
  | Compiler.Cnot_isa -> Structural.Cnot_basis
  | Compiler.Su4_isa -> Structural.Su4_basis

let execute_template spec options entry h =
  match Pipelines.compile_template ~options ~protect:true entry h with
  | Error msg -> bad_request msg
  | Ok tmpl -> (
    let report = Template.report tmpl in
    match Template.bind_batch tmpl spec.binds with
    | exception Invalid_argument msg -> bad_request msg
    | bound ->
      ok ~trace:report.Compiler.trace
        [
          ("kind", Json.Str "template");
          ( "params",
            Json.Arr
              (Array.to_list
                 (Array.map (fun p -> Json.Str p) (Template.params tmpl))) );
          ( "slots",
            Json.Num (Float.of_int (Template.slot_count tmpl)) );
          ("report", report_json report);
          ( "binds",
            Json.Arr (List.map (circuit_json ~dump:spec.dump) bound) );
        ])

let execute_compile spec options entry h topo =
  let hook_findings = ref [] and hook_diags = ref [] in
  let hooks =
    (if spec.lint then [ Hooks.lint hook_findings ] else [])
    @ if spec.verify then [ Hooks.translation_validate hook_diags ] else []
  in
  let report = Pipelines.compile ~options ~protect:true ~hooks entry h in
  let circuit = report.Compiler.circuit in
  let diagnostics =
    if spec.verify then report.Compiler.diagnostics @ List.rev !hook_diags
    else []
  in
  let tagged_findings = List.rev !hook_findings in
  let findings =
    if spec.lint then
      let declared =
        {
          Circuit_lint.two_q = report.Compiler.two_q_count;
          depth_2q = report.Compiler.depth_2q;
          one_q = report.Compiler.one_q_count;
        }
      in
      Analyses.run
        (Circuit_lint.target ~isa:(lint_isa spec.isa) ?topology:topo ~declared
           ~program:(program_of_entry entry options h)
           ~exact:spec.exact ?layout:report.Compiler.layout circuit)
      @ Resilience_lint.conformance report
      @ List.map snd tagged_findings
    else []
  in
  let status =
    if spec.verify && Diag.has_errors diagnostics then Sverify_errors
    else if spec.lint && Finding.has_errors findings then Slint_errors
    else Sok
  in
  {
    status;
    fields =
      [
        ("kind", Json.Str "compile");
        ("pipeline", Json.Str entry.Pipelines.name);
        ("circuit", circuit_json ~dump:spec.dump circuit);
        ("report", report_json report);
        ("diagnostics", Json.Arr (List.map diag_json diagnostics));
        ("findings", Json.Arr (List.map finding_json findings));
      ];
    error = None;
    trace = report.Compiler.trace;
  }

let execute_hamiltonian ~default_timeout_s spec h =
  let n = Hamiltonian.num_qubits h in
  match topology_of_spec n spec.topology with
  | Error msg -> bad_request msg
  | Ok topo -> (
    match Pipelines.find spec.pipeline with
    | None ->
      bad_request
        (Printf.sprintf "unknown pipeline %S (%s)" spec.pipeline
           (String.concat ", " (Pipelines.names ())))
    | Some entry ->
      if entry.Pipelines.requires_topology && topo = None then
        bad_request
          (Printf.sprintf "the %s pipeline needs a topology"
             entry.Pipelines.name)
      else if
        entry.Pipelines.two_local_only
        && List.exists
             (fun (p, _) -> Phoenix_pauli.Pauli_string.weight p > 2)
             (Hamiltonian.trotter_gadgets h)
      then
        bad_request
          (Printf.sprintf "the %s pipeline only handles 2-local workloads"
             entry.Pipelines.name)
      else begin
        let options =
          {
            Compiler.default_options with
            isa = spec.isa;
            exact = spec.exact;
            verify = spec.verify;
            cache = spec.cache;
            domains = spec.domains;
            budget = budget_of_spec ~default_timeout_s spec;
            target =
              (match topo with
              | None -> Compiler.Logical
              | Some t -> Compiler.Hardware t);
          }
        in
        if spec.template then execute_template spec options entry h
        else execute_compile spec options entry h topo
      end)

let execute ?default_timeout_s spec =
  let job () =
    match spec.source with
    | Qasm text -> execute_qasm spec text
    | Builtin name -> (
      match Workload.of_spec name with
      | Error msg -> bad_request msg
      | Ok h -> execute_hamiltonian ~default_timeout_s spec h)
    | Inline text -> (
      match Workload.of_inline text with
      | Error msg -> bad_request msg
      | Ok h -> execute_hamiltonian ~default_timeout_s spec h)
  in
  (* Fail closed at the job boundary: a worker must outlive any job,
     including chaos-injected faults raised outside a protected pass. *)
  match job () with
  | outcome -> outcome
  | exception Pass.Interrupted { pass; reason = Budget.Deadline } ->
    fail Sdeadline
      (Printf.sprintf "deadline exceeded in pass %s with no fallback" pass)
  | exception Pass.Interrupted { pass; reason = Budget.Cancelled } ->
    fail Sfailed (Printf.sprintf "job cancelled in pass %s" pass)
  | exception Budget.Interrupted Budget.Deadline ->
    fail Sdeadline "deadline exceeded with no fallback"
  | exception Budget.Interrupted Budget.Cancelled -> fail Sfailed "job cancelled"
  | exception Pass.Failed { pass; error } ->
    fail Sfailed (Printf.sprintf "pass %s failed closed: %s" pass error)
  | exception exn ->
    fail Sfailed ("worker fault: " ^ Printexc.to_string exn)

let response ~id { status; fields; error; trace = _ } =
  ok_response ~id ~status ?error fields
