module Json = Json
module Compiler = Phoenix.Compiler
module Pass = Phoenix.Pass
module Circuit = Phoenix_circuit.Circuit
module Gate = Phoenix_circuit.Gate
module Diag = Phoenix_verify.Diag
module Finding = Phoenix_analysis.Finding
module Cache = Phoenix_cache.Cache
module Resilience = Phoenix.Resilience

let schema = "phoenix-serve-v1"
let stats_schema = "phoenix-serve-stats-v1"

type status =
  | Sok
  | Sfailed
  | Sbad_request
  | Sverify_errors
  | Slint_errors
  | Sdeadline
  | Soverloaded

let status_code = function
  | Sok -> 0
  | Sfailed -> 1
  | Sbad_request -> 2
  | Sverify_errors -> 3
  | Slint_errors -> 4
  | Sdeadline -> 5
  | Soverloaded -> 6

let status_name = function
  | Sok -> "ok"
  | Sfailed -> "failed"
  | Sbad_request -> "bad-request"
  | Sverify_errors -> "verify-errors"
  | Slint_errors -> "lint-errors"
  | Sdeadline -> "deadline"
  | Soverloaded -> "overloaded"

type source = Builtin of string | Inline of string | Qasm of string

type compile_spec = {
  source : source;
  pipeline : string;
  isa : Compiler.isa;
  topology : string;
  exact : bool;
  verify : bool;
  lint : bool;
  timeout_s : float option;
  budget_checks : int option;
  cache : Cache.tier;
  domains : int;
  template : bool;
  binds : float array list;
  dump : bool;
}

type request =
  | Compile of { id : Json.t; spec : compile_spec }
  | Stats of { id : Json.t }
  | Ping of { id : Json.t }

(* --- request parsing --------------------------------------------------- *)

exception Reject of string

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

let id_of obj = Option.value (Json.mem "id" obj) ~default:Json.Null

let bool_field obj key ~default =
  match Json.bool_field ~default key obj with
  | Some b -> b
  | None -> reject "field %S must be a boolean" key

let parse_source obj =
  match
    (Json.mem "workload" obj, Json.mem "hamiltonian" obj, Json.mem "qasm" obj)
  with
  | Some w, None, None -> (
    match Json.str w with
    | Some s -> Builtin s
    | None -> reject "field \"workload\" must be a string")
  | None, Some h, None -> (
    match Json.str h with
    | Some s -> Inline s
    | None -> reject "field \"hamiltonian\" must be a string")
  | None, None, Some q -> (
    match Json.str q with
    | Some s -> Qasm s
    | None -> reject "field \"qasm\" must be a string")
  | None, None, None ->
    reject "a compile job needs one of \"workload\", \"hamiltonian\", \"qasm\""
  | _ ->
    reject "\"workload\", \"hamiltonian\" and \"qasm\" are mutually exclusive"

let parse_binds obj =
  let vector j =
    match Json.arr j with
    | None -> reject "bind vectors must be arrays of numbers"
    | Some xs ->
      Array.of_list
        (List.map
           (fun x ->
             match Json.num x with
             | Some f -> f
             | None -> reject "bind vectors must be arrays of numbers")
           xs)
  in
  match (Json.mem "bind" obj, Json.mem "binds" obj) with
  | Some _, Some _ -> reject "\"bind\" and \"binds\" are mutually exclusive"
  | Some b, None -> [ vector b ]
  | None, Some bs -> (
    match Json.arr bs with
    | Some vs -> List.map vector vs
    | None -> reject "field \"binds\" must be an array of vectors")
  | None, None -> []

let parse_compile_spec obj =
  let source = parse_source obj in
  let pipeline =
    match Json.str_field ~default:"phoenix" "pipeline" obj with
    | Some p -> p
    | None -> reject "field \"pipeline\" must be a string"
  in
  let isa =
    match Json.str_field ~default:"cnot" "isa" obj with
    | Some "cnot" -> Compiler.Cnot_isa
    | Some "su4" -> Compiler.Su4_isa
    | Some other -> reject "unknown isa %S (cnot, su4)" other
    | None -> reject "field \"isa\" must be a string"
  in
  let topology =
    match Json.str_field ~default:"all-to-all" "topology" obj with
    | Some t -> t
    | None -> reject "field \"topology\" must be a string"
  in
  let timeout_s =
    match Json.mem "timeout" obj with
    | None -> None
    | Some j -> (
      match Json.num j with
      | Some s when Float.is_finite s && s >= 0.0 -> Some s
      | _ -> reject "field \"timeout\" must be a non-negative number of seconds")
  in
  let budget_checks =
    match Json.mem "budget_checks" obj with
    | None -> None
    | Some j -> (
      match Json.int j with
      | Some k when k >= 1 -> Some k
      | _ -> reject "field \"budget_checks\" must be a positive integer")
  in
  let cache =
    match Json.str_field ~default:"mem" "cache" obj with
    | Some s -> (
      match Cache.tier_of_string s with
      | Some t -> t
      | None -> reject "unknown cache tier %S (off, mem, disk)" s)
    | None -> reject "field \"cache\" must be a string"
  in
  let domains =
    match Json.mem "domains" obj with
    | None -> 1
    | Some j -> (
      match Json.int j with
      | Some d when d >= 1 && d <= 128 -> d
      | _ -> reject "field \"domains\" must be an integer in [1, 128]")
  in
  let template = bool_field obj "template" ~default:false in
  let binds = parse_binds obj in
  if binds <> [] && not template then
    reject "\"bind\"/\"binds\" need \"template\": true";
  {
    source;
    pipeline;
    isa;
    topology;
    exact = bool_field obj "exact" ~default:false;
    verify = bool_field obj "verify" ~default:false;
    lint = bool_field obj "lint" ~default:false;
    timeout_s;
    budget_checks;
    cache;
    domains;
    template;
    binds;
    dump = bool_field obj "dump" ~default:true;
  }

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (Json.Null, msg)
  | Ok (Json.Obj _ as obj) -> (
    let id = id_of obj in
    match
      match Json.str_field ~default:"compile" "op" obj with
      | Some "compile" -> Compile { id; spec = parse_compile_spec obj }
      | Some "stats" -> Stats { id }
      | Some "ping" -> Ping { id }
      | Some other -> reject "unknown op %S (compile, stats, ping)" other
      | None -> reject "field \"op\" must be a string"
    with
    | req -> Ok req
    | exception Reject msg -> Error (id, msg))
  | Ok _ -> Error (Json.Null, "a request must be a JSON object")

(* --- responses --------------------------------------------------------- *)

let error_json severity msg =
  Json.Obj
    [
      ("pass", Json.Str "serve");
      ("severity", Json.Str (Diag.severity_to_string severity));
      ("message", Json.Str msg);
    ]

let ok_response ~id ~status ?error fields =
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("id", id);
       ("status", Json.Num (Float.of_int (status_code status)));
       ("status_name", Json.Str (status_name status));
     ]
    @ fields
    @ match error with
      | None -> []
      | Some msg -> [ ("error", error_json Diag.Error msg) ])

let error_response ~id ~status msg = ok_response ~id ~status ~error:msg []

(* Bit-identity digest: marshal the gate list without sharing so equal
   structures digest equally whatever their in-memory aliasing, and
   float angles compare by their exact IEEE bits. *)
let circuit_digest c =
  Digest.to_hex
    (Digest.string (Marshal.to_string (Circuit.gates c) [ Marshal.No_sharing ]))

let circuit_json ~dump c =
  Json.Obj
    ([
       ("qubits", Json.Num (Float.of_int (Circuit.num_qubits c)));
       ("gates_n", Json.Num (Float.of_int (Circuit.length c)));
       ("digest", Json.Str (circuit_digest c));
     ]
    @
    if dump then
      [
        ( "gates",
          Json.Arr
            (List.map (fun g -> Json.Str (Gate.to_string g)) (Circuit.gates c))
        );
      ]
    else [])

let diag_json (d : Diag.t) =
  Json.Obj
    ([ ("pass", Json.Str d.Diag.pass) ]
    @ (match d.Diag.group with
      | Some g -> [ ("group", Json.Num (Float.of_int g)) ]
      | None -> [])
    @ [
        ("severity", Json.Str (Diag.severity_to_string d.Diag.severity));
        ("message", Json.Str d.Diag.message);
      ])

let finding_json (f : Finding.t) =
  Json.Obj
    [
      ("analysis", Json.Str f.Finding.analysis);
      ("severity", Json.Str (Diag.severity_to_string f.Finding.severity));
      ("message", Json.Str f.Finding.message);
    ]

let cache_json (s : Cache.stats) =
  Json.Obj
    [
      ("hits", Json.Num (Float.of_int s.Cache.hits));
      ("misses", Json.Num (Float.of_int s.Cache.misses));
      ("disk_hits", Json.Num (Float.of_int s.Cache.disk_hits));
      ("disk_errors", Json.Num (Float.of_int s.Cache.disk_errors));
      ("evictions", Json.Num (Float.of_int s.Cache.evictions));
      ("insertions", Json.Num (Float.of_int s.Cache.insertions));
      ("entries", Json.Num (Float.of_int s.Cache.entries));
      ("bytes", Json.Num (Float.of_int s.Cache.bytes));
    ]

let trace_entry_json (e : Pass.trace_entry) =
  Json.Obj
    [
      ("pass", Json.Str e.Pass.pass);
      ("seconds", Json.Num e.Pass.seconds);
      ("two_q_after", Json.Num (Float.of_int e.Pass.after.Pass.two_q));
      ("gates_after", Json.Num (Float.of_int e.Pass.after.Pass.gates));
    ]

let report_json (r : Compiler.report) =
  Json.Obj
    [
      ("two_q", Json.Num (Float.of_int r.Compiler.two_q_count));
      ("one_q", Json.Num (Float.of_int r.Compiler.one_q_count));
      ("depth_2q", Json.Num (Float.of_int r.Compiler.depth_2q));
      ("swaps", Json.Num (Float.of_int r.Compiler.num_swaps));
      ("logical_two_q", Json.Num (Float.of_int r.Compiler.logical_two_q));
      ("groups", Json.Num (Float.of_int r.Compiler.num_groups));
      ("wall_s", Json.Num r.Compiler.wall_time);
      ("trace", Json.Arr (List.map trace_entry_json r.Compiler.trace));
      ( "diagnostics",
        Json.Arr (List.map diag_json r.Compiler.diagnostics) );
      ("cache", cache_json r.Compiler.cache_stats);
      ( "degradations",
        Json.Arr
          (List.map
             (fun e -> Json.Str (Resilience.event_to_string e))
             r.Compiler.degradations) );
    ]
