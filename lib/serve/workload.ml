module Hamiltonian = Phoenix_ham.Hamiltonian

let grammar =
  "uccsd:<Table-I label>, qaoa:<Table-IV label or Reg3-100/250/500/1000>, \
   heisenberg:<n>, tfim:<n>, fermi-hubbard:<l> or <rows>x<cols>"

let pos_int s =
  match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None

let of_spec name =
  let unknown () =
    Error (Printf.sprintf "no such builtin workload: %s (builtins: %s)" name grammar)
  in
  match String.split_on_char ':' name with
  | [ "uccsd"; label ] -> (
    match Phoenix_ham.Molecules.find label with
    | b ->
      Ok
        (Phoenix_ham.Uccsd.ansatz b.Phoenix_ham.Molecules.encoding
           b.Phoenix_ham.Molecules.spec)
    | exception Not_found ->
      Error (Printf.sprintf "unknown uccsd label %S (see Table I)" label))
  | [ "qaoa"; label ] -> (
    let suite =
      Phoenix_ham.Qaoa.benchmark_suite () @ Phoenix_ham.Qaoa.scaling_suite ()
    in
    match List.assoc_opt label suite with
    | Some g -> Ok (Phoenix_ham.Qaoa.maxcut_cost g)
    | None -> Error (Printf.sprintf "unknown qaoa graph %S" label))
  | [ "heisenberg"; n ] -> (
    match pos_int n with
    | Some n -> Ok (Phoenix_ham.Spin_models.heisenberg_chain n)
    | None -> unknown ())
  | [ "tfim"; n ] -> (
    match pos_int n with
    | Some n -> Ok (Phoenix_ham.Spin_models.tfim_chain n)
    | None -> unknown ())
  | [ "fermi-hubbard"; shape ] -> (
    match String.split_on_char 'x' shape with
    | [ l ] -> (
      match pos_int l with
      | Some l -> Ok (Phoenix_ham.Fermi_hubbard.chain l)
      | None -> unknown ())
    | [ r; c ] -> (
      match (pos_int r, pos_int c) with
      | Some rows, Some cols ->
        Ok (Phoenix_ham.Fermi_hubbard.lattice ~rows ~cols ())
      | _ -> unknown ())
    | _ -> unknown ())
  | _ -> unknown ()

let of_inline text =
  match Hamiltonian.of_lines (String.split_on_char '\n' text) with
  | h -> Ok h
  | exception Invalid_argument msg -> Error msg
