(** Minimal JSON for the serve wire protocol.

    The daemon speaks newline-delimited JSON and the container carries
    no JSON library, so this module implements the subset the protocol
    needs: the full JSON value grammar, strict parsing with positioned
    errors, and deterministic one-line printing (objects keep insertion
    order; floats render round-trippably).

    Not a general-purpose library: no streaming, no number preservation
    beyond IEEE doubles, no Unicode validation beyond byte-transparent
    strings ([\uXXXX] escapes decode to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error.  The
    error string carries a byte offset. *)

val to_string : t -> string
(** One-line rendering (no newlines anywhere, so a rendered value is a
    valid NDJSON frame).  Integral floats in the int range print without
    a decimal point; other floats print with ["%.17g"] so they
    round-trip bit-for-bit. *)

(** {1 Accessors}

    All return [None] (or the default) on shape mismatches — protocol
    handlers turn those into structured error responses, never
    exceptions. *)

val mem : string -> t -> t option
(** Object field lookup ([None] on non-objects too). *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
(** [num] truncated; [None] when not integral or out of int range. *)

val bool : t -> bool option
val arr : t -> t list option

val str_field : ?default:string -> string -> t -> string option
(** [str_field k o] is the string at key [k]; [default] applies when
    the key is absent (but not when it holds a non-string). *)

val bool_field : default:bool -> string -> t -> bool option
val escape : string -> string
(** The quoted, escaped rendering of a string (as [to_string] uses). *)
