(** Bounded multi-producer / multi-consumer job queue.

    The daemon's backpressure point: connection readers {!push} jobs
    (non-blocking — a full or closed queue refuses immediately so the
    client gets a structured rejection instead of an ever-growing
    buffer), worker domains {!pop} them (blocking).  {!close} starts the
    drain: pushes are refused from that point, pops keep draining until
    the queue is empty and then return [None], so every accepted job is
    still served exactly once.

    Safe across domains and threads (stdlib [Mutex]/[Condition], which
    are domain-aware in OCaml 5). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking enqueue. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while the queue is empty and open.  [None] once
    the queue is closed {e and} drained — the consumer's signal to
    exit. *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked consumers.  Idempotent. *)

val length : 'a t -> int
(** Current depth (a racy snapshot, for stats/backpressure reporting). *)

val capacity : 'a t -> int
