module Cache = Phoenix_cache.Cache
module Pass = Phoenix.Pass
open Protocol

type addr = Unix_socket of string | Tcp of string * int

type config = {
  addr : addr;
  workers : int;
  max_queue : int;
  default_timeout_s : float option;
  max_request_bytes : int;
}

let default_config addr =
  {
    addr;
    workers = 4;
    max_queue = 64;
    default_timeout_s = None;
    max_request_bytes = 8 * 1024 * 1024;
  }

(* --- connections -------------------------------------------------------

   A connection outlives its reader thread: queued jobs hold a
   reference and write their responses later, from worker domains.  The
   fd closes exactly once, when the reader has seen EOF (or given up)
   AND no queued job remains — whichever side finishes last closes. *)

type conn = {
  fd : Unix.file_descr;
  cm : Mutex.t;
  mutable writable : bool;  (** false after a write error (EPIPE, ...) *)
  mutable eof : bool;  (** reader is done with this connection *)
  mutable pending : int;  (** jobs queued or running for this connection *)
  mutable fd_closed : bool;
}

let make_conn fd =
  { fd; cm = Mutex.create (); writable = true; eof = false; pending = 0;
    fd_closed = false }

(* with [c.cm] held *)
let maybe_close_locked c =
  if c.eof && c.pending = 0 && not c.fd_closed then begin
    c.fd_closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let with_conn c f =
  Mutex.lock c.cm;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.cm) f

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_response c json =
  let line = Json.to_string json ^ "\n" in
  with_conn c (fun () ->
      if c.writable && not c.fd_closed then
        try write_all c.fd line
        with Unix.Unix_error _ | Sys_error _ -> c.writable <- false)

(* --- the server --------------------------------------------------------- *)

type job = { id : Json.t; spec : Protocol.compile_spec; conn : conn }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  tcp_port : int option;
  queue : job Jobqueue.t;
  mutable workers : unit Domain.t list;
  mutable accept_thread : Thread.t option;
  mutable draining : bool;
  mutable drained : bool;
  sm : Mutex.t;  (** guards the stats below *)
  mutable jobs_served : int;  (** compile jobs that ran on a worker *)
  status_counts : int array;  (** responses by status code, 0..6 *)
  pass_seconds : (string, float * int) Hashtbl.t;
}

let port t = t.tcp_port

let record_job t status trace =
  Mutex.lock t.sm;
  t.jobs_served <- t.jobs_served + 1;
  t.status_counts.(Protocol.status_code status) <-
    t.status_counts.(Protocol.status_code status) + 1;
  List.iter
    (fun (e : Pass.trace_entry) ->
      let s, n =
        Option.value
          (Hashtbl.find_opt t.pass_seconds e.Pass.pass)
          ~default:(0.0, 0)
      in
      Hashtbl.replace t.pass_seconds e.Pass.pass
        (s +. e.Pass.seconds, n + 1))
    trace;
  Mutex.unlock t.sm

let record_reply t status =
  Mutex.lock t.sm;
  t.status_counts.(Protocol.status_code status) <-
    t.status_counts.(Protocol.status_code status) + 1;
  Mutex.unlock t.sm

let stats_response t ~id =
  Mutex.lock t.sm;
  let served = t.jobs_served in
  let counts = Array.copy t.status_counts in
  let passes =
    Hashtbl.fold (fun pass (s, n) acc -> (pass, s, n) :: acc) t.pass_seconds []
  in
  Mutex.unlock t.sm;
  let passes =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) passes
  in
  let statuses = [ Sok; Sfailed; Sbad_request; Sverify_errors; Slint_errors;
                   Sdeadline; Soverloaded ] in
  ok_response ~id ~status:Sok
    [
      ( "stats",
        Json.Obj
          [
            ("schema", Json.Str stats_schema);
            ("jobs_served", Json.Num (Float.of_int served));
            ( "responses_by_status",
              Json.Obj
                (List.map
                   (fun s ->
                     ( status_name s,
                       Json.Num (Float.of_int counts.(status_code s)) ))
                   statuses) );
            ( "queue",
              Json.Obj
                [
                  ( "depth",
                    Json.Num (Float.of_int (Jobqueue.length t.queue)) );
                  ( "capacity",
                    Json.Num (Float.of_int (Jobqueue.capacity t.queue)) );
                ] );
            ("workers", Json.Num (Float.of_int t.config.workers));
            ("draining", Json.Bool t.draining);
            ("cache", cache_json (Cache.stats ()));
            ( "passes",
              Json.Arr
                (List.map
                   (fun (pass, s, n) ->
                     Json.Obj
                       [
                         ("pass", Json.Str pass);
                         ("calls", Json.Num (Float.of_int n));
                         ("seconds", Json.Num s);
                       ])
                   passes) );
          ] );
    ]

(* --- workers ------------------------------------------------------------ *)

let worker_loop t () =
  let rec loop () =
    match Jobqueue.pop t.queue with
    | None -> ()
    | Some job ->
      let outcome =
        try Handler.execute ?default_timeout_s:t.config.default_timeout_s
              job.spec
        with exn ->
          {
            Handler.status = Sfailed;
            fields = [];
            error = Some ("worker fault: " ^ Printexc.to_string exn);
            trace = [];
          }
      in
      record_job t outcome.Handler.status outcome.Handler.trace;
      send_response job.conn (Handler.response ~id:job.id outcome);
      with_conn job.conn (fun () ->
          job.conn.pending <- job.conn.pending - 1;
          maybe_close_locked job.conn);
      loop ()
  in
  loop ()

(* --- readers ------------------------------------------------------------ *)

let handle_line t c line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.parse_request line with
    | Error (id, msg) ->
      record_reply t Sbad_request;
      send_response c (error_response ~id ~status:Sbad_request msg)
    | Ok (Ping { id }) ->
      record_reply t Sok;
      send_response c (ok_response ~id ~status:Sok [ ("pong", Json.Bool true) ])
    | Ok (Stats { id }) ->
      record_reply t Sok;
      send_response c (stats_response t ~id)
    | Ok (Compile { id; spec }) -> (
      with_conn c (fun () -> c.pending <- c.pending + 1);
      let reject msg =
        with_conn c (fun () -> c.pending <- c.pending - 1);
        record_reply t Soverloaded;
        send_response c (error_response ~id ~status:Soverloaded msg)
      in
      match Jobqueue.push t.queue { id; spec; conn = c } with
      | `Ok -> ()
      | `Full ->
        reject
          (Printf.sprintf "job queue full (capacity %d); retry later"
             (Jobqueue.capacity t.queue))
      | `Closed -> reject "server is draining; no new jobs accepted")

(* Reads one connection until EOF, slicing the byte stream into request
   lines.  A line longer than [max_request_bytes] gets one structured
   error, then the connection is dropped: there is no way to resync an
   NDJSON stream mid-line without buffering it. *)
let reader_loop t c () =
  let chunk = Bytes.create 65536 in
  let acc = Buffer.create 256 in
  let overflow () =
    record_reply t Sbad_request;
    send_response c
      (error_response ~id:Json.Null ~status:Sbad_request
         (Printf.sprintf "request line exceeds %d bytes"
            t.config.max_request_bytes))
  in
  let rec drain_lines () =
    let s = Buffer.contents acc in
    match String.index_opt s '\n' with
    | None ->
      if String.length s > t.config.max_request_bytes then begin
        overflow ();
        false
      end
      else true
    | Some i ->
      Buffer.clear acc;
      Buffer.add_substring acc s (i + 1) (String.length s - i - 1);
      if String.length s > t.config.max_request_bytes then begin
        (* the line itself is oversized even though it terminated *)
        overflow ();
        false
      end
      else begin
        handle_line t c (String.sub s 0 i);
        drain_lines ()
      end
  in
  let rec loop () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes acc chunk 0 n;
      if drain_lines () then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
    | exception Sys_error _ -> ()
  in
  loop ();
  with_conn c (fun () ->
      c.eof <- true;
      maybe_close_locked c)

(* --- accept loop -------------------------------------------------------- *)

let accept_loop t () =
  let rec loop () =
    if not t.draining then
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
          let c = make_conn fd in
          ignore (Thread.create (reader_loop t c) ());
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error _ -> loop ())
      | exception Unix.Unix_error _ -> ()
  in
  loop ()

(* --- lifecycle ---------------------------------------------------------- *)

let listen_socket = function
  | Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, None)
  | Tcp (host, port) ->
    let inet =
      if host = "localhost" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Some actual)

let start (config : config) =
  if config.workers < 1 then invalid_arg "Serve.start: workers must be >= 1";
  if config.max_request_bytes < 2 then
    invalid_arg "Serve.start: max_request_bytes must be >= 2";
  (* writing to a disconnected client must surface as EPIPE, not a
     process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, tcp_port = listen_socket config.addr in
  let t =
    {
      config;
      listen_fd;
      tcp_port;
      queue = Jobqueue.create ~capacity:config.max_queue;
      workers = [];
      accept_thread = None;
      draining = false;
      drained = false;
      sm = Mutex.create ();
      jobs_served = 0;
      status_counts = Array.make 7 0;
      pass_seconds = Hashtbl.create 16;
    }
  in
  t.workers <- List.init config.workers (fun _ -> Domain.spawn (worker_loop t));
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let drain t =
  if not t.drained then begin
    t.drained <- true;
    t.draining <- true;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Jobqueue.close t.queue;
    List.iter Domain.join t.workers;
    match t.config.addr with
    | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

let addr_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  let err () =
    Error (Printf.sprintf "bad address %S (unix:PATH or tcp:HOST:PORT)" s)
  in
  match String.index_opt s ':' with
  | None -> err ()
  | Some i -> (
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.sub s 0 i with
    | "unix" when rest <> "" -> Ok (Unix_socket rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> err ()
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when host <> "" && p >= 1 && p <= 65535 -> Ok (Tcp (host, p))
        | _ -> err ()))
    | _ -> err ())

let run config =
  let t = start config in
  let shown =
    match (config.addr, t.tcp_port) with
    | Tcp (host, _), Some p -> addr_to_string (Tcp (host, p))
    | addr, _ -> addr_to_string addr
  in
  Printf.printf "phoenix serve: listening on %s (%d workers, queue %d)\n%!"
    shown config.workers config.max_queue;
  let stop = ref false in
  let request_stop _ = stop := true in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  while not !stop do
    Thread.delay 0.1
  done;
  Printf.printf "phoenix serve: draining (%d queued)\n%!"
    (Jobqueue.length t.queue);
  drain t;
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  Mutex.lock t.sm;
  let served = t.jobs_served in
  Mutex.unlock t.sm;
  Printf.printf "phoenix serve: drained after %d job(s)\n%!" served

(* --- client ------------------------------------------------------------- *)

module Client = struct
  type nonrec conn = {
    fd : Unix.file_descr;
    buf : Buffer.t;  (** bytes read past the last returned line *)
  }

  let connect addr =
    match addr with
    | Unix_socket path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      { fd; buf = Buffer.create 4096 }
    | Tcp (host, port) ->
      let inet =
        if host = "localhost" then Unix.inet_addr_loopback
        else Unix.inet_addr_of_string host
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      { fd; buf = Buffer.create 4096 }

  let send_raw c s = write_all c.fd s
  let send_line c s = send_raw c (s ^ "\n")
  let send c json = send_line c (Json.to_string json)

  let shutdown_send c =
    try Unix.shutdown c.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

  let recv_line c =
    let chunk = Bytes.create 65536 in
    let rec take () =
      let s = Buffer.contents c.buf in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.clear c.buf;
        Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
        Some (String.sub s 0 i)
      | None -> (
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
          Buffer.add_subbytes c.buf chunk 0 n;
          take ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          None)
    in
    take ()

  let recv c =
    match recv_line c with
    | None -> None
    | Some line -> (
      match Json.parse line with
      | Ok j -> Some j
      | Error msg ->
        failwith
          (Printf.sprintf "phoenix serve emitted unparseable JSON (%s): %s"
             msg line))

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end

(* --- self test ---------------------------------------------------------- *)

let self_test ?(workers = 2) () =
  let path = Filename.temp_file "phxserve" ".sock" in
  Sys.remove path;
  let config =
    { (default_config (Unix_socket path)) with workers; max_queue = 8 }
  in
  let t = start config in
  let failures = ref [] in
  let check name cond = if not cond then failures := name :: !failures in
  let expect_status c name want =
    match Client.recv c with
    | None -> check (name ^ ": connection closed") false
    | Some resp ->
      let got = Json.int (Option.value (Json.mem "status" resp) ~default:Json.Null) in
      check
        (Printf.sprintf "%s: status %s, want %d" name
           (match got with Some g -> string_of_int g | None -> "?")
           (status_code want))
        (got = Some (status_code want))
  in
  (try
     let c = Client.connect (Unix_socket path) in
     Client.send c (Json.Obj [ ("op", Json.Str "ping"); ("id", Json.Str "p") ]);
     expect_status c "ping" Sok;
     Client.send c
       (Json.Obj
          [
            ("id", Json.Str "c1");
            ("workload", Json.Str "heisenberg:4");
            ("dump", Json.Bool false);
          ]);
     expect_status c "compile" Sok;
     Client.send c
       (Json.Obj
          [
            ("id", Json.Str "t1");
            ("workload", Json.Str "tfim:4");
            ("template", Json.Bool true);
            ("binds", Json.Arr [ Json.Arr [] ]);
            ("dump", Json.Bool false);
          ]);
     (* tfim:4 records no blocks -> one parameter per gadget; an empty
        bind vector is an arity error -> bad request, structured *)
     expect_status c "template arity" Sbad_request;
     Client.send_line c "this is not json";
     expect_status c "malformed" Sbad_request;
     Client.send c (Json.Obj [ ("op", Json.Str "stats"); ("id", Json.Str "s") ]);
     expect_status c "stats" Sok;
     Client.close c
   with exn -> check ("self-test raised " ^ Printexc.to_string exn) false);
  drain t;
  List.iter (fun f -> Printf.eprintf "phoenix serve --self-test: %s\n" f)
    (List.rev !failures);
  !failures = []
