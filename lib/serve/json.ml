type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let add_num buf f =
  if Float.is_nan f then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f <= 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf (if f > 0.0 then "1e999" else "-1e999")

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s -> Buffer.add_string buf (escape s)
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let cp = hex4 () in
           (* surrogate pair *)
           let cp =
             if cp >= 0xD800 && cp <= 0xDBFF
                && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
               else fail "unpaired surrogate"
             end
             else cp
           in
           add_utf8 buf cp
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        had := true;
        advance ()
      done;
      if not !had then fail "expected digits"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > 100 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors --------------------------------------------------------- *)

let mem k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f
    when Float.is_integer f
         && f >= Int.to_float min_int
         && f <= Int.to_float max_int ->
    Some (Float.to_int f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let arr = function Arr xs -> Some xs | _ -> None

let str_field ?default k o =
  match mem k o with
  | Some v -> str v
  | None -> default

let bool_field ~default k o =
  match mem k o with
  | Some v -> bool v
  | None -> Some default
