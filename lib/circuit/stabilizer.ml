module Bitvec = Phoenix_util.Bitvec
module Prng = Phoenix_util.Prng
module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Clifford2q = Phoenix_pauli.Clifford2q

(* Rows 0..n-1 are destabilizers, n..2n-1 stabilizers; [r] holds the sign
   bit of each generator (true = −1). *)
type t = {
  n : int;
  x : Bitvec.t array;
  z : Bitvec.t array;
  r : bool array;
  rng : Prng.t;
}

let make ?(seed = 2029) n =
  if n <= 0 then
    invalid_arg
      (Printf.sprintf "Stabilizer.make: need at least one qubit, got n = %d" n);
  let x = Array.init (2 * n) (fun _ -> Bitvec.create n) in
  let z = Array.init (2 * n) (fun _ -> Bitvec.create n) in
  for i = 0 to n - 1 do
    Bitvec.set x.(i) i true;
    (* destabilizer X_i *)
    Bitvec.set z.(n + i) i true (* stabilizer Z_i *)
  done;
  { n; x; z; r = Array.make (2 * n) false; rng = Prng.create seed }

let num_qubits t = t.n

let copy t =
  {
    t with
    x = Array.map Bitvec.copy t.x;
    z = Array.map Bitvec.copy t.z;
    r = Array.copy t.r;
  }

let apply_h t q =
  for i = 0 to (2 * t.n) - 1 do
    let xq = Bitvec.get t.x.(i) q and zq = Bitvec.get t.z.(i) q in
    if xq && zq then t.r.(i) <- not t.r.(i);
    Bitvec.set t.x.(i) q zq;
    Bitvec.set t.z.(i) q xq
  done

let apply_s t q =
  for i = 0 to (2 * t.n) - 1 do
    let xq = Bitvec.get t.x.(i) q and zq = Bitvec.get t.z.(i) q in
    if xq && zq then t.r.(i) <- not t.r.(i);
    if xq then Bitvec.flip t.z.(i) q
  done

let apply_sdg t q =
  apply_s t q;
  (* S† = S·Z: conjugation by Z flips rows with x_q set *)
  for i = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.x.(i) q then t.r.(i) <- not t.r.(i)
  done

let apply_x t q =
  for i = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.z.(i) q then t.r.(i) <- not t.r.(i)
  done

let apply_z t q =
  for i = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.x.(i) q then t.r.(i) <- not t.r.(i)
  done

let apply_y t q =
  apply_z t q;
  apply_x t q

let apply_cnot t a b =
  for i = 0 to (2 * t.n) - 1 do
    let xa = Bitvec.get t.x.(i) a
    and za = Bitvec.get t.z.(i) a
    and xb = Bitvec.get t.x.(i) b
    and zb = Bitvec.get t.z.(i) b in
    if xa && zb && xb = za then t.r.(i) <- not t.r.(i);
    Bitvec.set t.x.(i) b (xb <> xa);
    Bitvec.set t.z.(i) a (za <> zb)
  done

(* row h <- row h * row i, with the Aaronson–Gottesman phase function *)
let rowsum t h i =
  let g x1 z1 x2 z2 =
    match x1, z1 with
    | false, false -> 0
    | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
    | true, false -> if z2 && x2 then 1 else if z2 then -1 else 0
    | false, true -> if x2 && not z2 then 1 else if x2 && z2 then -1 else 0
  in
  let phase = ref 0 in
  for q = 0 to t.n - 1 do
    phase :=
      !phase
      + g (Bitvec.get t.x.(i) q) (Bitvec.get t.z.(i) q) (Bitvec.get t.x.(h) q)
          (Bitvec.get t.z.(h) q)
  done;
  let total =
    (2 * ((if t.r.(h) then 1 else 0) + if t.r.(i) then 1 else 0)) + !phase
  in
  t.r.(h) <- ((total mod 4) + 4) mod 4 = 2;
  Bitvec.xor_into t.x.(h) t.x.(i);
  Bitvec.xor_into t.z.(h) t.z.(i)

(* scratch-row variant used for deterministic outcomes *)
let scratch_product t rows =
  let sx = Bitvec.create t.n and sz = Bitvec.create t.n in
  let sr = ref 0 in
  let g x1 z1 x2 z2 =
    match x1, z1 with
    | false, false -> 0
    | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
    | true, false -> if z2 && x2 then 1 else if z2 then -1 else 0
    | false, true -> if x2 && not z2 then 1 else if x2 && z2 then -1 else 0
  in
  List.iter
    (fun i ->
      let phase = ref 0 in
      for q = 0 to t.n - 1 do
        phase :=
          !phase
          + g (Bitvec.get t.x.(i) q) (Bitvec.get t.z.(i) q) (Bitvec.get sx q)
              (Bitvec.get sz q)
      done;
      sr := !sr + (2 * if t.r.(i) then 1 else 0) + !phase;
      Bitvec.xor_into sx t.x.(i);
      Bitvec.xor_into sz t.z.(i))
    rows;
  sx, sz, ((!sr mod 4) + 4) mod 4

let expectation_z t q =
  let random =
    let rec any i = i < 2 * t.n && (Bitvec.get t.x.(i) q || any (i + 1)) in
    any t.n
  in
  if random then 0
  else begin
    let rows =
      List.filter_map
        (fun i -> if Bitvec.get t.x.(i) q then Some (i + t.n) else None)
        (List.init t.n (fun i -> i))
    in
    let _, _, phase = scratch_product t rows in
    if phase = 2 then -1 else 1
  end

let measure t q =
  let p =
    let rec find i =
      if i >= 2 * t.n then None
      else if Bitvec.get t.x.(i) q then Some i
      else find (i + 1)
    in
    find t.n
  in
  match p with
  | Some p ->
    (* random outcome *)
    for i = 0 to (2 * t.n) - 1 do
      if i <> p && Bitvec.get t.x.(i) q then rowsum t i p
    done;
    let d = p - t.n in
    Bitvec.xor_into t.x.(d) t.x.(d);
    Bitvec.or_into t.x.(d) t.x.(p);
    Bitvec.xor_into t.z.(d) t.z.(d);
    Bitvec.or_into t.z.(d) t.z.(p);
    t.r.(d) <- t.r.(p);
    (* replace stabilizer row p with ±Z_q *)
    Bitvec.xor_into t.x.(p) t.x.(p);
    Bitvec.xor_into t.z.(p) t.z.(p);
    Bitvec.set t.z.(p) q true;
    let outcome = Prng.bool t.rng in
    t.r.(p) <- outcome;
    if outcome then 1 else 0
  | None ->
    (* deterministic *)
    let exp = expectation_z t q in
    if exp = 1 then 0 else 1

let quarter_turns theta =
  let pi = 4.0 *. Float.atan 1.0 in
  let k = theta /. (pi /. 2.0) in
  let rounded = Float.round k in
  if Float.abs (k -. rounded) > 1e-9 then None
  else Some (((int_of_float rounded mod 4) + 4) mod 4)

let non_clifford g =
  invalid_arg
    (Printf.sprintf "Stabilizer.apply_gate: non-Clifford gate %s"
       (Gate.to_string g))

let apply_one_q t g q kind =
  match kind with
  | Gate.H -> apply_h t q
  | Gate.S -> apply_s t q
  | Gate.Sdg -> apply_sdg t q
  | Gate.X -> apply_x t q
  | Gate.Y -> apply_y t q
  | Gate.Z -> apply_z t q
  | Gate.T | Gate.Tdg -> non_clifford g
  | Gate.Rz theta ->
    (match quarter_turns theta with
    | Some 0 -> ()
    | Some 1 -> apply_s t q
    | Some 2 -> apply_z t q
    | Some 3 -> apply_sdg t q
    | Some _ | None -> non_clifford g)
  | Gate.Rx theta ->
    (match quarter_turns theta with
    | Some 0 -> ()
    | Some k ->
      apply_h t q;
      (match k with
      | 1 -> apply_s t q
      | 2 -> apply_z t q
      | 3 -> apply_sdg t q
      | _ -> assert false);
      apply_h t q
    | None -> non_clifford g)
  | Gate.Ry theta ->
    (match quarter_turns theta with
    | Some 0 -> ()
    | Some k ->
      (* Ry = S · Rx · S†: apply S† first *)
      apply_sdg t q;
      (match k with
      | 1 ->
        apply_h t q;
        apply_s t q;
        apply_h t q
      | 2 ->
        apply_h t q;
        apply_z t q;
        apply_h t q
      | 3 ->
        apply_h t q;
        apply_sdg t q;
        apply_h t q
      | _ -> assert false);
      apply_s t q
    | None -> non_clifford g)

let rec apply_gate t g =
  match g with
  | Gate.G1 (kind, q) -> apply_one_q t g q kind
  | Gate.Cnot (a, b) -> apply_cnot t a b
  | Gate.Swap (a, b) ->
    apply_cnot t a b;
    apply_cnot t b a;
    apply_cnot t a b
  | Gate.Cliff2 c ->
    List.iter
      (fun basis ->
        match basis with
        | Clifford2q.H q -> apply_h t q
        | Clifford2q.S q -> apply_s t q
        | Clifford2q.Sdg q -> apply_sdg t q
        | Clifford2q.Cnot (a, b) -> apply_cnot t a b)
      (Clifford2q.decompose c)
  | Gate.Rpp { p0; p1; a; b; theta } ->
    (match quarter_turns theta with
    | Some 0 -> ()
    | Some _ ->
      (* exp(-iθ/2 σ0σ1) for quarter turns: conjugate a ZZ rotation *)
      let pre q p =
        match p with
        | Pauli.Z -> []
        | Pauli.X -> [ `H q ]
        | Pauli.Y -> [ `Sdg q; `H q ]
        | Pauli.I -> assert false
      in
      let run = function
        | `H q -> apply_h t q
        | `S q -> apply_s t q
        | `Sdg q -> apply_sdg t q
      in
      let post q p =
        match p with
        | Pauli.Z -> []
        | Pauli.X -> [ `H q ]
        | Pauli.Y -> [ `H q; `S q ]
        | Pauli.I -> assert false
      in
      List.iter run (pre a p0 @ pre b p1);
      (* ZZ quarter rotation = CNOT · Rz(θ) · CNOT *)
      apply_cnot t a b;
      apply_one_q t g b (Gate.Rz theta);
      apply_cnot t a b;
      List.iter run (post a p0 @ post b p1)
    | None -> non_clifford g)
  | Gate.Su4 { parts; _ } -> List.iter (apply_gate t) parts

let run_circuit t circuit =
  if Circuit.num_qubits circuit <> t.n then
    invalid_arg
      (Printf.sprintf
         "Stabilizer.run_circuit: circuit has %d qubits, tableau has %d"
         (Circuit.num_qubits circuit) t.n);
  List.iter (apply_gate t) (Circuit.gates circuit)

let stabilizers t =
  List.init t.n (fun i ->
      let row = i + t.n in
      ( t.r.(row),
        Pauli_string.of_bits ~x:t.x.(row) ~z:t.z.(row) ))

let expectation_pauli t p =
  if Pauli_string.num_qubits p <> t.n then
    invalid_arg
      (Printf.sprintf
         "Stabilizer.expectation_pauli: string %s has %d qubits, tableau has \
          %d"
         (Pauli_string.to_string p)
         (Pauli_string.num_qubits p) t.n);
  let px = Pauli_string.x_bits p and pz = Pauli_string.z_bits p in
  let anticommutes i =
    (Bitvec.and_popcount t.x.(i) pz + Bitvec.and_popcount t.z.(i) px) mod 2 = 1
  in
  let rec any_stab i = i < 2 * t.n && (anticommutes i || any_stab (i + 1)) in
  if any_stab t.n then 0
  else begin
    (* P = ± product of stabilizers whose destabilizer partners
       anticommute with P *)
    let rows =
      List.filter_map
        (fun i -> if anticommutes i then Some (i + t.n) else None)
        (List.init t.n (fun i -> i))
    in
    let sx, sz, phase = scratch_product t rows in
    if not (Bitvec.equal sx px && Bitvec.equal sz pz) then 0
    else if phase = 2 then -1
    else 1
  end
