module Pauli = Phoenix_pauli.Pauli
module Clifford2q = Phoenix_pauli.Clifford2q
module Angle = Phoenix_pauli.Angle

let two_pi = 4.0 *. Float.atan 1.0 *. 2.0
let eps = 1e-10

(* Range reduction lives in [Angle.normalize_const] (bit-identical to the
   historical local definition); symbolic slots pass through unchanged. *)
let normalize_angle t = if Angle.is_slot t then t else Angle.normalize_const t

(* A slot is never a zero rotation: its value is unknown until bind, and
   dropping it would change circuit structure per parameter value. *)
let is_zero_angle t =
  (not (Angle.is_slot t)) && Float.abs (normalize_angle t) < eps

(* Axis decomposition of 1Q gates that are Pauli rotations up to global
   phase: S = e^{iπ/4}·Rz(π/2), Z = i·Rz(π), X = i·Rx(π), … *)
let as_rotation : Gate.one_q -> (Pauli.t * float) option = function
  | Gate.Rz t -> Some (Pauli.Z, t)
  | Gate.Rx t -> Some (Pauli.X, t)
  | Gate.Ry t -> Some (Pauli.Y, t)
  | Gate.S -> Some (Pauli.Z, two_pi /. 4.0)
  | Gate.Sdg -> Some (Pauli.Z, -.two_pi /. 4.0)
  | Gate.Z -> Some (Pauli.Z, two_pi /. 2.0)
  | Gate.T -> Some (Pauli.Z, two_pi /. 8.0)
  | Gate.Tdg -> Some (Pauli.Z, -.two_pi /. 8.0)
  | Gate.X -> Some (Pauli.X, two_pi /. 2.0)
  | Gate.Y -> Some (Pauli.Y, two_pi /. 2.0)
  | Gate.H -> None

(* The Pauli axis a gate exposes on qubit [q], used for commutation tests:
   a CNOT commutes with Z-axis gates on its control and X-axis gates on
   its target. *)
let axis_on_qubit g q =
  match g with
  | Gate.G1 (k, q') when q' = q ->
    (match as_rotation k with Some (p, _) -> Some p | None -> None)
  | Gate.Cnot (a, b) ->
    if q = a then Some Pauli.Z else if q = b then Some Pauli.X else None
  | Gate.Cliff2 { Clifford2q.kind; a; b } ->
    let s0, s1 = Clifford2q.kind_sigmas kind in
    if q = a then Some s0 else if q = b then Some s1 else None
  | Gate.Rpp { p0; p1; a; b; _ } ->
    if q = a then Some p0 else if q = b then Some p1 else None
  | Gate.G1 _ | Gate.Swap _ | Gate.Su4 _ -> None

let commutes_on g q axis =
  match axis_on_qubit g q with
  | Some p -> Pauli.equal p axis
  | None -> false

type state = {
  out : Gate.t option array;
  (* hist.(q): indices of emitted gates touching q, most recent first;
     deleted entries are skipped lazily. *)
  hist : int list array;
  mutable next : int;
}

let emit st g =
  let i = st.next in
  st.out.(i) <- Some g;
  st.next <- i + 1;
  List.iter (fun q -> st.hist.(q) <- i :: st.hist.(q)) (Gate.qubits g)

let live st i = st.out.(i) <> None

let delete st i = st.out.(i) <- None

(* Scan qubit [q]'s history (most recent first): skip deleted gates and
   gates satisfying [commute]; return the first blocking live gate. *)
let rec scan_back st q ~commute = function
  | [] -> None
  | i :: rest ->
    if not (live st i) then scan_back st q ~commute rest
    else begin
      match st.out.(i) with
      | None -> assert false
      | Some g ->
        if commute g then scan_back st q ~commute rest else Some (i, g)
    end

let last_live st q =
  scan_back st q ~commute:(fun _ -> false) st.hist.(q)

let try_merge_rotation st q p theta =
  (* 1Q gates on [q] are potential merge targets, so they always stop the
     scan; other gates are skipped when they commute with the rotation. *)
  let commute g =
    match g with
    | Gate.G1 (_, q') when q' = q -> false
    | Gate.G1 _ | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Swap _
    | Gate.Su4 _ ->
      commutes_on g q p
  in
  match scan_back st q ~commute st.hist.(q) with
  | Some (i, Gate.G1 (k, q')) when q' = q ->
    (match as_rotation k with
    | Some (p', t') when Pauli.equal p' p ->
      let merged = Angle.merge_norm theta t' in
      delete st i;
      if not (is_zero_angle merged) then
        emit st (Gate.rotation_of_pauli p q merged);
      true
    | Some _ | None -> false)
  | Some _ | None -> false

let try_cancel_h st q =
  match last_live st q with
  | Some (i, Gate.G1 (Gate.H, q')) when q' = q ->
    delete st i;
    true
  | Some _ | None -> false

let try_cancel_cnot st a b =
  let target = Gate.Cnot (a, b) in
  let commute_a g = (not (Gate.equal g target)) && commutes_on g a Pauli.Z in
  let commute_b g = (not (Gate.equal g target)) && commutes_on g b Pauli.X in
  match scan_back st a ~commute:commute_a st.hist.(a) with
  | Some (i, g) when Gate.equal g target ->
    (match scan_back st b ~commute:commute_b st.hist.(b) with
    | Some (j, _) when j = i ->
      delete st i;
      true
    | Some _ | None -> false)
  | Some _ | None -> false

let both_last_equal st a b pred =
  match last_live st a, last_live st b with
  | Some (i, g), Some (j, _) when i = j && pred g -> Some i
  | _, _ -> None

let try_cancel_cliff2 st c =
  let pred = function
    | Gate.Cliff2 c' -> Clifford2q.equal_gate c c'
    | Gate.G1 _ | Gate.Cnot _ | Gate.Rpp _ | Gate.Swap _ | Gate.Su4 _ -> false
  in
  match both_last_equal st c.Clifford2q.a c.Clifford2q.b pred with
  | Some i ->
    delete st i;
    true
  | None -> false

let try_cancel_swap st a b =
  let pred = function
    | Gate.Swap (x, y) -> (x = a && y = b) || (x = b && y = a)
    | Gate.G1 _ | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Su4 _ ->
      false
  in
  match both_last_equal st a b pred with
  | Some i ->
    delete st i;
    true
  | None -> false

let try_merge_rpp st (r : Gate.t) =
  match r with
  | Gate.Rpp { p0; p1; a; b; theta } ->
    let pred = function
      | Gate.Rpp r' -> r'.p0 = p0 && r'.p1 = p1 && r'.a = a && r'.b = b
      | Gate.G1 _ | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Swap _ | Gate.Su4 _
        ->
        false
    in
    (match both_last_equal st a b pred with
    | Some i ->
      (match st.out.(i) with
      | Some (Gate.Rpp r') ->
        let merged = Angle.merge_norm theta r'.theta in
        delete st i;
        if not (is_zero_angle merged) then
          emit st (Gate.Rpp { p0; p1; a; b; theta = merged });
        true
      | Some _ | None -> assert false)
    | None -> false)
  | Gate.G1 _ | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Swap _ | Gate.Su4 _ ->
    false

let handle st g =
  let handled =
    match g with
    | Gate.G1 (Gate.H, q) -> try_cancel_h st q
    | Gate.G1 (k, q) ->
      (match as_rotation k with
      | Some (p, t) ->
        if is_zero_angle t then true else try_merge_rotation st q p t
      | None -> false)
    | Gate.Cnot (a, b) -> try_cancel_cnot st a b
    | Gate.Cliff2 c -> try_cancel_cliff2 st c
    | Gate.Swap (a, b) -> try_cancel_swap st a b
    | Gate.Rpp { theta; _ } ->
      if is_zero_angle theta then true else try_merge_rpp st g
    | Gate.Su4 _ -> false
  in
  if not handled then emit st g

let pass c =
  let gs = Circuit.gates c in
  let n = Circuit.num_qubits c in
  (* Each source gate emits at most one output gate (merges replace). *)
  let st =
    {
      out = Array.make (max 1 (List.length gs)) None;
      hist = Array.make n [];
      next = 0;
    }
  in
  List.iter (handle st) gs;
  let kept = Array.to_list st.out |> List.filter_map (fun g -> g) in
  Circuit.create n kept

let optimize ?(max_passes = 20) c =
  let rec go i c =
    if i >= max_passes then c
    else begin
      let c' = pass c in
      if Circuit.length c' = Circuit.length c && Circuit.equal c' c then c
      else go (i + 1) c'
    end
  in
  go 0 c
