type t = { n : int; gates : Gate.t list }

let check_gate n g =
  List.iter
    (fun q ->
      if q < 0 || q >= n then
        invalid_arg
          (Printf.sprintf "Circuit: gate %s outside register of %d qubits"
             (Gate.to_string g) n))
    (Gate.qubits g)

let create n gates =
  if n <= 0 then invalid_arg "Circuit.create: need at least one qubit";
  List.iter (check_gate n) gates;
  { n; gates }

let of_validated n gates =
  if n <= 0 then invalid_arg "Circuit.of_validated: need at least one qubit";
  { n; gates }

let empty n = create n []
let num_qubits t = t.n
let gates t = t.gates
let gate_array t = Array.of_list t.gates
let length t = List.length t.gates

let append t g =
  check_gate t.n g;
  { t with gates = t.gates @ [ g ] }

let concat a b =
  if a.n <> b.n then invalid_arg "Circuit.concat: qubit-count mismatch";
  { n = a.n; gates = a.gates @ b.gates }

let concat_list n cs =
  List.fold_left concat (empty n) cs

let dagger t = { t with gates = List.rev_map Gate.dagger t.gates }

let map_angles f t = { t with gates = List.map (Gate.map_angles f) t.gates }

let map_qubits f t =
  let map_gate g =
    let open Gate in
    let rec go = function
      | G1 (k, q) -> G1 (k, f q)
      | Cnot (a, b) -> Cnot (f a, f b)
      | Cliff2 c -> Cliff2 { c with Phoenix_pauli.Clifford2q.a = f c.a; b = f c.b }
      | Rpp r -> Rpp { r with a = f r.a; b = f r.b }
      | Swap (a, b) -> Swap (f a, f b)
      | Su4 { a; b; parts } -> Su4 { a = f a; b = f b; parts = List.map go parts }
    in
    go g
  in
  let gates = List.map map_gate t.gates in
  List.iter (check_gate t.n) gates;
  { t with gates }

let with_num_qubits n t =
  if n < t.n then invalid_arg "Circuit.with_num_qubits: cannot shrink";
  { t with n }

let count pred t =
  List.fold_left (fun acc g -> if pred g then acc + 1 else acc) 0 t.gates

let count_1q t = count (fun g -> not (Gate.is_two_qubit g)) t
let count_2q t = count Gate.is_two_qubit t

let rec cnot_cost g =
  match g with
  | Gate.G1 _ -> 0
  | Gate.Cnot _ | Gate.Cliff2 _ -> 1
  | Gate.Rpp _ -> 2
  | Gate.Swap _ -> 3
  | Gate.Su4 { parts; _ } ->
    List.fold_left (fun acc p -> acc + cnot_cost p) 0 parts

let count_cnot t = List.fold_left (fun acc g -> acc + cnot_cost g) 0 t.gates

(* ASAP scheduling: each gate lands one layer after the latest busy layer
   among its qubits. *)
let depth_generic ~only_2q t =
  let busy = Array.make t.n 0 in
  let dep = ref 0 in
  let place g =
    let qs = Gate.qubits g in
    let ready = List.fold_left (fun acc q -> max acc busy.(q)) 0 qs in
    let counts = (not only_2q) || Gate.is_two_qubit g in
    let layer = if counts then ready + 1 else ready in
    List.iter (fun q -> busy.(q) <- layer) qs;
    if layer > !dep then dep := layer
  in
  List.iter place t.gates;
  !dep

let depth t = depth_generic ~only_2q:false t
let depth_2q t = depth_generic ~only_2q:true t

let layers_2q t =
  let busy = Array.make t.n 0 in
  let layers : (int, Gate.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let max_layer = ref 0 in
  let place g =
    if Gate.is_two_qubit g then begin
      let qs = Gate.qubits g in
      let layer = 1 + List.fold_left (fun acc q -> max acc busy.(q)) 0 qs in
      List.iter (fun q -> busy.(q) <- layer) qs;
      if layer > !max_layer then max_layer := layer;
      match Hashtbl.find_opt layers layer with
      | Some cell -> cell := g :: !cell
      | None -> Hashtbl.add layers layer (ref [ g ])
    end
  in
  List.iter place t.gates;
  List.init !max_layer (fun i ->
      match Hashtbl.find_opt layers (i + 1) with
      | Some cell -> List.rev !cell
      | None -> [])

let interaction_counts t =
  let counts = Hashtbl.create 16 in
  let bump g =
    match Gate.pair g with
    | Some key ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt counts key) in
      Hashtbl.replace counts key (prev + 1)
    | None -> ()
  in
  List.iter bump t.gates;
  counts

let used_qubits t =
  let used = Array.make t.n false in
  List.iter (fun g -> List.iter (fun q -> used.(q) <- true) (Gate.qubits g)) t.gates;
  List.filter (fun q -> used.(q)) (List.init t.n (fun i -> i))

let equal a b =
  a.n = b.n
  && List.length a.gates = List.length b.gates
  && List.for_all2 Gate.equal a.gates b.gates

let pp fmt t =
  Format.fprintf fmt "@[<v>circuit on %d qubits (%d gates):@," t.n
    (List.length t.gates);
  List.iter (fun g -> Format.fprintf fmt "  %a@," Gate.pp g) t.gates;
  Format.fprintf fmt "@]"
