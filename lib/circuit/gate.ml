module Pauli = Phoenix_pauli.Pauli
module Clifford2q = Phoenix_pauli.Clifford2q
module Angle = Phoenix_pauli.Angle

type one_q =
  | H
  | S
  | Sdg
  | X
  | Y
  | Z
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float

type t =
  | G1 of one_q * int
  | Cnot of int * int
  | Cliff2 of Clifford2q.t
  | Rpp of { p0 : Pauli.t; p1 : Pauli.t; a : int; b : int; theta : float }
  | Swap of int * int
  | Su4 of { a : int; b : int; parts : t list }

let qubits = function
  | G1 (_, q) -> [ q ]
  | Cnot (a, b) | Swap (a, b) -> [ a; b ]
  | Cliff2 { Clifford2q.a; b; _ } -> [ a; b ]
  | Rpp { a; b; _ } -> [ a; b ]
  | Su4 { a; b; _ } -> [ a; b ]

let is_two_qubit = function
  | G1 _ -> false
  | Cnot _ | Cliff2 _ | Rpp _ | Swap _ | Su4 _ -> true

let pair g =
  match qubits g with
  | [ a; b ] -> Some (min a b, max a b)
  | [ _ ] -> None
  | _ -> assert false

let dagger_one_q = function
  | H -> H
  | S -> Sdg
  | Sdg -> S
  | X -> X
  | Y -> Y
  | Z -> Z
  | T -> Tdg
  | Tdg -> T
  | Rx t -> Rx (Angle.neg t)
  | Ry t -> Ry (Angle.neg t)
  | Rz t -> Rz (Angle.neg t)

let rec dagger = function
  | G1 (g, q) -> G1 (dagger_one_q g, q)
  | Cnot _ as g -> g
  | Cliff2 _ as g -> g (* the six generators are Hermitian *)
  | Rpp r -> Rpp { r with theta = Angle.neg r.theta }
  | Swap _ as g -> g
  | Su4 { a; b; parts } ->
    Su4 { a; b; parts = List.rev_map dagger parts }

let map_one_q_angle f = function
  | (H | S | Sdg | X | Y | Z | T | Tdg) as g -> g
  | Rx t -> Rx (f t)
  | Ry t -> Ry (f t)
  | Rz t -> Rz (f t)

let rec map_angles f = function
  | G1 (g, q) -> G1 (map_one_q_angle f g, q)
  | (Cnot _ | Cliff2 _ | Swap _) as g -> g
  | Rpp r -> Rpp { r with theta = f r.theta }
  | Su4 { a; b; parts } -> Su4 { a; b; parts = List.map (map_angles f) parts }

let rec fold_angles f acc = function
  | G1 ((Rx t | Ry t | Rz t), _) -> f acc t
  | G1 ((H | S | Sdg | X | Y | Z | T | Tdg), _) | Cnot _ | Cliff2 _ | Swap _
    ->
    acc
  | Rpp { theta; _ } -> f acc theta
  | Su4 { parts; _ } -> List.fold_left (fold_angles f) acc parts

let exists_angle pred g = fold_angles (fun acc t -> acc || pred t) false g
let has_slot g = exists_angle Angle.is_slot g

let rotation_of_pauli p q theta =
  match p with
  | Pauli.X -> G1 (Rx theta, q)
  | Pauli.Y -> G1 (Ry theta, q)
  | Pauli.Z -> G1 (Rz theta, q)
  | Pauli.I -> invalid_arg "Gate.rotation_of_pauli: identity"

let of_clifford_basis = function
  | Clifford2q.H q -> G1 (H, q)
  | Clifford2q.S q -> G1 (S, q)
  | Clifford2q.Sdg q -> G1 (Sdg, q)
  | Clifford2q.Cnot (a, b) -> Cnot (a, b)

let one_q_equal a b =
  match a, b with
  | Rx t, Rx u | Ry t, Ry u | Rz t, Rz u -> Float.equal t u
  | H, H | S, S | Sdg, Sdg | X, X | Y, Y | Z, Z | T, T | Tdg, Tdg -> true
  | ( (H | S | Sdg | X | Y | Z | T | Tdg | Rx _ | Ry _ | Rz _),
      (H | S | Sdg | X | Y | Z | T | Tdg | Rx _ | Ry _ | Rz _) ) ->
    false

let rec equal g h =
  match g, h with
  | G1 (a, q), G1 (b, r) -> q = r && one_q_equal a b
  | Cnot (a, b), Cnot (c, d) | Swap (a, b), Swap (c, d) -> a = c && b = d
  | Cliff2 a, Cliff2 b -> Clifford2q.equal_gate a b
  | Rpp a, Rpp b ->
    a.p0 = b.p0 && a.p1 = b.p1 && a.a = b.a && a.b = b.b
    && Float.equal a.theta b.theta
  | Su4 a, Su4 b ->
    a.a = b.a && a.b = b.b
    && List.length a.parts = List.length b.parts
    && List.for_all2 equal a.parts b.parts
  | (G1 _ | Cnot _ | Cliff2 _ | Rpp _ | Swap _ | Su4 _), _ -> false

(* [Angle.to_string] prints consts as %g and slots as "slot#id", so dumps
   of parametric circuits stay readable without a separate printer. *)
let one_q_to_string = function
  | H -> "H"
  | S -> "S"
  | Sdg -> "Sdg"
  | X -> "X"
  | Y -> "Y"
  | Z -> "Z"
  | T -> "T"
  | Tdg -> "Tdg"
  | Rx t -> Printf.sprintf "Rx(%s)" (Angle.to_string t)
  | Ry t -> Printf.sprintf "Ry(%s)" (Angle.to_string t)
  | Rz t -> Printf.sprintf "Rz(%s)" (Angle.to_string t)

let to_string = function
  | G1 (g, q) -> Printf.sprintf "%s q%d" (one_q_to_string g) q
  | Cnot (a, b) -> Printf.sprintf "CNOT q%d,q%d" a b
  | Cliff2 c -> Format.asprintf "%a" Clifford2q.pp c
  | Rpp { p0; p1; a; b; theta } ->
    Printf.sprintf "R%c%c(%s) q%d,q%d" (Pauli.to_char p0) (Pauli.to_char p1)
      (Angle.to_string theta) a b
  | Swap (a, b) -> Printf.sprintf "SWAP q%d,q%d" a b
  | Su4 { a; b; parts } -> Printf.sprintf "SU4[%d] q%d,q%d" (List.length parts) a b

let pp fmt g = Format.pp_print_string fmt (to_string g)
