(** Quantum circuits: a qubit count plus a time-ordered gate list.

    The matrix of circuit [[g1; g2; …; gm]] is [U(gm)·…·U(g2)·U(g1)].
    Metric conventions follow the paper: 1Q gates are excluded from 2Q
    counts and 2Q depth, since they are regarded as free resources. *)

type t

val create : int -> Gate.t list -> t
(** Raises [Invalid_argument] if a gate touches a qubit outside
    [0 .. n-1]. *)

val of_validated : int -> Gate.t list -> t
(** Trusted constructor: skips the per-gate register check.  Only for
    hot paths replaying gates that already passed {!create} — e.g. a
    template rebind, where patching angles cannot move a gate's qubits. *)

val empty : int -> t
val num_qubits : t -> int
val gates : t -> Gate.t list
val gate_array : t -> Gate.t array
(** Fresh array of the gates. *)

val length : t -> int
(** Total gate count (1Q + 2Q), without expanding fused blocks. *)

val append : t -> Gate.t -> t
val concat : t -> t -> t
(** Raises [Invalid_argument] on differing qubit counts. *)

val concat_list : int -> t list -> t
val dagger : t -> t

val map_angles : (float -> float) -> t -> t
(** {!Gate.map_angles} over every gate; structure and order untouched. *)

val map_qubits : (int -> int) -> t -> t
(** Relabel qubits; the function must be injective on the used range. *)

val with_num_qubits : int -> t -> t
(** Same gates, padded to a wider register. *)

val count : (Gate.t -> bool) -> t -> int
val count_1q : t -> int
val count_2q : t -> int
(** Number of 2Q gates, counting [Su4] blocks as one and [Swap] as one;
    use {!Rebase.to_cnot_basis} first for CNOT-ISA accounting. *)

val count_cnot : t -> int
(** CNOT-equivalent count: expands [Cliff2]/[Rpp]/[Swap]/[Su4] to their
    CNOT costs (1, 2, 3, and per-content respectively) without rewriting
    the circuit. *)

val depth : t -> int
(** Depth over all gates. *)

val depth_2q : t -> int
(** Depth counting only 2Q gates. *)

val layers_2q : t -> Gate.t list list
(** ASAP layering of the 2Q gates only (1Q gates dropped), earliest layer
    first.  Two gates share a layer iff their qubit sets are disjoint and
    no dependency forces an order. *)

val interaction_counts : t -> (int * int, int) Hashtbl.t
(** Map from normalized qubit pair to the number of 2Q gates on it. *)

val used_qubits : t -> int list
(** Ascending list of qubits touched by at least one gate. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
