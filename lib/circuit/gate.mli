(** Quantum gates.

    The alphabet covers the needs of every compiler in this repository:
    elementary 1Q gates, CNOT, the six abstract Clifford2Q generators, 2Q
    Pauli rotations (kept abstract until rebase), SWAP, and fused [SU4]
    blocks representing arbitrary two-qubit unitaries for the SU(4) ISA.

    Rotation conventions: [Rz θ] is [exp(-i θ/2 Z)] and likewise for
    [Rx]/[Ry]; [Rpp] is [exp(-i θ/2 σ0⊗σ1)]. *)

type one_q =
  | H
  | S
  | Sdg
  | X
  | Y
  | Z
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float

type t =
  | G1 of one_q * int  (** 1Q gate on a qubit *)
  | Cnot of int * int  (** control, target *)
  | Cliff2 of Phoenix_pauli.Clifford2q.t
  | Rpp of {
      p0 : Phoenix_pauli.Pauli.t;
      p1 : Phoenix_pauli.Pauli.t;
      a : int;
      b : int;
      theta : float;
    }  (** [exp(-i θ/2 · σ0_a ⊗ σ1_b)]; both Paulis are non-identity *)
  | Swap of int * int
  | Su4 of { a : int; b : int; parts : t list }
      (** Fused 2Q block: [parts] (time-ordered, all supported on [{a,b}])
          records the realizing sub-circuit *)

val qubits : t -> int list
(** Qubits the gate acts on (1 or 2 elements, distinct). *)

val is_two_qubit : t -> bool

val pair : t -> (int * int) option
(** Unordered qubit pair of a 2Q gate, normalized with smaller index
    first; [None] for 1Q gates. *)

val dagger : t -> t
(** Inverse gate.  [Su4] inverts by reversing daggered parts. *)

val rotation_of_pauli : Phoenix_pauli.Pauli.t -> int -> float -> t
(** [rotation_of_pauli p q θ] is the 1Q rotation [exp(-i θ/2 p)] on [q].
    Raises [Invalid_argument] on [I]. *)

val of_clifford_basis : Phoenix_pauli.Clifford2q.basis_gate -> t

val map_angles : (float -> float) -> t -> t
(** Apply a function to every rotation angle ([Rx]/[Ry]/[Rz]/[Rpp]),
    recursing into [Su4] parts.  Gate structure is untouched; this is the
    primitive behind template binding and cache slot remapping. *)

val fold_angles : ('a -> float -> 'a) -> 'a -> t -> 'a
(** Fold over every rotation angle in gate order ([Su4] parts in time
    order). *)

val exists_angle : (float -> bool) -> t -> bool

val has_slot : t -> bool
(** Whether any rotation angle is a symbolic {!Phoenix_pauli.Angle} slot. *)

val one_q_equal : one_q -> one_q -> bool

val equal : t -> t -> bool
(** Structural equality.  Angles compare with [Float.equal], which treats
    all NaNs as equal — so [equal] does not distinguish two different
    {!Phoenix_pauli.Angle} slots.  Compare
    [Int64.bits_of_float]-rendered angles where slot identity matters. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
