(* Parity = sorted list of wire-variable indices; a per-qubit negation
   bit accounts for X gates.  Each folded phase class keeps one mutable
   output slot accumulating the angle. *)

module Angle = Phoenix_pauli.Angle

type item = Fixed of Gate.t | Phase of int * float ref (* qubit, angle *)

let quarter angle_of =
  match angle_of with
  | Gate.Z -> Some (2.0 *. Float.atan 1.0 *. 2.0 /. 2.0) (* π *)
  | Gate.S -> Some (2.0 *. Float.atan 1.0) (* π/2 *)
  | Gate.Sdg -> Some (-2.0 *. Float.atan 1.0)
  | Gate.T -> Some (Float.atan 1.0) (* π/4 *)
  | Gate.Tdg -> Some (-.Float.atan 1.0)
  | Gate.Rz t -> Some t
  | Gate.H | Gate.X | Gate.Y | Gate.Rx _ | Gate.Ry _ -> None

let fold circuit =
  let n = Circuit.num_qubits circuit in
  let fresh = ref n in
  let parity = Array.init n (fun q -> [ q ]) in
  let negated = Array.make n false in
  let rec xor a b =
    match a, b with
    | [], ys -> ys
    | xs, [] -> xs
    | x :: xs, y :: ys ->
      if x < y then x :: xor xs (y :: ys)
      else if y < x then y :: xor (x :: xs) ys
      else xor xs ys
  in
  let barrier q =
    parity.(q) <- [ !fresh ];
    negated.(q) <- false;
    incr fresh
  in
  let slots : (string, float ref) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let key q =
    Printf.sprintf "%s|%b"
      (String.concat "," (List.map string_of_int parity.(q)))
      negated.(q)
  in
  let add_phase q theta =
    let k = key q in
    match Hashtbl.find_opt slots k with
    | Some cell -> cell := Angle.add !cell theta
    | None ->
      let cell = ref theta in
      Hashtbl.add slots k cell;
      out := Phase (q, cell) :: !out
  in
  let handle g =
    match g with
    | Gate.G1 (kind, q) ->
      (match quarter kind with
      | Some theta -> add_phase q theta
      | None ->
        (match kind with
        | Gate.X ->
          negated.(q) <- not negated.(q);
          out := Fixed g :: !out
        | Gate.Y ->
          (* Y = (global i) · X·Z: a π phase at the current parity, then
             a negation *)
          add_phase q (4.0 *. Float.atan 1.0);
          negated.(q) <- not negated.(q);
          out := Fixed (Gate.G1 (Gate.X, q)) :: !out
        | Gate.H | Gate.Rx _ | Gate.Ry _ ->
          barrier q;
          out := Fixed g :: !out
        | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg | Gate.Rz _ ->
          assert false))
    | Gate.Cnot (a, b) ->
      parity.(b) <- xor parity.(a) parity.(b);
      negated.(b) <- negated.(b) <> negated.(a);
      out := Fixed g :: !out
    | Gate.Swap (a, b) ->
      let pa = parity.(a) and na = negated.(a) in
      parity.(a) <- parity.(b);
      negated.(a) <- negated.(b);
      parity.(b) <- pa;
      negated.(b) <- na;
      out := Fixed g :: !out
    | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Su4 _ ->
      List.iter barrier (Gate.qubits g);
      out := Fixed g :: !out
  in
  List.iter handle (Circuit.gates circuit);
  let gates =
    List.rev_map
      (fun item ->
        match item with
        | Fixed g -> Some g
        | Phase (q, cell) ->
          (* Slot cells defer the range reduction to bind time and are
             never dropped (a slot is not a known-zero rotation). *)
          let theta = Angle.normalize !cell in
          if Peephole.is_zero_angle theta then None
          else Some (Gate.G1 (Gate.Rz theta, q)))
      !out
    |> List.filter_map (fun g -> g)
  in
  Circuit.create n gates
