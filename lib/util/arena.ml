type t = {
  stride : int;
  mutable rows : int;
  mutable buf : int array;
}

let create ?(capacity = 0) ~stride () =
  if stride < 1 then invalid_arg "Arena.create: stride must be positive";
  if capacity < 0 then invalid_arg "Arena.create: negative capacity";
  { stride; rows = 0; buf = Array.make (max 1 (capacity * stride)) 0 }

let stride a = a.stride
let rows a = a.rows
let buffer a = a.buf

let check_row a i =
  if i < 0 || i >= a.rows then invalid_arg "Arena: record index out of range"

let base a i =
  check_row a i;
  i * a.stride

let get_word a i k =
  check_row a i;
  if k < 0 || k >= a.stride then invalid_arg "Arena: word index out of range";
  a.buf.((i * a.stride) + k)

let set_word a i k v =
  check_row a i;
  if k < 0 || k >= a.stride then invalid_arg "Arena: word index out of range";
  a.buf.((i * a.stride) + k) <- v

let reserve a extra =
  let need = (a.rows + extra) * a.stride in
  if need > Array.length a.buf then begin
    let cap = max need (2 * Array.length a.buf) in
    let buf = Array.make cap 0 in
    Array.blit a.buf 0 buf 0 (a.rows * a.stride);
    a.buf <- buf
  end

let push a =
  reserve a 1;
  let i = a.rows in
  Array.fill a.buf (i * a.stride) a.stride 0;
  a.rows <- i + 1;
  i

let push_n a k =
  if k < 0 then invalid_arg "Arena.push_n: negative count";
  reserve a k;
  Array.fill a.buf (a.rows * a.stride) (k * a.stride) 0;
  a.rows <- a.rows + k

let compact a ~keep moved =
  let s = a.stride in
  let dst = ref 0 in
  for i = 0 to a.rows - 1 do
    if keep i then begin
      let j = !dst in
      if j <> i then Array.blit a.buf (i * s) a.buf (j * s) s;
      moved i j;
      dst := j + 1
    end
  done;
  a.rows <- !dst;
  !dst

let copy a =
  {
    stride = a.stride;
    rows = a.rows;
    buf = Array.sub a.buf 0 (max 1 (a.rows * a.stride));
  }

let words_equal a i b j =
  if a.stride <> b.stride then invalid_arg "Arena.words_equal: stride mismatch";
  check_row a i;
  check_row b j;
  let s = a.stride in
  let oa = i * s and ob = j * s in
  let rec go k =
    k = s || (a.buf.(oa + k) = b.buf.(ob + k) && go (k + 1))
  in
  go 0
