(** Minimal domain pool for data-parallel maps (stdlib [Domain] only).

    The contract is strict determinism: provided [f] is pure,
    [map f xs = List.map f xs] — same results, same order, and the
    lowest-index exception re-raised on failure — regardless of how many
    domains execute the work or how items are scheduled across them. *)

val num_domains : unit -> int
(** Domains used by default: [Domain.recommended_domain_count ()], or the
    [PHOENIX_DOMAINS] environment variable when it parses as a positive
    integer (capped at 128). *)

val map : ?domains:int -> ?seed:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] evaluates [f] on every element of [xs], fanning the work
    out over [domains] (default {!num_domains}) domains.  Runs serially
    when [domains ≤ 1] or there is at most one item.  [f] must be safe to
    call concurrently from several domains.

    [seed] (or, when absent, the [PHOENIX_PARALLEL_SEED] environment
    variable when it parses as an integer) permutes the order in which
    items are claimed by the worker domains — a deterministic stand-in
    for adversarial work-stealing schedules.  Results are unaffected:
    each lands in its original slot, so [map f xs = List.map f xs] holds
    for every seed.  The determinism auditor replays compilations under
    several seeds to prove that property for the compiler's own uses. *)
