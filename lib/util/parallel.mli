(** Minimal domain pool for data-parallel maps (stdlib [Domain] only).

    The contract is strict determinism: provided [f] is pure,
    [map f xs = List.map f xs] — same results, same order, and the
    lowest-index exception re-raised on failure — regardless of how many
    domains execute the work or how items are scheduled across them.

    Failure handling is likewise part of the contract: every spawned
    domain is joined before [map] returns or re-raises, so a raising or
    cancelled worker never leaves a runaway domain behind and the pool
    is immediately reusable for the next call. *)

exception Transient of string
(** A worker failure worth retrying in place (I/O hiccup, injected chaos
    fault).  Absorbed up to the retry budget; re-raised once exhausted. *)

val default_retries : int
(** Bounded retry budget for {!Transient} failures (per item). *)

val num_domains : unit -> int
(** Domains used by default: [Domain.recommended_domain_count ()], or the
    [PHOENIX_DOMAINS] environment variable when it parses as a positive
    integer (capped at 128). *)

val map :
  ?domains:int -> ?seed:int -> ?retries:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] evaluates [f] on every element of [xs], fanning the work
    out over [domains] (default {!num_domains}) domains.  Runs on the
    calling domain alone when [domains ≤ 1] or there is at most one
    item.  [f] must be safe to call concurrently from several domains.

    [seed] (or, when absent, the [PHOENIX_PARALLEL_SEED] environment
    variable when it parses as an integer) permutes the order in which
    items are claimed by the worker domains — a deterministic stand-in
    for adversarial work-stealing schedules.  Results are unaffected:
    each lands in its original slot, so [map f xs = List.map f xs] holds
    for every seed.  The determinism auditor replays compilations under
    several seeds to prove that property for the compiler's own uses.

    An item raising {!Transient} is retried in place up to [retries]
    times (default {!default_retries}) before the failure counts.  Any
    other exception is recorded in the item's slot; remaining items
    still drain (so the lowest-index failure is deterministic), all
    domains are joined, and the lowest-index exception is re-raised with
    its backtrace.  Exception: {!Budget.Interrupted} stops the remaining
    domains from claiming new work first — prompt cancellation beats a
    deterministic drain.  If the system refuses to spawn a helper
    domain, the map proceeds on fewer domains rather than failing. *)
