(** Seeded fault injection for the chaos harness.

    A {e plan} assigns each injection site a firing probability; whether
    a given {!fire} call fires is a pure function of the plan seed, the
    site, and a per-site call counter, so a soak run replays exactly
    from its seed.  With no plan installed, every probe is a single
    atomic load returning [false] — the probes stay compiled into the
    hot paths at negligible cost.

    Plan syntax (also accepted from the [PHOENIX_CHAOS] environment
    variable): comma-separated [key=value] fields, e.g.
    [seed=42,timeout=0.001,worker=0.01,cache-flip=0.05]. *)

type site =
  | Timeout  (** a budget checkpoint reports the deadline as expired *)
  | Worker  (** a {!Parallel.map} worker raises a transient fault *)
  | Cache_flip  (** one byte of a staged disk-cache entry is flipped *)
  | Cache_truncate  (** a staged disk-cache entry is truncated *)
  | Alloc  (** a burst of short-lived allocation (GC pressure) *)

type plan = { seed : int; probability : float array }
(** [probability] is indexed by {!site_index}; entries are in [0, 1]. *)

val site_index : site -> int
val site_name : site -> string

val parse : string -> (plan, string) result
(** Parse a plan string.  Unknown sites, out-of-range probabilities and
    malformed fields are reported as [Error]. *)

val plan_to_string : plan -> string
(** Round-trippable rendering of a plan (omits zero-probability sites). *)

val set_plan : plan option -> unit
(** Install or clear the active plan.  Resets every per-site counter, so
    two runs under the same plan make identical firing decisions. *)

val plan : unit -> plan option
val enabled : unit -> bool

val install_from_env : unit -> unit
(** Install the plan from [PHOENIX_CHAOS] if set.  A malformed value is
    reported once on stderr and ignored — chaos configuration must never
    crash the tool it stresses. *)

val fire : site -> bool
(** Probe an injection site: [true] when the active plan says this call
    should fault.  Deterministic in (seed, site, call count); always
    [false] with no plan installed. *)
