(** Cooperative deadlines and cancellation.

    A budget combines an absolute deadline on the monotonic clock
    ({!Clock.monotonic_s}) with a cancellation flag.  Long-running loops
    call {!checkpoint} at their heads; once the ambient budget is
    exhausted the checkpoint raises {!Interrupted}, which either a
    degradation ladder catches (falling back to a cheaper strategy) or
    the pass manager converts into a structured failure (CLI exit 5).

    Budgets are installed {e ambiently} with {!with_ambient} rather than
    threaded through every function signature, so leaf libraries (the
    router, dense linear algebra) honour them without depending on the
    core library.  Checkpoints are cheap when no budget is installed:
    one atomic load. *)

type reason = Deadline | Cancelled

exception Interrupted of reason
(** Raised by {!check}/{!checkpoint} when a budget is exhausted.
    [Cancelled] always propagates (a cancelled job must fail closed,
    never degrade); [Deadline] may be caught by a degradation ladder. *)

val reason_to_string : reason -> string

type t

val none : t
(** The inert budget: never fires, and {!with_ambient} skips the push.
    Shared — do not {!cancel} it (that raises [Invalid_argument]). *)

val is_none : t -> bool

val of_timeout_s : float -> t
(** A budget expiring [s] monotonic seconds from now.  Raises
    [Invalid_argument] on negative or non-finite [s]. *)

val cancellable : unit -> t
(** A budget with no deadline that fires only when {!cancel}led. *)

val after_checks : ?reason:reason -> int -> t
(** Deterministic test budget: fires (with [reason], default [Deadline])
    at the [k]-th {!check} and every check after it, independent of real
    time.  Raises [Invalid_argument] when [k < 1]. *)

val cancel : t -> unit
(** Flag the budget as cancelled; the next {!check} from any domain
    raises [Interrupted Cancelled]. *)

val remaining_s : t -> float
(** Monotonic seconds until the deadline ([infinity] if none; clamped at
    [0.0] once expired). *)

val exhausted : t -> reason option
(** Non-raising probe of the budget's state (does not count as a check). *)

val check : t -> unit
(** Raise {!Interrupted} if [t] is cancelled or past its deadline. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** [with_ambient t f] runs [f] with [t] pushed on the ambient stack
    consulted by {!checkpoint}, popping it on exit (including by
    exception).  Scopes nest (job budget, then a per-pass slice).  The
    stack is {e domain-local}: budgets installed on one domain are
    invisible to jobs running on other domains (concurrent daemon jobs
    must not interrupt each other), so nested worker pools inherit the
    caller's stack explicitly via {!with_ambient_stack}. *)

val ambient_budgets : unit -> t list
(** This domain's ambient stack, innermost first (for workers that want
    to probe without raising, and for pools snapshotting the stack to
    hand to helper domains). *)

val with_ambient_stack : t list -> (unit -> 'a) -> 'a
(** [with_ambient_stack stack f] runs [f] with this domain's ambient
    stack replaced by [stack] (restored on exit, including by
    exception).  Used by [Parallel.map] to install the submitting
    domain's budgets in its helper domains. *)

val checkpoint : unit -> unit
(** The cooperative cancellation point for hot loops: checks every
    ambient budget (innermost first) and then consults the chaos plan —
    an injected [Timeout] fault raises [Interrupted Deadline] exactly as
    a real expiry would, and an [Alloc] fault applies GC pressure.  Cost
    with no ambient budget and chaos disabled: two atomic loads. *)
