(* Time sources.  [Sys.time] reports CPU seconds summed over every
   running domain, which overstates elapsed time as soon as compilation
   is parallel; all user-facing timings go through this module instead.

   [wall_s] is the raw wall clock and may step backwards under NTP
   adjustment — it is kept only for report timestamps.  All durations
   (pass traces, bench deltas, deadlines) use [monotonic_s]: the stdlib
   exposes no CLOCK_MONOTONIC without an external dependency, so we
   clamp the wall clock to be non-decreasing across the whole process
   with a CAS max over an atomically-stored reading.  A backwards step
   therefore reads as a 0-length interval rather than a negative one. *)

let wall_s = Unix.gettimeofday

(* Float atomics box; store the bits as an int instead so the CAS is on
   an immediate.  IEEE-754 ordering matches integer ordering for the
   non-negative floats produced by [gettimeofday] — but the raw bit
   pattern of an epoch-scale reading overflows OCaml's 63-bit int, so we
   keep the bits shifted right by one (still order-preserving; costs at
   most one ulp of resolution, far below the clock's own microsecond). *)
let encode f = Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float f) 1)
let decode bits = Int64.float_of_bits (Int64.shift_left (Int64.of_int bits) 1)

let last_bits = Atomic.make (encode 0.0)

let rec clamp_max now_bits =
  let prev = Atomic.get last_bits in
  if now_bits <= prev then decode prev
  else if Atomic.compare_and_set last_bits prev now_bits then decode now_bits
  else clamp_max now_bits

let monotonic_s () = clamp_max (encode (Unix.gettimeofday ()))
