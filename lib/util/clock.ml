(* Wall-clock timing.  [Sys.time] reports CPU seconds summed over every
   running domain, which overstates elapsed time as soon as compilation
   is parallel; all user-facing timings go through this module instead. *)

let wall_s = Unix.gettimeofday
