(** Time sources for user-facing timings.

    Use {!monotonic_s} for every duration (pass timings, bench deltas,
    deadlines) and {!wall_s} only when an absolute timestamp is wanted
    (report headers).  Neither sums CPU time across domains the way
    [Sys.time] does, so durations stay meaningful under domain-parallel
    compilation. *)

val wall_s : unit -> float
(** Seconds of wall-clock (elapsed real) time since the Unix epoch.  May
    jump or step backwards under NTP adjustment — timestamps only. *)

val monotonic_s : unit -> float
(** A non-decreasing reading of the wall clock, shared process-wide
    across domains: each call returns [max] of the current wall clock
    and every earlier [monotonic_s] reading.  Backwards clock steps thus
    appear as zero-length intervals, never negative deltas.  The epoch
    matches {!wall_s}, but only differences between two readings are
    meaningful. *)
