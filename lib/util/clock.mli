(** Wall-clock time source for user-facing timings. *)

val wall_s : unit -> float
(** Seconds of wall-clock (elapsed real) time since the Unix epoch.
    Unlike [Sys.time], this does not sum CPU time across domains, so
    durations stay meaningful under domain-parallel compilation. *)
