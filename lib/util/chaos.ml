(* Seeded fault injection for the chaos harness.  A plan names per-site
   firing probabilities; whether a given [fire] call actually fires is a
   pure function of (plan seed, site, per-site call counter), so a soak
   run is reproducible from its seed alone.  When no plan is installed
   every probe collapses to one load of an atomic — cheap enough to
   leave the probes compiled into the hot paths unconditionally. *)

type site = Timeout | Worker | Cache_flip | Cache_truncate | Alloc

let num_sites = 5

let site_index = function
  | Timeout -> 0
  | Worker -> 1
  | Cache_flip -> 2
  | Cache_truncate -> 3
  | Alloc -> 4

let site_name = function
  | Timeout -> "timeout"
  | Worker -> "worker"
  | Cache_flip -> "cache-flip"
  | Cache_truncate -> "cache-truncate"
  | Alloc -> "alloc"

type plan = { seed : int; probability : float array }

let plan_to_string p =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "seed=%d" p.seed);
  List.iter
    (fun s ->
      let pr = p.probability.(site_index s) in
      if pr > 0.0 then
        Buffer.add_string buf (Printf.sprintf ",%s=%g" (site_name s) pr))
    [ Timeout; Worker; Cache_flip; Cache_truncate; Alloc ];
  Buffer.contents buf

let site_of_name = function
  | "timeout" -> Some Timeout
  | "worker" -> Some Worker
  | "cache-flip" -> Some Cache_flip
  | "cache-truncate" -> Some Cache_truncate
  | "alloc" -> Some Alloc
  | _ -> None

let parse s =
  let s = String.trim s in
  if s = "" then Error "empty chaos plan"
  else begin
    let seed = ref 0 in
    let probability = Array.make num_sites 0.0 in
    let err = ref None in
    let fields = String.split_on_char ',' s in
    List.iter
      (fun field ->
        if !err = None then
          match String.index_opt field '=' with
          | None ->
            err := Some (Printf.sprintf "malformed chaos field %S" field)
          | Some i ->
            let key = String.trim (String.sub field 0 i) in
            let value =
              String.trim
                (String.sub field (i + 1) (String.length field - i - 1))
            in
            if key = "seed" then (
              match int_of_string_opt value with
              | Some v -> seed := v
              | None ->
                err := Some (Printf.sprintf "chaos seed %S is not an integer" value))
            else (
              match site_of_name key with
              | None -> err := Some (Printf.sprintf "unknown chaos site %S" key)
              | Some site -> (
                match float_of_string_opt value with
                | Some p when p >= 0.0 && p <= 1.0 ->
                  probability.(site_index site) <- p
                | Some _ | None ->
                  err :=
                    Some
                      (Printf.sprintf
                         "chaos probability %s=%S must be a float in [0,1]"
                         key value))))
      fields;
    match !err with
    | Some msg -> Error msg
    | None -> Ok { seed = !seed; probability }
  end

(* The active plan and per-site call counters.  Counters are atomics so
   worker domains can probe concurrently; [set_plan] resets them, which
   makes firing decisions reproducible run-to-run for a fixed seed. *)
let active : plan option Atomic.t = Atomic.make None
let counters = Array.init num_sites (fun _ -> Atomic.make 0)

let set_plan p =
  Array.iter (fun c -> Atomic.set c 0) counters;
  Atomic.set active p

let plan () = Atomic.get active
let enabled () = Atomic.get active <> None

let warned_env = ref false

let install_from_env () =
  match Sys.getenv_opt "PHOENIX_CHAOS" with
  | None | Some "" -> ()
  | Some s -> (
    match parse s with
    | Ok p -> set_plan (Some p)
    | Error msg ->
      (* A malformed plan must never crash the tool it is stressing:
         warn once on stderr and run clean. *)
      if not !warned_env then begin
        warned_env := true;
        Printf.eprintf "phoenix: ignoring PHOENIX_CHAOS: %s\n%!" msg
      end;
      set_plan None)

(* splitmix64: decorrelates (seed, site, counter) into a uniform draw. *)
let sm64 z =
  let open Int64 in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let draw ~seed ~site ~count =
  let h = sm64 (Int64.of_int seed) in
  let h = sm64 (Int64.logxor h (Int64.of_int (site * 0x51ED27))) in
  let h = sm64 (Int64.logxor h (Int64.of_int count)) in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let fire site =
  match Atomic.get active with
  | None -> false
  | Some p ->
    let i = site_index site in
    let pr = p.probability.(i) in
    if pr <= 0.0 then false
    else
      let count = Atomic.fetch_and_add counters.(i) 1 in
      draw ~seed:p.seed ~site:i ~count < pr
