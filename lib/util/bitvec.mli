(** Fixed-length bit vectors backed by [int] words.

    Bit vectors are the storage substrate of the binary symplectic form: a
    Pauli string over [n] qubits is a pair of length-[n] bit vectors.  All
    operations are length-checked; combining vectors of different lengths
    raises [Invalid_argument]. *)

type t
(** A mutable fixed-length bit vector. *)

val create : int -> t
(** [create n] is an all-zero vector of length [n].  [n] must be
    non-negative. *)

val length : t -> int
(** Number of bits. *)

val copy : t -> t
(** Independent copy. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with the bits of [src].  The lengths must match. *)

val num_words : t -> int
(** Number of backing words (each holding {!bits_per_word} bits). *)

val word : t -> int -> int
(** [word v i] is backing word [i]; bits beyond [length v] are zero.
    Together with [num_words] this allows word-parallel read-only loops
    over several vectors of equal length. *)

val bits_per_word : int
(** Payload bits per backing word (62). *)

val word_count : int -> int
(** [word_count n] is the number of backing words a length-[n] vector
    uses — [⌈n / bits_per_word⌉], at least 1. *)

val blit_words_to : t -> int array -> int -> unit
(** [blit_words_to v arr off] copies the backing words of [v] into
    [arr] starting at [off].  [arr] must have room for [num_words v]
    words from [off]; raises [Invalid_argument] otherwise.  Interop
    with flat word arenas ({!Arena}). *)

val of_words : int -> int array -> int -> t
(** [of_words n arr off] is a fresh length-[n] vector whose backing
    words are copied from [arr.(off) ..].  Bits beyond [n] in the last
    word must be zero (unchecked — callers own the invariant). *)

val popcount_word : int -> int
(** Branch-free population count of one backing word ([0 ≤ w < 2^62]). *)

val ctz_word : int -> int
(** Index of the lowest set bit of a non-zero word. *)

val get : t -> int -> bool
(** [get v i] is bit [i].  Raises [Invalid_argument] if out of range. *)

val get_unsafe : t -> int -> bool
(** [get v i] without the bounds check.  Out-of-range indices are
    undefined behaviour; reserved for audited hot loops. *)

val get2_unsafe : t -> int -> int -> int
(** [get2_unsafe v a b] packs bits [a] and [b] into an int: bit 0 is
    [get v a], bit 1 is [get v b].  No bounds checks. *)

val set : t -> int -> bool -> unit
(** [set v i b] sets bit [i] to [b]. *)

val flip : t -> int -> unit
(** [flip v i] toggles bit [i]. *)

val popcount : t -> int
(** Number of set bits. *)

val is_zero : t -> bool
(** [true] iff no bit is set. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val xor_into : t -> t -> unit
(** [xor_into dst src] sets [dst <- dst lxor src]. *)

val or_into : t -> t -> unit
(** [or_into dst src] sets [dst <- dst lor src]. *)

val and_into : t -> t -> unit
(** [and_into dst src] sets [dst <- dst land src]. *)

val logxor : t -> t -> t
val logor : t -> t -> t
val logand : t -> t -> t

val and_popcount : t -> t -> int
(** [and_popcount a b] is [popcount (logand a b)] without allocation. *)

val or_popcount : t -> t -> int
(** [or_popcount a b] is [popcount (logor a b)] without allocation. *)

val iter_set : (int -> unit) -> t -> unit
(** [iter_set f v] applies [f] to the index of every set bit, ascending. *)

val fold_set : ('a -> int -> 'a) -> 'a -> t -> 'a
(** [fold_set f init v] folds over indices of set bits, ascending. *)

val indices : t -> int list
(** Ascending list of set-bit indices. *)

val first_set : t -> int option
(** Lowest set-bit index, if any. *)

val of_indices : int -> int list -> t
(** [of_indices n is] is the length-[n] vector with exactly bits [is] set. *)

val of_string : string -> t
(** [of_string "0110"] parses a vector, index 0 first.  Raises
    [Invalid_argument] on characters other than '0'/'1'. *)

val to_string : t -> string
(** Inverse of [of_string]. *)

val pp : Format.formatter -> t -> unit
