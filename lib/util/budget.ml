(* Cooperative deadlines and cancellation.  A budget is a deadline on
   the monotonic clock plus a cancellation flag; long-running loops call
   [checkpoint] at their heads, which raises [Interrupted] once the
   ambient budget is exhausted.  Budgets are installed ambiently (a
   small global stack) rather than threaded through every signature, so
   the router and the dense-linear-algebra layers pick them up without
   depending on the core library. *)

type reason = Deadline | Cancelled

exception Interrupted of reason

let reason_to_string = function
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"

type t = {
  deadline : float;  (* absolute [Clock.monotonic_s]; [infinity] = none *)
  cancel : bool Atomic.t;
  fire_at_check : int;  (* test hook: force-fire at the nth check *)
  fire_reason : reason;
  checks : int Atomic.t;
}

let none =
  {
    deadline = infinity;
    cancel = Atomic.make false;
    fire_at_check = max_int;
    fire_reason = Deadline;
    checks = Atomic.make 0;
  }

let is_none t = t == none

let of_timeout_s s =
  if not (Float.is_finite s && s >= 0.0) then
    invalid_arg "Budget.of_timeout_s: timeout must be finite and non-negative";
  {
    deadline = Clock.monotonic_s () +. s;
    cancel = Atomic.make false;
    fire_at_check = max_int;
    fire_reason = Deadline;
    checks = Atomic.make 0;
  }

let cancellable () =
  {
    deadline = infinity;
    cancel = Atomic.make false;
    fire_at_check = max_int;
    fire_reason = Deadline;
    checks = Atomic.make 0;
  }

let after_checks ?(reason = Deadline) k =
  if k < 1 then invalid_arg "Budget.after_checks: k must be >= 1";
  {
    deadline = infinity;
    cancel = Atomic.make false;
    fire_at_check = k;
    fire_reason = reason;
    checks = Atomic.make 0;
  }

let cancel t =
  if is_none t then invalid_arg "Budget.cancel: the shared none budget"
  else Atomic.set t.cancel true

let remaining_s t =
  if t.deadline = infinity then infinity
  else Float.max 0.0 (t.deadline -. Clock.monotonic_s ())

let exhausted t =
  if is_none t then None
  else if Atomic.get t.cancel then Some Cancelled
  else if Atomic.get t.checks >= t.fire_at_check then Some t.fire_reason
  else if t.deadline < infinity && Clock.monotonic_s () > t.deadline then
    Some Deadline
  else None

let check t =
  if not (is_none t) then begin
    if Atomic.get t.cancel then raise (Interrupted Cancelled);
    let k = Atomic.fetch_and_add t.checks 1 in
    if k + 1 >= t.fire_at_check then raise (Interrupted t.fire_reason);
    if t.deadline < infinity && Clock.monotonic_s () > t.deadline then
      raise (Interrupted Deadline)
  end

(* The ambient budget stack, domain-local: independent jobs running on
   separate domains (the serve daemon's worker pool) must never see each
   other's budgets — a process-global stack would let one job's
   [after_checks] interrupt a neighbour's synthesis.  Budgets still flow
   into nested worker pools explicitly: [Parallel.map] snapshots the
   caller's stack ({!ambient_budgets}) and installs it in each helper
   domain ({!with_ambient_stack}). *)
let ambient : t list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_ambient t f =
  if is_none t then f ()
  else begin
    Domain.DLS.set ambient (t :: Domain.DLS.get ambient);
    Fun.protect
      ~finally:(fun () ->
        match Domain.DLS.get ambient with
        | b :: rest when b == t -> Domain.DLS.set ambient rest
        | stack ->
          (* Unwinding out of order would silently drop budgets; scrub
             this one wherever it sits instead. *)
          Domain.DLS.set ambient (List.filter (fun b -> b != t) stack))
      f
  end

let ambient_budgets () = Domain.DLS.get ambient

let with_ambient_stack stack f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient stack;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let checkpoint () =
  (match Domain.DLS.get ambient with
  | [] -> ()
  | stack -> List.iter check stack);
  if Chaos.enabled () then begin
    if Chaos.fire Chaos.Alloc then
      (* GC pressure: a burst of short-lived boxes the collector must
         sweep before the loop continues. *)
      Sys.opaque_identity (ignore (Array.init 4096 (fun i -> [ i; i + 1 ])));
    if Chaos.fire Chaos.Timeout then raise (Interrupted Deadline)
  end
