(* A minimal domain pool over the stdlib [Domain] API (no external
   dependency).  Work items are claimed from an atomic counter, but each
   result is written to its own slot, so the output order — and therefore
   everything downstream of it — is identical to the serial [List.map],
   whatever the scheduling.

   Failure handling is part of the contract: a raising worker records
   its exception in its slot and every domain is still joined before
   anything re-raises, so a failed [map] leaves no runaway domain behind
   and the pool is immediately reusable.  [Transient] failures are
   retried in place a bounded number of times; a cancellation
   ([Budget.Interrupted]) additionally stops the remaining domains from
   claiming new work, since promptness matters more than draining. *)

exception Transient of string

let default_retries = 2

let hardware_domains = lazy (max 1 (Domain.recommended_domain_count ()))

let num_domains () =
  match Sys.getenv_opt "PHOENIX_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> min d 128
    | Some _ | None -> Lazy.force hardware_domains)
  | None -> Lazy.force hardware_domains

type 'b slot = Empty | Ok_slot of 'b | Exn_slot of exn * Printexc.raw_backtrace

(* Claim-order permutation: exercised by the determinism auditor to show
   that no result depends on which domain processes which item in what
   order.  Results always land in their original slot, so the output is
   unchanged — only the scheduling varies. *)
let env_seed () =
  match Sys.getenv_opt "PHOENIX_PARALLEL_SEED" with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let claim_order ~seed n =
  match (match seed with Some _ -> seed | None -> env_seed ()) with
  | None -> None
  | Some s ->
    let order = Array.init n (fun i -> i) in
    Prng.shuffle (Prng.create s) order;
    Some order

let map ?domains ?seed ?(retries = default_retries) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let requested =
    match domains with Some d when d >= 1 -> d | Some _ | None -> num_domains ()
  in
  let k = min requested n in
  let results = Array.make n Empty in
  let order = claim_order ~seed n in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let call i =
    (* Chaos worker faults are injected as [Transient] so the bounded
       retry gets to absorb them; the counter advances per probe, so a
       retry redraws rather than refiring deterministically. *)
    if Chaos.fire Chaos.Worker then
      raise (Transient "chaos-injected worker fault");
    f items.(i)
  in
  let run_item i =
    let rec attempt tries =
      match call i with
      | v -> Ok_slot v
      | exception Transient _ when tries < retries -> attempt (tries + 1)
      | exception e ->
        (* A cancelled worker stops the others from claiming more work;
           other failures keep draining so the re-raised error (lowest
           index) stays independent of domain scheduling. *)
        (match e with
        | Budget.Interrupted _ -> Atomic.set stop true
        | _ -> ());
        Exn_slot (e, Printexc.get_raw_backtrace ())
    in
    attempt 0
  in
  let worker () =
    let continue = ref true in
    while !continue do
      if Atomic.get stop then continue := false
      else begin
        let j = Atomic.fetch_and_add next 1 in
        if j >= n then continue := false
        else begin
          let i = match order with Some o -> o.(j) | None -> j in
          results.(i) <- run_item i
        end
      end
    done
  in
  (* Spawn helpers best-effort: if the system refuses a new domain
     (resource exhaustion), proceed with fewer — the map still completes
     on the domains we did get, down to just the caller.  Each helper
     inherits the caller's ambient budget stack (domain-local, so it
     must be handed over explicitly) — and only the caller's: budgets
     of unrelated jobs on other domains stay invisible. *)
  let ambient = Budget.ambient_budgets () in
  let spawned =
    if k <= 1 then []
    else
      List.filter_map
        (fun _ ->
          match Domain.spawn (fun () -> Budget.with_ambient_stack ambient worker)
          with
          | d -> Some d
          | exception _ -> None)
        (List.init (k - 1) Fun.id)
  in
  worker ();
  List.iter Domain.join spawned;
  (* Re-raise the lowest-index failure so error reporting does not
     depend on domain scheduling.  (After a cancellation stop, unclaimed
     slots are [Empty]; the raise below fires before they are read.) *)
  Array.iter
    (function Exn_slot (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
    results;
  Array.to_list
    (Array.map
       (function
         | Ok_slot r -> r
         | Empty | Exn_slot _ -> assert false)
       results)
