(* A minimal domain pool over the stdlib [Domain] API (no external
   dependency).  Work items are claimed from an atomic counter, but each
   result is written to its own slot, so the output order — and therefore
   everything downstream of it — is identical to the serial [List.map],
   whatever the scheduling. *)

let hardware_domains = lazy (max 1 (Domain.recommended_domain_count ()))

let num_domains () =
  match Sys.getenv_opt "PHOENIX_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> min d 128
    | Some _ | None -> Lazy.force hardware_domains)
  | None -> Lazy.force hardware_domains

type 'b slot = Empty | Ok_slot of 'b | Exn_slot of exn * Printexc.raw_backtrace

(* Claim-order permutation: exercised by the determinism auditor to show
   that no result depends on which domain processes which item in what
   order.  Results always land in their original slot, so the output is
   unchanged — only the scheduling varies. *)
let env_seed () =
  match Sys.getenv_opt "PHOENIX_PARALLEL_SEED" with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let claim_order ~seed n =
  match (match seed with Some _ -> seed | None -> env_seed ()) with
  | None -> None
  | Some s ->
    let order = Array.init n (fun i -> i) in
    Prng.shuffle (Prng.create s) order;
    Some order

let map ?domains ?seed f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let requested =
    match domains with Some d when d >= 1 -> d | Some _ | None -> num_domains ()
  in
  let k = min requested n in
  if k <= 1 then List.map f xs
  else begin
    let results = Array.make n Empty in
    let order = claim_order ~seed n in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let j = Atomic.fetch_and_add next 1 in
        if j >= n then continue := false
        else begin
          let i = match order with Some o -> o.(j) | None -> j in
          results.(i) <-
            (try Ok_slot (f items.(i))
             with e -> Exn_slot (e, Printexc.get_raw_backtrace ()))
        end
      done
    in
    let spawned = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (* Re-raise the lowest-index failure so error reporting does not
       depend on domain scheduling. *)
    Array.to_list
      (Array.map
         (function
           | Ok_slot r -> r
           | Exn_slot (e, bt) -> Printexc.raise_with_backtrace e bt
           | Empty -> assert false)
         results)
  end
