(* Bits are packed 62 per word so that all word values stay positive
   OCaml ints regardless of platform word size games. *)

let bits_per_word = 62

type t = { len : int; words : int array }

let word_count len = max 1 ((len + bits_per_word - 1) / bits_per_word)

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (word_count len) 0 }

let length v = v.len
let copy v = { len = v.len; words = Array.copy v.words }

let num_words v = Array.length v.words

let word v i = v.words.(i)

let blit_words_to v arr off =
  let nw = Array.length v.words in
  if off < 0 || off + nw > Array.length arr then
    invalid_arg "Bitvec.blit_words_to: destination too small";
  Array.blit v.words 0 arr off nw

let of_words len arr off =
  if len < 0 then invalid_arg "Bitvec.of_words: negative length";
  let nw = word_count len in
  if off < 0 || off + nw > Array.length arr then
    invalid_arg "Bitvec.of_words: source too small";
  { len; words = Array.sub arr off nw }

let blit ~src ~dst =
  if src.len <> dst.len then invalid_arg "Bitvec.blit: length mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let check_index v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let get v i =
  check_index v i;
  v.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set v i b =
  check_index v i;
  let w = i / bits_per_word and m = 1 lsl (i mod bits_per_word) in
  if b then v.words.(w) <- v.words.(w) lor m
  else v.words.(w) <- v.words.(w) land lnot m

let flip v i =
  check_index v i;
  let w = i / bits_per_word and m = 1 lsl (i mod bits_per_word) in
  v.words.(w) <- v.words.(w) lxor m

let get_unsafe v i =
  Array.unsafe_get v.words (i / bits_per_word)
  land (1 lsl (i mod bits_per_word))
  <> 0

(* Two-column extraction: bit [a] in position 0, bit [b] in position 1, so
   the per-row inner loop of the BSF delta engine reads both operand
   columns of a candidate 2Q Clifford with two word fetches. *)
let get2_unsafe v a b =
  ((Array.unsafe_get v.words (a / bits_per_word) lsr (a mod bits_per_word))
  land 1)
  lor (((Array.unsafe_get v.words (b / bits_per_word) lsr (b mod bits_per_word))
       land 1)
      lsl 1)

(* SWAR popcount over the 62 payload bits.  The usual 64-bit masks do not
   fit OCaml's 63-bit literals, but every word is < 2^62, so the first
   mask only needs even bit positions up to 60 (the shifted value has no
   bit 61) and the final byte-sum multiply cannot carry past bit 62. *)
let popcount_word w =
  let w = w - ((w lsr 1) land 0x1555555555555555) in
  let w = (w land 0x3333333333333333) + ((w lsr 2) land 0x3333333333333333) in
  let w = (w + (w lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (w * 0x0101010101010101) lsr 56

(* Count-trailing-zeros of a non-zero word: isolate the lowest set bit and
   popcount the ones below it.  Branch-free, no per-bit loop. *)
let ctz_word w = popcount_word ((w land -w) - 1)

let popcount v = Array.fold_left (fun acc w -> acc + popcount_word w) 0 v.words
let is_zero v = Array.for_all (fun w -> w = 0) v.words
let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash v = Hashtbl.hash (v.len, v.words)

let check_same_length a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let xor_into dst src =
  check_same_length dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lxor w) src.words

let or_into dst src =
  check_same_length dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let and_into dst src =
  check_same_length dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let logxor a b = let r = copy a in xor_into r b; r
let logor a b = let r = copy a in or_into r b; r
let logand a b = let r = copy a in and_into r b; r

let and_popcount a b =
  check_same_length a b;
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount_word (w land b.words.(i))) a.words;
  !acc

let or_popcount a b =
  check_same_length a b;
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount_word (w lor b.words.(i))) a.words;
  !acc

let iter_set f v =
  for wi = 0 to Array.length v.words - 1 do
    let w = ref v.words.(wi) in
    let base = wi * bits_per_word in
    while !w <> 0 do
      f (base + ctz_word !w);
      w := !w land (!w - 1)
    done
  done

let fold_set f init v =
  let acc = ref init in
  iter_set (fun i -> acc := f !acc i) v;
  !acc

let indices v = List.rev (fold_set (fun acc i -> i :: acc) [] v)

let first_set v =
  let exception Found of int in
  try
    iter_set (fun i -> raise (Found i)) v;
    None
  with Found i -> Some i

let of_indices n is =
  let v = create n in
  List.iter (fun i -> set v i true) is;
  v

let of_string s =
  let v = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set v i true
      | _ -> invalid_arg "Bitvec.of_string: expected '0' or '1'")
    s;
  v

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')
let pp fmt v = Format.pp_print_string fmt (to_string v)
