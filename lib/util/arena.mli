(** Flat contiguous word arenas with row-stride indexing.

    An arena is one growable [int array] holding [rows] fixed-[stride]
    records back to back: record [i] occupies words
    [[i·stride, (i+1)·stride)].  It is the storage substrate of the
    binary-symplectic-form tableau: every row's x- and z-bit words live
    in one allocation, so row-major sweeps (the simplify/delta hot
    loops) walk memory linearly and mutators never allocate.

    The backing buffer is deliberately exposed ({!buffer}) for audited
    hot loops; everything outside such a loop should go through the
    checked accessors.  The buffer reference is only invalidated by
    {!push} (which may grow it) — never by {!compact} or the word
    setters. *)

type t

val create : ?capacity:int -> stride:int -> unit -> t
(** An empty arena of [stride] words per record ([stride ≥ 1]).
    [capacity] pre-reserves room for that many records. *)

val stride : t -> int
val rows : t -> int

val buffer : t -> int array
(** The live backing buffer.  Words beyond [rows·stride] are unspecified.
    Hold the reference only within one sweep: {!push} may replace it. *)

val base : t -> int -> int
(** [base a i] is the word offset of record [i] — [i · stride a], with a
    bounds check on [i]. *)

val get_word : t -> int -> int -> int
(** [get_word a i k] is word [k] of record [i] (both checked). *)

val set_word : t -> int -> int -> int -> unit

val push : t -> int
(** Append one zeroed record, growing the buffer geometrically if full;
    returns the new record's index. *)

val push_n : t -> int -> unit
(** Append [k] zeroed records at once (one growth step at most). *)

val compact : t -> keep:(int -> bool) -> (int -> int -> unit) -> int
(** [compact a ~keep moved] drops every record whose index fails [keep],
    sliding the survivors down in order.  [moved old_i new_i] is called
    for every surviving record (including unmoved ones, with
    [old_i = new_i]) so parallel side arrays can follow the same
    permutation.  Returns the new record count.  Does not shrink the
    buffer. *)

val copy : t -> t
(** Independent copy, trimmed to the live records. *)

val words_equal : t -> int -> t -> int -> bool
(** [words_equal a i b j]: record [i] of [a] and record [j] of [b] hold
    identical words (strides must match). *)
