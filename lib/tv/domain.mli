(** The translation validator's abstract domain: a signed Clifford
    frame × symbolic phase polynomial, computed over the Pauli IR.

    A compilation context — gadget program, IR groups, synthesized
    blocks, or circuit — abstracts to the list of Pauli rotations it
    applies, each pulled back through the Clifford frame accumulated
    before it ([C·exp(-iθ/2 σ) = exp(-iθ/2 CσC†)·C]), plus the residual
    frame of the trailing Cliffords.  Angles are canonical
    {!Phoenix_pauli.Angle.linear} forms, so two abstractions compare
    structurally for {e every} parameter binding — the pullback never
    performs float arithmetic on a possibly-slotted angle (signs land on
    the linear form), which is why this scanner shares no code with the
    pass-side {!Phoenix_verify.Equiv} helpers it audits. *)

type term = {
  axis : Phoenix_pauli.Pauli_string.t;  (** pulled-back rotation axis *)
  angle : Phoenix_pauli.Angle.linear;  (** canonical symbolic angle *)
}

type t = {
  n : int;
  terms : term list;  (** rotations in time order *)
  frame : Phoenix_verify.Frame.t;  (** residual Clifford action *)
}

val term_to_string : term -> string

val split_quarter_turns : Phoenix_pauli.Angle.linear -> int * Phoenix_pauli.Angle.linear
(** [split_quarter_turns l] peels the nearest quarter-turn multiple out
    of [l]'s constant part: [(k, r)] with [k ∈ 0..3] quarter-turns and
    [r.const ∈ [-π/4, π/4]], such that [exp(-i·l/2·σ) =
    exp(-i·k·π/4·σ)·exp(-i·r/2·σ)] up to global phase for every
    binding.  The checker's canonicalization absorbs the [k]
    quarter-turns into the Clifford frame, so a rotation is abstracted
    identically whether a pass spelled it [S], [Rz (π/2)], or fused it
    into a neighbouring phase cell.  Slot coefficients pass through
    untouched. *)

val of_terms : int -> (Phoenix_pauli.Pauli_string.t * float) list -> t
(** Abstraction of a flat gadget program (identity terms are dropped —
    they are global phases; the frame is the identity). *)

val of_circuit : Phoenix_circuit.Circuit.t -> t
(** Abstraction of a circuit via the slot-safe rotation scanner.  Raises
    [Invalid_argument] on gates outside the Clifford+rotation alphabet
    (surfaced by the checker as a {e plausible} verdict, never a silent
    accept). *)

val of_blocks : int -> Phoenix.Order.block list -> t
val of_groups : int -> Phoenix.Group.t list -> t

val of_ctx : Phoenix.Pass.ctx -> t
(** Abstraction of a pass boundary: the most-lowered representation the
    context holds (circuit ≻ blocks ≻ groups ≻ gadgets). *)

val frame_equal : Phoenix_verify.Frame.t -> Phoenix_verify.Frame.t -> bool
(** Equality of Clifford actions, decided on the 2n X/Z generators. *)

val frame_permutation : Phoenix_verify.Frame.t -> int array option
(** [Some perm] iff the frame is a pure, sign-free qubit permutation
    ([X_q ↦ X_perm(q)] and [Z_q ↦ Z_perm(q)], positive signs) — the only
    residual action routing is allowed to leave behind. *)
