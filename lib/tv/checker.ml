module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Angle = Phoenix_pauli.Angle
module Frame = Phoenix_verify.Frame
module Pass = Phoenix.Pass

type verdict = Proved | Plausible of string | Refuted of string

let verdict_label = function
  | Proved -> "proved"
  | Plausible _ -> "plausible"
  | Refuted _ -> "refuted"

let verdict_reason = function
  | Proved -> None
  | Plausible r | Refuted r -> Some r

let two_pi = 8.0 *. atan 1.0

let is_zero lin = Angle.linear_is_zero ~modulo:two_pi lin
let angle_equal a b = Angle.linear_equal ~modulo:two_pi a b

module PMap = Map.Make (struct
  type t = Pauli_string.t

  let compare = Pauli_string.compare
end)

(* --- multiset comparison: per-axis summed phase polynomial --- *)

let axis_sums terms =
  List.fold_left
    (fun m (t : Domain.term) ->
      PMap.update t.Domain.axis
        (function
          | None -> Some t.Domain.angle
          | Some l -> Some (Angle.linear_add l t.Domain.angle))
        m)
    PMap.empty terms
  |> PMap.filter (fun _ l -> not (is_zero l))

let compare_multiset before after =
  let mb = axis_sums before and ma = axis_sums after in
  let bad = ref None in
  PMap.iter
    (fun axis l ->
      if !bad = None then
        match PMap.find_opt axis ma with
        | Some l' when angle_equal l l' -> ()
        | Some l' ->
          bad :=
            Some
              (Printf.sprintf "axis %s: input angle %s, output angle %s"
                 (Pauli_string.to_string axis)
                 (Angle.linear_to_string l)
                 (Angle.linear_to_string l'))
        | None ->
          bad :=
            Some
              (Printf.sprintf "axis %s (angle %s) is not realized by the output"
                 (Pauli_string.to_string axis)
                 (Angle.linear_to_string l)))
    mb;
  PMap.iter
    (fun axis l ->
      if !bad = None && not (PMap.mem axis mb) then
        bad :=
          Some
            (Printf.sprintf "output introduces axis %s (angle %s)"
               (Pauli_string.to_string axis)
               (Angle.linear_to_string l)))
    ma;
  match !bad with None -> Proved | Some m -> Refuted m

(* --- sequence comparison: trace-monoid normal form ---

   Two rotation sequences are equal up to commuting exchanges iff their
   greedy lexicographic normal forms coincide (the standard normal form
   of the trace monoid whose independence relation is Pauli-string
   commutation).  On top of the exchange freedom we normalize the two
   rewrites every order-preserving pass performs: simultaneously
   available same-axis rotations merge (sound: everything between them
   commutes with the axis) and rotations that vanish modulo 2π drop
   (global phase only). *)

let normal_form terms =
  let terms =
    Array.of_list
      (List.filter (fun (t : Domain.term) -> not (is_zero t.Domain.angle)) terms)
  in
  let k = Array.length terms in
  let pred = Array.make k 0 in
  let succs = Array.make k [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if not (Pauli_string.commutes terms.(i).Domain.axis terms.(j).Domain.axis)
      then begin
        pred.(j) <- pred.(j) + 1;
        succs.(i) <- j :: succs.(i)
      end
    done
  done;
  let emitted = Array.make k false in
  let remaining = ref k in
  let out = ref [] in
  while !remaining > 0 do
    let best = ref (-1) in
    for i = 0 to k - 1 do
      if
        (not emitted.(i))
        && pred.(i) = 0
        && (!best < 0
           || Pauli_string.compare terms.(i).Domain.axis
                terms.(!best).Domain.axis
              < 0)
      then best := i
    done;
    let b = !best in
    assert (b >= 0);
    let axis = terms.(b).Domain.axis in
    let merged = ref Angle.linear_zero in
    for i = 0 to k - 1 do
      if
        (not emitted.(i))
        && pred.(i) = 0
        && Pauli_string.equal terms.(i).Domain.axis axis
      then begin
        merged := Angle.linear_add !merged terms.(i).Domain.angle;
        emitted.(i) <- true;
        decr remaining;
        List.iter (fun j -> pred.(j) <- pred.(j) - 1) succs.(i)
      end
    done;
    if not (is_zero !merged) then
      out := { Domain.axis; Domain.angle = !merged } :: !out
  done;
  List.rev !out

(* --- canonicalization: quarter-turns migrate into the frame ---

   Passes rewrite freely between the Clifford-gate spelling and the
   rotation spelling of the same operation: [Phase_folding.fold] turns
   [S]/[Sdg]/[Z] into [Rz] phases and fuses them into neighbouring
   cells, peephole merges can sum two rotations to a quarter-turn.
   Comparing raw abstractions would then see content shift between the
   frame and the phase polynomial and refute sound rewrites.  So before
   any frame or term comparison we canonicalize: merge the term list
   into its trace-monoid normal form first (so fused cells and their
   unfused spellings reassociate to the same constants), then sweep the
   merged sequence left-to-right peeling quarter-turn multiples out of
   each constant into an extracted Clifford [P].  With the terms in
   product order [t_m ⋯ t_1] (earliest rightmost), peeling [t_i =
   Q_i·r_i] and commuting each [Q_i] leftwards conjugates every later
   term by the quarter-turns extracted so far, which is exactly a
   pullback through [P_{i-1} = Q_1⋯Q_{i-1}]; the result is the exact
   factorization [U = (F·P_m)·(r_m ⋯ r_1)] — same operator, canonical
   frame/polynomial split. *)
let canonicalize (d : Domain.t) =
  let p = ref (Frame.identity d.Domain.n) in
  let acc = ref [] in
  List.iter
    (fun (t : Domain.term) ->
      let negated, pulled = Frame.image !p t.Domain.axis in
      let lin = if negated then Angle.linear_neg t.Domain.angle else t.Domain.angle in
      let k, rest = Domain.split_quarter_turns lin in
      if not (is_zero rest) then
        acc := { Domain.axis = pulled; Domain.angle = rest } :: !acc;
      if k <> 0 then begin
        let q = Frame.identity d.Domain.n in
        Frame.apply_pauli_rotation q pulled k;
        (* P_i = P_{i-1}·Q_i: Q_i sits earlier in scan order. *)
        p := Frame.compose q !p
      end)
    (normal_form d.Domain.terms);
  {
    d with
    Domain.terms = List.rev !acc;
    Domain.frame = Frame.compose !p d.Domain.frame;
  }

let compare_sequence before after =
  let nb = normal_form before and na = normal_form after in
  let rec go i bs as_ =
    match (bs, as_) with
    | [], [] -> Proved
    | (b : Domain.term) :: _, [] ->
      Refuted
        (Printf.sprintf "rotation #%d %s is not realized by the output" i
           (Domain.term_to_string b))
    | [], a :: _ ->
      Refuted
        (Printf.sprintf "output emits extra rotation #%d %s" i
           (Domain.term_to_string a))
    | b :: bs', a :: as_' ->
      if not (Pauli_string.equal b.Domain.axis a.Domain.axis) then
        Refuted
          (Printf.sprintf
             "rotation #%d: input %s vs output %s (non-commuting reorder or \
              axis change)"
             i (Domain.term_to_string b) (Domain.term_to_string a))
      else if not (angle_equal b.Domain.angle a.Domain.angle) then
        Refuted
          (Printf.sprintf "rotation #%d on %s: input angle %s, output angle %s"
             i
             (Pauli_string.to_string b.Domain.axis)
             (Angle.linear_to_string b.Domain.angle)
             (Angle.linear_to_string a.Domain.angle))
      else go (i + 1) bs' as_'
  in
  go 0 nb na

(* --- structural comparison (the Unchanged claim) --- *)

let compare_structural before after =
  let rec go i bs as_ =
    match (bs, as_) with
    | [], [] -> Proved
    | _ :: _, [] | [], _ :: _ ->
      Refuted
        (Printf.sprintf
           "claimed unchanged, but term counts differ (%d vs %d)"
           (List.length before) (List.length after))
    | (b : Domain.term) :: bs', (a : Domain.term) :: as_' ->
      if
        Pauli_string.equal b.Domain.axis a.Domain.axis
        && angle_equal b.Domain.angle a.Domain.angle
      then go (i + 1) bs' as_'
      else
        Refuted
          (Printf.sprintf "claimed unchanged, but term #%d differs: %s vs %s"
             i (Domain.term_to_string b) (Domain.term_to_string a))
  in
  go 0 before after

(* --- the routing claim --- *)

(* Raw-then-canonical disjunction.  The raw comparison is exact on the
   as-scanned abstractions and is order-robust (no extraction); the
   canonical one reconciles gate-vs-rotation spellings of the same
   Clifford but its extraction sweep follows each side's own term
   order, so it can disagree across claims that genuinely reorder
   non-commuting terms.  Each prover is individually sound, so proving
   under either relation proves the boundary; when both fail, a
   plausible verdict wins over a refutation, and otherwise the
   canonical prover's reason (the more lenient relation) is
   reported. *)
let either_way raw canonical =
  match raw () with
  | Proved -> Proved
  | first -> (
    match canonical () with
    | Proved -> Proved
    | Plausible _ as p -> p
    | second -> ( match first with Plausible _ -> first | _ -> second))

let build_p2l ~l2p ~n_logical ~n_physical =
  if Array.length l2p <> n_logical then
    Error
      (Printf.sprintf "claimed layout places %d logical qubits, program has %d"
         (Array.length l2p) n_logical)
  else begin
    let p2l = Array.make n_physical (-1) in
    let bad = ref None in
    Array.iteri
      (fun l p ->
        if p < 0 || p >= n_physical then
          bad :=
            Some
              (Printf.sprintf "claimed layout maps logical %d off-register (%d)"
                 l p)
        else if p2l.(p) >= 0 then
          bad :=
            Some
              (Printf.sprintf
                 "claimed layout is not injective: physical %d taken twice" p)
        else p2l.(p) <- l)
      l2p;
    match !bad with Some m -> Error m | None -> Ok p2l
  end

let relabel_terms ~p2l ~n_logical terms =
  let bad = ref None in
  let relabel (t : Domain.term) =
    match !bad with
    | Some _ -> t
    | None ->
      let axis =
        List.fold_left
          (fun acc q ->
            let l = p2l.(q) in
            if l < 0 then begin
              bad :=
                Some
                  (Printf.sprintf
                     "rotation %s touches unmapped physical qubit %d"
                     (Domain.term_to_string t) q);
              acc
            end
            else Pauli_string.set acc l (Pauli_string.get t.Domain.axis q))
          (Pauli_string.identity n_logical)
          (Pauli_string.support_list t.Domain.axis)
      in
      { t with Domain.axis }
  in
  let terms = List.map relabel terms in
  match !bad with Some m -> Error m | None -> Ok terms

(* A correct routing satisfies [U_phys = Π · W·U_log·W†] with [W] the
   initial-placement relabeling and [Π] some wire permutation (the SWAP
   network's residue).  On canonical abstractions that splits into two
   checks: the terms, relabeled back to logical wires, must match under
   the claimed relation; and the physical residual frame must equal
   [Π · W·F_log·W†] for {e some} sign-free permutation [Π] — i.e. the
   per-wire (X, Z) generator-image pairs of the physical frame must be,
   as a multiset, exactly the relabeled image pairs of the logical
   frame (extended as the identity on unmapped wires). *)
let frame_matches_layout ~l2p ~p2l ~n_logical ~n_physical logical_frame
    physical_frame =
  let relabel_string s =
    List.fold_left
      (fun acc l -> Pauli_string.set acc l2p.(l) (Pauli_string.get s l))
      (Pauli_string.identity n_physical)
      (Pauli_string.support_list s)
  in
  let signed_key (neg, s) =
    (if neg then "-" else "+") ^ Pauli_string.to_string s
  in
  let expected q =
    let img gen =
      let l = p2l.(q) in
      if l < 0 then (false, Pauli_string.single n_physical q gen)
      else
        let neg, s =
          Frame.image logical_frame (Pauli_string.single n_logical l gen)
        in
        (neg, relabel_string s)
    in
    signed_key (img Pauli.X) ^ "|" ^ signed_key (img Pauli.Z)
  in
  let actual p =
    let img gen =
      Frame.image physical_frame (Pauli_string.single n_physical p gen)
    in
    signed_key (img Pauli.X) ^ "|" ^ signed_key (img Pauli.Z)
  in
  let counts = Hashtbl.create (2 * n_physical) in
  for q = 0 to n_physical - 1 do
    let k = expected q in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let ok = ref true in
  for p = 0 to n_physical - 1 do
    let k = actual p in
    match Hashtbl.find_opt counts k with
    | Some c when c > 0 -> Hashtbl.replace counts k (c - 1)
    | _ -> ok := false
  done;
  !ok

let check_routing ~exact ~l2p ~n_physical (before : Domain.t)
    (after : Domain.t) =
  if after.Domain.n <> n_physical then
    Refuted
      (Printf.sprintf
         "certificate claims a %d-qubit physical register, output has %d"
         n_physical after.Domain.n)
  else
    let n_logical = before.Domain.n in
    match build_p2l ~l2p ~n_logical ~n_physical with
    | Error m -> Refuted m
    | Ok p2l ->
      let attempt (b : Domain.t) (a : Domain.t) =
        if
          not
            (frame_matches_layout ~l2p ~p2l ~n_logical ~n_physical
               b.Domain.frame a.Domain.frame)
        then
          Refuted
            "routed circuit's residual frame is not the placed image of the \
             input frame modulo a wire permutation"
        else
          match relabel_terms ~p2l ~n_logical a.Domain.terms with
          | Error m -> Refuted m
          | Ok terms ->
            if exact then compare_sequence b.Domain.terms terms
            else compare_multiset b.Domain.terms terms
      in
      either_way
        (fun () -> attempt before after)
        (fun () -> attempt (canonicalize before) (canonicalize after))

(* --- pass-boundary check --- *)

let guard f = try f () with Invalid_argument m | Failure m -> Plausible m

let check_boundary ~(claim : Pass.certificate) ~(before : Pass.ctx)
    ~(after : Pass.ctx) =
  guard (fun () ->
      let a = Domain.of_ctx before in
      let b = Domain.of_ctx after in
      match claim with
      | Pass.Routing { l2p; n_physical } ->
        check_routing ~exact:after.Pass.options.Pass.exact ~l2p ~n_physical a b
      | Pass.Unchanged ->
        (* Strictest relation: raw abstractions, no canonicalization. *)
        if b.Domain.n <> a.Domain.n then
          Refuted
            (Printf.sprintf
               "register size changed (%d to %d) without a routing claim"
               a.Domain.n b.Domain.n)
        else if not (Domain.frame_equal a.Domain.frame b.Domain.frame) then
          Refuted "residual Clifford frames differ"
        else compare_structural a.Domain.terms b.Domain.terms
      | (Pass.Preserving | Pass.Reordering) as claim ->
        if b.Domain.n <> a.Domain.n then
          Refuted
            (Printf.sprintf
               "register size changed (%d to %d) without a routing claim"
               a.Domain.n b.Domain.n)
        else
          let check (x : Domain.t) (y : Domain.t) =
            if not (Domain.frame_equal x.Domain.frame y.Domain.frame) then
              Refuted "residual Clifford frames differ"
            else
              match claim with
              | Pass.Preserving ->
                compare_sequence x.Domain.terms y.Domain.terms
              | _ -> compare_multiset x.Domain.terms y.Domain.terms
          in
          either_way
            (fun () -> check a b)
            (fun () -> check (canonicalize a) (canonicalize b)))

(* --- end-to-end program-vs-circuit check (the analysis entry) --- *)

let pad_axis n' p =
  List.fold_left
    (fun acc q -> Pauli_string.set acc q (Pauli_string.get p q))
    (Pauli_string.identity n')
    (Pauli_string.support_list p)

let check_program ?(exact = false) ?l2p n program circuit =
  guard (fun () ->
      let after = Domain.of_circuit circuit in
      match l2p with
      | Some l2p ->
        check_routing ~exact ~l2p ~n_physical:after.Domain.n
          (Domain.of_terms n program) after
      | None ->
        if after.Domain.n < n then
          Refuted
            (Printf.sprintf "circuit acts on %d qubits, program on %d"
               after.Domain.n n)
        else
          (* Dangling wires beyond the program's register are allowed
             (the liveness lint owns that complaint); embed the program
             on the circuit's register. *)
          let before =
            Domain.of_terms after.Domain.n
              (List.map
                 (fun (p, t) -> (pad_axis after.Domain.n p, t))
                 program)
          in
          let check (x : Domain.t) (y : Domain.t) =
            if not (Domain.frame_equal x.Domain.frame y.Domain.frame) then
              Refuted
                "residual Clifford frame: conjugation layers do not cancel \
                 against the program"
            else if exact then
              compare_sequence x.Domain.terms y.Domain.terms
            else compare_multiset x.Domain.terms y.Domain.terms
          in
          either_way
            (fun () -> check before after)
            (fun () -> check (canonicalize before) (canonicalize after)))
