module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Angle = Phoenix_pauli.Angle
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Frame = Phoenix_verify.Frame
module Pass = Phoenix.Pass
module Order = Phoenix.Order
module Group = Phoenix.Group

type term = { axis : Pauli_string.t; angle : Angle.linear }

type t = { n : int; terms : term list; frame : Frame.t }

let pi = 4.0 *. atan 1.0
let half_pi = 2.0 *. atan 1.0

let term_to_string t =
  Printf.sprintf "(%s, %s)"
    (Pauli_string.to_string t.axis)
    (Angle.linear_to_string t.angle)

(* Quarter-turn extraction: a rotation whose constant part is a
   multiple of π/2 is (up to global phase) a Clifford, and passes
   rewrite freely between the gate spelling and the rotation spelling
   — [Phase_folding.fold] turns [S]/[Sdg]/[Z] into [Rz (±π/2)]/[Rz π]
   and fuses them into neighbouring cells, peephole merges can sum two
   rotations to a quarter-turn.  [split_quarter_turns] peels the
   largest quarter-turn multiple out of the const, leaving a remainder
   in [-π/4, π/4]; the checker's canonicalization absorbs the peeled
   turns into the Clifford frame so both spellings abstract
   identically.  Slot coefficients are untouched: a symbolic angle is
   Clifford only for measure-zero bindings and the split is exact for
   every binding ([exp(-i(kπ/2 + r)/2 σ) = exp(-ikπ/4 σ)·exp(-ir/2 σ)],
   same axis). *)
let split_quarter_turns (lin : Angle.linear) =
  let c = lin.Angle.const in
  if (not (Float.is_finite c)) || Float.abs c > 1e9 then (0, lin)
  else
    let k = Float.round (c /. half_pi) in
    if k = 0.0 then (0, lin)
    else
      ( (int_of_float k mod 4 + 4) mod 4,
        { lin with Angle.const = c -. (k *. half_pi) } )

let of_terms n gadgets =
  let terms =
    List.filter_map
      (fun (p, theta) ->
        if Pauli_string.is_identity p then None
        else Some { axis = p; angle = Angle.linearize theta })
      gadgets
  in
  { n; terms; frame = Frame.identity n }

(* The checker's own rotation scanner.  It deliberately does not call
   [Equiv.propagated_rotations] — that helper belongs to the verify path
   the passes themselves use, and it folds rotation signs with float
   negation, which destroys a symbolic slot's NaN payload.  Here the
   sign lands on the canonical linear form instead, so unbound template
   angles survive the pullback and are compared for all bindings at
   once.  Cliffords fold into the signed frame; T/T† are π/4
   Z-rotations up to global phase; SU(4) blocks are scanned through
   their recorded parts. *)
let of_circuit c =
  let n = Circuit.num_qubits c in
  let frame = Frame.identity n in
  let acc = ref [] in
  let rot axis theta =
    let negated, pulled = Frame.image frame axis in
    let lin = Angle.linearize theta in
    let lin = if negated then Angle.linear_neg lin else lin in
    acc := { axis = pulled; angle = lin } :: !acc
  in
  let rec scan g =
    match g with
    | Gate.G1 (Gate.Rx theta, q) -> rot (Pauli_string.single n q Pauli.X) theta
    | Gate.G1 (Gate.Ry theta, q) -> rot (Pauli_string.single n q Pauli.Y) theta
    | Gate.G1 (Gate.Rz theta, q) -> rot (Pauli_string.single n q Pauli.Z) theta
    | Gate.G1 (Gate.T, q) -> rot (Pauli_string.single n q Pauli.Z) (pi /. 4.0)
    | Gate.G1 (Gate.Tdg, q) ->
      rot (Pauli_string.single n q Pauli.Z) (-.pi /. 4.0)
    | Gate.Rpp { p0; p1; a; b; theta } ->
      rot (Pauli_string.set (Pauli_string.single n a p0) b p1) theta
    | Gate.Su4 { parts; _ } -> List.iter scan parts
    | g -> Frame.apply_gate frame g
  in
  List.iter scan (Circuit.gates c);
  { n; terms = List.rev !acc; frame }

let of_blocks n blocks =
  of_circuit
    (Circuit.concat_list n (List.map (fun b -> b.Order.circuit) blocks))

let of_groups n groups =
  of_terms n (List.concat_map (fun g -> g.Group.terms) groups)

(* The most-lowered representation a context holds wins: a non-empty
   circuit, else synthesized blocks, else IR groups, else the flat
   gadget program.  This is the α every pass boundary is compared
   under, so a pass that rewrites between representations (grouping,
   synthesis, assembly) is checked exactly like one that rewrites
   within a circuit. *)
let of_ctx (ctx : Pass.ctx) =
  if Circuit.length ctx.Pass.circuit > 0 then of_circuit ctx.Pass.circuit
  else if ctx.Pass.blocks <> [] then of_blocks ctx.Pass.n ctx.Pass.blocks
  else if ctx.Pass.groups <> [] then of_groups ctx.Pass.n ctx.Pass.groups
  else of_terms ctx.Pass.n ctx.Pass.gadgets

let frame_equal a b =
  let n = Frame.num_qubits a in
  Frame.num_qubits b = n
  &&
  let ok = ref true in
  for q = 0 to n - 1 do
    List.iter
      (fun p ->
        let s = Pauli_string.single n q p in
        let na, ia = Frame.image a s in
        let nb, ib = Frame.image b s in
        if na <> nb || not (Pauli_string.equal ia ib) then ok := false)
      [ Pauli.X; Pauli.Z ]
  done;
  !ok

let frame_permutation f =
  let n = Frame.num_qubits f in
  let perm = Array.make n (-1) in
  let ok = ref true in
  for q = 0 to n - 1 do
    let nx, ix = Frame.image f (Pauli_string.single n q Pauli.X) in
    let nz, iz = Frame.image f (Pauli_string.single n q Pauli.Z) in
    match (Pauli_string.support_list ix, Pauli_string.support_list iz) with
    | [ qx ], [ qz ]
      when (not nx) && (not nz) && qx = qz
           && Pauli_string.get ix qx = Pauli.X
           && Pauli_string.get iz qz = Pauli.Z ->
      perm.(q) <- qx
    | _ -> ok := false
  done;
  if !ok then Some perm else None
