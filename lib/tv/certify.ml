module Pass = Phoenix.Pass
module Clock = Phoenix_util.Clock

type boundary = {
  pass : string;
  claim : string;
  verdict : Checker.verdict;
  pass_seconds : float;
  check_seconds : float;
}

let schema_version = "phoenix-cert-v1"

let hook acc : Pass.hook =
 fun ~pass ~before ~after ~seconds ->
  let claim = pass.Pass.certify ~before ~after in
  let t0 = Clock.monotonic_s () in
  let verdict = Checker.check_boundary ~claim ~before ~after in
  let check_seconds = Clock.monotonic_s () -. t0 in
  acc :=
    {
      pass = pass.Pass.name;
      claim = Pass.certificate_label claim;
      verdict;
      pass_seconds = seconds;
      check_seconds;
    }
    :: !acc

let boundaries acc = List.rev !acc

type summary = { proved : int; plausible : int; refuted : int }

let summarize bs =
  List.fold_left
    (fun s b ->
      match b.verdict with
      | Checker.Proved -> { s with proved = s.proved + 1 }
      | Checker.Plausible _ -> { s with plausible = s.plausible + 1 }
      | Checker.Refuted _ -> { s with refuted = s.refuted + 1 })
    { proved = 0; plausible = 0; refuted = 0 }
    bs

(* A pipeline is certified end-to-end only when every boundary is
   proved: the per-boundary relations compose, so one plausible link
   breaks the chain exactly like a refuted one (it is just not a
   counterexample). *)
let overall bs =
  let s = summarize bs in
  if s.refuted > 0 then "refuted"
  else if s.plausible > 0 then "plausible"
  else "proved"

let all_proved bs = overall bs = "proved"

let total_check_seconds bs =
  List.fold_left (fun acc b -> acc +. b.check_seconds) 0.0 bs

let boundary_to_string b =
  Printf.sprintf "%-12s %-11s %-9s %7.3f ms%s" b.pass b.claim
    (Checker.verdict_label b.verdict)
    (b.check_seconds *. 1e3)
    (match Checker.verdict_reason b.verdict with
    | None -> ""
    | Some r -> "  " ^ r)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(pipeline = "") ?(workload = "") ?(template = false) bs =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  p "  \"schema\": \"%s\",\n" schema_version;
  if pipeline <> "" then p "  \"pipeline\": \"%s\",\n" (json_escape pipeline);
  if workload <> "" then p "  \"workload\": \"%s\",\n" (json_escape workload);
  p "  \"template\": %b,\n" template;
  let s = summarize bs in
  p "  \"summary\": { \"overall\": \"%s\", \"proved\": %d, \"plausible\": %d, \
     \"refuted\": %d, \"check_seconds\": %.6f },\n"
    (overall bs) s.proved s.plausible s.refuted (total_check_seconds bs);
  p "  \"boundaries\": [";
  List.iteri
    (fun i b ->
      p "%s\n    { \"pass\": \"%s\", \"claim\": \"%s\", \"verdict\": \"%s\",\n"
        (if i = 0 then "" else ",")
        (json_escape b.pass) (json_escape b.claim)
        (Checker.verdict_label b.verdict);
      (match Checker.verdict_reason b.verdict with
      | Some r -> p "      \"reason\": \"%s\",\n" (json_escape r)
      | None -> ());
      p "      \"pass_seconds\": %.6f, \"check_seconds\": %.6f }" b.pass_seconds
        b.check_seconds)
    bs;
  p "\n  ]\n}\n";
  Buffer.contents buf
