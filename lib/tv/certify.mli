(** Certification driver: the [certify] pass-manager hook and the
    [phoenix-cert-v1] artifact.

    Usage mirrors the lint hook: own a [boundary list ref], pass
    [Certify.hook acc] to {!Phoenix.Pass.run} (or any [compile*] /
    registry entry point taking [?hooks]), then read {!boundaries}.
    Each executed pass boundary contributes one record: the pass's
    claimed certificate, the independent checker's verdict, and the
    wall-clock cost of both the pass and the check. *)

type boundary = {
  pass : string;
  claim : string;  (** {!Phoenix.Pass.certificate_label} of the claim *)
  verdict : Checker.verdict;
  pass_seconds : float;
  check_seconds : float;
}

val schema_version : string
(** ["phoenix-cert-v1"]. *)

val hook : boundary list ref -> Phoenix.Pass.hook
(** Accumulates newest-first into the caller's ref (like the lint
    hook); {!boundaries} restores execution order. *)

val boundaries : boundary list ref -> boundary list

type summary = { proved : int; plausible : int; refuted : int }

val summarize : boundary list -> summary

val overall : boundary list -> string
(** ["proved"] iff every boundary proved (the relations compose to an
    end-to-end guarantee), otherwise ["refuted"] if any boundary was
    refuted, else ["plausible"]. *)

val all_proved : boundary list -> bool

val total_check_seconds : boundary list -> float

val boundary_to_string : boundary -> string
(** One aligned human-readable line per boundary. *)

val to_json :
  ?pipeline:string -> ?workload:string -> ?template:bool ->
  boundary list -> string
(** The [phoenix-cert-v1] document: summary (overall verdict + counts +
    checker seconds) and per-boundary records. *)
