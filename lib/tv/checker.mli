(** The independent certificate checker.

    Each {!Phoenix.Pass.certificate} claims a rewrite freedom; the
    checker replays the claim in the abstract domain ({!Domain}) and
    decides whether the pass's output provably implements its input:

    - {!Phoenix.Pass.Unchanged} — the two abstractions must be
      structurally identical (same terms in the same order, equal
      frames).
    - {!Phoenix.Pass.Preserving} — the rotation sequences must have the
      same trace-monoid normal form: equal up to commuting exchanges,
      merges of simultaneously available same-axis rotations, and drops
      of rotations that vanish modulo 2π (global phase).
    - {!Phoenix.Pass.Reordering} — the per-axis angle sums (the phase
      polynomial as a multiset collapsed along the Trotter freedom) must
      agree.
    - {!Phoenix.Pass.Routing} — the output must act on the claimed
      physical register, its residual frame must be the placed image of
      the input's frame modulo a wire permutation (the SWAP residue),
      and — relabeled through the claimed initial layout — its rotations
      must match the input under the sequence (exact mode) or multiset
      relation.

    Every relation is tried twice: first on the raw abstractions
    (exact, robust to reordering), then on {!canonicalize}d ones
    (reconciles gate-vs-rotation spellings of Clifford phases, e.g.
    [S] vs a folded [Rz (π/2)]).  Each prover is individually sound, so
    the disjunction is.  Angle equality is structural over the
    {!Phoenix_pauli.Angle} arena (canonical linear forms, consts modulo
    2π), so a certified template is certified for {e all} parameter
    bindings at once.  Anything the checker cannot decide is
    {!Plausible}, never a silent accept. *)

type verdict = Proved | Plausible of string | Refuted of string

val verdict_label : verdict -> string
(** ["proved"], ["plausible"] or ["refuted"]. *)

val verdict_reason : verdict -> string option

val check_boundary :
  claim:Phoenix.Pass.certificate ->
  before:Phoenix.Pass.ctx ->
  after:Phoenix.Pass.ctx ->
  verdict
(** Audit one executed pass boundary against the pass's claim. *)

val check_program :
  ?exact:bool ->
  ?l2p:int array ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_circuit.Circuit.t ->
  verdict
(** End-to-end check: does [circuit] implement the [n]-qubit gadget
    [program]?  With [l2p] (a routed compile's initial placement) the
    routing relation is used; otherwise the circuit may extend the
    register with dangling wires but must leave an identity frame.
    [exact] selects the sequence relation instead of the multiset one. *)

(** {1 Exposed for tests} *)

val normal_form : Domain.term list -> Domain.term list
(** The canonical sequence behind the [Preserving] relation: zero-drops,
    greedy-lexicographic commuting exchanges, same-axis merges. *)

val canonicalize : Domain.t -> Domain.t
(** Exact refactoring of an abstraction: normal-form the terms, then
    sweep left to right peeling quarter-turn constants
    ({!Domain.split_quarter_turns}) into an accumulated Clifford that is
    finally composed into the residual frame.  Both sides of a relation
    are canonicalized together, so a pass that respelled a Clifford
    phase as a rotation (or fused it into a neighbouring cell) compares
    equal to one that kept the gate. *)

val compare_multiset : Domain.term list -> Domain.term list -> verdict
val compare_sequence : Domain.term list -> Domain.term list -> verdict
