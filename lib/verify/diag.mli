(** Structured compiler diagnostics.

    Every pass-boundary check produces a diagnostic instead of raising:
    which pass emitted it, which IR group (if any) it concerns, how bad
    it is, and a human-readable message.  [Error] means the emitting
    check believes the output is wrong; [Warning] covers recovered
    faults (e.g. a group re-synthesized with the naive fallback) and
    suspicious-but-valid situations; [Info] records checks that ran and
    passed. *)

type severity = Info | Warning | Error

type t = {
  pass : string;  (** pipeline pass that emitted it, e.g. ["simplify"] *)
  group : int option;  (** IR group index, when group-scoped *)
  severity : severity;
  message : string;
}

val make : ?group:int -> pass:string -> severity -> string -> t

val severity_to_string : severity -> string

val to_string : t -> string
(** One-line rendering: [ [severity] pass(group k): message]. *)

val pp : Format.formatter -> t -> unit

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val count : severity -> t list -> int

val summary : t list -> string
(** e.g. ["2 errors, 1 warning, 5 checks"]. *)
