(** Structural circuit validation: cheap invariants every compiled
    circuit must satisfy regardless of semantics — qubit indices in
    range, output gate alphabet matching the target ISA, and (after
    routing) every 2Q gate on a coupling-graph edge. *)

type isa =
  | Cnot_basis  (** only [G1] and [Cnot] gates allowed *)
  | Su4_basis  (** only [G1] and [Su4] gates allowed *)
  | Any_basis  (** no alphabet restriction *)

val validate :
  ?isa:isa ->
  ?topology:Phoenix_topology.Topology.t ->
  Phoenix_circuit.Circuit.t ->
  Diag.t list
(** Every violation becomes an [Error] diagnostic under pass
    ["structural"], naming the gate and its position.  At most 20
    violations are reported, with a summarizing diagnostic when more
    were found.  An empty list means the circuit is structurally
    valid. *)
