module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Clifford2q = Phoenix_pauli.Clifford2q
module Gate = Phoenix_circuit.Gate

(* The frame stores the images of the symplectic generators under the
   pullback map M(σ) = F† σ F: [xs.(q) = M(X_q)], [zs.(q) = M(Z_q)],
   each a sign bit plus an unsigned Pauli string. *)
type t = {
  n : int;
  xs : (bool * Pauli_string.t) array;
  zs : (bool * Pauli_string.t) array;
}

let identity n =
  if n <= 0 then
    invalid_arg (Printf.sprintf "Frame.identity: need n >= 1, got %d" n);
  {
    n;
    xs = Array.init n (fun q -> false, Pauli_string.single n q Pauli.X);
    zs = Array.init n (fun q -> false, Pauli_string.single n q Pauli.Z);
  }

let num_qubits t = t.n

let copy t = { t with xs = Array.copy t.xs; zs = Array.copy t.zs }

(* M(σ) for an arbitrary Pauli string, multiplying generator images.
   Images of commuting Paulis commute, so the accumulated i-power is
   always even; [Y_q = i·X_q·Z_q] contributes one extra factor of i. *)
let image t p =
  let phase = ref 0 in
  let acc = ref (Pauli_string.identity t.n) in
  let mul_in (neg, s) =
    if neg then phase := !phase + 2;
    let k, r = Pauli_string.mul !acc s in
    phase := !phase + k;
    acc := r
  in
  List.iter
    (fun q ->
      match Pauli_string.get p q with
      | Pauli.I -> ()
      | Pauli.X -> mul_in t.xs.(q)
      | Pauli.Z -> mul_in t.zs.(q)
      | Pauli.Y ->
        phase := !phase + 1;
        mul_in t.xs.(q);
        mul_in t.zs.(q))
    (Pauli_string.support_list p);
  match !phase mod 4 with
  | 0 -> false, !acc
  | 2 -> true, !acc
  | _ -> assert false (* Clifford image of a Hermitian Pauli is Hermitian *)

let negate (neg, s) = not neg, s

let two_qubit_string n (qa, pa) (qb, pb) =
  Pauli_string.set (Pauli_string.single n qa pa) qb pb

(* Fold gate g: M' = M ∘ e_g with e_g(σ) = g† σ g, rewriting only the
   generator images e_g moves. *)
let rec apply_gate t g =
  match g with
  | Gate.G1 (Gate.H, q) ->
    let x = t.xs.(q) in
    t.xs.(q) <- t.zs.(q);
    t.zs.(q) <- x
  | Gate.G1 (Gate.S, q) ->
    (* S† X S = -Y *)
    t.xs.(q) <- negate (image t (Pauli_string.single t.n q Pauli.Y))
  | Gate.G1 (Gate.Sdg, q) ->
    (* S X S† = Y *)
    t.xs.(q) <- image t (Pauli_string.single t.n q Pauli.Y)
  | Gate.G1 (Gate.X, q) -> t.zs.(q) <- negate t.zs.(q)
  | Gate.G1 (Gate.Y, q) ->
    t.xs.(q) <- negate t.xs.(q);
    t.zs.(q) <- negate t.zs.(q)
  | Gate.G1 (Gate.Z, q) -> t.xs.(q) <- negate t.xs.(q)
  | Gate.Cnot (c, tq) ->
    let xc = image t (two_qubit_string t.n (c, Pauli.X) (tq, Pauli.X)) in
    let zt = image t (two_qubit_string t.n (c, Pauli.Z) (tq, Pauli.Z)) in
    t.xs.(c) <- xc;
    t.zs.(tq) <- zt
  | Gate.Swap (a, b) ->
    let xa = t.xs.(a) and za = t.zs.(a) in
    t.xs.(a) <- t.xs.(b);
    t.zs.(a) <- t.zs.(b);
    t.xs.(b) <- xa;
    t.zs.(b) <- za
  | Gate.Cliff2 c ->
    List.iter
      (function
        | Clifford2q.H q -> apply_gate t (Gate.G1 (Gate.H, q))
        | Clifford2q.S q -> apply_gate t (Gate.G1 (Gate.S, q))
        | Clifford2q.Sdg q -> apply_gate t (Gate.G1 (Gate.Sdg, q))
        | Clifford2q.Cnot (a, b) -> apply_gate t (Gate.Cnot (a, b)))
      (Clifford2q.decompose c)
  | Gate.Su4 { parts; _ } -> List.iter (apply_gate t) parts
  | Gate.G1 ((Gate.T | Gate.Tdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _), _)
  | Gate.Rpp _ ->
    invalid_arg
      (Printf.sprintf "Frame.apply_gate: non-Clifford gate %s"
         (Gate.to_string g))

(* Fold exp(-i k π/4 σ) — k quarter-turns about the wire-level Pauli
   axis σ — into the frame.  For a generator P anticommuting with σ,
   conjugation gives e^{ikπ/4 σ} P e^{-ikπ/4 σ} = P cos(kπ/2) +
   i σP sin(kπ/2), i.e. iσP / -P / -iσP for k = 1 / 2 / 3; commuting
   generators are fixed.  [k = 1] on a single-qubit Z axis reproduces
   the [S] case of {!apply_gate} exactly (Z·X = iY, so iσP = -Y).
   All new images are computed against the old frame before any
   assignment, since the pullback of σP reads other generators. *)
let apply_pauli_rotation t sigma k =
  let k = (k mod 4 + 4) mod 4 in
  if k <> 0 then begin
    let conj q gen_p stored =
      let anticommutes =
        match Pauli_string.get sigma q with
        | Pauli.I -> false
        | s -> s <> gen_p
      in
      if not anticommutes then stored
      else if k = 2 then negate stored
      else
        let s, prod = Pauli_string.mul sigma (Pauli_string.single t.n q gen_p) in
        let neg, img = image t prod in
        (* i^{±1} σ·gen = i^{±1+s}·prod, then the frame's own sign. *)
        let ipow = ((if k = 1 then 1 else 3) + s + if neg then 2 else 0) mod 4 in
        (match ipow with
        | 0 -> (false, img)
        | 2 -> (true, img)
        | _ -> assert false (* conjugated Hermitian Pauli stays Hermitian *))
    in
    let new_xs = Array.init t.n (fun q -> conj q Pauli.X t.xs.(q)) in
    let new_zs = Array.init t.n (fun q -> conj q Pauli.Z t.zs.(q)) in
    Array.blit new_xs 0 t.xs 0 t.n;
    Array.blit new_zs 0 t.zs 0 t.n
  end

(* Frame of the concatenated scan "a's gates, then b's gates": with
   F = F_b·F_a as unitaries, (F† σ F) = M_a(M_b(σ)), so each generator
   image of [a ⋅ then b] is b's stored image pushed through a. *)
let compose a b =
  if a.n <> b.n then
    invalid_arg
      (Printf.sprintf "Frame.compose: %d vs %d qubits" a.n b.n);
  let through (neg, s) =
    let neg', s' = image a s in
    (neg <> neg', s')
  in
  {
    n = a.n;
    xs = Array.map through b.xs;
    zs = Array.map through b.zs;
  }

let rec is_clifford_gate = function
  | Gate.G1 ((Gate.H | Gate.S | Gate.Sdg | Gate.X | Gate.Y | Gate.Z), _)
  | Gate.Cnot _ | Gate.Swap _ | Gate.Cliff2 _ ->
    true
  | Gate.G1 ((Gate.T | Gate.Tdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _), _)
  | Gate.Rpp _ ->
    false
  | Gate.Su4 { parts; _ } -> List.for_all is_clifford_gate parts

let is_identity t =
  let gen_fixed q (neg, s) p =
    (not neg) && Pauli_string.equal s (Pauli_string.single t.n q p)
  in
  let rec go q =
    q >= t.n
    || (gen_fixed q t.xs.(q) Pauli.X && gen_fixed q t.zs.(q) Pauli.Z && go (q + 1))
  in
  go 0
