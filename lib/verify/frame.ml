module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Clifford2q = Phoenix_pauli.Clifford2q
module Gate = Phoenix_circuit.Gate

(* The frame stores the images of the symplectic generators under the
   pullback map M(σ) = F† σ F: [xs.(q) = M(X_q)], [zs.(q) = M(Z_q)],
   each a sign bit plus an unsigned Pauli string. *)
type t = {
  n : int;
  xs : (bool * Pauli_string.t) array;
  zs : (bool * Pauli_string.t) array;
}

let identity n =
  if n <= 0 then
    invalid_arg (Printf.sprintf "Frame.identity: need n >= 1, got %d" n);
  {
    n;
    xs = Array.init n (fun q -> false, Pauli_string.single n q Pauli.X);
    zs = Array.init n (fun q -> false, Pauli_string.single n q Pauli.Z);
  }

let num_qubits t = t.n

let copy t = { t with xs = Array.copy t.xs; zs = Array.copy t.zs }

(* M(σ) for an arbitrary Pauli string, multiplying generator images.
   Images of commuting Paulis commute, so the accumulated i-power is
   always even; [Y_q = i·X_q·Z_q] contributes one extra factor of i. *)
let image t p =
  let phase = ref 0 in
  let acc = ref (Pauli_string.identity t.n) in
  let mul_in (neg, s) =
    if neg then phase := !phase + 2;
    let k, r = Pauli_string.mul !acc s in
    phase := !phase + k;
    acc := r
  in
  List.iter
    (fun q ->
      match Pauli_string.get p q with
      | Pauli.I -> ()
      | Pauli.X -> mul_in t.xs.(q)
      | Pauli.Z -> mul_in t.zs.(q)
      | Pauli.Y ->
        phase := !phase + 1;
        mul_in t.xs.(q);
        mul_in t.zs.(q))
    (Pauli_string.support_list p);
  match !phase mod 4 with
  | 0 -> false, !acc
  | 2 -> true, !acc
  | _ -> assert false (* Clifford image of a Hermitian Pauli is Hermitian *)

let negate (neg, s) = not neg, s

let two_qubit_string n (qa, pa) (qb, pb) =
  Pauli_string.set (Pauli_string.single n qa pa) qb pb

(* Fold gate g: M' = M ∘ e_g with e_g(σ) = g† σ g, rewriting only the
   generator images e_g moves. *)
let rec apply_gate t g =
  match g with
  | Gate.G1 (Gate.H, q) ->
    let x = t.xs.(q) in
    t.xs.(q) <- t.zs.(q);
    t.zs.(q) <- x
  | Gate.G1 (Gate.S, q) ->
    (* S† X S = -Y *)
    t.xs.(q) <- negate (image t (Pauli_string.single t.n q Pauli.Y))
  | Gate.G1 (Gate.Sdg, q) ->
    (* S X S† = Y *)
    t.xs.(q) <- image t (Pauli_string.single t.n q Pauli.Y)
  | Gate.G1 (Gate.X, q) -> t.zs.(q) <- negate t.zs.(q)
  | Gate.G1 (Gate.Y, q) ->
    t.xs.(q) <- negate t.xs.(q);
    t.zs.(q) <- negate t.zs.(q)
  | Gate.G1 (Gate.Z, q) -> t.xs.(q) <- negate t.xs.(q)
  | Gate.Cnot (c, tq) ->
    let xc = image t (two_qubit_string t.n (c, Pauli.X) (tq, Pauli.X)) in
    let zt = image t (two_qubit_string t.n (c, Pauli.Z) (tq, Pauli.Z)) in
    t.xs.(c) <- xc;
    t.zs.(tq) <- zt
  | Gate.Swap (a, b) ->
    let xa = t.xs.(a) and za = t.zs.(a) in
    t.xs.(a) <- t.xs.(b);
    t.zs.(a) <- t.zs.(b);
    t.xs.(b) <- xa;
    t.zs.(b) <- za
  | Gate.Cliff2 c ->
    List.iter
      (function
        | Clifford2q.H q -> apply_gate t (Gate.G1 (Gate.H, q))
        | Clifford2q.S q -> apply_gate t (Gate.G1 (Gate.S, q))
        | Clifford2q.Sdg q -> apply_gate t (Gate.G1 (Gate.Sdg, q))
        | Clifford2q.Cnot (a, b) -> apply_gate t (Gate.Cnot (a, b)))
      (Clifford2q.decompose c)
  | Gate.Su4 { parts; _ } -> List.iter (apply_gate t) parts
  | Gate.G1 ((Gate.T | Gate.Tdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _), _)
  | Gate.Rpp _ ->
    invalid_arg
      (Printf.sprintf "Frame.apply_gate: non-Clifford gate %s"
         (Gate.to_string g))

let rec is_clifford_gate = function
  | Gate.G1 ((Gate.H | Gate.S | Gate.Sdg | Gate.X | Gate.Y | Gate.Z), _)
  | Gate.Cnot _ | Gate.Swap _ | Gate.Cliff2 _ ->
    true
  | Gate.G1 ((Gate.T | Gate.Tdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _), _)
  | Gate.Rpp _ ->
    false
  | Gate.Su4 { parts; _ } -> List.for_all is_clifford_gate parts

let is_identity t =
  let gen_fixed q (neg, s) p =
    (not neg) && Pauli_string.equal s (Pauli_string.single t.n q p)
  in
  let rec go q =
    q >= t.n
    || (gen_fixed q t.xs.(q) Pauli.X && gen_fixed q t.zs.(q) Pauli.Z && go (q + 1))
  in
  go 0
