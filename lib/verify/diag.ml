type severity = Info | Warning | Error

type t = {
  pass : string;
  group : int option;
  severity : severity;
  message : string;
}

let make ?group ~pass severity message = { pass; group; severity; message }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let to_string d =
  let where =
    match d.group with
    | Some g -> Printf.sprintf "%s(group %d)" d.pass g
    | None -> d.pass
  in
  Printf.sprintf "[%s] %s: %s" (severity_to_string d.severity) where d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let summary ds =
  Printf.sprintf "%d errors, %d warnings, %d checks" (count Error ds)
    (count Warning ds) (count Info ds)
