module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Topology = Phoenix_topology.Topology

type isa = Cnot_basis | Su4_basis | Any_basis

let max_reported = 20

let validate ?(isa = Any_basis) ?topology circuit =
  let n = Circuit.num_qubits circuit in
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  (match topology with
  | Some topo when Topology.num_qubits topo < n ->
    add "circuit has %d qubits but the device only %d" n
      (Topology.num_qubits topo)
  | _ -> ());
  List.iteri
    (fun i g ->
      let qs = Gate.qubits g in
      List.iter
        (fun q ->
          if q < 0 || q >= n then
            add "gate #%d %s touches qubit %d outside [0, %d)" i
              (Gate.to_string g) q n)
        qs;
      (match qs with
      | [ a; b ] when a = b ->
        add "gate #%d %s has coincident operands" i (Gate.to_string g)
      | _ -> ());
      (match isa, g with
      | Cnot_basis, (Gate.G1 _ | Gate.Cnot _) -> ()
      | Cnot_basis, _ ->
        add "gate #%d %s is outside the CNOT ISA alphabet" i (Gate.to_string g)
      | Su4_basis, (Gate.G1 _ | Gate.Su4 _) -> ()
      | Su4_basis, _ ->
        add "gate #%d %s is outside the SU(4) ISA alphabet" i (Gate.to_string g)
      | Any_basis, _ -> ());
      match topology, Gate.pair g with
      | Some topo, Some (a, b)
        when a >= 0 && b >= 0
             && a < Topology.num_qubits topo
             && b < Topology.num_qubits topo
             && not (Topology.are_adjacent topo a b) ->
        add "gate #%d %s acts on non-adjacent qubits (%d,%d)" i
          (Gate.to_string g) a b
      | _ -> ())
    (Circuit.gates circuit);
  let all = List.rev !violations in
  let shown, extra =
    if List.length all <= max_reported then all, 0
    else List.filteri (fun i _ -> i < max_reported) all, List.length all - max_reported
  in
  let diags =
    List.map (fun m -> Diag.make ~pass:"structural" Diag.Error m) shown
  in
  if extra > 0 then
    diags
    @ [
        Diag.make ~pass:"structural" Diag.Error
          (Printf.sprintf "… and %d more structural violations" extra);
      ]
  else diags
