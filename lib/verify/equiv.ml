module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Unitary = Phoenix_linalg.Unitary
module Fidelity = Phoenix_linalg.Fidelity

let pi = 4.0 *. atan 1.0

(* The Pauli axis of a rotation gate, embedded in n qubits, or [None]
   for Clifford gates.  T/T† are π/4 Z-rotations up to global phase. *)
let rotation_axis n = function
  | Gate.G1 (Gate.Rx theta, q) -> Some (Pauli_string.single n q Pauli.X, theta)
  | Gate.G1 (Gate.Ry theta, q) -> Some (Pauli_string.single n q Pauli.Y, theta)
  | Gate.G1 (Gate.Rz theta, q) -> Some (Pauli_string.single n q Pauli.Z, theta)
  | Gate.G1 (Gate.T, q) -> Some (Pauli_string.single n q Pauli.Z, pi /. 4.0)
  | Gate.G1 (Gate.Tdg, q) -> Some (Pauli_string.single n q Pauli.Z, -.pi /. 4.0)
  | Gate.Rpp { p0; p1; a; b; theta } ->
    Some (Pauli_string.set (Pauli_string.single n a p0) b p1, theta)
  | _ -> None

let propagated_rotations circuit =
  let n = Circuit.num_qubits circuit in
  let frame = Frame.identity n in
  let emitted = ref [] in
  let rec scan g =
    match rotation_axis n g with
    | Some (axis, theta) ->
      let neg, s = Frame.image frame axis in
      emitted := (s, (if neg then -.theta else theta)) :: !emitted
    | None -> (
      match g with
      | Gate.Su4 { parts; _ } -> List.iter scan parts
      | _ -> Frame.apply_gate frame g)
  in
  List.iter scan (Circuit.gates circuit);
  List.rev !emitted, frame

let pp_term (p, theta) =
  Printf.sprintf "(%s, %+.6g)" (Pauli_string.to_string p) theta

(* Stable assignment of source gadgets to emitted rotations: gadget [i]
   takes the earliest unused emitted rotation with the same axis and
   angle.  Identical gadgets are interchangeable, so the stable choice
   is also the one minimizing order inversions. *)
let match_rotations ~tol inputs emitted =
  let emitted = Array.of_list emitted in
  let used = Array.make (Array.length emitted) false in
  let rec assign acc i = function
    | [] -> Ok (List.rev acc)
    | (p, theta) :: rest ->
      let rec find j =
        if j >= Array.length emitted then None
        else
          let q, phi = emitted.(j) in
          if (not used.(j))
             && Pauli_string.equal p q
             && Float.abs (theta -. phi) <= tol
          then Some j
          else find (j + 1)
      in
      (match find 0 with
      | Some j ->
        used.(j) <- true;
        assign (j :: acc) (i + 1) rest
      | None ->
        Error
          (Printf.sprintf "gadget #%d %s is not realized by the circuit" i
             (pp_term (p, theta))))
  in
  assign [] 0 inputs

let propagation_check ?(exact = false) ?(tol = 1e-9) n gadgets circuit =
  if Circuit.num_qubits circuit <> n then
    Error
      (Printf.sprintf "circuit acts on %d qubits, program on %d"
         (Circuit.num_qubits circuit) n)
  else begin
    let gadgets =
      List.filter (fun (p, _) -> not (Pauli_string.is_identity p)) gadgets
    in
    let emitted, frame = propagated_rotations circuit in
    if not (Frame.is_identity frame) then
      Error "residual Clifford frame: conjugation layers do not cancel"
    else if List.length emitted <> List.length gadgets then
      Error
        (Printf.sprintf "circuit implements %d rotations, program has %d"
           (List.length emitted) (List.length gadgets))
    else
      match match_rotations ~tol gadgets emitted with
      | Error _ as e -> e
      | Ok perm when not exact -> ignore perm; Ok ()
      | Ok perm ->
        (* Exact mode: the realized order may only exchange commuting
           gadgets. *)
        let inputs = Array.of_list gadgets in
        let places = Array.of_list perm in
        let violation = ref None in
        Array.iteri
          (fun i (p, _) ->
            for j = i + 1 to Array.length inputs - 1 do
              let q, _ = inputs.(j) in
              if
                !violation = None
                && (not (Pauli_string.commutes p q))
                && places.(i) > places.(j)
              then violation := Some (i, j)
            done)
          inputs;
        (match !violation with
        | None -> Ok ()
        | Some (i, j) ->
          Error
            (Printf.sprintf
               "exact mode: non-commuting gadgets #%d %s and #%d %s were \
                reordered"
               i (pp_term inputs.(i)) j (pp_term inputs.(j))))
  end

let unitary_check ?(tol = 1e-7) n gadgets circuit =
  if n > 12 then
    Error (Printf.sprintf "unitary check limited to 12 qubits, got %d" n)
  else if Circuit.num_qubits circuit <> n then
    Error
      (Printf.sprintf "circuit acts on %d qubits, program on %d"
         (Circuit.num_qubits circuit) n)
  else
    let reference = Unitary.program_unitary n gadgets in
    let actual = Unitary.circuit_unitary circuit in
    let infid = Fidelity.infidelity reference actual in
    if infid < tol then Ok ()
    else
      Error
        (Printf.sprintf "unitary mismatch: infidelity %.3e exceeds %.1e" infid
           tol)
