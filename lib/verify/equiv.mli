(** Translation validation: is a compiled circuit equivalent to the
    gadget program it came from?

    Two checkers with complementary ranges:

    - {!unitary_check} builds both [2^n × 2^n] unitaries and compares
      them up to global phase — exact but only viable for small [n].
    - {!propagation_check} is the scalable path: it conjugates every
      rotation gate of the circuit back through the accumulated Clifford
      frame ({!Frame}), recovering the signed Pauli axis and angle each
      rotation implements in the input frame, and then matches that
      sequence against the source gadgets.  The circuit is equivalent
      when the frame closes to the identity, every gadget is realized
      exactly once with the right axis/sign/angle and — in exact mode —
      no two non-commuting gadgets were reordered (commuting exchanges
      preserve the unitary; the rest is Trotter freedom, which exact
      mode forbids). *)

val propagated_rotations :
  Phoenix_circuit.Circuit.t ->
  (Phoenix_pauli.Pauli_string.t * float) list * Frame.t
(** Time-ordered rotations of the circuit pulled back to the input
    frame (signs folded into the angles), plus the residual Clifford
    frame.  The whole scan is polynomial in circuit size and qubit
    count. *)

val propagation_check :
  ?exact:bool ->
  ?tol:float ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_circuit.Circuit.t ->
  (unit, string) result
(** [propagation_check n gadgets circuit]: validate [circuit] against
    the gadget program.  With [~exact:true] (default [false]) the
    realized order must preserve the relative order of every
    non-commuting gadget pair; otherwise multiset equality suffices
    (Trotter-reordering freedom).  [tol] (default [1e-9]) bounds the
    per-rotation angle discrepancy. *)

val unitary_check :
  ?tol:float ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_circuit.Circuit.t ->
  (unit, string) result
(** Dense global-phase-insensitive comparison via
    {!Phoenix_linalg.Fidelity}.  [tol] (default [1e-7]) bounds the
    infidelity.  Returns [Error] without computing anything when
    [n > 12]. *)
