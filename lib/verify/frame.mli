(** Signed Clifford conjugation frames for translation validation.

    Scanning a circuit [g1; …; gm] in time order while folding each
    Clifford gate into the frame maintains the map
    [σ ↦ F† σ F] where [F = U(gk)·…·U(g1)] is the product of the
    Clifford gates seen so far.  A rotation gate [exp(-i θ/2 σ)]
    encountered mid-scan therefore acts, pulled back to the circuit's
    input frame, along the signed Pauli axis [image frame σ] — which is
    exactly what {!Equiv.propagation_check} compares against the source
    gadget program.  All operations are polynomial in the qubit count
    (no [2^n] objects), so the check scales to full benchmark sizes. *)

type t

val identity : int -> t
(** Identity frame over [n] qubits.  Raises [Invalid_argument] when
    [n <= 0]. *)

val num_qubits : t -> int

val copy : t -> t

val is_clifford_gate : Phoenix_circuit.Gate.t -> bool
(** Whether {!apply_gate} accepts the gate.  [Su4] blocks are Clifford
    iff all their parts are. *)

val apply_gate : t -> Phoenix_circuit.Gate.t -> unit
(** Fold one more circuit gate into the frame (in place).  Raises
    [Invalid_argument] on non-Clifford gates ([Rx]/[Ry]/[Rz]/[T]/[Tdg]
    and [Rpp]) — classify with {!is_clifford_gate} first. *)

val image : t -> Phoenix_pauli.Pauli_string.t -> bool * Phoenix_pauli.Pauli_string.t
(** [image f σ] is the signed pullback [F† σ F] as [(negated, string)]. *)

val is_identity : t -> bool
(** Whether the frame is the identity map with all-positive signs —
    i.e. the folded Clifford gates multiply to (a global phase times)
    the identity. *)
