(** Signed Clifford conjugation frames for translation validation.

    Scanning a circuit [g1; …; gm] in time order while folding each
    Clifford gate into the frame maintains the map
    [σ ↦ F† σ F] where [F = U(gk)·…·U(g1)] is the product of the
    Clifford gates seen so far.  A rotation gate [exp(-i θ/2 σ)]
    encountered mid-scan therefore acts, pulled back to the circuit's
    input frame, along the signed Pauli axis [image frame σ] — which is
    exactly what {!Equiv.propagation_check} compares against the source
    gadget program.  All operations are polynomial in the qubit count
    (no [2^n] objects), so the check scales to full benchmark sizes. *)

type t

val identity : int -> t
(** Identity frame over [n] qubits.  Raises [Invalid_argument] when
    [n <= 0]. *)

val num_qubits : t -> int

val copy : t -> t

val is_clifford_gate : Phoenix_circuit.Gate.t -> bool
(** Whether {!apply_gate} accepts the gate.  [Su4] blocks are Clifford
    iff all their parts are. *)

val apply_gate : t -> Phoenix_circuit.Gate.t -> unit
(** Fold one more circuit gate into the frame (in place).  Raises
    [Invalid_argument] on non-Clifford gates ([Rx]/[Ry]/[Rz]/[T]/[Tdg]
    and [Rpp]) — classify with {!is_clifford_gate} first. *)

val apply_pauli_rotation : t -> Phoenix_pauli.Pauli_string.t -> int -> unit
(** [apply_pauli_rotation f σ k] folds the Clifford rotation
    [exp(-i k π/4 σ)] — [k] quarter-turns about the wire-level Pauli
    axis [σ] — into the frame, exactly as if the equivalent Clifford
    gate sequence had been passed to {!apply_gate}.  [k] is taken mod
    4; [k = 0] is a no-op.  On a single-qubit Z axis, [k = 1/2/3]
    match [S]/[Z]/[Sdg] up to global phase.  This lets a scanner
    canonicalize rotations whose constant angle is a multiple of π/2
    into the frame regardless of how a pass spelled them (e.g.
    [S] vs [Rz (π/2)] after phase folding). *)

val compose : t -> t -> t
(** [compose a b] is the frame of the concatenated scan: the circuit
    whose gates are [a]'s followed (later in time) by [b]'s.  Its
    pullback map is [σ ↦ a(b(σ))].  Raises [Invalid_argument] on a
    qubit-count mismatch. *)

val image : t -> Phoenix_pauli.Pauli_string.t -> bool * Phoenix_pauli.Pauli_string.t
(** [image f σ] is the signed pullback [F† σ F] as [(negated, string)]. *)

val is_identity : t -> bool
(** Whether the frame is the identity map with all-positive signs —
    i.e. the folded Clifford gates multiply to (a global phase times)
    the identity. *)
