module Pauli_string = Phoenix_pauli.Pauli_string
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Rebase = Phoenix_circuit.Rebase
module Topology = Phoenix_topology.Topology
module Layout = Phoenix_router.Layout
module Pass = Phoenix.Pass
module Passes = Phoenix.Passes

type result = {
  circuit : Circuit.t;
  num_swaps : int;
  initial_layout : Layout.t;
}

type interaction = { a : int; b : int; gate : Gate.t }

let to_gate n (p, theta) =
  ignore n;
  match Pauli_string.support_list p with
  | [] -> None
  | [ q ] -> Some (`One (Gate.rotation_of_pauli (Pauli_string.get p q) q theta))
  | [ a; b ] ->
    Some
      (`Two
        {
          a;
          b;
          gate =
            Gate.Rpp
              {
                p0 = Pauli_string.get p a;
                p1 = Pauli_string.get p b;
                a;
                b;
                theta;
              };
        })
  | _ :: _ :: _ :: _ -> invalid_arg "Qan2_like: gadget of weight > 2"

(* Interaction-weighted greedy embedding: logical qubits in descending
   interaction degree; each placed on the free physical qubit minimizing
   distance to already-placed partners (highest-degree physical site
   seeds the embedding). *)
let place topo n gadgets =
  let weight = Array.make_matrix n n 0 in
  List.iter
    (fun (p, _) ->
      match Pauli_string.support_list p with
      | [ a; b ] ->
        weight.(a).(b) <- weight.(a).(b) + 1;
        weight.(b).(a) <- weight.(b).(a) + 1
      | _ -> ())
    gadgets;
  let degree l = Array.fold_left ( + ) 0 weight.(l) in
  let logical_order =
    List.sort
      (fun a b -> compare (degree b) (degree a))
      (List.init n (fun i -> i))
  in
  let n_phys = Topology.num_qubits topo in
  let used = Array.make n_phys false in
  let l2p = Array.make n (-1) in
  let physical_degree p = List.length (Topology.neighbors topo p) in
  let best_site l =
    let placed_partners =
      List.filter_map
        (fun m -> if weight.(l).(m) > 0 && l2p.(m) >= 0 then Some m else None)
        (List.init n (fun i -> i))
    in
    let score p =
      if used.(p) then Float.infinity
      else if placed_partners = [] then
        (* seed: prefer central, well-connected sites *)
        -.float_of_int (physical_degree p)
      else
        float_of_int
          (List.fold_left
             (fun acc m ->
               acc + (weight.(l).(m) * Topology.distance topo p l2p.(m)))
             0 placed_partners)
    in
    let best = ref (-1) and best_score = ref Float.infinity in
    for p = 0 to n_phys - 1 do
      let s = score p in
      if s < !best_score then begin
        best := p;
        best_score := s
      end
    done;
    !best
  in
  List.iter
    (fun l ->
      let p = best_site l in
      l2p.(l) <- p;
      used.(p) <- true)
    logical_order;
  Layout.of_l2p ~n_physical:n_phys l2p

let topology_of_ctx ctx =
  match ctx.Pass.options.Pass.target with
  | Pass.Hardware topo -> topo
  | Pass.Logical -> invalid_arg "Qan2_like: needs a hardware target"

let place_pass =
  Pass.make ~certify:Phoenix.Passes.certify_unchanged ~name:"place"
    ~description:"interaction-weighted greedy initial embedding"
    (fun ctx ->
      let topo = topology_of_ctx ctx in
      let n = ctx.Pass.n in
      if n > Topology.num_qubits topo then
        invalid_arg "Qan2_like.compile: device too small";
      { ctx with Pass.layout = Some (place topo n ctx.Pass.gadgets) })

(* The 2QAN scheduling loop: alternate between emitting every
   currently-executable interaction and inserting the SWAP that most
   reduces the remaining interaction distance.  Interactions commute, so
   the emission order is free. *)
let route_pass =
  Pass.make ~certify:Phoenix.Passes.certify_routing ~name:"route"
    ~description:
      "greedy commuting-interaction scheduling: emit executable \
       interactions, insert distance-reducing SWAPs"
    (fun ctx ->
      let topo = topology_of_ctx ctx in
      let n = ctx.Pass.n in
      let n_phys = Topology.num_qubits topo in
      let initial_layout =
        match ctx.Pass.layout with Some l -> l | None -> place topo n ctx.Pass.gadgets
      in
      let ones, twos =
        List.fold_left
          (fun (ones, twos) gadget ->
            match to_gate n gadget with
            | None -> ones, twos
            | Some (`One g) -> g :: ones, twos
            | Some (`Two i) -> ones, i :: twos)
          ([], []) ctx.Pass.gadgets
      in
      let layout = ref initial_layout in
      let emitted = ref (List.rev ones) (* 1Q gates are free: place them first *)
      and swaps = ref 0 in
      let emitted_phys g =
        let f q = Layout.physical_of !layout q in
        match g with
        | Gate.Rpp r -> Gate.Rpp { r with a = f r.a; b = f r.b }
        | Gate.G1 (k, q) -> Gate.G1 (k, f q)
        | _ -> assert false
      in
      (* 1Q rotations are emitted at their logical qubit's initial site. *)
      emitted := List.map emitted_phys !emitted |> List.rev;
      let pending = ref twos in
      let dist i =
        Topology.distance topo
          (Layout.physical_of !layout i.a)
          (Layout.physical_of !layout i.b)
      in
      let emit_executable () =
        let rec go progressed =
          let exec, rest = List.partition (fun i -> dist i = 1) !pending in
          if exec = [] then progressed
          else begin
            List.iter (fun i -> emitted := emitted_phys i.gate :: !emitted) exec;
            pending := rest;
            go true
          end
        in
        go false
      in
      let total_distance () =
        List.fold_left (fun acc i -> acc + dist i) 0 !pending
      in
      while !pending <> [] do
        ignore (emit_executable ());
        if !pending <> [] then begin
          (* candidate swaps: edges touching any pending interaction qubit *)
          let frontier =
            List.concat_map
              (fun i ->
                [ Layout.physical_of !layout i.a; Layout.physical_of !layout i.b ])
              !pending
            |> List.sort_uniq compare
          in
          let candidates =
            List.concat_map
              (fun p ->
                List.map (fun q -> min p q, max p q) (Topology.neighbors topo p))
              frontier
            |> List.sort_uniq compare
          in
          let baseline = total_distance () in
          let score (p, q) =
            let saved = !layout in
            layout := Layout.swap_physical !layout p q;
            let d = total_distance () in
            let newly_exec =
              List.fold_left (fun acc i -> if dist i = 1 then acc + 1 else acc) 0 !pending
            in
            layout := saved;
            (float_of_int d, -.float_of_int newly_exec)
          in
          let best =
            List.fold_left
              (fun best cand ->
                let s = score cand in
                match best with
                | Some (_, bs) when bs <= s -> best
                | Some _ | None -> Some (cand, s))
              None candidates
          in
          let (p, q), (best_d, _) =
            match best with Some (c, s) -> c, s | None -> assert false
          in
          (* Guaranteed progress: if no candidate reduces total distance,
             step the first pending interaction along a shortest path. *)
          let p, q =
            if best_d < float_of_int baseline then p, q
            else begin
              match !pending with
              | i :: _ ->
                let pa = Layout.physical_of !layout i.a
                and pb = Layout.physical_of !layout i.b in
                let closer =
                  List.find_opt
                    (fun nb ->
                      Topology.distance topo nb pb < Topology.distance topo pa pb)
                    (Topology.neighbors topo pa)
                in
                (match closer with
                | Some nb -> min pa nb, max pa nb
                | None -> p, q)
              | [] -> assert false
            end
          in
          layout := Layout.swap_physical !layout p q;
          emitted := Gate.Swap (p, q) :: !emitted;
          incr swaps
        end
      done;
      {
        ctx with
        Pass.circuit = Circuit.create n_phys (List.rev !emitted);
        Pass.num_swaps = !swaps;
        Pass.layout = Some initial_layout;
      })

let lower_pass =
  Pass.make ~certify:Phoenix.Passes.certify_preserving ~name:"lower"
    ~description:"expand SWAPs and rebase to the CNOT basis"
    (fun ctx ->
      { ctx with Pass.circuit = Rebase.to_cnot_basis ctx.Pass.circuit })

let passes = [ place_pass; route_pass; lower_pass; Passes.peephole ]

let compile ?(peephole = true) topo n gadgets =
  let options =
    { Pass.default_options with Pass.peephole; Pass.target = Pass.Hardware topo }
  in
  let ctx, _ = Pass.run passes (Pass.init ~gadgets options n) in
  {
    circuit = ctx.Pass.circuit;
    num_swaps = ctx.Pass.num_swaps;
    initial_layout =
      (match ctx.Pass.layout with Some l -> l | None -> assert false);
  }
