(** Simplified reimplementation of TKET's PauliSimp +
    FullPeepholeOptimise pipeline (Cowtan et al., "Phase Gadget Synthesis
    for Shallow Circuits").

    The gadget program is partitioned into pairwise-commuting sets; each
    set is simultaneously diagonalized by a Clifford conjugation and its
    diagonal part synthesized as phase ladders (sorted to expose ladder
    sharing); the peephole pass then plays the role of
    FullPeepholeOptimise. *)

val passes : Phoenix.Pass.t list
(** The pipeline: partition → synth → assemble → peephole. *)

val compile :
  ?peephole:bool ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_circuit.Circuit.t
(** Logical-level compilation to the {H, S, S†, Rz, CNOT} basis. *)
