(** Textbook per-gadget synthesis (Fig. 1(a) of the paper): each Pauli
    exponentiation becomes a 1Q basis conjugation around a CNOT ladder
    with an [Rz] at the bottom, in the original program order.  This is
    the "original circuit" against which optimization rates are
    reported (Table I / Table II). *)

val passes : Phoenix.Pass.t list
(** The single-pass pipeline: synth. *)

val compile :
  int -> (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_circuit.Circuit.t
