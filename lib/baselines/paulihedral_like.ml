module Bitvec = Phoenix_util.Bitvec
module Pauli_string = Phoenix_pauli.Pauli_string
module Circuit = Phoenix_circuit.Circuit
module Peephole = Phoenix_circuit.Peephole
module Pass = Phoenix.Pass
module Passes = Phoenix.Passes
module Group = Phoenix.Group
module Order = Phoenix.Order
module Synthesis = Phoenix.Synthesis

let overlap a b =
  Bitvec.and_popcount a.Group.support b.Group.support

let order_blocks blocks =
  match blocks with
  | [] | [ _ ] -> blocks
  | first :: rest ->
    let rec chain acc last pool =
      match pool with
      | [] -> List.rev acc
      | _ ->
        let best =
          List.fold_left
            (fun best cand ->
              match best with
              | Some b when overlap last b >= overlap last cand -> best
              | Some _ | None -> Some cand)
            None pool
        in
        let chosen = match best with Some b -> b | None -> assert false in
        chain (chosen :: acc) chosen (List.filter (fun b -> b != chosen) pool)
    in
    chain [ first ] first rest

let sorted_terms (g : Group.t) =
  List.sort (fun (p, _) (q, _) -> Pauli_string.compare p q) g.Group.terms

(* Block-local synthesis: Paulihedral's CNOT-tree co-optimization shares
   tree segments between the gadgets of one block; the equivalent saving
   is obtained here by diagonalizing the block when its terms commute
   (always true for UCCSD excitation blocks) and falling back to shared
   Z-first ladders otherwise. *)
let block_circuit n (g : Group.t) =
  let ladder_version =
    Synthesis.naive_gadget_circuit ~chain:`Z_first n (sorted_terms g)
  in
  if not (Group.all_commuting g) then ladder_version
  else begin
    let d = Phoenix_circuit.Diagonalize.run n g.Group.terms in
    let sorted =
      List.sort
        (fun (p, _) (q, _) -> Pauli_string.compare p q)
        d.Phoenix_circuit.Diagonalize.diagonal
    in
    let ladders = Circuit.gates (Synthesis.naive_gadget_circuit n sorted) in
    let undo =
      List.rev_map Phoenix_circuit.Gate.dagger
        d.Phoenix_circuit.Diagonalize.clifford
    in
    let diag_version =
      Circuit.create n (d.Phoenix_circuit.Diagonalize.clifford @ ladders @ undo)
    in
    let cost c = Circuit.count_cnot (Peephole.optimize c) in
    if cost diag_version <= cost ladder_version then diag_version
    else ladder_version
  end

let order_pass =
  Pass.make
    ~certify:(fun ~before:_ ~after:_ -> Pass.Reordering)
    ~name:"order"
    ~description:"chain IR blocks greedily by support overlap"
    (fun ctx -> { ctx with Pass.groups = order_blocks ctx.Pass.groups })

let synth_pass =
  Pass.make
    ~certify:(fun ~before:_ ~after:_ -> Pass.Reordering)
    ~name:"synth"
    ~description:
      "block-local synthesis: diagonalized ladders or shared Z-first \
       ladders, whichever peepholes to fewer CNOTs"
    (fun ctx ->
      {
        ctx with
        Pass.blocks =
          List.map
            (fun (g : Group.t) ->
              { Order.group = g; Order.circuit = block_circuit ctx.Pass.n g })
            ctx.Pass.groups;
      })

let passes ~with_grouping =
  (if with_grouping then [ Passes.group ] else [])
  @ [ order_pass; synth_pass; Passes.assemble; Passes.peephole ]

let run ~with_grouping ~peephole ctx =
  let ctx, _ =
    Pass.run (passes ~with_grouping)
      { ctx with Pass.options = { ctx.Pass.options with Pass.peephole } }
  in
  ctx.Pass.circuit

let compile ?(peephole = true) n gadgets =
  run ~with_grouping:true ~peephole (Pass.init ~gadgets Pass.default_options n)

let compile_blocks ?(peephole = true) n blocks =
  run ~with_grouping:true ~peephole
    (Pass.init
       ~gadgets:(List.concat blocks)
       ~term_blocks:blocks Pass.default_options n)
