module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Pass = Phoenix.Pass
module Passes = Phoenix.Passes
module Group = Phoenix.Group
module Order = Phoenix.Order
module Synthesis = Phoenix.Synthesis

(* A shared qubit with the same Pauli basis lets an entire ladder leg
   cancel; a shared qubit with a different basis still shares the CNOT
   but pays basis-change 1Q gates. *)
let boundary_score p q =
  let n = Pauli_string.num_qubits p in
  let score = ref 0.0 in
  for i = 0 to n - 1 do
    match Pauli_string.get p i, Pauli_string.get q i with
    | Pauli.I, _ | _, Pauli.I -> ()
    | a, b when Pauli.equal a b -> score := !score +. 1.0
    | _, _ -> score := !score +. 0.3
  done;
  !score

let sorted_terms (g : Group.t) =
  List.sort (fun (p, _) (q, _) -> Pauli_string.compare p q) g.Group.terms

let last_term g =
  match List.rev (sorted_terms g) with
  | (p, _) :: _ -> p
  | [] -> assert false

let first_term g =
  match sorted_terms g with
  | (p, _) :: _ -> p
  | [] -> assert false

let order_blocks blocks =
  match blocks with
  | [] | [ _ ] -> blocks
  | first :: rest ->
    let rec chain acc last pool =
      match pool with
      | [] -> List.rev acc
      | _ ->
        let score cand = boundary_score (last_term last) (first_term cand) in
        let best =
          List.fold_left
            (fun best cand ->
              match best with
              | Some b when score b >= score cand -> best
              | Some _ | None -> Some cand)
            None pool
        in
        let chosen = match best with Some b -> b | None -> assert false in
        chain (chosen :: acc) chosen (List.filter (fun b -> b != chosen) pool)
    in
    chain [ first ] first rest

let order_pass =
  Pass.make
    ~certify:(fun ~before:_ ~after:_ -> Pass.Reordering)
    ~name:"order"
    ~description:
      "chain IR blocks by boundary cancellation compatibility (matching \
       Pauli bases on shared qubits)"
    (fun ctx -> { ctx with Pass.groups = order_blocks ctx.Pass.groups })

let synth_pass =
  Pass.make
    ~certify:(fun ~before:_ ~after:_ -> Pass.Reordering)
    ~name:"synth"
    ~description:
      "lower each block as sorted Z-first CNOT ladders (boundary legs \
       cancel across blocks)"
    (fun ctx ->
      {
        ctx with
        Pass.blocks =
          List.map
            (fun (g : Group.t) ->
              {
                Order.group = g;
                Order.circuit =
                  Synthesis.naive_gadget_circuit ~chain:`Z_first ctx.Pass.n
                    (sorted_terms g);
              })
            ctx.Pass.groups;
      })

let passes ~with_grouping =
  (if with_grouping then [ Passes.group ] else [])
  @ [ order_pass; synth_pass; Passes.assemble; Passes.peephole ]

let run ~with_grouping ~peephole ctx =
  let ctx, _ =
    Pass.run (passes ~with_grouping)
      { ctx with Pass.options = { ctx.Pass.options with Pass.peephole } }
  in
  ctx.Pass.circuit

let compile ?(peephole = true) n gadgets =
  run ~with_grouping:true ~peephole (Pass.init ~gadgets Pass.default_options n)

let compile_blocks ?(peephole = true) n blocks =
  run ~with_grouping:true ~peephole
    (Pass.init
       ~gadgets:(List.concat blocks)
       ~term_blocks:blocks Pass.default_options n)
