(** Simplified reimplementation of 2QAN (Lao & Browne, ISCA 2022): a
    router specialized to 2-local Hamiltonian-simulation programs.

    All gadgets must have weight ≤ 2 and are treated as freely
    reorderable (each Trotter step of a 2-local Hamiltonian — e.g. a QAOA
    cost layer — is a product of commuting exponentials).  The compiler
    places qubits by interaction-weighted greedy embedding, then
    alternates between emitting every currently-executable interaction
    and inserting the SWAP that most reduces the remaining interaction
    distance; SWAPs landing next to an interaction on the same pair are
    merged by the peephole into the 3-CNOT fused block that is 2QAN's
    signature saving. *)

type result = {
  circuit : Phoenix_circuit.Circuit.t;  (** physical, CNOT basis *)
  num_swaps : int;
  initial_layout : Phoenix_router.Layout.t;
}

val passes : Phoenix.Pass.t list
(** The pipeline: place → route → lower → peephole.  Requires a
    [Hardware] target in the context options. *)

val compile :
  ?peephole:bool ->
  Phoenix_topology.Topology.t ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  result
(** Raises [Invalid_argument] on gadgets of weight > 2. *)

val place :
  Phoenix_topology.Topology.t ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_router.Layout.t
(** The greedy interaction-aware initial placement, exposed for tests. *)
