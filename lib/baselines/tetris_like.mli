(** Simplified reimplementation of Tetris (Jin et al., ISCA 2024).

    Tetris keeps Paulihedral's block structure but orders blocks to
    maximize immediate gate cancellation at block boundaries — matching
    Pauli bases on shared qubits — because its main lever is CNOT/SWAP
    co-optimization during routing.  This reimplementation scores
    boundary compatibility between the last gadget of the previous block
    and the first gadget of the candidate, and hands routing to the
    shared SABRE router. *)

val passes : with_grouping:bool -> Phoenix.Pass.t list
(** The pipeline: [group →] order → synth → assemble → peephole.  Pass
    [~with_grouping:false] when the context already carries IR groups. *)

val compile :
  ?peephole:bool ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_circuit.Circuit.t

val boundary_score :
  Phoenix_pauli.Pauli_string.t -> Phoenix_pauli.Pauli_string.t -> float
(** Cancellation-compatibility estimate between two adjacent gadgets. *)

val compile_blocks :
  ?peephole:bool ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list list ->
  Phoenix_circuit.Circuit.t
(** Compile with algorithm-level blocks (one per Trotter term, as the
    real Tetris frontend consumes) instead of support-derived groups. *)
