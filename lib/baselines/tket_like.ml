module Pauli_string = Phoenix_pauli.Pauli_string
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Pass = Phoenix.Pass
module Passes = Phoenix.Passes
module Group = Phoenix.Group
module Order = Phoenix.Order

(* Phase ladder for one Z-only string. *)
let ladder_gates (p, theta) =
  match Pauli_string.support_list p with
  | [] -> []
  | support ->
    let rec chain = function
      | a :: (b :: _ as rest) -> Gate.Cnot (a, b) :: chain rest
      | [ _ ] | [] -> []
    in
    let target = List.nth support (List.length support - 1) in
    let up = chain support in
    up @ [ Gate.G1 (Gate.Rz theta, target) ] @ List.rev up

let synth_commuting_set n set =
  let d = Phoenix_circuit.Diagonalize.run n set in
  (* Sorting the diagonal rotations lexicographically maximizes shared
     ladder prefixes, which the peephole collapses. *)
  let sorted =
    List.sort
      (fun (p, _) (q, _) -> Pauli_string.compare p q)
      d.Phoenix_circuit.Diagonalize.diagonal
  in
  let undo = List.rev_map Gate.dagger d.Phoenix_circuit.Diagonalize.clifford in
  d.Phoenix_circuit.Diagonalize.clifford @ List.concat_map ladder_gates sorted @ undo

let partition_pass =
  Pass.make
    ~certify:(fun ~before:_ ~after:_ -> Pass.Reordering)
    ~name:"partition"
    ~description:
      "partition the gadget program into pairwise-commuting sets (greedy, \
       program order)"
    (fun ctx ->
      let sets =
        Phoenix_circuit.Diagonalize.partition_commuting ctx.Pass.gadgets
      in
      (* of_terms keeps each set verbatim — the Clifford chosen by the
         diagonalizer depends on every string in the set. *)
      { ctx with Pass.groups = List.map (Group.of_terms ctx.Pass.n) sets })

let synth_pass =
  Pass.make ~certify:Phoenix.Passes.certify_preserving ~name:"synth"
    ~description:
      "simultaneously diagonalize each commuting set and emit its sorted \
       phase ladders under the Clifford conjugation"
    (fun ctx ->
      let n = ctx.Pass.n in
      {
        ctx with
        Pass.blocks =
          List.map
            (fun (g : Group.t) ->
              {
                Order.group = g;
                Order.circuit =
                  Circuit.create n (synth_commuting_set n g.Group.terms);
              })
            ctx.Pass.groups;
      })

let passes = [ partition_pass; synth_pass; Passes.assemble; Passes.peephole ]

let compile ?(peephole = true) n gadgets =
  let options = { Pass.default_options with Pass.peephole } in
  let ctx, _ = Pass.run passes (Pass.init ~gadgets options n) in
  ctx.Pass.circuit
