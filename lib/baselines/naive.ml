module Pass = Phoenix.Pass

let synth_pass =
  Pass.make ~certify:Phoenix.Passes.certify_preserving ~name:"synth"
    ~description:
      "per-gadget CNOT-ladder synthesis in program order (no grouping, no \
       cleanup)"
    (fun ctx ->
      {
        ctx with
        Pass.circuit =
          Phoenix.Synthesis.naive_gadget_circuit ctx.Pass.n ctx.Pass.gadgets;
      })

let passes = [ synth_pass ]

let compile n gadgets =
  let ctx, _ = Pass.run passes (Pass.init ~gadgets Pass.default_options n) in
  ctx.Pass.circuit
