(** Simplified reimplementation of Paulihedral (Li et al., ASPLOS 2022):
    block-wise synthesis over the same support-keyed IR blocks PHOENIX
    uses.

    Blocks are chained greedily by support overlap; terms within a block
    are ordered lexicographically and lowered through CNOT ladders with a
    consistent root so that neighbouring gadgets expose tree-sharing
    cancellations, which the peephole pass (standing in for the Qiskit O2
    that Paulihedral pairs with) then harvests. *)

val passes : with_grouping:bool -> Phoenix.Pass.t list
(** The pipeline: [group →] order → synth → assemble → peephole.  Pass
    [~with_grouping:false] when the context already carries IR groups. *)

val compile :
  ?peephole:bool ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Phoenix_circuit.Circuit.t

val order_blocks : Phoenix.Group.t list -> Phoenix.Group.t list
(** Greedy max-overlap chaining, exposed for testing. *)

val compile_blocks :
  ?peephole:bool ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list list ->
  Phoenix_circuit.Circuit.t
(** Compile with algorithm-level blocks (one per Trotter term, as the
    real Paulihedral frontend consumes) instead of support-derived groups. *)
