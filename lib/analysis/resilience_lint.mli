(** Resilience-conformance lint.

    Two audits around {!Phoenix.Resilience}:

    - {!registry_audit} checks the degradation-ladder registry itself —
      every ladder has a fallback rung, an owning pass, and unambiguous
      subject/rung names.  Registered as the ["resilience-conformance"]
      analysis (it ignores the circuit target).
    - {!conformance} checks one compile report: every recorded
      degradation must be an adjacent step of a registered ladder, and a
      degraded run must carry a non-[Info] diagnostic — silent
      degradation is exactly what this lint exists to catch. *)

val analysis : string
(** Registry name: ["resilience-conformance"]. *)

val registry_audit : unit -> Finding.t list
(** [Error] findings for malformed ladders; a single positive [Info]
    certification when the registry is clean. *)

val conformance : Phoenix.Compiler.report -> Finding.t list
(** [Error] findings for non-conforming or silent degradations; a
    positive [Info] summary when the run degraded conformantly; empty
    for an undisturbed run. *)
