(** Parallel-pool determinism auditor.

    The compiler fans group synthesis out over a domain pool whose
    contract is strict scheduling independence.  This auditor tests the
    contract on a real compilation: it compiles once serially, then
    replays the same input under several domain counts and seeded
    claim-order permutations (injected via [PHOENIX_PARALLEL_SEED], see
    {!Phoenix_util.Parallel.map}) and diffs every report field that is
    not a wall-clock time — output circuit, 2Q/1Q counts, depths, SWAP
    and group counts, and the rendered diagnostics stream —
    bit-for-bit.

    Mismatches are [Error] findings naming the offending
    (domains, seed) replay; a fully deterministic run yields a single
    [Info] finding. *)

val audit_groups :
  ?options:Phoenix.Compiler.options ->
  ?domain_counts:int list ->
  ?seeds:int list ->
  int ->
  Phoenix.Group.t list ->
  Finding.t list
(** Defaults: [domain_counts = [2; 4]] (values ≤ 1 are dropped — they
    are the reference), [seeds = [1; 42]]. *)

val audit_gadgets :
  ?options:Phoenix.Compiler.options ->
  ?domain_counts:int list ->
  ?seeds:int list ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  Finding.t list
(** Group the gadget program (honouring [options.exact]) and audit. *)
