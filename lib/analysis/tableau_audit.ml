module Bsf = Phoenix_pauli.Bsf
module Pauli_string = Phoenix_pauli.Pauli_string

let cache_analysis = "bsf-cache"
let replay_analysis = "bsf-replay"

let cache_audit t =
  List.map
    (fun m -> Finding.error ~analysis:cache_analysis "%s" m)
    (Bsf.audit t)

(* Word-level comparison through borrowing row views: the common (clean)
   path walks both tableaux without materializing a single Pauli string;
   rows are only rendered to text on an actual mismatch. *)
let rows_differ a i b =
  let wpr = Bsf.row_words a in
  let va = Bsf.view a i and vb = Bsf.view b i in
  let rec go k =
    k < wpr
    && (Bsf.view_x_word va k <> Bsf.view_x_word vb k
        || Bsf.view_z_word va k <> Bsf.view_z_word vb k
        || go (k + 1))
  in
  go 0

let replay_audit ~n ~terms ~gates t =
  let fresh = Bsf.of_terms n terms in
  List.iter (Bsf.apply_clifford2q fresh) gates;
  if Bsf.num_rows t <> Bsf.num_rows fresh then
    [
      Finding.error ~analysis:replay_analysis
        "tableau has %d rows, replay from the program has %d" (Bsf.num_rows t)
        (Bsf.num_rows fresh);
    ]
  else begin
    let fs = ref [] in
    Bsf.iter_views t (fun v ->
        let i = Bsf.view_index v in
        if rows_differ t i fresh then
          fs :=
            Finding.error ~location:(Finding.Row i) ~analysis:replay_analysis
              "Pauli %s disagrees with fresh conjugation %s"
              (Pauli_string.to_string (Bsf.row_pauli t i))
              (Pauli_string.to_string (Bsf.row_pauli fresh i))
            :: !fs;
        let fv = Bsf.view fresh i in
        if Bsf.view_neg v <> Bsf.view_neg fv then
          fs :=
            Finding.error ~location:(Finding.Row i) ~analysis:replay_analysis
              "sign bit %b disagrees with fresh conjugation (%b)"
              (Bsf.view_neg v) (Bsf.view_neg fv)
            :: !fs;
        (* Bit compare: symbolic slot angles are NaNs, and NaN <> NaN
           would report a spurious mismatch on every slotted row. *)
        if
          Int64.bits_of_float (Bsf.view_angle v)
          <> Int64.bits_of_float (Bsf.view_angle fv)
        then
          fs :=
            Finding.error ~location:(Finding.Row i) ~analysis:replay_analysis
              "angle %g disagrees with the program's %g" (Bsf.view_angle v)
              (Bsf.view_angle fv)
            :: !fs);
    List.rev !fs
  end
