module Bsf = Phoenix_pauli.Bsf
module Pauli_string = Phoenix_pauli.Pauli_string

let cache_analysis = "bsf-cache"
let replay_analysis = "bsf-replay"

let cache_audit t =
  List.map
    (fun m -> Finding.error ~analysis:cache_analysis "%s" m)
    (Bsf.audit t)

let replay_audit ~n ~terms ~gates t =
  let fresh = Bsf.of_terms n terms in
  List.iter (Bsf.apply_clifford2q fresh) gates;
  let audited = Array.of_list (Bsf.rows t) in
  let expected = Array.of_list (Bsf.rows fresh) in
  if Array.length audited <> Array.length expected then
    [
      Finding.error ~analysis:replay_analysis
        "tableau has %d rows, replay from the program has %d"
        (Array.length audited) (Array.length expected);
    ]
  else begin
    let fs = ref [] in
    Array.iteri
      (fun i (r : Bsf.row) ->
        let e = expected.(i) in
        if not (Pauli_string.equal r.Bsf.pauli e.Bsf.pauli) then
          fs :=
            Finding.error ~location:(Finding.Row i) ~analysis:replay_analysis
              "Pauli %s disagrees with fresh conjugation %s"
              (Pauli_string.to_string r.Bsf.pauli)
              (Pauli_string.to_string e.Bsf.pauli)
            :: !fs;
        if r.Bsf.neg <> e.Bsf.neg then
          fs :=
            Finding.error ~location:(Finding.Row i) ~analysis:replay_analysis
              "sign bit %b disagrees with fresh conjugation (%b)" r.Bsf.neg
              e.Bsf.neg
            :: !fs;
        (* Bit compare: symbolic slot angles are NaNs, and NaN <> NaN
           would report a spurious mismatch on every slotted row. *)
        if
          Int64.bits_of_float r.Bsf.angle <> Int64.bits_of_float e.Bsf.angle
        then
          fs :=
            Finding.error ~location:(Finding.Row i) ~analysis:replay_analysis
              "angle %g disagrees with the program's %g" r.Bsf.angle
              e.Bsf.angle
            :: !fs)
      audited;
    List.rev !fs
  end
