type analysis = {
  name : string;
  description : string;
  run : Circuit_lint.target -> Finding.t list;
}

let all =
  [
    {
      name = "liveness";
      description =
        "dangling-wire detection: logical qubits no gate ever touches";
      run = Circuit_lint.liveness;
    };
    {
      name = "isa-conformance";
      description =
        "gate alphabet, qubit ranges, operand sanity for the target ISA";
      run = Circuit_lint.isa_conformance;
    };
    {
      name = "coupling-conformance";
      description = "every 2Q gate of a routed circuit lies on a device edge";
      run = Circuit_lint.coupling_conformance;
    };
    {
      name = "metrics-certification";
      description = "declared 2Q/1Q counts and depth match recomputation";
      run = Circuit_lint.metrics_certification;
    };
    {
      name = "layer-consistency";
      description = "the 2Q layering partitions, packs and orders correctly";
      run = Circuit_lint.layer_consistency;
    };
    {
      name = "angle-sanity";
      description =
        "no NaN/inf angles; zero or non-canonical rotations are flagged";
      run = Circuit_lint.angle_sanity;
    };
    {
      name = "resilience-conformance";
      description =
        "degradation-ladder registry audit: fallback rungs present, \
         subjects and rungs unambiguous";
      run = (fun _ -> Resilience_lint.registry_audit ());
    };
  ]

let names () = List.map (fun a -> a.name) all

let find name = List.find_opt (fun a -> a.name = name) all

let selected only =
  match only with
  | None -> Ok all
  | Some names ->
    let missing = List.filter (fun n -> find n = None) names in
    if missing <> [] then Error missing
    else Ok (List.filter (fun a -> List.mem a.name names) all)

let run ?only target =
  match selected only with
  | Error missing ->
    invalid_arg
      ("Registry.run: unknown analyses: " ^ String.concat ", " missing)
  | Ok analyses -> List.concat_map (fun a -> a.run target) analyses
