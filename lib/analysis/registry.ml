type analysis = {
  name : string;
  description : string;
  run : Circuit_lint.target -> Finding.t list;
}

let all =
  [
    {
      name = "liveness";
      description =
        "dangling-wire detection: logical qubits no gate ever touches";
      run = Circuit_lint.liveness;
    };
    {
      name = "isa-conformance";
      description =
        "gate alphabet, qubit ranges, operand sanity for the target ISA";
      run = Circuit_lint.isa_conformance;
    };
    {
      name = "coupling-conformance";
      description = "every 2Q gate of a routed circuit lies on a device edge";
      run = Circuit_lint.coupling_conformance;
    };
    {
      name = "metrics-certification";
      description = "declared 2Q/1Q counts and depth match recomputation";
      run = Circuit_lint.metrics_certification;
    };
    {
      name = "layer-consistency";
      description = "the 2Q layering partitions, packs and orders correctly";
      run = Circuit_lint.layer_consistency;
    };
    {
      name = "angle-sanity";
      description =
        "no NaN/inf angles; zero or non-canonical rotations are flagged";
      run = Circuit_lint.angle_sanity;
    };
    {
      name = "translation-validation";
      description =
        "symbolic proof that the circuit implements its gadget program \
         (frame × phase-polynomial domain; routed and slotted circuits \
         included)";
      run = Circuit_lint.translation_validation;
    };
    {
      name = "resilience-conformance";
      description =
        "degradation-ladder registry audit: fallback rungs present, \
         subjects and rungs unambiguous";
      run = (fun _ -> Resilience_lint.registry_audit ());
    };
  ]

let names () = List.map (fun a -> a.name) all

let find name = List.find_opt (fun a -> a.name = name) all

let unknown names = List.filter (fun n -> find n = None) names

let selected ?only ?skip () =
  match unknown (Option.value only ~default:[] @ Option.value skip ~default:[])
  with
  | _ :: _ as missing -> Error missing
  | [] ->
    Ok
      (List.filter
         (fun a ->
           (match only with None -> true | Some ns -> List.mem a.name ns)
           && match skip with None -> true | Some ns -> not (List.mem a.name ns))
         all)

let run ?only ?skip target =
  match selected ?only ?skip () with
  | Error missing ->
    invalid_arg
      ("Registry.run: unknown analyses: " ^ String.concat ", " missing)
  | Ok analyses -> List.concat_map (fun a -> a.run target) analyses
