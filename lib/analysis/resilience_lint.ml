module Resilience = Phoenix.Resilience
module Compiler = Phoenix.Compiler
module Diag = Phoenix_verify.Diag

let analysis = "resilience-conformance"

(* Static audit of the degradation-ladder registry itself: every ladder
   must end somewhere cheap (>= 2 rungs), subjects and rung names must
   be unambiguous, and the owning pass must be named — the properties
   the event validator and the docs both lean on. *)
let registry_audit () =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let subjects =
    List.map (fun (l : Resilience.ladder) -> l.subject) Resilience.ladders
  in
  List.iter
    (fun s ->
      if List.length (List.filter (String.equal s) subjects) > 1 then
        emit
          (Finding.makef ~analysis Finding.Error
             "duplicate ladder subject %S" s))
    (List.sort_uniq String.compare subjects);
  List.iter
    (fun (l : Resilience.ladder) ->
      if List.length l.rungs < 2 then
        emit
          (Finding.makef ~analysis Finding.Error
             "ladder %S has no fallback rung" l.subject);
      if l.owner = "" then
        emit
          (Finding.makef ~analysis Finding.Error
             "ladder %S names no owning pass" l.subject);
      let names = List.map (fun r -> r.Resilience.rung) l.rungs in
      List.iter
        (fun r ->
          if r = "" then
            emit
              (Finding.makef ~analysis Finding.Error
                 "ladder %S has an unnamed rung" l.subject);
          if List.length (List.filter (String.equal r) names) > 1 then
            emit
              (Finding.makef ~analysis Finding.Error
                 "ladder %S repeats rung %S" l.subject r))
        (List.sort_uniq String.compare names))
    Resilience.ladders;
  if !findings = [] then
    [
      Finding.makef ~analysis Finding.Info
        "%d degradation ladders registered, every one with a terminal \
         fallback rung"
        (List.length Resilience.ladders);
    ]
  else List.rev !findings

(* Dynamic audit of one run: every degradation the report records must
   be a step a registered ladder permits, and a degraded run must have
   said so in its diagnostics — silent degradation is the failure mode
   this lint exists to catch. *)
let conformance (report : Compiler.report) =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  List.iter
    (fun (e : Resilience.event) ->
      match Resilience.find_ladder e.subject with
      | None ->
        emit
          (Finding.makef ~analysis Finding.Error
             "degradation event references unregistered ladder %S" e.subject)
      | Some _ ->
        if
          not
            (Resilience.valid_step ~subject:e.subject ~from_rung:e.from_rung
               ~to_rung:e.to_rung)
        then
          emit
            (Finding.makef ~analysis Finding.Error
               "degradation %s is not an adjacent step of ladder %S"
               (Resilience.event_to_string e)
               e.subject))
    report.Compiler.degradations;
  (if report.Compiler.degradations <> [] then
     let warned =
       List.exists
         (fun (d : Diag.t) -> d.Diag.severity <> Diag.Info)
         report.Compiler.diagnostics
     in
     if not warned then
       emit
         (Finding.makef ~analysis Finding.Error
            "run degraded %d time(s) but carries no Warning diagnostic"
            (List.length report.Compiler.degradations)));
  if !findings = [] && report.Compiler.degradations <> [] then
    [
      Finding.makef ~analysis Finding.Info
        "%d degradation(s) all conform to registered ladders: %s"
        (List.length report.Compiler.degradations)
        (Resilience.aggregate_to_string report.Compiler.degradations);
    ]
  else List.rev !findings
