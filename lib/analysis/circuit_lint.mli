(** Simulation-free circuit analyses.

    Every analysis takes a {!target} — the compiled circuit plus
    whatever machine context is known (ISA, coupling map, the metrics
    the compiler declared for it) — and returns findings.  All run in
    time polynomial in the gate count with no unitary or state-vector
    construction, so they are cheap enough for CI over every workload
    and every baseline compiler. *)

type isa = Phoenix_verify.Structural.isa = Cnot_basis | Su4_basis | Any_basis

type declared = { two_q : int; depth_2q : int; one_q : int }
(** The metrics a compiler reported for the circuit, to be certified
    against recomputation. *)

type target = {
  circuit : Phoenix_circuit.Circuit.t;
  isa : isa;
  topology : Phoenix_topology.Topology.t option;
      (** coupling map for routed circuits; [None] for logical ones *)
  declared : declared option;
  program : (int * (Phoenix_pauli.Pauli_string.t * float) list) option;
      (** the register size and gadget program the circuit was compiled
          from, when the caller still has it — enables
          {!translation_validation} *)
  exact : bool;
      (** the compile ran in exact (sequence-preserving) mode, so the
          checker may demand the stronger sequence relation *)
  layout : Phoenix_router.Layout.t option;
      (** final logical→physical placement of a routed compile, used to
          relabel the circuit back onto the program's register *)
}

val target :
  ?isa:isa ->
  ?topology:Phoenix_topology.Topology.t ->
  ?declared:declared ->
  ?program:int * (Phoenix_pauli.Pauli_string.t * float) list ->
  ?exact:bool ->
  ?layout:Phoenix_router.Layout.t ->
  Phoenix_circuit.Circuit.t ->
  target
(** [isa] defaults to [Any_basis], [exact] to [false]; the remaining
    context is optional and analyses needing it return no findings when
    it is absent. *)

val liveness : target -> Finding.t list
(** Dangling-wire detection: qubits declared by a logical circuit but
    touched by no gate ([Warning] each).  Skipped on hardware targets,
    where idle physical qubits are expected. *)

val isa_conformance : target -> Finding.t list
(** Gate-alphabet membership for the target ISA, qubit-range checks,
    coincident 2Q operands, and SU(4)-block well-formedness (parts
    confined to the block's pair).  All [Error]. *)

val coupling_conformance : target -> Finding.t list
(** Every 2Q gate of a routed circuit must lie on a coupling-graph edge,
    and the circuit must fit the device.  [Error] each; empty when the
    target has no topology. *)

val metrics_certification : target -> Finding.t list
(** Declared 2Q count / 2Q depth / 1Q count versus recomputation from
    the gate list ([Error] on mismatch); empty when nothing was
    declared. *)

val layer_consistency : target -> Finding.t list
(** Audit of {!Phoenix_circuit.Circuit.layers_2q}: layers partition the
    2Q gates, never reuse a qubit within a layer, count exactly the 2Q
    depth, and preserve per-qubit program order.  [Error] each. *)

val angle_sanity : target -> Finding.t list
(** NaN/inf rotation angles ([Error]); zero-angle rotations and
    non-canonical angles the peephole should have folded ([Warning] —
    the missed-optimization lint class).  Recurses into SU(4) blocks.
    Unbound template slots are hard errors, named by first-use rank
    ([S0], [S1], ... — stable across runs, unlike arena ids) with one
    finding per distinct slot plus a global summary giving the distinct
    and site counts and each slot's first-use gate index. *)

val translation_validation : target -> Finding.t list
(** Symbolic end-to-end translation validation
    ({!Phoenix_tv.Checker.check_program}): does the circuit implement
    the target's [program] in the frame × phase-polynomial domain?
    [Info] when proved, [Warning] when the checker is out of its domain
    (never a silent accept), [Error] with a counterexample description
    when refuted.  Routed circuits are relabeled through [layout];
    [exact] selects the sequence relation.  Empty when the target
    carries no program. *)
