(** Compiler-internal audits of the BSF tableau.

    Two independent oracles for the incremental tableau machinery:

    - {!cache_audit} checks the redundant state — column statistics,
      row-weight caches, aggregate counters — against fresh recomputation
      from the bit vectors ({!Phoenix_pauli.Bsf.audit} wrapped as
      findings).  It catches every corruption the delta-cost engine
      could introduce without touching the rows themselves.
    - {!replay_audit} rebuilds the tableau from its originating terms
      and re-applies the conjugation history, comparing rows — Pauli
      bits, {b sign bits}, and angles — against the audited tableau.
      This is the fresh-recomputation oracle for state the cache audit
      cannot derive (signs depend on the whole Clifford history). *)

val cache_audit : Phoenix_pauli.Bsf.t -> Finding.t list
(** One [Error] finding per cache discrepancy; [[]] when consistent. *)

val replay_audit :
  n:int ->
  terms:(Phoenix_pauli.Pauli_string.t * float) list ->
  gates:Phoenix_pauli.Clifford2q.t list ->
  Phoenix_pauli.Bsf.t ->
  Finding.t list
(** [replay_audit ~n ~terms ~gates t] checks that [t] equals the tableau
    obtained by conjugating [of_terms n terms] by [gates] in order.
    Rows must agree exactly (bits, sign, angle).  The audited tableau
    must not have peeled rows (row counts must match). *)
