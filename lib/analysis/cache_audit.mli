(** Integrity audit of the persistent synthesis cache.

    Walks every entry file in a cache directory
    ({!Phoenix_cache.Cache.dir} by default) and re-establishes the
    invariants the cache relies on:

    - the file parses: version line, checksum (verified before
      unmarshalling), payload — anything else is a corrupt entry;
    - the content address in the file name matches the digest re-derived
      from the stored ordered fingerprint
      ({!Phoenix_pauli.Bsf.digest_of_canonical_form}) — a mismatch means
      the entry would replay the wrong circuit;
    - the stored gates fit the stored support (every gate qubit is a
      valid rank), so relabelled replay cannot go out of range.

    Corrupt or mismatched entries are [Error] findings; a clean
    directory yields one [Info] certification finding.  The runtime
    cache itself never trusts these files blindly (checksums are
    verified on every load), so the audit is an offline
    cross-check — e.g. [phoenix cache audit] in CI. *)

val run : ?dir:string -> unit -> Finding.t list
