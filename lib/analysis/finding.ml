module Diag = Phoenix_verify.Diag

type severity = Diag.severity = Info | Warning | Error

type location =
  | Global
  | Gate of int
  | Qubit of int
  | Row of int
  | Column of int
  | Group of int

type t = {
  analysis : string;
  severity : severity;
  location : location;
  message : string;
}

let make ?(location = Global) ~analysis severity message =
  { analysis; severity; location; message }

let makef ?location ~analysis severity fmt =
  Printf.ksprintf (make ?location ~analysis severity) fmt

let error ?location ~analysis fmt = makef ?location ~analysis Error fmt
let warning ?location ~analysis fmt = makef ?location ~analysis Warning fmt
let info ?location ~analysis fmt = makef ?location ~analysis Info fmt

let location_to_string = function
  | Global -> ""
  | Gate i -> Printf.sprintf "gate #%d" i
  | Qubit q -> Printf.sprintf "qubit %d" q
  | Row i -> Printf.sprintf "row %d" i
  | Column q -> Printf.sprintf "column %d" q
  | Group g -> Printf.sprintf "group %d" g

let to_string f =
  let where =
    match location_to_string f.location with
    | "" -> f.analysis
    | loc -> Printf.sprintf "%s(%s)" f.analysis loc
  in
  Printf.sprintf "[%s] %s: %s" (Diag.severity_to_string f.severity) where
    f.message

let pp fmt f = Format.pp_print_string fmt (to_string f)

let to_diag f =
  let group = match f.location with Group g -> Some g | _ -> None in
  let message =
    match f.location, group with
    | Global, _ | _, Some _ -> f.message
    | loc, None -> Printf.sprintf "%s: %s" (location_to_string loc) f.message
  in
  Diag.make ?group ~pass:f.analysis f.severity message

(* Minimal JSON string escaping: quotes, backslashes, control chars. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let location_to_json = function
  | Global -> {|{"kind":"global"}|}
  | Gate i -> Printf.sprintf {|{"kind":"gate","index":%d}|} i
  | Qubit q -> Printf.sprintf {|{"kind":"qubit","index":%d}|} q
  | Row i -> Printf.sprintf {|{"kind":"row","index":%d}|} i
  | Column q -> Printf.sprintf {|{"kind":"column","index":%d}|} q
  | Group g -> Printf.sprintf {|{"kind":"group","index":%d}|} g

let to_json f =
  Printf.sprintf
    {|{"analysis":"%s","severity":"%s","location":%s,"message":"%s"}|}
    (json_escape f.analysis)
    (Diag.severity_to_string f.severity)
    (location_to_json f.location)
    (json_escape f.message)

let list_to_json fs =
  "[" ^ String.concat "," (List.map to_json fs) ^ "]"

let errors fs = List.filter (fun f -> f.severity = Error) fs
let warnings fs = List.filter (fun f -> f.severity = Warning) fs
let has_errors fs = List.exists (fun f -> f.severity = Error) fs

let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)

let summary fs =
  let part what n = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  Printf.sprintf "%s, %s, %s"
    (part "error" (count Error fs))
    (part "warning" (count Warning fs))
    (part "note" (count Info fs))
