(** The analysis registry.

    Circuit-level analyses are registered here by name; [phoenix
    analyze], the [--lint] compile flag, and the test harness all run
    the registry rather than hand-picked pass lists, so a newly
    registered analysis is automatically surfaced everywhere.  (The
    compiler-internal audits — {!Tableau_audit}, {!Determinism} — have
    different inputs and are invoked directly.)

    To add an analysis: write a [Circuit_lint.target -> Finding.t list]
    function (simulation-free, polynomial in the gate count), append an
    entry to {!all}, and give it a fault-injection test proving the
    defect class it exists for is actually caught. *)

type analysis = {
  name : string;  (** stable kebab-case identifier *)
  description : string;  (** one line, shown by [phoenix analyze --list] *)
  run : Circuit_lint.target -> Finding.t list;
}

val all : analysis list
(** Registry order is execution and report order. *)

val names : unit -> string list

val find : string -> analysis option

val unknown : string list -> string list
(** The subset of [names] that match no registered analysis — the CLI's
    [--only]/[--skip] validation (unknown names are a usage error, exit
    2, not an empty run). *)

val run :
  ?only:string list ->
  ?skip:string list ->
  Circuit_lint.target ->
  Finding.t list
(** Run the whole registry — or the [only] subset, minus the [skip]
    set — on a target, concatenating findings in registry order.
    Raises [Invalid_argument] when either list names an unknown
    analysis (use {!unknown} to pre-validate). *)
