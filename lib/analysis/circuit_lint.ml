module Circuit = Phoenix_circuit.Circuit
module Gate = Phoenix_circuit.Gate
module Peephole = Phoenix_circuit.Peephole
module Topology = Phoenix_topology.Topology
module Structural = Phoenix_verify.Structural

type isa = Structural.isa = Cnot_basis | Su4_basis | Any_basis

type declared = { two_q : int; depth_2q : int; one_q : int }

type target = {
  circuit : Circuit.t;
  isa : isa;
  topology : Topology.t option;
  declared : declared option;
  program : (int * (Phoenix_pauli.Pauli_string.t * float) list) option;
  exact : bool;
  layout : Phoenix_router.Layout.t option;
}

let target ?(isa = Any_basis) ?topology ?declared ?program ?(exact = false)
    ?layout circuit =
  { circuit; isa; topology; declared; program; exact; layout }

(* --- qubit liveness ----------------------------------------------------- *)

(* A declared-but-untouched wire in a logical circuit means the compiler
   lost (or never emitted) part of the program.  On a hardware target the
   register is the whole device, so idle physical qubits are expected and
   the analysis is skipped. *)
let liveness t =
  match t.topology with
  | Some _ -> []
  | None ->
    let n = Circuit.num_qubits t.circuit in
    let used = Array.make n false in
    List.iter
      (fun g ->
        List.iter
          (fun q -> if q >= 0 && q < n then used.(q) <- true)
          (Gate.qubits g))
      (Circuit.gates t.circuit);
    let fs = ref [] in
    for q = n - 1 downto 0 do
      if not used.(q) then
        fs :=
          Finding.warning ~location:(Finding.Qubit q) ~analysis:"liveness"
            "declared but never touched by any gate (dangling wire)"
          :: !fs
    done;
    !fs

(* --- ISA gate-set conformance ------------------------------------------- *)

let rec su4_parts_on a b parts =
  List.for_all
    (fun g ->
      List.for_all (fun q -> q = a || q = b) (Gate.qubits g)
      &&
      match g with
      | Gate.Su4 { a = a'; b = b'; parts = parts' } -> su4_parts_on a' b' parts'
      | _ -> true)
    parts

let isa_conformance t =
  let analysis = "isa-conformance" in
  let n = Circuit.num_qubits t.circuit in
  let fs = ref [] in
  let err i fmt =
    Printf.ksprintf
      (fun m ->
        fs := Finding.make ~location:(Finding.Gate i) ~analysis Error m :: !fs)
      fmt
  in
  List.iteri
    (fun i g ->
      let qs = Gate.qubits g in
      List.iter
        (fun q ->
          if q < 0 || q >= n then
            err i "%s touches qubit %d outside [0, %d)" (Gate.to_string g) q n)
        qs;
      (match qs with
      | [ a; b ] when a = b ->
        err i "%s has coincident operands" (Gate.to_string g)
      | _ -> ());
      (match g with
      | Gate.Su4 { a; b; parts } when not (su4_parts_on a b parts) ->
        err i "SU(4) block has parts outside its qubit pair (%d,%d)" a b
      | _ -> ());
      match t.isa, g with
      | Cnot_basis, (Gate.G1 _ | Gate.Cnot _) -> ()
      | Cnot_basis, _ ->
        err i "%s is outside the CNOT ISA alphabet" (Gate.to_string g)
      | Su4_basis, (Gate.G1 _ | Gate.Su4 _) -> ()
      | Su4_basis, _ ->
        err i "%s is outside the SU(4) ISA alphabet" (Gate.to_string g)
      | Any_basis, _ -> ())
    (Circuit.gates t.circuit);
  List.rev !fs

(* --- coupling-map conformance ------------------------------------------- *)

let coupling_conformance t =
  match t.topology with
  | None -> []
  | Some topo ->
    let analysis = "coupling-conformance" in
    let fs = ref [] in
    let dev = Topology.num_qubits topo in
    if Circuit.num_qubits t.circuit > dev then
      fs :=
        Finding.error ~analysis "circuit has %d qubits but the device only %d"
          (Circuit.num_qubits t.circuit)
          dev
        :: !fs;
    List.iteri
      (fun i g ->
        match Gate.pair g with
        | Some (a, b)
          when a >= 0 && b >= 0 && a < dev && b < dev
               && not (Topology.are_adjacent topo a b) ->
          fs :=
            Finding.error ~location:(Finding.Gate i) ~analysis
              "%s acts on non-adjacent physical qubits (%d,%d)"
              (Gate.to_string g) a b
            :: !fs
        | _ -> ())
      (Circuit.gates t.circuit);
    List.rev !fs

(* --- declared-vs-recomputed metric certification ------------------------ *)

let metrics_certification t =
  match t.declared with
  | None -> []
  | Some d ->
    let analysis = "metrics-certification" in
    let check what declared actual acc =
      if declared <> actual then
        Finding.error ~analysis "declared %s %d, recomputed %d from the circuit"
          what declared actual
        :: acc
      else acc
    in
    []
    |> check "2Q count" d.two_q (Circuit.count_2q t.circuit)
    |> check "2Q depth" d.depth_2q (Circuit.depth_2q t.circuit)
    |> check "1Q count" d.one_q (Circuit.count_1q t.circuit)
    |> List.rev

(* --- layer consistency --------------------------------------------------

   Audits [Circuit.layers_2q] — the schedule every depth metric and the
   ordering pass trust — against its own contract: layers partition the
   2Q gates, no layer reuses a qubit, the layer count equals the 2Q
   depth, and per-qubit program order is preserved. *)

let layer_consistency t =
  let analysis = "layer-consistency" in
  let c = t.circuit in
  let layers = Circuit.layers_2q c in
  let fs = ref [] in
  let err fmt =
    Printf.ksprintf
      (fun m -> fs := Finding.make ~analysis Error m :: !fs)
      fmt
  in
  List.iteri
    (fun li layer ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun g ->
          List.iter
            (fun q ->
              if Hashtbl.mem seen q then
                err "layer %d schedules qubit %d twice" li q
              else Hashtbl.add seen q ())
            (Gate.qubits g))
        layer)
    layers;
  let flat = List.concat layers in
  let n2q = Circuit.count_2q c in
  if List.length flat <> n2q then
    err "layering holds %d 2Q gates, the circuit has %d" (List.length flat) n2q;
  if List.length layers <> Circuit.depth_2q c then
    err "layer count %d disagrees with 2Q depth %d" (List.length layers)
      (Circuit.depth_2q c);
  let program_2q = List.filter Gate.is_two_qubit (Circuit.gates c) in
  for q = 0 to Circuit.num_qubits c - 1 do
    let on_q gs = List.filter (fun g -> List.mem q (Gate.qubits g)) gs in
    let in_program = on_q program_2q and in_layers = on_q flat in
    if
      not
        (List.length in_program = List.length in_layers
        && List.for_all2 Gate.equal in_program in_layers)
    then
      fs :=
        Finding.error ~location:(Finding.Qubit q) ~analysis
          "2Q gates on this qubit are reordered by the layering"
        :: !fs
  done;
  List.rev !fs

(* --- angle sanity --------------------------------------------------------

   NaN/inf angles are hard errors: they poison every downstream metric
   and unitary.  Zero rotations and non-canonical angles are valid but
   mean the peephole left money on the table — the missed-optimization
   lint class. *)

let angle_sanity t =
  let analysis = "angle-sanity" in
  let fs = ref [] in
  (* Unbound slots are named by first-use rank (S0, S1, ...) so a
     finding reads stably across runs — arena ids depend on how many
     templates were compiled before this one.  Each slot errors once at
     its first use; a trailing summary counts the damage. *)
  let slot_rank : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let slot_sites = ref 0 in
  let check i what theta =
    if Phoenix_pauli.Angle.is_slot theta then begin
      (* A slot reaching the lint means the circuit was never bound —
         templates must go through [Template.bind] before certification. *)
      incr slot_sites;
      let id = Phoenix_pauli.Angle.slot_id theta in
      if not (Hashtbl.mem slot_rank id) then begin
        let rank = Hashtbl.length slot_rank in
        Hashtbl.add slot_rank id (rank, i);
        fs :=
          Finding.error ~location:(Finding.Gate i) ~analysis
            "%s has unbound slot S%d (angle %s): template parameter was \
             never bound"
            what rank
            (Phoenix_pauli.Angle.to_string theta)
          :: !fs
      end
    end
    else if not (Float.is_finite theta) then
      fs :=
        Finding.error ~location:(Finding.Gate i) ~analysis
          "%s has non-finite angle %h" what theta
        :: !fs
    else if Peephole.is_zero_angle theta then
      fs :=
        Finding.warning ~location:(Finding.Gate i) ~analysis
          "%s rotation by ≈0 survived peephole folding (missed optimization)"
          what
        :: !fs
    else begin
      let canon = Peephole.normalize_angle theta in
      if Float.abs (canon -. theta) > 1e-9 then
        fs :=
          Finding.warning ~location:(Finding.Gate i) ~analysis
            "%s angle %g is non-canonical (normalizes to %g)" what theta canon
          :: !fs
    end
  in
  let rec walk i g =
    match g with
    | Gate.G1 (Gate.Rx theta, _) -> check i "Rx" theta
    | Gate.G1 (Gate.Ry theta, _) -> check i "Ry" theta
    | Gate.G1 (Gate.Rz theta, _) -> check i "Rz" theta
    | Gate.Rpp { theta; _ } -> check i "Rpp" theta
    | Gate.Su4 { parts; _ } -> List.iter (walk i) parts
    | Gate.G1 _ | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Swap _ -> ()
  in
  List.iteri walk (Circuit.gates t.circuit);
  if Hashtbl.length slot_rank > 0 then begin
    let first_uses =
      Hashtbl.fold (fun _ (rank, gate) acc -> (rank, gate) :: acc) slot_rank []
      |> List.sort compare
      |> List.map (fun (rank, gate) -> Printf.sprintf "S%d@%d" rank gate)
      |> String.concat ", "
    in
    fs :=
      Finding.error ~analysis
        "%d unbound slot%s across %d site%s (first uses: %s)"
        (Hashtbl.length slot_rank)
        (if Hashtbl.length slot_rank = 1 then "" else "s")
        !slot_sites
        (if !slot_sites = 1 then "" else "s")
        first_uses
      :: !fs
  end;
  List.rev !fs

(* --- symbolic translation validation -------------------------------------

   End-to-end check that the compiled circuit implements the gadget
   program it was compiled from, in the frame × phase-polynomial
   abstract domain ([Phoenix_tv]).  Simulation-free like every other
   registry analysis, and — unlike the dense verifier — sound on routed
   circuits (via the recorded layout) and on slotted templates. *)

let translation_validation t =
  let analysis = "translation-validation" in
  match t.program with
  | None -> []
  | Some (n, program) ->
    let l2p =
      Option.map
        (fun l ->
          Array.init
            (Phoenix_router.Layout.n_logical l)
            (Phoenix_router.Layout.physical_of l))
        t.layout
    in
    let relation = if t.exact then "sequence" else "multiset" in
    (match
       Phoenix_tv.Checker.check_program ~exact:t.exact ?l2p n program
         t.circuit
     with
    | Phoenix_tv.Checker.Proved ->
      [
        Finding.info ~analysis
          "%d-gadget program certified against the circuit (%s relation%s)"
          (List.length program) relation
          (match l2p with
          | Some _ -> ", relabeled through the routing layout"
          | None -> "");
      ]
    | Phoenix_tv.Checker.Plausible r ->
      [ Finding.warning ~analysis "not certified (checker out of domain): %s" r ]
    | Phoenix_tv.Checker.Refuted r ->
      [ Finding.error ~analysis "circuit does not implement the program: %s" r ])
