module Compiler = Phoenix.Compiler
module Group = Phoenix.Group
module Circuit = Phoenix_circuit.Circuit
module Diag = Phoenix_verify.Diag

let analysis = "parallel-determinism"

(* The claim-order seed travels to the domain pool through the
   environment ([Phoenix_util.Parallel] reads [PHOENIX_PARALLEL_SEED])
   so no compiler API changes are needed to permute its scheduling. *)
let with_seed_env seed f =
  let var = "PHOENIX_PARALLEL_SEED" in
  let old = Sys.getenv_opt var in
  Unix.putenv var (match seed with Some s -> string_of_int s | None -> "");
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value ~default:"" old))
    f

(* Wall-clock fields are excluded by construction; everything else in the
   report must be bit-identical to the serial reference. *)
let diff_reports ~label (reference : Compiler.report)
    (candidate : Compiler.report) =
  let fs = ref [] in
  let err fmt =
    Printf.ksprintf (fun m -> fs := Finding.make ~analysis Error m :: !fs) fmt
  in
  if not (Circuit.equal reference.Compiler.circuit candidate.Compiler.circuit)
  then err "%s: output circuit differs from the serial reference" label;
  let metric name f =
    let a = f reference and b = f candidate in
    if a <> b then err "%s: %s differs (serial %d, replay %d)" label name a b
  in
  metric "2Q count" (fun r -> r.Compiler.two_q_count);
  metric "2Q depth" (fun r -> r.Compiler.depth_2q);
  metric "1Q count" (fun r -> r.Compiler.one_q_count);
  metric "SWAP count" (fun r -> r.Compiler.num_swaps);
  metric "group count" (fun r -> r.Compiler.num_groups);
  let render (r : Compiler.report) =
    List.map Diag.to_string r.Compiler.diagnostics
  in
  if render reference <> render candidate then
    err "%s: diagnostics stream differs from the serial reference" label;
  List.rev !fs

let audit_groups ?(options = Compiler.default_options)
    ?(domain_counts = [ 2; 4 ]) ?(seeds = [ 1; 42 ]) n groups =
  let serial =
    with_seed_env None (fun () ->
        Compiler.compile_groups ~options:{ options with Compiler.domains = 1 }
          n groups)
  in
  let replays =
    List.concat_map
      (fun d -> List.map (fun s -> d, s) seeds)
      (List.sort_uniq compare (List.filter (fun d -> d > 1) domain_counts))
  in
  let fs =
    List.concat_map
      (fun (d, s) ->
        let candidate =
          with_seed_env (Some s) (fun () ->
              Compiler.compile_groups
                ~options:{ options with Compiler.domains = d } n groups)
        in
        diff_reports
          ~label:(Printf.sprintf "domains=%d seed=%d" d s)
          serial candidate)
      replays
  in
  if fs = [] then
    [
      Finding.info ~analysis
        "%d permuted parallel replays bit-identical to the serial compilation"
        (List.length replays);
    ]
  else fs

let audit_gadgets ?options ?domain_counts ?seeds n gadgets =
  let exact =
    (Option.value ~default:Compiler.default_options options).Compiler.exact
  in
  audit_groups ?options ?domain_counts ?seeds n
    (Group.group_gadgets ~exact n gadgets)
