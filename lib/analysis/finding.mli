(** Static-analysis findings.

    The analysis layer's common currency: one finding per fact an
    analysis establishes about a compiled artifact (or about the
    compiler's own state).  The severity scale is shared with the
    dynamic-verification diagnostics ({!Phoenix_verify.Diag}) so CLI
    front ends can merge both streams: [Error] means the artifact is
    wrong or unusable, [Warning] flags suspicious-but-valid facts
    (including the missed-optimization lint class), [Info] records
    positive certifications.  Findings carry a structured location and
    render both human-readably and as JSON. *)

type severity = Phoenix_verify.Diag.severity = Info | Warning | Error

type location =
  | Global
  | Gate of int  (** index into the circuit's gate list *)
  | Qubit of int
  | Row of int  (** BSF tableau row *)
  | Column of int  (** BSF tableau column *)
  | Group of int  (** IR group index *)

type t = {
  analysis : string;  (** registry name of the emitting analysis *)
  severity : severity;
  location : location;
  message : string;
}

val make : ?location:location -> analysis:string -> severity -> string -> t
(** [location] defaults to [Global]. *)

val makef :
  ?location:location ->
  analysis:string ->
  severity ->
  ('a, unit, string, t) format4 ->
  'a

val error :
  ?location:location -> analysis:string -> ('a, unit, string, t) format4 -> 'a

val warning :
  ?location:location -> analysis:string -> ('a, unit, string, t) format4 -> 'a

val info :
  ?location:location -> analysis:string -> ('a, unit, string, t) format4 -> 'a

val location_to_string : location -> string

val to_string : t -> string
(** One-line rendering: [[severity] analysis(location): message]. *)

val pp : Format.formatter -> t -> unit

val to_diag : t -> Phoenix_verify.Diag.t
(** Downgrade to the dynamic-diagnostic taxonomy ([Group] maps to the
    diagnostic's group field; other locations are folded into the
    message) so findings can join a [Compiler.report]'s stream. *)

val to_json : t -> string
(** Machine-readable rendering, one JSON object per finding. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects. *)

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool
val count : severity -> t list -> int

val summary : t list -> string
(** e.g. ["1 error, 2 warnings, 3 notes"]. *)
