module Cache = Phoenix_cache.Cache
module Bsf = Phoenix_pauli.Bsf
module Gate = Phoenix_circuit.Gate

let analysis = "cache-integrity"

(* The fingerprint is "<mode>;<canonical form>"; the digest is derived
   from the form alone, so strip the mode prefix before re-hashing. *)
let digest_of_fingerprint fp =
  match String.index_opt fp ';' with
  | None -> None
  | Some i ->
    Some (Bsf.digest_of_canonical_form
            (String.sub fp (i + 1) (String.length fp - i - 1)))

let max_gate_qubit gates =
  List.fold_left
    (fun acc g -> List.fold_left max acc (Gate.qubits g))
    (-1) gates

let audit_file path =
  let file = Filename.basename path in
  match Cache.Persist.read_file path with
  | Error msg ->
    [ Finding.error ~analysis "corrupt cache entry %s: %s" file msg ]
  | Ok info ->
    let address =
      match
        (Cache.Persist.digest_of_file path,
         digest_of_fingerprint info.Cache.Persist.fingerprint)
      with
      | Some named, Some derived when named <> derived ->
        [
          Finding.error ~analysis
            "cache entry %s: file digest %s does not match fingerprint \
             digest %s"
            file named derived;
        ]
      | None, _ ->
        [ Finding.error ~analysis "cache entry %s: unparseable file name" file ]
      | _, None ->
        [
          Finding.error ~analysis
            "cache entry %s: unparseable stored fingerprint" file;
        ]
      | Some _, Some _ -> []
    in
    let k = Array.length info.Cache.Persist.support in
    let range =
      let mq = max_gate_qubit info.Cache.Persist.gates in
      if mq >= k then
        [
          Finding.error ~analysis
            "cache entry %s: gate qubit %d outside the stored support \
             (%d qubits)"
            file mq k;
        ]
      else []
    in
    address @ range

let run ?dir () =
  let files = Cache.Persist.list_files ?dir () in
  match List.concat_map audit_file files with
  | [] ->
    [
      Finding.info ~analysis
        "audited %d persistent cache entries (%d bytes): checksums, \
         content addresses and gate ranges consistent"
        (List.length files)
        (Cache.Persist.disk_bytes ?dir ());
    ]
  | problems -> problems
