module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit
module Topology = Phoenix_topology.Topology
module Prng = Phoenix_util.Prng

type result = {
  circuit : Circuit.t;
  initial_layout : Layout.t;
  final_layout : Layout.t;
  num_swaps : int;
}

(* Mutable routing state.  Dependencies are the per-qubit program order:
   a gate is ready when it heads the pending queue of each of its qubits. *)
type state = {
  gates : Gate.t array;
  queues : int list array; (* per logical qubit, pending gate indices *)
  done_arr : bool array;
  mutable low : int; (* all gates below this index are done *)
  mutable remaining : int;
  mutable layout : Layout.t;
  mutable emitted : Gate.t list; (* reversed *)
  mutable swaps : int;
  decay_arr : float array; (* per physical qubit *)
}

let queue_heads st =
  Array.to_seq st.queues
  |> Seq.filter_map (function i :: _ -> Some i | [] -> None)
  |> List.of_seq |> List.sort_uniq compare

let is_ready st i =
  List.for_all
    (fun q -> match st.queues.(q) with j :: _ -> j = i | [] -> false)
    (Gate.qubits st.gates.(i))

let pop_gate st i =
  List.iter
    (fun q ->
      match st.queues.(q) with
      | j :: rest when j = i -> st.queues.(q) <- rest
      | _ -> assert false)
    (Gate.qubits st.gates.(i));
  st.done_arr.(i) <- true;
  while st.low < Array.length st.gates && st.done_arr.(st.low) do
    st.low <- st.low + 1
  done;
  st.remaining <- st.remaining - 1

(* Remap a logical gate to physical qubits under the current layout. *)
let emit_mapped st g =
  let f q = Layout.physical_of st.layout q in
  let rec go = function
    | Gate.G1 (k, q) -> Gate.G1 (k, f q)
    | Gate.Cnot (a, b) -> Gate.Cnot (f a, f b)
    | Gate.Cliff2 c ->
      Gate.Cliff2 { c with Phoenix_pauli.Clifford2q.a = f c.a; b = f c.b }
    | Gate.Rpp r -> Gate.Rpp { r with a = f r.a; b = f r.b }
    | Gate.Swap (a, b) -> Gate.Swap (f a, f b)
    | Gate.Su4 { a; b; parts } ->
      Gate.Su4 { a = f a; b = f b; parts = List.map go parts }
  in
  st.emitted <- go g :: st.emitted

let executable st topo i =
  match Gate.qubits st.gates.(i) with
  | [ _ ] -> true
  | [ a; b ] ->
    Topology.are_adjacent topo
      (Layout.physical_of st.layout a)
      (Layout.physical_of st.layout b)
  | _ -> assert false

(* Drain every ready gate that can execute under the current layout. *)
let rec drain st topo =
  let progressed = ref false in
  List.iter
    (fun i ->
      if is_ready st i && executable st topo i then begin
        emit_mapped st st.gates.(i);
        pop_gate st i;
        progressed := true
      end)
    (queue_heads st);
  if !progressed && st.remaining > 0 then drain st topo

let front_layer st topo =
  List.filter
    (fun i ->
      is_ready st i
      && Gate.is_two_qubit st.gates.(i)
      && not (executable st topo i))
    (queue_heads st)

(* The next pending 2Q gates in program order (beyond the front), for the
   lookahead term; scanning starts at the first unfinished gate. *)
let extended_set st front k =
  let n = Array.length st.gates in
  let rec scan i acc count =
    if i >= n || count >= k then acc
    else if
      (not st.done_arr.(i))
      && Gate.is_two_qubit st.gates.(i)
      && not (List.mem i front)
    then scan (i + 1) (i :: acc) (count + 1)
    else scan (i + 1) acc count
  in
  scan st.low [] 0

let gate_distance st topo i =
  match Gate.qubits st.gates.(i) with
  | [ a; b ] ->
    Topology.distance topo
      (Layout.physical_of st.layout a)
      (Layout.physical_of st.layout b)
  | _ -> 0

(* One step along a shortest path for the first front gate: guaranteed
   progress when the scoring heuristic cycles. *)
let forced_swap st topo front =
  match Gate.qubits st.gates.(List.hd front) with
  | [ a; b ] ->
    let pa = Layout.physical_of st.layout a
    and pb = Layout.physical_of st.layout b in
    let closer =
      List.find_opt
        (fun nb -> Topology.distance topo nb pb < Topology.distance topo pa pb)
        (Topology.neighbors topo pa)
    in
    (match closer with
    | Some nb -> min pa nb, max pa nb
    | None -> assert false (* connected topology: some neighbor is closer *))
  | _ -> assert false

(* Bridge template: CNOT(a,c) over middle qubit m without moving anyone:
   time order [CNOT(a,m); CNOT(m,c); CNOT(a,m); CNOT(m,c)]. *)
let bridge_gates a m c =
  [ Gate.Cnot (a, m); Gate.Cnot (m, c); Gate.Cnot (a, m); Gate.Cnot (m, c) ]

(* A front CNOT at distance exactly 2 whose qubits no upcoming gate needs
   is cheaper to bridge (4 CNOTs, no layout change) than to route. *)
let try_bridges st topo front ext =
  let ext_touches q =
    List.exists
      (fun i -> List.mem q (Gate.qubits st.gates.(i)))
      ext
  in
  let bridged = ref false in
  List.iter
    (fun i ->
      match st.gates.(i) with
      | Gate.Cnot (a, b)
        when gate_distance st topo i = 2
             && (not (ext_touches a))
             && not (ext_touches b) ->
        let pa = Layout.physical_of st.layout a
        and pb = Layout.physical_of st.layout b in
        let middle =
          List.find_opt
            (fun m -> Topology.are_adjacent topo m pb)
            (Topology.neighbors topo pa)
        in
        (match middle with
        | Some m ->
          List.iter
            (fun g -> st.emitted <- g :: st.emitted)
            (bridge_gates pa m pb);
          pop_gate st i;
          bridged := true
        | None -> ())
      | _ -> ())
    front;
  !bridged

let route ?initial ?(lookahead = 20) ?(decay = 0.001) ?(seed = 7)
    ?(use_bridge = false) topo circ =
  let n_log = Circuit.num_qubits circ in
  let n_phys = Topology.num_qubits topo in
  if n_log > n_phys then
    invalid_arg
      (Printf.sprintf
         "Sabre.route: circuit needs %d logical qubits but the device has \
          only %d"
         n_log n_phys);
  if not (Topology.is_connected topo) then
    invalid_arg
      (Printf.sprintf
         "Sabre.route: the %d-qubit coupling graph is disconnected — routing \
          cannot reach every qubit"
         n_phys);
  let initial_layout =
    match initial with
    | Some l -> l
    | None -> Layout.trivial ~n_logical:n_log ~n_physical:n_phys
  in
  let gates = Circuit.gate_array circ in
  let queues = Array.make n_log [] in
  Array.iteri
    (fun i g -> List.iter (fun q -> queues.(q) <- i :: queues.(q)) (Gate.qubits g))
    gates;
  Array.iteri (fun q l -> queues.(q) <- List.rev l) queues;
  let st =
    {
      gates;
      queues;
      done_arr = Array.make (max 1 (Array.length gates)) false;
      low = 0;
      remaining = Array.length gates;
      layout = initial_layout;
      emitted = [];
      swaps = 0;
      decay_arr = Array.make n_phys 1.0;
    }
  in
  let rng = Prng.create seed in
  let stall = ref 0 in
  while st.remaining > 0 do
    (* Cooperative cancellation point: routing has no cheaper fallback
       rung, so an expired budget propagates out of the pass. *)
    Phoenix_util.Budget.checkpoint ();
    drain st topo;
    if st.remaining > 0 then begin
      let front = front_layer st topo in
      assert (front <> []);
      let bridged =
        use_bridge
        && try_bridges st topo front (extended_set st front lookahead)
      in
      if not bridged then begin
      let p, q =
        if !stall > 2 * n_phys then forced_swap st topo front
        else begin
          let front_phys =
            List.concat_map
              (fun i ->
                List.map
                  (fun lq -> Layout.physical_of st.layout lq)
                  (Gate.qubits st.gates.(i)))
              front
            |> List.sort_uniq compare
          in
          let candidates =
            List.concat_map
              (fun p ->
                List.map (fun q -> min p q, max p q) (Topology.neighbors topo p))
              front_phys
            |> List.sort_uniq compare
          in
          let ext = extended_set st front lookahead in
          let score (p, q) =
            let saved = st.layout in
            st.layout <- Layout.swap_physical st.layout p q;
            let front_cost =
              List.fold_left (fun acc i -> acc + gate_distance st topo i) 0 front
            in
            let ext_cost =
              if ext = [] then 0.0
              else
                float_of_int
                  (List.fold_left
                     (fun acc i -> acc + gate_distance st topo i)
                     0 ext)
                /. float_of_int (List.length ext)
            in
            st.layout <- saved;
            let decay_factor = Float.max st.decay_arr.(p) st.decay_arr.(q) in
            decay_factor *. (float_of_int front_cost +. (0.5 *. ext_cost))
            +. (1e-9 *. Prng.float rng 1.0)
          in
          let best =
            List.fold_left
              (fun best cand ->
                let s = score cand in
                match best with
                | Some (_, bs) when bs <= s -> best
                | Some _ | None -> Some (cand, s))
              None candidates
          in
          match best with Some (c, _) -> c | None -> assert false
        end
      in
      st.layout <- Layout.swap_physical st.layout p q;
      st.emitted <- Gate.Swap (p, q) :: st.emitted;
      st.swaps <- st.swaps + 1;
      st.decay_arr.(p) <- st.decay_arr.(p) +. decay;
      st.decay_arr.(q) <- st.decay_arr.(q) +. decay;
      if st.swaps mod (5 * n_phys) = 0 then Array.fill st.decay_arr 0 n_phys 1.0;
      let before = st.remaining in
      drain st topo;
      if st.remaining < before then stall := 0 else incr stall
      end
    end
  done;
  {
    circuit = Circuit.create n_phys (List.rev st.emitted);
    initial_layout;
    final_layout = st.layout;
    num_swaps = st.swaps;
  }

let route_with_refinement ?initial ?(iterations = 1) ?lookahead ?seed
    ?use_bridge topo circ =
  let reversed =
    Circuit.create (Circuit.num_qubits circ) (List.rev (Circuit.gates circ))
  in
  let rec refine layout k =
    if k = 0 then layout
    else begin
      let fwd = route ~initial:layout ?lookahead ?seed ?use_bridge topo circ in
      let bwd =
        route ~initial:fwd.final_layout ?lookahead ?seed ?use_bridge topo
          reversed
      in
      refine bwd.final_layout (k - 1)
    end
  in
  let seed_layout =
    match initial with
    | Some l -> l
    | None -> Placement.of_circuit topo circ
  in
  let refined = refine seed_layout iterations in
  (* Keep the better of the refined and the seed layout. *)
  let r1 = route ~initial:refined ?lookahead ?seed ?use_bridge topo circ in
  let r0 = route ~initial:seed_layout ?lookahead ?seed ?use_bridge topo circ in
  if r0.num_swaps <= r1.num_swaps then r0 else r1

(* Free-order routing for mutually commuting gate sets: every pending 2Q
   gate is permanently "ready"; each step executes all adjacent ones and
   otherwise inserts the SWAP minimizing the total pending distance
   (newly-executable count breaking ties), with a shortest-path step as a
   guaranteed-progress fallback. *)
let route_commuting ?initial topo circ =
  let n_log = Circuit.num_qubits circ in
  let n_phys = Topology.num_qubits topo in
  if n_log > n_phys then
    invalid_arg
      (Printf.sprintf
         "Sabre.route_commuting: circuit needs %d logical qubits but the \
          device has only %d"
         n_log n_phys);
  let initial_layout =
    match initial with
    | Some l -> l
    | None -> Placement.of_circuit topo circ
  in
  let layout = ref initial_layout in
  let remap g =
    let f q = Layout.physical_of !layout q in
    let rec go = function
      | Gate.G1 (k, q) -> Gate.G1 (k, f q)
      | Gate.Cnot (a, b) -> Gate.Cnot (f a, f b)
      | Gate.Cliff2 c ->
        Gate.Cliff2 { c with Phoenix_pauli.Clifford2q.a = f c.a; b = f c.b }
      | Gate.Rpp r -> Gate.Rpp { r with a = f r.a; b = f r.b }
      | Gate.Swap (a, b) -> Gate.Swap (f a, f b)
      | Gate.Su4 { a; b; parts } ->
        Gate.Su4 { a = f a; b = f b; parts = List.map go parts }
    in
    go g
  in
  let ones, pending0 =
    List.partition (fun g -> not (Gate.is_two_qubit g)) (Circuit.gates circ)
  in
  (* 1Q gates commute with everything here: emit them first. *)
  let emitted = ref (List.rev_map remap ones) in
  let pending = ref pending0 in
  let swaps = ref 0 in
  (* ASAP busy layers per physical qubit, to steer SWAPs toward idle
     regions (depth awareness). *)
  let busy = Array.make n_phys 0 in
  let occupy p q =
    let layer = 1 + max busy.(p) busy.(q) in
    busy.(p) <- layer;
    busy.(q) <- layer
  in
  let dist g =
    match Gate.qubits g with
    | [ a; b ] ->
      Topology.distance topo
        (Layout.physical_of !layout a)
        (Layout.physical_of !layout b)
    | _ -> 0
  in
  let emit_executable () =
    let rec go () =
      let exec, rest = List.partition (fun g -> dist g = 1) !pending in
      if exec <> [] then begin
        List.iter
          (fun g ->
            (match Gate.qubits g with
            | [ a; b ] ->
              occupy (Layout.physical_of !layout a) (Layout.physical_of !layout b)
            | _ -> ());
            emitted := remap g :: !emitted)
          exec;
        pending := rest;
        go ()
      end
    in
    go ()
  in
  let total_distance () =
    List.fold_left (fun acc g -> acc + dist g) 0 !pending
  in
  while !pending <> [] do
    Phoenix_util.Budget.checkpoint ();
    emit_executable ();
    if !pending <> [] then begin
      let frontier =
        List.concat_map
          (fun g ->
            List.map (fun q -> Layout.physical_of !layout q) (Gate.qubits g))
          !pending
        |> List.sort_uniq compare
      in
      let candidates =
        List.concat_map
          (fun p ->
            List.map (fun q -> min p q, max p q) (Topology.neighbors topo p))
          frontier
        |> List.sort_uniq compare
      in
      let baseline = total_distance () in
      let score (p, q) =
        let saved = !layout in
        layout := Layout.swap_physical !layout p q;
        let d = total_distance () in
        let newly =
          List.fold_left (fun acc g -> if dist g = 1 then acc + 1 else acc) 0 !pending
        in
        layout := saved;
        ( float_of_int d,
          -.float_of_int newly,
          float_of_int (max busy.(p) busy.(q)) )
      in
      let best =
        List.fold_left
          (fun best cand ->
            let s = score cand in
            match best with
            | Some (_, bs) when bs <= s -> best
            | Some _ | None -> Some (cand, s))
          None candidates
      in
      let (p, q), (best_d, _, _) =
        match best with Some (c, s) -> c, s | None -> assert false
      in
      let p, q =
        if best_d < float_of_int baseline then p, q
        else begin
          match !pending with
          | g :: _ ->
            (match Gate.qubits g with
            | [ a; b ] ->
              let pa = Layout.physical_of !layout a
              and pb = Layout.physical_of !layout b in
              let closer =
                List.find_opt
                  (fun nb ->
                    Topology.distance topo nb pb < Topology.distance topo pa pb)
                  (Topology.neighbors topo pa)
              in
              (match closer with
              | Some nb -> min pa nb, max pa nb
              | None -> p, q)
            | _ -> p, q)
          | [] -> assert false
        end
      in
      layout := Layout.swap_physical !layout p q;
      emitted := Gate.Swap (p, q) :: !emitted;
      occupy p q;
      incr swaps
    end
  done;
  {
    circuit = Circuit.create n_phys (List.rev !emitted);
    initial_layout;
    final_layout = !layout;
    num_swaps = !swaps;
  }
