module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string

type encoding = Jordan_wigner | Bravyi_kitaev

let encoding_of_string s =
  match String.lowercase_ascii s with
  | "jw" | "jordan-wigner" | "jordan_wigner" -> Jordan_wigner
  | "bk" | "bravyi-kitaev" | "bravyi_kitaev" -> Bravyi_kitaev
  | _ -> invalid_arg (Printf.sprintf "Fermion.encoding_of_string: %S" s)

let encoding_to_string = function
  | Jordan_wigner -> "JW"
  | Bravyi_kitaev -> "BK"

let check_mode n j =
  if j < 0 || j >= n then invalid_arg "Fermion: mode index out of range"

let half = { Complex.re = 0.5; im = 0.0 }
let half_i = { Complex.re = 0.0; im = 0.5 }

(* Build a Pauli string by placing operators on given qubit sets. *)
let place n assignments =
  List.fold_left
    (fun acc (qs, p) -> List.fold_left (fun s q -> Pauli_string.set s q p) acc qs)
    (Pauli_string.identity n) assignments

(* --- Jordan–Wigner: a_j = Z_{<j} (X_j + iY_j)/2 --- *)

let jw_ladder n j ~dagger =
  check_mode n j;
  let chain = List.init j (fun k -> k) in
  let x_part = place n [ chain, Pauli.Z; [ j ], Pauli.X ] in
  let y_part = place n [ chain, Pauli.Z; [ j ], Pauli.Y ] in
  let sign = if dagger then Complex.neg half_i else half_i in
  Pauli_sum.add (Pauli_sum.of_term half x_part) (Pauli_sum.of_term sign y_part)

(* --- Bravyi–Kitaev index sets from the Fenwick-tree construction --- *)

type fenwick = { parent : int array; lo : int array }

let fenwick_cache : (int, fenwick) Hashtbl.t = Hashtbl.create 8

(* SRL: FENWICK(l, r) attaches pivot ⌊(l+r)/2⌋ to r and recurses on both
   halves; each node then stores the contiguous mode interval [lo_j, j]. *)
let fenwick n =
  match Hashtbl.find_opt fenwick_cache n with
  | Some f -> f
  | None ->
    let parent = Array.make n (-1) in
    let rec build l r =
      if l < r then begin
        let m = (l + r) / 2 in
        parent.(m) <- r;
        build l m;
        build (m + 1) r
      end
    in
    build 0 (n - 1);
    let children = Array.make n [] in
    Array.iteri
      (fun j p -> if p >= 0 then children.(p) <- j :: children.(p))
      parent;
    let lo = Array.make n 0 in
    (* process nodes in increasing order: children of j are all < j *)
    for j = 0 to n - 1 do
      lo.(j) <- List.fold_left (fun acc c -> min acc lo.(c)) j children.(j)
    done;
    let f = { parent; lo } in
    Hashtbl.add fenwick_cache n f;
    f

let bk_update_set n j =
  check_mode n j;
  let f = fenwick n in
  let rec up k acc = if k < 0 then List.rev acc else up f.parent.(k) (k :: acc) in
  up f.parent.(j) []

let bk_flip_set n j =
  check_mode n j;
  let f = fenwick n in
  List.filter (fun k -> f.parent.(k) = j) (List.init j (fun k -> k))

(* Parity of modes [0, j): greedy cover by stored intervals, exactly the
   binary-indexed-tree prefix walk. *)
let bk_parity_set n j =
  check_mode n j;
  let f = fenwick n in
  let rec walk k acc = if k < 0 then List.rev acc else walk (f.lo.(k) - 1) (k :: acc) in
  walk (j - 1) []

let bk_remainder_set n j =
  let flips = bk_flip_set n j in
  List.filter (fun k -> not (List.mem k flips)) (bk_parity_set n j)

(* a†_j = ½·X_{U(j)} X_j Z_{P(j)} − (i/2)·X_{U(j)} Y_j Z_{R(j)} *)
let bk_ladder n j ~dagger =
  check_mode n j;
  let u = bk_update_set n j in
  let p = bk_parity_set n j in
  let r = bk_remainder_set n j in
  let x_part = place n [ u, Pauli.X; [ j ], Pauli.X; p, Pauli.Z ] in
  let y_part = place n [ u, Pauli.X; [ j ], Pauli.Y; r, Pauli.Z ] in
  let sign = if dagger then Complex.neg half_i else half_i in
  Pauli_sum.add (Pauli_sum.of_term half x_part) (Pauli_sum.of_term sign y_part)

(* One- and two-body term construction revisits the same modes over and
   over (every excitation pair/quadruple re-derives its ladder operators),
   so the encoded sums are memoized.  [Pauli_sum.t] is persistent, making
   the shared values safe to hand out; the same pattern as [fenwick_cache]
   above. *)
let ladder_cache : (encoding * int * int * bool, Pauli_sum.t) Hashtbl.t =
  Hashtbl.create 64

let ladder enc n j ~dagger =
  let key = (enc, n, j, dagger) in
  match Hashtbl.find_opt ladder_cache key with
  | Some s -> s
  | None ->
    let s =
      match enc with
      | Jordan_wigner -> jw_ladder n j ~dagger
      | Bravyi_kitaev -> bk_ladder n j ~dagger
    in
    Hashtbl.add ladder_cache key s;
    s

let creation enc n j = ladder enc n j ~dagger:true
let annihilation enc n j = ladder enc n j ~dagger:false

let number_operator enc n j =
  Pauli_sum.mul (creation enc n j) (annihilation enc n j)

let i_times t = Pauli_sum.scale Complex.i t

let excitation_single enc n ~p ~q =
  if p = q then invalid_arg "Fermion.excitation_single: equal modes";
  let t = Pauli_sum.mul (creation enc n p) (annihilation enc n q) in
  i_times (Pauli_sum.sub t (Pauli_sum.dagger t))

let excitation_double enc n ~p ~q ~r ~s =
  let modes = [ p; q; r; s ] in
  if List.length (List.sort_uniq compare modes) <> 4 then
    invalid_arg "Fermion.excitation_double: modes must be distinct";
  let t =
    Pauli_sum.mul
      (Pauli_sum.mul (creation enc n p) (creation enc n q))
      (Pauli_sum.mul (annihilation enc n r) (annihilation enc n s))
  in
  i_times (Pauli_sum.sub t (Pauli_sum.dagger t))
