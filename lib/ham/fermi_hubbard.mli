(** The Fermi–Hubbard model on an open rectangular lattice, encoded to
    qubits — the large-scale block-structured workload for the streaming
    compiler and the scaling benchmarks.

    [H = −t Σ_{⟨i,j⟩,σ} (a†_{iσ} a_{jσ} + a†_{jσ} a_{iσ})
         + U Σ_s n_{s↑} n_{s↓}]

    over [rows × cols] sites with two spin species: [2·rows·cols]
    spin-orbitals, interleaved so site [s]'s spin-up mode is [2s] and
    its spin-down mode is [2s+1] (adjacent under Jordan–Wigner, keeping
    the onsite term 2-local).  Constant energy shifts (identity terms
    from the number-operator products) are dropped. *)

val lattice :
  ?encoding:Fermion.encoding ->
  ?t:float ->
  ?u:float ->
  rows:int ->
  cols:int ->
  unit ->
  Hamiltonian.t
(** [lattice ~rows ~cols ()] over [2·rows·cols] qubits.  [t] (hopping,
    default 1) and [u] (onsite repulsion, default 4) follow the standard
    Hubbard conventions; [encoding] defaults to Jordan–Wigner.  The
    Hamiltonian records one algorithm-level block per physical
    interaction — each hopping bond per spin species and each onsite
    repulsion — so block-structured compilers group by interaction,
    mirroring how UCCSD records one block per excitation.  Raises
    [Invalid_argument] when [rows < 1], [cols < 1], or no interaction
    survives (a single site with [u = 0], or [t = 0] and [u = 0]). *)

val chain : ?encoding:Fermion.encoding -> ?t:float -> ?u:float -> int -> Hamiltonian.t
(** [chain l]: the 1D Hubbard chain, [lattice ~rows:1 ~cols:l ()]. *)
