module Prng = Phoenix_util.Prng
module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Pauli_term = Phoenix_pauli.Pauli_term

let zz_term n gamma (a, b) =
  let p =
    Pauli_string.set (Pauli_string.single n a Pauli.Z) b Pauli.Z
  in
  Pauli_term.make p (gamma /. 2.0)

let maxcut_cost ?(gamma = 1.0) g =
  let n = Graphs.num_vertices g in
  Hamiltonian.make n (List.map (zz_term n gamma) (Graphs.edges g))

let ansatz ?(seed = 1) ~layers g =
  if layers <= 0 then invalid_arg "Qaoa.ansatz: need at least one layer";
  let n = Graphs.num_vertices g in
  let rng = Prng.create seed in
  let layer _ =
    let gamma = Prng.uniform rng 0.1 1.0 and beta = Prng.uniform rng 0.1 1.0 in
    let cost = List.map (zz_term n gamma) (Graphs.edges g) in
    let mixer =
      List.init n (fun q ->
          Pauli_term.make (Pauli_string.single n q Pauli.X) (beta /. 2.0))
    in
    cost @ mixer
  in
  Hamiltonian.make n (List.concat_map layer (List.init layers (fun l -> l)))

let benchmark_suite () =
  let rand n = Graphs.random_regular ~seed:(1000 + n) ~degree:4 n in
  let reg3 n = Graphs.random_regular ~seed:(3000 + n) ~degree:3 n in
  [
    "Rand-16", rand 16;
    "Rand-20", rand 20;
    "Rand-24", rand 24;
    "Reg3-16", reg3 16;
    "Reg3-20", reg3 20;
    "Reg3-24", reg3 24;
  ]

let scaling_suite () =
  (* same seeding convention as [benchmark_suite], continued upward *)
  let reg3 n = Graphs.random_regular ~seed:(3000 + n) ~degree:3 n in
  [
    "Reg3-100", reg3 100;
    "Reg3-250", reg3 250;
    "Reg3-500", reg3 500;
    "Reg3-1000", reg3 1000;
  ]
