(** QAOA programs over graphs.

    The compilation benchmarks only involve the 2-local cost layer (the
    mixer is 1Q and free under the paper's metrics); the full alternating
    ansatz is provided for the examples. *)

val maxcut_cost : ?gamma:float -> Graphs.t -> Hamiltonian.t
(** One [γ/2 · Z_i Z_j] term per edge (the constant part of the MaxCut
    objective is dropped). *)

val ansatz : ?seed:int -> layers:int -> Graphs.t -> Hamiltonian.t
(** [p]-layer QAOA term sequence: for each layer, all cost [ZZ] terms with
    angle γ_l followed by all mixer [X] terms with angle β_l; the angles
    are seeded synthetic parameters. *)

val benchmark_suite :
  unit -> (string * Graphs.t) list
(** The six graphs of the paper's Table IV: Rand-16/20/24 (4-regular
    random) and Reg3-16/20/24 (3-regular random), seeded. *)

val scaling_suite : unit -> (string * Graphs.t) list
(** Large seeded 3-regular graphs — Reg3-100/250/500/1000 — for the
    streaming-compiler scaling benchmarks; same seeding convention as
    {!benchmark_suite}. *)
