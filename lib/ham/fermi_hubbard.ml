module Pauli_term = Phoenix_pauli.Pauli_term

(* Spin-orbital layout: site s = r·cols + c, modes 2s (up) and 2s+1
   (down).  Interleaving the spins keeps the onsite n↑n↓ term acting on
   adjacent JW modes (weight 2 after encoding) and keeps the JW parity
   strings of a horizontal hopping bond short. *)

let complex re = { Complex.re; im = 0.0 }

let lattice ?(encoding = Fermion.Jordan_wigner) ?(t = 1.0) ?(u = 4.0) ~rows
    ~cols () =
  if rows < 1 || cols < 1 then
    invalid_arg "Fermi_hubbard.lattice: rows and cols must be positive";
  let sites = rows * cols in
  let n = 2 * sites in
  let site r c = (r * cols) + c in
  let orb s spin = (2 * s) + spin in
  (* −t (a†_p a_q + a†_q a_p): Hermitian by construction, so the real
     term extraction below cannot fail. *)
  let hop p q =
    let hop =
      Pauli_sum.add
        (Pauli_sum.mul
           (Fermion.creation encoding n p)
           (Fermion.annihilation encoding n q))
        (Pauli_sum.mul
           (Fermion.creation encoding n q)
           (Fermion.annihilation encoding n p))
    in
    Pauli_sum.to_hermitian_terms (Pauli_sum.scale (complex (-.t)) hop)
  in
  (* U n↑ n↓ with the constant shift (identity term) dropped. *)
  let onsite s =
    let n_up = Fermion.number_operator encoding n (orb s 0) in
    let n_dn = Fermion.number_operator encoding n (orb s 1) in
    Pauli_sum.to_hermitian_terms
      (Pauli_sum.scale (complex u) (Pauli_sum.mul n_up n_dn))
  in
  (* One algorithm-level block per physical interaction, in a fixed
     raster order so the gadget program is deterministic. *)
  let blocks = ref [] in
  let push b = if b <> [] then blocks := b :: !blocks in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let s = site r c in
      if t <> 0.0 && c + 1 < cols then begin
        let s' = site r (c + 1) in
        push (hop (orb s 0) (orb s' 0));
        push (hop (orb s 1) (orb s' 1))
      end;
      if t <> 0.0 && r + 1 < rows then begin
        let s' = site (r + 1) c in
        push (hop (orb s 0) (orb s' 0));
        push (hop (orb s 1) (orb s' 1))
      end;
      if u <> 0.0 then push (onsite s)
    done
  done;
  if !blocks = [] then
    invalid_arg "Fermi_hubbard.lattice: no interactions (t = 0 and u = 0)";
  let to_term (p, c) = Pauli_term.make p c in
  Hamiltonian.make_blocks n (List.rev_map (List.map to_term) !blocks)

let chain ?encoding ?t ?u l = lattice ?encoding ?t ?u ~rows:1 ~cols:l ()
