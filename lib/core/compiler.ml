module Circuit = Phoenix_circuit.Circuit
module Gate = Phoenix_circuit.Gate
module Peephole = Phoenix_circuit.Peephole
module Rebase = Phoenix_circuit.Rebase
module Topology = Phoenix_topology.Topology
module Sabre = Phoenix_router.Sabre
module Hamiltonian = Phoenix_ham.Hamiltonian
module Parallel = Phoenix_util.Parallel
module Clock = Phoenix_util.Clock
module Diag = Phoenix_verify.Diag
module Equiv = Phoenix_verify.Equiv
module Structural = Phoenix_verify.Structural

type isa = Cnot_isa | Su4_isa

type target = Logical | Hardware of Topology.t

type options = {
  isa : isa;
  target : target;
  tau : float;
  lookahead : int;
  exact : bool;
  peephole : bool;
  sabre_iterations : int;
  seed : int;
  verify : bool;
  domains : int;
}

let default_options =
  {
    isa = Cnot_isa;
    target = Logical;
    tau = 1.0;
    lookahead = 10;
    exact = false;
    peephole = true;
    sabre_iterations = 1;
    seed = 2025;
    verify = false;
    domains = 0;
  }

type report = {
  circuit : Circuit.t;
  two_q_count : int;
  depth_2q : int;
  one_q_count : int;
  num_swaps : int;
  logical_two_q : int;
  num_groups : int;
  wall_time : float;
  pass_times : (string * float) list;
  diagnostics : Diag.t list;
}

let maybe_peephole options c = if options.peephole then Peephole.optimize c else c

let lower_cnot options c =
  let lowered = Rebase.to_cnot_basis (maybe_peephole options c) in
  if options.peephole then
    Peephole.optimize (Phoenix_circuit.Phase_folding.fold lowered)
  else lowered

(* Verification thresholds: per-group dense checks stay cheap, the final
   end-to-end dense check follows the paper's small-n regime. *)
let group_unitary_max_qubits = 8
let final_unitary_max_qubits = 10

(* Per-group translation validation: the scalable Pauli-propagation check
   always runs; for small registers the dense unitary comparison backs it
   up. *)
let check_group_circuit options n terms circuit =
  match Equiv.propagation_check ~exact:options.exact n terms circuit with
  | Error _ as e -> e
  | Ok () ->
    if n <= group_unitary_max_qubits then Equiv.unitary_check n terms circuit
    else Ok ()

let compile_groups ?(options = default_options) ?synthesize n groups =
  let t0 = Clock.wall_s () in
  let times = ref [] in
  let timed label f =
    let t = Clock.wall_s () in
    let r = f () in
    times := (label, Clock.wall_s () -. t) :: !times;
    r
  in
  let diags = ref [] in
  let diag ?group ~pass severity fmt =
    Printf.ksprintf
      (fun m -> diags := Diag.make ?group ~pass severity m :: !diags)
      fmt
  in
  let routing_aware = match options.target with Hardware _ -> true | Logical -> false in
  let synth =
    match synthesize with
    | Some f -> f
    | None -> fun g -> Synthesis.group_circuit ~exact:options.exact g
  in
  (* Graceful degradation: a group whose synthesized circuit fails its
     check is re-synthesized with the naive ladder (trusted, program
     order) and the recovery is recorded — the pipeline always emits a
     valid circuit instead of aborting.

     Groups are independent, so synthesis + verification fan out over a
     domain pool.  Each group's diagnostics are collected locally and
     joined in group order afterwards, so reports are byte-identical to a
     serial run whatever the scheduling.  A caller-supplied [synthesize]
     closure is not assumed to be thread-safe and keeps the serial path. *)
  let checked_group (idx, (g : Group.t)) =
    let local = ref [] in
    let record severity msg =
      local := Diag.make ~group:idx ~pass:"simplify" severity msg :: !local
    in
    let c = synth g in
    if not options.verify then { Order.group = g; circuit = c }, [], false
    else
      match check_group_circuit options n g.Group.terms c with
      | Ok () -> { Order.group = g; circuit = c }, [], false
      | Error msg ->
        record Diag.Warning
          (Printf.sprintf
             "synthesis failed verification (%s); recovered with the naive \
              ladder"
             msg);
        let fb = Synthesis.naive_gadget_circuit n g.Group.terms in
        (match check_group_circuit options n g.Group.terms fb with
        | Ok () -> ()
        | Error msg2 ->
          record Diag.Error
            (Printf.sprintf "naive fallback also failed verification (%s)"
               msg2));
        { Order.group = g; circuit = fb }, List.rev !local, true
  in
  let domains =
    match synthesize with
    | Some _ -> 1
    | None ->
      if options.domains >= 1 then options.domains else Parallel.num_domains ()
  in
  let checked =
    timed "simplify" (fun () ->
        Parallel.map ~domains checked_group
          (List.mapi (fun i g -> i, g) groups))
  in
  let blocks = List.map (fun (b, _, _) -> b) checked in
  let recovered = ref 0 in
  List.iter
    (fun (_, group_diags, rec_) ->
      if rec_ then incr recovered;
      List.iter (fun d -> diags := d :: !diags) group_diags)
    checked;
  if options.verify && !recovered = 0 then
    diag ~pass:"simplify" Diag.Info "verified %d group circuits"
      (List.length groups);
  let ordered =
    (* Reordering IR groups is a Trotter-level transformation; exact mode
       keeps program order so the output is strictly equivalent. *)
    if options.exact then blocks
    else
      timed "order" (fun () ->
          Order.order ~lookahead:options.lookahead ~routing_aware blocks)
  in
  let abstract =
    Circuit.concat_list n (List.map (fun b -> b.Order.circuit) ordered)
  in
  let abstract = timed "peephole" (fun () -> maybe_peephole options abstract) in
  let logical_cnot = timed "lower" (fun () -> lower_cnot options abstract) in
  let logical_two_q =
    match options.isa with
    | Cnot_isa -> Circuit.count_2q logical_cnot
    | Su4_isa -> Rebase.count_su4 abstract
  in
  let final_circuit, num_swaps =
    match options.target with
    | Logical ->
      (match options.isa with
      | Cnot_isa -> logical_cnot, 0
      | Su4_isa -> Rebase.to_su4 abstract, 0)
    | Hardware topo ->
      (* A fully Z-diagonal program (e.g. a QAOA cost layer) commutes
         gate-wise, so the router may reorder freely — 2QAN's lever. *)
      let z_diagonal g =
        match g with
        | Gate.G1 ((Gate.Rz _ | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg), _)
          ->
          true
        | Gate.Rpp { p0 = Phoenix_pauli.Pauli.Z; p1 = Phoenix_pauli.Pauli.Z; _ }
          ->
          true
        | Gate.G1 _ | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Swap _
        | Gate.Su4 _ ->
          false
      in
      let routed =
        timed "route" (fun () ->
            if List.for_all z_diagonal (Circuit.gates abstract) then begin
              (* multi-start over placement seed sites; keep the routing with
                 the fewest SWAPs, then lowest 2Q depth *)
              let attempt seed_site =
                let initial =
                  Phoenix_router.Placement.of_circuit ~seed_site topo abstract
                in
                Sabre.route_commuting ~initial topo abstract
              in
              let score (r : Sabre.result) =
                r.Sabre.num_swaps, Circuit.depth_2q r.Sabre.circuit
              in
              List.fold_left
                (fun best seed_site ->
                  let r = attempt seed_site in
                  if score r < score best then r else best)
                (attempt 0)
                [ 11; 23; 37; 53 ]
            end
            else
              Sabre.route_with_refinement ~iterations:options.sabre_iterations
                ~lookahead:20 ~seed:options.seed topo abstract)
      in
      let physical =
        match options.isa with
        | Cnot_isa -> lower_cnot options routed.Sabre.circuit
        | Su4_isa -> Rebase.to_su4 (maybe_peephole options routed.Sabre.circuit)
      in
      physical, routed.Sabre.num_swaps
  in
  if options.verify then
    timed "verify" (fun () ->
        let isa_basis =
          match options.isa with
          | Cnot_isa -> Structural.Cnot_basis
          | Su4_isa -> Structural.Su4_basis
        in
        let topology =
          match options.target with Hardware t -> Some t | Logical -> None
        in
        let structural =
          Structural.validate ~isa:isa_basis ?topology final_circuit
        in
        if structural = [] then
          diag ~pass:"structural" Diag.Info
            "ISA alphabet, qubit range%s verified"
            (if topology = None then "" else " and coupling-graph compliance")
        else diags := List.rev_append structural !diags;
        (* End-to-end dense check: only meaningful when nothing in the
           pipeline may exercise Trotter freedom (exact mode, no routing
           permutation) and the register is small. *)
        match options.target with
        | Logical when options.exact && n <= final_unitary_max_qubits ->
          let program = List.concat_map (fun g -> g.Group.terms) groups in
          (match Equiv.unitary_check n program final_circuit with
          | Ok () ->
            diag ~pass:"verify" Diag.Info
              "end-to-end unitary equivalence verified (n = %d)" n
          | Error msg ->
            diag ~pass:"verify" Diag.Error "end-to-end check failed: %s" msg)
        | Logical | Hardware _ -> ());
  {
    circuit = final_circuit;
    two_q_count = Circuit.count_2q final_circuit;
    depth_2q = Circuit.depth_2q final_circuit;
    one_q_count = Circuit.count_1q final_circuit;
    num_swaps;
    logical_two_q;
    num_groups = List.length groups;
    wall_time = Clock.wall_s () -. t0;
    pass_times = List.rev !times;
    diagnostics = List.rev !diags;
  }

let with_grouping_time t r =
  { r with pass_times = ("group", t) :: r.pass_times; wall_time = r.wall_time +. t }

let compile_gadgets ?options ?synthesize n gadgets =
  let exact = (Option.value ~default:default_options options).exact in
  let t0 = Clock.wall_s () in
  let groups = Group.group_gadgets ~exact n gadgets in
  let tg = Clock.wall_s () -. t0 in
  with_grouping_time tg (compile_groups ?options ?synthesize n groups)

let compile_blocks ?options ?synthesize n blocks =
  let t0 = Clock.wall_s () in
  let groups = Group.of_blocks n blocks in
  let tg = Clock.wall_s () -. t0 in
  with_grouping_time tg (compile_groups ?options ?synthesize n groups)

let compile ?options h =
  let tau = (Option.value ~default:default_options options).tau in
  let n = Hamiltonian.num_qubits h in
  match Hamiltonian.term_blocks h with
  | Some blocks ->
    let to_gadget (t : Phoenix_pauli.Pauli_term.t) =
      t.Phoenix_pauli.Pauli_term.pauli,
      2.0 *. t.Phoenix_pauli.Pauli_term.coeff *. tau
    in
    compile_blocks ?options n (List.map (List.map to_gadget) blocks)
  | None -> compile_gadgets ?options n (Hamiltonian.trotter_gadgets ~tau h)
