module Circuit = Phoenix_circuit.Circuit
module Gate = Phoenix_circuit.Gate
module Rebase = Phoenix_circuit.Rebase
module Topology = Phoenix_topology.Topology
module Sabre = Phoenix_router.Sabre
module Hamiltonian = Phoenix_ham.Hamiltonian
module Parallel = Phoenix_util.Parallel
module Clock = Phoenix_util.Clock
module Diag = Phoenix_verify.Diag
module Equiv = Phoenix_verify.Equiv
module Structural = Phoenix_verify.Structural
module Cache = Phoenix_cache.Cache

(* The option records are defined by the pass-manager core and re-exported
   here so every pipeline — PHOENIX and baselines alike — shares them. *)

type isa = Pass.isa = Cnot_isa | Su4_isa

type target = Pass.target = Logical | Hardware of Topology.t

type options = Pass.options = {
  isa : isa;
  target : target;
  tau : float;
  lookahead : int;
  exact : bool;
  peephole : bool;
  sabre_iterations : int;
  seed : int;
  verify : bool;
  domains : int;
  cache : Cache.tier;
  budget : Phoenix_util.Budget.t;
}

let default_options = Pass.default_options

type report = {
  circuit : Circuit.t;
  two_q_count : int;
  depth_2q : int;
  one_q_count : int;
  num_swaps : int;
  logical_two_q : int;
  num_groups : int;
  wall_time : float;
  pass_times : (string * float) list;
  diagnostics : Diag.t list;
  trace : Pass.trace;
  cache_stats : Cache.stats;
      (** synthesis-cache counter deltas attributable to this run *)
  degradations : Resilience.event list;
      (** budget-driven ladder steps taken during this run, in order *)
  layout : Phoenix_router.Layout.t option;
      (** final qubit placement for hardware compiles; [None] for
          logical ones *)
}

(* Verification thresholds: per-group dense checks stay cheap, the final
   end-to-end dense check follows the paper's small-n regime. *)
let group_unitary_max_qubits = 8
let final_unitary_max_qubits = 10

(* Per-group translation validation: the scalable Pauli-propagation check
   always runs; for small registers the dense unitary comparison backs it
   up.  The dense comparison is the degradable rung: when the budget
   expires inside it, the group keeps its propagation certificate and a
   ladder event records the step.  The propagation check itself carries
   no checkpoints — the terminal rung always completes. *)
let check_group_circuit (options : options) n terms circuit =
  match Equiv.propagation_check ~exact:options.exact n terms circuit with
  | Error _ as e -> (e, [])
  | Ok () ->
    if n > group_unitary_max_qubits then (Ok (), [])
    else (
      match
        Resilience.attempt (fun () -> Equiv.unitary_check n terms circuit)
      with
      | Ok r -> (r, [])
      | Error _ ->
        ( Ok (),
          [
            Resilience.event ~subject:"equivalence-check"
              ~from_rung:"dense-unitary" ~to_rung:"pauli-propagation" ();
          ] ))

(* --- PHOENIX-specific passes ------------------------------------------ *)

(* Graceful degradation: a group whose synthesized circuit fails its
   check is re-synthesized with the naive ladder (trusted, program
   order) and the recovery is recorded — the pipeline always emits a
   valid circuit instead of aborting.

   Groups are independent, so synthesis + verification fan out over a
   domain pool.  Each group's diagnostics are collected locally and
   joined in group order afterwards, so reports are byte-identical to a
   serial run whatever the scheduling.  A caller-supplied [synthesize]
   closure is not assumed to be thread-safe and keeps the serial path.

   The content-addressed synthesis cache wraps the synthesis closure:
   consulted before simplification, populated after.  A hit replays a
   previously synthesized circuit that is bit-identical to what a cold
   synthesis would produce (see [Phoenix_cache.Cache]), so the pipeline
   output does not depend on the hit pattern; cache I/O faults surface
   as per-group [Warning] diagnostics, never as failures.  A custom
   [synthesize] closure bypasses the cache — its results are not
   content-addressed by the group tableau. *)
let simplify_pass ?synthesize () =
  Pass.make
    ~certify:(fun ~before ~after:_ ->
      if before.Pass.options.exact then Pass.Preserving else Pass.Reordering)
    ~name:"simplify"
    ~description:
      "group-wise BSF simplification (Clifford2Q conjugation search) with \
       content-addressed synthesis cache, per-group translation validation \
       and naive-ladder fallback"
    (fun ctx ->
      let options = ctx.Pass.options in
      let n = ctx.Pass.n in
      let synth =
        match synthesize with
        | Some f -> f
        | None -> fun g -> Synthesis.group_circuit ~exact:options.exact g
      in
      let tier =
        match synthesize with Some _ -> Cache.Off | None -> options.cache
      in
      let checked_group (idx, (g : Group.t)) =
        let local = ref [] in
        let events = ref [] in
        let record severity msg =
          local := Diag.make ~group:idx ~pass:"simplify" severity msg :: !local
        in
        let cache_record d = local := { d with Diag.group = Some idx } :: !local in
        (* Greedy synthesis is the top rung; a budget expiry inside it
           degrades this group to the naive ladder (trusted, bounded
           time, no search).  Degraded results are never stored in the
           cache: cached entries must stay bit-identical to what a cold
           greedy synthesis would produce. *)
        let degrade_synth () =
          record Diag.Warning
            "synthesis budget exhausted; degraded greedy -> naive-ladder";
          events :=
            Resilience.event ~group:idx ~subject:"synthesis"
              ~from_rung:"greedy" ~to_rung:"naive-ladder" ()
            :: !events;
          Synthesis.naive_gadget_circuit n g.Group.terms
        in
        let c =
          match tier with
          | Cache.Off -> (
            match Resilience.attempt (fun () -> synth g) with
            | Ok c -> c
            | Error _ -> degrade_synth ())
          | Cache.Mem | Cache.Disk -> (
            let key =
              Cache.key_of_terms ~exact:options.exact n g.Group.terms
            in
            match Cache.lookup ~record:cache_record ~tier ~n key with
            | Some cached -> cached
            | None -> (
              match Resilience.attempt (fun () -> synth g) with
              | Ok c ->
                Cache.store ~record:cache_record ~tier key c;
                c
              | Error _ -> degrade_synth ()))
        in
        let check terms circuit =
          let r, evs = check_group_circuit options n terms circuit in
          if evs <> [] then
            record Diag.Warning
              "equivalence-check budget exhausted; degraded dense-unitary -> \
               pauli-propagation (certificate passed)";
          events :=
            List.rev_append
              (List.map (fun e -> { e with Resilience.group = Some idx }) evs)
              !events;
          r
        in
        if not options.verify then
          ({ Order.group = g; circuit = c }, List.rev !local, false,
           List.rev !events)
        else
          match check g.Group.terms c with
          | Ok () ->
            ({ Order.group = g; circuit = c }, List.rev !local, false,
             List.rev !events)
          | Error msg ->
            record Diag.Warning
              (Printf.sprintf
                 "synthesis failed verification (%s); recovered with the \
                  naive ladder"
                 msg);
            let fb = Synthesis.naive_gadget_circuit n g.Group.terms in
            (match check g.Group.terms fb with
            | Ok () -> ()
            | Error msg2 ->
              record Diag.Error
                (Printf.sprintf "naive fallback also failed verification (%s)"
                   msg2));
            ({ Order.group = g; circuit = fb }, List.rev !local, true,
             List.rev !events)
      in
      let domains =
        match synthesize with
        | Some _ -> 1
        | None ->
          if options.domains >= 1 then options.domains
          else Parallel.num_domains ()
      in
      let health_before = Cache.health () in
      let checked =
        Parallel.map ~domains checked_group
          (List.mapi (fun i g -> (i, g)) ctx.Pass.groups)
      in
      let blocks = List.map (fun (b, _, _, _) -> b) checked in
      let recovered = ref 0 in
      let ctx =
        List.fold_left
          (fun ctx (_, group_diags, rec_, group_events) ->
            if rec_ then incr recovered;
            let ctx = List.fold_left Pass.add_diag ctx group_diags in
            List.fold_left Pass.add_degradation ctx group_events)
          ctx checked
      in
      let ctx = { ctx with Pass.blocks; Pass.recovered = !recovered } in
      (* The cache's own ladder (disk -> mem -> off) is global health
         state; surface any step it took during this pass. *)
      let ctx =
        let rung = function
          | Cache.Full -> "disk"
          | Cache.Mem_only -> "mem"
          | Cache.No_cache -> "off"
        in
        let pos = function
          | Cache.Full -> 0
          | Cache.Mem_only -> 1
          | Cache.No_cache -> 2
        in
        let before = pos health_before
        and after = pos (Cache.health ()) in
        let rungs = [| Cache.Full; Cache.Mem_only; Cache.No_cache |] in
        let ctx = ref ctx in
        for p = before to after - 1 do
          ctx :=
            Pass.add_degradation
              (Pass.diagf ~pass:"simplify" Diag.Warning !ctx
                 "synthesis cache degraded %s -> %s" (rung rungs.(p))
                 (rung rungs.(p + 1)))
              (Resilience.event ~subject:"cache-tier" ~from_rung:(rung rungs.(p))
                 ~to_rung:(rung rungs.(p + 1)) ())
        done;
        !ctx
      in
      if options.verify && !recovered = 0 then
        Pass.diagf ~pass:"simplify" Diag.Info ctx "verified %d group circuits"
          (List.length ctx.Pass.groups)
      else ctx)

let order_pass =
  Pass.make
    ~certify:(fun ~before:_ ~after:_ -> Pass.Reordering)
    ~name:"order"
    ~description:
      "Tetris-like IR-group ordering (lookahead window, routing-aware on \
       hardware targets)"
    (fun ctx ->
      let routing_aware =
        match ctx.Pass.options.target with
        | Hardware _ -> true
        | Logical -> false
      in
      {
        ctx with
        Pass.blocks =
          Order.order ~lookahead:ctx.Pass.options.lookahead ~routing_aware
            ctx.Pass.blocks;
      })

let lower_pass =
  Pass.make
    ~certify:(fun ~before ~after:_ ->
      match before.Pass.options.target with
      | Pass.Logical -> Pass.Preserving
      | Pass.Hardware _ -> Pass.Unchanged)
    ~name:"lower"
    ~description:
      "ISA lowering: CNOT rebase + phase folding, or SU(4) fusion; on \
       hardware targets only the pre-routing 2Q count is recorded"
    (fun ctx ->
      let options = ctx.Pass.options in
      match (options.target, options.isa) with
      | Logical, Cnot_isa ->
        let c = Passes.lower_cnot options ctx.Pass.circuit in
        { ctx with Pass.circuit = c; Pass.logical_two_q = Circuit.count_2q c }
      | Logical, Su4_isa ->
        let logical_two_q = Rebase.count_su4 ctx.Pass.circuit in
        {
          ctx with
          Pass.circuit = Rebase.to_su4 ctx.Pass.circuit;
          Pass.logical_two_q = logical_two_q;
        }
      | Hardware _, Cnot_isa ->
        {
          ctx with
          Pass.logical_two_q =
            Circuit.count_2q (Passes.lower_cnot options ctx.Pass.circuit);
        }
      | Hardware _, Su4_isa ->
        { ctx with Pass.logical_two_q = Rebase.count_su4 ctx.Pass.circuit })

let route_pass =
  Pass.make
    ~certify:(fun ~before ~after ->
      match before.Pass.options.target with
      | Pass.Logical -> Pass.Unchanged
      | Pass.Hardware _ -> Passes.certify_routing ~before ~after)
    ~name:"route"
    ~description:
      "hardware-aware routing (commuting-set multistart for Z-diagonal \
       programs, SABRE refinement otherwise) and physical ISA lowering"
    (fun ctx ->
      match ctx.Pass.options.target with
      | Logical -> ctx
      | Hardware topo ->
        let options = ctx.Pass.options in
        let abstract = ctx.Pass.circuit in
        (* A fully Z-diagonal program (e.g. a QAOA cost layer) commutes
           gate-wise, so the router may reorder freely — 2QAN's lever. *)
        let z_diagonal g =
          match g with
          | Gate.G1
              ((Gate.Rz _ | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg), _)
            ->
            true
          | Gate.Rpp
              { p0 = Phoenix_pauli.Pauli.Z; p1 = Phoenix_pauli.Pauli.Z; _ } ->
            true
          | Gate.G1 _ | Gate.Cnot _ | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Swap _
          | Gate.Su4 _ ->
            false
        in
        let routed =
          if List.for_all z_diagonal (Circuit.gates abstract) then begin
            (* multi-start over placement seed sites; keep the routing with
               the fewest SWAPs, then lowest 2Q depth *)
            let attempt seed_site =
              let initial =
                Phoenix_router.Placement.of_circuit ~seed_site topo abstract
              in
              Sabre.route_commuting ~initial topo abstract
            in
            let score (r : Sabre.result) =
              (r.Sabre.num_swaps, Circuit.depth_2q r.Sabre.circuit)
            in
            List.fold_left
              (fun best seed_site ->
                let r = attempt seed_site in
                if score r < score best then r else best)
              (attempt 0)
              [ 11; 23; 37; 53 ]
          end
          else
            Sabre.route_with_refinement ~iterations:options.sabre_iterations
              ~lookahead:20 ~seed:options.seed topo abstract
        in
        let physical =
          match options.isa with
          | Cnot_isa -> Passes.lower_cnot options routed.Sabre.circuit
          | Su4_isa ->
            Rebase.to_su4 (Passes.maybe_peephole options routed.Sabre.circuit)
        in
        {
          ctx with
          Pass.circuit = physical;
          Pass.num_swaps = routed.Sabre.num_swaps;
          Pass.layout = Some routed.Sabre.initial_layout;
        })

let verify_pass =
  Pass.make ~certify:Passes.certify_unchanged ~name:"verify"
    ~description:
      "final translation validation: structural/ISA/coupling checks, plus \
       an end-to-end dense comparison in exact logical mode on small \
       registers"
    (fun ctx ->
      let options = ctx.Pass.options in
      let n = ctx.Pass.n in
      let isa_basis =
        match options.isa with
        | Cnot_isa -> Structural.Cnot_basis
        | Su4_isa -> Structural.Su4_basis
      in
      let topology =
        match options.target with Hardware t -> Some t | Logical -> None
      in
      let structural =
        Structural.validate ~isa:isa_basis ?topology ctx.Pass.circuit
      in
      let ctx =
        if structural = [] then
          Pass.diagf ~pass:"structural" Diag.Info ctx
            "ISA alphabet, qubit range%s verified"
            (if topology = None then ""
             else " and coupling-graph compliance")
        else
          {
            ctx with
            Pass.diagnostics = List.rev_append structural ctx.Pass.diagnostics;
          }
      in
      (* End-to-end dense check: only meaningful when nothing in the
         pipeline may exercise Trotter freedom (exact mode, no routing
         permutation) and the register is small. *)
      match options.target with
      | Logical when options.exact && n <= final_unitary_max_qubits -> (
        let program =
          List.concat_map (fun g -> g.Group.terms) ctx.Pass.groups
        in
        match
          Resilience.attempt (fun () ->
              Equiv.unitary_check n program ctx.Pass.circuit)
        with
        | Ok (Ok ()) ->
          Pass.diagf ~pass:"verify" Diag.Info ctx
            "end-to-end unitary equivalence verified (n = %d)" n
        | Ok (Error msg) ->
          Pass.diagf ~pass:"verify" Diag.Error ctx
            "end-to-end check failed: %s" msg
        | Error _ -> (
          (* Budget ran out inside the dense comparison: keep the
             scalable propagation certificate instead of giving up. *)
          let ctx =
            Pass.add_degradation ctx
              (Resilience.event ~subject:"equivalence-check"
                 ~from_rung:"dense-unitary" ~to_rung:"pauli-propagation" ())
          in
          match Equiv.propagation_check ~exact:true n program ctx.Pass.circuit with
          | Ok () ->
            Pass.diagf ~pass:"verify" Diag.Warning ctx
              "budget exhausted during dense check; degraded to the \
               Pauli-propagation certificate (passed)"
          | Error msg ->
            Pass.diagf ~pass:"verify" Diag.Error ctx
              "end-to-end check failed (propagation fallback): %s" msg))
      | Logical | Hardware _ -> ctx)

(* --- the canonical pipeline ------------------------------------------- *)

let passes ?synthesize ?(with_grouping = true) (options : options) =
  List.concat
    [
      (if with_grouping then [ Passes.group ] else []);
      [ simplify_pass ?synthesize () ];
      (* Reordering IR groups is a Trotter-level transformation; exact
         mode keeps program order so the output is strictly equivalent. *)
      (if options.exact then [] else [ order_pass ]);
      [ Passes.assemble; Passes.peephole; lower_pass ];
      (match options.target with
      | Hardware _ -> [ route_pass ]
      | Logical -> []);
      (if options.verify then [ verify_pass ] else []);
    ]

let report_of_ctx ?(cache_stats = Cache.stats_zero) ~wall_time (ctx : Pass.ctx)
    trace =
  {
    circuit = ctx.Pass.circuit;
    two_q_count = Circuit.count_2q ctx.Pass.circuit;
    depth_2q = Circuit.depth_2q ctx.Pass.circuit;
    one_q_count = Circuit.count_1q ctx.Pass.circuit;
    num_swaps = ctx.Pass.num_swaps;
    logical_two_q = ctx.Pass.logical_two_q;
    num_groups = List.length ctx.Pass.groups;
    wall_time;
    pass_times =
      List.map (fun (e : Pass.trace_entry) -> (e.Pass.pass, e.Pass.seconds)) trace;
    diagnostics = List.rev ctx.Pass.diagnostics;
    trace;
    cache_stats;
    degradations = List.rev ctx.Pass.degradations;
    layout = ctx.Pass.layout;
  }

let run_pipeline ?protect ?hooks ?synthesize ~with_grouping options ctx =
  let t0 = Clock.monotonic_s () in
  let before = Cache.stats () in
  let ctx, trace =
    Pass.run ?protect ?hooks (passes ?synthesize ~with_grouping options) ctx
  in
  report_of_ctx
    ~cache_stats:(Cache.diff (Cache.stats ()) before)
    ~wall_time:(Clock.monotonic_s () -. t0) ctx trace

let compile_groups ?(options = default_options) ?protect ?hooks ?synthesize n
    groups =
  run_pipeline ?protect ?hooks ?synthesize ~with_grouping:false options
    (Pass.init ~groups options n)

let compile_gadgets ?(options = default_options) ?protect ?hooks ?synthesize n
    gadgets =
  run_pipeline ?protect ?hooks ?synthesize ~with_grouping:true options
    (Pass.init ~gadgets options n)

let compile_blocks ?(options = default_options) ?protect ?hooks ?synthesize n
    blocks =
  run_pipeline ?protect ?hooks ?synthesize ~with_grouping:true options
    (Pass.init ~gadgets:(List.concat blocks) ~term_blocks:blocks options n)

(* --- streaming compilation -------------------------------------------- *)

(* One unit of streaming work: a gadget program plus (optionally) its
   algorithm-level block structure, mirroring the [compile_gadgets] /
   [compile_blocks] split — grouping semantics differ between the two,
   so the distinction must survive chunking. *)
type chunk = {
  chunk_gadgets : (Phoenix_pauli.Pauli_string.t * float) list;
  chunk_blocks : (Phoenix_pauli.Pauli_string.t * float) list list option;
}

let chunk_of_gadgets gadgets = { chunk_gadgets = gadgets; chunk_blocks = None }

let chunk_of_blocks blocks =
  { chunk_gadgets = List.concat blocks; chunk_blocks = Some blocks }

type stream_report = {
  s_report : report;
  s_chunks : int;
  s_gadgets : int;
  s_peak_heap_words : int;
  s_chunk_two_q : int list;
}

(* Merge per-chunk traces into one pipeline-shaped trace: one entry per
   pass name in first-appearance order, summing seconds, allocation and
   metric deltas and maxing the heap high-water mark.  The before/after
   snapshots are re-telescoped from the summed deltas so the trace keeps
   the telescoping invariant documented on [Pass.trace]. *)
let aggregate_traces traces =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (e : Pass.trace_entry) ->
         let d = Pass.entry_delta e in
         match Hashtbl.find_opt tbl e.Pass.pass with
         | None ->
           order := e.Pass.pass :: !order;
           Hashtbl.add tbl e.Pass.pass
             (e.Pass.seconds, e.Pass.alloc_words, e.Pass.top_heap_words, d)
         | Some (s, a, th, acc) ->
           Hashtbl.replace tbl e.Pass.pass
             ( s +. e.Pass.seconds,
               a +. e.Pass.alloc_words,
               max th e.Pass.top_heap_words,
               Pass.metrics_add acc d )))
    traces;
  let running = ref Pass.metrics_zero in
  (* first-seen pass order; the fold must run in that order too, so the
     re-telescoped snapshots accumulate left to right *)
  List.map
    (fun name ->
      let seconds, alloc_words, top_heap_words, d = Hashtbl.find tbl name in
      let before = !running in
      let after = Pass.metrics_add before d in
      running := after;
      { Pass.pass = name; seconds; alloc_words; top_heap_words; before; after })
    (List.rev !order)

let compile_stream ?(options = default_options) ?protect ?hooks
    ?(keep_circuit = true) ?emit ?pipeline n chunks =
  (match options.target with
  | Logical -> ()
  | Hardware _ ->
    invalid_arg
      "Compiler.compile_stream: streaming requires a logical target (chunks \
       route independently, and concatenating per-chunk placements is \
       unsound)");
  let pipeline =
    match pipeline with
    | Some mk -> mk
    | None -> fun options -> passes ~with_grouping:true options
  in
  let t0 = Clock.monotonic_s () in
  let cache_before = Cache.stats () in
  let circuits = ref [] in
  let traces = ref [] in
  let chunks_n = ref 0 in
  let gadgets_n = ref 0 in
  let peak = ref 0 in
  let two_q_rev = ref [] in
  let rev_diags = ref [] in
  let rev_degr = ref [] in
  let groups_n = ref 0 in
  let logical2q = ref 0 in
  let agg = ref Pass.metrics_zero in
  Seq.iter
    (fun chunk ->
      incr chunks_n;
      gadgets_n := !gadgets_n + List.length chunk.chunk_gadgets;
      let ctx =
        match chunk.chunk_blocks with
        | Some blocks ->
          Pass.init ~gadgets:chunk.chunk_gadgets ~term_blocks:blocks options n
        | None -> Pass.init ~gadgets:chunk.chunk_gadgets options n
      in
      let ctx, trace = Pass.run ?protect ?hooks (pipeline options) ctx in
      traces := trace :: !traces;
      let c = ctx.Pass.circuit in
      two_q_rev := Circuit.count_2q c :: !two_q_rev;
      agg := Pass.metrics_add !agg (Pass.metrics_of c);
      (* Both context lists are reverse chronological; stacking each
         chunk's list on top keeps the whole accumulation reverse
         chronological, so one final [List.rev] restores run order. *)
      rev_diags := ctx.Pass.diagnostics @ !rev_diags;
      rev_degr := ctx.Pass.degradations @ !rev_degr;
      groups_n := !groups_n + List.length ctx.Pass.groups;
      logical2q := !logical2q + ctx.Pass.logical_two_q;
      (match emit with Some f -> f c | None -> ());
      if keep_circuit then circuits := c :: !circuits;
      (* Peak working set: the major heap size at every chunk boundary.
         With [keep_circuit = false] all per-chunk state is dead here,
         so this tracks the streaming mode's bounded footprint. *)
      let st = Gc.quick_stat () in
      if st.Gc.heap_words > !peak then peak := st.Gc.heap_words)
    chunks;
  let circuit =
    if keep_circuit then Circuit.concat_list n (List.rev !circuits)
    else Circuit.empty n
  in
  let trace = aggregate_traces (List.rev !traces) in
  (* Gate counts are additive under concatenation, so the aggregated
     metrics match the concatenated circuit exactly; 2Q depth is not
     additive, so report it from the real circuit when we kept one and
     as the per-chunk sum (an upper bound) otherwise. *)
  let final = if keep_circuit then Pass.metrics_of circuit else !agg in
  let report =
    {
      circuit;
      two_q_count = final.Pass.two_q;
      depth_2q = final.Pass.depth_2q;
      one_q_count = final.Pass.one_q;
      num_swaps = 0;
      logical_two_q = !logical2q;
      num_groups = !groups_n;
      wall_time = Clock.monotonic_s () -. t0;
      pass_times =
        List.map (fun (e : Pass.trace_entry) -> (e.Pass.pass, e.Pass.seconds)) trace;
      diagnostics = List.rev !rev_diags;
      trace;
      cache_stats = Cache.diff (Cache.stats ()) cache_before;
      degradations = List.rev !rev_degr;
      layout = None;
    }
  in
  {
    s_report = report;
    s_chunks = !chunks_n;
    s_gadgets = !gadgets_n;
    s_peak_heap_words = !peak;
    s_chunk_two_q = List.rev !two_q_rev;
  }

(* --- parametric compilation ------------------------------------------- *)

module Angle = Phoenix_pauli.Angle

(* A compiled circuit whose parameter-derived rotation angles are still
   symbolic [Angle] slots.  [Template.bind] patches the slots in O(slot
   sites) — no re-synthesis, re-grouping, or re-routing — and is
   bit-identical to a from-scratch compile at the bound angles (for
   generic, i.e. non-degenerate, parameter values; see [Angle]). *)
type template = {
  t_n : int;
  t_params : string array;
  t_prototype : Gate.t array;
      (* the slotted circuit's gates, in order; bind copies this *)
  t_slot_positions : int array;
      (* indices into [t_prototype] of gates carrying at least one slot *)
  t_slot_count : int; (* distinct slot expressions across the circuit *)
  t_report : report; (* the template compile's report (slotted circuit) *)
}

(* Terminal pass of a template compile: certify the slotted circuit.
   Every slot must resolve to an in-arena expression over the declared
   parameters — anything else means a slot leaked in from a foreign
   process or the caller's parameter naming is out of sync, and binding
   would fail (or silently read the wrong parameter) later. *)
let parametrize_pass ~params ~verify_requested ~certified =
  Pass.make ~certify:Passes.certify_unchanged ~name:"parametrize"
    ~description:
      "certify the slotted circuit: count slot sites, check every slot \
       resolves over the declared parameters"
    (fun ctx ->
      let arity = Array.length params in
      let ids = Hashtbl.create 32 in
      let sites = ref 0 in
      let fail fmt =
        Printf.ksprintf
          (fun error -> raise (Pass.Failed { pass = "parametrize"; error }))
          fmt
      in
      List.iter
        (fun g ->
          Gate.fold_angles
            (fun () theta ->
              match Angle.view theta with
              | Angle.Const _ -> ()
              | Angle.Slot { id; _ } ->
                incr sites;
                Hashtbl.replace ids id ();
                if not (Angle.known theta) then
                  fail "slot #%d is not a known angle expression" id;
                let k = Angle.max_param_index theta in
                if k >= arity then
                  fail
                    "slot #%d references parameter %d but the template \
                     declares only %d parameter%s"
                    id k arity
                    (if arity = 1 then "" else "s"))
            () g)
        (Circuit.gates ctx.Pass.circuit);
      let ctx =
        Pass.diagf ~pass:"parametrize" Diag.Info ctx
          "template over %d parameter%s: %d slot site%s (%d distinct slots)"
          arity
          (if arity = 1 then "" else "s")
          !sites
          (if !sites = 1 then "" else "s")
          (Hashtbl.length ids)
      in
      if certified then
        Pass.diagf ~pass:"parametrize" Diag.Info ctx
          "symbolic certification: every pass boundary checked over the \
           angle arena, valid for all parameter bindings"
      else if verify_requested then
        Pass.diagf ~pass:"parametrize" Diag.Info ctx
          "verification deferred: slotted circuits cannot be checked \
           densely; verify the bound circuits instead"
      else ctx)

let count_template_slots gates =
  let ids = Hashtbl.create 32 in
  Array.iter
    (fun g ->
      Gate.fold_angles
        (fun () theta ->
          match Angle.view theta with
          | Angle.Const _ -> ()
          | Angle.Slot { id; _ } -> Hashtbl.replace ids id ())
        () g)
    gates;
  Hashtbl.length ids

let compile_template ?(options = default_options) ?protect ?hooks
    ?(certified = false) ~params n blocks =
  (* Dense/propagation verification is meaningless on symbolic angles;
     it is deferred to the bound circuits (and noted in the report) —
     unless the caller runs the symbolic certifier hook ([certified]),
     which subsumes the deferral: the certificate holds for every
     binding at once. *)
  let verify_requested = options.verify in
  let options = { options with verify = false } in
  let t0 = Clock.monotonic_s () in
  let before = Cache.stats () in
  let ctx =
    Pass.init ~gadgets:(List.concat blocks) ~term_blocks:blocks options n
  in
  let ctx, trace =
    Pass.run ?protect ?hooks
      (passes ~with_grouping:true options
      @ [ parametrize_pass ~params ~verify_requested ~certified ])
      ctx
  in
  let report =
    report_of_ctx
      ~cache_stats:(Cache.diff (Cache.stats ()) before)
      ~wall_time:(Clock.monotonic_s () -. t0) ctx trace
  in
  (* Degraded results are never templated: a template is replayed on
     every future bind, so baking in a budget-driven fallback (naive
     ladder, parked cache tier) would make the degradation permanent
     instead of transient.  Callers should re-run with a fresh budget. *)
  (match report.degradations with
  | [] -> ()
  | evs ->
    raise
      (Pass.Failed
         {
           pass = "parametrize";
           error =
             Printf.sprintf
               "refusing to template a degraded compile (%s); templates \
                must replay full-quality results"
               (Resilience.aggregate_to_string evs);
         }));
  let prototype = Array.of_list (Circuit.gates report.circuit) in
  let slot_positions =
    let acc = ref [] in
    Array.iteri
      (fun i g -> if Gate.has_slot g then acc := i :: !acc)
      prototype;
    Array.of_list (List.rev !acc)
  in
  {
    (* After hardware routing the circuit lives on the physical
       register, which may be larger than the logical input [n]. *)
    t_n = Circuit.num_qubits report.circuit;
    t_params = Array.copy params;
    t_prototype = prototype;
    t_slot_positions = slot_positions;
    t_slot_count = count_template_slots prototype;
    t_report = report;
  }

let compile ?(options = default_options) ?protect ?hooks h =
  let n = Hamiltonian.num_qubits h in
  match Hamiltonian.term_blocks h with
  | Some blocks ->
    let to_gadget (t : Phoenix_pauli.Pauli_term.t) =
      ( t.Phoenix_pauli.Pauli_term.pauli,
        2.0 *. t.Phoenix_pauli.Pauli_term.coeff *. options.tau )
    in
    compile_blocks ~options ?protect ?hooks n
      (List.map (List.map to_gadget) blocks)
  | None ->
    compile_gadgets ~options ?protect ?hooks n
      (Hamiltonian.trotter_gadgets ~tau:options.tau h)

let chunk_of_hamiltonian options h =
  match Hamiltonian.term_blocks h with
  | Some blocks ->
    let to_gadget (t : Phoenix_pauli.Pauli_term.t) =
      ( t.Phoenix_pauli.Pauli_term.pauli,
        2.0 *. t.Phoenix_pauli.Pauli_term.coeff *. options.tau )
    in
    chunk_of_blocks (List.map (List.map to_gadget) blocks)
  | None -> chunk_of_gadgets (Hamiltonian.trotter_gadgets ~tau:options.tau h)

let stream_of_hamiltonian ?(steps = 1) options h =
  if steps < 1 then
    invalid_arg "Compiler.stream_of_hamiltonian: steps must be positive";
  (* Build the per-step chunk once; every Trotter step conjugates the
     same gadget program, so the stream repeats it lazily. *)
  let chunk = chunk_of_hamiltonian options h in
  Seq.init steps (fun _ -> chunk)
