(** Shared passes: the transformations common to PHOENIX and the
    baseline pipelines.  Baseline-specific passes live with their
    compilers (see {!Phoenix_baselines}); PHOENIX-specific ones in
    {!Compiler}. *)

val maybe_peephole :
  Pass.options -> Phoenix_circuit.Circuit.t -> Phoenix_circuit.Circuit.t
(** The O3-style cleanup, gated on [options.peephole]. *)

val lower_cnot :
  Pass.options -> Phoenix_circuit.Circuit.t -> Phoenix_circuit.Circuit.t
(** Full CNOT-basis lowering: peephole, rebase, phase folding, peephole
    (each cleanup gated on [options.peephole]). *)

val logical_isa_count : Pass.options -> Phoenix_circuit.Circuit.t -> int
(** 2Q count of a logical circuit under the target ISA (CNOTs, or fused
    SU(4) blocks). *)

(** {1 Certificate helpers}

    Shared [?certify] callbacks for {!Pass.make} (see
    {!Pass.certificate}); also used by the baseline pipelines. *)

val certify_unchanged : before:Pass.ctx -> after:Pass.ctx -> Pass.certificate
val certify_preserving : before:Pass.ctx -> after:Pass.ctx -> Pass.certificate

val certify_routing : before:Pass.ctx -> after:Pass.ctx -> Pass.certificate
(** Claims {!Pass.Routing} with the layout the pass installed in
    [after.layout]; degrades to {!Pass.Reordering} (which the checker
    then refutes on the register mismatch) when no layout was
    recorded. *)

val group : Pass.t
(** Partition [ctx.gadgets] (or adopt [ctx.term_blocks]) into IR groups.
    Honors [options.exact] for flat gadget programs. *)

val assemble : Pass.t
(** [ctx.blocks] concatenated in their current order becomes
    [ctx.circuit]. *)

val peephole : Pass.t
(** {!maybe_peephole} applied to [ctx.circuit]. *)

val rebase : Pass.t
(** Rebase a logical circuit to the target ISA and record
    [logical_two_q].  The identity on circuits already in CNOT basis
    under [Cnot_isa]. *)

val route_sabre : Pass.t
(** Generic SABRE routing for hardware targets (the baseline routing
    path): records the pre-routing ISA count as [logical_two_q], routes
    with layout refinement, and stores layout and swap count.  The
    identity on logical targets. *)

val lower_routed : Pass.t
(** Post-routing ISA lowering: SWAP expansion + CNOT rebase + peephole,
    or SU(4) fusion. *)

val verify_structural : Pass.t
(** Structural validation of [ctx.circuit] against the options' ISA and
    topology, recording violations (or a pass-confirming [Info]) as
    diagnostics.  Include in a pipeline only when [options.verify]. *)
