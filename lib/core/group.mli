(** IR grouping (§IV-A): Pauli exponentiations are grouped by the exact
    set of qubits they act on non-trivially — the same blocking used by
    Paulihedral and Tetris.  Groups keep first-occurrence order and terms
    keep program order within a group. *)

type t = {
  n : int;
  terms : (Phoenix_pauli.Pauli_string.t * float) list;  (** program order *)
  support : Phoenix_util.Bitvec.t;
}

val weight : t -> int
(** Support size — the "width" used to pre-arrange groups. *)

val group_gadgets :
  ?exact:bool -> int -> (Phoenix_pauli.Pauli_string.t * float) list -> t list
(** Partition a gadget program into support-keyed groups.  Identity
    strings are dropped (they are global phases).

    With [~exact:true] the grouping is an exact program transformation:
    a gadget joins an earlier group with the same support only if it
    commutes with every term of every group in between, so merging never
    moves it past a non-commuting gadget.  The default greedy grouping
    merges all same-support gadgets regardless, which is only
    Trotter-equivalent. *)

val of_blocks :
  int -> (Phoenix_pauli.Pauli_string.t * float) list list -> t list
(** Adopt algorithm-level blocks (e.g. one UCCSD excitation per block)
    as IR groups directly; the support is the union support of the
    block.  Empty blocks and identity strings are dropped. *)

val of_terms : int -> (Phoenix_pauli.Pauli_string.t * float) list -> t
(** Adopt a term list as one group verbatim — terms are kept exactly as
    given (identity strings included), so baseline pipelines that
    partition a program themselves (e.g. into pairwise-commuting sets)
    can carry their partitions through the pass-manager context without
    perturbing them. *)

val all_commuting : t -> bool
(** Whether the group's terms pairwise commute (then any reordering of
    the group is exact, not merely Trotter-equivalent). *)
