module Bitvec = Phoenix_util.Bitvec
module Pauli_string = Phoenix_pauli.Pauli_string

type t = {
  n : int;
  terms : (Pauli_string.t * float) list;
  support : Bitvec.t;
}

let weight g = Bitvec.popcount g.support

let finish_groups n newest_first =
  List.rev_map
    (fun cell ->
      let terms = List.rev !cell in
      let support =
        match terms with
        | (p, _) :: _ -> Pauli_string.support p
        | [] -> assert false
      in
      { n; terms; support })
    newest_first

(* Exact-mode grouping must be an exact program transformation: a gadget
   may only be merged into an earlier same-support group when it commutes
   with every term of every group in between — otherwise the merge is a
   Trotter-level reordering and the gadget starts a fresh group. *)
let group_gadgets_ordered n gadgets =
  let groups = ref [] in
  (* newest first: (support key, reversed terms) *)
  List.iter
    (fun ((p, _) as gadget) ->
      if not (Pauli_string.is_identity p) then begin
        let key = Bitvec.to_string (Pauli_string.support p) in
        let rec find = function
          | [] -> None
          | (k, cell) :: rest ->
            if k = key then Some cell
            else if
              List.for_all (fun (q, _) -> Pauli_string.commutes p q) !cell
            then find rest
            else None
        in
        match find !groups with
        | Some cell -> cell := gadget :: !cell
        | None -> groups := (key, ref [ gadget ]) :: !groups
      end)
    gadgets;
  finish_groups n (List.map snd !groups)

let group_gadgets ?(exact = false) n gadgets =
  if exact then group_gadgets_ordered n gadgets
  else begin
    let table : (string, (Pauli_string.t * float) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    List.iter
      (fun ((p, _) as gadget) ->
        if not (Pauli_string.is_identity p) then begin
          let key = Bitvec.to_string (Pauli_string.support p) in
          match Hashtbl.find_opt table key with
          | Some cell -> cell := gadget :: !cell
          | None ->
            let cell = ref [ gadget ] in
            Hashtbl.add table key cell;
            order := key :: !order
        end)
      gadgets;
    finish_groups n (List.map (Hashtbl.find table) !order)
  end

let of_blocks n blocks =
  List.filter_map
    (fun block ->
      let terms =
        List.filter (fun (p, _) -> not (Pauli_string.is_identity p)) block
      in
      match terms with
      | [] -> None
      | _ ->
        let support = Bitvec.create n in
        List.iter
          (fun (p, _) -> Bitvec.or_into support (Pauli_string.support p))
          terms;
        Some { n; terms; support })
    blocks

let of_terms n terms =
  let support = Bitvec.create n in
  List.iter (fun (p, _) -> Bitvec.or_into support (Pauli_string.support p)) terms;
  { n; terms; support }

let all_commuting g =
  let rec ok = function
    | [] -> true
    | (p, _) :: rest ->
      List.for_all (fun (q, _) -> Pauli_string.commutes p q) rest && ok rest
  in
  ok g.terms
