(* The degradation ladder: the declarative registry of every fallback
   chain the compiler may walk when a budget expires, plus the event
   record a walked step leaves behind in the ctx and the trace.  The
   PR-1 verified naive fallback was the prototype; this generalizes it
   so each expensive strategy names its cheaper successor, degradations
   are observable (Diag warnings + trace events) rather than silent, and
   the resilience-conformance lint can audit both the registry and any
   run's events against it. *)

module Budget = Phoenix_util.Budget

type rung = { rung : string; detail : string }

type ladder = { subject : string; owner : string; rungs : rung list }

let ladders =
  [
    {
      subject = "synthesis";
      owner = "simplify";
      rungs =
        [
          {
            rung = "greedy";
            detail = "cache-assisted greedy Clifford peeling (Simplify)";
          };
          {
            rung = "naive-ladder";
            detail = "per-gadget CNOT ladders in program order, no search";
          };
        ];
    };
    {
      subject = "equivalence-check";
      owner = "verify";
      rungs =
        [
          {
            rung = "dense-unitary";
            detail = "exact dense unitary comparison (2^n state space)";
          };
          {
            rung = "pauli-propagation";
            detail = "scalable Pauli-propagation certificate only";
          };
        ];
    };
    {
      subject = "cache-tier";
      owner = "simplify";
      rungs =
        [
          {
            rung = "disk";
            detail = "persistent checksummed tier under PHOENIX_CACHE_DIR";
          };
          { rung = "mem"; detail = "in-process LRU tier" };
          { rung = "off"; detail = "no caching: synthesize every group" };
        ];
    };
  ]

let find_ladder subject = List.find_opt (fun l -> l.subject = subject) ladders

let valid_step ~subject ~from_rung ~to_rung =
  match find_ladder subject with
  | None -> false
  | Some l ->
    let rec adjacent = function
      | a :: (b :: _ as rest) ->
        (a.rung = from_rung && b.rung = to_rung) || adjacent rest
      | _ -> false
    in
    adjacent l.rungs

(* --- events: one per degradation actually taken during a run --- *)

type event = {
  subject : string;
  from_rung : string;
  to_rung : string;
  group : int option;  (* the IR group concerned, for per-group subjects *)
}

let event ?group ~subject ~from_rung ~to_rung () =
  { subject; from_rung; to_rung; group }

let event_to_string e =
  Printf.sprintf "%s %s->%s%s" e.subject e.from_rung e.to_rung
    (match e.group with
    | Some g -> Printf.sprintf " (group %d)" g
    | None -> "")

(* Collapse per-group repeats for reports and traces: same
   (subject, from, to) steps merge into one line with a count,
   first-seen order preserved. *)
let aggregate events =
  List.fold_left
    (fun acc e ->
      let same x =
        x.subject = e.subject && x.from_rung = e.from_rung
        && x.to_rung = e.to_rung
      in
      if List.exists (fun (x, _) -> same x) acc then
        List.map (fun (x, c) -> if same x then (x, c + 1) else (x, c)) acc
      else acc @ [ ({ e with group = None }, 1) ])
    [] events

let aggregate_to_string events =
  aggregate events
  |> List.map (fun (e, c) ->
         Printf.sprintf "%s %s->%s%s" e.subject e.from_rung e.to_rung
           (if c > 1 then Printf.sprintf " (x%d)" c else ""))
  |> String.concat "; "

(* --- attempting a degradable strategy --- *)

let attempt f =
  match f () with
  | v -> Ok v
  | exception Budget.Interrupted Budget.Deadline -> Error Budget.Deadline
(* [Cancelled] deliberately propagates: a cancelled job must fail
   closed, never degrade into a cheaper answer nobody is waiting for. *)

let exit_deadline = 5
