module Bsf = Phoenix_pauli.Bsf
module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Clifford2q = Phoenix_pauli.Clifford2q

type item =
  | Cliff of Clifford2q.t
  | Rotations of (Pauli_string.t * float) list
  | Core of (Pauli_string.t * float) list

type t = item list

let row_to_rotation (r : Bsf.row) =
  ( r.Bsf.pauli,
    if r.Bsf.neg then Phoenix_pauli.Angle.neg r.Bsf.angle else r.Bsf.angle )

(* Synthesizable residue: union support on ≤ 2 qubits, or nothing but 1Q
   rotations left (the latter only arises in exact mode, where
   anticommuting locals may be unpeelable). *)
let finished bsf =
  Bsf.total_weight bsf <= 2 || Bsf.nonlocal_count bsf = 0

(* Greedy candidate search over all (generator, ordered qubit pair)
   combinations on the support.  Symmetric kinds are invariant under
   operand swap, so they only need i < j; asymmetric kinds need both
   orders, which also covers the three "missing" σ0/σ1 combinations
   (C(σ0,σ1)_{a,b} = C(σ1,σ0)_{b,a}).

   Candidates are scored by [Bsf.Delta]: the two operand columns are
   transposed once per qubit pair, then each of the (up to nine)
   generators on that pair is evaluated in O(R/62) word operations with
   no tableau copy and no allocation.  The resulting cost is bit-for-bit
   what [Bsf.cost] would report after actually conjugating, so the
   selection is identical to the historical copy-and-apply search.

   Determinism contract: iteration here is pair-major (for column
   locality) while the historical search was kind-major; [rank] restores
   the historical (kind, operand-position) enumeration order and ties on
   equal cost resolve to the lowest rank, i.e. to exactly the candidate
   the serial kind-major scan would have kept.  The winner therefore
   never depends on iteration strategy — a prerequisite for parallel and
   serial compilations picking identical Cliffords. *)
let all_kinds = Array.of_list Clifford2q.all_kinds
let kind_symmetric = Array.map Clifford2q.is_symmetric all_kinds
let num_kinds = Array.length all_kinds

let best_greedy ?ws bsf =
  let support = Array.of_list (Bsf.support_indices bsf) in
  let m = Array.length support in
  let ws = match ws with Some w -> w | None -> Bsf.Delta.create () in
  (* Winner tracked as scalars (kind index, operands): the candidate loop
     allocates nothing; the gate record materializes once at the end. *)
  let best_cost = ref infinity and best_rank = ref max_int in
  let best_ki = ref (-1) and best_a = ref 0 and best_b = ref 0 in
  for pi = 0 to m - 1 do
    (* Cooperative cancellation: one probe per support qubit keeps the
       overhead off the innermost candidate loop while still bounding
       the time to notice an expired budget. *)
    Phoenix_util.Budget.checkpoint ();
    for pj = pi + 1 to m - 1 do
      let a = Array.unsafe_get support pi
      and b = Array.unsafe_get support pj in
      Bsf.Delta.load ws bsf ~a ~b;
      for ki = 0 to num_kinds - 1 do
        let kind = Array.unsafe_get all_kinds ki in
        let base = ki * m in
        let cost = Bsf.Delta.eval_kind ws kind ~swapped:false in
        let rank = ((base + pi) * m) + pj in
        if cost < !best_cost || (cost = !best_cost && rank < !best_rank)
        then begin
          best_cost := cost;
          best_rank := rank;
          best_ki := ki;
          best_a := a;
          best_b := b
        end;
        if not (Array.unsafe_get kind_symmetric ki) then begin
          let cost = Bsf.Delta.eval_kind ws kind ~swapped:true in
          let rank = ((base + pj) * m) + pi in
          if cost < !best_cost || (cost = !best_cost && rank < !best_rank)
          then begin
            best_cost := cost;
            best_rank := rank;
            best_ki := ki;
            best_a := b;
            best_b := a
          end
        end
      done
    done
  done;
  if !best_ki < 0 then None
  else
    Some (Clifford2q.make all_kinds.(!best_ki) !best_a !best_b, !best_cost)

(* Pair-kill Clifford for one row: with σa on qubit a and σb on qubit b,
   conjugating by C(σa, σ1) with {σ1, σb} anticommuting maps
   σa⊗σb ↦ ±I⊗σb, reducing the row's weight by exactly one. *)
let pair_kill bsf row_idx =
  let p = Bsf.row_pauli bsf row_idx in
  match Pauli_string.support_list p with
  | a :: b :: _ ->
    let sa = Pauli_string.get p a and sb = Pauli_string.get p b in
    let s1 =
      match List.find_opt (fun s -> not (Pauli.commutes s sb)) [ Pauli.X; Pauli.Y; Pauli.Z ] with
      | Some s -> s
      | None -> assert false (* sb ≠ I: two of X,Y,Z anticommute with it *)
    in
    (match Clifford2q.kind_of_sigmas sa s1 with
    | Some (kind, false) -> Clifford2q.make kind a b
    | Some (kind, true) -> Clifford2q.make kind b a
    | None -> assert false (* sa ≠ I on a support qubit *))
  | [ _ ] | [] -> invalid_arg "Simplify.pair_kill: row already local"

let max_weight_row bsf =
  let n_rows = Bsf.num_rows bsf in
  let best = ref (-1) and best_w = ref 1 in
  for i = 0 to n_rows - 1 do
    let w = Bsf.row_weight bsf i in
    if w > !best_w then begin
      best := i;
      best_w := w
    end
  done;
  !best

(* Reduce one maximum-weight row to weight 1 by repeated pair kills; each
   kill strictly reduces that row's weight, so the cycle terminates. *)
let forced_cycle bsf epochs =
  let target = max_weight_row bsf in
  if target >= 0 then
    while Bsf.row_weight bsf target > 1 do
      let cliff = pair_kill bsf target in
      Bsf.apply_clifford2q bsf cliff;
      epochs := (cliff, []) :: !epochs
    done

let run ?(exact = false) ?(max_epochs = 100_000) n terms =
  let bsf = Bsf.of_terms n terms in
  let ws = Bsf.Delta.create () in
  let epochs = ref [] in
  (* epochs: (cliff, locals peeled just before it), most recent first *)
  let trailing = ref [] in
  let epoch_count = ref 0 in
  let finished_loop = ref false in
  while not !finished_loop do
    Phoenix_util.Budget.checkpoint ();
    incr epoch_count;
    (* Past the epoch budget, abandon exact peeling: termination over
       exactness in (never observed) pathological cases. *)
    let commuting_only = exact && !epoch_count < max_epochs in
    let locals =
      List.map row_to_rotation (Bsf.pop_local_rows ~commuting_only bsf)
    in
    if finished bsf then begin
      trailing := locals;
      finished_loop := true
    end
    else begin
      let current_cost = Bsf.cost bsf in
      match best_greedy ~ws bsf with
      | Some (cliff, cost) when cost < current_cost -. 1e-9 ->
        Bsf.apply_clifford2q bsf cliff;
        epochs := (cliff, locals) :: !epochs
      | Some _ | None ->
        if exact then begin
          (* In exact mode the constructive fallback can ping-pong: the
             pair-kill's collateral weight growth lands on locals that
             anticommute with the rest and cannot be peeled.  Bail out —
             the synthesis ladders any residual rows in program order,
             which is exact. *)
          trailing := locals;
          finished_loop := true
        end
        else begin
          (* Greedy stalled: constructive fallback.  The locals peeled
             this epoch belong just before the first forced
             conjugation. *)
          let before = !epochs in
          forced_cycle bsf epochs;
          if locals <> [] then begin
            let rec attach = function
              | (c, _) :: rest when rest == before -> (c, locals) :: rest
              | e :: rest -> e :: attach rest
              | [] -> assert false
            in
            epochs := attach !epochs
          end
        end
    end
  done;
  let core = Core (Bsf.to_terms bsf) in
  let ordered_epochs = List.rev !epochs in
  let leading = List.map (fun (c, _) -> Cliff c) ordered_epochs in
  let unwind =
    List.concat_map
      (fun (c, locals) ->
        if locals = [] then [ Cliff c ] else [ Cliff c; Rotations locals ])
      !epochs (* most recent first: c_k, l_k, c_{k-1}, … *)
  in
  let trailing_item = if !trailing = [] then [] else [ Rotations !trailing ] in
  leading @ [ core ] @ trailing_item @ unwind

let num_cliffords cfg =
  List.fold_left
    (fun acc item -> match item with Cliff _ -> acc + 1 | Rotations _ | Core _ -> acc)
    0 cfg

let core_terms cfg =
  List.concat_map
    (function Core ts -> ts | Cliff _ | Rotations _ -> [])
    cfg
