(** The pass-manager core.

    PHOENIX and every baseline compiler in this repo are sequences of the
    same kind of step — group, simplify, order, lower, route, peephole —
    so all of them are expressed as {e pipelines}: declarative lists of
    named {e passes}, each a transformation over a shared compilation
    {!ctx}.  The runner ({!run}) wall-clock-times every pass, snapshots
    the circuit metrics at each boundary into a {!trace}, and invokes
    caller-supplied {!hook}s — the pluggable instrumentation point used
    for lint and translation-validation at pass granularity.

    The framework lives in the core library so {!Compiler} itself is a
    pipeline; the registry of all pipelines (PHOENIX plus the baselines)
    is {!Phoenix_pipeline.Registry}. *)

type isa = Cnot_isa | Su4_isa

type target =
  | Logical  (** all-to-all connectivity *)
  | Hardware of Phoenix_topology.Topology.t

type options = {
  isa : isa;
  target : target;
  tau : float;  (** Trotter step duration *)
  lookahead : int;  (** ordering look-ahead window *)
  exact : bool;
      (** strict unitary preservation: restrict local peeling to
          commuting rows and keep IR groups in program order *)
  peephole : bool;  (** run the O3-style cleanup passes *)
  sabre_iterations : int;  (** SABRE layout-refinement round trips *)
  seed : int;
  verify : bool;
      (** translation-validate every pass boundary and fall back to
          naive synthesis on per-group check failures *)
  domains : int;
      (** domains for parallel group synthesis: [1] forces serial, [0]
          (the default) uses {!Phoenix_util.Parallel.num_domains} *)
  cache : Phoenix_cache.Cache.tier;
      (** content-addressed synthesis cache consulted around group
          simplification: [Off], in-memory [Mem] (the default), or
          persistent [Disk] *)
  budget : Phoenix_util.Budget.t;
      (** per-job compile budget, installed ambiently around every pass
          by {!run}; expiry degrades along {!Resilience.ladders} or, with
          no ladder, surfaces as {!Interrupted} *)
}

val default_options : options
(** CNOT ISA, logical target, [tau = 1], lookahead 10, peephole on,
    verification off, automatic domain count, in-memory synthesis
    cache. *)

(** {1 Metric snapshots} *)

type metrics = { gates : int; one_q : int; two_q : int; depth_2q : int }

val metrics_of : Phoenix_circuit.Circuit.t -> metrics
val metrics_zero : metrics

val metrics_delta : before:metrics -> after:metrics -> metrics
(** Component-wise [after - before]; entries may be negative. *)

val metrics_add : metrics -> metrics -> metrics

(** {1 The shared compilation context} *)

type ctx = {
  n : int;  (** logical register size *)
  options : options;
  gadgets : (Phoenix_pauli.Pauli_string.t * float) list;
      (** the flat gadget program, when known *)
  term_blocks : (Phoenix_pauli.Pauli_string.t * float) list list option;
      (** algorithm-level block structure (e.g. UCCSD excitations) *)
  groups : Group.t list;  (** IR groups, once grouped *)
  blocks : Order.block list;  (** per-group synthesized circuits *)
  circuit : Phoenix_circuit.Circuit.t;  (** the evolving circuit *)
  num_swaps : int;
  logical_two_q : int;  (** pre-routing 2Q count under the target ISA *)
  recovered : int;  (** groups re-synthesized by the verified fallback *)
  layout : Phoenix_router.Layout.t option;  (** placement, once chosen *)
  diagnostics : Phoenix_verify.Diag.t list;  (** reverse chronological *)
  degradations : Resilience.event list;
      (** ladder steps taken when the budget ran out; reverse
          chronological, like [diagnostics] *)
}

val init :
  ?gadgets:(Phoenix_pauli.Pauli_string.t * float) list ->
  ?term_blocks:(Phoenix_pauli.Pauli_string.t * float) list list ->
  ?groups:Group.t list ->
  options ->
  int ->
  ctx
(** Fresh context over an [n]-qubit register with an empty circuit. *)

val add_diag : ctx -> Phoenix_verify.Diag.t -> ctx

val add_degradation : ctx -> Resilience.event -> ctx
(** Record a degradation-ladder step taken during this compile. *)

val diagf :
  ?group:int ->
  pass:string ->
  Phoenix_verify.Diag.severity ->
  ctx ->
  ('a, unit, string, ctx) format4 ->
  'a
(** Record a formatted diagnostic against the context. *)

(** {1 Pass certificates}

    Every pass carries a {e certificate}: a machine-checkable claim
    about the semantic relation between its input and output contexts,
    emitted by the pass itself and audited by the independent symbolic
    checker in [Phoenix_tv] (which shares no code with the passes).  The
    claims form a small lattice of rewrite freedoms over the Pauli IR's
    (signed Clifford frame × phase polynomial) abstraction:

    - {!Unchanged}: the abstraction is structurally identical on both
      sides (e.g. assembly, counting, verification passes).
    - {!Preserving}: the rotation sequence is preserved up to commuting
      exchanges, same-axis merges, and zero-rotation drops — no Trotter
      reordering (peephole, phase folding, CNOT/SU(4) lowering).
    - {!Reordering}: the phase polynomial is preserved only as per-axis
      angle sums — the Trotter-order freedom PHOENIX exploits when
      grouping and scheduling.
    - {!Routing}: a layout was chosen; the output acts on a physical
      register and must equal the input modulo the claimed qubit
      permutation (plus the freedoms above). *)

type certificate =
  | Unchanged
  | Preserving
  | Reordering
  | Routing of { l2p : int array; n_physical : int }
      (** [l2p.(logical) = physical] initial placement the pass claims
          it applied; [n_physical] is the physical register width. *)

val certificate_label : certificate -> string
(** Short stable name: ["unchanged"], ["preserving"], ["reordering"],
    ["routing"]. *)

(** {1 Passes and pipelines} *)

type t = {
  name : string;
  description : string;
  run : ctx -> ctx;
  certify : before:ctx -> after:ctx -> certificate;
      (** The pass's certificate for one executed boundary.  It may read
          both contexts (e.g. to report the layout it installed), but it
          is a {e claim}, not a proof — [Phoenix_tv.Checker] replays it
          in the abstract domain and returns a verdict. *)
}
(** A named transformation over the context.  A pipeline is a [t list]. *)

val make :
  ?certify:(before:ctx -> after:ctx -> certificate) ->
  name:string ->
  description:string ->
  (ctx -> ctx) ->
  t
(** [certify] defaults to claiming {!Reordering} — the weakest
    non-routing claim, sound for any pass that neither routes nor
    changes the program's phase polynomial. *)

type trace_entry = {
  pass : string;
  seconds : float;  (** wall-clock time spent in the pass *)
  alloc_words : float;
      (** words allocated during the pass ([Gc.minor_words] delta plus
          major − promoted counter deltas) — the checkable form of any
          "allocation-free" claim about a pass's inner loops *)
  top_heap_words : int;
      (** [Gc.top_heap_words] at pass exit: the process-wide major-heap
          high-water mark, monotone across a run *)
  before : metrics;  (** circuit metrics entering the pass *)
  after : metrics;  (** circuit metrics leaving the pass *)
}

type trace = trace_entry list
(** One entry per executed pass, in execution order.  Because every
    circuit mutation happens inside some pass, the per-pass deltas
    telescope: starting from {!metrics_zero} (the empty circuit),
    summing {!entry_delta} over the trace reproduces the final
    circuit's metrics exactly. *)

val entry_delta : trace_entry -> metrics

type hook = pass:t -> before:ctx -> after:ctx -> seconds:float -> unit
(** Pluggable pass-boundary instrumentation: called after every pass
    with the contexts on both sides and the elapsed wall time.  See
    {!Phoenix_pipeline.Hooks} for ready-made lint and
    translation-validation hooks. *)

exception
  Interrupted of { pass : string; reason : Phoenix_util.Budget.reason }
(** A pass exhausted the job budget with no fallback rung available.
    The CLI maps this to exit code 5 (deadline) — see
    {!Resilience.exit_deadline} — or treats [Cancelled] as a closed
    failure. *)

exception Failed of { pass : string; error : string }
(** With [~protect:true], any other exception escaping a pass, wrapped
    with the pass name so job boundaries (CLI, chaos soak, a future
    serve daemon) report structured failures instead of raw exceptions. *)

val run : ?protect:bool -> ?hooks:hook list -> t list -> ctx -> ctx * trace
(** Execute a pipeline: fold the passes over the context, timing each on
    the monotonic clock, snapshotting boundary metrics, and firing every
    hook at every boundary.  The options' [budget] is installed
    ambiently around each pass; an unabsorbed {!Budget.Interrupted}
    re-raises as {!Interrupted}.  With [protect] (default [false]),
    every other exception re-raises as {!Failed} instead of leaking. *)

(** {1 Machine-readable trace} *)

val trace_to_json :
  ?compiler:string ->
  ?workload:string ->
  ?cache:Phoenix_cache.Cache.stats ->
  ?degradations:Resilience.event list ->
  trace ->
  string
(** Schema [phoenix-trace-v1]: per-pass seconds and before/after/delta
    metric snapshots, plus the final metrics and total seconds.  When
    [cache] is given, the run's synthesis-cache counters are embedded
    as a ["cache"] object; when [degradations] is non-empty, the
    aggregated ladder steps appear as a ["degradations"] array. *)
