(** The degradation ladder: registered fallback chains for when a
    compile exceeds its {!Budget}.

    Each {!ladder} names an ordered chain of strategies ({e rungs}) from
    most capable to cheapest; when a budget expires inside a rung, the
    pipeline retries the work on the next rung instead of failing, emits
    a [Diag] warning, and records an {!event} in the ctx (surfaced in
    the report and the [phoenix-trace-v1] trace).  A pass with no ladder
    lets {!Budget.Interrupted} propagate; the CLI maps that to exit code
    {!exit_deadline}.  Cancellation is never degraded: a cancelled job
    fails closed.

    Registered ladders: [synthesis] (greedy → naive-ladder),
    [equivalence-check] (dense-unitary → pauli-propagation), and
    [cache-tier] (disk → mem → off). *)

module Budget = Phoenix_util.Budget

type rung = { rung : string; detail : string }

type ladder = {
  subject : string;  (** what is being degraded, e.g. ["synthesis"] *)
  owner : string;  (** the pass that owns the fallback decision *)
  rungs : rung list;  (** most capable first, cheapest last *)
}

val ladders : ladder list
(** The full registry, audited by the resilience-conformance lint. *)

val find_ladder : string -> ladder option

val valid_step : subject:string -> from_rung:string -> to_rung:string -> bool
(** Whether (from, to) are adjacent rungs of the subject's ladder — the
    only steps a conforming run may take. *)

(** {1 Events} *)

type event = {
  subject : string;
  from_rung : string;
  to_rung : string;
  group : int option;
}

val event :
  ?group:int -> subject:string -> from_rung:string -> to_rung:string -> unit ->
  event

val event_to_string : event -> string

val aggregate : event list -> (event * int) list
(** Merge per-group repeats of the same step into (step, count) pairs,
    first-seen order preserved; the merged event's [group] is [None]. *)

val aggregate_to_string : event list -> string
(** e.g. ["synthesis greedy->naive-ladder (x12); cache-tier disk->mem"]. *)

(** {1 Attempting a degradable strategy} *)

val attempt : (unit -> 'a) -> ('a, Budget.reason) result
(** Run a strategy under the ambient budget.  [Error Deadline] when a
    checkpoint expired mid-strategy — the caller falls to the next rung.
    [Interrupted Cancelled] propagates: cancellation fails closed. *)

val exit_deadline : int
(** CLI exit code for a deadline with no fallback available: [5]. *)
