module Circuit = Phoenix_circuit.Circuit
module Gate = Phoenix_circuit.Gate
module Angle = Phoenix_pauli.Angle
module Clock = Phoenix_util.Clock

type t = Compiler.template

let num_qubits (t : t) = t.Compiler.t_n
let params (t : t) = Array.copy t.Compiler.t_params
let num_parameters (t : t) = Array.length t.Compiler.t_params
let slot_count (t : t) = t.Compiler.t_slot_count
let slot_sites (t : t) = Array.length t.Compiler.t_slot_positions
let report (t : t) = t.Compiler.t_report

let circuit (t : t) =
  Circuit.create t.Compiler.t_n (Array.to_list t.Compiler.t_prototype)

let check_arity ~op (t : t) theta =
  let arity = Array.length t.Compiler.t_params in
  if Array.length theta <> arity then
    invalid_arg
      (Printf.sprintf "Template.%s: %d value%s for %d parameter%s" op
         (Array.length theta)
         (if Array.length theta = 1 then "" else "s")
         arity
         (if arity = 1 then "" else "s"))

let bind_with_eval (t : t) eval =
  let gates = Array.copy t.Compiler.t_prototype in
  Array.iter
    (fun i -> gates.(i) <- Gate.map_angles eval gates.(i))
    t.Compiler.t_slot_positions;
  Circuit.of_validated t.Compiler.t_n (Array.to_list gates)

let bind (t : t) theta =
  check_arity ~op:"bind" t theta;
  (* [of_validated] inside [bind_with_eval]: the prototype passed
     [Circuit.create]'s register check when the template was built, and
     patching angles cannot move a gate's qubits — re-validating every
     bind would dominate its cost. *)
  bind_with_eval t (Angle.evaluator theta)

let bind_batch (t : t) thetas =
  List.iter (check_arity ~op:"bind_batch" t) thetas;
  let evals = Angle.evaluators (Array.of_list thetas) in
  List.mapi (fun k _ -> bind_with_eval t evals.(k)) thetas

let bind_with_trace (t : t) theta =
  let before = Pass.metrics_of (circuit t) in
  let m0 = Gc.minor_words () in
  let g0 = Gc.quick_stat () in
  let t0 = Clock.monotonic_s () in
  let c = bind t theta in
  let seconds = Clock.monotonic_s () -. t0 in
  let m1 = Gc.minor_words () in
  let g1 = Gc.quick_stat () in
  (* [Gc.minor_words] reads the young pointer, so the minor component
     is exact even when the bind triggers no collection. *)
  let alloc_words =
    m1 -. m0
    +. (g1.Gc.major_words -. g1.Gc.promoted_words)
    -. (g0.Gc.major_words -. g0.Gc.promoted_words)
  in
  ( c,
    [
      {
        Pass.pass = "bind";
        seconds;
        alloc_words;
        top_heap_words = g1.Gc.top_heap_words;
        before;
        after = Pass.metrics_of c;
      };
    ] )

let dump (t : t) =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "template on %d qubits: %d parameter%s, %d slot%s at %d gate site%s\n"
    t.Compiler.t_n (num_parameters t)
    (if num_parameters t = 1 then "" else "s")
    (slot_count t)
    (if slot_count t = 1 then "" else "s")
    (slot_sites t)
    (if slot_sites t = 1 then "" else "s");
  Array.iteri (fun k name -> p "  param %d: %s\n" k name) t.Compiler.t_params;
  (* One line per distinct slot, in first-appearance order, with its
     recorded expression over the parameters. *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      Gate.fold_angles
        (fun () theta ->
          match Angle.view theta with
          | Angle.Const _ -> ()
          | Angle.Slot { id; _ } ->
            if not (Hashtbl.mem seen id) then begin
              Hashtbl.add seen id ();
              p "  slot#%d = %s\n" id
                (Angle.describe (Angle.with_id ~negated:false id))
            end)
        () g)
    t.Compiler.t_prototype;
  p "circuit (%d gates):\n" (Array.length t.Compiler.t_prototype);
  Array.iter (fun g -> p "  %s\n" (Gate.to_string g)) t.Compiler.t_prototype;
  Buffer.contents buf
