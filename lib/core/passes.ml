module Circuit = Phoenix_circuit.Circuit
module Peephole = Phoenix_circuit.Peephole
module Rebase = Phoenix_circuit.Rebase
module Sabre = Phoenix_router.Sabre
module Structural = Phoenix_verify.Structural
module Diag = Phoenix_verify.Diag

let maybe_peephole (options : Pass.options) c =
  if options.peephole then Peephole.optimize c else c

(* Certificate helpers shared with the baseline pipelines.  A pass that
   installed a layout claims the routing permutation it chose; a routing
   pass that (unexpectedly) recorded no layout falls back to the plain
   reordering claim, which the checker then refutes on the register
   mismatch instead of silently accepting. *)
let certify_unchanged ~before:_ ~after:_ = Pass.Unchanged
let certify_preserving ~before:_ ~after:_ = Pass.Preserving

let certify_routing ~before:_ ~(after : Pass.ctx) =
  match after.Pass.layout with
  | Some l ->
    Pass.Routing
      {
        l2p = Array.init after.Pass.n (Phoenix_router.Layout.physical_of l);
        n_physical = Circuit.num_qubits after.Pass.circuit;
      }
  | None -> Pass.Reordering

let lower_cnot options c =
  let lowered = Rebase.to_cnot_basis (maybe_peephole options c) in
  if options.peephole then
    Peephole.optimize (Phoenix_circuit.Phase_folding.fold lowered)
  else lowered

let group =
  Pass.make
    ~certify:(fun ~before ~after:_ ->
      (* Algorithm blocks and exact-mode grouping keep the program
         order (commuting exchanges only); support-keyed grouping
         exploits the Trotter-order freedom. *)
      match before.Pass.term_blocks with
      | Some _ -> Pass.Preserving
      | None ->
        if before.Pass.options.exact then Pass.Preserving else Pass.Reordering)
    ~name:"group"
    ~description:
      "partition the gadget program into IR groups (algorithm blocks when \
       known, support-keyed otherwise)"
    (fun ctx ->
      match ctx.Pass.term_blocks with
      | Some blocks -> { ctx with Pass.groups = Group.of_blocks ctx.Pass.n blocks }
      | None ->
        {
          ctx with
          Pass.groups =
            Group.group_gadgets ~exact:ctx.Pass.options.exact ctx.Pass.n
              ctx.Pass.gadgets;
        })

let assemble =
  Pass.make ~certify:certify_unchanged ~name:"assemble"
    ~description:"concatenate the per-group circuits in their final order"
    (fun ctx ->
      {
        ctx with
        Pass.circuit =
          Circuit.concat_list ctx.Pass.n
            (List.map (fun b -> b.Order.circuit) ctx.Pass.blocks);
      })

let peephole =
  Pass.make ~certify:certify_preserving ~name:"peephole"
    ~description:"Qiskit-O3-style peephole cleanup (fusion, cancellation)"
    (fun ctx ->
      { ctx with Pass.circuit = maybe_peephole ctx.Pass.options ctx.Pass.circuit })

(* Pre-routing 2Q count under the target ISA, recorded for
   routing-overhead ratios. *)
let logical_isa_count (options : Pass.options) c =
  match options.isa with
  | Pass.Cnot_isa -> Circuit.count_2q c
  | Pass.Su4_isa -> Rebase.count_su4 c

let rebase =
  Pass.make
    ~certify:(fun ~before ~after:_ ->
      match before.Pass.options.isa with
      | Pass.Cnot_isa -> Pass.Unchanged
      | Pass.Su4_isa -> Pass.Preserving)
    ~name:"rebase"
    ~description:"rebase the logical circuit to the target ISA"
    (fun ctx ->
      match ctx.Pass.options.isa with
      | Pass.Cnot_isa ->
        { ctx with Pass.logical_two_q = Circuit.count_2q ctx.Pass.circuit }
      | Pass.Su4_isa ->
        let c = Rebase.to_su4 ctx.Pass.circuit in
        { ctx with Pass.circuit = c; Pass.logical_two_q = Circuit.count_2q c })

let route_sabre =
  Pass.make
    ~certify:(fun ~before ~after ->
      match before.Pass.options.target with
      | Pass.Logical -> Pass.Unchanged
      | Pass.Hardware _ -> certify_routing ~before ~after)
    ~name:"route"
    ~description:"SABRE swap insertion with bidirectional layout refinement"
    (fun ctx ->
      match ctx.Pass.options.target with
      | Pass.Logical -> ctx
      | Pass.Hardware topo ->
        let logical_two_q = logical_isa_count ctx.Pass.options ctx.Pass.circuit in
        let r =
          Sabre.route_with_refinement
            ~iterations:ctx.Pass.options.sabre_iterations topo ctx.Pass.circuit
        in
        {
          ctx with
          Pass.circuit = r.Sabre.circuit;
          Pass.num_swaps = r.Sabre.num_swaps;
          Pass.layout = Some r.Sabre.initial_layout;
          Pass.logical_two_q;
        })

let lower_routed =
  Pass.make ~certify:certify_preserving ~name:"lower"
    ~description:"expand SWAPs and rebase the routed circuit to the target ISA"
    (fun ctx ->
      match ctx.Pass.options.isa with
      | Pass.Cnot_isa ->
        let c = Rebase.to_cnot_basis ctx.Pass.circuit in
        { ctx with Pass.circuit = maybe_peephole ctx.Pass.options c }
      | Pass.Su4_isa ->
        {
          ctx with
          Pass.circuit =
            Rebase.to_su4 (maybe_peephole ctx.Pass.options ctx.Pass.circuit);
        })

let verify_structural =
  Pass.make ~certify:certify_unchanged ~name:"verify"
    ~description:
      "structural validation: ISA alphabet, qubit range, coupling compliance"
    (fun ctx ->
      let isa_basis =
        match ctx.Pass.options.isa with
        | Pass.Cnot_isa -> Structural.Cnot_basis
        | Pass.Su4_isa -> Structural.Su4_basis
      in
      let topology =
        match ctx.Pass.options.target with
        | Pass.Hardware t -> Some t
        | Pass.Logical -> None
      in
      match Structural.validate ~isa:isa_basis ?topology ctx.Pass.circuit with
      | [] ->
        Pass.diagf ~pass:"structural" Diag.Info ctx
          "ISA alphabet, qubit range%s verified"
          (if topology = None then "" else " and coupling-graph compliance")
      | violations ->
        {
          ctx with
          Pass.diagnostics = List.rev_append violations ctx.Pass.diagnostics;
        })
