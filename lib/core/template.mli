(** Bind-side API of parametric compilation.

    A template is produced once by {!Compiler.compile_template} — paying
    the full pipeline (grouping, tableau simplification, ordering,
    peephole, lowering, routing) exactly as a concrete compile would —
    and then bound to concrete parameter vectors arbitrarily often.
    {!bind} only copies the prototype gate array and patches the slotted
    gates, so a bind is microseconds where a compile is milliseconds.

    Bind/compile contract: for generic (non-degenerate) parameter
    values, [bind (compile_template ~params n blocks_sym) theta] is
    bit-identical to compiling [blocks_sym] with every slot replaced by
    its value under [theta] — see {!Phoenix_pauli.Angle} for the exact
    statement and the degenerate-angle caveat. *)

type t = Compiler.template

val num_qubits : t -> int

val params : t -> string array
(** Declared parameter names, in binding order (a fresh copy). *)

val num_parameters : t -> int

val slot_count : t -> int
(** Distinct slot expressions in the compiled circuit. *)

val slot_sites : t -> int
(** Gates carrying at least one slot (the work a {!bind} does). *)

val report : t -> Compiler.report
(** The template compile's report.  Its [circuit] is the slotted
    prototype — metrics, trace, and cache stats describe the one-time
    compile, not any bind. *)

val circuit : t -> Phoenix_circuit.Circuit.t
(** The slotted prototype as a circuit (for dumps and lint; it carries
    unbound slots and will — by design — fail angle-sanity lint). *)

val bind : t -> float array -> Phoenix_circuit.Circuit.t
(** [bind t theta] patches every slot with its value under [theta]:
    O(slot sites) angle evaluations plus one gate-array copy.  No
    re-synthesis, re-grouping, or re-routing runs.  Raises
    [Invalid_argument] when [theta]'s length differs from
    {!num_parameters}, and {!Phoenix_pauli.Angle.Unbound_parameter}
    cannot escape a certified template. *)

val bind_batch : t -> float array list -> Phoenix_circuit.Circuit.t list
(** Gradient-style multi-point bind: one circuit per parameter vector,
    all evaluated against a {e single} {!Phoenix_pauli.Angle} arena
    snapshot ({!Phoenix_pauli.Angle.evaluators}), so a k-point batch
    takes one mutex acquisition instead of k.  Element [i] is
    bit-identical to [bind t (List.nth thetas i)].  Raises
    [Invalid_argument] when any vector's length differs from
    {!num_parameters}. *)

val bind_with_trace :
  t -> float array -> Phoenix_circuit.Circuit.t * Pass.trace
(** {!bind} plus a single-entry pass trace (["bind"]) with before/after
    metric snapshots — the auditable proof that a rebind ran no pipeline
    passes. *)

val dump : t -> string
(** Human-readable listing: parameter table, slot expressions, and the
    slotted circuit. *)
