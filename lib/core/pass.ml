module Circuit = Phoenix_circuit.Circuit
module Topology = Phoenix_topology.Topology
module Diag = Phoenix_verify.Diag
module Clock = Phoenix_util.Clock
module Budget = Phoenix_util.Budget

type isa = Cnot_isa | Su4_isa

type target = Logical | Hardware of Topology.t

type options = {
  isa : isa;
  target : target;
  tau : float;
  lookahead : int;
  exact : bool;
  peephole : bool;
  sabre_iterations : int;
  seed : int;
  verify : bool;
  domains : int;
  cache : Phoenix_cache.Cache.tier;
  budget : Budget.t;
}

let default_options =
  {
    isa = Cnot_isa;
    target = Logical;
    tau = 1.0;
    lookahead = 10;
    exact = false;
    peephole = true;
    sabre_iterations = 1;
    seed = 2025;
    verify = false;
    domains = 0;
    cache = Phoenix_cache.Cache.Mem;
    budget = Budget.none;
  }

(* --- metric snapshots --- *)

type metrics = { gates : int; one_q : int; two_q : int; depth_2q : int }

let metrics_of c =
  {
    gates = Circuit.length c;
    one_q = Circuit.count_1q c;
    two_q = Circuit.count_2q c;
    depth_2q = Circuit.depth_2q c;
  }

let metrics_zero = { gates = 0; one_q = 0; two_q = 0; depth_2q = 0 }

let metrics_delta ~before ~after =
  {
    gates = after.gates - before.gates;
    one_q = after.one_q - before.one_q;
    two_q = after.two_q - before.two_q;
    depth_2q = after.depth_2q - before.depth_2q;
  }

let metrics_add a b =
  {
    gates = a.gates + b.gates;
    one_q = a.one_q + b.one_q;
    two_q = a.two_q + b.two_q;
    depth_2q = a.depth_2q + b.depth_2q;
  }

(* --- the shared compilation context --- *)

type ctx = {
  n : int;
  options : options;
  gadgets : (Phoenix_pauli.Pauli_string.t * float) list;
  term_blocks : (Phoenix_pauli.Pauli_string.t * float) list list option;
  groups : Group.t list;
  blocks : Order.block list;
  circuit : Circuit.t;
  num_swaps : int;
  logical_two_q : int;
  recovered : int;
  layout : Phoenix_router.Layout.t option;
  diagnostics : Diag.t list;
  degradations : Resilience.event list;
}

let init ?(gadgets = []) ?term_blocks ?(groups = []) options n =
  {
    n;
    options;
    gadgets;
    term_blocks;
    groups;
    blocks = [];
    circuit = Circuit.empty n;
    num_swaps = 0;
    logical_two_q = 0;
    recovered = 0;
    layout = None;
    diagnostics = [];
    degradations = [];
  }

let add_diag ctx d = { ctx with diagnostics = d :: ctx.diagnostics }

let add_degradation ctx e = { ctx with degradations = e :: ctx.degradations }

let diagf ?group ~pass severity ctx fmt =
  Printf.ksprintf
    (fun m -> add_diag ctx (Diag.make ?group ~pass severity m))
    fmt

(* --- pass certificates --- *)

type certificate =
  | Unchanged
  | Preserving
  | Reordering
  | Routing of { l2p : int array; n_physical : int }

let certificate_label = function
  | Unchanged -> "unchanged"
  | Preserving -> "preserving"
  | Reordering -> "reordering"
  | Routing _ -> "routing"

(* --- passes --- *)

type t = {
  name : string;
  description : string;
  run : ctx -> ctx;
  certify : before:ctx -> after:ctx -> certificate;
}

let default_certify ~before:_ ~after:_ = Reordering

let make ?(certify = default_certify) ~name ~description run =
  { name; description; run; certify }

type trace_entry = {
  pass : string;
  seconds : float;
  alloc_words : float;
  top_heap_words : int;
  before : metrics;
  after : metrics;
}

type trace = trace_entry list

let entry_delta e = metrics_delta ~before:e.before ~after:e.after

type hook = pass:t -> before:ctx -> after:ctx -> seconds:float -> unit

exception Interrupted of { pass : string; reason : Budget.reason }

exception Failed of { pass : string; error : string }

let run ?(protect = false) ?(hooks = []) passes ctx =
  (* The job budget rides in the options; it is installed ambiently
     around each pass so checkpoints deep in the router or the dense
     verifier see it without any signature threading.  A budget expiry
     that no degradation ladder absorbed surfaces here, tagged with the
     pass it interrupted. *)
  let budget = ctx.options.budget in
  let exec pass ctx =
    try Budget.with_ambient budget (fun () -> pass.run ctx) with
    | Budget.Interrupted reason ->
      raise (Interrupted { pass = pass.name; reason })
    | (Interrupted _ | Failed _) as e -> raise e
    | e when protect ->
      (* Fail closed with the pass named, for callers (CLI, the chaos
         soak, eventually the serve daemon) that must never leak a raw
         exception across the job boundary. *)
      raise (Failed { pass = pass.name; error = Printexc.to_string e })
  in
  let final, rev_trace =
    List.fold_left
      (fun (ctx, acc) pass ->
        let before = metrics_of ctx.circuit in
        let m0 = Gc.minor_words () in
        let g0 = Gc.quick_stat () in
        let t0 = Clock.monotonic_s () in
        let ctx' = exec pass ctx in
        let seconds = Clock.monotonic_s () -. t0 in
        let m1 = Gc.minor_words () in
        let g1 = Gc.quick_stat () in
        (* Words allocated by the pass: minor (via [Gc.minor_words],
           which reads the young pointer and so is exact even when no
           minor collection ran inside the pass — [quick_stat]'s
           minor counter only flushes at collection boundaries on
           OCaml 5) plus major − promoted, counting every word exactly
           once.  [top_heap_words] is the process high-water mark at
           pass exit — the peak-memory signal the streaming mode's
           bounded-footprint claim is checked against. *)
        let alloc_words =
          m1 -. m0
          +. (g1.Gc.major_words -. g1.Gc.promoted_words)
          -. (g0.Gc.major_words -. g0.Gc.promoted_words)
        in
        let after = metrics_of ctx'.circuit in
        List.iter
          (fun h -> h ~pass ~before:ctx ~after:ctx' ~seconds)
          hooks;
        ( ctx',
          {
            pass = pass.name;
            seconds;
            alloc_words;
            top_heap_words = g1.Gc.top_heap_words;
            before;
            after;
          }
          :: acc ))
      (ctx, []) passes
  in
  final, List.rev rev_trace

(* --- machine-readable trace --- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let metrics_json m =
  Printf.sprintf
    "{ \"gates\": %d, \"one_q\": %d, \"two_q\": %d, \"depth_2q\": %d }"
    m.gates m.one_q m.two_q m.depth_2q

let trace_to_json ?(compiler = "") ?(workload = "") ?cache
    ?(degradations = []) trace =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  p "  \"schema\": \"phoenix-trace-v1\",\n";
  if compiler <> "" then p "  \"compiler\": \"%s\",\n" (json_escape compiler);
  if workload <> "" then p "  \"workload\": \"%s\",\n" (json_escape workload);
  (match cache with
  | Some s -> p "  \"cache\": %s,\n" (Phoenix_cache.Cache.stats_to_json s)
  | None -> ());
  (match Resilience.aggregate degradations with
  | [] -> ()
  | agg ->
    p "  \"degradations\": [";
    List.iteri
      (fun i (e, count) ->
        p "%s\n    { \"subject\": \"%s\", \"from\": \"%s\", \"to\": \"%s\", \
           \"count\": %d }"
          (if i = 0 then "" else ",")
          (json_escape e.Resilience.subject)
          (json_escape e.Resilience.from_rung)
          (json_escape e.Resilience.to_rung)
          count)
      agg;
    p "\n  ],\n");
  p "  \"total_seconds\": %.6f,\n"
    (List.fold_left (fun acc e -> acc +. e.seconds) 0.0 trace);
  p "  \"final\": %s,\n"
    (metrics_json
       (match List.rev trace with e :: _ -> e.after | [] -> metrics_zero));
  p "  \"passes\": [";
  List.iteri
    (fun i e ->
      p
        "%s\n\
        \    { \"pass\": \"%s\", \"seconds\": %.6f, \"alloc_words\": %.0f, \
         \"top_heap_words\": %d,\n"
        (if i = 0 then "" else ",")
        (json_escape e.pass) e.seconds e.alloc_words e.top_heap_words;
      p "      \"before\": %s,\n" (metrics_json e.before);
      p "      \"after\": %s,\n" (metrics_json e.after);
      p "      \"delta\": %s }" (metrics_json (entry_delta e)))
    trace;
  p "\n  ]\n}\n";
  Buffer.contents buf
