(** The PHOENIX compilation pipeline (§IV-A):

    IR grouping → group-wise BSF simplification → Tetris-like IR group
    ordering → ISA lowering (CNOT or SU(4)) → optional hardware-aware
    routing → peephole cleanup.

    Since the pass-manager refactor this module is itself a {!Pass}
    pipeline — the canonical one.  [compile*] assemble the pass list with
    {!passes}, run it with {!Pass.run}, and fold the final context into
    the same {!report} as always; options and reports are unchanged and
    the output is bit-identical to the pre-refactor compiler.  Baseline
    pipelines reuse the shared passes ({!Passes}) and are registered
    alongside this one in [Phoenix_pipeline.Registry].

    With [verify = true] every pass boundary is translation-validated
    (see {!Phoenix_verify}): each group's synthesized circuit is checked
    against its gadgets by Pauli propagation (plus a dense unitary
    comparison on small registers), the final circuit is structurally
    validated (ISA alphabet, qubit range, coupling compliance), and in
    exact logical mode the end-to-end unitary is compared for small [n].
    A group that fails its check is re-synthesized with the naive ladder
    and the recovery recorded as a [Warning] diagnostic — compilation
    always produces a valid circuit rather than aborting. *)

type isa = Pass.isa = Cnot_isa | Su4_isa

type target = Pass.target =
  | Logical  (** all-to-all connectivity *)
  | Hardware of Phoenix_topology.Topology.t

type options = Pass.options = {
  isa : isa;
  target : target;
  tau : float;  (** Trotter step duration *)
  lookahead : int;  (** ordering look-ahead window *)
  exact : bool;
      (** strict unitary preservation: restrict local peeling to
          commuting rows and keep IR groups in program order *)
  peephole : bool;  (** run the O3-style cleanup passes *)
  sabre_iterations : int;  (** SABRE layout-refinement round trips *)
  seed : int;
  verify : bool;
      (** translation-validate every pass boundary and fall back to
          naive synthesis on per-group check failures *)
  domains : int;
      (** domains for parallel group synthesis: [1] forces serial, [0]
          (the default) uses {!Phoenix_util.Parallel.num_domains}.  The
          output is identical whatever the value: groups are compiled
          independently and joined in group order. *)
  cache : Phoenix_cache.Cache.tier;
      (** content-addressed synthesis cache wrapped around group
          simplification.  The output is identical whatever the tier or
          hit pattern: a hit replays a circuit bit-identical to a cold
          synthesis (see {!Phoenix_cache.Cache}). *)
  budget : Phoenix_util.Budget.t;
      (** per-job compile budget (default {!Phoenix_util.Budget.none}).
          On expiry, passes with a registered {!Resilience} ladder
          degrade (greedy synthesis → naive ladder, dense equivalence
          check → propagation-only) with [Warning] diagnostics and
          recorded {!Resilience.event}s; passes without one raise
          {!Pass.Interrupted}. *)
}

val default_options : options
(** CNOT ISA, logical target, [tau = 1], lookahead 10, peephole on,
    verification off, automatic domain count, in-memory synthesis
    cache. *)

type report = {
  circuit : Phoenix_circuit.Circuit.t;  (** final lowered circuit *)
  two_q_count : int;
      (** #CNOT under [Cnot_isa]; #SU(4) blocks under [Su4_isa] *)
  depth_2q : int;
  one_q_count : int;
  num_swaps : int;  (** 0 for logical compilation *)
  logical_two_q : int;
      (** 2Q count of the logical-level result, for routing-overhead
          ratios *)
  num_groups : int;
  wall_time : float;  (** elapsed wall-clock seconds spent compiling *)
  pass_times : (string * float) list;
      (** per-pass wall-clock seconds in pipeline order — ["group"],
          ["simplify"], ["order"], ["assemble"], ["peephole"],
          ["lower"], ["route"], ["verify"]; passes that did not run are
          absent *)
  diagnostics : Phoenix_verify.Diag.t list;
      (** chronological; empty unless [options.verify] *)
  trace : Pass.trace;
      (** the full instrumented pass trace: per-pass seconds plus
          before/after circuit-metric snapshots *)
  cache_stats : Phoenix_cache.Cache.stats;
      (** synthesis-cache counter deltas (hits/misses/disk
          hits/errors/evictions/insertions) attributable to this run,
          plus the resident entry/byte gauges at completion *)
  degradations : Resilience.event list;
      (** chronological ladder steps taken because the budget ran out;
          empty on an undisturbed run *)
  layout : Phoenix_router.Layout.t option;
      (** final logical→physical placement for hardware compiles ([Some]
          whenever routing ran); [None] for logical compiles.  Consumed
          by the translation-validation analysis to relabel routed
          circuits back onto the logical register. *)
}

val report_of_ctx :
  ?cache_stats:Phoenix_cache.Cache.stats ->
  wall_time:float ->
  Pass.ctx ->
  Pass.trace ->
  report
(** Fold a finished pipeline run into the common report — used by every
    registered pipeline (see [Phoenix_pipeline.Registry]) so PHOENIX and
    the baselines report through one type.  [cache_stats] defaults to
    {!Phoenix_cache.Cache.stats_zero}; pipeline runners pass the
    per-run counter delta. *)

val passes :
  ?synthesize:(Group.t -> Phoenix_circuit.Circuit.t) ->
  ?with_grouping:bool ->
  options ->
  Pass.t list
(** The canonical PHOENIX pipeline for [options], as a declarative pass
    list: grouping (unless [with_grouping = false], for pre-grouped
    input), simplify, ordering (skipped in exact mode), assembly,
    peephole, ISA lowering, routing (hardware targets only), and final
    verification (when [options.verify]). *)

val compile :
  ?options:options ->
  ?protect:bool ->
  ?hooks:Pass.hook list ->
  Phoenix_ham.Hamiltonian.t ->
  report
(** [hooks] (here and below) are {!Pass.hook} pass-boundary
    instrumentation, fired after every pass.  [protect] (here and below,
    default [false]) is {!Pass.run}'s fail-closed mode: unexpected
    exceptions escaping a pass re-raise as {!Pass.Failed} with the pass
    named. *)

val compile_gadgets :
  ?options:options ->
  ?protect:bool ->
  ?hooks:Pass.hook list ->
  ?synthesize:(Group.t -> Phoenix_circuit.Circuit.t) ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list ->
  report
(** Compile an explicit gadget program over [n] qubits, grouping by
    support. *)

val compile_blocks :
  ?options:options ->
  ?protect:bool ->
  ?hooks:Pass.hook list ->
  ?synthesize:(Group.t -> Phoenix_circuit.Circuit.t) ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list list ->
  report
(** Compile with caller-supplied algorithm-level blocks as IR groups.
    [compile] uses this automatically when the Hamiltonian records block
    structure (UCCSD ansatzes do). *)

val compile_groups :
  ?options:options ->
  ?protect:bool ->
  ?hooks:Pass.hook list ->
  ?synthesize:(Group.t -> Phoenix_circuit.Circuit.t) ->
  int ->
  Group.t list ->
  report
(** Lowest-level entry point.  [synthesize] overrides per-group circuit
    synthesis (default {!Synthesis.group_circuit}); it exists for
    experimentation and fault injection — with [verify = true] a
    synthesizer that produces a wrong circuit is caught per group and
    recovered via the naive ladder.  Supplying [synthesize] forces
    serial group compilation (the closure is not assumed thread-safe). *)

(** {1 Streaming compilation}

    Whole-program compilation materializes every gadget, group and block
    at once — for a deep Trotter circuit the working set grows linearly
    with the step count even though every step compiles identically.
    Streaming mode instead feeds the pipeline one {!chunk} at a time
    (typically one Trotter step), runs the full pass list per chunk —
    so tracing, lint/certify hooks, the synthesis cache and resilience
    budgets all keep working at chunk granularity — and either
    concatenates the per-chunk circuits or hands each to [emit] and
    drops it, bounding peak memory by the chunk size.

    Contract: a single-chunk stream is bit-identical to the matching
    whole-program entry point ([compile_blocks] when the chunk carries
    blocks, [compile_gadgets] otherwise), and a multi-chunk stream is
    bit-identical to the concatenation of the chunks' independent
    compiles.  A whole-program compile of the {e concatenated} gadget
    list is a different program — grouping would merge rotations across
    chunk boundaries — so that equality is intentionally not promised. *)

type chunk = {
  chunk_gadgets : (Phoenix_pauli.Pauli_string.t * float) list;
      (** the chunk's gadget program, in order *)
  chunk_blocks : (Phoenix_pauli.Pauli_string.t * float) list list option;
      (** algorithm-level block structure when known; its presence
          selects [compile_blocks]-style grouping for the chunk *)
}

val chunk_of_gadgets : (Phoenix_pauli.Pauli_string.t * float) list -> chunk

val chunk_of_blocks :
  (Phoenix_pauli.Pauli_string.t * float) list list -> chunk

type stream_report = {
  s_report : report;
      (** aggregated over the whole stream: the concatenated circuit
          (empty when [keep_circuit = false]; gate counts then come
          from per-chunk sums and [depth_2q] is the per-chunk sum, an
          upper bound), merged trace, summed cache stats, chronological
          diagnostics and degradations, [layout = None] *)
  s_chunks : int;  (** chunks consumed *)
  s_gadgets : int;  (** total gadgets consumed across all chunks *)
  s_peak_heap_words : int;
      (** max [Gc.quick_stat].heap_words observed at chunk boundaries —
          the bounded-footprint signal the scaling bench asserts on *)
  s_chunk_two_q : int list;  (** per-chunk 2Q counts, in stream order *)
}

val compile_stream :
  ?options:options ->
  ?protect:bool ->
  ?hooks:Pass.hook list ->
  ?keep_circuit:bool ->
  ?emit:(Phoenix_circuit.Circuit.t -> unit) ->
  ?pipeline:(options -> Pass.t list) ->
  int ->
  chunk Seq.t ->
  stream_report
(** Compile a lazy chunk stream over [n] qubits.  Each chunk runs the
    canonical pipeline via {!Pass.run} with the given [hooks], exactly
    as [compile_gadgets]/[compile_blocks] would; [pipeline] overrides
    the pass list per chunk (the registry streams baselines with it).  [emit] is called with
    each chunk's finished circuit in stream order; with [keep_circuit =
    false] (default [true]) the circuit is dropped after [emit] and the
    aggregate report carries an empty circuit, keeping peak memory
    bounded by the largest chunk rather than the whole program.  The
    merged trace has one entry per pass name (seconds, allocation and
    metric deltas summed across chunks; heap high-water maxed).

    Raises [Invalid_argument] for hardware targets: chunks route
    independently, and concatenating per-chunk placements is unsound.
    Streaming is a logical-target mode; route the concatenated circuit
    separately if needed. *)

val stream_of_hamiltonian :
  ?steps:int -> options -> Phoenix_ham.Hamiltonian.t -> chunk Seq.t
(** [steps] (default 1) first-order Trotter steps of [h]: a lazy stream
    repeating the Hamiltonian's per-step chunk — term blocks (with the
    same angle convention as {!compile}) when [h] records them, the
    flat [trotter_gadgets] program otherwise.  Raises
    [Invalid_argument] if [steps < 1]. *)

(** {1 Parametric compilation} *)

type template = {
  t_n : int;  (** register size of the compiled circuit (physical, if routed) *)
  t_params : string array;
  t_prototype : Phoenix_circuit.Gate.t array;
  t_slot_positions : int array;
  t_slot_count : int;
  t_report : report;
}
(** A compiled circuit whose parameter-derived rotation angles are still
    symbolic {!Phoenix_pauli.Angle} slots.  Prefer the {!Template} module
    for binding and inspection; the record is exposed so [Template] can
    live outside this module without an extra indirection. *)

val compile_template :
  ?options:options ->
  ?protect:bool ->
  ?hooks:Pass.hook list ->
  ?certified:bool ->
  params:string array ->
  int ->
  (Phoenix_pauli.Pauli_string.t * float) list list ->
  template
(** Run the canonical pipeline over gadget blocks whose angles may be
    {!Phoenix_pauli.Angle} slots (built with [Angle.param]), then certify
    the result with a terminal [parametrize] pass (slot-site census +
    parameter-arity check, visible in the trace).  [params] names the
    template's parameters; every slot must resolve over them.

    Dense verification is forced off for the template compile itself
    (symbolic angles cannot be checked densely).  Pass [certified = true]
    when a symbolic translation-validation hook (Phoenix_tv's certify
    hook) runs alongside the compile: the deferral diagnostic is replaced
    by a note that every pass boundary was checked symbolically — valid
    for all parameter bindings at once — instead of deferring to the
    bound circuits.  A compile that took any degradation-ladder step
    raises {!Pass.Failed} rather than producing a template: binds replay
    the template forever, so a degraded result must stay transient.
    Budget expiry raises {!Pass.Interrupted} as usual and never yields a
    partial template. *)
