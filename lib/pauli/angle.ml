(* Symbolic rotation angles, NaN-boxed into ordinary floats.

   Encoding: a slot is a quiet NaN whose high 32 bits (minus the sign)
   are the fixed tag below and whose low 32 bits are an index into the
   process-wide expression arena.  The sign bit carries negation, so
   [neg] on a slot is an exact bit flip that never touches the payload.
   The tag keeps well clear of every NaN the platform produces
   (0x7FF8_0000_0000_0000 and friends), so plain [Float.nan] — and any
   NaN produced by arithmetic on slots, which the invariant in the .mli
   forbids anyway — is classified as a const. *)

type view = Const of float | Slot of { id : int; negated : bool }

let hi_mask = 0x7FFF_FFFF_0000_0000L
let hi_tag = 0x7FFD_1C75_0000_0000L

let is_slot f = Int64.equal (Int64.logand (Int64.bits_of_float f) hi_mask) hi_tag

let with_id ~negated id =
  if id < 0 || id > 0xFFFF_FFFF then
    invalid_arg (Printf.sprintf "Angle.with_id: id %d out of range" id);
  let bits = Int64.logor hi_tag (Int64.of_int id) in
  let bits = if negated then Int64.logor bits Int64.min_int else bits in
  Int64.float_of_bits bits

let view f =
  let bits = Int64.bits_of_float f in
  if Int64.equal (Int64.logand bits hi_mask) hi_tag then
    Slot
      {
        id = Int64.to_int (Int64.logand bits 0xFFFF_FFFFL);
        negated = Int64.compare bits 0L < 0;
      }
  else Const f

let slot_id f =
  match view f with
  | Slot { id; _ } -> id
  | Const _ -> invalid_arg "Angle.slot_id: not a slot"

(* Expression arena.  Arguments reference other arena nodes (or literal
   consts); nodes record the float operation the concrete pipeline would
   have performed, with evaluation replaying the identical IEEE ops in
   the identical order so that bind ≡ compile bit-for-bit. *)

type arg = Lit of float | Ref of { id : int; negated : bool }

type node =
  | Param of { index : int; scale : float } (* theta.(index) *. scale *)
  | Sum of arg * arg (* eval l +. eval r *)
  | Norm of arg (* normalize_const (eval a) *)

let lock = Mutex.create ()
let store = ref (Array.make 64 (Param { index = 0; scale = 0.0 }))
let count = ref 0

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let alloc node =
  with_lock (fun () ->
      let n = !count in
      if n > 0xFFFF_FFFF then failwith "Angle: expression arena exhausted";
      let cap = Array.length !store in
      if n = cap then begin
        let bigger = Array.make (2 * cap) node in
        Array.blit !store 0 bigger 0 cap;
        store := bigger
      end;
      !store.(n) <- node;
      count := n + 1;
      n)

let arena_size () = with_lock (fun () -> !count)

let get id =
  with_lock (fun () ->
      if id < 0 || id >= !count then
        invalid_arg
          (Printf.sprintf "Angle: unknown slot id %d (arena holds %d)" id !count);
      !store.(id))

let known f =
  match view f with
  | Const _ -> true
  | Slot { id; _ } -> id >= 0 && id < arena_size ()

let arg_of f =
  match view f with
  | Const c -> Lit c
  | Slot { id; negated } -> Ref { id; negated }

let param ~index ~scale =
  if index < 0 then invalid_arg "Angle.param: negative parameter index";
  with_id ~negated:false (alloc (Param { index; scale }))

let neg f =
  match view f with
  | Const c -> -.c
  | Slot { id; negated } -> with_id ~negated:(not negated) id

let add a b =
  if is_slot a || is_slot b then
    with_id ~negated:false (alloc (Sum (arg_of a, arg_of b)))
  else a +. b

(* Bit-for-bit the peephole's historical [normalize_angle]: reduce into
   (−2π, 2π], preserving the sign of small angles. *)
let two_pi = 2.0 *. Float.pi
let four_pi = 4.0 *. Float.pi

let normalize_const t =
  let t = Float.rem t four_pi in
  let t = if t > two_pi then t -. four_pi else t in
  if t <= -.two_pi then t +. four_pi else t

let normalize f =
  if is_slot f then with_id ~negated:false (alloc (Norm (arg_of f)))
  else normalize_const f

let merge_norm a b =
  if is_slot a || is_slot b then begin
    let sum = alloc (Sum (arg_of a, arg_of b)) in
    with_id ~negated:false (alloc (Norm (Ref { id = sum; negated = false })))
  end
  else normalize_const (a +. b)

exception Unbound_parameter of int

(* One snapshot, many sites: the arena is append-only and published
   nodes are never mutated, so a (store, count) pair read under the lock
   stays valid for lock-free indexing afterwards (growth replaces the
   array, leaving the snapshot's prefix intact).  A bind patches
   hundreds of slot sites; taking the mutex once instead of per node
   keeps the per-site cost in nanoseconds. *)
let evaluator_of_snapshot (store, count) theta =
  let node id =
    if id < 0 || id >= count then
      invalid_arg
        (Printf.sprintf "Angle: unknown slot id %d (arena holds %d)" id count);
    store.(id)
  in
  let rec eval_id id =
    match node id with
    | Param { index; scale } ->
        if index >= Array.length theta then raise (Unbound_parameter index);
        theta.(index) *. scale
    | Sum (l, r) -> eval_arg l +. eval_arg r
    | Norm a -> normalize_const (eval_arg a)
  and eval_arg = function
    | Lit c -> c
    | Ref { id; negated } ->
        let v = eval_id id in
        if negated then -.v else v
  in
  fun f ->
    match view f with
    | Const c -> c
    | Slot { id; negated } ->
        let v = eval_id id in
        if negated then -.v else v

let evaluator theta =
  evaluator_of_snapshot (with_lock (fun () -> (!store, !count))) theta

let evaluators thetas =
  let snapshot = with_lock (fun () -> (!store, !count)) in
  Array.map (evaluator_of_snapshot snapshot) thetas

let eval theta f = evaluator theta f

let max_param_index f =
  let rec of_id id =
    match get id with
    | Param { index; _ } -> index
    | Sum (l, r) -> max (of_arg l) (of_arg r)
    | Norm a -> of_arg a
  and of_arg = function Lit _ -> -1 | Ref { id; _ } -> of_id id in
  match view f with Const _ -> -1 | Slot { id; _ } -> of_id id

let describe f =
  let buf = Buffer.create 32 in
  let rec go_id id =
    match get id with
    | Param { index; scale } ->
        if scale = 1.0 then Buffer.add_string buf (Printf.sprintf "\xce\xb8[%d]" index)
        else Buffer.add_string buf (Printf.sprintf "\xce\xb8[%d]*%g" index scale)
    | Sum (l, r) ->
        go_arg l;
        Buffer.add_string buf " + ";
        go_arg r
    | Norm a ->
        Buffer.add_string buf "norm(";
        go_arg a;
        Buffer.add_char buf ')'
  and go_arg = function
    | Lit c -> Buffer.add_string buf (Printf.sprintf "%g" c)
    | Ref { id; negated } ->
        if negated then Buffer.add_string buf "-(";
        go_id id;
        if negated then Buffer.add_char buf ')'
  in
  match view f with
  | Const c -> Printf.sprintf "%g" c
  | Slot { id; negated } ->
      if negated then Buffer.add_string buf "-(";
      (if known f then go_id id
       else Buffer.add_string buf (Printf.sprintf "slot#%d?" id));
      if negated then Buffer.add_char buf ')';
      Buffer.contents buf

let to_string f =
  match view f with
  | Const c -> Printf.sprintf "%g" c
  | Slot { id; negated } ->
      Printf.sprintf "%sslot#%d" (if negated then "-" else "") id

(* Structural linearization.  Every arena expression is affine in the
   parameter vector: Param contributes scale to one coefficient, Sum
   distributes, and Norm is dropped because range reduction subtracts a
   multiple of 4π and exp(-i(x - 4πk)/2 σ) = exp(-ix/2 σ) exactly for
   any Pauli σ — so as a rotation generator, norm(x) ≡ x for every
   binding.  The resulting canonical form supports the structural
   equality the translation validator needs: θ/2 + θ/2 and θ linearize
   identically, independent of any sampled value. *)

type linear = { coeffs : (int * float) list; const : float }

let linear_zero = { coeffs = []; const = 0.0 }

let linearize f =
  match view f with
  | Const c -> { coeffs = []; const = c }
  | Slot { id = root; negated } ->
      let store, count = with_lock (fun () -> (!store, !count)) in
      let node id =
        if id < 0 || id >= count then
          invalid_arg
            (Printf.sprintf "Angle: unknown slot id %d (arena holds %d)" id
               count);
        store.(id)
      in
      let tbl = Hashtbl.create 8 in
      let const = ref 0.0 in
      let rec go_id s id =
        match node id with
        | Param { index; scale } ->
            let prev =
              match Hashtbl.find_opt tbl index with Some c -> c | None -> 0.0
            in
            Hashtbl.replace tbl index (prev +. (s *. scale))
        | Sum (l, r) ->
            go_arg s l;
            go_arg s r
        | Norm a -> go_arg s a
      and go_arg s = function
        | Lit c -> const := !const +. (s *. c)
        | Ref { id; negated } -> go_id (if negated then -.s else s) id
      in
      go_id (if negated then -1.0 else 1.0) root;
      let coeffs =
        Hashtbl.fold (fun i c acc -> if c = 0.0 then acc else (i, c) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      { coeffs; const = !const }

let linear_neg l =
  {
    coeffs = List.map (fun (i, c) -> (i, -.c)) l.coeffs;
    const = -.l.const;
  }

let linear_add a b =
  let rec merge xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (i, c) :: xs', (j, d) :: ys' ->
        if i < j then (i, c) :: merge xs' ys
        else if j < i then (j, d) :: merge xs ys'
        else
          let s = c +. d in
          if s = 0.0 then merge xs' ys' else (i, s) :: merge xs' ys'
  in
  { coeffs = merge a.coeffs b.coeffs; const = a.const +. b.const }

(* Distance of [d] from the nearest multiple of [modulo]; NaN stays NaN
   so comparisons against a tolerance fail (never silently equal). *)
let mod_dist ~modulo d =
  let r = Float.abs (Float.rem d modulo) in
  Float.min r (modulo -. r)

let coeffs_close ~tol a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> true
    | (_, c) :: xs', [] -> Float.abs c <= tol && go xs' []
    | [], (_, d) :: ys' -> Float.abs d <= tol && go [] ys'
    | (i, c) :: xs', (j, d) :: ys' ->
        if i < j then Float.abs c <= tol && go xs' ys
        else if j < i then Float.abs d <= tol && go xs ys'
        else
          let scale = Float.max 1.0 (Float.max (Float.abs c) (Float.abs d)) in
          Float.abs (c -. d) <= tol *. scale && go xs' ys'
  in
  go a b

let linear_equal ?(tol = 1e-9) ?modulo a b =
  coeffs_close ~tol a.coeffs b.coeffs
  &&
  let d = a.const -. b.const in
  match modulo with
  | None -> Float.abs d <= tol
  | Some m -> mod_dist ~modulo:m d <= tol

let linear_is_zero ?tol ?modulo l = linear_equal ?tol ?modulo l linear_zero

let linear_to_string l =
  let buf = Buffer.create 32 in
  List.iter
    (fun (i, c) ->
      if Buffer.length buf > 0 then Buffer.add_string buf " + ";
      if c = 1.0 then Buffer.add_string buf (Printf.sprintf "\xce\xb8[%d]" i)
      else Buffer.add_string buf (Printf.sprintf "%g*\xce\xb8[%d]" c i))
    l.coeffs;
  if Buffer.length buf = 0 then Buffer.add_string buf (Printf.sprintf "%g" l.const)
  else if l.const <> 0.0 then
    Buffer.add_string buf (Printf.sprintf " + %g" l.const);
  Buffer.contents buf
