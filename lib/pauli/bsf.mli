(** Binary symplectic form tableau with sign tracking (§III of the paper).

    Each row is a signed Pauli exponentiation [exp(-i θ/2 · (±P))]: the bit
    vectors encode [P], [neg] records the sign accumulated by Clifford
    conjugation, and [angle] is [θ].  Conjugating the tableau by a Clifford
    [C] replaces every row [P] with [C·P·C†]; a sign flip is equivalent to
    negating the angle at synthesis time.

    The tableau is mutable: [apply_*] update it in place.

    The tableau additionally maintains a column-statistics layer (per-column
    support counts, per-row weights, and their aggregate sums), which makes
    {!cost}, {!total_weight}, {!nonlocal_count} and {!row_weight} O(1) and
    powers the allocation-free candidate evaluation of {!Delta}. *)

type t

type row = { pauli : Pauli_string.t; neg : bool; angle : float }
(** Immutable snapshot of one tableau row. *)

val create : int -> t
(** Empty tableau over [n] qubits. *)

val of_terms : int -> (Pauli_string.t * float) list -> t
(** [of_terms n terms] starts with positive signs; every string must act on
    [n] qubits.  Order is preserved. *)

val copy : t -> t
val num_qubits : t -> int
val num_rows : t -> int
val rows : t -> row list
(** Rows in program order. *)

val row_weight : t -> int -> int
val row_pauli : t -> int -> Pauli_string.t

(** {1 Borrowing row views}

    The tableau stores every row's bits in one flat word arena
    ({!Phoenix_util.Arena}): row [i]'s x words are followed by its z
    words at stride [2·row_words].  A {e view} is a borrowing cursor
    over one row — no per-row [Bitvec] or {!Pauli_string} is
    materialized, so read-only traversals (audits, lints, term
    extraction) run allocation-free.  A view borrows the tableau's
    storage: it is invalidated by any mutation ([apply_*],
    [pop_local_rows]), and the cursor passed to {!iter_views} is reused
    across rows — do not retain it past the callback. *)

val row_words : t -> int
(** Words per x (or z) half-row — [⌈n / 62⌉]. *)

type rview
(** A borrowing read-only view of one row. *)

val view : t -> int -> rview
(** A fresh cursor positioned on row [i] (checked). *)

val iter_views : t -> (rview -> unit) -> unit
(** Apply the callback to every row in program order, reusing one
    cursor — the allocation-free replacement for traversing {!rows}. *)

val view_index : rview -> int
val view_neg : rview -> bool
val view_angle : rview -> float
val view_weight : rview -> int

val view_x : rview -> int -> bool
val view_z : rview -> int -> bool
(** Bit [q] of the row's x / z half (checked). *)

val view_x_word : rview -> int -> int
val view_z_word : rview -> int -> int
(** Backing word [k] ([0 ≤ k < row_words]) of the row's x / z half, for
    word-parallel comparisons. *)

val view_pauli : rview -> Pauli_string.t
(** Materialize the viewed row's Pauli string (allocates — escape hatch
    for error reporting). *)

val total_weight : t -> int
(** Eq. 4: size of the union support of all rows. *)

val support : t -> Phoenix_util.Bitvec.t
val support_indices : t -> int list

val nonlocal_count : t -> int
(** Number of rows of weight strictly greater than 1. *)

val audit : t -> string list
(** Cross-check every piece of redundant state — the per-column
    support/x/z counts, their aggregate sums and triangle numbers,
    [w_tot], [n_nl], the per-row weight caches, and angle finiteness —
    against a fresh recomputation from the row bit vectors.  Returns one
    human-readable description per discrepancy; [[]] means the caches are
    consistent.  O(rows · qubits), no simulation.

    When the [PHOENIX_BSF_AUDIT] environment variable is set (non-empty,
    not ["0"]), every mutator ([apply_*], [pop_local_rows]) re-audits the
    tableau on exit and raises [Invalid_argument] on the first
    discrepancy — a debug mode for hunting incremental-bookkeeping bugs
    at their introduction site. *)

(** Deliberate corruption of the redundant cache state (never the bit
    vectors), for fault-injection tests of {!audit} and the
    [Phoenix_analysis] tableau auditor. *)
module Testing : sig
  val corrupt_column_count : t -> int -> unit
  (** Bump the cached support count of one column. *)

  val corrupt_row_weight : t -> int -> unit
  (** Bump one row's cached weight. *)

  val corrupt_nonlocal_count : t -> unit
  (** Bump the cached nonlocal-row counter. *)

  val corrupt_sign : t -> int -> unit
  (** Flip one row's sign bit (caught by the replay audit, not {!audit}). *)
end

val apply_h : t -> int -> unit
val apply_s : t -> int -> unit
val apply_sdg : t -> int -> unit
val apply_cnot : t -> int -> int -> unit
(** Conjugate every row by the given Clifford gate (control, target for
    [apply_cnot]), updating signs per the stabilizer-tableau rules. *)

val apply_clifford2q : t -> Clifford2q.t -> unit
(** Conjugate by one of the six generators, via its {H, S, S†, CNOT}
    decomposition. *)

val pop_local_rows : ?commuting_only:bool -> t -> row list
(** Remove and return every row of weight ≤ 1 (in program order).
    Weight-0 rows are global phases and are returned as well so callers can
    account for them.  With [~commuting_only:true] a local row is only
    peeled when it commutes with all rows remaining in the tableau, making
    the peel an exact program transformation. *)

val cost : t -> float
(** The heuristic BSF cost of Eq. 6:
    [w_tot·n_nl² + Σ_{i<j} |sup_i ∨ sup_j|
     + ½·Σ_{i<j} (|x_i ∨ x_j| + |z_i ∨ z_j|)].

    O(1): the pairwise unions collapse to closed forms over the maintained
    per-column counts — [Σ_{i<j} |s_i ∨ s_j| = (R−1)·Σ_q c_q − Σ_q C(c_q,2)]
    and likewise for the x/z parts — so no pair loop runs.  Agrees
    bit-for-bit with {!cost_reference}. *)

val cost_reference : t -> float
(** The same quantity evaluated by the original O(R²·words) pairwise loop
    straight from the bit vectors, bypassing the incremental counters.
    Test oracle for {!cost} and {!Delta}. *)

(** Allocation-free evaluation of candidate 2Q Clifford conjugations.

    A generator on qubits (a,b) only rewrites columns a and b of the
    tableau, so its cost is determined by those two columns plus the
    global counters.  A workspace transposes the two columns into
    row-indexed words once per qubit pair ({!Delta.load}, O(R)); every
    candidate on that pair is then scored with a few word-parallel
    XOR/popcount passes ({!Delta.eval}, O(R/62) words) — no [copy], no
    [apply_clifford2q], no pairwise loop, and no allocation after the
    workspace reaches capacity. *)
module Delta : sig
  type ws
  (** Reusable workspace; create once, [load] per qubit pair. *)

  val create : unit -> ws

  val load : ws -> t -> a:int -> b:int -> unit
  (** Capture columns [a] and [b] (distinct, in range) and the counter
      snapshot of the tableau.  The workspace is only valid until the
      tableau is next mutated. *)

  val eval : ws -> Clifford2q.t -> float
  (** [eval ws gate] is exactly the {!cost} the loaded tableau would have
      after [apply_clifford2q t gate], for any generator acting on the
      loaded pair (either operand order).  Raises [Invalid_argument] for
      a gate on a different pair. *)

  val eval_kind : ws -> Clifford2q.kind -> swapped:bool -> float
  (** Like {!eval} for the generator [kind] on the loaded pair — operands
      (a,b), or (b,a) when [swapped] — without allocating a gate value. *)
end

val eval_clifford2q_delta : t -> Clifford2q.t -> float
(** [eval_clifford2q_delta t g] is
    [cost (t after g) -. cost t] computed incrementally — one-shot
    convenience over {!Delta} (allocates a fresh workspace). *)

val to_terms : t -> (Pauli_string.t * float) list
(** Rows with signs folded into the angles (symbolically, for slot
    angles — see {!Angle}). *)

val slots : t -> float array
(** The distinct {!Angle} slot angles appearing in the rows, in first-use
    program order (each entry keeps the sign of its first occurrence).
    Empty for fully concrete tableaux.  This order matches the local slot
    ranks used by {!canonical_form}. *)

val canonical_form : t -> string
(** Content-addressing serialization of the tableau, projected onto its
    support columns in ascending order: a [k<support>;r<rows>] preamble
    followed by one string per row in program order (Pauli letters over the
    support, a sign character, and the IEEE-754 bits of the angle).  Two
    tableaux whose rows agree up to a monotone relabelling of their support
    qubits (including trailing idle qubits) have equal canonical forms.

    {!Angle} slot angles serialize as their first-use rank plus sign
    (["S0+"], ["S1-"], …) instead of IEEE bits, so structurally identical
    parametric tableaux share a canonical form across parameter values and
    across processes. *)

val canonical_digest : t -> string
(** MD5 hex digest of the {e row-sorted} canonical form — invariant under
    both support relabelling and reordering of rows within the tableau,
    and sensitive to sign flips and angle changes.  Used as the
    content-address of the synthesis cache. *)

val digest_of_canonical_form : string -> string
(** Recompute {!canonical_digest} from a stored {!canonical_form} string
    (sorts the row section, then hashes).  Lets the cache-integrity audit
    re-derive a persisted entry's address without the original tableau. *)

val pp : Format.formatter -> t -> unit
