(** Symbolic rotation angles for parametric compilation.

    Every rotation angle in the compiler is a [float].  A {e slot} is a
    float whose bit pattern is a tagged quiet NaN carrying the index of a
    symbolic angle expression in a process-wide arena; a {e const} is any
    other float.  Because slots are ordinary floats at the type level,
    the whole pipeline — tableaux, gates, circuits, routing, the
    marshalled cache payloads — carries them without any structural
    change: only the handful of passes that do {e arithmetic} on angles
    must (and do) special-case them.

    {b Invariant.}  No code may rely on float arithmetic preserving a
    slot's NaN payload: [+.], [Float.rem] etc. are free to return any
    NaN.  Every angle-arithmetic site tests {!is_slot} first and takes
    the symbolic path ({!add}, {!neg}, {!merge_norm}, {!normalize}).
    The one guaranteed-exact bit-level operation, IEEE negation, is
    implemented here by flipping the sign bit explicitly.

    {b Bit-identical bind.}  Expressions record the exact float
    operations (and operand order) the concrete pipeline would have
    performed, so evaluating a slot under a parameter vector reproduces
    the concrete compile's angle bit-for-bit — for {e generic} angle
    values.  Degenerate values (angles that are exactly zero, or sums
    that cancel to zero modulo 4π) can change circuit {e structure} in
    the concrete pipeline (zero rotations are dropped), which no
    angle-only patching can reproduce; parametric compilation assumes
    generic parameters and documents that assumption.

    {b Concurrency.}  The arena is guarded by a mutex: slots may be
    created from the parallel synthesis domain pool and evaluated from
    any domain. *)

type view = Const of float | Slot of { id : int; negated : bool }

val view : float -> view

val is_slot : float -> bool
(** [true] exactly for tagged slot NaNs; plain [Float.nan] is a const. *)

val slot_id : float -> int
(** Arena index of a slot ([Invalid_argument] on consts). *)

val with_id : negated:bool -> int -> float
(** Re-tag an existing arena expression id as a slot float.  Used by the
    cache to move slots between local (first-use rank) and absolute id
    coordinates; it does not allocate. *)

val param : index:int -> scale:float -> float
(** A fresh slot evaluating to [theta.(index) *. scale] — the exact
    expression the concrete ansatz pipeline computes. *)

val neg : float -> float
(** Concrete [-.x] on consts; flips the (exact) sign bit on slots. *)

val add : float -> float -> float
(** Concrete [a +. b] when both are consts; otherwise a slot recording
    the sum with [a]'s value as the left operand. *)

val normalize_const : float -> float
(** Canonical angle range reduction into (−2π, 2π], bit-for-bit the
    peephole's [normalize_angle] (which delegates here). *)

val normalize : float -> float
(** [normalize_const] on consts; on slots, a fresh slot recording the
    deferred normalization. *)

val merge_norm : float -> float -> float
(** The peephole rotation-merge step: [normalize_const (a +. b)] when
    both are consts, the equivalent symbolic expression otherwise. *)

exception Unbound_parameter of int
(** Raised by {!eval} when an expression references a parameter index
    outside the supplied vector. *)

val eval : float array -> float -> float
(** [eval theta a] is [a] itself for consts; for slots it replays the
    recorded expression under [theta], reproducing the concrete
    pipeline's float operations in order.  Raises {!Unbound_parameter}
    for out-of-range parameter references and [Invalid_argument] for a
    slot id that is not in the arena (e.g. a slot unmarshalled from an
    alien process without remapping). *)

val evaluator : float array -> float -> float
(** [evaluator theta] snapshots the arena once (one mutex acquisition)
    and returns a function behaving exactly like [eval theta].  Use it
    when evaluating many slots against one parameter vector — a template
    bind — so the per-site cost stays lock-free. *)

val evaluators : float array array -> (float -> float) array
(** One {!evaluator} per parameter vector, all sharing a single arena
    snapshot (one mutex acquisition for the whole batch).  The backbone
    of gradient-style multi-point binds: evaluating a slot through
    [(evaluators [| t |]).(0)] is bit-identical to [evaluator t]. *)

val max_param_index : float -> int
(** Largest parameter index the expression references, [-1] for consts.
    Raises [Invalid_argument] on unknown slot ids. *)

val known : float -> bool
(** Whether a slot's id is live in this process's arena (consts are
    always known). *)

val describe : float -> string
(** Human-readable expression, e.g. ["θ[3]*0.25"] or
    ["norm(θ[0]*0.5 + θ[1]*0.5)"]; plain ["%g"] for consts. *)

val to_string : float -> string
(** Short display form for gate printers: the const as ["%g"], or
    ["slot#id"] / ["-slot#id"]. *)

val arena_size : unit -> int
(** Number of live arena expressions (monotonic; for tests/metrics). *)

(** {1 Structural linearization}

    Every arena expression is affine in the parameter vector, so each
    angle has a canonical linear form [Σ coeffs·θ + const] computed
    {e structurally} — without sampling any binding.  [Norm] nodes are
    dropped: range reduction subtracts a multiple of 4π, and
    [exp(-i(x - 4πk)/2 σ) = exp(-ix/2 σ)] exactly for every Pauli [σ],
    so as a rotation generator [norm(x) ≡ x] for all bindings.  This is
    the angle-equality backbone of the translation validator
    ([Phoenix_tv]): [θ/2 + θ/2] and [θ] linearize identically. *)

type linear = { coeffs : (int * float) list; const : float }
(** Canonical affine form: [coeffs] maps parameter index to coefficient,
    sorted by index with exact-zero entries dropped; [const] is the
    parameter-free part.  A const angle has empty [coeffs]. *)

val linear_zero : linear
(** The zero form (empty coefficients, const [0.0]). *)

val linearize : float -> linear
(** Canonical linear form of an angle.  Consts map to a pure-const form;
    slots are resolved against one arena snapshot (a single mutex
    acquisition).  Raises [Invalid_argument] on unknown slot ids. *)

val linear_neg : linear -> linear
val linear_add : linear -> linear -> linear

val linear_equal : ?tol:float -> ?modulo:float -> linear -> linear -> bool
(** Structural equality of linear forms: coefficients compared pairwise
    within relative tolerance [tol] (default [1e-9], missing entries
    read as [0.0]); consts compared within [tol], or — with [?modulo]
    (typically 2π: rotations equal up to global phase) — modulo the
    given period.  NaN anywhere compares unequal. *)

val linear_is_zero : ?tol:float -> ?modulo:float -> linear -> bool
(** [linear_equal l linear_zero] — true when the angle vanishes for
    every binding (modulo the optional period). *)

val linear_to_string : linear -> string
(** Display form, e.g. ["0.5*θ[0] + 1.5708"]. *)
