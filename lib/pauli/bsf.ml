module Bitvec = Phoenix_util.Bitvec
module Arena = Phoenix_util.Arena

let bpw = Bitvec.bits_per_word

(* Column statistics: the pairwise terms of Eq. 6 collapse to closed forms
   over per-column counts,

     Σ_{i<j} |s_i ∨ s_j| = Σ_q #{(i,j) : i<j, q ∈ s_i ∪ s_j}
                         = Σ_q [C(R,2) − C(R−c_q,2)]
                         = (R−1)·Σ_q c_q − Σ_q C(c_q,2),

   (likewise for the x- and z-only unions with cx_q / cz_q), while
   w_tot = #{q : c_q > 0} and n_nl counts cached row weights > 1.  All
   counters are integers, so the incremental cost is bit-for-bit the
   value the O(R²·words) pairwise loop would compute. *)
type stats = {
  col_c : int array; (* per qubit: rows with x or z set *)
  col_cx : int array;
  col_cz : int array;
  mutable sum_c : int; (* Σ_q c_q *)
  mutable tri_c : int; (* Σ_q C(c_q, 2) *)
  mutable sum_cx : int;
  mutable tri_cx : int;
  mutable sum_cz : int;
  mutable tri_cz : int;
  mutable w_tot : int; (* #{q : c_q > 0} — Eq. 4 *)
  mutable n_nl : int; (* rows of weight > 1 *)
}

(* The tableau proper is one flat word arena: row [i]'s x words occupy
   [[i·stride, i·stride + wpr)] and its z words the following [wpr]
   words, so the row-major sweeps of the mutators and the delta engine
   walk one contiguous buffer with stride [2·wpr] and never allocate.
   Signs, cached weights and angles ride in parallel side arrays kept
   in lockstep by every structural change. *)
type t = {
  n : int;
  wpr : int; (* words per x (or z) half-row *)
  ar : Arena.t; (* stride = 2·wpr *)
  mutable neg : Bytes.t; (* '\001' = negative sign *)
  mutable wts : int array; (* cached |x ∨ z| per row *)
  mutable angles : float array;
  st : stats;
}

type row = { pauli : Pauli_string.t; neg : bool; angle : float }

let tri c = c * (c - 1) / 2

let fresh_stats n =
  {
    col_c = Array.make n 0;
    col_cx = Array.make n 0;
    col_cz = Array.make n 0;
    sum_c = 0;
    tri_c = 0;
    sum_cx = 0;
    tri_cx = 0;
    sum_cz = 0;
    tri_cz = 0;
    w_tot = 0;
    n_nl = 0;
  }

let set_c st q v =
  let old = st.col_c.(q) in
  if v <> old then begin
    st.col_c.(q) <- v;
    st.sum_c <- st.sum_c - old + v;
    st.tri_c <- st.tri_c - tri old + tri v;
    if old = 0 then st.w_tot <- st.w_tot + 1
    else if v = 0 then st.w_tot <- st.w_tot - 1
  end

let set_cx st q v =
  let old = st.col_cx.(q) in
  if v <> old then begin
    st.col_cx.(q) <- v;
    st.sum_cx <- st.sum_cx - old + v;
    st.tri_cx <- st.tri_cx - tri old + tri v
  end

let set_cz st q v =
  let old = st.col_cz.(q) in
  if v <> old then begin
    st.col_cz.(q) <- v;
    st.sum_cz <- st.sum_cz - old + v;
    st.tri_cz <- st.tri_cz - tri old + tri v
  end

(* --- flat-layout primitives -------------------------------------------- *)

let[@inline] stride t = 2 * t.wpr
let num_qubits t = t.n
let num_rows t = Arena.rows t.ar
let[@inline] x_base t i = i * stride t
let[@inline] z_base t i = (i * stride t) + t.wpr

let[@inline] get_bit buf off q =
  (Array.unsafe_get buf (off + (q / bpw)) lsr (q mod bpw)) land 1 <> 0

let[@inline] is_neg (t : t) i = Bytes.unsafe_get t.neg i <> '\000'

let[@inline] set_neg (t : t) i b =
  Bytes.unsafe_set t.neg i (if b then '\001' else '\000')

(* Apply [f] to the absolute index of every set bit in the [nw]-word
   slice at [off] — the arena-slice analogue of [Bitvec.iter_set]. *)
let iter_slice_bits f buf off nw =
  for k = 0 to nw - 1 do
    let w = ref (Array.unsafe_get buf (off + k)) in
    let b = k * bpw in
    while !w <> 0 do
      f (b + Bitvec.ctz_word !w);
      w := !w land (!w - 1)
    done
  done

let slice_or_popcount buf o1 o2 nw =
  let acc = ref 0 in
  for k = 0 to nw - 1 do
    acc :=
      !acc
      + Bitvec.popcount_word
          (Array.unsafe_get buf (o1 + k) lor Array.unsafe_get buf (o2 + k))
  done;
  !acc

(* Account row [i] of the buffer (x at [xo], z at [zo], cached weight
   [w]) into (dir = 1) or out of (dir = -1) the statistics. *)
let account_slice st dir buf xo zo nw w =
  if w > 1 then st.n_nl <- st.n_nl + dir;
  iter_slice_bits (fun q -> set_cx st q (st.col_cx.(q) + dir)) buf xo nw;
  iter_slice_bits (fun q -> set_cz st q (st.col_cz.(q) + dir)) buf zo nw;
  for k = 0 to nw - 1 do
    let w = Array.unsafe_get buf (xo + k) lor Array.unsafe_get buf (zo + k) in
    let w = ref w in
    let b = k * bpw in
    while !w <> 0 do
      let q = b + Bitvec.ctz_word !w in
      set_c st q (st.col_c.(q) + dir);
      w := !w land (!w - 1)
    done
  done

let account t dir i =
  account_slice t.st dir (Arena.buffer t.ar) (x_base t i) (z_base t i) t.wpr
    t.wts.(i)

(* Grow the side arrays to at least [rows] slots (arena growth is
   handled by [Arena.push_n]). *)
let ensure_side t rows =
  let cap = Array.length t.wts in
  if rows > cap then begin
    let cap' = max rows (max 4 (2 * cap)) in
    let wts = Array.make cap' 0 in
    Array.blit t.wts 0 wts 0 cap;
    let angles = Array.make cap' 0.0 in
    Array.blit t.angles 0 angles 0 cap;
    let neg = Bytes.make cap' '\000' in
    Bytes.blit t.neg 0 neg 0 cap;
    t.wts <- wts;
    t.angles <- angles;
    t.neg <- neg
  end

let create n =
  if n <= 0 then invalid_arg "Bsf.create: need at least one qubit";
  let wpr = Bitvec.word_count n in
  {
    n;
    wpr;
    ar = Arena.create ~stride:(2 * wpr) ();
    neg = Bytes.create 0;
    wts = [||];
    angles = [||];
    st = fresh_stats n;
  }

let of_terms n terms =
  let t = create n in
  let rows = List.length terms in
  Arena.push_n t.ar rows;
  ensure_side t rows;
  let buf = Arena.buffer t.ar in
  List.iteri
    (fun i (p, angle) ->
      if Pauli_string.num_qubits p <> n then
        invalid_arg "Bsf.of_terms: qubit-count mismatch";
      let xo = x_base t i and zo = z_base t i in
      Pauli_string.blit_bits_to p ~x_dst:buf ~x_off:xo ~z_dst:buf ~z_off:zo;
      t.wts.(i) <- slice_or_popcount buf xo zo t.wpr;
      t.angles.(i) <- angle;
      set_neg t i false;
      account t 1 i)
    terms;
  t

let copy t =
  let rows = num_rows t in
  let st = t.st in
  {
    t with
    ar = Arena.copy t.ar;
    neg = Bytes.sub t.neg 0 rows;
    wts = Array.sub t.wts 0 rows;
    angles = Array.sub t.angles 0 rows;
    st =
      {
        st with
        col_c = Array.copy st.col_c;
        col_cx = Array.copy st.col_cx;
        col_cz = Array.copy st.col_cz;
      };
  }

let check_row t i =
  if i < 0 || i >= num_rows t then invalid_arg "Bsf: row index out of range"

let row_pauli t i =
  check_row t i;
  let buf = Arena.buffer t.ar in
  Pauli_string.of_bits_owned
    ~x:(Bitvec.of_words t.n buf (x_base t i))
    ~z:(Bitvec.of_words t.n buf (z_base t i))

let snapshot t i =
  { pauli = row_pauli t i; neg = is_neg t i; angle = t.angles.(i) }

let rows t = List.init (num_rows t) (snapshot t)

let row_weight t i =
  check_row t i;
  t.wts.(i)

let support t =
  let acc = Bitvec.create t.n in
  Array.iteri (fun q c -> if c > 0 then Bitvec.set acc q true) t.st.col_c;
  acc

let total_weight t = t.st.w_tot

let support_indices t =
  let acc = ref [] in
  for q = t.n - 1 downto 0 do
    if t.st.col_c.(q) > 0 then acc := q :: !acc
  done;
  !acc

let nonlocal_count t = t.st.n_nl

(* --- Borrowing row views -------------------------------------------------

   Read-only traversal without materializing a [Pauli_string] (two bit
   vectors and a record) per row: one reusable cursor borrows the
   arena.  The audit below, the analysis-layer replay lint and
   [to_terms] all walk the tableau through this window. *)

type rview = { rt : t; mutable ri : int }

let view t i =
  check_row t i;
  { rt = t; ri = i }

let iter_views t f =
  let rows = num_rows t in
  if rows > 0 then begin
    let v = { rt = t; ri = 0 } in
    for i = 0 to rows - 1 do
      v.ri <- i;
      f v
    done
  end

let view_index v = v.ri
let view_neg v = is_neg v.rt v.ri
let view_angle v = v.rt.angles.(v.ri)
let view_weight v = v.rt.wts.(v.ri)

let view_x v q =
  if q < 0 || q >= v.rt.n then invalid_arg "Bsf.view_x: qubit out of range";
  get_bit (Arena.buffer v.rt.ar) (x_base v.rt v.ri) q

let view_z v q =
  if q < 0 || q >= v.rt.n then invalid_arg "Bsf.view_z: qubit out of range";
  get_bit (Arena.buffer v.rt.ar) (z_base v.rt v.ri) q

let row_words t = t.wpr

let view_x_word v k =
  if k < 0 || k >= v.rt.wpr then invalid_arg "Bsf.view_x_word: out of range";
  (Arena.buffer v.rt.ar).(x_base v.rt v.ri + k)

let view_z_word v k =
  if k < 0 || k >= v.rt.wpr then invalid_arg "Bsf.view_z_word: out of range";
  (Arena.buffer v.rt.ar).(z_base v.rt v.ri + k)

let view_pauli v = row_pauli v.rt v.ri

(* --- Cache auditing ------------------------------------------------------

   The column-statistics layer is redundant state: every counter is a
   function of the row bit words.  [audit] recomputes that function from
   scratch and reports every discrepancy, giving the static-analysis layer
   (and the [PHOENIX_BSF_AUDIT] debug mode) a simulation-free oracle for
   the incremental bookkeeping of the mutators below. *)

let audit t =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  let buf = Arena.buffer t.ar in
  let fresh = fresh_stats t.n in
  iter_views t (fun v ->
      let i = view_index v in
      let xo = x_base t i and zo = z_base t i in
      let w = slice_or_popcount buf xo zo t.wpr in
      if view_weight v <> w then
        add "row %d: cached weight %d, bit vectors say %d" i (view_weight v) w;
      let angle = view_angle v in
      if not (Float.is_finite angle) && not (Angle.is_slot angle) then
        add "row %d: non-finite angle %h" i angle;
      account_slice fresh 1 buf xo zo t.wpr w);
  let st = t.st in
  for q = 0 to t.n - 1 do
    if st.col_c.(q) <> fresh.col_c.(q) then
      add "column %d: cached support count %d, recomputed %d" q st.col_c.(q)
        fresh.col_c.(q);
    if st.col_cx.(q) <> fresh.col_cx.(q) then
      add "column %d: cached x count %d, recomputed %d" q st.col_cx.(q)
        fresh.col_cx.(q);
    if st.col_cz.(q) <> fresh.col_cz.(q) then
      add "column %d: cached z count %d, recomputed %d" q st.col_cz.(q)
        fresh.col_cz.(q)
  done;
  let scalar name cached recomputed =
    if cached <> recomputed then
      add "%s: cached %d, recomputed %d" name cached recomputed
  in
  scalar "sum_c" st.sum_c fresh.sum_c;
  scalar "tri_c" st.tri_c fresh.tri_c;
  scalar "sum_cx" st.sum_cx fresh.sum_cx;
  scalar "tri_cx" st.tri_cx fresh.tri_cx;
  scalar "sum_cz" st.sum_cz fresh.sum_cz;
  scalar "tri_cz" st.tri_cz fresh.tri_cz;
  scalar "w_tot" st.w_tot fresh.w_tot;
  scalar "n_nl (nonlocal rows)" st.n_nl fresh.n_nl;
  List.rev !issues

let debug_audit_enabled =
  lazy
    (match Sys.getenv_opt "PHOENIX_BSF_AUDIT" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let debug_audit t =
  if Lazy.force debug_audit_enabled then
    match audit t with
    | [] -> ()
    | issues ->
      invalid_arg
        ("Bsf cache audit failed after mutation: " ^ String.concat "; " issues)

(* Sign conventions (standard stabilizer-tableau update rules, verified
   against dense conjugation in the test suite):
   - H:  X ↔ Z, Y ↦ -Y.
   - S:  X ↦ Y, Y ↦ -X, Z ↦ Z.
   - S†: X ↦ -Y ... i.e. the sign flips on x ∧ ¬z before z ^= x.
   - CNOT a→b: x_b ^= x_a, z_a ^= z_b, sign flips on x_a ∧ z_b ∧ (x_b = z_a)
     evaluated on the pre-update bits.

   Every mutator is one row-major sweep over the arena: per row it
   touches the one or two words holding the operand columns, updating
   the column deltas as it goes — cache-linear and allocation-free. *)

let apply_h t q =
  if q < 0 || q >= t.n then invalid_arg "Bsf.apply_h: qubit out of range";
  let buf = Arena.buffer t.ar in
  let rows = num_rows t in
  let wq = q / bpw and m = 1 lsl (q mod bpw) in
  let s = stride t in
  for i = 0 to rows - 1 do
    let xk = (i * s) + wq in
    let zk = xk + t.wpr in
    let xw = Array.unsafe_get buf xk and zw = Array.unsafe_get buf zk in
    let xb = xw land m and zb = zw land m in
    if xb <> 0 && zb <> 0 then set_neg t i (not (is_neg t i));
    if xb <> zb then begin
      Array.unsafe_set buf xk (xw lxor m);
      Array.unsafe_set buf zk (zw lxor m)
    end
  done;
  (* columns swap roles at q; support, weights and n_nl are untouched *)
  let st = t.st in
  let cx = st.col_cx.(q) and cz = st.col_cz.(q) in
  set_cx st q cz;
  set_cz st q cx;
  debug_audit t

(* S and S† share the bit action z_q ^= x_q: only cz_q changes, by the
   balance of X rows gaining z against Y rows losing it. *)
let apply_s_like ~sign_on_z t q =
  if q < 0 || q >= t.n then invalid_arg "Bsf.apply_s: qubit out of range";
  let buf = Arena.buffer t.ar in
  let rows = num_rows t in
  let wq = q / bpw and m = 1 lsl (q mod bpw) in
  let s = stride t in
  let st = t.st in
  let dcz = ref 0 in
  for i = 0 to rows - 1 do
    let xk = (i * s) + wq in
    let xw = Array.unsafe_get buf xk in
    if xw land m <> 0 then begin
      let zk = xk + t.wpr in
      let zw = Array.unsafe_get buf zk in
      let zq = zw land m <> 0 in
      if zq = sign_on_z then set_neg t i (not (is_neg t i));
      Array.unsafe_set buf zk (zw lxor m);
      dcz := !dcz + (if zq then -1 else 1)
    end
  done;
  set_cz st q (st.col_cz.(q) + !dcz);
  debug_audit t

let apply_s t q = apply_s_like ~sign_on_z:true t q
let apply_sdg t q = apply_s_like ~sign_on_z:false t q

let apply_cnot t a b =
  if a = b then invalid_arg "Bsf.apply_cnot: qubits must differ";
  if a < 0 || a >= t.n || b < 0 || b >= t.n then
    invalid_arg "Bsf.apply_cnot: qubit out of range";
  let buf = Arena.buffer t.ar in
  let rows = num_rows t in
  let wa = a / bpw and ma = 1 lsl (a mod bpw) in
  let wb = b / bpw and mb = 1 lsl (b mod bpw) in
  let s = stride t in
  let st = t.st in
  let dcxb = ref 0 and dcza = ref 0 and dca = ref 0 and dcb = ref 0 in
  for i = 0 to rows - 1 do
    let base = i * s in
    let xak = base + wa
    and zak = base + t.wpr + wa
    and xbk = base + wb
    and zbk = base + t.wpr + wb in
    let xa = Array.unsafe_get buf xak land ma <> 0
    and za = Array.unsafe_get buf zak land ma <> 0
    and xb = Array.unsafe_get buf xbk land mb <> 0
    and zb = Array.unsafe_get buf zbk land mb <> 0 in
    if xa && zb && xb = za then set_neg t i (not (is_neg t i));
    let xb' = xb <> xa and za' = za <> zb in
    if xb' <> xb then begin
      Array.unsafe_set buf xbk (Array.unsafe_get buf xbk lxor mb);
      dcxb := !dcxb + (if xb' then 1 else -1)
    end;
    if za' <> za then begin
      Array.unsafe_set buf zak (Array.unsafe_get buf zak lxor ma);
      dcza := !dcza + (if za' then 1 else -1)
    end;
    let sa = xa || za and sa' = xa || za' in
    let sb = xb || zb and sb' = xb' || zb in
    let dw =
      (if sa' then 1 else 0) - (if sa then 1 else 0)
      + (if sb' then 1 else 0)
      - (if sb then 1 else 0)
    in
    if sa' <> sa then dca := !dca + (if sa' then 1 else -1);
    if sb' <> sb then dcb := !dcb + (if sb' then 1 else -1);
    if dw <> 0 then begin
      let w = Array.unsafe_get t.wts i in
      let w' = w + dw in
      Array.unsafe_set t.wts i w';
      if w > 1 && w' <= 1 then st.n_nl <- st.n_nl - 1
      else if w <= 1 && w' > 1 then st.n_nl <- st.n_nl + 1
    end
  done;
  set_cx st b (st.col_cx.(b) + !dcxb);
  set_cz st a (st.col_cz.(a) + !dcza);
  set_c st a (st.col_c.(a) + !dca);
  set_c st b (st.col_c.(b) + !dcb);
  debug_audit t

let apply_basis_gate t = function
  | Clifford2q.H q -> apply_h t q
  | Clifford2q.S q -> apply_s t q
  | Clifford2q.Sdg q -> apply_sdg t q
  | Clifford2q.Cnot (a, b) -> apply_cnot t a b

(* Conjugation by a product C = g_k ⋯ g_1 (time order g_1 first) nests as
   conj(C, P) = conj(g_k, … conj(g_1, P) …), so primitives are applied in
   the decomposition's time order. *)
let apply_clifford2q t gate =
  List.iter (apply_basis_gate t) (Clifford2q.decompose gate)

let rows_commute t i j =
  let buf = Arena.buffer t.ar in
  let xi = x_base t i
  and zi = z_base t i
  and xj = x_base t j
  and zj = z_base t j in
  let acc = ref 0 in
  for k = 0 to t.wpr - 1 do
    acc :=
      !acc
      + Bitvec.popcount_word
          (Array.unsafe_get buf (xi + k) land Array.unsafe_get buf (zj + k))
      + Bitvec.popcount_word
          (Array.unsafe_get buf (zi + k) land Array.unsafe_get buf (xj + k))
  done;
  !acc mod 2 = 0

let pop_local_rows ?(commuting_only = false) t =
  let n_rows = num_rows t in
  let local = Array.init n_rows (fun i -> t.wts.(i) <= 1) in
  if commuting_only then begin
    (* A local row may only leave its program position when it commutes
       with every row that stays behind — including locals that
       themselves fail the test, hence the fixpoint iteration.  Peeled
       locals keep their relative order, so they need not commute with
       each other. *)
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n_rows - 1 do
        if local.(i) then
          for j = 0 to n_rows - 1 do
            if (not local.(j)) && not (rows_commute t i j) then begin
              local.(i) <- false;
              changed := true
            end
          done
      done
    done
  end;
  let peeled = ref [] in
  for i = n_rows - 1 downto 0 do
    if local.(i) then begin
      (* peeled rows have weight ≤ 1: at most one column to release *)
      account t (-1) i;
      peeled := snapshot t i :: !peeled
    end
  done;
  ignore
    (Arena.compact t.ar
       ~keep:(fun i -> not local.(i))
       (fun old_i new_i ->
         if old_i <> new_i then begin
           t.wts.(new_i) <- t.wts.(old_i);
           t.angles.(new_i) <- t.angles.(old_i);
           Bytes.unsafe_set t.neg new_i (Bytes.unsafe_get t.neg old_i)
         end));
  debug_audit t;
  !peeled

(* The Eq. 6 combination, shared verbatim by the incremental cost, the
   delta engine and the pairwise reference so all three agree to the last
   ulp whenever their integer counters agree. *)
let cost_of_counters ~rows ~w_tot ~n_nl ~sum_c ~tri_c ~sum_cx ~tri_cx ~sum_cz
    ~tri_cz =
  let pair_sup = ((rows - 1) * sum_c) - tri_c in
  let pair_x = ((rows - 1) * sum_cx) - tri_cx in
  let pair_z = ((rows - 1) * sum_cz) - tri_cz in
  (float_of_int w_tot *. float_of_int n_nl *. float_of_int n_nl)
  +. float_of_int pair_sup
  +. (0.5 *. float_of_int (pair_x + pair_z))

let cost t =
  let st = t.st in
  cost_of_counters ~rows:(num_rows t) ~w_tot:st.w_tot ~n_nl:st.n_nl
    ~sum_c:st.sum_c ~tri_c:st.tri_c ~sum_cx:st.sum_cx ~tri_cx:st.tri_cx
    ~sum_cz:st.sum_cz ~tri_cz:st.tri_cz

(* Independent O(R²·words) evaluation of Eq. 6 straight from the bits,
   bypassing the incremental counters; the property suite pins [cost]
   against this. *)
let cost_reference t =
  let n_rows = num_rows t in
  let buf = Arena.buffer t.ar in
  let nw = t.wpr in
  let sup_acc = Array.make nw 0 in
  let n_nl = ref 0 in
  for i = 0 to n_rows - 1 do
    let xo = x_base t i and zo = z_base t i in
    for k = 0 to nw - 1 do
      sup_acc.(k) <- sup_acc.(k) lor buf.(xo + k) lor buf.(zo + k)
    done;
    if slice_or_popcount buf xo zo nw > 1 then incr n_nl
  done;
  let w_tot =
    float_of_int
      (Array.fold_left (fun acc w -> acc + Bitvec.popcount_word w) 0 sup_acc)
  in
  let n_nl = float_of_int !n_nl in
  let pair_sup = ref 0 and pair_x = ref 0 and pair_z = ref 0 in
  for i = 0 to n_rows - 1 do
    let xi = x_base t i and zi = z_base t i in
    for j = i + 1 to n_rows - 1 do
      let xj = x_base t j and zj = z_base t j in
      for k = 0 to nw - 1 do
        let xiw = buf.(xi + k)
        and ziw = buf.(zi + k)
        and xjw = buf.(xj + k)
        and zjw = buf.(zj + k) in
        pair_sup :=
          !pair_sup + Bitvec.popcount_word (xiw lor ziw lor xjw lor zjw);
        pair_x := !pair_x + Bitvec.popcount_word (xiw lor xjw);
        pair_z := !pair_z + Bitvec.popcount_word (ziw lor zjw)
      done
    done
  done;
  (w_tot *. n_nl *. n_nl)
  +. float_of_int !pair_sup
  +. (0.5 *. float_of_int (!pair_x + !pair_z))

(* --- Allocation-free candidate evaluation -------------------------------

   A candidate 2Q Clifford on (a,b) only rewrites columns a and b, so its
   effect on the cost is a function of those two columns alone.  The
   workspace transposes them into row-indexed words once per qubit pair;
   each candidate then costs a handful of word-parallel XOR/popcount
   passes over R bits — no tableau copy, no conjugation, no pair loop. *)
module Delta = struct
  let bpw = Bitvec.bits_per_word

  (* Conjugation by a generator is GF(2)-linear on the four operand
     columns (signs do not affect the cost), so each (kind, operand
     order) reduces to four 4-bit masks: new column = XOR of the old
     columns selected by the mask.  The masks are derived once at module
     init by pushing symbolic basis masks through [Clifford2q.decompose]
     — the exact instruction sequence [apply_clifford2q] executes — so
     they cannot drift from the tableau semantics. *)
  let kind_index = function
    | Clifford2q.CXX -> 0
    | Clifford2q.CYY -> 1
    | Clifford2q.CZZ -> 2
    | Clifford2q.CXY -> 3
    | Clifford2q.CYZ -> 4
    | Clifford2q.CZX -> 5

  (* masks.(2·kind + order): order 0 = gate on (a,b), 1 = gate on (b,a);
     each entry is (m_xa, m_za, m_xb, m_zb) over basis bits
     1=xa, 2=za, 4=xb, 8=zb. *)
  let col_masks =
    let compute kind swapped =
      let xa = ref 1 and za = ref 2 and xb = ref 4 and zb = ref 8 in
      (* qubit 0 stands for column a, qubit 1 for column b *)
      let col_x q = if q = 0 then xa else xb in
      let col_z q = if q = 0 then za else zb in
      let gate =
        if swapped then Clifford2q.make kind 1 0 else Clifford2q.make kind 0 1
      in
      List.iter
        (function
          | Clifford2q.H q ->
            let x = col_x q and z = col_z q in
            let tmp = !x in
            x := !z;
            z := tmp
          | Clifford2q.S q | Clifford2q.Sdg q ->
            let x = col_x q and z = col_z q in
            z := !z lxor !x
          | Clifford2q.Cnot (c, t) ->
            (col_x t) := !(col_x t) lxor !(col_x c);
            (col_z c) := !(col_z c) lxor !(col_z t))
        (Clifford2q.decompose gate);
      !xa, !za, !xb, !zb
    in
    Array.init 12 (fun i ->
        let kind = List.nth Clifford2q.all_kinds (i / 2) in
        compute kind (i mod 2 = 1))

  type ws = {
    mutable nwords : int;
    (* column a / b of the x and z halves, transposed to row-major bits *)
    mutable xa : int array;
    mutable za : int array;
    mutable xb : int array;
    mutable zb : int array;
    (* rows whose weight outside {a,b} is 0 / 1: the only rows whose
       local/nonlocal status a candidate can change *)
    mutable m0 : int array;
    mutable m1 : int array;
    mutable qa : int;
    mutable qb : int;
    mutable nl_before : int; (* nonlocal rows of m0/m1 under current cols *)
    (* snapshot of the tableau counters at load time *)
    mutable s_rows : int;
    mutable s_w_tot : int;
    mutable s_n_nl : int;
    mutable s_sum_c : int;
    mutable s_tri_c : int;
    mutable s_sum_cx : int;
    mutable s_tri_cx : int;
    mutable s_sum_cz : int;
    mutable s_tri_cz : int;
    mutable ca : int;
    mutable cb : int;
    mutable cxa : int;
    mutable cxb : int;
    mutable cza : int;
    mutable czb : int;
  }

  let create () =
    {
      nwords = 0;
      xa = [||];
      za = [||];
      xb = [||];
      zb = [||];
      m0 = [||];
      m1 = [||];
      qa = -1;
      qb = -1;
      nl_before = 0;
      s_rows = 0;
      s_w_tot = 0;
      s_n_nl = 0;
      s_sum_c = 0;
      s_tri_c = 0;
      s_sum_cx = 0;
      s_tri_cx = 0;
      s_sum_cz = 0;
      s_tri_cz = 0;
      ca = 0;
      cb = 0;
      cxa = 0;
      cxb = 0;
      cza = 0;
      czb = 0;
    }

  let ensure_capacity ws nw =
    if Array.length ws.xa < nw then begin
      ws.xa <- Array.make nw 0;
      ws.za <- Array.make nw 0;
      ws.xb <- Array.make nw 0;
      ws.zb <- Array.make nw 0;
      ws.m0 <- Array.make nw 0;
      ws.m1 <- Array.make nw 0
    end
    else
      for wi = 0 to nw - 1 do
        ws.xa.(wi) <- 0;
        ws.za.(wi) <- 0;
        ws.xb.(wi) <- 0;
        ws.zb.(wi) <- 0;
        ws.m0.(wi) <- 0;
        ws.m1.(wi) <- 0
      done

  let load ws t ~a ~b =
    if a = b then invalid_arg "Bsf.Delta.load: qubits must differ";
    if a < 0 || a >= t.n || b < 0 || b >= t.n then
      invalid_arg "Bsf.Delta.load: qubit out of range";
    let rows = num_rows t in
    let nw = (rows + bpw - 1) / bpw in
    ensure_capacity ws (max nw 1);
    ws.nwords <- nw;
    ws.qa <- a;
    ws.qb <- b;
    let buf = Arena.buffer t.ar in
    let s = stride t in
    let wpr = t.wpr in
    let wa = a / bpw and sha = a mod bpw in
    let wb = b / bpw and shb = b mod bpw in
    for i = 0 to rows - 1 do
      let base = i * s in
      let xbits =
        ((Array.unsafe_get buf (base + wa) lsr sha) land 1)
        lor (((Array.unsafe_get buf (base + wb) lsr shb) land 1) lsl 1)
      in
      let zbits =
        ((Array.unsafe_get buf (base + wpr + wa) lsr sha) land 1)
        lor (((Array.unsafe_get buf (base + wpr + wb) lsr shb) land 1) lsl 1)
      in
      let wi = i / bpw in
      let bit = 1 lsl (i mod bpw) in
      if xbits land 1 <> 0 then ws.xa.(wi) <- ws.xa.(wi) lor bit;
      if xbits land 2 <> 0 then ws.xb.(wi) <- ws.xb.(wi) lor bit;
      if zbits land 1 <> 0 then ws.za.(wi) <- ws.za.(wi) lor bit;
      if zbits land 2 <> 0 then ws.zb.(wi) <- ws.zb.(wi) lor bit;
      let sup = xbits lor zbits in
      let w_out =
        Array.unsafe_get t.wts i - (sup land 1) - ((sup lsr 1) land 1)
      in
      if w_out = 0 then ws.m0.(wi) <- ws.m0.(wi) lor bit
      else if w_out = 1 then ws.m1.(wi) <- ws.m1.(wi) lor bit
    done;
    let nl = ref 0 in
    for wi = 0 to nw - 1 do
      let sa = ws.xa.(wi) lor ws.za.(wi) and sb = ws.xb.(wi) lor ws.zb.(wi) in
      nl :=
        !nl
        + Bitvec.popcount_word (ws.m1.(wi) land (sa lor sb))
        + Bitvec.popcount_word (ws.m0.(wi) land sa land sb)
    done;
    ws.nl_before <- !nl;
    let st = t.st in
    ws.s_rows <- rows;
    ws.s_w_tot <- st.w_tot;
    ws.s_n_nl <- st.n_nl;
    ws.s_sum_c <- st.sum_c;
    ws.s_tri_c <- st.tri_c;
    ws.s_sum_cx <- st.sum_cx;
    ws.s_tri_cx <- st.tri_cx;
    ws.s_sum_cz <- st.sum_cz;
    ws.s_tri_cz <- st.tri_cz;
    ws.ca <- st.col_c.(a);
    ws.cb <- st.col_c.(b);
    ws.cxa <- st.col_cx.(a);
    ws.cxb <- st.col_cx.(b);
    ws.cza <- st.col_cz.(a);
    ws.czb <- st.col_cz.(b)

  (* Resulting [cost] of the tableau the workspace was loaded from, were
     [gate] (on the loaded qubit pair) applied — without applying it.
     One fused pass over the column words: the candidate's columns are
     formed on the fly from the precomputed masks (XOR of at most four
     words each) and reduced to the six popcounts plus the nonlocality
     correction.  No allocation, no branches on the decomposition. *)
  let eval_masked ws ki order =
    let mxa, mza, mxb, mzb = col_masks.((2 * ki) + order) in
    let nw = ws.nwords in
    let cxa_n = ref 0
    and cza_n = ref 0
    and ca_n = ref 0
    and cxb_n = ref 0
    and czb_n = ref 0
    and cb_n = ref 0
    and nl_after = ref 0 in
    for wi = 0 to nw - 1 do
      let oxa = Array.unsafe_get ws.xa wi
      and oza = Array.unsafe_get ws.za wi
      and oxb = Array.unsafe_get ws.xb wi
      and ozb = Array.unsafe_get ws.zb wi in
      let sel m =
        (if m land 1 <> 0 then oxa else 0)
        lxor (if m land 2 <> 0 then oza else 0)
        lxor (if m land 4 <> 0 then oxb else 0)
        lxor (if m land 8 <> 0 then ozb else 0)
      in
      let xaw = sel mxa
      and zaw = sel mza
      and xbw = sel mxb
      and zbw = sel mzb in
      let sa = xaw lor zaw and sb = xbw lor zbw in
      cxa_n := !cxa_n + Bitvec.popcount_word xaw;
      cza_n := !cza_n + Bitvec.popcount_word zaw;
      ca_n := !ca_n + Bitvec.popcount_word sa;
      cxb_n := !cxb_n + Bitvec.popcount_word xbw;
      czb_n := !czb_n + Bitvec.popcount_word zbw;
      cb_n := !cb_n + Bitvec.popcount_word sb;
      nl_after :=
        !nl_after
        + Bitvec.popcount_word (Array.unsafe_get ws.m1 wi land (sa lor sb))
        + Bitvec.popcount_word (Array.unsafe_get ws.m0 wi land sa land sb)
    done;
    let nz c = if c > 0 then 1 else 0 in
    cost_of_counters ~rows:ws.s_rows
      ~w_tot:(ws.s_w_tot - nz ws.ca - nz ws.cb + nz !ca_n + nz !cb_n)
      ~n_nl:(ws.s_n_nl - ws.nl_before + !nl_after)
      ~sum_c:(ws.s_sum_c - ws.ca - ws.cb + !ca_n + !cb_n)
      ~tri_c:(ws.s_tri_c - tri ws.ca - tri ws.cb + tri !ca_n + tri !cb_n)
      ~sum_cx:(ws.s_sum_cx - ws.cxa - ws.cxb + !cxa_n + !cxb_n)
      ~tri_cx:(ws.s_tri_cx - tri ws.cxa - tri ws.cxb + tri !cxa_n + tri !cxb_n)
      ~sum_cz:(ws.s_sum_cz - ws.cza - ws.czb + !cza_n + !czb_n)
      ~tri_cz:(ws.s_tri_cz - tri ws.cza - tri ws.czb + tri !cza_n + tri !czb_n)

  (* Allocation-free entry point for search loops: score [kind] on the
     loaded pair, operands (a,b) — or (b,a) with [swapped] — without
     materializing a gate record. *)
  let eval_kind ws kind ~swapped =
    eval_masked ws (kind_index kind) (if swapped then 1 else 0)

  let eval ws (gate : Clifford2q.t) =
    let ga = gate.Clifford2q.a and gb = gate.Clifford2q.b in
    let order =
      if ga = ws.qa && gb = ws.qb then 0
      else if ga = ws.qb && gb = ws.qa then 1
      else invalid_arg "Bsf.Delta.eval: gate does not act on the loaded pair"
    in
    eval_masked ws (kind_index gate.Clifford2q.kind) order
end

let eval_clifford2q_delta t gate =
  let ws = Delta.create () in
  Delta.load ws t ~a:gate.Clifford2q.a ~b:gate.Clifford2q.b;
  Delta.eval ws gate -. cost t

let to_terms t =
  List.init (num_rows t) (fun i ->
      let angle = t.angles.(i) in
      let angle = if is_neg t i then Angle.neg angle else angle in
      row_pauli t i, angle)

let slots t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  for i = 0 to num_rows t - 1 do
    let angle = t.angles.(i) in
    match Angle.view angle with
    | Angle.Const _ -> ()
    | Angle.Slot { id; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id (Hashtbl.length seen);
        acc := angle :: !acc
      end
  done;
  Array.of_list (List.rev !acc)

(* Canonical content addressing.  Rows are serialized projected onto the
   tableau's support columns (ascending), so two tableaux that differ only
   by which absolute qubits the group touches — or by trailing idle
   qubits — serialize identically.  [canonical_form] keeps program order
   (synthesis is order-sensitive); [canonical_digest] sorts the row
   serializations first, so it is additionally invariant under gadget
   reordering within the group. *)

let canonical_row_strings t =
  let support = Array.of_list (support_indices t) in
  let buf = Arena.buffer t.ar in
  (* Slot angles serialize as their first-use rank within this tableau (plus
     the occurrence's sign), not their process-local arena id: two slotted
     tableaux with the same structure then share a canonical form across
     parameter vectors, sessions, and processes.  The ['S'] prefix cannot
     collide with the lowercase-hex IEEE bits of const angles. *)
  let local = Hashtbl.create 8 in
  for i = 0 to num_rows t - 1 do
    match Angle.view t.angles.(i) with
    | Angle.Const _ -> ()
    | Angle.Slot { id; _ } ->
      if not (Hashtbl.mem local id) then
        Hashtbl.add local id (Hashtbl.length local)
  done;
  Array.init (num_rows t) (fun i ->
      let xo = x_base t i and zo = z_base t i in
      let sb = Buffer.create (Array.length support + 24) in
      Array.iter
        (fun q ->
          let bits =
            (if get_bit buf xo q then 1 else 0)
            lor if get_bit buf zo q then 2 else 0
          in
          Buffer.add_char sb
            (match bits with 0 -> 'I' | 1 -> 'X' | 2 -> 'Z' | _ -> 'Y'))
        support;
      Buffer.add_char sb (if is_neg t i then '-' else '+');
      (match Angle.view t.angles.(i) with
      | Angle.Const _ ->
        Buffer.add_string sb
          (Printf.sprintf "%Lx" (Int64.bits_of_float t.angles.(i)))
      | Angle.Slot { id; negated } ->
        Buffer.add_string sb
          (Printf.sprintf "S%d%c" (Hashtbl.find local id)
             (if negated then '-' else '+')));
      Buffer.contents sb)

let canonical_form t =
  let rows = canonical_row_strings t in
  Printf.sprintf "k%d;r%d;%s" t.st.w_tot (Array.length rows)
    (String.concat ";" (Array.to_list rows))

let digest_of_canonical_form form =
  let sorted_rows =
    match String.split_on_char ';' form with
    | k :: r :: rows -> k :: r :: List.sort String.compare rows
    | short -> short
  in
  Digest.to_hex
    (Digest.string ("phoenix-bsf-v1;" ^ String.concat ";" sorted_rows))

let canonical_digest t = digest_of_canonical_form (canonical_form t)

(* Deliberate cache corruption for fault-injection tests of [audit] and
   the analysis layer.  Only the redundant state is touched — never the
   bit words — so every corruption is exactly the class of bug the
   incremental bookkeeping could introduce. *)
module Testing = struct
  let corrupt_column_count t q =
    if q < 0 || q >= t.n then invalid_arg "Bsf.Testing.corrupt_column_count";
    t.st.col_c.(q) <- t.st.col_c.(q) + 1

  let corrupt_row_weight t i =
    if i < 0 || i >= num_rows t then
      invalid_arg "Bsf.Testing.corrupt_row_weight";
    t.wts.(i) <- t.wts.(i) + 1

  let corrupt_nonlocal_count t = t.st.n_nl <- t.st.n_nl + 1

  let corrupt_sign t i =
    if i < 0 || i >= num_rows t then invalid_arg "Bsf.Testing.corrupt_sign";
    set_neg t i (not (is_neg t i))
end

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  iter_views t (fun v ->
      Format.fprintf fmt "%c%a (θ=%g)@,"
        (if view_neg v then '-' else '+')
        Pauli_string.pp (view_pauli v) (view_angle v));
  Format.fprintf fmt "@]"
