module Bitvec = Phoenix_util.Bitvec

type mrow = {
  x : Bitvec.t;
  z : Bitvec.t;
  mutable neg : bool;
  mutable w : int; (* cached |x ∨ z|, kept current by every mutation *)
  angle : float;
}

(* Column statistics: the pairwise terms of Eq. 6 collapse to closed forms
   over per-column counts,

     Σ_{i<j} |s_i ∨ s_j| = Σ_q #{(i,j) : i<j, q ∈ s_i ∪ s_j}
                         = Σ_q [C(R,2) − C(R−c_q,2)]
                         = (R−1)·Σ_q c_q − Σ_q C(c_q,2),

   (likewise for the x- and z-only unions with cx_q / cz_q), while
   w_tot = #{q : c_q > 0} and n_nl counts cached row weights > 1.  All
   counters are integers, so the incremental cost is bit-for-bit the
   value the O(R²·words) pairwise loop would compute. *)
type stats = {
  col_c : int array; (* per qubit: rows with x or z set *)
  col_cx : int array;
  col_cz : int array;
  mutable sum_c : int; (* Σ_q c_q *)
  mutable tri_c : int; (* Σ_q C(c_q, 2) *)
  mutable sum_cx : int;
  mutable tri_cx : int;
  mutable sum_cz : int;
  mutable tri_cz : int;
  mutable w_tot : int; (* #{q : c_q > 0} — Eq. 4 *)
  mutable n_nl : int; (* rows of weight > 1 *)
}

type t = { n : int; mutable mrows : mrow array; st : stats }

type row = { pauli : Pauli_string.t; neg : bool; angle : float }

let tri c = c * (c - 1) / 2

let fresh_stats n =
  {
    col_c = Array.make n 0;
    col_cx = Array.make n 0;
    col_cz = Array.make n 0;
    sum_c = 0;
    tri_c = 0;
    sum_cx = 0;
    tri_cx = 0;
    sum_cz = 0;
    tri_cz = 0;
    w_tot = 0;
    n_nl = 0;
  }

let set_c st q v =
  let old = st.col_c.(q) in
  if v <> old then begin
    st.col_c.(q) <- v;
    st.sum_c <- st.sum_c - old + v;
    st.tri_c <- st.tri_c - tri old + tri v;
    if old = 0 then st.w_tot <- st.w_tot + 1
    else if v = 0 then st.w_tot <- st.w_tot - 1
  end

let set_cx st q v =
  let old = st.col_cx.(q) in
  if v <> old then begin
    st.col_cx.(q) <- v;
    st.sum_cx <- st.sum_cx - old + v;
    st.tri_cx <- st.tri_cx - tri old + tri v
  end

let set_cz st q v =
  let old = st.col_cz.(q) in
  if v <> old then begin
    st.col_cz.(q) <- v;
    st.sum_cz <- st.sum_cz - old + v;
    st.tri_cz <- st.tri_cz - tri old + tri v
  end

(* Account one row into (dir = 1) or out of (dir = -1) the statistics. *)
let account st dir r =
  if r.w > 1 then st.n_nl <- st.n_nl + dir;
  Bitvec.iter_set (fun q -> set_cx st q (st.col_cx.(q) + dir)) r.x;
  Bitvec.iter_set (fun q -> set_cz st q (st.col_cz.(q) + dir)) r.z;
  Bitvec.iter_set (fun q -> set_c st q (st.col_c.(q) + dir)) (Bitvec.logor r.x r.z)

let create n =
  if n <= 0 then invalid_arg "Bsf.create: need at least one qubit";
  { n; mrows = [||]; st = fresh_stats n }

let of_terms n terms =
  let to_row (p, angle) =
    if Pauli_string.num_qubits p <> n then
      invalid_arg "Bsf.of_terms: qubit-count mismatch";
    let x = Pauli_string.x_bits p and z = Pauli_string.z_bits p in
    { x; z; neg = false; w = Bitvec.or_popcount x z; angle }
  in
  let t = { n; mrows = Array.of_list (List.map to_row terms); st = fresh_stats n } in
  Array.iter (account t.st 1) t.mrows;
  t

let copy t =
  let copy_row r = { r with x = Bitvec.copy r.x; z = Bitvec.copy r.z } in
  let st = t.st in
  {
    t with
    mrows = Array.map copy_row t.mrows;
    st =
      {
        st with
        col_c = Array.copy st.col_c;
        col_cx = Array.copy st.col_cx;
        col_cz = Array.copy st.col_cz;
      };
  }

let num_qubits t = t.n
let num_rows t = Array.length t.mrows

let snapshot r =
  { pauli = Pauli_string.of_bits ~x:r.x ~z:r.z; neg = r.neg; angle = r.angle }

let rows t = Array.to_list (Array.map snapshot t.mrows)
let row_weight t i = t.mrows.(i).w

let row_pauli t i =
  Pauli_string.of_bits ~x:t.mrows.(i).x ~z:t.mrows.(i).z

let support t =
  let acc = Bitvec.create t.n in
  Array.iteri (fun q c -> if c > 0 then Bitvec.set acc q true) t.st.col_c;
  acc

let total_weight t = t.st.w_tot

let support_indices t =
  let acc = ref [] in
  for q = t.n - 1 downto 0 do
    if t.st.col_c.(q) > 0 then acc := q :: !acc
  done;
  !acc

let nonlocal_count t = t.st.n_nl

(* --- Cache auditing ------------------------------------------------------

   The column-statistics layer is redundant state: every counter is a
   function of the row bit vectors.  [audit] recomputes that function from
   scratch and reports every discrepancy, giving the static-analysis layer
   (and the [PHOENIX_BSF_AUDIT] debug mode) a simulation-free oracle for
   the incremental bookkeeping of the mutators above. *)

let audit t =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  Array.iteri
    (fun i r ->
      let w = Bitvec.or_popcount r.x r.z in
      if r.w <> w then
        add "row %d: cached weight %d, bit vectors say %d" i r.w w;
      if not (Float.is_finite r.angle) && not (Angle.is_slot r.angle) then
        add "row %d: non-finite angle %h" i r.angle)
    t.mrows;
  let fresh = fresh_stats t.n in
  Array.iter
    (fun r -> account fresh 1 { r with w = Bitvec.or_popcount r.x r.z })
    t.mrows;
  let st = t.st in
  for q = 0 to t.n - 1 do
    if st.col_c.(q) <> fresh.col_c.(q) then
      add "column %d: cached support count %d, recomputed %d" q st.col_c.(q)
        fresh.col_c.(q);
    if st.col_cx.(q) <> fresh.col_cx.(q) then
      add "column %d: cached x count %d, recomputed %d" q st.col_cx.(q)
        fresh.col_cx.(q);
    if st.col_cz.(q) <> fresh.col_cz.(q) then
      add "column %d: cached z count %d, recomputed %d" q st.col_cz.(q)
        fresh.col_cz.(q)
  done;
  let scalar name cached recomputed =
    if cached <> recomputed then
      add "%s: cached %d, recomputed %d" name cached recomputed
  in
  scalar "sum_c" st.sum_c fresh.sum_c;
  scalar "tri_c" st.tri_c fresh.tri_c;
  scalar "sum_cx" st.sum_cx fresh.sum_cx;
  scalar "tri_cx" st.tri_cx fresh.tri_cx;
  scalar "sum_cz" st.sum_cz fresh.sum_cz;
  scalar "tri_cz" st.tri_cz fresh.tri_cz;
  scalar "w_tot" st.w_tot fresh.w_tot;
  scalar "n_nl (nonlocal rows)" st.n_nl fresh.n_nl;
  List.rev !issues

let debug_audit_enabled =
  lazy
    (match Sys.getenv_opt "PHOENIX_BSF_AUDIT" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let debug_audit t =
  if Lazy.force debug_audit_enabled then
    match audit t with
    | [] -> ()
    | issues ->
      invalid_arg
        ("Bsf cache audit failed after mutation: " ^ String.concat "; " issues)

(* Sign conventions (standard stabilizer-tableau update rules, verified
   against dense conjugation in the test suite):
   - H:  X ↔ Z, Y ↦ -Y.
   - S:  X ↦ Y, Y ↦ -X, Z ↦ Z.
   - S†: X ↦ -Y ... i.e. the sign flips on x ∧ ¬z before z ^= x.
   - CNOT a→b: x_b ^= x_a, z_a ^= z_b, sign flips on x_a ∧ z_b ∧ (x_b = z_a)
     evaluated on the pre-update bits. *)

let apply_h t q =
  Array.iter
    (fun r ->
      let xq = Bitvec.get r.x q and zq = Bitvec.get r.z q in
      if xq && zq then r.neg <- not r.neg;
      Bitvec.set r.x q zq;
      Bitvec.set r.z q xq)
    t.mrows;
  (* columns swap roles at q; support, weights and n_nl are untouched *)
  let st = t.st in
  let cx = st.col_cx.(q) and cz = st.col_cz.(q) in
  set_cx st q cz;
  set_cz st q cx;
  debug_audit t

(* S and S† share the bit action z_q ^= x_q: only cz_q changes, by the
   balance of X rows gaining z against Y rows losing it. *)
let apply_s_like ~sign_on_z t q =
  let st = t.st in
  let dcz = ref 0 in
  Array.iter
    (fun r ->
      let xq = Bitvec.get r.x q and zq = Bitvec.get r.z q in
      if xq && zq = sign_on_z then r.neg <- not r.neg;
      if xq then begin
        Bitvec.flip r.z q;
        dcz := !dcz + (if zq then -1 else 1)
      end)
    t.mrows;
  set_cz st q (st.col_cz.(q) + !dcz);
  debug_audit t

let apply_s t q = apply_s_like ~sign_on_z:true t q
let apply_sdg t q = apply_s_like ~sign_on_z:false t q

let apply_cnot t a b =
  if a = b then invalid_arg "Bsf.apply_cnot: qubits must differ";
  let st = t.st in
  let dcxb = ref 0 and dcza = ref 0 and dca = ref 0 and dcb = ref 0 in
  Array.iter
    (fun r ->
      let xa = Bitvec.get r.x a
      and za = Bitvec.get r.z a
      and xb = Bitvec.get r.x b
      and zb = Bitvec.get r.z b in
      if xa && zb && xb = za then r.neg <- not r.neg;
      let xb' = xb <> xa and za' = za <> zb in
      Bitvec.set r.x b xb';
      Bitvec.set r.z a za';
      if xb' <> xb then dcxb := !dcxb + (if xb' then 1 else -1);
      if za' <> za then dcza := !dcza + (if za' then 1 else -1);
      let sa = xa || za and sa' = xa || za' in
      let sb = xb || zb and sb' = xb' || zb in
      let dw =
        (if sa' then 1 else 0) - (if sa then 1 else 0)
        + (if sb' then 1 else 0)
        - (if sb then 1 else 0)
      in
      if sa' <> sa then dca := !dca + (if sa' then 1 else -1);
      if sb' <> sb then dcb := !dcb + (if sb' then 1 else -1);
      if dw <> 0 then begin
        let w = r.w in
        let w' = w + dw in
        r.w <- w';
        if w > 1 && w' <= 1 then st.n_nl <- st.n_nl - 1
        else if w <= 1 && w' > 1 then st.n_nl <- st.n_nl + 1
      end)
    t.mrows;
  set_cx st b (st.col_cx.(b) + !dcxb);
  set_cz st a (st.col_cz.(a) + !dcza);
  set_c st a (st.col_c.(a) + !dca);
  set_c st b (st.col_c.(b) + !dcb);
  debug_audit t

let apply_basis_gate t = function
  | Clifford2q.H q -> apply_h t q
  | Clifford2q.S q -> apply_s t q
  | Clifford2q.Sdg q -> apply_sdg t q
  | Clifford2q.Cnot (a, b) -> apply_cnot t a b

(* Conjugation by a product C = g_k ⋯ g_1 (time order g_1 first) nests as
   conj(C, P) = conj(g_k, … conj(g_1, P) …), so primitives are applied in
   the decomposition's time order. *)
let apply_clifford2q t gate =
  List.iter (apply_basis_gate t) (Clifford2q.decompose gate)

let mrow_commutes a b =
  (Bitvec.and_popcount a.x b.z + Bitvec.and_popcount a.z b.x) mod 2 = 0

let pop_local_rows ?(commuting_only = false) t =
  let n_rows = Array.length t.mrows in
  let local = Array.map (fun r -> r.w <= 1) t.mrows in
  if commuting_only then begin
    (* A local row may only leave its program position when it commutes
       with every row that stays behind — including locals that
       themselves fail the test, hence the fixpoint iteration.  Peeled
       locals keep their relative order, so they need not commute with
       each other. *)
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n_rows - 1 do
        if local.(i) then
          for j = 0 to n_rows - 1 do
            if (not local.(j)) && not (mrow_commutes t.mrows.(i) t.mrows.(j))
            then begin
              local.(i) <- false;
              changed := true
            end
          done
      done
    done
  end;
  let peeled = ref [] and kept = ref [] in
  for i = n_rows - 1 downto 0 do
    if local.(i) then begin
      (* peeled rows have weight ≤ 1: at most one column to release *)
      account t.st (-1) t.mrows.(i);
      peeled := snapshot t.mrows.(i) :: !peeled
    end
    else kept := t.mrows.(i) :: !kept
  done;
  t.mrows <- Array.of_list !kept;
  debug_audit t;
  !peeled

(* The Eq. 6 combination, shared verbatim by the incremental cost, the
   delta engine and the pairwise reference so all three agree to the last
   ulp whenever their integer counters agree. *)
let cost_of_counters ~rows ~w_tot ~n_nl ~sum_c ~tri_c ~sum_cx ~tri_cx ~sum_cz
    ~tri_cz =
  let pair_sup = ((rows - 1) * sum_c) - tri_c in
  let pair_x = ((rows - 1) * sum_cx) - tri_cx in
  let pair_z = ((rows - 1) * sum_cz) - tri_cz in
  (float_of_int w_tot *. float_of_int n_nl *. float_of_int n_nl)
  +. float_of_int pair_sup
  +. (0.5 *. float_of_int (pair_x + pair_z))

let cost t =
  let st = t.st in
  cost_of_counters ~rows:(Array.length t.mrows) ~w_tot:st.w_tot ~n_nl:st.n_nl
    ~sum_c:st.sum_c ~tri_c:st.tri_c ~sum_cx:st.sum_cx ~tri_cx:st.tri_cx
    ~sum_cz:st.sum_cz ~tri_cz:st.tri_cz

(* Independent O(R²·words) evaluation of Eq. 6 straight from the bits;
   the property suite pins [cost] against this. *)
let cost_reference t =
  let n_rows = Array.length t.mrows in
  let sup_acc = Bitvec.create t.n in
  let n_nl = ref 0 in
  Array.iter
    (fun r ->
      Bitvec.or_into sup_acc r.x;
      Bitvec.or_into sup_acc r.z;
      if Bitvec.or_popcount r.x r.z > 1 then incr n_nl)
    t.mrows;
  let w_tot = float_of_int (Bitvec.popcount sup_acc) in
  let n_nl = float_of_int !n_nl in
  let pair_sup = ref 0 and pair_x = ref 0 and pair_z = ref 0 in
  for i = 0 to n_rows - 1 do
    let ri = t.mrows.(i) in
    let sup_i = Bitvec.logor ri.x ri.z in
    for j = i + 1 to n_rows - 1 do
      let rj = t.mrows.(j) in
      let sup_j = Bitvec.logor rj.x rj.z in
      pair_sup := !pair_sup + Bitvec.or_popcount sup_i sup_j;
      pair_x := !pair_x + Bitvec.or_popcount ri.x rj.x;
      pair_z := !pair_z + Bitvec.or_popcount ri.z rj.z
    done
  done;
  (w_tot *. n_nl *. n_nl)
  +. float_of_int !pair_sup
  +. (0.5 *. float_of_int (!pair_x + !pair_z))

(* --- Allocation-free candidate evaluation -------------------------------

   A candidate 2Q Clifford on (a,b) only rewrites columns a and b, so its
   effect on the cost is a function of those two columns alone.  The
   workspace transposes them into row-indexed words once per qubit pair;
   each candidate then costs a handful of word-parallel XOR/popcount
   passes over R bits — no tableau copy, no conjugation, no pair loop. *)
module Delta = struct
  let bpw = Bitvec.bits_per_word

  (* Conjugation by a generator is GF(2)-linear on the four operand
     columns (signs do not affect the cost), so each (kind, operand
     order) reduces to four 4-bit masks: new column = XOR of the old
     columns selected by the mask.  The masks are derived once at module
     init by pushing symbolic basis masks through [Clifford2q.decompose]
     — the exact instruction sequence [apply_clifford2q] executes — so
     they cannot drift from the tableau semantics. *)
  let kind_index = function
    | Clifford2q.CXX -> 0
    | Clifford2q.CYY -> 1
    | Clifford2q.CZZ -> 2
    | Clifford2q.CXY -> 3
    | Clifford2q.CYZ -> 4
    | Clifford2q.CZX -> 5

  (* masks.(2·kind + order): order 0 = gate on (a,b), 1 = gate on (b,a);
     each entry is (m_xa, m_za, m_xb, m_zb) over basis bits
     1=xa, 2=za, 4=xb, 8=zb. *)
  let col_masks =
    let compute kind swapped =
      let xa = ref 1 and za = ref 2 and xb = ref 4 and zb = ref 8 in
      (* qubit 0 stands for column a, qubit 1 for column b *)
      let col_x q = if q = 0 then xa else xb in
      let col_z q = if q = 0 then za else zb in
      let gate =
        if swapped then Clifford2q.make kind 1 0 else Clifford2q.make kind 0 1
      in
      List.iter
        (function
          | Clifford2q.H q ->
            let x = col_x q and z = col_z q in
            let tmp = !x in
            x := !z;
            z := tmp
          | Clifford2q.S q | Clifford2q.Sdg q ->
            let x = col_x q and z = col_z q in
            z := !z lxor !x
          | Clifford2q.Cnot (c, t) ->
            (col_x t) := !(col_x t) lxor !(col_x c);
            (col_z c) := !(col_z c) lxor !(col_z t))
        (Clifford2q.decompose gate);
      !xa, !za, !xb, !zb
    in
    Array.init 12 (fun i ->
        let kind = List.nth Clifford2q.all_kinds (i / 2) in
        compute kind (i mod 2 = 1))

  type ws = {
    mutable nwords : int;
    (* column a / b of the x and z halves, transposed to row-major bits *)
    mutable xa : int array;
    mutable za : int array;
    mutable xb : int array;
    mutable zb : int array;
    (* rows whose weight outside {a,b} is 0 / 1: the only rows whose
       local/nonlocal status a candidate can change *)
    mutable m0 : int array;
    mutable m1 : int array;
    mutable qa : int;
    mutable qb : int;
    mutable nl_before : int; (* nonlocal rows of m0/m1 under current cols *)
    (* snapshot of the tableau counters at load time *)
    mutable s_rows : int;
    mutable s_w_tot : int;
    mutable s_n_nl : int;
    mutable s_sum_c : int;
    mutable s_tri_c : int;
    mutable s_sum_cx : int;
    mutable s_tri_cx : int;
    mutable s_sum_cz : int;
    mutable s_tri_cz : int;
    mutable ca : int;
    mutable cb : int;
    mutable cxa : int;
    mutable cxb : int;
    mutable cza : int;
    mutable czb : int;
  }

  let create () =
    {
      nwords = 0;
      xa = [||];
      za = [||];
      xb = [||];
      zb = [||];
      m0 = [||];
      m1 = [||];
      qa = -1;
      qb = -1;
      nl_before = 0;
      s_rows = 0;
      s_w_tot = 0;
      s_n_nl = 0;
      s_sum_c = 0;
      s_tri_c = 0;
      s_sum_cx = 0;
      s_tri_cx = 0;
      s_sum_cz = 0;
      s_tri_cz = 0;
      ca = 0;
      cb = 0;
      cxa = 0;
      cxb = 0;
      cza = 0;
      czb = 0;
    }

  let ensure_capacity ws nw =
    if Array.length ws.xa < nw then begin
      ws.xa <- Array.make nw 0;
      ws.za <- Array.make nw 0;
      ws.xb <- Array.make nw 0;
      ws.zb <- Array.make nw 0;
      ws.m0 <- Array.make nw 0;
      ws.m1 <- Array.make nw 0
    end
    else
      for wi = 0 to nw - 1 do
        ws.xa.(wi) <- 0;
        ws.za.(wi) <- 0;
        ws.xb.(wi) <- 0;
        ws.zb.(wi) <- 0;
        ws.m0.(wi) <- 0;
        ws.m1.(wi) <- 0
      done

  let load ws t ~a ~b =
    if a = b then invalid_arg "Bsf.Delta.load: qubits must differ";
    if a < 0 || a >= t.n || b < 0 || b >= t.n then
      invalid_arg "Bsf.Delta.load: qubit out of range";
    let rows = Array.length t.mrows in
    let nw = (rows + bpw - 1) / bpw in
    ensure_capacity ws (max nw 1);
    ws.nwords <- nw;
    ws.qa <- a;
    ws.qb <- b;
    for i = 0 to rows - 1 do
      let r = Array.unsafe_get t.mrows i in
      let xbits = Bitvec.get2_unsafe r.x a b in
      let zbits = Bitvec.get2_unsafe r.z a b in
      let wi = i / bpw in
      let bit = 1 lsl (i mod bpw) in
      if xbits land 1 <> 0 then ws.xa.(wi) <- ws.xa.(wi) lor bit;
      if xbits land 2 <> 0 then ws.xb.(wi) <- ws.xb.(wi) lor bit;
      if zbits land 1 <> 0 then ws.za.(wi) <- ws.za.(wi) lor bit;
      if zbits land 2 <> 0 then ws.zb.(wi) <- ws.zb.(wi) lor bit;
      let sup = xbits lor zbits in
      let w_out = r.w - (sup land 1) - ((sup lsr 1) land 1) in
      if w_out = 0 then ws.m0.(wi) <- ws.m0.(wi) lor bit
      else if w_out = 1 then ws.m1.(wi) <- ws.m1.(wi) lor bit
    done;
    let nl = ref 0 in
    for wi = 0 to nw - 1 do
      let sa = ws.xa.(wi) lor ws.za.(wi) and sb = ws.xb.(wi) lor ws.zb.(wi) in
      nl :=
        !nl
        + Bitvec.popcount_word (ws.m1.(wi) land (sa lor sb))
        + Bitvec.popcount_word (ws.m0.(wi) land sa land sb)
    done;
    ws.nl_before <- !nl;
    let st = t.st in
    ws.s_rows <- rows;
    ws.s_w_tot <- st.w_tot;
    ws.s_n_nl <- st.n_nl;
    ws.s_sum_c <- st.sum_c;
    ws.s_tri_c <- st.tri_c;
    ws.s_sum_cx <- st.sum_cx;
    ws.s_tri_cx <- st.tri_cx;
    ws.s_sum_cz <- st.sum_cz;
    ws.s_tri_cz <- st.tri_cz;
    ws.ca <- st.col_c.(a);
    ws.cb <- st.col_c.(b);
    ws.cxa <- st.col_cx.(a);
    ws.cxb <- st.col_cx.(b);
    ws.cza <- st.col_cz.(a);
    ws.czb <- st.col_cz.(b)

  (* Resulting [cost] of the tableau the workspace was loaded from, were
     [gate] (on the loaded qubit pair) applied — without applying it.
     One fused pass over the column words: the candidate's columns are
     formed on the fly from the precomputed masks (XOR of at most four
     words each) and reduced to the six popcounts plus the nonlocality
     correction.  No allocation, no branches on the decomposition. *)
  let eval_masked ws ki order =
    let mxa, mza, mxb, mzb = col_masks.((2 * ki) + order) in
    let nw = ws.nwords in
    let cxa_n = ref 0
    and cza_n = ref 0
    and ca_n = ref 0
    and cxb_n = ref 0
    and czb_n = ref 0
    and cb_n = ref 0
    and nl_after = ref 0 in
    for wi = 0 to nw - 1 do
      let oxa = Array.unsafe_get ws.xa wi
      and oza = Array.unsafe_get ws.za wi
      and oxb = Array.unsafe_get ws.xb wi
      and ozb = Array.unsafe_get ws.zb wi in
      let sel m =
        (if m land 1 <> 0 then oxa else 0)
        lxor (if m land 2 <> 0 then oza else 0)
        lxor (if m land 4 <> 0 then oxb else 0)
        lxor (if m land 8 <> 0 then ozb else 0)
      in
      let xaw = sel mxa
      and zaw = sel mza
      and xbw = sel mxb
      and zbw = sel mzb in
      let sa = xaw lor zaw and sb = xbw lor zbw in
      cxa_n := !cxa_n + Bitvec.popcount_word xaw;
      cza_n := !cza_n + Bitvec.popcount_word zaw;
      ca_n := !ca_n + Bitvec.popcount_word sa;
      cxb_n := !cxb_n + Bitvec.popcount_word xbw;
      czb_n := !czb_n + Bitvec.popcount_word zbw;
      cb_n := !cb_n + Bitvec.popcount_word sb;
      nl_after :=
        !nl_after
        + Bitvec.popcount_word (Array.unsafe_get ws.m1 wi land (sa lor sb))
        + Bitvec.popcount_word (Array.unsafe_get ws.m0 wi land sa land sb)
    done;
    let nz c = if c > 0 then 1 else 0 in
    cost_of_counters ~rows:ws.s_rows
      ~w_tot:(ws.s_w_tot - nz ws.ca - nz ws.cb + nz !ca_n + nz !cb_n)
      ~n_nl:(ws.s_n_nl - ws.nl_before + !nl_after)
      ~sum_c:(ws.s_sum_c - ws.ca - ws.cb + !ca_n + !cb_n)
      ~tri_c:(ws.s_tri_c - tri ws.ca - tri ws.cb + tri !ca_n + tri !cb_n)
      ~sum_cx:(ws.s_sum_cx - ws.cxa - ws.cxb + !cxa_n + !cxb_n)
      ~tri_cx:(ws.s_tri_cx - tri ws.cxa - tri ws.cxb + tri !cxa_n + tri !cxb_n)
      ~sum_cz:(ws.s_sum_cz - ws.cza - ws.czb + !cza_n + !czb_n)
      ~tri_cz:(ws.s_tri_cz - tri ws.cza - tri ws.czb + tri !cza_n + tri !czb_n)

  (* Allocation-free entry point for search loops: score [kind] on the
     loaded pair, operands (a,b) — or (b,a) with [swapped] — without
     materializing a gate record. *)
  let eval_kind ws kind ~swapped =
    eval_masked ws (kind_index kind) (if swapped then 1 else 0)

  let eval ws (gate : Clifford2q.t) =
    let ga = gate.Clifford2q.a and gb = gate.Clifford2q.b in
    let order =
      if ga = ws.qa && gb = ws.qb then 0
      else if ga = ws.qb && gb = ws.qa then 1
      else invalid_arg "Bsf.Delta.eval: gate does not act on the loaded pair"
    in
    eval_masked ws (kind_index gate.Clifford2q.kind) order
end

let eval_clifford2q_delta t gate =
  let ws = Delta.create () in
  Delta.load ws t ~a:gate.Clifford2q.a ~b:gate.Clifford2q.b;
  Delta.eval ws gate -. cost t

let to_terms t =
  List.map
    (fun r ->
      let angle = if r.neg then Angle.neg r.angle else r.angle in
      r.pauli, angle)
    (rows t)

let slots t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun (r : mrow) ->
      match Angle.view r.angle with
      | Angle.Const _ -> ()
      | Angle.Slot { id; _ } ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id (Hashtbl.length seen);
          acc := r.angle :: !acc
        end)
    t.mrows;
  Array.of_list (List.rev !acc)

(* Canonical content addressing.  Rows are serialized projected onto the
   tableau's support columns (ascending), so two tableaux that differ only
   by which absolute qubits the group touches — or by trailing idle
   qubits — serialize identically.  [canonical_form] keeps program order
   (synthesis is order-sensitive); [canonical_digest] sorts the row
   serializations first, so it is additionally invariant under gadget
   reordering within the group. *)

let canonical_row_strings t =
  let support = Array.of_list (support_indices t) in
  (* Slot angles serialize as their first-use rank within this tableau (plus
     the occurrence's sign), not their process-local arena id: two slotted
     tableaux with the same structure then share a canonical form across
     parameter vectors, sessions, and processes.  The ['S'] prefix cannot
     collide with the lowercase-hex IEEE bits of const angles. *)
  let local = Hashtbl.create 8 in
  Array.iter
    (fun (r : mrow) ->
      match Angle.view r.angle with
      | Angle.Const _ -> ()
      | Angle.Slot { id; _ } ->
        if not (Hashtbl.mem local id) then
          Hashtbl.add local id (Hashtbl.length local))
    t.mrows;
  Array.map
    (fun (r : mrow) ->
      let buf = Buffer.create (Array.length support + 24) in
      Array.iter
        (fun q ->
          let bits =
            (if Bitvec.get r.x q then 1 else 0)
            lor if Bitvec.get r.z q then 2 else 0
          in
          Buffer.add_char buf
            (match bits with 0 -> 'I' | 1 -> 'X' | 2 -> 'Z' | _ -> 'Y'))
        support;
      Buffer.add_char buf (if r.neg then '-' else '+');
      (match Angle.view r.angle with
      | Angle.Const _ ->
        Buffer.add_string buf
          (Printf.sprintf "%Lx" (Int64.bits_of_float r.angle))
      | Angle.Slot { id; negated } ->
        Buffer.add_string buf
          (Printf.sprintf "S%d%c" (Hashtbl.find local id)
             (if negated then '-' else '+')));
      Buffer.contents buf)
    t.mrows

let canonical_form t =
  let rows = canonical_row_strings t in
  Printf.sprintf "k%d;r%d;%s" t.st.w_tot (Array.length rows)
    (String.concat ";" (Array.to_list rows))

let digest_of_canonical_form form =
  let sorted_rows =
    match String.split_on_char ';' form with
    | k :: r :: rows -> k :: r :: List.sort String.compare rows
    | short -> short
  in
  Digest.to_hex
    (Digest.string ("phoenix-bsf-v1;" ^ String.concat ";" sorted_rows))

let canonical_digest t = digest_of_canonical_form (canonical_form t)

(* Deliberate cache corruption for fault-injection tests of [audit] and
   the analysis layer.  Only the redundant state is touched — never the
   bit vectors — so every corruption is exactly the class of bug the
   incremental bookkeeping could introduce. *)
module Testing = struct
  let corrupt_column_count t q =
    if q < 0 || q >= t.n then invalid_arg "Bsf.Testing.corrupt_column_count";
    t.st.col_c.(q) <- t.st.col_c.(q) + 1

  let corrupt_row_weight t i =
    if i < 0 || i >= Array.length t.mrows then
      invalid_arg "Bsf.Testing.corrupt_row_weight";
    t.mrows.(i).w <- t.mrows.(i).w + 1

  let corrupt_nonlocal_count t = t.st.n_nl <- t.st.n_nl + 1

  let corrupt_sign t i =
    if i < 0 || i >= Array.length t.mrows then
      invalid_arg "Bsf.Testing.corrupt_sign";
    t.mrows.(i).neg <- not t.mrows.(i).neg
end

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun r ->
      let s = snapshot r in
      Format.fprintf fmt "%c%a (θ=%g)@,"
        (if s.neg then '-' else '+')
        Pauli_string.pp s.pauli s.angle)
    t.mrows;
  Format.fprintf fmt "@]"
