(** Multi-qubit Pauli strings in binary symplectic encoding.

    A string over [n] qubits is a pair of length-[n] bit vectors [(x, z)];
    qubit [q] carries [Pauli.of_bits ~x:(x.q) ~z:(z.q)].  Values are
    semantically immutable: all operations return fresh strings. *)

type t

val num_qubits : t -> int

val identity : int -> t
(** All-[I] string over [n] qubits. *)

val of_list : Pauli.t list -> t
val to_list : t -> Pauli.t list

val of_string : string -> t
(** [of_string "ZYY"] is the 3-qubit string Z⊗Y⊗Y (qubit 0 leftmost).
    Raises [Invalid_argument] on bad characters or empty input. *)

val to_string : t -> string

val of_bits : x:Phoenix_util.Bitvec.t -> z:Phoenix_util.Bitvec.t -> t
(** Raises [Invalid_argument] if the vectors' lengths differ. *)

val x_bits : t -> Phoenix_util.Bitvec.t
val z_bits : t -> Phoenix_util.Bitvec.t
(** Copies of the underlying vectors. *)

val of_bits_owned : x:Phoenix_util.Bitvec.t -> z:Phoenix_util.Bitvec.t -> t
(** Like {!of_bits} but takes ownership of the vectors without copying.
    The caller must never mutate them afterwards — reserved for
    constructors that just built fresh vectors (e.g. the BSF tableau
    materializing a row snapshot from its arena). *)

val blit_bits_to :
  t -> x_dst:int array -> x_off:int -> z_dst:int array -> z_off:int -> unit
(** Copy the backing words of the x (resp. z) vector into [x_dst] at
    [x_off] (resp. [z_dst] at [z_off]) — flat-arena interop that skips
    the intermediate {!x_bits}/{!z_bits} copies. *)

val get : t -> int -> Pauli.t
val set : t -> int -> Pauli.t -> t
(** Functional update. *)

val single : int -> int -> Pauli.t -> t
(** [single n q p] is the [n]-qubit string with [p] on qubit [q]. *)

val weight : t -> int
(** Number of non-identity components. *)

val support : t -> Phoenix_util.Bitvec.t
(** Bit [q] set iff qubit [q] is non-identity. *)

val support_list : t -> int list
(** Ascending indices of non-identity qubits. *)

val is_identity : t -> bool

val commutes : t -> t -> bool
(** Symplectic commutation: [P] and [Q] commute iff the number of positions
    where both are non-identity and different ... formally iff
    [popcount (Px·Qz) + popcount (Pz·Qx)] is even. *)

val mul : t -> t -> int * t
(** [mul p q] is [(k, r)] with [p·q = i^k · r]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
