module Bitvec = Phoenix_util.Bitvec

type t = { x : Bitvec.t; z : Bitvec.t }

let num_qubits t = Bitvec.length t.x

let identity n =
  if n <= 0 then invalid_arg "Pauli_string.identity: need at least one qubit";
  { x = Bitvec.create n; z = Bitvec.create n }

let of_list ps =
  let n = List.length ps in
  let t = identity n in
  List.iteri
    (fun q p ->
      let x, z = Pauli.to_bits p in
      Bitvec.set t.x q x;
      Bitvec.set t.z q z)
    ps;
  t

let get t q = Pauli.of_bits ~x:(Bitvec.get t.x q) ~z:(Bitvec.get t.z q)

let to_list t = List.init (num_qubits t) (get t)

let of_string s =
  if String.length s = 0 then invalid_arg "Pauli_string.of_string: empty";
  of_list (List.init (String.length s) (fun i -> Pauli.of_char s.[i]))

let to_string t = String.init (num_qubits t) (fun q -> Pauli.to_char (get t q))

let of_bits ~x ~z =
  if Bitvec.length x <> Bitvec.length z then
    invalid_arg "Pauli_string.of_bits: length mismatch";
  { x = Bitvec.copy x; z = Bitvec.copy z }

let x_bits t = Bitvec.copy t.x
let z_bits t = Bitvec.copy t.z

let of_bits_owned ~x ~z =
  if Bitvec.length x <> Bitvec.length z then
    invalid_arg "Pauli_string.of_bits_owned: length mismatch";
  { x; z }

let blit_bits_to t ~x_dst ~x_off ~z_dst ~z_off =
  Bitvec.blit_words_to t.x x_dst x_off;
  Bitvec.blit_words_to t.z z_dst z_off

let set t q p =
  let x, z = Pauli.to_bits p in
  let t' = { x = Bitvec.copy t.x; z = Bitvec.copy t.z } in
  Bitvec.set t'.x q x;
  Bitvec.set t'.z q z;
  t'

let single n q p = set (identity n) q p
let support t = Bitvec.logor t.x t.z
let weight t = Bitvec.or_popcount t.x t.z
let support_list t = Bitvec.indices (support t)
let is_identity t = Bitvec.is_zero t.x && Bitvec.is_zero t.z

let commutes a b =
  (Bitvec.and_popcount a.x b.z + Bitvec.and_popcount a.z b.x) mod 2 = 0

(* Word-parallel phase computation (the standard BSF trick): the i-power
   contributed by one qubit is g(x1,z1,x2,z2) ∈ {−1,0,+1} with
     g = z2−x2 on Y columns, z2·(2x2−1) on X columns, x2·(1−2z2) on Z
   columns (Aaronson–Gottesman), so the total phase is
   (#plus − #minus) mod 4 with the ±1 cases picked out by bit masks —
   62 qubits per word instead of one. *)
let mul a b =
  let n = num_qubits a in
  if n <> num_qubits b then invalid_arg "Pauli_string.mul: size mismatch";
  let plus = ref 0 and minus = ref 0 in
  for wi = 0 to Bitvec.num_words a.x - 1 do
    let x1 = Bitvec.word a.x wi
    and z1 = Bitvec.word a.z wi
    and x2 = Bitvec.word b.x wi
    and z2 = Bitvec.word b.z wi in
    let y1 = x1 land z1
    and xo1 = x1 land lnot z1
    and zo1 = z1 land lnot x1 in
    let p =
      y1 land z2 land lnot x2
      lor (xo1 land x2 land z2)
      lor (zo1 land x2 land lnot z2)
    in
    let m =
      y1 land x2 land lnot z2
      lor (xo1 land z2 land lnot x2)
      lor (zo1 land x2 land z2)
    in
    plus := !plus + Bitvec.popcount_word p;
    minus := !minus + Bitvec.popcount_word m
  done;
  let phase = ((!plus - !minus) mod 4 + 4) mod 4 in
  phase, { x = Bitvec.logxor a.x b.x; z = Bitvec.logxor a.z b.z }

let equal a b = Bitvec.equal a.x b.x && Bitvec.equal a.z b.z

let compare a b =
  let c = Bitvec.compare a.x b.x in
  if c <> 0 then c else Bitvec.compare a.z b.z

let hash t = Hashtbl.hash (Bitvec.hash t.x, Bitvec.hash t.z)
let pp fmt t = Format.pp_print_string fmt (to_string t)
