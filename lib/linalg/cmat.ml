type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg
      (Printf.sprintf "Cmat.create: dimensions must be positive, got %dx%d"
         rows cols);
  { rows; cols; re = Array.make (rows * cols) 0.0; im = Array.make (rows * cols) 0.0 }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.((i * n) + i) <- 1.0
  done;
  m

let dims m = m.rows, m.cols

let idx m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Cmat: index (%d,%d) out of range for a %dx%d matrix" i
         j m.rows m.cols);
  (i * m.cols) + j

let get m i j =
  let k = idx m i j in
  { Complex.re = m.re.(k); im = m.im.(k) }

let set m i j (c : Complex.t) =
  let k = idx m i j in
  m.re.(k) <- c.Complex.re;
  m.im.(k) <- c.Complex.im

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let scale (c : Complex.t) m =
  let r = create m.rows m.cols in
  let cr = c.Complex.re and ci = c.Complex.im in
  for k = 0 to (m.rows * m.cols) - 1 do
    r.re.(k) <- (cr *. m.re.(k)) -. (ci *. m.im.(k));
    r.im.(k) <- (cr *. m.im.(k)) +. (ci *. m.re.(k))
  done;
  r

let map2 f g a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Cmat.map2: dimension mismatch (%dx%d vs %dx%d)" a.rows
         a.cols b.rows b.cols);
  let r = create a.rows a.cols in
  for k = 0 to (a.rows * a.cols) - 1 do
    r.re.(k) <- f a.re.(k) b.re.(k);
    r.im.(k) <- g a.im.(k) b.im.(k)
  done;
  r

let add a b = map2 ( +. ) ( +. ) a b
let sub a b = map2 ( -. ) ( -. ) a b

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Cmat.mul: cannot multiply %dx%d by %dx%d" a.rows a.cols
         b.rows b.cols);
  let r = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let are = a.re.((i * a.cols) + k) and aim = a.im.((i * a.cols) + k) in
      if are <> 0.0 || aim <> 0.0 then begin
        let arow = i * b.cols and brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          let bre = b.re.(brow + j) and bim = b.im.(brow + j) in
          r.re.(arow + j) <- r.re.(arow + j) +. (are *. bre) -. (aim *. bim);
          r.im.(arow + j) <- r.im.(arow + j) +. (are *. bim) +. (aim *. bre)
        done
      end
    done
  done;
  r

let dagger m =
  let r = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      r.re.((j * m.rows) + i) <- m.re.((i * m.cols) + j);
      r.im.((j * m.rows) + i) <- -.m.im.((i * m.cols) + j)
    done
  done;
  r

let kron a b =
  let r = create (a.rows * b.rows) (a.cols * b.cols) in
  for ia = 0 to a.rows - 1 do
    for ja = 0 to a.cols - 1 do
      let are = a.re.((ia * a.cols) + ja) and aim = a.im.((ia * a.cols) + ja) in
      if are <> 0.0 || aim <> 0.0 then
        for ib = 0 to b.rows - 1 do
          for jb = 0 to b.cols - 1 do
            let bre = b.re.((ib * b.cols) + jb)
            and bim = b.im.((ib * b.cols) + jb) in
            let i = (ia * b.rows) + ib and j = (ja * b.cols) + jb in
            r.re.((i * r.cols) + j) <- (are *. bre) -. (aim *. bim);
            r.im.((i * r.cols) + j) <- (are *. bim) +. (aim *. bre)
          done
        done
    done
  done;
  r

let trace m =
  if m.rows <> m.cols then
    invalid_arg
      (Printf.sprintf "Cmat.trace: matrix is %dx%d, not square" m.rows m.cols);
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to m.rows - 1 do
    re := !re +. m.re.((i * m.cols) + i);
    im := !im +. m.im.((i * m.cols) + i)
  done;
  { Complex.re = !re; im = !im }

let frobenius_distance a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf
         "Cmat.frobenius_distance: dimension mismatch (%dx%d vs %dx%d)" a.rows
         a.cols b.rows b.cols);
  let acc = ref 0.0 in
  for k = 0 to (a.rows * a.cols) - 1 do
    let dr = a.re.(k) -. b.re.(k) and di = a.im.(k) -. b.im.(k) in
    acc := !acc +. (dr *. dr) +. (di *. di)
  done;
  sqrt !acc

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf
         "Cmat.max_abs_diff: dimension mismatch (%dx%d vs %dx%d)" a.rows
         a.cols b.rows b.cols);
  let acc = ref 0.0 in
  for k = 0 to (a.rows * a.cols) - 1 do
    let dr = a.re.(k) -. b.re.(k) and di = a.im.(k) -. b.im.(k) in
    let d = sqrt ((dr *. dr) +. (di *. di)) in
    if d > !acc then acc := d
  done;
  !acc

let is_close ?(tol = 1e-9) a b = max_abs_diff a b <= tol

(* a = e^{iφ} b  ⇔  a·b† = e^{iφ}·I for unitaries; we instead find the
   largest entry of b and read the phase off the matching entry of a. *)
let equal_up_to_phase ?(tol = 1e-9) a b =
  if a.rows <> b.rows || a.cols <> b.cols then false
  else begin
    let best = ref 0.0 and best_k = ref (-1) in
    for k = 0 to (b.rows * b.cols) - 1 do
      let m = (b.re.(k) *. b.re.(k)) +. (b.im.(k) *. b.im.(k)) in
      if m > !best then begin
        best := m;
        best_k := k
      end
    done;
    if !best_k < 0 then is_close ~tol a b
    else begin
      let k = !best_k in
      let bz = { Complex.re = b.re.(k); im = b.im.(k) } in
      let az = { Complex.re = a.re.(k); im = a.im.(k) } in
      let phase = Complex.div az bz in
      let norm = Complex.norm phase in
      if Float.abs (norm -. 1.0) > Float.max 1e-6 tol then false
      else is_close ~tol a (scale phase b)
    end
  end

let of_complex_array rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Cmat.of_complex_array: empty row array";
  let cols = Array.length rows_arr.(0) in
  let m = create rows cols in
  Array.iteri
    (fun i row ->
      if Array.length row <> cols then
        invalid_arg
          (Printf.sprintf
             "Cmat.of_complex_array: row %d has %d entries, expected %d" i
             (Array.length row) cols);
      Array.iteri (fun j c -> set m i j c) row)
    rows_arr;
  m

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      let c = get m i j in
      Format.fprintf fmt "%+.3f%+.3fi " c.Complex.re c.Complex.im
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"

let raw_re m = m.re
let raw_im m = m.im
