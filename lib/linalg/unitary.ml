module Pauli = Phoenix_pauli.Pauli
module Pauli_string = Phoenix_pauli.Pauli_string
module Clifford2q = Phoenix_pauli.Clifford2q
module Gate = Phoenix_circuit.Gate
module Circuit = Phoenix_circuit.Circuit

let c ?(im = 0.0) re = { Complex.re; im }
let czero = c 0.0
let cone = c 1.0

let pauli_1q p =
  let open Complex in
  match p with
  | Pauli.I -> Cmat.of_complex_array [| [| cone; czero |]; [| czero; cone |] |]
  | Pauli.X -> Cmat.of_complex_array [| [| czero; cone |]; [| cone; czero |] |]
  | Pauli.Y ->
    Cmat.of_complex_array
      [| [| czero; { re = 0.0; im = -1.0 } |]; [| { re = 0.0; im = 1.0 }; czero |] |]
  | Pauli.Z ->
    Cmat.of_complex_array [| [| cone; czero |]; [| czero; c (-1.0) |] |]

let rot_matrix p theta =
  (* exp(-i θ/2 σ) = cos(θ/2) I - i sin(θ/2) σ *)
  let co = cos (theta /. 2.0) and si = sin (theta /. 2.0) in
  let id = Cmat.identity 2 and sigma = pauli_1q p in
  Cmat.add (Cmat.scale (c co) id) (Cmat.scale (c ~im:(-.si) 0.0) sigma)

let sqrt_half = 1.0 /. sqrt 2.0

let one_q g =
  match g with
  | Gate.H ->
    Cmat.of_complex_array
      [| [| c sqrt_half; c sqrt_half |]; [| c sqrt_half; c (-.sqrt_half) |] |]
  | Gate.S ->
    Cmat.of_complex_array [| [| cone; czero |]; [| czero; c ~im:1.0 0.0 |] |]
  | Gate.Sdg ->
    Cmat.of_complex_array [| [| cone; czero |]; [| czero; c ~im:(-1.0) 0.0 |] |]
  | Gate.T ->
    Cmat.of_complex_array
      [| [| cone; czero |]; [| czero; c ~im:sqrt_half sqrt_half |] |]
  | Gate.Tdg ->
    Cmat.of_complex_array
      [| [| cone; czero |]; [| czero; c ~im:(-.sqrt_half) sqrt_half |] |]
  | Gate.X -> pauli_1q Pauli.X
  | Gate.Y -> pauli_1q Pauli.Y
  | Gate.Z -> pauli_1q Pauli.Z
  | Gate.Rx t -> rot_matrix Pauli.X t
  | Gate.Ry t -> rot_matrix Pauli.Y t
  | Gate.Rz t -> rot_matrix Pauli.Z t

let pauli_matrix p =
  let n = Pauli_string.num_qubits p in
  let rec go q acc =
    if q >= n then acc else go (q + 1) (Cmat.kron acc (pauli_1q (Pauli_string.get p q)))
  in
  go 1 (pauli_1q (Pauli_string.get p 0))

let gadget_matrix p theta =
  let n = Pauli_string.num_qubits p in
  let dim = 1 lsl n in
  let co = cos (theta /. 2.0) and si = sin (theta /. 2.0) in
  Cmat.add
    (Cmat.scale (c co) (Cmat.identity dim))
    (Cmat.scale (c ~im:(-.si) 0.0) (pauli_matrix p))

let clifford2q_4x4 kind =
  let s0, s1 = Clifford2q.kind_sigmas kind in
  let id2 = Cmat.identity 2 in
  let half = c 0.5 in
  let plus = Cmat.kron (Cmat.add id2 (pauli_1q s0)) id2 in
  let minus = Cmat.kron (Cmat.sub id2 (pauli_1q s0)) (pauli_1q s1) in
  Cmat.scale half (Cmat.add plus minus)

let rpp_4x4 p0 p1 theta =
  let co = cos (theta /. 2.0) and si = sin (theta /. 2.0) in
  Cmat.add
    (Cmat.scale (c co) (Cmat.identity 4))
    (Cmat.scale (c ~im:(-.si) 0.0) (Cmat.kron (pauli_1q p0) (pauli_1q p1)))

let cnot_4x4 =
  Cmat.of_complex_array
    [|
      [| cone; czero; czero; czero |];
      [| czero; cone; czero; czero |];
      [| czero; czero; czero; cone |];
      [| czero; czero; cone; czero |];
    |]

let swap_4x4 =
  Cmat.of_complex_array
    [|
      [| cone; czero; czero; czero |];
      [| czero; czero; cone; czero |];
      [| czero; cone; czero; czero |];
      [| czero; czero; czero; cone |];
    |]

(* Re-express a 4×4 written for local order (q0, q1) in the swapped local
   order: permute basis index bits. *)
let swap_factors m =
  let r = Cmat.create 4 4 in
  let perm i = ((i land 1) lsl 1) lor (i lsr 1) in
  for i = 0 to 3 do
    for j = 0 to 3 do
      Cmat.set r (perm i) (perm j) (Cmat.get m i j)
    done
  done;
  r

(* Local 4×4 of a 2Q gate with [a] mapped to the high local bit. *)
let qubit_mismatch a b g =
  invalid_arg
    (Printf.sprintf "Unitary.local_4x4: gate %s does not act on pair (%d,%d)"
       (Gate.to_string g) a b)

let rec local_4x4 a b g =
  match g with
  | Gate.Cnot (c0, t0) ->
    if c0 = a && t0 = b then cnot_4x4
    else if c0 = b && t0 = a then swap_factors cnot_4x4
    else qubit_mismatch a b g
  | Gate.Cliff2 { Clifford2q.kind; a = ca; b = cb } ->
    if ca = a && cb = b then clifford2q_4x4 kind
    else if ca = b && cb = a then swap_factors (clifford2q_4x4 kind)
    else qubit_mismatch a b g
  | Gate.Rpp { p0; p1; a = ra; b = rb; theta } ->
    if ra = a && rb = b then rpp_4x4 p0 p1 theta
    else if ra = b && rb = a then rpp_4x4 p1 p0 theta
    else qubit_mismatch a b g
  | Gate.Swap (x, y) ->
    if (x = a && y = b) || (x = b && y = a) then swap_4x4
    else qubit_mismatch a b g
  | Gate.Su4 { a = sa; b = sb; parts } ->
    if not ((sa = a && sb = b) || (sa = b && sb = a)) then qubit_mismatch a b g;
    List.fold_left
      (fun acc part ->
        let m =
          match Gate.qubits part with
          | [ q ] ->
            if q = a then Cmat.kron (one_q_of part) (Cmat.identity 2)
            else Cmat.kron (Cmat.identity 2) (one_q_of part)
          | [ _; _ ] -> local_4x4 a b part
          | _ -> assert false
        in
        Cmat.mul m acc)
      (Cmat.identity 4) parts
  | Gate.G1 _ -> invalid_arg "Unitary.local_4x4: one-qubit gate"

and one_q_of = function
  | Gate.G1 (k, _) -> one_q k
  | (Gate.Cnot _ | Gate.Cliff2 _ | Gate.Rpp _ | Gate.Swap _ | Gate.Su4 _) as g
    ->
    invalid_arg
      (Printf.sprintf "Unitary.one_q_of: %s is not a 1Q gate"
         (Gate.to_string g))

let gate_4x4 g =
  match Gate.qubits g with
  | [ a; b ] -> local_4x4 a b g
  | qs ->
    invalid_arg
      (Printf.sprintf "Unitary.gate_4x4: %s acts on %d qubit(s), not 2"
         (Gate.to_string g) (List.length qs))

(* u <- (G on qubit q) · u, in place. *)
let apply_1q_inplace u n q m =
  let dim = 1 lsl n in
  let re = Cmat.raw_re u and im = Cmat.raw_im u in
  let g i j = Cmat.get m i j in
  let m00 = g 0 0 and m01 = g 0 1 and m10 = g 1 0 and m11 = g 1 1 in
  let mask = 1 lsl (n - 1 - q) in
  for i0 = 0 to dim - 1 do
    if i0 land mask = 0 then begin
      let i1 = i0 lor mask in
      let r0 = i0 * dim and r1 = i1 * dim in
      for j = 0 to dim - 1 do
        let a_re = re.(r0 + j) and a_im = im.(r0 + j) in
        let b_re = re.(r1 + j) and b_im = im.(r1 + j) in
        re.(r0 + j) <-
          (m00.Complex.re *. a_re) -. (m00.Complex.im *. a_im)
          +. (m01.Complex.re *. b_re) -. (m01.Complex.im *. b_im);
        im.(r0 + j) <-
          (m00.Complex.re *. a_im) +. (m00.Complex.im *. a_re)
          +. (m01.Complex.re *. b_im) +. (m01.Complex.im *. b_re);
        re.(r1 + j) <-
          (m10.Complex.re *. a_re) -. (m10.Complex.im *. a_im)
          +. (m11.Complex.re *. b_re) -. (m11.Complex.im *. b_im);
        im.(r1 + j) <-
          (m10.Complex.re *. a_im) +. (m10.Complex.im *. a_re)
          +. (m11.Complex.re *. b_im) +. (m11.Complex.im *. b_re)
      done
    end
  done

(* u <- (M on qubits a,b) · u with a the high local bit, in place. *)
let apply_2q_inplace u n a b m =
  let dim = 1 lsl n in
  let re = Cmat.raw_re u and im = Cmat.raw_im u in
  let mre = Array.init 16 (fun k -> (Cmat.get m (k / 4) (k mod 4)).Complex.re) in
  let mim = Array.init 16 (fun k -> (Cmat.get m (k / 4) (k mod 4)).Complex.im) in
  let mask_a = 1 lsl (n - 1 - a) and mask_b = 1 lsl (n - 1 - b) in
  let rows = Array.make 4 0 in
  let tmp_re = Array.make 4 0.0 and tmp_im = Array.make 4 0.0 in
  for base = 0 to dim - 1 do
    if base land mask_a = 0 && base land mask_b = 0 then begin
      rows.(0) <- base;
      rows.(1) <- base lor mask_b;
      rows.(2) <- base lor mask_a;
      rows.(3) <- base lor mask_a lor mask_b;
      for j = 0 to dim - 1 do
        for k = 0 to 3 do
          tmp_re.(k) <- re.((rows.(k) * dim) + j);
          tmp_im.(k) <- im.((rows.(k) * dim) + j)
        done;
        for k = 0 to 3 do
          let acc_re = ref 0.0 and acc_im = ref 0.0 in
          for l = 0 to 3 do
            let mr = mre.((k * 4) + l) and mi = mim.((k * 4) + l) in
            acc_re := !acc_re +. (mr *. tmp_re.(l)) -. (mi *. tmp_im.(l));
            acc_im := !acc_im +. (mr *. tmp_im.(l)) +. (mi *. tmp_re.(l))
          done;
          re.((rows.(k) * dim) + j) <- !acc_re;
          im.((rows.(k) * dim) + j) <- !acc_im
        done
      done
    end
  done

let apply_gate u n g =
  match g, Gate.qubits g with
  | Gate.G1 (k, q), _ -> apply_1q_inplace u n q (one_q k)
  | _, [ a; b ] -> apply_2q_inplace u n a b (local_4x4 a b g)
  | _, _ -> assert false

(* Dense accumulation is the degradable rung of the equivalence-check
   ladder: per-gate / per-gadget budget checkpoints bound how long an
   expired deadline goes unnoticed inside a 2^n-sized computation. *)
let circuit_unitary circ =
  let n = Circuit.num_qubits circ in
  let u = Cmat.identity (1 lsl n) in
  List.iter
    (fun g ->
      Phoenix_util.Budget.checkpoint ();
      apply_gate u n g)
    (Circuit.gates circ);
  u

let program_unitary n gadgets =
  let u = ref (Cmat.identity (1 lsl n)) in
  List.iter
    (fun (p, theta) ->
      Phoenix_util.Budget.checkpoint ();
      u := Cmat.mul (gadget_matrix p theta) !u)
    gadgets;
  !u

let hamiltonian_matrix n terms =
  let acc = ref (Cmat.create (1 lsl n) (1 lsl n)) in
  List.iter
    (fun (p, h) -> acc := Cmat.add !acc (Cmat.scale (c h) (pauli_matrix p)))
    terms;
  !acc
