(** A complete variational-quantum-eigensolver loop on top of the PHOENIX
    compilation stack: the objective simulates the PHOENIX-compiled
    ansatz circuit and measures [⟨ψ(θ)|H|ψ(θ)⟩]. *)

type problem = {
  hamiltonian : Phoenix_ham.Hamiltonian.t;  (** the observable to minimize *)
  ansatz : Ansatz.t;
  reference : int list;  (** qubits set in the initial product state *)
}

val uccsd_problem :
  ?seed:int -> Phoenix_ham.Fermion.encoding -> Phoenix_ham.Uccsd.spec ->
  problem
(** Molecular VQE: a synthetic electronic-structure Hamiltonian for the
    molecule (see {!Phoenix_ham.Electronic_structure}) with a UCCSD
    ansatz and the Hartree–Fock reference occupation. *)

val energy : problem -> float array -> float
(** Objective value at a parameter point (full compile per call; the
    parametric loop in {!minimize} binds a template instead). *)

val energy_of_circuit : problem -> Phoenix_circuit.Circuit.t -> float
(** Objective value of an already-compiled (e.g. template-bound) ansatz
    circuit: reference preparation, simulation, expectation. *)

val energies :
  problem -> Phoenix.Template.t -> float array list -> float list
(** Batch objective evaluation for gradient-style loops: bind the whole
    stencil of parameter vectors through one
    {!Ansatz.bind_batch} (single angle-arena snapshot), then evaluate
    each bound circuit.  Element [i] equals
    [energy_of_circuit problem (Ansatz.bind tmpl (List.nth thetas i))]
    bit-for-bit. *)

val exact_ground_energy : problem -> float
(** Smallest eigenvalue of the Hamiltonian (dense diagonalization). *)

type outcome = {
  parameters : float array;
  energy : float;
  trace : Optimize.trace;
}

val minimize :
  ?optimizer:[ `Spsa | `Nelder_mead ] ->
  ?iterations:int ->
  ?parametric:bool ->
  problem ->
  outcome
(** Run the loop from the zero parameter vector (the reference state).
    By default the ansatz is compiled once ({!Ansatz.template}) and each
    objective evaluation is a microsecond-scale {!Ansatz.bind};
    [~parametric:false] restores the historical full-compile-per-
    evaluation objective (same energies — differential baseline). *)
