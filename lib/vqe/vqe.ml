module Hamiltonian = Phoenix_ham.Hamiltonian
module Statevector = Phoenix_linalg.Statevector

type problem = {
  hamiltonian : Hamiltonian.t;
  ansatz : Ansatz.t;
  reference : int list;
}

let uccsd_problem ?(seed = 11) enc spec =
  let cluster = Phoenix_ham.Uccsd.ansatz ~seed enc spec in
  let hamiltonian =
    Phoenix_ham.Electronic_structure.synthetic ~seed enc
      ~n_spatial:(Hamiltonian.num_qubits cluster / 2)
  in
  let n_occ = Phoenix_ham.Uccsd.num_active_electrons spec / 2 in
  (* Hartree–Fock-like reference: lowest n_occ spatial orbitals doubly
     occupied — in the Jordan–Wigner interleaved layout these are qubits
     0 .. 2·n_occ−1.  The Bravyi–Kitaev encoding stores parities, so the
     reference bit pattern is the BK transform of that occupation; for
     the demonstration's purposes the JW pattern is used for both (the
     optimizer starts in its vicinity either way). *)
  let reference = List.init (2 * n_occ) (fun i -> i) in
  { hamiltonian; ansatz = Ansatz.of_hamiltonian cluster; reference }

let energy_of_circuit problem circuit =
  let v = Statevector.zero_state (Ansatz.num_qubits problem.ansatz) in
  List.iter
    (fun q ->
      Statevector.apply_gate v
        (Phoenix_circuit.Gate.G1 (Phoenix_circuit.Gate.X, q)))
    problem.reference;
  Statevector.run_circuit v circuit;
  Statevector.expectation v problem.hamiltonian

let energy problem theta =
  let v =
    Ansatz.state_with_reference problem.ansatz ~occupied:problem.reference theta
  in
  Statevector.expectation v problem.hamiltonian

let energies problem tmpl thetas =
  List.map (energy_of_circuit problem) (Ansatz.bind_batch tmpl thetas)

let exact_ground_energy problem =
  let n = Hamiltonian.num_qubits problem.hamiltonian in
  let matrix =
    Phoenix_linalg.Unitary.hamiltonian_matrix n
      (List.map
         (fun (t : Phoenix_pauli.Pauli_term.t) ->
           t.Phoenix_pauli.Pauli_term.pauli, t.Phoenix_pauli.Pauli_term.coeff)
         (Hamiltonian.terms problem.hamiltonian))
  in
  let d = Phoenix_linalg.Herm.eig matrix in
  Array.fold_left Float.min Float.infinity d.Phoenix_linalg.Herm.eigenvalues

type outcome = {
  parameters : float array;
  energy : float;
  trace : Optimize.trace;
}

(* The optimizer loop only moves angles between iterations, so the
   ansatz is compiled once as a template and each objective evaluation
   binds it — no per-iteration re-synthesis/re-routing.  [parametric:
   false] keeps the historical compile-per-evaluation objective as a
   differential baseline.  Energies agree exactly either way: at generic
   angles the bound circuit is bit-identical to a direct compile, and at
   degenerate points (e.g. the all-zeros start) the only structural
   difference is zero-angle rotations the direct path drops — exact
   identities under simulation. *)
let minimize ?(optimizer = `Nelder_mead) ?iterations ?(parametric = true)
    problem =
  let objective =
    if parametric then begin
      let tmpl = Ansatz.template problem.ansatz in
      fun theta -> energy_of_circuit problem (Ansatz.bind tmpl theta)
    end
    else energy problem
  in
  let x0 = Array.make (Ansatz.num_parameters problem.ansatz) 0.0 in
  let parameters, trace =
    match optimizer with
    | `Spsa -> Optimize.spsa ?iterations objective x0
    | `Nelder_mead -> Optimize.nelder_mead ?iterations objective x0
  in
  { parameters; energy = trace.Optimize.best_value; trace }
