(** Parameterized ansatz circuits for variational algorithms.

    An ansatz is a gadget program whose blocks (e.g. UCCSD excitation
    operators, QAOA layers) each carry one variational parameter scaling
    the block's base coefficients.  Circuits are produced by the PHOENIX
    compiler, so the variational loop exercises the same compilation
    stack the paper evaluates. *)

type t

val of_hamiltonian : Phoenix_ham.Hamiltonian.t -> t
(** One parameter per recorded block; Hamiltonians without block
    structure get one parameter per term. *)

val num_qubits : t -> int
val num_parameters : t -> int

val gadgets :
  t -> float array -> (Phoenix_pauli.Pauli_string.t * float) list list
(** Parameterized gadget blocks: block [k]'s angles are scaled by
    [theta.(k)].  Raises [Invalid_argument] on arity mismatch. *)

val circuit :
  ?options:Phoenix.Compiler.options -> t -> float array ->
  Phoenix_circuit.Circuit.t
(** Compile the parameterized program (default options: logical CNOT
    ISA). *)

val param_names : t -> string array
(** ["theta0"], ["theta1"], … — the template parameter names, in block
    order. *)

val template : ?options:Phoenix.Compiler.options -> t -> Phoenix.Template.t
(** Compile the ansatz {e once} with symbolic angles
    ({!Phoenix.Compiler.compile_template}): block [k]'s gadgets carry
    slots evaluating to [theta.(k) *. base].  [bind template theta] is
    bit-identical to [circuit t theta] for generic parameter values, at
    microseconds per bind instead of a full pipeline run. *)

val bind : Phoenix.Template.t -> float array -> Phoenix_circuit.Circuit.t
(** Re-export of {!Phoenix.Template.bind} for loop call sites. *)

val bind_batch :
  Phoenix.Template.t -> float array list -> Phoenix_circuit.Circuit.t list
(** Re-export of {!Phoenix.Template.bind_batch}: gradient-style
    multi-point binds (e.g. a parameter-shift stencil) sharing one
    angle-arena snapshot.  Bit-identical to mapping {!bind}. *)

val state : t -> float array -> Phoenix_linalg.Statevector.t
(** Simulate the compiled circuit from [|0…0⟩]. *)

val state_with_reference : t -> occupied:int list -> float array ->
  Phoenix_linalg.Statevector.t
(** Like [state], but starting from the Hartree–Fock-style reference
    [|1…10…0⟩] with the given qubits set (X gates prepended). *)
