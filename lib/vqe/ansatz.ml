module Hamiltonian = Phoenix_ham.Hamiltonian
module Pauli_term = Phoenix_pauli.Pauli_term
module Compiler = Phoenix.Compiler
module Statevector = Phoenix_linalg.Statevector

type t = {
  n : int;
  blocks : (Phoenix_pauli.Pauli_string.t * float) list list;
      (** base gadget angles (2·h_j), scaled per block by the parameter *)
}

let of_hamiltonian h =
  let to_gadget (t : Pauli_term.t) =
    t.Pauli_term.pauli, 2.0 *. t.Pauli_term.coeff
  in
  let blocks =
    match Hamiltonian.term_blocks h with
    | Some blocks -> List.map (List.map to_gadget) blocks
    | None -> List.map (fun t -> [ to_gadget t ]) (Hamiltonian.terms h)
  in
  { n = Hamiltonian.num_qubits h; blocks }

let num_qubits t = t.n
let num_parameters t = List.length t.blocks

let gadgets t theta =
  if Array.length theta <> num_parameters t then
    invalid_arg "Ansatz.gadgets: parameter arity mismatch";
  List.mapi
    (fun k block ->
      List.map (fun (p, base) -> p, theta.(k) *. base) block)
    t.blocks

let circuit ?(options = Compiler.default_options) t theta =
  let report = Compiler.compile_blocks ~options t.n (gadgets t theta) in
  report.Compiler.circuit

let param_names t = Array.init (num_parameters t) (Printf.sprintf "theta%d")

(* Each block's slot records exactly the expression [gadgets] computes
   — [theta.(k) *. base] — so binding the template at [theta] is
   bit-identical to [circuit t theta] (for generic angles). *)
let template ?(options = Compiler.default_options) t =
  let blocks =
    List.mapi
      (fun k block ->
        List.map
          (fun (p, base) ->
            p, Phoenix_pauli.Angle.param ~index:k ~scale:base)
          block)
      t.blocks
  in
  Compiler.compile_template ~options ~params:(param_names t) t.n blocks

let bind = Phoenix.Template.bind
let bind_batch = Phoenix.Template.bind_batch

let state t theta = Statevector.of_circuit (circuit t theta)

let state_with_reference t ~occupied theta =
  let v = Statevector.zero_state t.n in
  List.iter
    (fun q ->
      Statevector.apply_gate v (Phoenix_circuit.Gate.G1 (Phoenix_circuit.Gate.X, q)))
    occupied;
  Statevector.run_circuit v (circuit t theta);
  v
